file(REMOVE_RECURSE
  "libcgx_util.a"
)
