file(REMOVE_RECURSE
  "CMakeFiles/cgx_util.dir/bitio.cpp.o"
  "CMakeFiles/cgx_util.dir/bitio.cpp.o.d"
  "CMakeFiles/cgx_util.dir/csv.cpp.o"
  "CMakeFiles/cgx_util.dir/csv.cpp.o.d"
  "CMakeFiles/cgx_util.dir/half.cpp.o"
  "CMakeFiles/cgx_util.dir/half.cpp.o.d"
  "CMakeFiles/cgx_util.dir/logging.cpp.o"
  "CMakeFiles/cgx_util.dir/logging.cpp.o.d"
  "CMakeFiles/cgx_util.dir/rng.cpp.o"
  "CMakeFiles/cgx_util.dir/rng.cpp.o.d"
  "CMakeFiles/cgx_util.dir/stats.cpp.o"
  "CMakeFiles/cgx_util.dir/stats.cpp.o.d"
  "CMakeFiles/cgx_util.dir/table.cpp.o"
  "CMakeFiles/cgx_util.dir/table.cpp.o.d"
  "CMakeFiles/cgx_util.dir/threadpool.cpp.o"
  "CMakeFiles/cgx_util.dir/threadpool.cpp.o.d"
  "libcgx_util.a"
  "libcgx_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgx_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
