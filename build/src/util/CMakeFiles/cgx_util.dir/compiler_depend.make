# Empty compiler generated dependencies file for cgx_util.
# This may be replaced when dependencies are built.
