file(REMOVE_RECURSE
  "CMakeFiles/cgx_data.dir/synthetic.cpp.o"
  "CMakeFiles/cgx_data.dir/synthetic.cpp.o.d"
  "libcgx_data.a"
  "libcgx_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgx_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
