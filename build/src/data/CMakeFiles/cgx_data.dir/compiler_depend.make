# Empty compiler generated dependencies file for cgx_data.
# This may be replaced when dependencies are built.
