file(REMOVE_RECURSE
  "libcgx_data.a"
)
