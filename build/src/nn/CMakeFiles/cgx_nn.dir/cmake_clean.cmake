file(REMOVE_RECURSE
  "CMakeFiles/cgx_nn.dir/attention.cpp.o"
  "CMakeFiles/cgx_nn.dir/attention.cpp.o.d"
  "CMakeFiles/cgx_nn.dir/conv.cpp.o"
  "CMakeFiles/cgx_nn.dir/conv.cpp.o.d"
  "CMakeFiles/cgx_nn.dir/layers.cpp.o"
  "CMakeFiles/cgx_nn.dir/layers.cpp.o.d"
  "CMakeFiles/cgx_nn.dir/loss.cpp.o"
  "CMakeFiles/cgx_nn.dir/loss.cpp.o.d"
  "CMakeFiles/cgx_nn.dir/optim.cpp.o"
  "CMakeFiles/cgx_nn.dir/optim.cpp.o.d"
  "CMakeFiles/cgx_nn.dir/sequential.cpp.o"
  "CMakeFiles/cgx_nn.dir/sequential.cpp.o.d"
  "CMakeFiles/cgx_nn.dir/serialize.cpp.o"
  "CMakeFiles/cgx_nn.dir/serialize.cpp.o.d"
  "CMakeFiles/cgx_nn.dir/train.cpp.o"
  "CMakeFiles/cgx_nn.dir/train.cpp.o.d"
  "libcgx_nn.a"
  "libcgx_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgx_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
