file(REMOVE_RECURSE
  "libcgx_nn.a"
)
