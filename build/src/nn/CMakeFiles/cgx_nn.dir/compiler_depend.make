# Empty compiler generated dependencies file for cgx_nn.
# This may be replaced when dependencies are built.
