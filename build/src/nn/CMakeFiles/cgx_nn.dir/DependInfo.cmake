
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/attention.cpp" "src/nn/CMakeFiles/cgx_nn.dir/attention.cpp.o" "gcc" "src/nn/CMakeFiles/cgx_nn.dir/attention.cpp.o.d"
  "/root/repo/src/nn/conv.cpp" "src/nn/CMakeFiles/cgx_nn.dir/conv.cpp.o" "gcc" "src/nn/CMakeFiles/cgx_nn.dir/conv.cpp.o.d"
  "/root/repo/src/nn/layers.cpp" "src/nn/CMakeFiles/cgx_nn.dir/layers.cpp.o" "gcc" "src/nn/CMakeFiles/cgx_nn.dir/layers.cpp.o.d"
  "/root/repo/src/nn/loss.cpp" "src/nn/CMakeFiles/cgx_nn.dir/loss.cpp.o" "gcc" "src/nn/CMakeFiles/cgx_nn.dir/loss.cpp.o.d"
  "/root/repo/src/nn/optim.cpp" "src/nn/CMakeFiles/cgx_nn.dir/optim.cpp.o" "gcc" "src/nn/CMakeFiles/cgx_nn.dir/optim.cpp.o.d"
  "/root/repo/src/nn/sequential.cpp" "src/nn/CMakeFiles/cgx_nn.dir/sequential.cpp.o" "gcc" "src/nn/CMakeFiles/cgx_nn.dir/sequential.cpp.o.d"
  "/root/repo/src/nn/serialize.cpp" "src/nn/CMakeFiles/cgx_nn.dir/serialize.cpp.o" "gcc" "src/nn/CMakeFiles/cgx_nn.dir/serialize.cpp.o.d"
  "/root/repo/src/nn/train.cpp" "src/nn/CMakeFiles/cgx_nn.dir/train.cpp.o" "gcc" "src/nn/CMakeFiles/cgx_nn.dir/train.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/cgx_util.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/cgx_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/cgx_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/cgx_core.dir/DependInfo.cmake"
  "/root/repo/build/src/simgpu/CMakeFiles/cgx_simgpu.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
