file(REMOVE_RECURSE
  "libcgx_tensor.a"
)
