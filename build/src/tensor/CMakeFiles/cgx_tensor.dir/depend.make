# Empty dependencies file for cgx_tensor.
# This may be replaced when dependencies are built.
