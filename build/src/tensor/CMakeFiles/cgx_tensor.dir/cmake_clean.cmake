file(REMOVE_RECURSE
  "CMakeFiles/cgx_tensor.dir/layer_layout.cpp.o"
  "CMakeFiles/cgx_tensor.dir/layer_layout.cpp.o.d"
  "CMakeFiles/cgx_tensor.dir/tensor.cpp.o"
  "CMakeFiles/cgx_tensor.dir/tensor.cpp.o.d"
  "CMakeFiles/cgx_tensor.dir/tensor_ops.cpp.o"
  "CMakeFiles/cgx_tensor.dir/tensor_ops.cpp.o.d"
  "libcgx_tensor.a"
  "libcgx_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgx_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
