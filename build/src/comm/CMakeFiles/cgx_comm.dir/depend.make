# Empty dependencies file for cgx_comm.
# This may be replaced when dependencies are built.
