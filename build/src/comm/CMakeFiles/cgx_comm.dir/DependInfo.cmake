
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/comm/collectives.cpp" "src/comm/CMakeFiles/cgx_comm.dir/collectives.cpp.o" "gcc" "src/comm/CMakeFiles/cgx_comm.dir/collectives.cpp.o.d"
  "/root/repo/src/comm/transports.cpp" "src/comm/CMakeFiles/cgx_comm.dir/transports.cpp.o" "gcc" "src/comm/CMakeFiles/cgx_comm.dir/transports.cpp.o.d"
  "/root/repo/src/comm/world.cpp" "src/comm/CMakeFiles/cgx_comm.dir/world.cpp.o" "gcc" "src/comm/CMakeFiles/cgx_comm.dir/world.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/cgx_util.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/cgx_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
