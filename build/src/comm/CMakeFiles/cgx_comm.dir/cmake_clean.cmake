file(REMOVE_RECURSE
  "CMakeFiles/cgx_comm.dir/collectives.cpp.o"
  "CMakeFiles/cgx_comm.dir/collectives.cpp.o.d"
  "CMakeFiles/cgx_comm.dir/transports.cpp.o"
  "CMakeFiles/cgx_comm.dir/transports.cpp.o.d"
  "CMakeFiles/cgx_comm.dir/world.cpp.o"
  "CMakeFiles/cgx_comm.dir/world.cpp.o.d"
  "libcgx_comm.a"
  "libcgx_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgx_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
