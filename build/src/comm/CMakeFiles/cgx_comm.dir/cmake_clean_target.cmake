file(REMOVE_RECURSE
  "libcgx_comm.a"
)
