
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simgpu/cost_model.cpp" "src/simgpu/CMakeFiles/cgx_simgpu.dir/cost_model.cpp.o" "gcc" "src/simgpu/CMakeFiles/cgx_simgpu.dir/cost_model.cpp.o.d"
  "/root/repo/src/simgpu/machines.cpp" "src/simgpu/CMakeFiles/cgx_simgpu.dir/machines.cpp.o" "gcc" "src/simgpu/CMakeFiles/cgx_simgpu.dir/machines.cpp.o.d"
  "/root/repo/src/simgpu/timeline.cpp" "src/simgpu/CMakeFiles/cgx_simgpu.dir/timeline.cpp.o" "gcc" "src/simgpu/CMakeFiles/cgx_simgpu.dir/timeline.cpp.o.d"
  "/root/repo/src/simgpu/topology.cpp" "src/simgpu/CMakeFiles/cgx_simgpu.dir/topology.cpp.o" "gcc" "src/simgpu/CMakeFiles/cgx_simgpu.dir/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/cgx_util.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/cgx_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/cgx_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
