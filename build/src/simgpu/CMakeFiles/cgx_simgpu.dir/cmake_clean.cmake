file(REMOVE_RECURSE
  "CMakeFiles/cgx_simgpu.dir/cost_model.cpp.o"
  "CMakeFiles/cgx_simgpu.dir/cost_model.cpp.o.d"
  "CMakeFiles/cgx_simgpu.dir/machines.cpp.o"
  "CMakeFiles/cgx_simgpu.dir/machines.cpp.o.d"
  "CMakeFiles/cgx_simgpu.dir/timeline.cpp.o"
  "CMakeFiles/cgx_simgpu.dir/timeline.cpp.o.d"
  "CMakeFiles/cgx_simgpu.dir/topology.cpp.o"
  "CMakeFiles/cgx_simgpu.dir/topology.cpp.o.d"
  "libcgx_simgpu.a"
  "libcgx_simgpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgx_simgpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
