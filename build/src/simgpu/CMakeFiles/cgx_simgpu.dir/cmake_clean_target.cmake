file(REMOVE_RECURSE
  "libcgx_simgpu.a"
)
