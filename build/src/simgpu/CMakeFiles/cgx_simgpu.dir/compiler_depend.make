# Empty compiler generated dependencies file for cgx_simgpu.
# This may be replaced when dependencies are built.
