file(REMOVE_RECURSE
  "CMakeFiles/cgx_core.dir/adaptive.cpp.o"
  "CMakeFiles/cgx_core.dir/adaptive.cpp.o.d"
  "CMakeFiles/cgx_core.dir/compressed_allreduce.cpp.o"
  "CMakeFiles/cgx_core.dir/compressed_allreduce.cpp.o.d"
  "CMakeFiles/cgx_core.dir/compression_config.cpp.o"
  "CMakeFiles/cgx_core.dir/compression_config.cpp.o.d"
  "CMakeFiles/cgx_core.dir/compressor.cpp.o"
  "CMakeFiles/cgx_core.dir/compressor.cpp.o.d"
  "CMakeFiles/cgx_core.dir/engine.cpp.o"
  "CMakeFiles/cgx_core.dir/engine.cpp.o.d"
  "CMakeFiles/cgx_core.dir/error_feedback.cpp.o"
  "CMakeFiles/cgx_core.dir/error_feedback.cpp.o.d"
  "CMakeFiles/cgx_core.dir/frontend.cpp.o"
  "CMakeFiles/cgx_core.dir/frontend.cpp.o.d"
  "CMakeFiles/cgx_core.dir/hierarchical.cpp.o"
  "CMakeFiles/cgx_core.dir/hierarchical.cpp.o.d"
  "CMakeFiles/cgx_core.dir/nuq.cpp.o"
  "CMakeFiles/cgx_core.dir/nuq.cpp.o.d"
  "CMakeFiles/cgx_core.dir/onebit.cpp.o"
  "CMakeFiles/cgx_core.dir/onebit.cpp.o.d"
  "CMakeFiles/cgx_core.dir/powersgd.cpp.o"
  "CMakeFiles/cgx_core.dir/powersgd.cpp.o.d"
  "CMakeFiles/cgx_core.dir/qsgd.cpp.o"
  "CMakeFiles/cgx_core.dir/qsgd.cpp.o.d"
  "CMakeFiles/cgx_core.dir/terngrad.cpp.o"
  "CMakeFiles/cgx_core.dir/terngrad.cpp.o.d"
  "CMakeFiles/cgx_core.dir/topk.cpp.o"
  "CMakeFiles/cgx_core.dir/topk.cpp.o.d"
  "libcgx_core.a"
  "libcgx_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgx_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
