file(REMOVE_RECURSE
  "libcgx_core.a"
)
