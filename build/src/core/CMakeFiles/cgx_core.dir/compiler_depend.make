# Empty compiler generated dependencies file for cgx_core.
# This may be replaced when dependencies are built.
