
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/adaptive.cpp" "src/core/CMakeFiles/cgx_core.dir/adaptive.cpp.o" "gcc" "src/core/CMakeFiles/cgx_core.dir/adaptive.cpp.o.d"
  "/root/repo/src/core/compressed_allreduce.cpp" "src/core/CMakeFiles/cgx_core.dir/compressed_allreduce.cpp.o" "gcc" "src/core/CMakeFiles/cgx_core.dir/compressed_allreduce.cpp.o.d"
  "/root/repo/src/core/compression_config.cpp" "src/core/CMakeFiles/cgx_core.dir/compression_config.cpp.o" "gcc" "src/core/CMakeFiles/cgx_core.dir/compression_config.cpp.o.d"
  "/root/repo/src/core/compressor.cpp" "src/core/CMakeFiles/cgx_core.dir/compressor.cpp.o" "gcc" "src/core/CMakeFiles/cgx_core.dir/compressor.cpp.o.d"
  "/root/repo/src/core/engine.cpp" "src/core/CMakeFiles/cgx_core.dir/engine.cpp.o" "gcc" "src/core/CMakeFiles/cgx_core.dir/engine.cpp.o.d"
  "/root/repo/src/core/error_feedback.cpp" "src/core/CMakeFiles/cgx_core.dir/error_feedback.cpp.o" "gcc" "src/core/CMakeFiles/cgx_core.dir/error_feedback.cpp.o.d"
  "/root/repo/src/core/frontend.cpp" "src/core/CMakeFiles/cgx_core.dir/frontend.cpp.o" "gcc" "src/core/CMakeFiles/cgx_core.dir/frontend.cpp.o.d"
  "/root/repo/src/core/hierarchical.cpp" "src/core/CMakeFiles/cgx_core.dir/hierarchical.cpp.o" "gcc" "src/core/CMakeFiles/cgx_core.dir/hierarchical.cpp.o.d"
  "/root/repo/src/core/nuq.cpp" "src/core/CMakeFiles/cgx_core.dir/nuq.cpp.o" "gcc" "src/core/CMakeFiles/cgx_core.dir/nuq.cpp.o.d"
  "/root/repo/src/core/onebit.cpp" "src/core/CMakeFiles/cgx_core.dir/onebit.cpp.o" "gcc" "src/core/CMakeFiles/cgx_core.dir/onebit.cpp.o.d"
  "/root/repo/src/core/powersgd.cpp" "src/core/CMakeFiles/cgx_core.dir/powersgd.cpp.o" "gcc" "src/core/CMakeFiles/cgx_core.dir/powersgd.cpp.o.d"
  "/root/repo/src/core/qsgd.cpp" "src/core/CMakeFiles/cgx_core.dir/qsgd.cpp.o" "gcc" "src/core/CMakeFiles/cgx_core.dir/qsgd.cpp.o.d"
  "/root/repo/src/core/terngrad.cpp" "src/core/CMakeFiles/cgx_core.dir/terngrad.cpp.o" "gcc" "src/core/CMakeFiles/cgx_core.dir/terngrad.cpp.o.d"
  "/root/repo/src/core/topk.cpp" "src/core/CMakeFiles/cgx_core.dir/topk.cpp.o" "gcc" "src/core/CMakeFiles/cgx_core.dir/topk.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/cgx_util.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/cgx_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/cgx_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/simgpu/CMakeFiles/cgx_simgpu.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
