file(REMOVE_RECURSE
  "libcgx_models.a"
)
