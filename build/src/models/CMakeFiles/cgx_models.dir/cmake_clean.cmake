file(REMOVE_RECURSE
  "CMakeFiles/cgx_models.dir/paper_profiles.cpp.o"
  "CMakeFiles/cgx_models.dir/paper_profiles.cpp.o.d"
  "CMakeFiles/cgx_models.dir/small_models.cpp.o"
  "CMakeFiles/cgx_models.dir/small_models.cpp.o.d"
  "libcgx_models.a"
  "libcgx_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgx_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
