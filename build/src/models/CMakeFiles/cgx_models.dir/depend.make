# Empty dependencies file for cgx_models.
# This may be replaced when dependencies are built.
