# Empty compiler generated dependencies file for cgx_planner.
# This may be replaced when dependencies are built.
