file(REMOVE_RECURSE
  "CMakeFiles/cgx_planner.dir/cgx_planner.cpp.o"
  "CMakeFiles/cgx_planner.dir/cgx_planner.cpp.o.d"
  "cgx_planner"
  "cgx_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgx_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
