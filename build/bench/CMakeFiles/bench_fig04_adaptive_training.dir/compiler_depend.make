# Empty compiler generated dependencies file for bench_fig04_adaptive_training.
# This may be replaced when dependencies are built.
