# Empty compiler generated dependencies file for bench_table8_ceiling.
# This may be replaced when dependencies are built.
