file(REMOVE_RECURSE
  "CMakeFiles/bench_table8_ceiling.dir/bench_table8_ceiling.cpp.o"
  "CMakeFiles/bench_table8_ceiling.dir/bench_table8_ceiling.cpp.o.d"
  "bench_table8_ceiling"
  "bench_table8_ceiling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table8_ceiling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
