file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_machines.dir/bench_table2_machines.cpp.o"
  "CMakeFiles/bench_table2_machines.dir/bench_table2_machines.cpp.o.d"
  "bench_table2_machines"
  "bench_table2_machines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_machines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
