# Empty dependencies file for bench_ablation_crossbarrier.
# This may be replaced when dependencies are built.
