file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_crossbarrier.dir/bench_ablation_crossbarrier.cpp.o"
  "CMakeFiles/bench_ablation_crossbarrier.dir/bench_ablation_crossbarrier.cpp.o.d"
  "bench_ablation_crossbarrier"
  "bench_ablation_crossbarrier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_crossbarrier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
