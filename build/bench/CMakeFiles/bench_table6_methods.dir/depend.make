# Empty dependencies file for bench_table6_methods.
# This may be replaced when dependencies are built.
