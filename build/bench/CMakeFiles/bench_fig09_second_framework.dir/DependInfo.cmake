
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig09_second_framework.cpp" "bench/CMakeFiles/bench_fig09_second_framework.dir/bench_fig09_second_framework.cpp.o" "gcc" "bench/CMakeFiles/bench_fig09_second_framework.dir/bench_fig09_second_framework.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/cgx_util.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/cgx_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/cgx_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/simgpu/CMakeFiles/cgx_simgpu.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/cgx_core.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/cgx_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/cgx_data.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/cgx_models.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
