# Empty compiler generated dependencies file for bench_fig09_second_framework.
# This may be replaced when dependencies are built.
