# Empty compiler generated dependencies file for bench_fig05_adaptive_error.
# This may be replaced when dependencies are built.
