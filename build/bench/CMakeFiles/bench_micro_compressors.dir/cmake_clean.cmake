file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_compressors.dir/bench_micro_compressors.cpp.o"
  "CMakeFiles/bench_micro_compressors.dir/bench_micro_compressors.cpp.o.d"
  "bench_micro_compressors"
  "bench_micro_compressors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_compressors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
