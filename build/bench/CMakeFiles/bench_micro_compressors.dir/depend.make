# Empty dependencies file for bench_micro_compressors.
# This may be replaced when dependencies are built.
