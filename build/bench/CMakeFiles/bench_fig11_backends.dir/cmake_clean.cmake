file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_backends.dir/bench_fig11_backends.cpp.o"
  "CMakeFiles/bench_fig11_backends.dir/bench_fig11_backends.cpp.o.d"
  "bench_fig11_backends"
  "bench_fig11_backends.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_backends.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
