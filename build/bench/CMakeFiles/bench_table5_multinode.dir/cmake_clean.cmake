file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_multinode.dir/bench_table5_multinode.cpp.o"
  "CMakeFiles/bench_table5_multinode.dir/bench_table5_multinode.cpp.o.d"
  "bench_table5_multinode"
  "bench_table5_multinode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_multinode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
