# Empty dependencies file for bench_table5_multinode.
# This may be replaced when dependencies are built.
