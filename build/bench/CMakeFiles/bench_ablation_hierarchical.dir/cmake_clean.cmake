file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_hierarchical.dir/bench_ablation_hierarchical.cpp.o"
  "CMakeFiles/bench_ablation_hierarchical.dir/bench_ablation_hierarchical.cpp.o.d"
  "bench_ablation_hierarchical"
  "bench_ablation_hierarchical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_hierarchical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
