# Empty compiler generated dependencies file for bench_fig10_reduction_schemes.
# This may be replaced when dependencies are built.
