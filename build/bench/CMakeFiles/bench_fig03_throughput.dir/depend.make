# Empty dependencies file for bench_fig03_throughput.
# This may be replaced when dependencies are built.
