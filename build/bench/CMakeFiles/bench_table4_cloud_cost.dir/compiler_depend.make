# Empty compiler generated dependencies file for bench_table4_cloud_cost.
# This may be replaced when dependencies are built.
