file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_powersgd.dir/bench_fig07_powersgd.cpp.o"
  "CMakeFiles/bench_fig07_powersgd.dir/bench_fig07_powersgd.cpp.o.d"
  "bench_fig07_powersgd"
  "bench_fig07_powersgd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_powersgd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
