# Empty compiler generated dependencies file for bench_fig07_powersgd.
# This may be replaced when dependencies are built.
