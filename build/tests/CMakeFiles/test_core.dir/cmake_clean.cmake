file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/adaptive_test.cpp.o"
  "CMakeFiles/test_core.dir/core/adaptive_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/compressed_allreduce_test.cpp.o"
  "CMakeFiles/test_core.dir/core/compressed_allreduce_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/compressors_test.cpp.o"
  "CMakeFiles/test_core.dir/core/compressors_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/config_test.cpp.o"
  "CMakeFiles/test_core.dir/core/config_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/coverage_test.cpp.o"
  "CMakeFiles/test_core.dir/core/coverage_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/engine_test.cpp.o"
  "CMakeFiles/test_core.dir/core/engine_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/frontend_test.cpp.o"
  "CMakeFiles/test_core.dir/core/frontend_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/hierarchical_test.cpp.o"
  "CMakeFiles/test_core.dir/core/hierarchical_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/nuq_test.cpp.o"
  "CMakeFiles/test_core.dir/core/nuq_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/properties_test.cpp.o"
  "CMakeFiles/test_core.dir/core/properties_test.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
