
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/adaptive_test.cpp" "tests/CMakeFiles/test_core.dir/core/adaptive_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/adaptive_test.cpp.o.d"
  "/root/repo/tests/core/compressed_allreduce_test.cpp" "tests/CMakeFiles/test_core.dir/core/compressed_allreduce_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/compressed_allreduce_test.cpp.o.d"
  "/root/repo/tests/core/compressors_test.cpp" "tests/CMakeFiles/test_core.dir/core/compressors_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/compressors_test.cpp.o.d"
  "/root/repo/tests/core/config_test.cpp" "tests/CMakeFiles/test_core.dir/core/config_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/config_test.cpp.o.d"
  "/root/repo/tests/core/coverage_test.cpp" "tests/CMakeFiles/test_core.dir/core/coverage_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/coverage_test.cpp.o.d"
  "/root/repo/tests/core/engine_test.cpp" "tests/CMakeFiles/test_core.dir/core/engine_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/engine_test.cpp.o.d"
  "/root/repo/tests/core/frontend_test.cpp" "tests/CMakeFiles/test_core.dir/core/frontend_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/frontend_test.cpp.o.d"
  "/root/repo/tests/core/hierarchical_test.cpp" "tests/CMakeFiles/test_core.dir/core/hierarchical_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/hierarchical_test.cpp.o.d"
  "/root/repo/tests/core/nuq_test.cpp" "tests/CMakeFiles/test_core.dir/core/nuq_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/nuq_test.cpp.o.d"
  "/root/repo/tests/core/properties_test.cpp" "tests/CMakeFiles/test_core.dir/core/properties_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/properties_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/cgx_util.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/cgx_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/cgx_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/simgpu/CMakeFiles/cgx_simgpu.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/cgx_core.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/cgx_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/cgx_data.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/cgx_models.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
