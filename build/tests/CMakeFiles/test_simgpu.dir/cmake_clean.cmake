file(REMOVE_RECURSE
  "CMakeFiles/test_simgpu.dir/simgpu/cost_model_test.cpp.o"
  "CMakeFiles/test_simgpu.dir/simgpu/cost_model_test.cpp.o.d"
  "CMakeFiles/test_simgpu.dir/simgpu/machines_test.cpp.o"
  "CMakeFiles/test_simgpu.dir/simgpu/machines_test.cpp.o.d"
  "CMakeFiles/test_simgpu.dir/simgpu/timeline_test.cpp.o"
  "CMakeFiles/test_simgpu.dir/simgpu/timeline_test.cpp.o.d"
  "CMakeFiles/test_simgpu.dir/simgpu/topology_test.cpp.o"
  "CMakeFiles/test_simgpu.dir/simgpu/topology_test.cpp.o.d"
  "test_simgpu"
  "test_simgpu.pdb"
  "test_simgpu[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simgpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
