file(REMOVE_RECURSE
  "CMakeFiles/test_comm.dir/comm/collectives_test.cpp.o"
  "CMakeFiles/test_comm.dir/comm/collectives_test.cpp.o.d"
  "CMakeFiles/test_comm.dir/comm/message_queue_test.cpp.o"
  "CMakeFiles/test_comm.dir/comm/message_queue_test.cpp.o.d"
  "CMakeFiles/test_comm.dir/comm/transport_test.cpp.o"
  "CMakeFiles/test_comm.dir/comm/transport_test.cpp.o.d"
  "test_comm"
  "test_comm.pdb"
  "test_comm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
