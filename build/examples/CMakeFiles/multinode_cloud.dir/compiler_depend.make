# Empty compiler generated dependencies file for multinode_cloud.
# This may be replaced when dependencies are built.
