file(REMOVE_RECURSE
  "CMakeFiles/multinode_cloud.dir/multinode_cloud.cpp.o"
  "CMakeFiles/multinode_cloud.dir/multinode_cloud.cpp.o.d"
  "multinode_cloud"
  "multinode_cloud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multinode_cloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
