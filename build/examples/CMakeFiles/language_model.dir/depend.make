# Empty dependencies file for language_model.
# This may be replaced when dependencies are built.
