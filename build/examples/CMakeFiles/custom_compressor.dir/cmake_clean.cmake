file(REMOVE_RECURSE
  "CMakeFiles/custom_compressor.dir/custom_compressor.cpp.o"
  "CMakeFiles/custom_compressor.dir/custom_compressor.cpp.o.d"
  "custom_compressor"
  "custom_compressor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_compressor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
