# Empty compiler generated dependencies file for custom_compressor.
# This may be replaced when dependencies are built.
