// Synthetic datasets.
//
// The paper trains on ImageNet / WikiText-103 / SQuAD for days on 8 GPUs;
// the reproduction substitutes generators that preserve what the accuracy
// experiments actually measure — whether compressed-gradient training
// reaches the same quality as full-precision training on a non-trivial
// task (DESIGN.md §1 substitution table):
//
//   BlobDataset     — Gaussian-mixture classification (MLP quickstart).
//   SyntheticImages — class-template images + noise (CNN / "ImageNet").
//   MarkovText      — order-1 Markov token streams with a learnable
//                     transition structure; perplexity against the known
//                     entropy ("WikiText" for the LM experiments).
//   SpanQa          — token sequences with a marked answer span; start/end
//                     prediction ("SQuAD" for BERT-QA).
//
// All generators are deterministic in (seed, rank, step) so distributed
// runs are reproducible and ranks see disjoint batches.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"
#include "util/rng.h"

namespace cgx::data {

struct LabeledBatch {
  tensor::Tensor input;
  std::vector<int> targets;
};

class BlobDataset {
 public:
  BlobDataset(std::size_t classes, std::size_t dim, std::uint64_t seed,
              float spread = 0.35f);

  std::size_t classes() const { return classes_; }
  std::size_t dim() const { return dim_; }

  // Batch `step` for `rank` — disjoint across ranks by construction.
  LabeledBatch batch(std::size_t batch_size, int rank,
                     std::size_t step) const;

 private:
  std::size_t classes_, dim_;
  std::uint64_t seed_;
  float spread_;
  std::vector<float> centers_;  // [classes x dim]
};

class SyntheticImages {
 public:
  SyntheticImages(std::size_t classes, std::size_t channels, std::size_t hw,
                  std::uint64_t seed, float noise = 0.4f);

  std::size_t classes() const { return classes_; }
  // Input shape [B, C, H, W].
  LabeledBatch batch(std::size_t batch_size, int rank,
                     std::size_t step) const;

 private:
  std::size_t classes_, channels_, hw_;
  std::uint64_t seed_;
  float noise_;
  std::vector<float> templates_;  // [classes x C x H x W]
};

// Order-1 Markov chain over `vocab` tokens. Targets are next tokens, so a
// batch trains every position: input [B, T], targets B*T ints.
class MarkovText {
 public:
  MarkovText(std::size_t vocab, std::uint64_t seed, double temperature = 0.6);

  std::size_t vocab() const { return vocab_; }
  LabeledBatch batch(std::size_t batch_size, std::size_t seq_len, int rank,
                     std::size_t step) const;

  // Entropy rate of the chain in nats: exp(entropy) is the perplexity an
  // ideal model converges to.
  double entropy_rate() const;

 private:
  std::size_t sample_next(std::size_t current, util::Rng& rng) const;

  std::size_t vocab_;
  std::uint64_t seed_;
  std::vector<double> transitions_;  // [vocab x vocab], rows sum to 1
  std::vector<double> stationary_;
};

// Sequences over a vocab where a contiguous "answer" span is bracketed by
// marker tokens; the task is predicting the span's start and end indices.
struct QaBatch {
  tensor::Tensor tokens;  // [B, T]
  std::vector<int> start;
  std::vector<int> end;
};

class SpanQa {
 public:
  SpanQa(std::size_t vocab, std::size_t seq_len, std::uint64_t seed);

  std::size_t vocab() const { return vocab_; }
  std::size_t seq_len() const { return seq_len_; }
  QaBatch batch(std::size_t batch_size, int rank, std::size_t step) const;

  // Exact-match fraction given per-position start/end logits [B, T, 2].
  static double exact_match(const tensor::Tensor& logits,
                            const QaBatch& batch);
  // F1 over predicted vs gold span positions, averaged over the batch (the
  // SQuAD metric reported in Table 3).
  static double span_f1(const tensor::Tensor& logits, const QaBatch& batch);

 private:
  std::size_t vocab_, seq_len_;
  std::uint64_t seed_;
};

}  // namespace cgx::data
