#include "data/synthetic.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace cgx::data {
namespace {

// Stream seed unique per (dataset seed, rank, step).
util::Rng batch_rng(std::uint64_t seed, int rank, std::size_t step) {
  return util::Rng(seed).split(
      static_cast<std::uint64_t>(rank) * 1000003ULL + step + 1);
}

}  // namespace

// ---------------------------------------------------------------- blobs

BlobDataset::BlobDataset(std::size_t classes, std::size_t dim,
                         std::uint64_t seed, float spread)
    : classes_(classes), dim_(dim), seed_(seed), spread_(spread) {
  CGX_CHECK_GT(classes, 1u);
  util::Rng rng(seed);
  centers_.resize(classes * dim);
  for (auto& c : centers_) c = static_cast<float>(rng.next_gaussian());
}

LabeledBatch BlobDataset::batch(std::size_t batch_size, int rank,
                                std::size_t step) const {
  util::Rng rng = batch_rng(seed_, rank, step);
  LabeledBatch out;
  out.input = tensor::Tensor(tensor::Shape{batch_size, dim_});
  out.targets.resize(batch_size);
  auto x = out.input.data();
  for (std::size_t b = 0; b < batch_size; ++b) {
    const auto cls = static_cast<int>(rng.next_below(classes_));
    out.targets[b] = cls;
    for (std::size_t d = 0; d < dim_; ++d) {
      x[b * dim_ + d] =
          centers_[static_cast<std::size_t>(cls) * dim_ + d] +
          spread_ * static_cast<float>(rng.next_gaussian());
    }
  }
  return out;
}

// ---------------------------------------------------------------- images

SyntheticImages::SyntheticImages(std::size_t classes, std::size_t channels,
                                 std::size_t hw, std::uint64_t seed,
                                 float noise)
    : classes_(classes),
      channels_(channels),
      hw_(hw),
      seed_(seed),
      noise_(noise) {
  util::Rng rng(seed);
  templates_.resize(classes * channels * hw * hw);
  // Smooth class templates: a few random low-frequency bumps per class.
  for (std::size_t cls = 0; cls < classes; ++cls) {
    for (std::size_t c = 0; c < channels; ++c) {
      const double fx = 1.0 + rng.next_double() * 3.0;
      const double fy = 1.0 + rng.next_double() * 3.0;
      const double phase = rng.next_double() * 6.28;
      for (std::size_t y = 0; y < hw; ++y) {
        for (std::size_t x = 0; x < hw; ++x) {
          templates_[((cls * channels + c) * hw + y) * hw + x] =
              static_cast<float>(
                  std::sin(fx * x / static_cast<double>(hw) * 6.28 + phase) *
                  std::cos(fy * y / static_cast<double>(hw) * 6.28));
        }
      }
    }
  }
}

LabeledBatch SyntheticImages::batch(std::size_t batch_size, int rank,
                                    std::size_t step) const {
  util::Rng rng = batch_rng(seed_, rank, step);
  LabeledBatch out;
  out.input = tensor::Tensor(tensor::Shape{batch_size, channels_, hw_, hw_});
  out.targets.resize(batch_size);
  auto x = out.input.data();
  const std::size_t image = channels_ * hw_ * hw_;
  for (std::size_t b = 0; b < batch_size; ++b) {
    const auto cls = static_cast<int>(rng.next_below(classes_));
    out.targets[b] = cls;
    for (std::size_t i = 0; i < image; ++i) {
      x[b * image + i] =
          templates_[static_cast<std::size_t>(cls) * image + i] +
          noise_ * static_cast<float>(rng.next_gaussian());
    }
  }
  return out;
}

// ---------------------------------------------------------------- markov

MarkovText::MarkovText(std::size_t vocab, std::uint64_t seed,
                       double temperature)
    : vocab_(vocab), seed_(seed) {
  CGX_CHECK_GT(vocab, 1u);
  util::Rng rng(seed);
  transitions_.resize(vocab * vocab);
  for (std::size_t i = 0; i < vocab; ++i) {
    double total = 0.0;
    for (std::size_t j = 0; j < vocab; ++j) {
      // Gumbel-ish sharpening: low temperature -> peaky, learnable rows.
      const double e = std::exp(rng.next_gaussian() / temperature);
      transitions_[i * vocab + j] = e;
      total += e;
    }
    for (std::size_t j = 0; j < vocab; ++j) {
      transitions_[i * vocab + j] /= total;
    }
  }
  // Stationary distribution by power iteration.
  stationary_.assign(vocab, 1.0 / static_cast<double>(vocab));
  std::vector<double> next(vocab);
  for (int iter = 0; iter < 200; ++iter) {
    std::fill(next.begin(), next.end(), 0.0);
    for (std::size_t i = 0; i < vocab; ++i) {
      for (std::size_t j = 0; j < vocab; ++j) {
        next[j] += stationary_[i] * transitions_[i * vocab + j];
      }
    }
    stationary_.swap(next);
  }
}

std::size_t MarkovText::sample_next(std::size_t current,
                                    util::Rng& rng) const {
  double target = rng.next_double();
  const double* row = &transitions_[current * vocab_];
  for (std::size_t j = 0; j < vocab_; ++j) {
    target -= row[j];
    if (target <= 0.0) return j;
  }
  return vocab_ - 1;
}

LabeledBatch MarkovText::batch(std::size_t batch_size, std::size_t seq_len,
                               int rank, std::size_t step) const {
  util::Rng rng = batch_rng(seed_, rank, step);
  LabeledBatch out;
  out.input = tensor::Tensor(tensor::Shape{batch_size, seq_len});
  out.targets.resize(batch_size * seq_len);
  auto x = out.input.data();
  for (std::size_t b = 0; b < batch_size; ++b) {
    std::size_t token = rng.next_below(vocab_);
    for (std::size_t t = 0; t < seq_len; ++t) {
      x[b * seq_len + t] = static_cast<float>(token);
      token = sample_next(token, rng);
      out.targets[b * seq_len + t] = static_cast<int>(token);
    }
  }
  return out;
}

double MarkovText::entropy_rate() const {
  double h = 0.0;
  for (std::size_t i = 0; i < vocab_; ++i) {
    double row_h = 0.0;
    for (std::size_t j = 0; j < vocab_; ++j) {
      const double p = transitions_[i * vocab_ + j];
      if (p > 1e-12) row_h -= p * std::log(p);
    }
    h += stationary_[i] * row_h;
  }
  return h;
}

// ---------------------------------------------------------------- span QA

SpanQa::SpanQa(std::size_t vocab, std::size_t seq_len, std::uint64_t seed)
    : vocab_(vocab), seq_len_(seq_len), seed_(seed) {
  CGX_CHECK_GT(vocab, 4u);
  CGX_CHECK_GT(seq_len, 8u);
}

QaBatch SpanQa::batch(std::size_t batch_size, int rank,
                      std::size_t step) const {
  util::Rng rng = batch_rng(seed_, rank, step);
  QaBatch out;
  out.tokens = tensor::Tensor(tensor::Shape{batch_size, seq_len_});
  out.start.resize(batch_size);
  out.end.resize(batch_size);
  auto x = out.tokens.data();
  // Tokens 0/1 are the span markers; content tokens are >= 2.
  const std::size_t content = vocab_ - 2;
  for (std::size_t b = 0; b < batch_size; ++b) {
    for (std::size_t t = 0; t < seq_len_; ++t) {
      x[b * seq_len_ + t] = static_cast<float>(2 + rng.next_below(content));
    }
    const std::size_t span_len = 1 + rng.next_below(seq_len_ / 4);
    const std::size_t start = 1 + rng.next_below(seq_len_ - span_len - 2);
    const std::size_t end = start + span_len - 1;
    x[b * seq_len_ + start - 1] = 0.0f;  // open marker
    x[b * seq_len_ + end + 1] = 1.0f;    // close marker
    out.start[b] = static_cast<int>(start);
    out.end[b] = static_cast<int>(end);
  }
  return out;
}

namespace {

std::pair<int, int> predicted_span(const tensor::Tensor& logits,
                                   std::size_t b, std::size_t t_len) {
  const auto data = logits.data();
  int best_start = 0, best_end = 0;
  float bs = -1e30f, be = -1e30f;
  for (std::size_t t = 0; t < t_len; ++t) {
    const float s = data[(b * t_len + t) * 2 + 0];
    const float e = data[(b * t_len + t) * 2 + 1];
    if (s > bs) {
      bs = s;
      best_start = static_cast<int>(t);
    }
    if (e > be) {
      be = e;
      best_end = static_cast<int>(t);
    }
  }
  return {best_start, best_end};
}

}  // namespace

double SpanQa::exact_match(const tensor::Tensor& logits,
                           const QaBatch& batch) {
  const std::size_t b_count = batch.start.size();
  const std::size_t t_len = logits.numel() / (b_count * 2);
  std::size_t hits = 0;
  for (std::size_t b = 0; b < b_count; ++b) {
    const auto [s, e] = predicted_span(logits, b, t_len);
    if (s == batch.start[b] && e == batch.end[b]) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(b_count);
}

double SpanQa::span_f1(const tensor::Tensor& logits, const QaBatch& batch) {
  const std::size_t b_count = batch.start.size();
  const std::size_t t_len = logits.numel() / (b_count * 2);
  double total = 0.0;
  for (std::size_t b = 0; b < b_count; ++b) {
    auto [ps, pe] = predicted_span(logits, b, t_len);
    if (pe < ps) std::swap(ps, pe);
    const int gs = batch.start[b], ge = batch.end[b];
    const int overlap =
        std::max(0, std::min(pe, ge) - std::max(ps, gs) + 1);
    if (overlap == 0) continue;
    const double precision =
        static_cast<double>(overlap) / static_cast<double>(pe - ps + 1);
    const double recall =
        static_cast<double>(overlap) / static_cast<double>(ge - gs + 1);
    total += 2.0 * precision * recall / (precision + recall);
  }
  return total / static_cast<double>(b_count);
}

}  // namespace cgx::data
