// Discrete-event step-time simulation with communication/computation
// overlap.
//
// Data-parallel frameworks overlap gradient communication with the rest of
// the backward pass: the gradient of layer L (counting from the input) is
// produced when backprop reaches it, i.e. *output-side layers first*, and
// its allreduce can start immediately while earlier layers still compute.
// Input-side layers — e.g. Transformer embeddings — materialise last and
// their communication is fully exposed (the effect §6.2/Appendix E blames
// for the remaining gap to linear scaling).
//
// The simulation is symmetric across devices (all replicas execute the same
// plan), so one device's timeline suffices: backward compute runs
// sequentially; communication operations are issued in gradient-ready order
// into a serialized engine queue (they share the interconnect, so the
// engine processes one allreduce at a time, as Horovod/CGX's cycle does).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace cgx::simgpu {

struct CommOp {
  double ready_s = 0.0;  // when the payload exists
  double cost_s = 0.0;   // allreduce duration from the cost model
};

// FIFO-serialized queue: op i starts at max(ready_i, finish_{i-1}).
// Returns the finish time of the last op (0 for no ops). Ops must be in
// issue order; ready times need not be monotone (the engine still processes
// them FIFO, like Horovod's response cycle).
double finish_serialized(std::span<const CommOp> ops);

struct StepSpec {
  double forward_s = 0.0;
  // Backward compute per gradient-producing layer, in backward execution
  // order (output-side layer first).
  std::vector<double> backward_s;
  // Communication cost per layer, same order as backward_s; 0 = fused into
  // another packet / nothing to send.
  std::vector<double> comm_s;
  double optimizer_s = 0.0;
  // false models a global barrier before communication (no overlap), the
  // behaviour gradient clipping forces when the full-gradient norm is needed
  // before any update (Technical Issue 3).
  bool overlap = true;
};

struct StepResult {
  double step_s = 0.0;          // wall-clock of one optimization step
  double compute_s = 0.0;       // forward + backward + optimizer
  double comm_total_s = 0.0;    // sum of communication costs
  double exposed_comm_s = 0.0;  // communication not hidden behind compute
};

StepResult simulate_step(const StepSpec& spec);

// Throughput in items/s given the per-device batch, world size and step
// time: the number every table in §6 reports.
double throughput_items_per_s(double step_s, double items_per_device,
                              int devices);

}  // namespace cgx::simgpu
