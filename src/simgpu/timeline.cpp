#include "simgpu/timeline.h"

#include <algorithm>

#include "util/check.h"

namespace cgx::simgpu {

double finish_serialized(std::span<const CommOp> ops) {
  double t = 0.0;
  for (const CommOp& op : ops) {
    t = std::max(t, op.ready_s) + op.cost_s;
  }
  return t;
}

StepResult simulate_step(const StepSpec& spec) {
  CGX_CHECK_EQ(spec.backward_s.size(), spec.comm_s.size());
  StepResult result;

  double compute_end = spec.forward_s;
  std::vector<CommOp> ops;
  ops.reserve(spec.backward_s.size());
  for (std::size_t i = 0; i < spec.backward_s.size(); ++i) {
    compute_end += spec.backward_s[i];
    if (spec.comm_s[i] > 0.0) {
      ops.push_back(CommOp{.ready_s = compute_end, .cost_s = spec.comm_s[i]});
      result.comm_total_s += spec.comm_s[i];
    }
  }

  if (!spec.overlap) {
    // Barrier: all communication waits for the end of backward.
    for (CommOp& op : ops) op.ready_s = compute_end;
  }

  const double comm_end = std::max(finish_serialized(ops), compute_end);
  result.compute_s =
      spec.forward_s +
      (compute_end - spec.forward_s) /*backward*/ + spec.optimizer_s;
  result.step_s = comm_end + spec.optimizer_s;
  result.exposed_comm_s = comm_end - compute_end;
  return result;
}

double throughput_items_per_s(double step_s, double items_per_device,
                              int devices) {
  CGX_CHECK_GT(step_s, 0.0);
  return items_per_device * devices / step_s;
}

}  // namespace cgx::simgpu
