// Interconnect topology model.
//
// The paper's performance story is entirely about interconnect arithmetic:
// commodity boxes move gradients over a shared PCIe/QPI fabric (Fig. 8)
// whose *aggregate* bandwidth is the constraint (13-16 GBps for a single
// p2p flow, but only ~1 GBps of effective Allreduce bandwidth on the 8x
// RTX3090 box), while DGX-class machines have dedicated NVLink ports
// (~100 GBps Allreduce bandwidth). We model exactly those constraints:
//
//   * per-directed-link bandwidth and latency,
//   * per-device port (egress/ingress) bandwidth,
//   * shared "contention groups" with an aggregate byte-rate cap — a PCIe
//     host bridge, a QPI link, or a node's NIC; a flow lists every group it
//     crosses.
//
// A round of concurrent flows then takes
//   max(per-link time, per-port time, per-group time) + max latency,
// the standard max-of-constraints fluid model.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "util/check.h"

namespace cgx::simgpu {

struct LinkPath {
  double bandwidth_gbps = 0.0;  // min bandwidth along the path
  double latency_us = 0.0;      // total latency along the path
  std::vector<int> groups;      // contention groups the path crosses
};

class Topology {
 public:
  Topology(std::string name, int num_devices);

  const std::string& name() const { return name_; }
  int num_devices() const { return num_devices_; }

  // --- construction -------------------------------------------------------
  // Sets the path for src -> dst (directed). Both endpoints must differ.
  void set_link(int src, int dst, LinkPath path);
  // Registers a contention group and returns its id.
  int add_group(double aggregate_gbps);
  // Per-device port bandwidth (applies to total egress and total ingress of
  // each device in a round). 0 = unlimited.
  void set_port_gbps(double gbps) { port_gbps_ = gbps; }
  // Node assignment (for multi-node machines; default: all on node 0).
  void set_node_of(int device, int node);

  // --- queries ------------------------------------------------------------
  const LinkPath& link(int src, int dst) const;
  double group_gbps(int group) const;
  std::size_t group_count() const { return group_caps_.size(); }
  double port_gbps() const { return port_gbps_; }
  int node_of(int device) const;
  int num_nodes() const;
  // Devices on a given node, in rank order.
  std::vector<int> devices_on_node(int node) const;

 private:
  std::string name_;
  int num_devices_;
  std::vector<LinkPath> links_;  // dense [src * n + dst]
  std::vector<double> group_caps_;
  std::vector<int> node_of_;
  double port_gbps_ = 0.0;
};

// ---- topology builders (used by machine presets) ---------------------------

// Single node, all pairs share one bus/fabric contention group (commodity
// PCIe box, Fig. 8 collapsed to its bandwidth behaviour).
Topology make_shared_bus_topology(std::string name, int num_devices,
                                  double link_gbps, double fabric_gbps,
                                  double latency_us);

// Single node, dedicated per-port NVLink-style fabric: port-bound, no shared
// group (DGX-1 backbone-ring-in-hypercube-mesh collapsed to its
// port-aggregate behaviour).
Topology make_nvlink_topology(std::string name, int num_devices,
                              double port_gbps, double latency_us);

// Multi-node cluster: `nodes` copies of an intra-node shared-bus fabric plus
// one NIC contention group per node; cross-node paths traverse both NICs.
Topology make_multinode_topology(std::string name, int nodes,
                                 int devices_per_node, double intra_link_gbps,
                                 double intra_fabric_gbps,
                                 double intra_latency_us, double nic_gbps,
                                 double inter_latency_us);

}  // namespace cgx::simgpu
