// Alpha-beta cost model with contention: converts communication patterns
// into simulated seconds on a Topology, parameterised by the backend's
// TransportProfile (per-message software overhead, chunking, staging
// copies).
//
// This is where "real collectives, simulated clocks" (DESIGN.md §5) meets
// the hardware: the comm/ layer moves real bytes between device threads and
// records traffic; this model prices the same patterns. Tests cross-check
// that the analytic per-round byte counts equal what the real collectives
// recorded.
#pragma once

#include <span>
#include <vector>

#include "comm/collectives.h"
#include "comm/transport.h"
#include "simgpu/topology.h"

namespace cgx::simgpu {

struct Flow {
  int src = 0;
  int dst = 0;
  double bytes = 0.0;
};

class CostModel {
 public:
  CostModel(const Topology& topology, comm::TransportProfile profile);

  const Topology& topology() const { return *topology_; }
  const comm::TransportProfile& profile() const { return profile_; }

  // Time for a set of flows that start together: bandwidth term is the
  // max-of-constraints fluid time (links, ports, contention groups), plus
  // the worst path latency, plus per-device software overheads.
  double round_seconds(std::span<const Flow> flows) const;

  // Single point-to-point transfer.
  double p2p_seconds(int src, int dst, double bytes) const;
  double effective_p2p_gbps(int src, int dst, double bytes) const;

  // -- collective building blocks (devices = participating ranks) ----------
  // One full-exchange round: every participant sends `bytes_per_pair` to
  // every other participant (the SRA scatter or gather round).
  double full_exchange_seconds(std::span<const int> devices,
                               double bytes_per_pair) const;
  // One ring step: device i sends `bytes_per_hop` to its ring successor.
  double ring_step_seconds(std::span<const int> devices,
                           double bytes_per_hop) const;

  // -- whole collectives ----------------------------------------------------
  // Uncompressed allreduce of `bytes` (the payload size each rank starts
  // with) under the given reduction scheme.
  double allreduce_seconds(std::span<const int> devices, double bytes,
                           comm::ReductionScheme scheme) const;
  // Compressed SRA with possibly different wire sizes in the two rounds
  // (the gathered chunk is re-compressed and can differ in size).
  double sra_seconds(std::span<const int> devices, double scatter_bytes_per_pair,
                     double gather_bytes_per_pair) const;
  // Allgather where each rank contributes `bytes_per_rank` (GRACE-style
  // reductions use this instead of a true allreduce).
  double allgather_seconds(std::span<const int> devices,
                           double bytes_per_rank) const;
  // Binomial broadcast of `bytes` from the first device in `devices`.
  double broadcast_seconds(std::span<const int> devices, double bytes) const;

  // Algorithm bandwidth S/t, the figure of merit quoted in §6.1
  // ("1 GBps Allreduce bandwidth" on the RTX boxes).
  double allreduce_busbw_gbps(std::span<const int> devices, double bytes,
                              comm::ReductionScheme scheme) const;

 private:
  const Topology* topology_;
  comm::TransportProfile profile_;
};

// All devices [0, n) of a topology, the common case.
std::vector<int> all_devices(const Topology& topology);

}  // namespace cgx::simgpu
