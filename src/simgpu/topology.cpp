#include "simgpu/topology.h"

#include <algorithm>

namespace cgx::simgpu {

Topology::Topology(std::string name, int num_devices)
    : name_(std::move(name)),
      num_devices_(num_devices),
      links_(static_cast<std::size_t>(num_devices) * num_devices),
      node_of_(static_cast<std::size_t>(num_devices), 0) {
  CGX_CHECK_GT(num_devices, 0);
}

void Topology::set_link(int src, int dst, LinkPath path) {
  CGX_CHECK(src >= 0 && src < num_devices_);
  CGX_CHECK(dst >= 0 && dst < num_devices_);
  CGX_CHECK_NE(src, dst);
  CGX_CHECK_GT(path.bandwidth_gbps, 0.0);
  for (int g : path.groups) {
    CGX_CHECK(g >= 0 && g < static_cast<int>(group_caps_.size()));
  }
  links_[static_cast<std::size_t>(src) * num_devices_ + dst] =
      std::move(path);
}

int Topology::add_group(double aggregate_gbps) {
  CGX_CHECK_GT(aggregate_gbps, 0.0);
  group_caps_.push_back(aggregate_gbps);
  return static_cast<int>(group_caps_.size()) - 1;
}

void Topology::set_node_of(int device, int node) {
  CGX_CHECK(device >= 0 && device < num_devices_);
  CGX_CHECK_GE(node, 0);
  node_of_[static_cast<std::size_t>(device)] = node;
}

const LinkPath& Topology::link(int src, int dst) const {
  CGX_CHECK(src >= 0 && src < num_devices_);
  CGX_CHECK(dst >= 0 && dst < num_devices_);
  CGX_CHECK_NE(src, dst);
  const LinkPath& path =
      links_[static_cast<std::size_t>(src) * num_devices_ + dst];
  CGX_CHECK_GT(path.bandwidth_gbps, 0.0)
      << "no link configured " << src << " -> " << dst;
  return path;
}

double Topology::group_gbps(int group) const {
  CGX_CHECK(group >= 0 && group < static_cast<int>(group_caps_.size()));
  return group_caps_[static_cast<std::size_t>(group)];
}

int Topology::node_of(int device) const {
  CGX_CHECK(device >= 0 && device < num_devices_);
  return node_of_[static_cast<std::size_t>(device)];
}

int Topology::num_nodes() const {
  return 1 + *std::max_element(node_of_.begin(), node_of_.end());
}

std::vector<int> Topology::devices_on_node(int node) const {
  std::vector<int> devices;
  for (int d = 0; d < num_devices_; ++d) {
    if (node_of_[static_cast<std::size_t>(d)] == node) devices.push_back(d);
  }
  return devices;
}

Topology make_shared_bus_topology(std::string name, int num_devices,
                                  double link_gbps, double fabric_gbps,
                                  double latency_us) {
  Topology topo(std::move(name), num_devices);
  const int fabric = topo.add_group(fabric_gbps);
  for (int i = 0; i < num_devices; ++i) {
    for (int j = 0; j < num_devices; ++j) {
      if (i == j) continue;
      topo.set_link(i, j,
                    LinkPath{.bandwidth_gbps = link_gbps,
                             .latency_us = latency_us,
                             .groups = {fabric}});
    }
  }
  topo.set_port_gbps(link_gbps);
  return topo;
}

Topology make_nvlink_topology(std::string name, int num_devices,
                              double port_gbps, double latency_us) {
  Topology topo(std::move(name), num_devices);
  for (int i = 0; i < num_devices; ++i) {
    for (int j = 0; j < num_devices; ++j) {
      if (i == j) continue;
      // Multi-rail NVLink: a pair can use the full port aggregate; the port
      // constraint (not per-link) is what binds under collectives.
      topo.set_link(i, j,
                    LinkPath{.bandwidth_gbps = port_gbps,
                             .latency_us = latency_us,
                             .groups = {}});
    }
  }
  topo.set_port_gbps(port_gbps);
  return topo;
}

Topology make_multinode_topology(std::string name, int nodes,
                                 int devices_per_node, double intra_link_gbps,
                                 double intra_fabric_gbps,
                                 double intra_latency_us, double nic_gbps,
                                 double inter_latency_us) {
  CGX_CHECK_GT(nodes, 0);
  CGX_CHECK_GT(devices_per_node, 0);
  const int n = nodes * devices_per_node;
  Topology topo(std::move(name), n);
  std::vector<int> fabric_of_node, nic_of_node;
  fabric_of_node.reserve(static_cast<std::size_t>(nodes));
  nic_of_node.reserve(static_cast<std::size_t>(nodes));
  for (int node = 0; node < nodes; ++node) {
    fabric_of_node.push_back(topo.add_group(intra_fabric_gbps));
    nic_of_node.push_back(topo.add_group(nic_gbps));
  }
  for (int i = 0; i < n; ++i) topo.set_node_of(i, i / devices_per_node);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i == j) continue;
      const int ni = i / devices_per_node;
      const int nj = j / devices_per_node;
      if (ni == nj) {
        topo.set_link(i, j,
                      LinkPath{.bandwidth_gbps = intra_link_gbps,
                               .latency_us = intra_latency_us,
                               .groups = {fabric_of_node[ni]}});
      } else {
        // Cross-node: traverse the source fabric, source NIC, destination
        // NIC, and destination fabric.
        topo.set_link(
            i, j,
            LinkPath{.bandwidth_gbps = std::min(intra_link_gbps, nic_gbps),
                     .latency_us = intra_latency_us + inter_latency_us,
                     .groups = {fabric_of_node[ni], nic_of_node[ni],
                                nic_of_node[nj], fabric_of_node[nj]}});
      }
    }
  }
  topo.set_port_gbps(intra_link_gbps);
  return topo;
}

}  // namespace cgx::simgpu
