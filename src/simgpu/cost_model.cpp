#include "simgpu/cost_model.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace cgx::simgpu {
namespace {

constexpr double kGb = 1e9;  // we use GB = 1e9 bytes, matching NIC specs

}  // namespace

CostModel::CostModel(const Topology& topology, comm::TransportProfile profile)
    : topology_(&topology), profile_(std::move(profile)) {}

double CostModel::round_seconds(std::span<const Flow> flows) const {
  if (flows.empty()) return 0.0;
  const Topology& topo = *topology_;

  double worst_link_s = 0.0;
  double worst_latency_us = 0.0;
  std::vector<double> group_bytes(topo.group_count(), 0.0);
  std::map<int, double> egress, ingress;
  std::map<int, int> messages_by_src;

  for (const Flow& f : flows) {
    if (f.bytes < 0.0) continue;
    const LinkPath& path = topo.link(f.src, f.dst);
    worst_link_s = std::max(worst_link_s, f.bytes / (path.bandwidth_gbps * kGb));
    worst_latency_us = std::max(worst_latency_us, path.latency_us);
    for (int g : path.groups) group_bytes[static_cast<std::size_t>(g)] += f.bytes;
    egress[f.src] += f.bytes;
    ingress[f.dst] += f.bytes;
    messages_by_src[f.src] += 1;
  }

  double bw_s = worst_link_s;
  for (std::size_t g = 0; g < group_bytes.size(); ++g) {
    if (group_bytes[g] > 0.0) {
      bw_s = std::max(bw_s, group_bytes[g] /
                                (topo.group_gbps(static_cast<int>(g)) * kGb));
    }
  }
  if (topo.port_gbps() > 0.0) {
    for (const auto& [dev, bytes] : egress) {
      bw_s = std::max(bw_s, bytes / (topo.port_gbps() * kGb));
    }
    for (const auto& [dev, bytes] : ingress) {
      bw_s = std::max(bw_s, bytes / (topo.port_gbps() * kGb));
    }
  }

  // Software overheads: each device's sends are issued by its own engine
  // thread; the slowest device adds its per-message and per-chunk costs.
  double overhead_us = 0.0;
  for (const auto& [dev, count] : messages_by_src) {
    double us = count * profile_.per_message_overhead_us;
    if (profile_.chunk_bytes > 0 && profile_.per_chunk_overhead_us > 0.0) {
      const double chunks =
          std::ceil(egress[dev] / static_cast<double>(profile_.chunk_bytes));
      us += std::max(chunks, static_cast<double>(count)) *
            profile_.per_chunk_overhead_us;
    }
    overhead_us = std::max(overhead_us, us);
  }
  // Staging copies cost one memory pass per copy at the profile's staging
  // rate (host path for MPI, device-side FIFOs for NCCL).
  double staging_s = 0.0;
  if (profile_.extra_copies > 0) {
    double max_dev_bytes = 0.0;
    for (const auto& [dev, bytes] : egress) {
      max_dev_bytes = std::max(max_dev_bytes, bytes);
    }
    staging_s = profile_.extra_copies * max_dev_bytes /
                (profile_.staging_gbps * kGb);
  }

  return bw_s + (worst_latency_us + overhead_us) * 1e-6 + staging_s;
}

double CostModel::p2p_seconds(int src, int dst, double bytes) const {
  const Flow flow{src, dst, bytes};
  return round_seconds(std::span<const Flow>(&flow, 1));
}

double CostModel::effective_p2p_gbps(int src, int dst, double bytes) const {
  const double s = p2p_seconds(src, dst, bytes);
  return s <= 0.0 ? 0.0 : bytes / (s * kGb);
}

double CostModel::full_exchange_seconds(std::span<const int> devices,
                                        double bytes_per_pair) const {
  const std::size_t n = devices.size();
  if (n <= 1) return 0.0;
  std::vector<Flow> flows;
  flows.reserve(n * (n - 1));
  for (int src : devices) {
    for (int dst : devices) {
      if (src == dst) continue;
      flows.push_back(Flow{src, dst, bytes_per_pair});
    }
  }
  return round_seconds(flows);
}

double CostModel::ring_step_seconds(std::span<const int> devices,
                                    double bytes_per_hop) const {
  const std::size_t n = devices.size();
  if (n <= 1) return 0.0;
  std::vector<Flow> flows;
  flows.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    flows.push_back(Flow{devices[i], devices[(i + 1) % n], bytes_per_hop});
  }
  return round_seconds(flows);
}

double CostModel::sra_seconds(std::span<const int> devices,
                              double scatter_bytes_per_pair,
                              double gather_bytes_per_pair) const {
  return full_exchange_seconds(devices, scatter_bytes_per_pair) +
         full_exchange_seconds(devices, gather_bytes_per_pair);
}

double CostModel::allreduce_seconds(std::span<const int> devices, double bytes,
                                    comm::ReductionScheme scheme) const {
  const std::size_t n = devices.size();
  if (n <= 1) return 0.0;
  switch (scheme) {
    case comm::ReductionScheme::ScatterReduceAllgather: {
      const double chunk = bytes / static_cast<double>(n);
      return sra_seconds(devices, chunk, chunk);
    }
    case comm::ReductionScheme::Ring: {
      const double chunk = bytes / static_cast<double>(n);
      return 2.0 * static_cast<double>(n - 1) *
             ring_step_seconds(devices, chunk);
    }
    case comm::ReductionScheme::Tree: {
      // Binomial reduce + binomial broadcast; each round moves full vectors
      // between devices at the current mask distance.
      double total = 0.0;
      int top = 1;
      while (top < static_cast<int>(n)) top <<= 1;
      top >>= 1;
      for (int mask = top; mask >= 1; mask >>= 1) {
        std::vector<Flow> flows;
        for (std::size_t r = 0; r < n; ++r) {
          if (static_cast<int>(r) >= mask && static_cast<int>(r) < 2 * mask) {
            flows.push_back(
                Flow{devices[r], devices[r - static_cast<std::size_t>(mask)],
                     bytes});
          }
        }
        if (!flows.empty()) total += round_seconds(flows);
      }
      for (int mask = 1; mask < static_cast<int>(n); mask <<= 1) {
        std::vector<Flow> flows;
        for (std::size_t r = 0; r < n; ++r) {
          if (static_cast<int>(r) < mask &&
              r + static_cast<std::size_t>(mask) < n) {
            flows.push_back(
                Flow{devices[r], devices[r + static_cast<std::size_t>(mask)],
                     bytes});
          }
        }
        if (!flows.empty()) total += round_seconds(flows);
      }
      return total;
    }
  }
  return 0.0;
}

double CostModel::allgather_seconds(std::span<const int> devices,
                                    double bytes_per_rank) const {
  return full_exchange_seconds(devices, bytes_per_rank);
}

double CostModel::broadcast_seconds(std::span<const int> devices,
                                    double bytes) const {
  const std::size_t n = devices.size();
  if (n <= 1) return 0.0;
  double total = 0.0;
  for (int mask = 1; mask < static_cast<int>(n); mask <<= 1) {
    std::vector<Flow> flows;
    for (std::size_t r = 0; r < n; ++r) {
      if (static_cast<int>(r) < mask &&
          r + static_cast<std::size_t>(mask) < n) {
        flows.push_back(
            Flow{devices[r], devices[r + static_cast<std::size_t>(mask)],
                 bytes});
      }
    }
    total += round_seconds(flows);
  }
  return total;
}

double CostModel::allreduce_busbw_gbps(std::span<const int> devices,
                                       double bytes,
                                       comm::ReductionScheme scheme) const {
  const double s = allreduce_seconds(devices, bytes, scheme);
  return s <= 0.0 ? 0.0 : bytes / (s * kGb);
}

std::vector<int> all_devices(const Topology& topology) {
  std::vector<int> devices(static_cast<std::size_t>(topology.num_devices()));
  for (int i = 0; i < topology.num_devices(); ++i) {
    devices[static_cast<std::size_t>(i)] = i;
  }
  return devices;
}

}  // namespace cgx::simgpu
