// GPU specs (paper Table 1) and machine presets (paper Table 2, §6.1, plus
// the cloud instances of Table 4 and the multi-node setup of Table 5).
//
// Link parameters are calibrated so the simulated machines reproduce the
// paper's measured figures of merit:
//   RTX-3090 box  — p2p 13-16 GBps, Allreduce busbw ~1 GBps
//   RTX-2080 box  — p2p 6-8 GBps, Allreduce busbw ~1.5 GBps
//   DGX-1 / A6000 — p2p up to 100 GBps, Allreduce busbw up to ~100 GBps
//   Genesis cloud — 10 GBps intra-node, 5 GBps inter-node (§6.2 multi-node)
//
// Every preset takes the GPU count so Fig. 3's 1/2/4/8-GPU scaling sweeps
// can reuse the same link parameters at smaller world sizes.
#pragma once

#include <string>

#include "simgpu/topology.h"

namespace cgx::simgpu {

enum class GpuKind { V100, A6000, RTX3090, RTX2080TI };

const char* gpu_kind_name(GpuKind kind);

// Static characteristics from Table 1 (plus the effective rate at which the
// device runs quantization kernels, used to price compression overhead; the
// paper measures 1-3% overhead, Appendix A).
struct GpuSpec {
  GpuKind kind;
  std::string arch;
  int sm_count;
  int tensor_cores;
  bool gpu_direct;
  int ram_gb;
  int tdp_watt;
  double compress_gbps;  // effective quantize/dequantize memory rate
};

const GpuSpec& gpu_spec(GpuKind kind);

struct Machine {
  std::string name;
  GpuKind gpu;
  Topology topology;
  double price_per_hour_usd = 0.0;  // 0 = not a cloud offering
};

// -- Table 2 workstations -----------------------------------------------------
Machine make_dgx1(int gpus = 8);        // V100, NVLink
Machine make_a6000_8x(int gpus = 8);    // A6000, NVLink
Machine make_rtx3090_8x(int gpus = 8);  // RTX3090, shared PCIe bus (Fig. 8)
Machine make_rtx2080_8x(int gpus = 8);  // RTX2080 TI, shared PCIe bus

// -- Table 4 cloud instances ----------------------------------------------------
Machine make_aws_p3_8xlarge();   // 4x V100, $12.2/hr
Machine make_genesis_4x3090();   // 4x RTX3090, $6.8/hr

// -- Table 5 multi-node cluster --------------------------------------------------
// `nodes` Genesis instances with 4x RTX3090 each; 10 GBps intra-node,
// 5 GBps inter-node.
Machine make_genesis_cluster(int nodes);

}  // namespace cgx::simgpu
