#include "simgpu/machines.h"

namespace cgx::simgpu {
namespace {

// NVLink port aggregate calibrated so the simulated Allreduce bandwidth is
// ~100 GBps as reported for the DGX-1/A6000 machines in §6.1 (ring/SRA
// algorithm bandwidth = port * N / (2 (N-1))).
constexpr double kNvlinkPortGbps = 175.0;
constexpr double kNvlinkLatencyUs = 2.0;

// RTX-3090 box, Fig. 8: shared PCIe fabric. Single-flow p2p 14 GBps and a
// fabric cap of 14 GBps reproduce both measurements (p2p 13-16 GBps,
// Allreduce busbw 14 / (2*(8-1)/8 * 8) = 1 GBps).
constexpr double kRtx3090LinkGbps = 14.0;
constexpr double kRtx3090FabricGbps = 14.0;

// RTX-2080 box: p2p 6-8 GBps, Allreduce busbw 1.5 GBps -> fabric 21 GBps
// with 7 GBps links.
constexpr double kRtx2080LinkGbps = 7.0;
constexpr double kRtx2080FabricGbps = 21.0;

constexpr double kPcieLatencyUs = 6.0;

}  // namespace

const char* gpu_kind_name(GpuKind kind) {
  switch (kind) {
    case GpuKind::V100:
      return "V100";
    case GpuKind::A6000:
      return "A6000";
    case GpuKind::RTX3090:
      return "RTX3090";
    case GpuKind::RTX2080TI:
      return "RTX2080TI";
  }
  return "?";
}

const GpuSpec& gpu_spec(GpuKind kind) {
  // Table 1 rows. compress_gbps is an effective memory rate for the fused
  // quantize kernels; ~1/4 of device memory bandwidth.
  static const GpuSpec kV100{GpuKind::V100,      "Volta",  80, 640, true,
                             16,                 250,      220.0};
  static const GpuSpec kA6000{GpuKind::A6000,    "Ampere", 84, 336, true,
                              48,                300,      190.0};
  static const GpuSpec kRtx3090{GpuKind::RTX3090, "Ampere", 82, 328, false,
                                24,               350,      230.0};
  static const GpuSpec kRtx2080{GpuKind::RTX2080TI, "Turing", 68, 544, false,
                                10,                 250,      150.0};
  switch (kind) {
    case GpuKind::V100:
      return kV100;
    case GpuKind::A6000:
      return kA6000;
    case GpuKind::RTX3090:
      return kRtx3090;
    case GpuKind::RTX2080TI:
      return kRtx2080;
  }
  CGX_CHECK(false);
  return kV100;
}

Machine make_dgx1(int gpus) {
  return Machine{
      .name = "DGX-1 (" + std::to_string(gpus) + "x V100, NVLink)",
      .gpu = GpuKind::V100,
      .topology = make_nvlink_topology("dgx1-nvlink", gpus, kNvlinkPortGbps,
                                       kNvlinkLatencyUs),
      .price_per_hour_usd = 24.5,  // p3.16xlarge equivalent
  };
}

Machine make_a6000_8x(int gpus) {
  return Machine{
      .name = "A6000 (" + std::to_string(gpus) + "x A6000, NVLink)",
      .gpu = GpuKind::A6000,
      .topology = make_nvlink_topology("a6000-nvlink", gpus, kNvlinkPortGbps,
                                       kNvlinkLatencyUs),
      .price_per_hour_usd = 0.0,
  };
}

Machine make_rtx3090_8x(int gpus) {
  return Machine{
      .name = "RTX-3090 (" + std::to_string(gpus) + "x RTX3090, PCIe bus)",
      .gpu = GpuKind::RTX3090,
      .topology = make_shared_bus_topology("rtx3090-bus", gpus,
                                           kRtx3090LinkGbps,
                                           kRtx3090FabricGbps, kPcieLatencyUs),
      .price_per_hour_usd = 0.0,
  };
}

Machine make_rtx2080_8x(int gpus) {
  return Machine{
      .name = "RTX-2080 (" + std::to_string(gpus) + "x RTX2080TI, PCIe bus)",
      .gpu = GpuKind::RTX2080TI,
      .topology = make_shared_bus_topology("rtx2080-bus", gpus,
                                           kRtx2080LinkGbps,
                                           kRtx2080FabricGbps, kPcieLatencyUs),
      .price_per_hour_usd = 0.0,
  };
}

Machine make_aws_p3_8xlarge() {
  return Machine{
      .name = "AWS p3.8xlarge (4x V100, NVLink)",
      .gpu = GpuKind::V100,
      .topology = make_nvlink_topology("p3-nvlink", 4, kNvlinkPortGbps,
                                       kNvlinkLatencyUs),
      .price_per_hour_usd = 12.2,  // Table 4
  };
}

Machine make_genesis_4x3090() {
  // Genesis advertises 10 GBps intra-node GPU bandwidth (§6.2), but the
  // virtualised PCIe fabric contends far below that under all-to-all load:
  // a 3.3 GBps fabric cap reproduces the Table 4 measurement (NCCL BERT-QA
  // at ~4.7k tokens/s on this instance, i.e. ~0.55 GBps of effective
  // Allreduce bandwidth).
  return Machine{
      .name = "Genesis (4x RTX3090, PCIe bus)",
      .gpu = GpuKind::RTX3090,
      .topology = make_shared_bus_topology("genesis-bus", 4, 10.0, 3.3,
                                           kPcieLatencyUs),
      .price_per_hour_usd = 6.8,  // Table 4
  };
}

Machine make_genesis_cluster(int nodes) {
  return Machine{
      .name = std::to_string(nodes) + "x Genesis (4x RTX3090, 5 GBps NIC)",
      .gpu = GpuKind::RTX3090,
      .topology = make_multinode_topology("genesis-cluster", nodes,
                                          /*devices_per_node=*/4,
                                          /*intra_link_gbps=*/10.0,
                                          /*intra_fabric_gbps=*/3.3,
                                          /*intra_latency_us=*/kPcieLatencyUs,
                                          /*nic_gbps=*/5.0,
                                          /*inter_latency_us=*/30.0),
      .price_per_hour_usd = 6.8 * nodes,
  };
}

}  // namespace cgx::simgpu
