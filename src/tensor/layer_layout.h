// Model layer layout: the contract between the training framework and the
// communication engine.
//
// This mirrors the paper's Torch-DDP integration (Listing 1): the user
// registers `(name, numel)` pairs for every parameter, and the engine uses
// the layout to locate per-layer slices inside flat fused gradient buffers —
// exactly the information torch_cgx reconstructs from `register_model`.
// Per-layer access is what enables layer filters and layer-wise adaptive
// compression (paper §3, §5).
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace cgx::tensor {

struct LayerInfo {
  std::string name;
  Shape shape;        // original parameter shape (for decomposition methods)
  std::size_t numel = 0;
  std::size_t offset = 0;  // element offset in the fused flat buffer
};

class LayerLayout {
 public:
  LayerLayout() = default;

  // Layers must be added in gradient-production order. For a backward pass,
  // gradients materialize from the *last* layer to the first; the engine
  // relies on this ordering to model communication/computation overlap.
  void add_layer(std::string name, Shape shape);
  void add_layer(std::string name, std::size_t numel);

  std::size_t layer_count() const { return layers_.size(); }
  std::size_t total_numel() const { return total_; }

  const LayerInfo& layer(std::size_t i) const;
  const std::vector<LayerInfo>& layers() const { return layers_; }

  // Index of the layer with this exact name; CHECK-fails if absent.
  std::size_t index_of(const std::string& name) const;
  bool contains(const std::string& name) const;

  // Slice of the fused buffer belonging to layer i.
  std::span<float> slice(std::span<float> fused, std::size_t i) const;
  std::span<const float> slice(std::span<const float> fused,
                               std::size_t i) const;

 private:
  std::vector<LayerInfo> layers_;
  std::size_t total_ = 0;
};

}  // namespace cgx::tensor
