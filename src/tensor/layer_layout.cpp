#include "tensor/layer_layout.h"

#include <algorithm>

namespace cgx::tensor {

void LayerLayout::add_layer(std::string name, Shape shape) {
  CGX_CHECK(!contains(name)) << "duplicate layer name: " << name;
  LayerInfo info;
  info.name = std::move(name);
  info.numel = shape_numel(shape);
  info.shape = std::move(shape);
  info.offset = total_;
  CGX_CHECK_GT(info.numel, 0u);
  total_ += info.numel;
  layers_.push_back(std::move(info));
}

void LayerLayout::add_layer(std::string name, std::size_t numel) {
  add_layer(std::move(name), Shape{numel});
}

const LayerInfo& LayerLayout::layer(std::size_t i) const {
  CGX_CHECK_LT(i, layers_.size());
  return layers_[i];
}

std::size_t LayerLayout::index_of(const std::string& name) const {
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    if (layers_[i].name == name) return i;
  }
  CGX_CHECK(false) << "no layer named " << name;
  return 0;
}

bool LayerLayout::contains(const std::string& name) const {
  return std::any_of(layers_.begin(), layers_.end(),
                     [&](const LayerInfo& l) { return l.name == name; });
}

std::span<float> LayerLayout::slice(std::span<float> fused,
                                    std::size_t i) const {
  const LayerInfo& info = layer(i);
  CGX_CHECK_LE(info.offset + info.numel, fused.size());
  return fused.subspan(info.offset, info.numel);
}

std::span<const float> LayerLayout::slice(std::span<const float> fused,
                                          std::size_t i) const {
  const LayerInfo& info = layer(i);
  CGX_CHECK_LE(info.offset + info.numel, fused.size());
  return fused.subspan(info.offset, info.numel);
}

}  // namespace cgx::tensor
