// Flat vector/matrix kernels shared by the nn layers and the compressors.
//
// All functions take std::span so they run on tensor storage, gradient
// buffers inside the communication engine, and raw compressor scratch alike.
#pragma once

#include <cstddef>
#include <span>

namespace cgx::util {
class ThreadPool;
}  // namespace cgx::util

namespace cgx::tensor {

// Optional pool used by the tiled matmul drivers to parallelize over row
// blocks. Results are bit-identical with any pool size and with no pool at
// all: each output element's k-accumulation order is fixed by the tiling, and
// row blocks are disjoint. Not owned; pass nullptr to go back to serial.
void set_compute_pool(util::ThreadPool* pool);
util::ThreadPool* compute_pool();

// y += alpha * x
void axpy(float alpha, std::span<const float> x, std::span<float> y);
// x *= alpha
void scale(std::span<float> x, float alpha);
// <x, y>
double dot(std::span<const float> x, std::span<const float> y);
// ||x||_2
double l2_norm(std::span<const float> x);
// ||x||_2^2 (avoids the sqrt in hot error-accounting paths)
double squared_norm(std::span<const float> x);
// max_i |x_i|
float linf_norm(std::span<const float> x);
// sum_i x_i
double sum(std::span<const float> x);
// out = a - b (sizes must match)
void sub(std::span<const float> a, std::span<const float> b,
         std::span<float> out);
// accumulate: dst += src
void add_inplace(std::span<float> dst, std::span<const float> src);
// fused double accumulate: dst += a, then dst += b — bit-identical to two
// add_inplace calls, one pass over dst
void add_inplace2(std::span<float> dst, std::span<const float> a,
                  std::span<const float> b);
// elementwise copy
void copy(std::span<const float> src, std::span<float> dst);

// C[m x n] = A[m x k] * B[k x n], row-major. Blocked for cache friendliness;
// this is the workhorse of Linear/Attention layers and PowerSGD iterations.
void matmul(std::span<const float> a, std::span<const float> b,
            std::span<float> c, std::size_t m, std::size_t k, std::size_t n);

// C[m x n] = A^T[k x m]^T * B... specifically: C = A^T * B where A is
// [k x m] row-major. Used by Linear backward (grad_w = x^T * grad_y).
void matmul_at_b(std::span<const float> a, std::span<const float> b,
                 std::span<float> c, std::size_t k, std::size_t m,
                 std::size_t n);

// C[m x k] = A[m x n] * B^T where B is [k x n] row-major. Used by Linear
// backward (grad_x = grad_y * w^T when w is [k x n]).
void matmul_a_bt(std::span<const float> a, std::span<const float> b,
                 std::span<float> c, std::size_t m, std::size_t n,
                 std::size_t k);

}  // namespace cgx::tensor
