#include "tensor/tensor_ops.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "util/check.h"

namespace cgx::tensor {

void axpy(float alpha, std::span<const float> x, std::span<float> y) {
  CGX_DCHECK(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void scale(std::span<float> x, float alpha) {
  for (auto& v : x) v *= alpha;
}

double dot(std::span<const float> x, std::span<const float> y) {
  CGX_DCHECK(x.size() == y.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    acc += static_cast<double>(x[i]) * static_cast<double>(y[i]);
  }
  return acc;
}

double squared_norm(std::span<const float> x) {
  // Four independent accumulators break the loop-carried dependency that
  // otherwise serializes the sum at one fused add per ~4 cycles; the final
  // combine reassociates, which is fine for a norm (accumulation is in
  // double, so the result differs from the serial sum by at most an ulp or
  // two even for large inputs).
  double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
  const float* p = x.data();
  std::size_t i = 0;
  for (; i + 4 <= x.size(); i += 4) {
    a0 += static_cast<double>(p[i]) * static_cast<double>(p[i]);
    a1 += static_cast<double>(p[i + 1]) * static_cast<double>(p[i + 1]);
    a2 += static_cast<double>(p[i + 2]) * static_cast<double>(p[i + 2]);
    a3 += static_cast<double>(p[i + 3]) * static_cast<double>(p[i + 3]);
  }
  double acc = (a0 + a1) + (a2 + a3);
  for (; i < x.size(); ++i) {
    acc += static_cast<double>(p[i]) * static_cast<double>(p[i]);
  }
  return acc;
}

double l2_norm(std::span<const float> x) { return std::sqrt(squared_norm(x)); }

float linf_norm(std::span<const float> x) {
  float m = 0.0f;
  for (float v : x) m = std::max(m, std::fabs(v));
  return m;
}

double sum(std::span<const float> x) {
  double acc = 0.0;
  for (float v : x) acc += v;
  return acc;
}

void sub(std::span<const float> a, std::span<const float> b,
         std::span<float> out) {
  CGX_DCHECK(a.size() == b.size() && a.size() == out.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
}

void add_inplace(std::span<float> dst, std::span<const float> src) {
  CGX_DCHECK(dst.size() == src.size());
  for (std::size_t i = 0; i < dst.size(); ++i) dst[i] += src[i];
}

void copy(std::span<const float> src, std::span<float> dst) {
  CGX_DCHECK(src.size() == dst.size());
  if (!src.empty()) std::memcpy(dst.data(), src.data(), src.size() * 4);
}

void matmul(std::span<const float> a, std::span<const float> b,
            std::span<float> c, std::size_t m, std::size_t k, std::size_t n) {
  CGX_DCHECK(a.size() == m * k);
  CGX_DCHECK(b.size() == k * n);
  CGX_DCHECK(c.size() == m * n);
  std::fill(c.begin(), c.end(), 0.0f);
  // i-k-j loop order: streams through B and C rows; good enough for the
  // model sizes in this library without an external BLAS.
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t p = 0; p < k; ++p) {
      const float aip = a[i * k + p];
      if (aip == 0.0f) continue;
      const float* brow = &b[p * n];
      float* crow = &c[i * n];
      for (std::size_t j = 0; j < n; ++j) crow[j] += aip * brow[j];
    }
  }
}

void matmul_at_b(std::span<const float> a, std::span<const float> b,
                 std::span<float> c, std::size_t k, std::size_t m,
                 std::size_t n) {
  // C[m x n] = A^T * B, with A stored [k x m] row-major, B [k x n].
  CGX_DCHECK(a.size() == k * m);
  CGX_DCHECK(b.size() == k * n);
  CGX_DCHECK(c.size() == m * n);
  std::fill(c.begin(), c.end(), 0.0f);
  for (std::size_t p = 0; p < k; ++p) {
    const float* arow = &a[p * m];
    const float* brow = &b[p * n];
    for (std::size_t i = 0; i < m; ++i) {
      const float aip = arow[i];
      if (aip == 0.0f) continue;
      float* crow = &c[i * n];
      for (std::size_t j = 0; j < n; ++j) crow[j] += aip * brow[j];
    }
  }
}

void matmul_a_bt(std::span<const float> a, std::span<const float> b,
                 std::span<float> c, std::size_t m, std::size_t n,
                 std::size_t k) {
  // C[m x k] = A * B^T, with A [m x n], B [k x n] row-major.
  CGX_DCHECK(a.size() == m * n);
  CGX_DCHECK(b.size() == k * n);
  CGX_DCHECK(c.size() == m * k);
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = &a[i * n];
    float* crow = &c[i * k];
    for (std::size_t j = 0; j < k; ++j) {
      const float* brow = &b[j * n];
      double acc = 0.0;
      for (std::size_t p = 0; p < n; ++p) acc += double(arow[p]) * brow[p];
      crow[j] = static_cast<float>(acc);
    }
  }
}

}  // namespace cgx::tensor
