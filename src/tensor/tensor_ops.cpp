#include "tensor/tensor_ops.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>

#include "util/check.h"
#include "util/simd.h"
#include "util/threadpool.h"

namespace cgx::tensor {

namespace {

std::atomic<util::ThreadPool*> g_pool{nullptr};

// Tile shape for the blocked GEMM drivers. Row blocks (kMB) are the unit of
// thread parallelism; k/j blocks keep one A panel + one B panel resident in
// L1/L2. The k0 loop runs outermost inside a row block so every C element
// accumulates its k terms in increasing order no matter how the tiles split
// — that ordering (plus the micro-kernels' single-float-accumulator rule) is
// what makes results bit-identical across thread counts and dispatch levels.
constexpr std::size_t kMB = 64;
constexpr std::size_t kKB = 128;
constexpr std::size_t kNB = 256;

// Runs fn(block) for row blocks [0, nblocks), on the pool when one is set
// and we are not already inside a pool worker. Serial and parallel paths
// execute the same per-block work, so results do not depend on the choice.
template <typename Fn>
void for_each_row_block(std::size_t nblocks, const Fn& fn) {
  util::ThreadPool* pool = g_pool.load(std::memory_order_acquire);
  if (pool != nullptr && nblocks > 1 && !util::ThreadPool::on_worker_thread()) {
    pool->parallel_for(nblocks, fn);
  } else {
    for (std::size_t blk = 0; blk < nblocks; ++blk) fn(blk);
  }
}

}  // namespace

void set_compute_pool(util::ThreadPool* pool) {
  g_pool.store(pool, std::memory_order_release);
}

util::ThreadPool* compute_pool() {
  return g_pool.load(std::memory_order_acquire);
}

void axpy(float alpha, std::span<const float> x, std::span<float> y) {
  util::simd::axpy(alpha, x, y);
}

void scale(std::span<float> x, float alpha) { util::simd::scale(x, alpha); }

double dot(std::span<const float> x, std::span<const float> y) {
  return util::simd::reduce_dot(x, y);
}

double squared_norm(std::span<const float> x) {
  // All norm/dot reductions share simd::reduce_*'s canonical 8-lane combine
  // order (see simd.h), so this value is bit-identical across dispatch
  // levels and across every caller — no ulp drift between paths.
  return util::simd::reduce_sqnorm(x);
}

double l2_norm(std::span<const float> x) { return std::sqrt(squared_norm(x)); }

float linf_norm(std::span<const float> x) {
  return util::simd::reduce_max_abs(x);
}

double sum(std::span<const float> x) { return util::simd::reduce_sum(x); }

void sub(std::span<const float> a, std::span<const float> b,
         std::span<float> out) {
  util::simd::sub(a, b, out);
}

void add_inplace(std::span<float> dst, std::span<const float> src) {
  // The prefetching accumulate kernel — bit-identical to simd::add (same
  // per-element order), faster on past-L2 gradient sweeps.
  util::simd::copy_add(dst, src);
}

void add_inplace2(std::span<float> dst, std::span<const float> a,
                  std::span<const float> b) {
  util::simd::copy_add2(dst, a, b);
}

void copy(std::span<const float> src, std::span<float> dst) {
  util::simd::copy_floats(src, dst);
}

void matmul(std::span<const float> a, std::span<const float> b,
            std::span<float> c, std::size_t m, std::size_t k, std::size_t n) {
  CGX_DCHECK(a.size() == m * k);
  CGX_DCHECK(b.size() == k * n);
  CGX_DCHECK(c.size() == m * n);
  std::fill(c.begin(), c.end(), 0.0f);
  if (m == 0 || k == 0 || n == 0) return;
  const std::size_t nblocks = (m + kMB - 1) / kMB;
  for_each_row_block(nblocks, [&](std::size_t blk) {
    const std::size_t i0 = blk * kMB;
    const std::size_t mb = std::min(kMB, m - i0);
    for (std::size_t k0 = 0; k0 < k; k0 += kKB) {
      const std::size_t kb = std::min(kKB, k - k0);
      for (std::size_t j0 = 0; j0 < n; j0 += kNB) {
        const std::size_t nb = std::min(kNB, n - j0);
        util::simd::gemm_tile(a.data() + i0 * k + k0, k,
                              b.data() + k0 * n + j0, n,
                              c.data() + i0 * n + j0, n, mb, kb, nb);
      }
    }
  });
}

void matmul_at_b(std::span<const float> a, std::span<const float> b,
                 std::span<float> c, std::size_t k, std::size_t m,
                 std::size_t n) {
  // C[m x n] = A^T * B, with A stored [k x m] row-major, B [k x n].
  CGX_DCHECK(a.size() == k * m);
  CGX_DCHECK(b.size() == k * n);
  CGX_DCHECK(c.size() == m * n);
  std::fill(c.begin(), c.end(), 0.0f);
  if (m == 0 || k == 0 || n == 0) return;
  const std::size_t nblocks = (m + kMB - 1) / kMB;
  for_each_row_block(nblocks, [&](std::size_t blk) {
    const std::size_t i0 = blk * kMB;
    const std::size_t mb = std::min(kMB, m - i0);
    for (std::size_t k0 = 0; k0 < k; k0 += kKB) {
      const std::size_t kb = std::min(kKB, k - k0);
      for (std::size_t j0 = 0; j0 < n; j0 += kNB) {
        const std::size_t nb = std::min(kNB, n - j0);
        util::simd::gemm_tile_at(a.data() + k0 * m + i0, m,
                                 b.data() + k0 * n + j0, n,
                                 c.data() + i0 * n + j0, n, mb, kb, nb);
      }
    }
  });
}

void matmul_a_bt(std::span<const float> a, std::span<const float> b,
                 std::span<float> c, std::size_t m, std::size_t n,
                 std::size_t k) {
  // C[m x k] = A * B^T, with A [m x n], B [k x n] row-major. Both operands
  // are traversed along contiguous rows, so each output is a dot product;
  // reduce_dot keeps the double-precision accumulation the old loop had
  // (now in the canonical lane order shared with every other reduction).
  CGX_DCHECK(a.size() == m * n);
  CGX_DCHECK(b.size() == k * n);
  CGX_DCHECK(c.size() == m * k);
  if (m == 0 || k == 0) return;
  const std::size_t rows_per_block = std::max<std::size_t>(1, kMB / 8);
  const std::size_t nblocks = (m + rows_per_block - 1) / rows_per_block;
  for_each_row_block(nblocks, [&](std::size_t blk) {
    const std::size_t i0 = blk * rows_per_block;
    const std::size_t i1 = std::min(m, i0 + rows_per_block);
    for (std::size_t i = i0; i < i1; ++i) {
      const std::span<const float> arow = a.subspan(i * n, n);
      float* crow = c.data() + i * k;
      for (std::size_t j = 0; j < k; ++j) {
        crow[j] = static_cast<float>(
            util::simd::reduce_dot(arow, b.subspan(j * n, n)));
      }
    }
  });
}

}  // namespace cgx::tensor
