#include "tensor/tensor.h"

#include <algorithm>
#include <sstream>

namespace cgx::tensor {

std::size_t shape_numel(const Shape& shape) {
  std::size_t n = 1;
  for (std::size_t d : shape) n *= d;
  return shape.empty() ? 0 : n;
}

std::string shape_to_string(const Shape& shape) {
  std::ostringstream out;
  out << "[";
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i) out << ", ";
    out << shape[i];
  }
  out << "]";
  return out.str();
}

Tensor::Tensor(Shape shape) : shape_(std::move(shape)) {
  data_.assign(shape_numel(shape_), 0.0f);
}

Tensor::Tensor(Shape shape, float fill) : shape_(std::move(shape)) {
  data_.assign(shape_numel(shape_), fill);
}

Tensor Tensor::clone() const {
  Tensor copy(shape_);
  std::copy(data_.begin(), data_.end(), copy.data_.begin());
  return copy;
}

void Tensor::fill(float v) { std::fill(data_.begin(), data_.end(), v); }

void Tensor::reshape(Shape new_shape) {
  CGX_CHECK_EQ(shape_numel(new_shape), data_.size());
  shape_ = std::move(new_shape);
}

void Tensor::fill_uniform(util::Rng& rng, float lo, float hi) {
  CGX_CHECK_LE(lo, hi);
  for (auto& v : data_) v = lo + (hi - lo) * rng.next_float();
}

void Tensor::fill_gaussian(util::Rng& rng, float mean, float stddev) {
  for (auto& v : data_) {
    v = mean + stddev * static_cast<float>(rng.next_gaussian());
  }
}

}  // namespace cgx::tensor
