// Dense float tensors.
//
// The library needs exactly what a gradient-communication framework touches:
// contiguous float storage with a shape, cheap views (std::span), and flat
// indexing. We deliberately do NOT build strided views, broadcasting, or
// expression templates — layers in src/nn operate on contiguous buffers and
// the communication stack only ever sees flat spans.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "util/arena.h"
#include "util/check.h"
#include "util/rng.h"

namespace cgx::tensor {

using Shape = std::vector<std::size_t>;

std::size_t shape_numel(const Shape& shape);
std::string shape_to_string(const Shape& shape);

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(Shape shape);
  Tensor(Shape shape, float fill);

  // Value semantics; copies are explicit via clone() to avoid accidental
  // deep copies of multi-MB gradient buffers in hot paths.
  Tensor(const Tensor&) = delete;
  Tensor& operator=(const Tensor&) = delete;
  Tensor(Tensor&&) = default;
  Tensor& operator=(Tensor&&) = default;

  Tensor clone() const;

  const Shape& shape() const { return shape_; }
  std::size_t numel() const { return data_.size(); }
  std::size_t dim(std::size_t i) const {
    CGX_DCHECK(i < shape_.size());
    return shape_[i];
  }
  std::size_t rank() const { return shape_.size(); }

  std::span<float> data() { return data_.span(); }
  std::span<const float> data() const { return data_.span(); }

  float& at(std::size_t i) {
    CGX_DCHECK(i < data_.size());
    return data_[i];
  }
  float at(std::size_t i) const {
    CGX_DCHECK(i < data_.size());
    return data_[i];
  }

  // Row-major 2D access; tensor must be rank 2.
  float& at(std::size_t r, std::size_t c) {
    CGX_DCHECK(shape_.size() == 2);
    CGX_DCHECK(r < shape_[0] && c < shape_[1]);
    return data_[r * shape_[1] + c];
  }
  float at(std::size_t r, std::size_t c) const {
    CGX_DCHECK(shape_.size() == 2);
    CGX_DCHECK(r < shape_[0] && c < shape_[1]);
    return data_[r * shape_[1] + c];
  }

  void fill(float v);
  void zero() { fill(0.0f); }

  // Reinterprets the element layout under a new shape with equal numel.
  void reshape(Shape new_shape);

  // Element init helpers used by nn layers.
  void fill_uniform(util::Rng& rng, float lo, float hi);
  void fill_gaussian(util::Rng& rng, float mean, float stddev);

 private:
  Shape shape_;
  // Arena-aware storage: a tensor built on a thread with a bound ScopedArena
  // (a rank's engine thread) carves 64-byte-aligned, NUMA-local memory from
  // that rank's arena; elsewhere it falls back to an aligned heap block.
  util::ArenaBuffer<float> data_;
};

}  // namespace cgx::tensor
