#include "core/adaptive.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "core/qsgd.h"
#include "tensor/tensor_ops.h"
#include "util/check.h"

namespace cgx::core {
namespace {

// L2^2 quantization error of one layer snapshot at a given bit-width.
double layer_sq_error(std::span<const float> snapshot, unsigned bits,
                      std::size_t bucket_size, util::Rng& rng) {
  if (snapshot.empty() || bits == 0) return 0.0;
  QsgdCompressor compressor(bits, bucket_size);
  std::vector<std::byte> payload(compressor.compressed_size(snapshot.size()));
  std::vector<float> restored(snapshot.size());
  compressor.compress(snapshot, payload, rng);
  compressor.decompress(payload, restored);
  double err = 0.0;
  for (std::size_t i = 0; i < snapshot.size(); ++i) {
    const double d = static_cast<double>(restored[i]) - snapshot[i];
    err += d * d;
  }
  return err;
}

std::vector<std::size_t> compressible_indices(
    const std::vector<bool>& compressible) {
  std::vector<std::size_t> idx;
  for (std::size_t i = 0; i < compressible.size(); ++i) {
    if (compressible[i]) idx.push_back(i);
  }
  return idx;
}

unsigned next_candidate_above(const std::vector<unsigned>& candidates,
                              unsigned bits) {
  unsigned best = bits;
  for (unsigned c : candidates) {
    if (c > bits && (best == bits || c < best)) best = c;
  }
  return best;
}

double weighted_size(const GradStatsCollector& stats,
                     const std::vector<std::size_t>& idx,
                     const std::vector<unsigned>& bits) {
  double total = 0.0;
  for (std::size_t l : idx) {
    total += static_cast<double>(bits[l]) *
             static_cast<double>(stats.layout().layer(l).numel);
  }
  return total;
}

}  // namespace

// ------------------------------------------------------------- collector

GradStatsCollector::GradStatsCollector(const tensor::LayerLayout& layout)
    : layout_(&layout), sum_(layout.total_numel(), 0.0f) {}

void GradStatsCollector::accumulate(std::span<const float> fused) {
  CGX_CHECK_EQ(fused.size(), sum_.size());
  tensor::add_inplace(sum_, fused);
  ++steps_;
}

double GradStatsCollector::accumulated_norm(std::size_t layer) const {
  return tensor::l2_norm(layout_->slice(std::span<const float>(sum_), layer));
}

std::span<const float> GradStatsCollector::accumulated(
    std::size_t layer) const {
  return layout_->slice(std::span<const float>(sum_), layer);
}

void GradStatsCollector::reset() {
  std::fill(sum_.begin(), sum_.end(), 0.0f);
  steps_ = 0;
}

// ------------------------------------------------------------- helpers

double measured_assignment_error(const GradStatsCollector& stats,
                                 const std::vector<bool>& compressible,
                                 const std::vector<unsigned>& bits,
                                 std::size_t bucket_size, util::Rng& rng) {
  double total = 0.0;
  for (std::size_t l = 0; l < compressible.size(); ++l) {
    if (!compressible[l]) continue;
    total += layer_sq_error(stats.accumulated(l), bits[l], bucket_size, rng);
  }
  return std::sqrt(total);
}

void finalize_assignment(Assignment& a, const GradStatsCollector& stats,
                         const std::vector<bool>& compressible,
                         const AdaptiveOptions& options, util::Rng& rng,
                         bool use_remaining_budget) {
  const auto idx = compressible_indices(compressible);
  if (idx.empty()) return;

  // Reference: the uniform assignment known to recover accuracy.
  double ref_sq = 0.0;
  std::vector<double> layer_sq(compressible.size(), 0.0);
  for (std::size_t l : idx) {
    ref_sq += layer_sq_error(stats.accumulated(l), options.reference_bits,
                             options.bucket_size, rng);
    layer_sq[l] = layer_sq_error(stats.accumulated(l), a.bits[l],
                                 options.bucket_size, rng);
  }
  a.reference_error = std::sqrt(ref_sq);
  const double budget_sq =
      options.alpha * options.alpha * ref_sq;  // (alpha * E4)^2

  // Promote the worst offenders until the constraint holds (§5: "compression
  // error cannot exceed a maximum threshold alpha * E4").
  double total_sq = std::accumulate(idx.begin(), idx.end(), 0.0,
                                    [&](double acc, std::size_t l) {
                                      return acc + layer_sq[l];
                                    });
  const unsigned max_bits =
      *std::max_element(options.candidate_bits.begin(),
                        options.candidate_bits.end());
  while (total_sq > budget_sq) {
    std::size_t worst = idx[0];
    double worst_err = -1.0;
    for (std::size_t l : idx) {
      if (a.bits[l] >= max_bits) continue;
      if (layer_sq[l] > worst_err) {
        worst_err = layer_sq[l];
        worst = l;
      }
    }
    if (worst_err < 0.0) break;  // everything already at max bits
    a.bits[worst] = next_candidate_above(options.candidate_bits,
                                         a.bits[worst]);
    total_sq -= layer_sq[worst];
    layer_sq[worst] = layer_sq_error(stats.accumulated(worst), a.bits[worst],
                                     options.bucket_size, rng);
    total_sq += layer_sq[worst];
  }

  // Use remaining budget: repeatedly demote the layer with the best
  // bandwidth-saved-per-error-spent ratio to the next lower candidate
  // width, while the total error stays within (a small margin of) the
  // budget — this is the "balance speedup and accuracy recovery" objective
  // of §5, applied greedily on measured errors.
  const double demote_budget_sq =
      use_remaining_budget ? 0.94 * budget_sq : 0.0;
  auto next_below = [&](unsigned bits) {
    unsigned best = 0;
    for (unsigned c : options.candidate_bits) {
      if (c < bits && c > best) best = c;
    }
    return best;  // 0 = already at the minimum
  };
  // Cache candidate errors per (layer) at its current next-lower width.
  std::vector<double> candidate_sq(compressible.size(), -1.0);
  auto refresh_candidate = [&](std::size_t l) {
    const unsigned below = next_below(a.bits[l]);
    candidate_sq[l] =
        below == 0 ? -1.0
                   : layer_sq_error(stats.accumulated(l), below,
                                    options.bucket_size, rng);
  };
  if (use_remaining_budget) {
    for (std::size_t l : idx) refresh_candidate(l);
  }
  while (use_remaining_budget) {
    double best_ratio = -1.0;
    std::size_t best_layer = 0;
    unsigned best_bits = 0;
    for (std::size_t l : idx) {
      if (candidate_sq[l] < 0.0) continue;
      const unsigned below = next_below(a.bits[l]);
      if (total_sq - layer_sq[l] + candidate_sq[l] > demote_budget_sq) {
        continue;  // infeasible at the current budget
      }
      const double saved_bits =
          static_cast<double>(a.bits[l] - below) *
          static_cast<double>(stats.layout().layer(l).numel);
      const double cost_sq =
          std::max(candidate_sq[l] - layer_sq[l], 1e-30);
      const double ratio = saved_bits / cost_sq;
      if (ratio > best_ratio) {
        best_ratio = ratio;
        best_layer = l;
        best_bits = below;
      }
    }
    if (best_ratio < 0.0) break;
    total_sq += candidate_sq[best_layer] - layer_sq[best_layer];
    layer_sq[best_layer] = candidate_sq[best_layer];
    a.bits[best_layer] = best_bits;
    refresh_candidate(best_layer);
  }

  a.measured_error = std::sqrt(total_sq);
  std::vector<unsigned> reference(a.bits.size(), options.reference_bits);
  const double ref_size = weighted_size(stats, idx, reference);
  a.relative_size =
      ref_size > 0.0 ? weighted_size(stats, idx, a.bits) / ref_size : 1.0;
}

std::vector<int> kmeans_2d(const std::vector<std::pair<double, double>>& pts,
                           int k, util::Rng& rng,
                           std::vector<std::pair<double, double>>* centroids) {
  const std::size_t n = pts.size();
  CGX_CHECK_GT(k, 0);
  k = std::min<int>(k, static_cast<int>(n));
  auto dist_sq = [](const std::pair<double, double>& a,
                    const std::pair<double, double>& b) {
    const double dx = a.first - b.first;
    const double dy = a.second - b.second;
    return dx * dx + dy * dy;
  };

  // kmeans++ seeding.
  std::vector<std::pair<double, double>> centers;
  centers.push_back(pts[rng.next_below(n)]);
  std::vector<double> d2(n);
  while (static_cast<int>(centers.size()) < k) {
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      double best = std::numeric_limits<double>::max();
      for (const auto& c : centers) best = std::min(best, dist_sq(pts[i], c));
      d2[i] = best;
      total += best;
    }
    if (total <= 0.0) {
      centers.push_back(pts[rng.next_below(n)]);
      continue;
    }
    double target = rng.next_double() * total;
    std::size_t chosen = n - 1;
    for (std::size_t i = 0; i < n; ++i) {
      target -= d2[i];
      if (target <= 0.0) {
        chosen = i;
        break;
      }
    }
    centers.push_back(pts[chosen]);
  }

  // Lloyd iterations.
  std::vector<int> assignment(n, 0);
  for (int iter = 0; iter < 100; ++iter) {
    bool changed = false;
    for (std::size_t i = 0; i < n; ++i) {
      int best = 0;
      double best_d = std::numeric_limits<double>::max();
      for (int c = 0; c < k; ++c) {
        const double d = dist_sq(pts[i], centers[static_cast<std::size_t>(c)]);
        if (d < best_d) {
          best_d = d;
          best = c;
        }
      }
      if (assignment[i] != best) {
        assignment[i] = best;
        changed = true;
      }
    }
    std::vector<std::pair<double, double>> sums(
        static_cast<std::size_t>(k), {0.0, 0.0});
    std::vector<std::size_t> counts(static_cast<std::size_t>(k), 0);
    for (std::size_t i = 0; i < n; ++i) {
      sums[static_cast<std::size_t>(assignment[i])].first += pts[i].first;
      sums[static_cast<std::size_t>(assignment[i])].second += pts[i].second;
      ++counts[static_cast<std::size_t>(assignment[i])];
    }
    for (int c = 0; c < k; ++c) {
      const auto cc = static_cast<std::size_t>(c);
      if (counts[cc] == 0) {
        // Empty cluster: reseed to the point farthest from its center.
        std::size_t far = 0;
        double far_d = -1.0;
        for (std::size_t i = 0; i < n; ++i) {
          const double d = dist_sq(
              pts[i], centers[static_cast<std::size_t>(assignment[i])]);
          if (d > far_d) {
            far_d = d;
            far = i;
          }
        }
        centers[cc] = pts[far];
        changed = true;
      } else {
        centers[cc] = {sums[cc].first / counts[cc],
                       sums[cc].second / counts[cc]};
      }
    }
    if (!changed) break;
  }
  if (centroids) *centroids = centers;
  return assignment;
}

// ------------------------------------------------------------- KMEANS

Assignment KMeansAssigner::assign(const GradStatsCollector& stats,
                                  const std::vector<bool>& compressible,
                                  const AdaptiveOptions& options,
                                  util::Rng& rng) {
  Assignment a;
  a.bits.assign(compressible.size(), 0u);
  const auto idx = compressible_indices(compressible);
  if (idx.empty()) return a;

  // 2-D feature per layer: (size, accumulated-gradient norm), in log space
  // and standardized so neither dimension dominates the distances.
  std::vector<std::pair<double, double>> pts;
  pts.reserve(idx.size());
  for (std::size_t l : idx) {
    const double size = std::log10(
        static_cast<double>(stats.layout().layer(l).numel) + 1.0);
    const double norm = std::log10(stats.accumulated_norm(l) + 1e-12);
    pts.push_back({size, norm});
  }
  for (int dim = 0; dim < 2; ++dim) {
    double mean = 0.0, var = 0.0;
    for (const auto& p : pts) mean += dim == 0 ? p.first : p.second;
    mean /= static_cast<double>(pts.size());
    for (const auto& p : pts) {
      const double v = (dim == 0 ? p.first : p.second) - mean;
      var += v * v;
    }
    const double stddev =
        std::sqrt(var / static_cast<double>(pts.size())) + 1e-12;
    for (auto& p : pts) {
      (dim == 0 ? p.first : p.second) =
          ((dim == 0 ? p.first : p.second) - mean) / stddev;
    }
  }

  const int k = static_cast<int>(options.candidate_bits.size());
  std::vector<std::pair<double, double>> centroids;
  const std::vector<int> clusters = kmeans_2d(pts, k, rng, &centroids);

  // Algorithm 1 step 2: sort centroids by norm(C) - size(C). Low score =
  // large, low-gradient layers -> fewest bits.
  std::vector<int> order(centroids.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a_, int b_) {
    const auto& ca = centroids[static_cast<std::size_t>(a_)];
    const auto& cb = centroids[static_cast<std::size_t>(b_)];
    return (ca.second - ca.first) < (cb.second - cb.first);
  });
  std::vector<unsigned> sorted_bits(options.candidate_bits);
  std::sort(sorted_bits.begin(), sorted_bits.end());
  std::vector<unsigned> bits_of_cluster(centroids.size(), sorted_bits.back());
  for (std::size_t rank = 0; rank < order.size(); ++rank) {
    // Linear map over the sorted clusters (step 3).
    const std::size_t bit_idx =
        order.size() <= 1
            ? sorted_bits.size() - 1
            : rank * (sorted_bits.size() - 1) / (order.size() - 1);
    bits_of_cluster[static_cast<std::size_t>(order[rank])] =
        sorted_bits[bit_idx];
  }
  for (std::size_t i = 0; i < idx.size(); ++i) {
    a.bits[idx[i]] = bits_of_cluster[static_cast<std::size_t>(clusters[i])];
  }

  finalize_assignment(a, stats, compressible, options, rng,
                      /*use_remaining_budget=*/true);
  return a;
}

// ------------------------------------------------------------- Linear

Assignment LinearAssigner::assign(const GradStatsCollector& stats,
                                  const std::vector<bool>& compressible,
                                  const AdaptiveOptions& options,
                                  util::Rng& rng) {
  Assignment a;
  a.bits.assign(compressible.size(), 0u);
  const auto idx = compressible_indices(compressible);
  if (idx.empty()) return a;

  // Sort by gradient-magnitude / size; lowest ratio gets the lowest
  // bit-width, interpolating linearly (§5).
  std::vector<std::size_t> order(idx);
  std::sort(order.begin(), order.end(), [&](std::size_t la, std::size_t lb) {
    const double ra = stats.accumulated_norm(la) /
                      static_cast<double>(stats.layout().layer(la).numel);
    const double rb = stats.accumulated_norm(lb) /
                      static_cast<double>(stats.layout().layer(lb).numel);
    return ra < rb;
  });
  std::vector<unsigned> sorted_bits(options.candidate_bits);
  std::sort(sorted_bits.begin(), sorted_bits.end());
  for (std::size_t rank = 0; rank < order.size(); ++rank) {
    const std::size_t bit_idx =
        order.size() <= 1
            ? sorted_bits.size() - 1
            : rank * (sorted_bits.size() - 1) / (order.size() - 1);
    a.bits[order[rank]] = sorted_bits[bit_idx];
  }
  finalize_assignment(a, stats, compressible, options, rng);
  return a;
}

// ------------------------------------------------------------- Bayes

namespace {

// Tiny Gaussian-process regressor (RBF kernel, fixed hyper-parameters) for
// the Bayesian-optimization baseline. Observation counts stay < ~50, so a
// dense Cholesky is plenty.
class TinyGp {
 public:
  explicit TinyGp(double length_scale) : ls2_(length_scale * length_scale) {}

  void add(const std::vector<double>& x, double y) {
    xs_.push_back(x);
    ys_.push_back(y);
    refit();
  }

  // Posterior mean and variance at x.
  std::pair<double, double> predict(const std::vector<double>& x) const {
    const std::size_t n = xs_.size();
    if (n == 0) return {0.0, 1.0};
    std::vector<double> kstar(n);
    for (std::size_t i = 0; i < n; ++i) kstar[i] = kernel(x, xs_[i]);
    double mean = 0.0;
    for (std::size_t i = 0; i < n; ++i) mean += kstar[i] * alpha_[i];
    // v = L^{-1} k*
    std::vector<double> v(kstar);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < i; ++j) v[i] -= chol_[i * n + j] * v[j];
      v[i] /= chol_[i * n + i];
    }
    double var = 1.0;
    for (std::size_t i = 0; i < n; ++i) var -= v[i] * v[i];
    return {mean, std::max(var, 1e-12)};
  }

 private:
  double kernel(const std::vector<double>& a,
                const std::vector<double>& b) const {
    double d2 = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
      const double d = a[i] - b[i];
      d2 += d * d;
    }
    return std::exp(-d2 / (2.0 * ls2_));
  }

  void refit() {
    const std::size_t n = xs_.size();
    chol_.assign(n * n, 0.0);
    // K + sigma_n^2 I, Cholesky in place.
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j <= i; ++j) {
        double v = kernel(xs_[i], xs_[j]) + (i == j ? 1e-6 : 0.0);
        for (std::size_t p = 0; p < j; ++p) {
          v -= chol_[i * n + p] * chol_[j * n + p];
        }
        chol_[i * n + j] = i == j ? std::sqrt(std::max(v, 1e-12))
                                  : v / chol_[j * n + j];
      }
    }
    // alpha = K^{-1} y via two triangular solves.
    alpha_ = ys_;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < i; ++j) {
        alpha_[i] -= chol_[i * n + j] * alpha_[j];
      }
      alpha_[i] /= chol_[i * n + i];
    }
    for (std::size_t ii = n; ii-- > 0;) {
      for (std::size_t j = ii + 1; j < n; ++j) {
        alpha_[ii] -= chol_[j * n + ii] * alpha_[j];
      }
      alpha_[ii] /= chol_[ii * n + ii];
    }
  }

  double ls2_;
  std::vector<std::vector<double>> xs_;
  std::vector<double> ys_;
  std::vector<double> chol_;
  std::vector<double> alpha_;
};

double normal_cdf(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }
double normal_pdf(double z) {
  return std::exp(-0.5 * z * z) / std::sqrt(2.0 * 3.14159265358979323846);
}

}  // namespace

Assignment BayesAssigner::assign(const GradStatsCollector& stats,
                                 const std::vector<bool>& compressible,
                                 const AdaptiveOptions& options,
                                 util::Rng& rng) {
  Assignment best;
  best.bits.assign(compressible.size(), 0u);
  const auto idx = compressible_indices(compressible);
  if (idx.empty()) return best;

  // Monotone parameterisation: layers sorted by norm/size ratio; thresholds
  // theta_1 <= ... <= theta_{k-1} in [0,1] cut the order into bit bands.
  std::vector<std::size_t> order(idx);
  std::sort(order.begin(), order.end(), [&](std::size_t la, std::size_t lb) {
    const double ra = stats.accumulated_norm(la) /
                      static_cast<double>(stats.layout().layer(la).numel);
    const double rb = stats.accumulated_norm(lb) /
                      static_cast<double>(stats.layout().layer(lb).numel);
    return ra < rb;
  });
  std::vector<unsigned> sorted_bits(options.candidate_bits);
  std::sort(sorted_bits.begin(), sorted_bits.end());
  const std::size_t dims = sorted_bits.size() - 1;

  auto realize = [&](const std::vector<double>& theta) {
    std::vector<unsigned> bits(compressible.size(), 0u);
    for (std::size_t rank = 0; rank < order.size(); ++rank) {
      const double frac =
          order.size() <= 1
              ? 1.0
              : static_cast<double>(rank) /
                    static_cast<double>(order.size() - 1);
      std::size_t band = 0;
      while (band < dims && frac >= theta[band]) ++band;
      bits[order[rank]] = sorted_bits[band];
    }
    return bits;
  };

  // Objective: relative size + heavy penalty for violating the error budget.
  const std::vector<unsigned> reference(compressible.size(),
                                        options.reference_bits);
  const double ref_err = measured_assignment_error(
      stats, compressible, reference, options.bucket_size, rng);
  auto objective = [&](const std::vector<double>& theta) {
    const std::vector<unsigned> bits = realize(theta);
    const double err = measured_assignment_error(stats, compressible, bits,
                                                 options.bucket_size, rng);
    double size = 0.0, ref_size = 0.0;
    for (std::size_t l : idx) {
      size += static_cast<double>(bits[l]) * stats.layout().layer(l).numel;
      ref_size += static_cast<double>(options.reference_bits) *
                  stats.layout().layer(l).numel;
    }
    const double rel = size / ref_size;
    const double violation =
        ref_err > 0.0 ? std::max(0.0, err / (options.alpha * ref_err) - 1.0)
                      : 0.0;
    return rel + 4.0 * violation;
  };

  auto sample_theta = [&] {
    std::vector<double> theta(dims);
    for (auto& t : theta) t = rng.next_double();
    std::sort(theta.begin(), theta.end());
    return theta;
  };

  TinyGp gp(/*length_scale=*/0.3);
  std::vector<double> best_theta = sample_theta();
  double best_y = objective(best_theta);
  gp.add(best_theta, best_y);
  const int warmup = std::min(8, iterations_);
  for (int i = 1; i < warmup; ++i) {
    const auto theta = sample_theta();
    const double y = objective(theta);
    gp.add(theta, y);
    if (y < best_y) {
      best_y = y;
      best_theta = theta;
    }
  }
  for (int it = warmup; it < iterations_; ++it) {
    // Expected-improvement acquisition over a random candidate pool.
    std::vector<double> chosen = sample_theta();
    double chosen_ei = -1.0;
    for (int c = 0; c < 128; ++c) {
      const auto theta = sample_theta();
      const auto [mean, var] = gp.predict(theta);
      const double sd = std::sqrt(var);
      const double z = (best_y - mean) / sd;
      const double ei = (best_y - mean) * normal_cdf(z) + sd * normal_pdf(z);
      if (ei > chosen_ei) {
        chosen_ei = ei;
        chosen = theta;
      }
    }
    const double y = objective(chosen);
    gp.add(chosen, y);
    if (y < best_y) {
      best_y = y;
      best_theta = chosen;
    }
  }

  best.bits = realize(best_theta);
  finalize_assignment(best, stats, compressible, options, rng);
  return best;
}

// ------------------------------------------------------------- apply

void apply_assignment(const Assignment& a, const tensor::LayerLayout& layout,
                      CompressionConfig& config, std::size_t bucket_size) {
  if (!a.choice.empty()) {
    // Family-aware plan (DP budget planner): the choice vector carries the
    // complete per-layer policy, including sparsification entries the
    // bits-only path cannot express.
    CGX_CHECK_EQ(a.choice.size(), layout.layer_count());
    for (std::size_t l = 0; l < layout.layer_count(); ++l) {
      if (a.choice[l].method == Method::None) continue;
      config.set_layer_exact(layout.layer(l).name, a.choice[l]);
    }
    return;
  }
  CGX_CHECK_EQ(a.bits.size(), layout.layer_count());
  for (std::size_t l = 0; l < layout.layer_count(); ++l) {
    if (a.bits[l] == 0) continue;
    LayerCompression cfg;
    cfg.method = Method::Qsgd;
    cfg.bits = a.bits[l];
    cfg.bucket_size = bucket_size;
    config.set_layer_exact(layout.layer(l).name, cfg);
  }
}

}  // namespace cgx::core
