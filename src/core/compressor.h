// Gradient compression operator interface.
//
// A Compressor maps a float vector to a byte payload and back. CGX treats
// compression as a *non-associative* reduction operator (paper §3): summing
// compressed gradients requires decompress -> add -> recompress, which is
// why the operator plugs into the communication engine rather than into a
// stock collective library.
//
// Contract:
//  * compressed_size(n) is an exact upper bound on the payload for n
//    elements; compress() returns the actual size (== the bound for
//    fixed-rate schemes).
//  * decompress(payload, out) reconstructs exactly out.size() elements and
//    must accept its own compress() output verbatim.
//  * Quantizers are *unbiased*: E[decompress(compress(v))] = v, the property
//    QSGD's convergence proof rests on. Deterministic schemes (TopK) are
//    biased and must be run under error feedback to converge (§2.3).
//  * Instances may hold per-layer state (PowerSGD warm-started Q, error
//    feedback residuals) and are NOT thread-safe: the engine creates one
//    instance per (rank, layer).
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <string>

#include "util/rng.h"

namespace cgx::util {
class ThreadPool;
}

namespace cgx::core {

class Compressor {
 public:
  virtual ~Compressor() = default;

  virtual std::size_t compressed_size(std::size_t n) const = 0;

  // Returns the number of bytes written into `out`
  // (out.size() >= compressed_size(in.size())).
  virtual std::size_t compress(std::span<const float> in,
                               std::span<std::byte> out, util::Rng& rng) = 0;

  virtual void decompress(std::span<const std::byte> in,
                          std::span<float> out) = 0;

  virtual std::string name() const = 0;

  // True if decompress(compress(v)) == v bit-exactly.
  virtual bool lossless() const { return false; }

  // Opts the operator into intra-call bucket parallelism: inputs with at
  // least `min_numel` elements split their independent buckets across
  // `pool`. Output must stay bit-identical to the serial path (operators
  // achieve this with per-bucket RNG streams). Default: not supported.
  virtual void enable_threading(util::ThreadPool* pool,
                                std::size_t min_numel) {
    (void)pool;
    (void)min_numel;
  }

  // Bytes of grow-only internal scratch currently held (symbol buffers
  // etc.). Used by the zero-allocation-after-warm-up engine test.
  virtual std::size_t scratch_bytes() const { return 0; }
};

// Identity "compressor": full-precision FP32 on the wire. Used for layers
// routed around compression by the layer filters (bias/norm layers, §3).
class NoneCompressor final : public Compressor {
 public:
  std::size_t compressed_size(std::size_t n) const override { return 4 * n; }
  std::size_t compress(std::span<const float> in, std::span<std::byte> out,
                       util::Rng& rng) override;
  void decompress(std::span<const std::byte> in,
                  std::span<float> out) override;
  std::string name() const override { return "none"; }
  bool lossless() const override { return true; }
};

// FP16 wire format — the mixed-precision baseline's gradient encoding.
class Fp16Compressor final : public Compressor {
 public:
  std::size_t compressed_size(std::size_t n) const override { return 2 * n; }
  std::size_t compress(std::span<const float> in, std::span<std::byte> out,
                       util::Rng& rng) override;
  void decompress(std::span<const std::byte> in,
                  std::span<float> out) override;
  std::string name() const override { return "fp16"; }
};

// The paper's synthetic motivating benchmark (§2.1 / Fig. 1): transmit only
// the first n/ratio elements, reconstruct the rest as zero. Useful only to
// measure how step time responds to transmission size.
class FakeCompressor final : public Compressor {
 public:
  explicit FakeCompressor(double ratio);
  std::size_t compressed_size(std::size_t n) const override;
  std::size_t compress(std::span<const float> in, std::span<std::byte> out,
                       util::Rng& rng) override;
  void decompress(std::span<const std::byte> in,
                  std::span<float> out) override;
  std::string name() const override;

 private:
  double ratio_;
};

}  // namespace cgx::core
