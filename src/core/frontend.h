// User-facing frontend mirroring the paper's framework integrations.
//
// CGX ships two integrations (§3): a Horovod extension and a Torch-DDP
// backend (`torch_cgx`, paper Listing 1). Both reduce to the same contract:
//
//   ctx = DistributedContext(world_size)            // init_process_group
//   ctx.register_model({{"embed.weight", {...}}})   // register_model
//   ctx.exclude_layer("bias"); ctx.exclude_layer("bn")
//   ctx.set_quantization_bits(4); ctx.set_quantization_bucket_size(128)
//   ctx.set_layer_bits("embed.weight", 2)           // per-layer override
//   engine = ctx.build_engine()                     // backend ready
//
// The same context also reproduces the DDP limitation the paper describes:
// in DDP mode the engine "no longer has access to the buffer structure" —
// unless the user registers the layout, the whole gradient is one blob
// (i.e. you get QNCCL-like uniform behaviour).
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "comm/transports.h"
#include "core/engine.h"

namespace cgx::core {

class DistributedContext {
 public:
  explicit DistributedContext(int world_size,
                              comm::Backend backend = comm::Backend::Shm);

  // Listing 1: layers = [(name, shape or numel), ...] in model order.
  void register_model(
      const std::vector<std::pair<std::string, tensor::Shape>>& layers);
  void register_model(
      const std::vector<std::pair<std::string, std::size_t>>& layers);
  bool model_registered() const { return layout_.layer_count() > 0; }

  // Listing 1: exclude_layer("bn") / exclude_layer("bias").
  void exclude_layer(const std::string& pattern);
  // Global quantization parameters (defaults: 4 bits, bucket 128).
  void set_quantization_bits(unsigned bits);
  void set_quantization_bucket_size(std::size_t bucket);
  // Per-layer override (exact layer name).
  void set_layer_bits(const std::string& layer, unsigned bits,
                      std::size_t bucket = 128);
  // Route a layer to a different compression method entirely
  // (the §6.2 "Heterogeneous compression" path, e.g. TopK on embeddings).
  void set_layer_method(const std::string& pattern, LayerCompression cfg);
  void set_reduction_scheme(comm::ReductionScheme scheme);

  int world_size() const { return world_size_; }
  comm::Backend backend() const { return backend_; }
  const tensor::LayerLayout& layout() const { return layout_; }
  const CompressionConfig& config() const { return config_; }

  // Builds the CGX engine for the registered model. If no model was
  // registered (the raw-DDP case), `fallback_numel` describes the blob and
  // a QNCCL-style uniform engine is returned instead.
  std::unique_ptr<GradientEngine> build_engine() const;
  std::unique_ptr<GradientEngine> build_blob_engine(
      std::size_t fallback_numel) const;

  // The matching transport for run_world().
  std::unique_ptr<comm::Transport> make_transport() const;

 private:
  int world_size_;
  comm::Backend backend_;
  tensor::LayerLayout layout_;
  // Single-blob pseudo-layout for the unregistered-DDP path; engines hold a
  // pointer to their layout, so it must outlive them.
  mutable tensor::LayerLayout blob_layout_;
  CompressionConfig config_;
  EngineOptions options_;
};

}  // namespace cgx::core
