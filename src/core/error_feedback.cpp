#include "core/error_feedback.h"

#include <cmath>

#include "tensor/tensor_ops.h"
#include "util/check.h"
#include "util/simd.h"

namespace cgx::core {

ErrorFeedback::ErrorFeedback(std::unique_ptr<Compressor> inner, float decay)
    : inner_(std::move(inner)), decay_(decay) {
  CGX_CHECK(inner_ != nullptr);
  CGX_CHECK(decay >= 0.0f && decay <= 1.0f && std::isfinite(decay));
}

std::size_t ErrorFeedback::compressed_size(std::size_t n) const {
  return inner_->compressed_size(n);
}

std::size_t ErrorFeedback::compress(std::span<const float> in,
                                    std::span<std::byte> out,
                                    util::Rng& rng) {
  const std::size_t n = in.size();
  if (residual_.size() != n) residual_.assign(n, 0.0f);
  corrected_.resize(n);
  reconstructed_.resize(n);
  // Fused decay + accumulate: one sweep instead of a scale pass followed by
  // an add pass. decay == 1 takes the same path (beta * r is exact).
  util::simd::add_scaled(in, decay_, residual_, corrected_);

  const std::size_t written = inner_->compress(corrected_, out, rng);

  // residual = corrected - decompress(payload): what this step dropped.
  // reconstructed_ is a grow-only member so the steady state allocates
  // nothing.
  inner_->decompress(out.first(written), reconstructed_);
  util::simd::sub(corrected_, reconstructed_, residual_);
  return written;
}

void ErrorFeedback::decompress(std::span<const std::byte> in,
                               std::span<float> out) {
  inner_->decompress(in, out);
}

std::string ErrorFeedback::name() const { return "ef+" + inner_->name(); }

double ErrorFeedback::residual_norm() const {
  return tensor::l2_norm(residual_);
}

}  // namespace cgx::core
