#include "core/error_feedback.h"

#include "tensor/tensor_ops.h"
#include "util/check.h"

namespace cgx::core {

ErrorFeedback::ErrorFeedback(std::unique_ptr<Compressor> inner)
    : inner_(std::move(inner)) {
  CGX_CHECK(inner_ != nullptr);
}

std::size_t ErrorFeedback::compressed_size(std::size_t n) const {
  return inner_->compressed_size(n);
}

std::size_t ErrorFeedback::compress(std::span<const float> in,
                                    std::span<std::byte> out,
                                    util::Rng& rng) {
  const std::size_t n = in.size();
  if (residual_.size() != n) residual_.assign(n, 0.0f);
  corrected_.resize(n);
  for (std::size_t i = 0; i < n; ++i) corrected_[i] = in[i] + residual_[i];

  const std::size_t written = inner_->compress(corrected_, out, rng);

  // residual = corrected - decompress(payload): what this step dropped.
  std::vector<float> reconstructed(n);
  inner_->decompress(out.first(written), reconstructed);
  for (std::size_t i = 0; i < n; ++i) {
    residual_[i] = corrected_[i] - reconstructed[i];
  }
  return written;
}

void ErrorFeedback::decompress(std::span<const std::byte> in,
                               std::span<float> out) {
  inner_->decompress(in, out);
}

std::string ErrorFeedback::name() const { return "ef+" + inner_->name(); }

double ErrorFeedback::residual_norm() const {
  return tensor::l2_norm(residual_);
}

}  // namespace cgx::core
