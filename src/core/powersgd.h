// PowerSGD low-rank gradient decomposition (Vogels et al. 2019; paper §2.3,
// §6.2 "PowerSGD Comparison", Appendix B).
//
// The layer gradient is viewed as a matrix M in R^{m x n} (m = first shape
// dimension, n = numel/m) and approximated as P Q^T with rank r via one
// generalized power iteration per step:
//
//   P = M Q_prev;  orthonormalize(P);  Q = M^T P;  M_hat = P Q^T
//
// Q is warm-started across steps (the key trick making a single iteration
// sufficient), and the operator is run under error feedback. Wire:
// [P: m*r fp32][Q: n*r fp32] — compression m*n / r(m+n).
//
// Faithfully reproduced quirks the paper leans on:
//  * the operator IS associative (sums of P/Q behave like sums of
//    gradients after averaging), so it works under stock allreduce — but
//    CGX's quantization still beats it end-to-end (Table 6);
//  * it diverges in FP16: the Gram matrices M^T M overflow half range. The
//    optional `fp16_emulation` mode rounds intermediates to half so tests
//    can demonstrate the §6.2 incompatibility.
//
// Vectors (rank-1 tensors) cannot be usefully decomposed; for them the
// operator falls back to raw FP32 passthrough, as PyTorch's PowerSGD hook
// does.
#pragma once

#include <vector>

#include "core/compressor.h"

namespace cgx::core {

class PowerSgdCompressor final : public Compressor {
 public:
  // `rows` is the leading matrix dimension of the layer (0 = treat input as
  // a vector -> passthrough). rank r >= 1.
  PowerSgdCompressor(std::size_t rows, unsigned rank,
                     bool fp16_emulation = false);

  std::size_t compressed_size(std::size_t n) const override;
  std::size_t compress(std::span<const float> in, std::span<std::byte> out,
                       util::Rng& rng) override;
  void decompress(std::span<const std::byte> in,
                  std::span<float> out) override;
  std::string name() const override;

  unsigned rank() const { return rank_; }

 private:
  bool decomposable(std::size_t n) const;
  std::size_t cols(std::size_t n) const;

  std::size_t rows_;
  unsigned rank_;
  bool fp16_emulation_;
  std::vector<float> q_;  // warm-started [cols x rank]
};

// Gram-Schmidt orthonormalization of the columns of A [m x r], in place.
// Exposed for testing.
void orthonormalize_columns(std::span<float> a, std::size_t m, std::size_t r);

}  // namespace cgx::core
