#include "core/topk.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <numeric>
#include <vector>

#include "util/check.h"

namespace cgx::core {

TopKCompressor::TopKCompressor(double ratio) : ratio_(ratio) {
  CGX_CHECK(ratio > 0.0 && ratio <= 1.0);
}

std::size_t TopKCompressor::k_for(std::size_t n) const {
  if (n == 0) return 0;
  const auto k = static_cast<std::size_t>(
      std::ceil(ratio_ * static_cast<double>(n)));
  return std::clamp<std::size_t>(k, 1, n);
}

std::size_t TopKCompressor::compressed_size(std::size_t n) const {
  if (n == 0) return 0;
  return 8 + k_for(n) * (4 + 4);
}

std::size_t TopKCompressor::compress(std::span<const float> in,
                                     std::span<std::byte> out,
                                     util::Rng& rng) {
  (void)rng;
  const std::size_t n = in.size();
  if (n == 0) return 0;
  const std::size_t k = k_for(n);
  const std::size_t total = compressed_size(n);
  CGX_CHECK_LE(total, out.size());

  // Partial selection of the k largest |v|; ties broken by lower index for
  // determinism.
  order_.resize(n);
  const std::span<std::uint32_t> order(order_.data(), n);
  std::iota(order.begin(), order.end(), 0u);
  std::nth_element(order.begin(),
                   order.begin() + static_cast<std::ptrdiff_t>(k - 1),
                   order.end(), [&](std::uint32_t a, std::uint32_t b) {
                     const float fa = std::fabs(in[a]);
                     const float fb = std::fabs(in[b]);
                     if (fa != fb) return fa > fb;
                     return a < b;
                   });
  std::sort(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(k));

  const std::uint64_t k64 = k;
  std::memcpy(out.data(), &k64, 8);
  auto* indices = reinterpret_cast<std::uint32_t*>(out.data() + 8);
  auto* values = reinterpret_cast<float*>(out.data() + 8 + 4 * k);
  for (std::size_t i = 0; i < k; ++i) {
    indices[i] = order[i];
    values[i] = in[order[i]];
  }
  return total;
}

void TopKCompressor::decompress(std::span<const std::byte> in,
                                std::span<float> out) {
  std::fill(out.begin(), out.end(), 0.0f);
  if (in.empty()) return;
  CGX_CHECK_GE(in.size(), 8u);
  std::uint64_t k64 = 0;
  std::memcpy(&k64, in.data(), 8);
  const auto k = static_cast<std::size_t>(k64);
  CGX_CHECK_EQ(in.size(), 8 + 8 * k);
  const auto* indices = reinterpret_cast<const std::uint32_t*>(in.data() + 8);
  const auto* values = reinterpret_cast<const float*>(in.data() + 8 + 4 * k);
  for (std::size_t i = 0; i < k; ++i) {
    CGX_CHECK_LT(indices[i], out.size());
    out[indices[i]] = values[i];
  }
}

std::string TopKCompressor::name() const {
  return "topk(" + std::to_string(ratio_) + ")";
}

std::size_t TopKCompressor::scratch_bytes() const {
  return sizeof(std::uint32_t) * order_.size();
}

// ------------------------------------------------------------------ DGC

DgcTopK::DgcTopK(double ratio, float momentum, double clip)
    : inner_(ratio), momentum_(momentum), clip_(clip) {
  CGX_CHECK(momentum >= 0.0f && momentum < 1.0f);
}

std::size_t DgcTopK::compressed_size(std::size_t n) const {
  return inner_.compressed_size(n);
}

std::size_t DgcTopK::compress(std::span<const float> in,
                              std::span<std::byte> out, util::Rng& rng) {
  const std::size_t n = in.size();
  if (n == 0) return 0;
  if (u_.size() != n) {
    u_.assign(n, 0.0f);
    v_.assign(n, 0.0f);
    norm_ema_ = 0.0;
  }

  // Local gradient clipping: scale the incoming gradient down to at most
  // clip_ * EMA(||g||). DGC clips before the momentum update so one
  // outlier step cannot poison the accumulated velocity.
  double norm_sq = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    norm_sq += static_cast<double>(in[i]) * in[i];
  }
  const double norm = std::sqrt(norm_sq);
  float scale = 1.0f;
  if (clip_ > 0.0 && norm_ema_ > 0.0 && norm > clip_ * norm_ema_) {
    scale = static_cast<float>(clip_ * norm_ema_ / norm);
  }
  norm_ema_ = norm_ema_ == 0.0 ? norm : 0.9 * norm_ema_ + 0.1 * norm;

  // u <- m*u + clip(g); v <- v + u.
  float* u = u_.data();
  float* v = v_.data();
  for (std::size_t i = 0; i < n; ++i) {
    u[i] = momentum_ * u[i] + scale * in[i];
    v[i] += u[i];
  }

  // Select and emit the top-k of |v| through the plain TopK path (same
  // wire format, same deterministic tie-break), then zero the momentum and
  // velocity at the transmitted coordinates (DGC's masking step).
  const std::size_t written =
      inner_.compress({v_.data(), n}, out, rng);
  std::uint64_t k64 = 0;
  std::memcpy(&k64, out.data(), 8);
  const auto* indices = reinterpret_cast<const std::uint32_t*>(out.data() + 8);
  for (std::size_t i = 0; i < static_cast<std::size_t>(k64); ++i) {
    u[indices[i]] = 0.0f;
    v[indices[i]] = 0.0f;
  }
  return written;
}

void DgcTopK::decompress(std::span<const std::byte> in,
                         std::span<float> out) {
  inner_.decompress(in, out);
}

std::string DgcTopK::name() const {
  return "dgc-" + inner_.name();
}

std::size_t DgcTopK::scratch_bytes() const {
  return sizeof(float) * (u_.size() + v_.size()) + inner_.scratch_bytes();
}

double DgcTopK::residual_norm() const {
  double sq = 0.0;
  for (std::size_t i = 0; i < v_.size(); ++i) {
    sq += static_cast<double>(v_.data()[i]) * v_.data()[i];
  }
  return std::sqrt(sq);
}

}  // namespace cgx::core
