#include "core/topk.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <numeric>
#include <vector>

#include "util/check.h"

namespace cgx::core {

TopKCompressor::TopKCompressor(double ratio) : ratio_(ratio) {
  CGX_CHECK(ratio > 0.0 && ratio <= 1.0);
}

std::size_t TopKCompressor::k_for(std::size_t n) const {
  if (n == 0) return 0;
  const auto k = static_cast<std::size_t>(
      std::ceil(ratio_ * static_cast<double>(n)));
  return std::clamp<std::size_t>(k, 1, n);
}

std::size_t TopKCompressor::compressed_size(std::size_t n) const {
  if (n == 0) return 0;
  return 8 + k_for(n) * (4 + 4);
}

std::size_t TopKCompressor::compress(std::span<const float> in,
                                     std::span<std::byte> out,
                                     util::Rng& rng) {
  (void)rng;
  const std::size_t n = in.size();
  if (n == 0) return 0;
  const std::size_t k = k_for(n);
  const std::size_t total = compressed_size(n);
  CGX_CHECK_LE(total, out.size());

  // Partial selection of the k largest |v|; ties broken by lower index for
  // determinism.
  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::nth_element(order.begin(),
                   order.begin() + static_cast<std::ptrdiff_t>(k - 1),
                   order.end(), [&](std::uint32_t a, std::uint32_t b) {
                     const float fa = std::fabs(in[a]);
                     const float fb = std::fabs(in[b]);
                     if (fa != fb) return fa > fb;
                     return a < b;
                   });
  std::sort(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(k));

  const std::uint64_t k64 = k;
  std::memcpy(out.data(), &k64, 8);
  auto* indices = reinterpret_cast<std::uint32_t*>(out.data() + 8);
  auto* values = reinterpret_cast<float*>(out.data() + 8 + 4 * k);
  for (std::size_t i = 0; i < k; ++i) {
    indices[i] = order[i];
    values[i] = in[order[i]];
  }
  return total;
}

void TopKCompressor::decompress(std::span<const std::byte> in,
                                std::span<float> out) {
  std::fill(out.begin(), out.end(), 0.0f);
  if (in.empty()) return;
  CGX_CHECK_GE(in.size(), 8u);
  std::uint64_t k64 = 0;
  std::memcpy(&k64, in.data(), 8);
  const auto k = static_cast<std::size_t>(k64);
  CGX_CHECK_EQ(in.size(), 8 + 8 * k);
  const auto* indices = reinterpret_cast<const std::uint32_t*>(in.data() + 8);
  const auto* values = reinterpret_cast<const float*>(in.data() + 8 + 4 * k);
  for (std::size_t i = 0; i < k; ++i) {
    CGX_CHECK_LT(indices[i], out.size());
    out[indices[i]] = values[i];
  }
}

std::string TopKCompressor::name() const {
  return "topk(" + std::to_string(ratio_) + ")";
}

}  // namespace cgx::core
