// Bucketed stochastic gradient quantization — CGX's default compressor
// (paper §2.3 and §4 "Quantization").
//
// The vector is split into buckets of `bucket_size` elements; each bucket is
// quantized independently against its own norm, which fixes the scaling
// problems of whole-vector QSGD at the cost of one stored float per bucket
// (§4). With b bits per element, one bit encodes the sign and the remaining
// b-1 bits encode a stochastic level on the uniform grid
// {0, 1/s, ..., s/s}, s = 2^(b-1) - 1:
//
//   Q(v_i) = ||v|| * sign(v_i) * q(|v_i| / ||v||, s)
//   q(a, s) = floor(a s)/s + 1/s w.p. (a s - floor(a s)),  else floor(a s)/s
//
// which makes the estimator unbiased: E[Q(v_i)] = v_i. The wire format is
// [bucket norms: fp32 x ceil(n/B)] [packed symbols: b bits x n].
//
// Defaults follow the paper: 4 bits, bucket 128 "always recovers full
// accuracy" (§4); CNNs tolerate bucket 1024 (§6.2).
// Implementation note (performance): compress/decompress are fused batch
// kernels. A whole call quantizes into a grow-only uint32 symbol scratch
// (stochastic rounding randomness drawn bucket-at-a-time via
// Rng::fill_floats), then packs all symbols with the word-level
// pack_symbols fast path. Buckets are independent, so large inputs can
// split buckets across a ThreadPool (enable_threading); every bucket draws
// from its own RNG stream derived from one seed taken off the caller's
// generator, which makes the payload bit-identical for any thread count.
#pragma once

#include <cstddef>
#include <vector>

#include "core/compressor.h"

namespace cgx::core {

enum class QsgdNorm { L2, Linf };

class QsgdCompressor final : public Compressor {
 public:
  // bits in [2, 16] (one sign bit + at least one level bit).
  QsgdCompressor(unsigned bits = 4, std::size_t bucket_size = 128,
                 QsgdNorm norm = QsgdNorm::L2);

  std::size_t compressed_size(std::size_t n) const override;
  std::size_t compress(std::span<const float> in, std::span<std::byte> out,
                       util::Rng& rng) override;
  void decompress(std::span<const std::byte> in,
                  std::span<float> out) override;
  std::string name() const override;

  void enable_threading(util::ThreadPool* pool,
                        std::size_t min_numel) override;
  std::size_t scratch_bytes() const override;

  unsigned bits() const { return bits_; }
  std::size_t bucket_size() const { return bucket_size_; }

  // Upper bound on E||Q(v) - v||^2 / ||v||^2 for a bucket of d elements with
  // s levels (QSGD Lemma 3.1): min(d / s^2, sqrt(d) / s). Used by tests and
  // by the adaptive assigner's analytic error estimates.
  static double variance_bound(std::size_t d, unsigned bits);

 private:
  bool use_pool(std::size_t n, std::size_t buckets) const;

  unsigned bits_;
  std::size_t bucket_size_;
  QsgdNorm norm_;
  util::ThreadPool* pool_ = nullptr;
  std::size_t threading_min_numel_ = 0;
  std::vector<std::uint32_t> symbol_scratch_;
  std::vector<float> rand_scratch_;
};

}  // namespace cgx::core
