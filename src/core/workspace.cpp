#include "core/workspace.h"

namespace cgx::core {
namespace {

template <class T>
std::span<T> slot_span(std::vector<util::ArenaBuffer<T>>& slots,
                       std::size_t slot, std::size_t n, util::Arena* arena) {
  if (slots.size() <= slot) {
    slots.resize(slot + 1);
    for (auto& s : slots) {
      if (s.arena() == nullptr) s.set_arena(arena);
    }
  }
  return ensure_span(slots[slot], n);
}

template <class T>
std::size_t slots_capacity_bytes(
    const std::vector<util::ArenaBuffer<T>>& slots) {
  std::size_t total = 0;
  for (const auto& s : slots) total += s.capacity() * sizeof(T);
  return total;
}

}  // namespace

void CollectiveWorkspace::set_arena(util::Arena* arena) {
  arena_ = arena;
  for (auto& s : byte_slots_) s.set_arena(arena);
  for (auto& s : float_slots_) s.set_arena(arena);
  for (auto& s : size_slots_) s.set_arena(arena);
}

std::span<std::byte> CollectiveWorkspace::bytes(std::size_t slot,
                                                std::size_t n) {
  return slot_span(byte_slots_, slot, n, arena_);
}

std::span<float> CollectiveWorkspace::floats(std::size_t slot,
                                             std::size_t n) {
  return slot_span(float_slots_, slot, n, arena_);
}

std::span<std::size_t> CollectiveWorkspace::sizes(std::size_t slot,
                                                  std::size_t n) {
  return slot_span(size_slots_, slot, n, arena_);
}

std::size_t CollectiveWorkspace::high_water_bytes() const {
  return slots_capacity_bytes(byte_slots_) +
         slots_capacity_bytes(float_slots_) +
         slots_capacity_bytes(size_slots_);
}

}  // namespace cgx::core
