#include "core/compressed_allreduce.h"

#include <vector>

#include "tensor/tensor_ops.h"
#include "util/check.h"

namespace cgx::core {
namespace {

constexpr int kScatterTag = 210;
constexpr int kGatherTag = 211;
constexpr int kRingReduceTag = 220;
constexpr int kRingGatherTag = 221;
constexpr int kTreeReduceTag = 230;
constexpr int kTreeBcastTag = 231;

using comm::chunk_range;

std::span<std::byte> as_bytes_span(std::vector<std::byte>& v) {
  return {v.data(), v.size()};
}

}  // namespace

void compressed_allreduce(comm::Comm& comm, std::span<float> data,
                          std::span<Compressor* const> chunk_compressors,
                          util::Rng& rng, comm::ReductionScheme scheme) {
  switch (scheme) {
    case comm::ReductionScheme::ScatterReduceAllgather:
      compressed_allreduce_sra(comm, data, chunk_compressors, rng);
      return;
    case comm::ReductionScheme::Ring:
      compressed_allreduce_ring(comm, data, chunk_compressors, rng);
      return;
    case comm::ReductionScheme::Tree:
      compressed_allreduce_tree(comm, data, chunk_compressors, rng);
      return;
  }
}

void compressed_allreduce_sra(comm::Comm& comm, std::span<float> data,
                              std::span<Compressor* const> chunk_compressors,
                              util::Rng& rng) {
  const int n = comm.size();
  const int r = comm.rank();
  CGX_CHECK_EQ(chunk_compressors.size(), static_cast<std::size_t>(n));
  if (n == 1 || data.empty()) return;

  // Round 1: compress chunk p once and ship it to its aggregator p.
  std::vector<std::byte> payload;
  for (int p = 0; p < n; ++p) {
    if (p == r) continue;
    const auto [first, last] = chunk_range(data.size(), n, p);
    const std::span<const float> chunk = data.subspan(first, last - first);
    payload.resize(chunk_compressors[p]->compressed_size(chunk.size()));
    const std::size_t written =
        chunk_compressors[p]->compress(chunk, as_bytes_span(payload), rng);
    comm.send(p, std::span<const std::byte>(payload.data(), written),
              kScatterTag);
  }

  // Aggregate my chunk: my raw contribution plus N-1 decompressed ones.
  const auto [mf, ml] = chunk_range(data.size(), n, r);
  std::span<float> mine = data.subspan(mf, ml - mf);
  std::vector<float> incoming(mine.size());
  std::vector<std::byte> in_payload(
      chunk_compressors[r]->compressed_size(mine.size()));
  for (int p = 0; p < n; ++p) {
    if (p == r) continue;
    comm.recv(p, as_bytes_span(in_payload), kScatterTag);
    chunk_compressors[r]->decompress(in_payload, incoming);
    tensor::add_inplace(mine, incoming);
  }

  // Round 2: compress the reduced chunk once and broadcast it. Decompress
  // our own payload too, so every rank ends bit-identical.
  payload.resize(chunk_compressors[r]->compressed_size(mine.size()));
  const std::size_t written =
      chunk_compressors[r]->compress(mine, as_bytes_span(payload), rng);
  const std::span<const std::byte> reduced(payload.data(), written);
  for (int p = 0; p < n; ++p) {
    if (p == r) continue;
    comm.send(p, reduced, kGatherTag);
  }
  chunk_compressors[r]->decompress(reduced, mine);
  for (int p = 0; p < n; ++p) {
    if (p == r) continue;
    const auto [first, last] = chunk_range(data.size(), n, p);
    std::span<float> chunk = data.subspan(first, last - first);
    in_payload.resize(chunk_compressors[p]->compressed_size(chunk.size()));
    comm.recv(p, as_bytes_span(in_payload), kGatherTag);
    chunk_compressors[p]->decompress(in_payload, chunk);
  }
}

void compressed_allreduce_ring(comm::Comm& comm, std::span<float> data,
                               std::span<Compressor* const> chunk_compressors,
                               util::Rng& rng) {
  const int n = comm.size();
  const int r = comm.rank();
  CGX_CHECK_EQ(chunk_compressors.size(), static_cast<std::size_t>(n));
  if (n == 1 || data.empty()) return;
  const int right = (r + 1) % n;
  const int left = (r - 1 + n) % n;

  // Reduce-scatter phase: the partial sum is re-compressed at EVERY hop —
  // this is precisely the iterated compression error §3 charges against
  // Ring for non-associative operators.
  std::vector<std::byte> payload;
  std::vector<float> incoming;
  for (int s = 0; s < n - 1; ++s) {
    const int send_idx = (r - s + n) % n;
    const int recv_idx = (r - s - 1 + n) % n;
    {
      const auto [sf, sl] = chunk_range(data.size(), n, send_idx);
      const std::span<const float> chunk = data.subspan(sf, sl - sf);
      payload.resize(chunk_compressors[send_idx]->compressed_size(chunk.size()));
      const std::size_t written = chunk_compressors[send_idx]->compress(
          chunk, as_bytes_span(payload), rng);
      comm.send(right, std::span<const std::byte>(payload.data(), written),
                kRingReduceTag);
    }
    {
      const auto [rf, rl] = chunk_range(data.size(), n, recv_idx);
      std::span<float> chunk = data.subspan(rf, rl - rf);
      payload.resize(chunk_compressors[recv_idx]->compressed_size(chunk.size()));
      comm.recv(left, as_bytes_span(payload), kRingReduceTag);
      incoming.resize(chunk.size());
      chunk_compressors[recv_idx]->decompress(payload, incoming);
      tensor::add_inplace(chunk, incoming);
    }
  }

  // Allgather phase: the owner compresses its reduced chunk once; the bytes
  // are relayed verbatim around the ring (no re-compression).
  const int owned = (r + 1) % n;
  std::vector<std::vector<std::byte>> compressed(static_cast<std::size_t>(n));
  {
    const auto [of, ol] = chunk_range(data.size(), n, owned);
    std::span<float> chunk = data.subspan(of, ol - of);
    auto& buf = compressed[static_cast<std::size_t>(owned)];
    buf.resize(chunk_compressors[owned]->compressed_size(chunk.size()));
    const std::size_t written =
        chunk_compressors[owned]->compress(chunk, as_bytes_span(buf), rng);
    buf.resize(written);
    // Canonicalize our own copy to the decompressed payload.
    chunk_compressors[owned]->decompress(buf, chunk);
  }
  for (int s = 0; s < n - 1; ++s) {
    const int send_idx = (r + 1 - s + n) % n;
    const int recv_idx = (r - s + n) % n;
    comm.send(right, compressed[static_cast<std::size_t>(send_idx)],
              kRingGatherTag);
    const auto [rf, rl] = chunk_range(data.size(), n, recv_idx);
    std::span<float> chunk = data.subspan(rf, rl - rf);
    auto& buf = compressed[static_cast<std::size_t>(recv_idx)];
    buf.resize(chunk_compressors[recv_idx]->compressed_size(chunk.size()));
    comm.recv(left, as_bytes_span(buf), kRingGatherTag);
    chunk_compressors[recv_idx]->decompress(buf, chunk);
  }
}

void compressed_allreduce_tree(comm::Comm& comm, std::span<float> data,
                               std::span<Compressor* const> chunk_compressors,
                               util::Rng& rng) {
  const int n = comm.size();
  const int r = comm.rank();
  CGX_CHECK_GE(chunk_compressors.size(), 1u);
  if (n == 1 || data.empty()) return;
  Compressor& compressor = *chunk_compressors[0];

  int top = 1;
  while (top < n) top <<= 1;
  top >>= 1;

  std::vector<std::byte> payload(compressor.compressed_size(data.size()));
  std::vector<float> incoming(data.size());

  // Binomial reduce towards rank 0; every sender compresses its current
  // partial sum (log N re-compressions on the deepest path).
  for (int mask = top; mask >= 1; mask >>= 1) {
    if (r >= mask && r < 2 * mask) {
      const std::size_t written =
          compressor.compress(data, as_bytes_span(payload), rng);
      comm.send(r - mask, std::span<const std::byte>(payload.data(), written),
                kTreeReduceTag);
    } else if (r < mask && r + mask < n) {
      comm.recv(r + mask, as_bytes_span(payload), kTreeReduceTag);
      compressor.decompress(payload, incoming);
      tensor::add_inplace(data, incoming);
    }
  }

  // Root compresses the final sum once; bytes are relayed down unchanged.
  if (r == 0) {
    const std::size_t written =
        compressor.compress(data, as_bytes_span(payload), rng);
    payload.resize(written);
    compressor.decompress(payload, data);  // root matches everyone else
  }
  for (int mask = 1; mask < n; mask <<= 1) {
    if (r < mask && r + mask < n) {
      comm.send(r + mask, payload, kTreeBcastTag);
    } else if (r >= mask && r < 2 * mask) {
      payload.resize(compressor.compressed_size(data.size()));
      comm.recv(r - mask, as_bytes_span(payload), kTreeBcastTag);
      compressor.decompress(payload, data);
    }
  }
}

}  // namespace cgx::core
