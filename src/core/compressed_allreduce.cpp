#include "core/compressed_allreduce.h"

#include <array>

#include "comm/tagspace.h"
#include "tensor/tensor_ops.h"
#include "util/check.h"

namespace cgx::core {
namespace {

// Canonical tag bases live in comm/tagspace.h; a bucketed caller shifts
// them by bucket_tag_offset(b) via the tag_base parameter.
using comm::kRingGatherTag;
using comm::kRingReduceTag;
using comm::kSraGatherTag;
using comm::kSraScatterTag;
using comm::kTreeBcastTag;
using comm::kTreeReduceTag;

using comm::chunk_range;

// Workspace slot assignment for this translation unit. Hierarchical.cpp
// reuses the same numbers; that is safe because the two never hold spans
// across a call into each other's helpers for the same slot.
constexpr std::size_t kSlotPayload = 0;    // outbound payload
constexpr std::size_t kSlotInPayload = 1;  // inbound payload
constexpr std::size_t kSlotIncoming = 0;   // float accumulation buffer
constexpr std::size_t kSlotRingBase = 2;   // ring: byte slot per chunk
constexpr std::size_t kSlotRingSizes = 0;  // ring: written size per chunk

// Arrival-order iteration over the peers of rank `r` (see
// comm::for_each_by_arrival). Used only where service order cannot change
// the final floats: receives into disjoint regions, or staged folds whose
// adds run in fixed rank order afterwards.
template <typename Fn>
void for_each_peer_by_arrival(comm::Comm& comm, int tag, Fn&& fn) {
  const int n = comm.size();
  const int r = comm.rank();
  std::array<int, static_cast<std::size_t>(comm::kMaxAnySourceWorld)> peers;
  if (n - 1 > comm::kMaxAnySourceWorld) {
    for (int p = 0; p < n; ++p) {
      if (p != r) fn(p);
    }
    return;
  }
  int count = 0;
  for (int p = 0; p < n; ++p) {
    if (p != r) peers[static_cast<std::size_t>(count++)] = p;
  }
  comm::for_each_by_arrival(
      comm, {peers.data(), static_cast<std::size_t>(count)}, tag, fn);
}

}  // namespace

void compressed_allreduce(comm::Comm& comm, std::span<float> data,
                          std::span<Compressor* const> chunk_compressors,
                          util::Rng& rng, comm::ReductionScheme scheme,
                          CollectiveWorkspace& ws, int tag_base) {
  switch (scheme) {
    case comm::ReductionScheme::ScatterReduceAllgather:
      compressed_allreduce_sra(comm, data, chunk_compressors, rng, ws,
                               tag_base);
      return;
    case comm::ReductionScheme::Ring:
      compressed_allreduce_ring(comm, data, chunk_compressors, rng, ws,
                                tag_base);
      return;
    case comm::ReductionScheme::Tree:
      compressed_allreduce_tree(comm, data, chunk_compressors, rng, ws,
                                tag_base);
      return;
  }
}

void compressed_sra_begin(comm::Comm& comm, std::span<float> data,
                          std::span<Compressor* const> chunk_compressors,
                          util::Rng& rng, CollectiveWorkspace& ws,
                          int tag_base) {
  const int n = comm.size();
  const int r = comm.rank();
  CGX_CHECK_EQ(chunk_compressors.size(), static_cast<std::size_t>(n));
  if (n == 1 || data.empty()) return;

  // Round 1: compress chunk p once and ship it to its aggregator p.
  for (int p = 0; p < n; ++p) {
    if (p == r) continue;
    const auto [first, last] = chunk_range(data.size(), n, p);
    const std::span<const float> chunk = data.subspan(first, last - first);
    const std::span<std::byte> payload = ws.bytes(
        kSlotPayload, chunk_compressors[p]->compressed_size(chunk.size()));
    const std::size_t written =
        chunk_compressors[p]->compress(chunk, payload, rng);
    comm.send(p, payload.first(written), kSraScatterTag + tag_base);
  }
}

void compressed_sra_finish(comm::Comm& comm, std::span<float> data,
                           std::span<Compressor* const> chunk_compressors,
                           util::Rng& rng, CollectiveWorkspace& ws,
                           int tag_base) {
  const int n = comm.size();
  const int r = comm.rank();
  CGX_CHECK_EQ(chunk_compressors.size(), static_cast<std::size_t>(n));
  if (n == 1 || data.empty()) return;
  const int scatter_tag = kSraScatterTag + tag_base;
  const int gather_tag = kSraGatherTag + tag_base;

  // Aggregate my chunk: my raw contribution plus N-1 decompressed ones.
  // Payloads are received AND decompressed in arrival order — each into its
  // sender's own slot, so the decompression of early arrivals overlaps the
  // transit of slow peers — but the adds run in fixed rank order, keeping
  // the sum bit-identical run to run.
  const auto [mf, ml] = chunk_range(data.size(), n, r);
  std::span<float> mine = data.subspan(mf, ml - mf);
  const std::size_t peers = static_cast<std::size_t>(n - 1);
  const std::span<float> staged =
      ws.floats(kSlotIncoming, peers * mine.size());
  const std::span<std::byte> in_payload = ws.bytes(
      kSlotInPayload, chunk_compressors[r]->compressed_size(mine.size()));
  const auto slot_of = [r](int p) {
    return static_cast<std::size_t>(p < r ? p : p - 1);
  };
  for_each_peer_by_arrival(comm, scatter_tag, [&](int p) {
    comm.recv(p, in_payload, scatter_tag);
    chunk_compressors[r]->decompress(
        in_payload, staged.subspan(slot_of(p) * mine.size(), mine.size()));
  });
  for (int p = 0; p < n; ++p) {
    if (p == r) continue;
    tensor::add_inplace(
        mine, staged.subspan(slot_of(p) * mine.size(), mine.size()));
  }

  // Round 2: compress the reduced chunk once and broadcast it. Decompress
  // our own payload too, so every rank ends bit-identical.
  const std::span<std::byte> payload = ws.bytes(
      kSlotPayload, chunk_compressors[r]->compressed_size(mine.size()));
  const std::size_t written =
      chunk_compressors[r]->compress(mine, payload, rng);
  const std::span<const std::byte> reduced = payload.first(written);
  for (int p = 0; p < n; ++p) {
    if (p == r) continue;
    comm.send(p, reduced, gather_tag);
  }
  chunk_compressors[r]->decompress(reduced, mine);
  // Reduced chunks land in disjoint regions, so arrival order cannot
  // change the final bytes here.
  for_each_peer_by_arrival(comm, gather_tag, [&](int p) {
    const auto [first, last] = chunk_range(data.size(), n, p);
    std::span<float> chunk = data.subspan(first, last - first);
    const std::span<std::byte> gathered = ws.bytes(
        kSlotInPayload, chunk_compressors[p]->compressed_size(chunk.size()));
    comm.recv(p, gathered, gather_tag);
    chunk_compressors[p]->decompress(gathered, chunk);
  });
}

void compressed_allreduce_sra(comm::Comm& comm, std::span<float> data,
                              std::span<Compressor* const> chunk_compressors,
                              util::Rng& rng, CollectiveWorkspace& ws,
                              int tag_base) {
  compressed_sra_begin(comm, data, chunk_compressors, rng, ws, tag_base);
  compressed_sra_finish(comm, data, chunk_compressors, rng, ws, tag_base);
}

void compressed_allreduce_ring(comm::Comm& comm, std::span<float> data,
                               std::span<Compressor* const> chunk_compressors,
                               util::Rng& rng, CollectiveWorkspace& ws,
                               int tag_base) {
  const int n = comm.size();
  const int r = comm.rank();
  CGX_CHECK_EQ(chunk_compressors.size(), static_cast<std::size_t>(n));
  if (n == 1 || data.empty()) return;
  const int right = (r + 1) % n;
  const int left = (r - 1 + n) % n;
  const int reduce_tag = kRingReduceTag + tag_base;
  const int gather_tag = kRingGatherTag + tag_base;

  // Reduce-scatter phase: the partial sum is re-compressed at EVERY hop —
  // this is precisely the iterated compression error §3 charges against
  // Ring for non-associative operators.
  for (int s = 0; s < n - 1; ++s) {
    const int send_idx = (r - s + n) % n;
    const int recv_idx = (r - s - 1 + n) % n;
    {
      const auto [sf, sl] = chunk_range(data.size(), n, send_idx);
      const std::span<const float> chunk = data.subspan(sf, sl - sf);
      const std::span<std::byte> payload = ws.bytes(
          kSlotPayload,
          chunk_compressors[send_idx]->compressed_size(chunk.size()));
      const std::size_t written =
          chunk_compressors[send_idx]->compress(chunk, payload, rng);
      comm.send(right, payload.first(written), reduce_tag);
    }
    {
      const auto [rf, rl] = chunk_range(data.size(), n, recv_idx);
      std::span<float> chunk = data.subspan(rf, rl - rf);
      const std::span<std::byte> payload = ws.bytes(
          kSlotInPayload,
          chunk_compressors[recv_idx]->compressed_size(chunk.size()));
      comm.recv(left, payload, reduce_tag);
      const std::span<float> incoming =
          ws.floats(kSlotIncoming, chunk.size());
      chunk_compressors[recv_idx]->decompress(payload, incoming);
      tensor::add_inplace(chunk, incoming);
    }
  }

  // Allgather phase: the owner compresses its reduced chunk once; the bytes
  // are relayed verbatim around the ring (no re-compression). Each chunk
  // index keeps its own byte slot because payloads live across ring steps.
  const int owned = (r + 1) % n;
  const std::span<std::size_t> sizes =
      ws.sizes(kSlotRingSizes, static_cast<std::size_t>(n));
  {
    const auto [of, ol] = chunk_range(data.size(), n, owned);
    std::span<float> chunk = data.subspan(of, ol - of);
    const std::span<std::byte> buf =
        ws.bytes(kSlotRingBase + static_cast<std::size_t>(owned),
                 chunk_compressors[owned]->compressed_size(chunk.size()));
    sizes[static_cast<std::size_t>(owned)] =
        chunk_compressors[owned]->compress(chunk, buf, rng);
    // Canonicalize our own copy to the decompressed payload.
    chunk_compressors[owned]->decompress(
        buf.first(sizes[static_cast<std::size_t>(owned)]), chunk);
  }
  for (int s = 0; s < n - 1; ++s) {
    const int send_idx = (r + 1 - s + n) % n;
    const int recv_idx = (r - s + n) % n;
    const std::span<const std::byte> outbound =
        ws.bytes(kSlotRingBase + static_cast<std::size_t>(send_idx),
                 sizes[static_cast<std::size_t>(send_idx)]);
    comm.send(right, outbound, gather_tag);
    const auto [rf, rl] = chunk_range(data.size(), n, recv_idx);
    std::span<float> chunk = data.subspan(rf, rl - rf);
    sizes[static_cast<std::size_t>(recv_idx)] =
        chunk_compressors[recv_idx]->compressed_size(chunk.size());
    const std::span<std::byte> buf =
        ws.bytes(kSlotRingBase + static_cast<std::size_t>(recv_idx),
                 sizes[static_cast<std::size_t>(recv_idx)]);
    comm.recv(left, buf, gather_tag);
    chunk_compressors[recv_idx]->decompress(buf, chunk);
  }
}

void compressed_allreduce_tree(comm::Comm& comm, std::span<float> data,
                               std::span<Compressor* const> chunk_compressors,
                               util::Rng& rng, CollectiveWorkspace& ws,
                               int tag_base) {
  const int n = comm.size();
  const int r = comm.rank();
  CGX_CHECK_GE(chunk_compressors.size(), 1u);
  if (n == 1 || data.empty()) return;
  Compressor& compressor = *chunk_compressors[0];
  const int reduce_tag = kTreeReduceTag + tag_base;
  const int bcast_tag = kTreeBcastTag + tag_base;

  int top = 1;
  while (top < n) top <<= 1;
  top >>= 1;

  const std::size_t full_payload = compressor.compressed_size(data.size());
  std::span<std::byte> payload = ws.bytes(kSlotPayload, full_payload);
  const std::span<float> incoming = ws.floats(kSlotIncoming, data.size());

  // Binomial reduce towards rank 0; every sender compresses its current
  // partial sum (log N re-compressions on the deepest path).
  for (int mask = top; mask >= 1; mask >>= 1) {
    if (r >= mask && r < 2 * mask) {
      const std::size_t written = compressor.compress(data, payload, rng);
      comm.send(r - mask, payload.first(written), reduce_tag);
    } else if (r < mask && r + mask < n) {
      comm.recv(r + mask, payload, reduce_tag);
      compressor.decompress(payload, incoming);
      tensor::add_inplace(data, incoming);
    }
  }

  // Root compresses the final sum once; bytes are relayed down unchanged.
  if (r == 0) {
    const std::size_t written = compressor.compress(data, payload, rng);
    payload = payload.first(written);
    compressor.decompress(payload, data);  // root matches everyone else
  }
  for (int mask = 1; mask < n; mask <<= 1) {
    if (r < mask && r + mask < n) {
      comm.send(r + mask, payload, bcast_tag);
    } else if (r >= mask && r < 2 * mask) {
      payload = ws.bytes(kSlotPayload, full_payload);
      comm.recv(r - mask, payload, bcast_tag);
      compressor.decompress(payload, data);
    }
  }
}

void compressed_allreduce(comm::Comm& comm, std::span<float> data,
                          std::span<Compressor* const> chunk_compressors,
                          util::Rng& rng, comm::ReductionScheme scheme) {
  CollectiveWorkspace ws;
  compressed_allreduce(comm, data, chunk_compressors, rng, scheme, ws);
}

void compressed_allreduce_sra(comm::Comm& comm, std::span<float> data,
                              std::span<Compressor* const> chunk_compressors,
                              util::Rng& rng) {
  CollectiveWorkspace ws;
  compressed_allreduce_sra(comm, data, chunk_compressors, rng, ws);
}

void compressed_allreduce_ring(comm::Comm& comm, std::span<float> data,
                               std::span<Compressor* const> chunk_compressors,
                               util::Rng& rng) {
  CollectiveWorkspace ws;
  compressed_allreduce_ring(comm, data, chunk_compressors, rng, ws);
}

void compressed_allreduce_tree(comm::Comm& comm, std::span<float> data,
                               std::span<Compressor* const> chunk_compressors,
                               util::Rng& rng) {
  CollectiveWorkspace ws;
  compressed_allreduce_tree(comm, data, chunk_compressors, rng, ws);
}

}  // namespace cgx::core
