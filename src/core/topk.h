// TopK gradient sparsification (paper §2.3, "Gradient Sparsification").
//
// Transmits the k = ceil(ratio * n) largest-magnitude components as
// (index, value) pairs; everything else is dropped. The operator is biased,
// so accuracy recovery requires error feedback (wrap in ErrorFeedback) —
// exactly the extra machinery the paper counts against sparsification for
// generic deployments. CGX still offers it for naturally sparse layers such
// as Transformer embeddings (§6.2 "Heterogeneous compression": TopK at 1%
// with error feedback).
//
// Wire format: [k: uint64] [indices: uint32 x k] [values: fp32 x k].
#pragma once

#include "core/compressor.h"
#include "util/arena.h"

namespace cgx::core {

class TopKCompressor final : public Compressor {
 public:
  explicit TopKCompressor(double ratio);

  std::size_t compressed_size(std::size_t n) const override;
  std::size_t compress(std::span<const float> in, std::span<std::byte> out,
                       util::Rng& rng) override;
  void decompress(std::span<const std::byte> in,
                  std::span<float> out) override;
  std::string name() const override;

  double ratio() const { return ratio_; }
  std::size_t k_for(std::size_t n) const;
  std::size_t scratch_bytes() const override;

 private:
  double ratio_;
  // Selection scratch (grow-only, arena-backed): the hot compress path must
  // stay allocation-free in steady state, same contract as QSGD's buckets.
  util::ArenaBuffer<std::uint32_t> order_;
};

// DGC-style top-k (Deep Gradient Compression, Lin et al.): momentum
// correction plus local gradient clipping on top of the plain TopK wire
// format, which is what lets sparsification reach 100-600x ratios without
// losing accuracy. Per step, on this instance's chunk:
//
//   g'  = clip(g)                       (norm-clip against a running EMA)
//   u  <- m * u + g'                    (momentum correction)
//   v  <- v + u                         (velocity == the residual store)
//   send top-k of |v|; u[i] = v[i] = 0 at the selected indices.
//
// Accumulating the *momentum-corrected* gradient in v (rather than the raw
// gradient, as plain error feedback would) is DGC's fix for the stale-
// momentum problem: when an element finally ships after T steps of
// accumulation, it carries the same momentum-weighted sum it would have
// contributed densely. v IS the residual, so DgcTopK must NOT be wrapped in
// ErrorFeedback — make_compressor() skips the wrapper when cfg.dgc is set.
//
// The wire format (and compressed_size) is exactly TopKCompressor's, so the
// collectives, bucket fusion, and the hierarchical node-boundary
// re-compression all work unchanged; like every stateful operator the
// engine binds one instance per (rank, layer-chunk).
class DgcTopK final : public Compressor {
 public:
  // momentum in [0, 1); clip <= 0 disables local gradient clipping,
  // otherwise incoming gradients are scaled down to at most
  // clip * EMA(||g||) (the local analogue of DGC's gradient clipping).
  DgcTopK(double ratio, float momentum = 0.9f, double clip = 2.5);

  std::size_t compressed_size(std::size_t n) const override;
  std::size_t compress(std::span<const float> in, std::span<std::byte> out,
                       util::Rng& rng) override;
  void decompress(std::span<const std::byte> in,
                  std::span<float> out) override;
  std::string name() const override;
  std::size_t scratch_bytes() const override;

  double ratio() const { return inner_.ratio(); }
  float momentum() const { return momentum_; }
  // L2 norm of the unsent velocity v — the residual the policy controller's
  // telemetry watches (same contract as ErrorFeedback::residual_norm).
  double residual_norm() const;

 private:
  TopKCompressor inner_;
  float momentum_;
  double clip_;
  double norm_ema_ = 0.0;  // running EMA of the incoming gradient norm
  // Arena-aware grow-only state, same lifecycle as EF residuals.
  util::ArenaBuffer<float> u_;  // momentum accumulator
  util::ArenaBuffer<float> v_;  // velocity / residual store
};

}  // namespace cgx::core
