// TopK gradient sparsification (paper §2.3, "Gradient Sparsification").
//
// Transmits the k = ceil(ratio * n) largest-magnitude components as
// (index, value) pairs; everything else is dropped. The operator is biased,
// so accuracy recovery requires error feedback (wrap in ErrorFeedback) —
// exactly the extra machinery the paper counts against sparsification for
// generic deployments. CGX still offers it for naturally sparse layers such
// as Transformer embeddings (§6.2 "Heterogeneous compression": TopK at 1%
// with error feedback).
//
// Wire format: [k: uint64] [indices: uint32 x k] [values: fp32 x k].
#pragma once

#include "core/compressor.h"

namespace cgx::core {

class TopKCompressor final : public Compressor {
 public:
  explicit TopKCompressor(double ratio);

  std::size_t compressed_size(std::size_t n) const override;
  std::size_t compress(std::span<const float> in, std::span<std::byte> out,
                       util::Rng& rng) override;
  void decompress(std::span<const std::byte> in,
                  std::span<float> out) override;
  std::string name() const override;

  double ratio() const { return ratio_; }
  std::size_t k_for(std::size_t n) const;

 private:
  double ratio_;
};

}  // namespace cgx::core
