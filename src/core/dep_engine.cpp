#include "core/dep_engine.h"

#include <algorithm>
#include <stdexcept>

#include "util/check.h"

namespace cgx::core {

DepEngine::VarId DepEngine::new_var() {
  vars_.push_back(Var{});
  return static_cast<VarId>(vars_.size() - 1);
}

void DepEngine::add_edge(OpId from, OpId to) {
  if (from == to) return;  // read-modify-write of the same op, not an edge
  Op& dst = ops_[to];
  if (std::find(dst.deps.begin(), dst.deps.end(), from) != dst.deps.end()) {
    return;  // same predecessor reached via several variables
  }
  dst.deps.push_back(from);
  ops_[from].dependents.push_back(to);
}

DepEngine::OpId DepEngine::push(std::function<void()> fn,
                                std::span<const VarId> reads,
                                std::span<const VarId> writes) {
  CGX_CHECK(fn != nullptr);
  const OpId id = static_cast<OpId>(ops_.size());
  CGX_CHECK_LT(id, kNoOp);
  ops_.push_back(Op{std::move(fn), {}, {}});
  // RAW: a read waits for the variable's last writer.
  for (VarId v : reads) {
    CGX_CHECK_LT(v, vars_.size());
    if (vars_[v].last_writer != kNoOp) add_edge(vars_[v].last_writer, id);
    vars_[v].readers_since_write.push_back(id);
  }
  // WAW + WAR: a write waits for the last writer and every reader since.
  for (VarId v : writes) {
    CGX_CHECK_LT(v, vars_.size());
    if (vars_[v].last_writer != kNoOp) add_edge(vars_[v].last_writer, id);
    for (OpId r : vars_[v].readers_since_write) add_edge(r, id);
    vars_[v].last_writer = id;
    vars_[v].readers_since_write.clear();
  }
  validated_ = false;
  return id;
}

void DepEngine::add_dep(OpId op, OpId after) {
  CGX_CHECK_LT(op, ops_.size());
  CGX_CHECK_LT(after, ops_.size());
  add_edge(after, op);
  validated_ = false;
}

void DepEngine::validate_acyclic() {
  // Derived edges always point from an earlier op to a later one, so only
  // add_dep can create a cycle — but validation is cheap enough to run
  // unconditionally after any topology change.
  const std::size_t n = ops_.size();
  kahn_deg_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    kahn_deg_[i] = static_cast<std::uint32_t>(ops_[i].deps.size());
  }
  kahn_queue_.clear();
  kahn_queue_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (kahn_deg_[i] == 0) kahn_queue_.push_back(static_cast<OpId>(i));
  }
  std::size_t processed = 0;
  while (processed < kahn_queue_.size()) {
    const OpId id = kahn_queue_[processed++];
    for (OpId d : ops_[id].dependents) {
      if (--kahn_deg_[d] == 0) kahn_queue_.push_back(d);
    }
  }
  if (processed != n) {
    throw std::runtime_error(
        "DepEngine: dependency cycle detected (op graph is not a DAG)");
  }
  ready_heap_.reserve(n);
  validated_ = true;
}

void DepEngine::run() {
  if (ops_.empty()) return;
  if (!validated_) validate_acyclic();
  if (pool_ == nullptr) {
    run_serial();
  } else {
    run_pooled();
  }
}

void DepEngine::run_serial() {
  // Deterministic topological order: among all ready ops, always execute
  // the smallest op id. This is the reference schedule the pool mode must
  // match bit-for-bit (given the determinism contract in the header).
  const std::size_t n = ops_.size();
  serial_pending_.resize(n);
  ready_heap_.clear();
  for (std::size_t i = 0; i < n; ++i) {
    serial_pending_[i] = static_cast<std::uint32_t>(ops_[i].deps.size());
    if (serial_pending_[i] == 0) ready_heap_.push_back(static_cast<OpId>(i));
  }
  std::make_heap(ready_heap_.begin(), ready_heap_.end(),
                 std::greater<OpId>{});
  std::size_t done = 0;
  while (!ready_heap_.empty()) {
    std::pop_heap(ready_heap_.begin(), ready_heap_.end(),
                  std::greater<OpId>{});
    const OpId id = ready_heap_.back();
    ready_heap_.pop_back();
    ops_[id].fn();  // exceptions propagate to the caller directly
    if (on_complete_) on_complete_(id);
    ++done;
    for (OpId d : ops_[id].dependents) {
      if (--serial_pending_[d] == 0) {
        ready_heap_.push_back(d);
        std::push_heap(ready_heap_.begin(), ready_heap_.end(),
                       std::greater<OpId>{});
      }
    }
  }
  CGX_CHECK_EQ(done, n);  // guaranteed by validate_acyclic()
}

void DepEngine::op_trampoline(void* self, std::size_t id) {
  static_cast<DepEngine*>(self)->run_op_pooled(static_cast<OpId>(id));
}

void DepEngine::run_op_pooled(OpId id) {
  Op& op = ops_[id];
  if (!failed_.load(std::memory_order_acquire)) {
    try {
      op.fn();
      if (on_complete_) on_complete_(id);
    } catch (...) {
      std::lock_guard<std::mutex> lock(error_mutex_);
      if (!error_) error_ = std::current_exception();
      failed_.store(true, std::memory_order_release);
    }
  }
  // Release dependents even after a failure so the graph drains and run()
  // can return (their bodies are skipped by the failed_ check above).
  for (OpId d : op.dependents) {
    if (pending_[d].fetch_sub(1, std::memory_order_acq_rel) == 1) {
      pool_->submit_raw(&op_trampoline, this, d);
    }
  }
  completed_.fetch_add(1, std::memory_order_release);
  completed_.notify_all();
}

void DepEngine::run_pooled() {
  const std::size_t n = ops_.size();
  if (pending_cap_ < n) {
    pending_.reset(new std::atomic<std::uint32_t>[n]);
    pending_cap_ = n;
  }
  pool_->reserve_raw(n);  // no-op once grown: replay stays allocation-free
  for (std::size_t i = 0; i < n; ++i) {
    pending_[i].store(static_cast<std::uint32_t>(ops_[i].deps.size()),
                      std::memory_order_relaxed);
  }
  completed_.store(0, std::memory_order_relaxed);
  failed_.store(false, std::memory_order_relaxed);
  error_ = nullptr;
  for (std::size_t i = 0; i < n; ++i) {
    if (ops_[i].deps.empty()) {
      pool_->submit_raw(&op_trampoline, this, i);
    }
  }
  std::uint32_t c;
  while ((c = completed_.load(std::memory_order_acquire)) <
         static_cast<std::uint32_t>(n)) {
    completed_.wait(c, std::memory_order_acquire);
  }
  if (error_) {
    std::exception_ptr e = error_;
    error_ = nullptr;
    std::rethrow_exception(e);
  }
}

void DepEngine::clear() {
  ops_.clear();
  vars_.clear();
  validated_ = false;
}

}  // namespace cgx::core
