#include "core/powersgd.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "tensor/tensor_ops.h"
#include "util/check.h"
#include "util/half.h"

namespace cgx::core {
namespace {

void round_to_half(std::span<float> xs) {
  for (auto& x : xs) x = util::half_to_float(util::float_to_half(x));
}

}  // namespace

void orthonormalize_columns(std::span<float> a, std::size_t m,
                            std::size_t r) {
  CGX_CHECK_EQ(a.size(), m * r);
  for (std::size_t j = 0; j < r; ++j) {
    // Subtract projections onto previous columns.
    for (std::size_t k = 0; k < j; ++k) {
      double proj = 0.0;
      for (std::size_t i = 0; i < m; ++i) {
        proj += static_cast<double>(a[i * r + j]) * a[i * r + k];
      }
      for (std::size_t i = 0; i < m; ++i) {
        a[i * r + j] -= static_cast<float>(proj) * a[i * r + k];
      }
    }
    double norm_sq = 0.0;
    for (std::size_t i = 0; i < m; ++i) {
      norm_sq += static_cast<double>(a[i * r + j]) * a[i * r + j];
    }
    const double norm = std::sqrt(norm_sq);
    if (norm < 1e-12) {
      // Degenerate column: replace with a unit basis vector to keep the
      // projector well-defined.
      for (std::size_t i = 0; i < m; ++i) {
        a[i * r + j] = (i == j % m) ? 1.0f : 0.0f;
      }
      continue;
    }
    const auto inv = static_cast<float>(1.0 / norm);
    for (std::size_t i = 0; i < m; ++i) a[i * r + j] *= inv;
  }
}

PowerSgdCompressor::PowerSgdCompressor(std::size_t rows, unsigned rank,
                                       bool fp16_emulation)
    : rows_(rows), rank_(rank), fp16_emulation_(fp16_emulation) {
  CGX_CHECK_GE(rank, 1u);
}

bool PowerSgdCompressor::decomposable(std::size_t n) const {
  if (rows_ <= 1 || n == 0 || n % rows_ != 0) return false;
  const std::size_t c = n / rows_;
  if (c <= 1) return false;
  // Decomposition must actually shrink the payload.
  return rank_ * (rows_ + c) < rows_ * c;
}

std::size_t PowerSgdCompressor::cols(std::size_t n) const {
  return n / rows_;
}

std::size_t PowerSgdCompressor::compressed_size(std::size_t n) const {
  if (!decomposable(n)) return 4 * n;  // FP32 passthrough
  return 4 * rank_ * (rows_ + cols(n));
}

std::size_t PowerSgdCompressor::compress(std::span<const float> in,
                                         std::span<std::byte> out,
                                         util::Rng& rng) {
  const std::size_t n = in.size();
  const std::size_t total = compressed_size(n);
  CGX_CHECK_LE(total, out.size());
  if (!decomposable(n)) {
    if (n) std::memcpy(out.data(), in.data(), 4 * n);
    return total;
  }
  const std::size_t m = rows_;
  const std::size_t c = cols(n);
  const std::size_t r = rank_;

  if (q_.size() != c * r) {
    // Cold start: random Gaussian Q, as in the reference implementation.
    q_.resize(c * r);
    for (auto& v : q_) v = static_cast<float>(rng.next_gaussian());
  }

  std::vector<float> p(m * r);
  // P = M Q
  tensor::matmul(in, q_, p, m, c, r);
  if (fp16_emulation_) round_to_half(p);
  orthonormalize_columns(p, m, r);
  // Q = M^T P  (A stored [m x c]; result [c x r])
  tensor::matmul_at_b(in, p, q_, m, c, r);
  if (fp16_emulation_) round_to_half(q_);

  auto* floats = reinterpret_cast<float*>(out.data());
  std::memcpy(floats, p.data(), 4 * p.size());
  std::memcpy(floats + p.size(), q_.data(), 4 * q_.size());
  return total;
}

void PowerSgdCompressor::decompress(std::span<const std::byte> in,
                                    std::span<float> out) {
  const std::size_t n = out.size();
  CGX_CHECK_EQ(in.size(), compressed_size(n));
  if (!decomposable(n)) {
    if (n) std::memcpy(out.data(), in.data(), 4 * n);
    return;
  }
  const std::size_t m = rows_;
  const std::size_t c = cols(n);
  const std::size_t r = rank_;
  const auto* floats = reinterpret_cast<const float*>(in.data());
  const std::span<const float> p(floats, m * r);
  const std::span<const float> q(floats + m * r, c * r);
  // M_hat = P Q^T: [m x r] * [c x r]^T.
  tensor::matmul_a_bt(p, q, out, m, r, c);
}

std::string PowerSgdCompressor::name() const {
  return "powersgd(rank=" + std::to_string(rank_) +
         (fp16_emulation_ ? ",fp16" : "") + ")";
}

}  // namespace cgx::core
