// TernGrad ternary quantization (Wen et al. 2017; paper §2.3).
//
// Each bucket is scaled by its max-magnitude; components are stochastically
// rounded to {-1, 0, +1} with P(|t_i| = 1) = |v_i| / max, which keeps the
// estimator unbiased. Wire: one fp32 scale per bucket + 2 bits per element.
// Included as the extreme low-bit point of the quantization family.
#pragma once

#include <vector>

#include "core/compressor.h"

namespace cgx::core {

class TernGradCompressor final : public Compressor {
 public:
  explicit TernGradCompressor(std::size_t bucket_size = 512);

  std::size_t compressed_size(std::size_t n) const override;
  std::size_t compress(std::span<const float> in, std::span<std::byte> out,
                       util::Rng& rng) override;
  void decompress(std::span<const std::byte> in,
                  std::span<float> out) override;
  std::string name() const override;
  std::size_t scratch_bytes() const override;

 private:
  std::size_t bucket_size_;
  std::vector<std::uint32_t> symbol_scratch_;
  std::vector<float> rand_scratch_;
};

}  // namespace cgx::core
