// Per-rank grow-only scratch arena for the collective hot path.
//
// Every compressed_allreduce_* call used to heap-allocate payload and
// accumulation vectors — every layer, every step. A CollectiveWorkspace
// instead owns a set of numbered slots whose backing storage only ever
// grows: after the first step touches the largest layer, no collective on
// that rank allocates again (the property the Appendix A overhead budget
// needs, and what the zero-allocation engine test asserts).
//
// Ownership rules:
//  * One workspace per rank. Collectives run on the rank's thread, so no
//    locking; a workspace must never be shared across concurrently running
//    ranks.
//  * A slot span is valid until the next request for the SAME slot; nested
//    helpers must use disjoint slot numbers (see the kSlot* constants in
//    compressed_allreduce.cpp).
//  * Storage never shrinks mid-epoch: high_water_bytes() is monotone and
//    stabilizes once the biggest message has been seen.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "util/arena.h"

namespace cgx::core {

// Grow-only resize helper shared by the workspace and compressor scratch
// buffers: requests never shrink the backing vector.
template <class T>
std::span<T> ensure_span(std::vector<T>& v, std::size_t n) {
  if (v.size() < n) v.resize(n);
  return {v.data(), n};
}

template <class T>
std::span<T> ensure_span(util::ArenaBuffer<T>& v, std::size_t n) {
  if (v.size() < n) v.resize(n);
  return {v.data(), n};
}

class CollectiveWorkspace {
 public:
  CollectiveWorkspace() = default;
  CollectiveWorkspace(const CollectiveWorkspace&) = delete;
  CollectiveWorkspace& operator=(const CollectiveWorkspace&) = delete;
  CollectiveWorkspace(CollectiveWorkspace&&) = default;
  CollectiveWorkspace& operator=(CollectiveWorkspace&&) = default;

  // Pins every slot (existing and future) to `arena`: slot growth then
  // carves 64-byte-aligned, NUMA-local memory from the rank's arena instead
  // of the heap. The engines call this with rank_arena(rank) when they build
  // per-rank state; unpinned workspaces (stack-local test conveniences)
  // behave exactly as before.
  void set_arena(util::Arena* arena);

  // A span of n elements backed by slot `slot`; contents unspecified.
  std::span<std::byte> bytes(std::size_t slot, std::size_t n);
  std::span<float> floats(std::size_t slot, std::size_t n);
  std::span<std::size_t> sizes(std::size_t slot, std::size_t n);

  // Total capacity currently held across all slots, in bytes. Monotone
  // non-decreasing; the warm-up test asserts it stops growing after the
  // first step.
  std::size_t high_water_bytes() const;

 private:
  // Slot storage is arena-aware: slots grown on a rank thread with a bound
  // ScopedArena carve NUMA-local, 64-byte-aligned memory from that rank's
  // arena (the slot vector itself is cold metadata and stays on the heap).
  std::vector<util::ArenaBuffer<std::byte>> byte_slots_;
  std::vector<util::ArenaBuffer<float>> float_slots_;
  std::vector<util::ArenaBuffer<std::size_t>> size_slots_;
  util::Arena* arena_ = nullptr;
};

}  // namespace cgx::core
