#include "core/async_engine.h"

#include <algorithm>

#include "comm/fault.h"
#include "comm/tagspace.h"
#include "tensor/tensor_ops.h"
#include "util/arena.h"
#include "util/check.h"
#include "util/numa.h"

namespace cgx::core {
namespace {

// Rollback copy of a bucket's slices for per-bucket round retries. Engine
// convention: compressed collectives own slots 0..2+world, engines use 16+
// (see compressed_allreduce.cpp / engine.cpp).
constexpr std::size_t kSlotBucketSnapshot = 18;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

BucketPlan build_bucket_plan(const tensor::LayerLayout& layout,
                             std::span<const LayerCompression> resolved,
                             std::size_t bucket_bytes) {
  CGX_CHECK_EQ(resolved.size(), layout.layer_count());
  BucketPlan plan;
  plan.bucket_of.assign(layout.layer_count(), -1);
  BucketPlan::Bucket cur;
  auto flush = [&] {
    if (cur.layers.empty()) return;
    plan.buckets.push_back(std::move(cur));
    cur = {};
  };
  // Walk in gradient-production order (reverse layout order), closing a
  // bucket once it holds >= bucket_bytes of raw gradient. Overflow beyond
  // the tag-space cap folds into the last bucket.
  for (std::size_t i = layout.layer_count(); i-- > 0;) {
    if (resolved[i].method == Method::None) {
      plan.has_packet = true;
      continue;
    }
    cur.layers.push_back(i);
    cur.numel += layout.layer(i).numel;
    cur.raw_bytes += sizeof(float) * layout.layer(i).numel;
    if (cur.raw_bytes >= bucket_bytes &&
        plan.buckets.size() + 1 <
            static_cast<std::size_t>(comm::kMaxTagBuckets)) {
      flush();
    }
  }
  flush();
  for (std::size_t b = 0; b < plan.buckets.size(); ++b) {
    plan.buckets[b].tag_base = comm::bucket_tag_offset(static_cast<int>(b));
    for (std::size_t l : plan.buckets[b].layers) {
      plan.bucket_of[l] = static_cast<std::int32_t>(b);
    }
  }
  const auto packet = static_cast<std::int32_t>(plan.packet_index());
  for (std::size_t i = 0; i < resolved.size(); ++i) {
    if (resolved[i].method == Method::None) plan.bucket_of[i] = packet;
  }
  return plan;
}

AsyncGradientEngine::AsyncGradientEngine(std::unique_ptr<CgxEngine> inner,
                                         AsyncOptions options)
    : inner_(std::move(inner)),
      options_(options),
      comm_barrier_(static_cast<std::size_t>(inner_->world_size())),
      ranks_(static_cast<std::size_t>(inner_->world_size())) {
  CGX_CHECK(inner_->options().fuse_filtered_layers)
      << "streaming bucketed engine requires the fused filtered packet";
  plan_ = build_bucket_plan(inner_->layout(), inner_->resolved(),
                            options_.bucket_bytes);
  pipeline_enabled_ = options_.pipeline && options_.overlap &&
                      inner_->supports_split() &&
                      inner_->options().max_round_retries <= 0;
  // Retries force a single lane: recover_world's comm barrier assumes one
  // comm thread per rank. Inline mode has no comm threads at all.
  lanes_ = std::clamp(options_.comm_lanes, 1, comm::kMaxCommLanes);
  if (!options_.overlap || inner_->options().max_round_retries > 0) {
    lanes_ = 1;
  }
  // Multiple lanes only stay deadlock-free if every rank feeds each lane
  // the same bucket sequence; canonical-order release guarantees that.
  ordered_ = options_.ordered_launch || lanes_ > 1;
  build_lane_map();
  resize_rank_state();
  if (options_.overlap) {
    for (int r = 0; r < inner_->world_size(); ++r) {
      RankState& st = ranks_[static_cast<std::size_t>(r)];
      for (int l = 0; l < lanes_; ++l) {
        st.lanes[static_cast<std::size_t>(l)]->thread =
            std::thread([this, r, l] { comm_thread_main(r, l); });
      }
    }
  }
}

AsyncGradientEngine::~AsyncGradientEngine() {
  for (RankState& st : ranks_) {
    for (auto& lane_ptr : st.lanes) {
      Lane& lane = *lane_ptr;
      if (!lane.thread.joinable()) continue;
      const std::uint32_t t = lane.q_tail.load(std::memory_order_relaxed);
      lane.queue[t % lane.queue.size()] = kStopToken;
      lane.q_tail.store(t + 1, std::memory_order_release);
      lane.q_tail.notify_one();
      lane.thread.join();
    }
  }
}

void AsyncGradientEngine::resize_rank_state() {
  const std::size_t total = plan_.total_submissions();
  for (std::size_t r = 0; r < ranks_.size(); ++r) {
    RankState& st = ranks_[r];
    while (st.lanes.size() < static_cast<std::size_t>(lanes_)) {
      st.lanes.push_back(std::make_unique<Lane>());
    }
    // Pin every lane's double-buffered collective workspaces (and the
    // packet scratch) to the rank's arena so their grow-only slots carve
    // NUMA-local memory.
    util::Arena* arena = &util::rank_arena(static_cast<int>(r));
    for (auto& lane : st.lanes) {
      lane->arenas[0].set_arena(arena);
      lane->arenas[1].set_arena(arena);
      // Grow-only, and only while the fabric is quiesced: the consumer is
      // idle-parked on q_tail, and the next release-store on q_tail (or
      // the trainer's barrier) publishes the resized storage to it.
      if (lane->queue.size() < total + 2) lane->queue.resize(total + 2);
    }
    st.packet_ws.set_arena(arena);
    if (st.remaining.size() < total) st.remaining.resize(total);
    if (st.complete.size() < total) st.complete.resize(total);
    if (st.begun.size() < plan_.buckets.size()) {
      st.begun.resize(plan_.buckets.size());
    }
    if (st.bucket_rngs.size() < total) st.bucket_rngs.resize(total);
    // Per-submission timestamp slots, plan-order indexed (packet last).
    // Sized here — NEVER in the hot path — so steady-state steps stay
    // allocation-free.
    if (st.report.timing.buckets.size() < total) {
      st.report.timing.buckets.resize(total);
    }
  }
}

void AsyncGradientEngine::rebuild() {
  inner_->rebuild();
  plan_ = build_bucket_plan(inner_->layout(), inner_->resolved(),
                            options_.bucket_bytes);
  build_lane_map();
  resize_rank_state();
}

void AsyncGradientEngine::build_lane_map() {
  const std::size_t total = plan_.total_submissions();
  lane_of_.assign(total, 0);
  if (lanes_ <= 1) return;  // single lane: everything rides lane 0, as ever
  // Greedy byte-balancing over POST-compression wire estimates: each
  // submission (plan order) goes to the least-loaded lane, ties to the
  // lowest id. Counting bytes rather than buckets matters once the
  // adaptive planner mixes codecs — a 0.1% top-k bucket occupies its lane
  // for a fraction of an 8-bit quantized one. The map is a pure function
  // of the shared plan + resolved policy, so every rank computes the same
  // map: per-lane bucket sequences stay identical across ranks (deadlock
  // freedom) and each bucket keeps a FIXED lane (begun[] stays race-free).
  const tensor::LayerLayout& layout = inner_->layout();
  const std::span<const LayerCompression> resolved = inner_->resolved();
  std::vector<double> load(static_cast<std::size_t>(lanes_), 0.0);
  for (std::size_t idx = 0; idx < total; ++idx) {
    double bytes = 0.0;
    if (plan_.has_packet && idx == plan_.packet_index()) {
      bytes = 4.0 * static_cast<double>(inner_->packet_numel());
    } else {
      for (std::size_t l : plan_.buckets[idx].layers) {
        const auto& info = layout.layer(l);
        const std::size_t rows = info.shape.empty() ? 0 : info.shape.front();
        bytes +=
            static_cast<double>(wire_bytes(resolved[l], info.numel, rows));
      }
    }
    std::size_t best = 0;
    for (std::size_t ln = 1; ln < load.size(); ++ln) {
      if (load[ln] < load[best]) best = ln;
    }
    lane_of_[idx] = static_cast<int>(best);
    load[best] += bytes;
  }
}

void AsyncGradientEngine::begin_step(comm::Comm& comm, std::span<float> fused,
                                     util::Rng& rng) {
  CGX_CHECK_EQ(comm.size(), inner_->world_size());
  CGX_CHECK_EQ(fused.size(), inner_->layout().total_numel());
  RankState& st = ranks_[static_cast<std::size_t>(comm.rank())];
  // The previous step must have fully drained (API contract).
  CGX_CHECK_EQ(st.done.load(std::memory_order_acquire), st.submitted);

  st.fused = fused;
  st.inline_comm = &comm;
  if (options_.overlap) {
    for (auto& lane : st.lanes) {
      if (!lane->comm || &lane->comm->transport() != &comm.transport()) {
        // Each comm thread gets its own handle over the facade barrier so
        // its recovery barriers never mix with the training threads'
        // world barrier.
        lane->comm.emplace(comm.rank(), comm.transport(), comm_barrier_);
      }
    }
  }

  // Per-bucket RNG streams: advance the parent once per step, then derive
  // one child per submission. Identical in overlap and inline modes, so
  // the quantization noise — and with it every payload byte — matches.
  rng.next_u64();
  const std::size_t total = plan_.total_submissions();
  for (std::size_t b = 0; b < total; ++b) st.bucket_rngs[b] = rng.split(b);
  for (std::size_t b = 0; b < plan_.buckets.size(); ++b) {
    st.remaining[b] =
        static_cast<std::uint32_t>(plan_.buckets[b].layers.size());
  }
  if (plan_.has_packet) {
    st.remaining[plan_.packet_index()] =
        static_cast<std::uint32_t>(inner_->filtered_layers().size());
  }
  std::fill(st.begun.begin(), st.begun.end(), std::uint8_t{0});
  std::fill(st.complete.begin(), st.complete.end(), std::uint8_t{0});
  st.release_cursor = 0;
  st.submitted = 0;
  st.notified = 0;
  for (auto& lane : st.lanes) {
    lane->submitted = 0;
    lane->compress_s = 0.0;
    lane->comm_busy_s = 0.0;
  }
  st.error = nullptr;
  st.failed.store(false, std::memory_order_relaxed);
  st.report.ok = true;
  st.report.attempts = 0;
  st.report.retries = 0;
  st.report.incidents.clear();
  // Field-wise Timing reset: assigning a fresh Timing{} would deallocate
  // the per-bucket timestamp vector and re-grow it every step.
  st.report.timing.compute_s = 0.0;
  st.report.timing.compress_s = 0.0;
  st.report.timing.comm_s = 0.0;
  st.report.timing.exposed_comm_s = 0.0;
  st.report.timing.exposed_comm_pct = 0.0;
  for (StepReport::Timing::BucketEvent& ev : st.report.timing.buckets) {
    ev.bucket = -1;
    ev.lane = 0;
    ev.launch_s = 0.0;
    ev.finish_s = 0.0;
  }
  st.done.store(0, std::memory_order_relaxed);
  st.t_begin = st.t_last_submit = std::chrono::steady_clock::now();
}

void AsyncGradientEngine::notify_layer_ready(int rank, std::size_t layer) {
  RankState& st = ranks_[static_cast<std::size_t>(rank)];
  CGX_CHECK_LT(layer, plan_.bucket_of.size());
  const std::int32_t b = plan_.bucket_of[layer];
  CGX_CHECK_GE(b, 0);
  // Producers may be several DAG pool workers; the mutex serialises the
  // countdowns and keeps the release frontier coherent. Uncontended in
  // the classic single-training-thread flow.
  std::lock_guard<std::mutex> lock(st.submit_mutex);
  ++st.notified;
  std::uint32_t& rem = st.remaining[static_cast<std::size_t>(b)];
  CGX_CHECK_GT(rem, 0u);
  if (--rem != 0) return;
  if (!ordered_) {
    submit_locked(st, static_cast<std::uint32_t>(b));
    return;
  }
  // Canonical-order release: hold the completed submission until every
  // lower plan index went out, then drain the frontier. Every rank
  // therefore feeds each lane the identical bucket sequence regardless of
  // which branch of its backward DAG finished first.
  st.complete[static_cast<std::size_t>(b)] = 1;
  const auto total =
      static_cast<std::uint32_t>(plan_.total_submissions());
  while (st.release_cursor < total && st.complete[st.release_cursor]) {
    submit_locked(st, st.release_cursor);
    ++st.release_cursor;
  }
}

void AsyncGradientEngine::submit_locked(RankState& st, std::uint32_t idx) {
  Lane& lane = *st.lanes[static_cast<std::size_t>(lane_of_[idx])];
  // Token = plan index | lane-local submission parity. The parity picks
  // the lane's arena, and because a lane drains tokens in submission
  // order, two adjacent in-flight buckets OF THAT LANE always sit on
  // different arenas.
  const std::uint32_t token = idx | ((lane.submitted & 1u) << 8);
  ++lane.submitted;
  ++st.submitted;
  st.t_last_submit = std::chrono::steady_clock::now();
  StepReport::Timing::BucketEvent& ev = st.report.timing.buckets[idx];
  ev.bucket = static_cast<int>(idx);
  ev.lane = lane_of_[idx];
  ev.launch_s = std::chrono::duration<double>(st.t_last_submit - st.t_begin)
                    .count();
  if (!options_.overlap) {
    process_token(st, lane, *st.inline_comm, token);
    return;
  }
  const std::uint32_t t = lane.q_tail.load(std::memory_order_relaxed);
  lane.queue[t % lane.queue.size()] = token;
  lane.q_tail.store(t + 1, std::memory_order_release);
  lane.q_tail.notify_one();
}

void AsyncGradientEngine::comm_thread_main(int rank, int lane_id) {
  // Home the comm thread next to its training thread and bind its transient
  // collective scratch to the rank arena: everything the token loop grows
  // (compression payloads, ring slabs it first-touches) stays node-local.
  util::numa::pin_current_thread_for_rank(rank);
  util::ScopedArena bind(util::rank_arena(rank));
  RankState& st = ranks_[static_cast<std::size_t>(rank)];
  Lane& lane = *st.lanes[static_cast<std::size_t>(lane_id)];
  for (;;) {
    const std::uint32_t h = lane.q_head.load(std::memory_order_relaxed);
    std::uint32_t t = lane.q_tail.load(std::memory_order_acquire);
    while (t == h) {
      // Futex-style park (no spinning — everything here shares cores with
      // the training threads); woken by submit_locked()'s notify_one.
      lane.q_tail.wait(t, std::memory_order_acquire);
      t = lane.q_tail.load(std::memory_order_acquire);
    }
    const std::uint32_t token = lane.queue[h % lane.queue.size()];
    lane.q_head.store(h + 1, std::memory_order_relaxed);
    if (token == kStopToken) return;
    process_token(st, lane, *lane.comm, token);
  }
}

void AsyncGradientEngine::process_token(RankState& st, Lane& lane,
                                        comm::Comm& comm,
                                        std::uint32_t token) {
  const auto t0 = std::chrono::steady_clock::now();
  const std::size_t bucket = token & 0xffu;
  if (!st.failed.load(std::memory_order_acquire)) {
    try {
      if (bucket == plan_.packet_index()) {
        run_packet(st, comm);
      } else {
        run_compressed(st, lane, comm, bucket,
                       lane.arenas[(token >> 8) & 1u]);
      }
    } catch (...) {
      // First failure poisons the step: remaining tokens complete without
      // touching the fabric, and wait_all rethrows on the training thread.
      std::lock_guard<std::mutex> lock(st.report_mutex);
      if (!st.error) st.error = std::current_exception();
      st.failed.store(true, std::memory_order_release);
    }
  }
  lane.comm_busy_s += seconds_since(t0);
  // Plan-order slot; only this lane ever touches this submission, and the
  // release-store on `done` publishes the stamp to wait_all's reader.
  st.report.timing.buckets[bucket].finish_s = seconds_since(st.t_begin);
  st.done.fetch_add(1, std::memory_order_release);
  st.done.notify_all();
}

void AsyncGradientEngine::begin_bucket_timed(RankState& st, Lane& lane,
                                             comm::Comm& comm,
                                             std::size_t bucket,
                                             CollectiveWorkspace& ws) {
  const auto t0 = std::chrono::steady_clock::now();
  const BucketPlan::Bucket& b = plan_.buckets[bucket];
  inner_->bucket_begin(comm, st.fused, b.layers, st.bucket_rngs[bucket],
                       b.tag_base, ws);
  lane.compress_s += seconds_since(t0);
  st.begun[bucket] = 1;
}

void AsyncGradientEngine::try_begin_next(RankState& st, Lane& lane,
                                         comm::Comm& comm) {
  // Peek THIS lane's next submitted-but-unprocessed token: if it is a
  // compressed bucket, run its non-blocking begin half now (round-1
  // compression + buffered sends on the lane's OTHER arena) so it
  // overlaps the current bucket's drain. Consumer-side only; q_head
  // already points past the current token.
  const std::uint32_t next = lane.q_head.load(std::memory_order_relaxed);
  if (lane.q_tail.load(std::memory_order_acquire) == next) return;
  const std::uint32_t token = lane.queue[next % lane.queue.size()];
  if (token == kStopToken) return;
  const std::size_t bucket = token & 0xffu;
  if (bucket >= plan_.buckets.size()) return;  // packet has no begin half
  if (st.begun[bucket]) return;
  begin_bucket_timed(st, lane, comm, bucket,
                     lane.arenas[(token >> 8) & 1u]);
}

void AsyncGradientEngine::run_compressed(RankState& st, Lane& lane,
                                         comm::Comm& comm,
                                         std::size_t bucket,
                                         CollectiveWorkspace& ws) {
  const BucketPlan::Bucket& b = plan_.buckets[bucket];
  const EngineOptions& eopts = inner_->options();
  StepReport& report = st.report;
  util::Rng& rng = st.bucket_rngs[bucket];
  const std::uint64_t round =
      st.rounds.fetch_add(1, std::memory_order_relaxed);

  if (eopts.max_round_retries <= 0) {
    {
      std::lock_guard<std::mutex> lock(st.report_mutex);
      ++report.attempts;
    }
    try {
      if (!st.begun[bucket]) begin_bucket_timed(st, lane, comm, bucket, ws);
      if (pipeline_enabled_) try_begin_next(st, lane, comm);
      inner_->bucket_finish(comm, st.fused, b.layers, rng, b.tag_base, ws);
    } catch (const comm::CommError& e) {
      std::lock_guard<std::mutex> lock(st.report_mutex);
      report.ok = false;
      report.incidents.push_back(
          StepReport::Incident{e.src, e.dst, e.tag, e.what()});
      throw;
    }
    return;
  }

  // Retry path (pipelining is off, lanes_ == 1 so no report contention —
  // the locks below are uncontended belt-and-braces): a failed attempt
  // leaves the bucket's slices partially reduced, so roll back from a
  // pre-attempt snapshot.
  const tensor::LayerLayout& layout = inner_->layout();
  const std::span<float> snapshot = ws.floats(kSlotBucketSnapshot, b.numel);
  std::size_t off = 0;
  for (std::size_t l : b.layers) {
    const auto slice = layout.slice(std::span<const float>(st.fused), l);
    tensor::copy(slice, snapshot.subspan(off, slice.size()));
    off += slice.size();
  }
  for (int attempt = 0;; ++attempt) {
    {
      std::lock_guard<std::mutex> lock(st.report_mutex);
      ++report.attempts;
    }
    try {
      if (eopts.injector != nullptr &&
          eopts.injector->round_fails(round, attempt)) {
        throw comm::TimeoutError(-1, comm.rank(), -1,
                                 std::chrono::milliseconds{0},
                                 "synthetic bucket-round failure "
                                 "(fault harness)");
      }
      if (!st.begun[bucket]) begin_bucket_timed(st, lane, comm, bucket, ws);
      inner_->bucket_finish(comm, st.fused, b.layers, rng, b.tag_base, ws);
      return;
    } catch (const comm::CommError& e) {
      {
        std::lock_guard<std::mutex> lock(st.report_mutex);
        report.incidents.push_back(
            StepReport::Incident{e.src, e.dst, e.tag, e.what()});
      }
      st.begun[bucket] = 0;
      if (attempt >= eopts.max_round_retries) {
        std::lock_guard<std::mutex> lock(st.report_mutex);
        report.ok = false;
        throw;
      }
      {
        std::lock_guard<std::mutex> lock(st.report_mutex);
        ++report.retries;
      }
      inner_->reshard_world(comm);
      off = 0;
      for (std::size_t l : b.layers) {
        auto slice = layout.slice(st.fused, l);
        tensor::copy(snapshot.subspan(off, slice.size()), slice);
        off += slice.size();
      }
    }
  }
}

void AsyncGradientEngine::run_packet(RankState& st, comm::Comm& comm) {
  const EngineOptions& eopts = inner_->options();
  StepReport& report = st.report;
  const std::uint64_t round =
      st.rounds.fetch_add(1, std::memory_order_relaxed);
  for (int attempt = 0;; ++attempt) {
    {
      std::lock_guard<std::mutex> lock(st.report_mutex);
      ++report.attempts;
    }
    try {
      if (eopts.max_round_retries > 0 && eopts.injector != nullptr &&
          eopts.injector->round_fails(round, attempt)) {
        throw comm::TimeoutError(-1, comm.rank(), -1,
                                 std::chrono::milliseconds{0},
                                 "synthetic bucket-round failure "
                                 "(fault harness)");
      }
      inner_->packet_allreduce(comm, st.fused, st.packet_ws);
      return;
    } catch (const comm::CommError& e) {
      std::unique_lock<std::mutex> lock(st.report_mutex);
      report.incidents.push_back(
          StepReport::Incident{e.src, e.dst, e.tag, e.what()});
      if (eopts.max_round_retries <= 0 ||
          attempt >= eopts.max_round_retries) {
        report.ok = false;
        throw;
      }
      ++report.retries;
      lock.unlock();
      inner_->reshard_world(comm);
      // No rollback needed: the packet gathers from `fused` afresh each
      // attempt and scatters back only after the collective succeeded.
    }
  }
}

void AsyncGradientEngine::wait_all(int rank) {
  RankState& st = ranks_[static_cast<std::size_t>(rank)];
  CGX_CHECK_EQ(st.notified, plan_.bucket_of.size())
      << "every layer must be notified before wait_all";
  const std::uint32_t expected = st.submitted;
  const auto t0 = std::chrono::steady_clock::now();
  if (options_.overlap) {
    std::uint32_t d;
    while ((d = st.done.load(std::memory_order_acquire)) < expected) {
      st.done.wait(d, std::memory_order_acquire);
    }
  }
  const double exposed = seconds_since(t0);

  StepReport& report = st.report;
  report.timing.compute_s =
      std::chrono::duration<double>(st.t_last_submit - st.t_begin).count();
  double compress_s = 0.0;
  double comm_busy_s = 0.0;
  for (const auto& lane : st.lanes) {
    compress_s += lane->compress_s;
    comm_busy_s += lane->comm_busy_s;
  }
  report.timing.compress_s = compress_s;
  report.timing.comm_s = comm_busy_s;
  // Inline mode runs every bucket on the training thread, so all of its
  // communication sits on the critical path.
  report.timing.exposed_comm_s = options_.overlap ? exposed : comm_busy_s;
  report.timing.exposed_comm_pct =
      comm_busy_s > 0.0
          ? 100.0 * report.timing.exposed_comm_s / comm_busy_s
          : 0.0;
  report.wire_bytes = inner_->cached_wire_bytes();

  if (st.failed.load(std::memory_order_acquire)) {
    report.ok = false;
    std::exception_ptr e;
    {
      std::lock_guard<std::mutex> lock(st.report_mutex);
      e = st.error;
      st.error = nullptr;
    }
    st.failed.store(false, std::memory_order_relaxed);
    if (e) std::rethrow_exception(e);
  }
}

void AsyncGradientEngine::allreduce(comm::Comm& comm, std::span<float> fused,
                                    util::Rng& rng) {
  begin_step(comm, fused, rng);
  const int rank = comm.rank();
  for (std::size_t l = plan_.bucket_of.size(); l-- > 0;) {
    notify_layer_ready(rank, l);
  }
  wait_all(rank);
}

CommPlan AsyncGradientEngine::comm_plan(const simgpu::CostModel& cost,
                                        double compress_gbps) const {
  return inner_->comm_plan(cost, compress_gbps);
}

const StepReport& AsyncGradientEngine::last_step_report(int rank) const {
  return ranks_[static_cast<std::size_t>(rank)].report;
}

std::size_t AsyncGradientEngine::scratch_high_water_bytes() const {
  std::size_t total = inner_->scratch_high_water_bytes();
  for (const RankState& st : ranks_) {
    for (const auto& lane : st.lanes) {
      total += lane->arenas[0].high_water_bytes() +
               lane->arenas[1].high_water_bytes();
    }
    total += st.packet_ws.high_water_bytes();
  }
  return total;
}

}  // namespace cgx::core
