#include "core/hierarchical.h"

#include <algorithm>
#include <array>

#include "tensor/tensor_ops.h"
#include "util/check.h"

namespace cgx::core {
namespace {

constexpr int kIntraReduceTag = 410;
constexpr int kInterScatterTag = 411;
constexpr int kInterGatherTag = 412;
constexpr int kIntraBcastTag = 413;

// Workspace slots (disjoint phases never hold spans across each other).
constexpr std::size_t kSlotPayload = 0;
constexpr std::size_t kSlotInPayload = 1;
constexpr std::size_t kSlotIncoming = 0;

std::vector<int> leader_list(const std::vector<int>& node_of) {
  std::vector<int> leaders;
  std::vector<int> seen_nodes;
  for (int r = 0; r < static_cast<int>(node_of.size()); ++r) {
    const int node = node_of[static_cast<std::size_t>(r)];
    if (std::find(seen_nodes.begin(), seen_nodes.end(), node) ==
        seen_nodes.end()) {
      seen_nodes.push_back(node);
      leaders.push_back(r);  // first (lowest) rank of the node
    }
  }
  std::sort(leaders.begin(), leaders.end());
  return leaders;
}

// SRA over an explicit participant subset; chunk j of the data belongs to
// participants[j] and always rides compressors[j].
void subset_compressed_sra(comm::Comm& comm, std::span<float> data,
                           const std::vector<int>& participants,
                           std::span<Compressor* const> compressors,
                           util::Rng& rng, CollectiveWorkspace& ws) {
  const int n = static_cast<int>(participants.size());
  if (n <= 1 || data.empty()) return;
  CGX_CHECK_GE(compressors.size(), static_cast<std::size_t>(n));
  const auto it = std::find(participants.begin(), participants.end(),
                            comm.rank());
  CGX_CHECK(it != participants.end());
  const int me = static_cast<int>(it - participants.begin());

  for (int p = 0; p < n; ++p) {
    if (p == me) continue;
    const auto [first, last] = comm::chunk_range(data.size(), n, p);
    const std::span<const float> chunk = data.subspan(first, last - first);
    const std::span<std::byte> payload =
        ws.bytes(kSlotPayload, compressors[p]->compressed_size(chunk.size()));
    const std::size_t written = compressors[p]->compress(chunk, payload, rng);
    comm.send(participants[static_cast<std::size_t>(p)],
              payload.first(written), kInterScatterTag);
  }
  const auto [mf, ml] = comm::chunk_range(data.size(), n, me);
  std::span<float> mine = data.subspan(mf, ml - mf);
  // Receive and decompress leader contributions in arrival order, each into
  // its sender's own staging slot; the adds then run in fixed participant
  // order so the reduced chunk is bit-identical run to run.
  const std::span<float> staged = ws.floats(
      kSlotIncoming, static_cast<std::size_t>(n - 1) * mine.size());
  const std::span<std::byte> in_payload =
      ws.bytes(kSlotInPayload, compressors[me]->compressed_size(mine.size()));
  const auto slot_of = [me](int p) {
    return static_cast<std::size_t>(p < me ? p : p - 1);
  };
  std::array<int, static_cast<std::size_t>(comm::kMaxAnySourceWorld)> peers;
  int peer_count = 0;
  const bool any_source = n - 1 <= comm::kMaxAnySourceWorld;
  for (int p = 0; p < n; ++p) {
    if (p == me) continue;
    if (any_source) {
      peers[static_cast<std::size_t>(peer_count++)] =
          participants[static_cast<std::size_t>(p)];
    }
  }
  const auto stage = [&](int p) {
    comm.recv(participants[static_cast<std::size_t>(p)], in_payload,
              kInterScatterTag);
    compressors[me]->decompress(
        in_payload, staged.subspan(slot_of(p) * mine.size(), mine.size()));
  };
  if (any_source) {
    comm::for_each_by_arrival(
        comm, {peers.data(), static_cast<std::size_t>(peer_count)},
        kInterScatterTag, [&](int peer_rank) {
          const auto it2 = std::find(participants.begin(),
                                     participants.end(), peer_rank);
          stage(static_cast<int>(it2 - participants.begin()));
        });
  } else {
    for (int p = 0; p < n; ++p) {
      if (p != me) stage(p);
    }
  }
  for (int p = 0; p < n; ++p) {
    if (p == me) continue;
    tensor::add_inplace(
        mine, staged.subspan(slot_of(p) * mine.size(), mine.size()));
  }
  const std::span<std::byte> payload =
      ws.bytes(kSlotPayload, compressors[me]->compressed_size(mine.size()));
  const std::size_t written = compressors[me]->compress(mine, payload, rng);
  const std::span<const std::byte> reduced = payload.first(written);
  for (int p = 0; p < n; ++p) {
    if (p == me) continue;
    comm.send(participants[static_cast<std::size_t>(p)], reduced,
              kInterGatherTag);
  }
  compressors[me]->decompress(reduced, mine);
  for (int p = 0; p < n; ++p) {
    if (p == me) continue;
    const auto [first, last] = comm::chunk_range(data.size(), n, p);
    std::span<float> chunk = data.subspan(first, last - first);
    const std::span<std::byte> gathered =
        ws.bytes(kSlotInPayload, compressors[p]->compressed_size(chunk.size()));
    comm.recv(participants[static_cast<std::size_t>(p)], gathered,
              kInterGatherTag);
    compressors[p]->decompress(gathered, chunk);
  }
}

}  // namespace

int leader_of(const std::vector<int>& node_of, int rank) {
  CGX_CHECK(rank >= 0 && rank < static_cast<int>(node_of.size()));
  const int node = node_of[static_cast<std::size_t>(rank)];
  for (int r = 0; r < static_cast<int>(node_of.size()); ++r) {
    if (node_of[static_cast<std::size_t>(r)] == node) return r;
  }
  return rank;
}

void hierarchical_allreduce(comm::Comm& comm, std::span<float> data,
                            std::span<Compressor* const> chunk_compressors,
                            util::Rng& rng,
                            const HierarchicalOptions& options,
                            CollectiveWorkspace& ws) {
  const int n = comm.size();
  const int rank = comm.rank();
  CGX_CHECK_EQ(options.node_of.size(), static_cast<std::size_t>(n));
  if (n == 1 || data.empty()) return;
  CGX_CHECK(!chunk_compressors.empty());

  const int my_leader = leader_of(options.node_of, rank);
  Compressor& intra = *chunk_compressors[0];

  if (rank != my_leader) {
    // Member: hand the gradient to the leader, wait for the result.
    if (options.compress_intra) {
      const std::span<std::byte> payload =
          ws.bytes(kSlotPayload, intra.compressed_size(data.size()));
      const std::size_t written = intra.compress(data, payload, rng);
      comm.send(my_leader, payload.first(written), kIntraReduceTag);
    } else {
      comm.send_floats(my_leader, data, kIntraReduceTag);
    }
    comm.recv_floats(my_leader, data, kIntraBcastTag);
    return;
  }

  // Leader: fold members' gradients in fixed rank order. Staging every
  // member's full-size gradient for an any-source fold would multiply the
  // workspace by the node's device count, and an arrival-order running sum
  // would make training bit-unstable run to run; intra-node members are
  // symmetric, so fixed order costs little.
  const std::span<float> incoming = ws.floats(kSlotIncoming, data.size());
  for (int r = 0; r < n; ++r) {
    if (r == rank || leader_of(options.node_of, r) != rank) continue;
    if (options.compress_intra) {
      const std::span<std::byte> payload =
          ws.bytes(kSlotPayload, intra.compressed_size(data.size()));
      comm.recv(r, payload, kIntraReduceTag);
      intra.decompress(payload, incoming);
    } else {
      comm.recv_floats(r, incoming, kIntraReduceTag);
    }
    tensor::add_inplace(data, incoming);
  }

  // Inter-node compressed exchange among leaders only.
  const std::vector<int> leaders = leader_list(options.node_of);
  subset_compressed_sra(comm, data, leaders, chunk_compressors, rng, ws);

  // Fan the result back out to the node, always in full precision (see
  // HierarchicalOptions::compress_intra).
  for (int r = 0; r < n; ++r) {
    if (r == rank || leader_of(options.node_of, r) != rank) continue;
    comm.send_floats(r, data, kIntraBcastTag);
  }
}

void hierarchical_allreduce(comm::Comm& comm, std::span<float> data,
                            std::span<Compressor* const> chunk_compressors,
                            util::Rng& rng,
                            const HierarchicalOptions& options) {
  CollectiveWorkspace ws;
  hierarchical_allreduce(comm, data, chunk_compressors, rng, options, ws);
}

}  // namespace cgx::core
