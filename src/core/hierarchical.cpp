#include "core/hierarchical.h"

#include <array>

#include "comm/tagspace.h"
#include "tensor/tensor_ops.h"
#include "util/check.h"

namespace cgx::core {
namespace {

// Workspace slots (byte and float slots are independent namespaces; the
// numbers match compressed_allreduce.cpp — safe because the two TUs never
// hold spans across a call into each other for the same slot).
constexpr std::size_t kSlotPayload = 0;    // outbound payload (bytes)
constexpr std::size_t kSlotInPayload = 1;  // inbound payload (bytes)
constexpr std::size_t kSlotIncoming = 0;   // float accumulation buffer

// Role/topology queries over the raw node_of map. All O(world) / O(world²)
// integer scans with no allocation: worlds here are a few hundred at most
// and every call moves megabytes, so scans are noise — and avoiding
// materialized leader lists is what keeps the steady state alloc-free.
bool is_leader_rank(const std::vector<int>& node_of, int q) {
  const int node = node_of[static_cast<std::size_t>(q)];
  for (int s = 0; s < q; ++s) {
    if (node_of[static_cast<std::size_t>(s)] == node) return false;
  }
  return true;
}

// Index of leader rank `q` among all leaders in ascending rank order.
int leader_index_of(const std::vector<int>& node_of, int q) {
  int idx = 0;
  for (int s = 0; s < q; ++s) {
    if (is_leader_rank(node_of, s)) ++idx;
  }
  return idx;
}

struct Roles {
  int n;              // world size
  int rank;
  int my_leader;      // leader of this rank's node
  int num_leaders;    // distinct nodes
  int my_leader_idx;  // my_leader's position among leaders (SRA chunk id)
  bool leader;        // rank == my_leader
};

Roles resolve_roles(const comm::Comm& comm, const HierarchicalOptions& o) {
  Roles roles;
  roles.n = comm.size();
  roles.rank = comm.rank();
  CGX_CHECK_EQ(o.node_of.size(), static_cast<std::size_t>(roles.n));
  roles.my_leader = leader_of(o.node_of, roles.rank);
  roles.leader = roles.rank == roles.my_leader;
  roles.num_leaders = num_leaders(o.node_of);
  roles.my_leader_idx = leader_index_of(o.node_of, roles.my_leader);
  return roles;
}

Compressor& intra_compressor(std::span<Compressor* const> compressors,
                             const Roles& roles) {
  // The intra hop gets its own operator AFTER the leader-chunk bindings so
  // its error-feedback never mixes with any node-boundary residual. The
  // slot exists whenever the hop is exercised: a world with members has
  // num_leaders < world, and engines size the span by world.
  CGX_CHECK_GT(compressors.size(),
               static_cast<std::size_t>(roles.num_leaders));
  return *compressors[static_cast<std::size_t>(roles.num_leaders)];
}

// The reduce hop may go peer-direct only when the link offers it AND the
// payload is raw floats (a compressed payload can't ride the pull-add
// fold). Both endpoints compute the same answer from the same inputs.
bool direct_reduce_link(comm::Comm& comm, const HierarchicalOptions& o,
                        int a, int b) {
  return !o.compress_intra && comm.supports_direct_exchange(a == comm.rank()
                                                                ? b
                                                                : a);
}

// ---------------------------------------------------------------- members

void member_begin(comm::Comm& comm, std::span<float> data,
                  std::span<Compressor* const> compressors, util::Rng& rng,
                  const HierarchicalOptions& options, const Roles& roles,
                  CollectiveWorkspace& ws, int tag) {
  if (options.compress_intra) {
    Compressor& intra = intra_compressor(compressors, roles);
    const std::span<std::byte> payload =
        ws.bytes(kSlotPayload, intra.compressed_size(data.size()));
    const std::size_t written = intra.compress(data, payload, rng);
    comm.send(roles.my_leader, payload.first(written), tag);
  } else if (comm.supports_direct_exchange(roles.my_leader)) {
    // Post the span; the leader folds straight out of our memory. `data`
    // must stay untouched until the matching direct_wait in finish().
    comm.direct_post(roles.my_leader, data, tag);
  } else {
    comm.send_floats(roles.my_leader, data, tag);
  }
}

void member_finish(comm::Comm& comm, std::span<float> data,
                   const HierarchicalOptions& options, const Roles& roles,
                   int tag) {
  const bool link_direct = comm.supports_direct_exchange(roles.my_leader);
  if (!options.compress_intra && link_direct) {
    // Our reduce post must be consumed before the broadcast may overwrite
    // the span it points at.
    comm.direct_wait(roles.my_leader, tag);
  }
  if (link_direct) {
    comm.direct_pull(roles.my_leader, data, /*add=*/false, tag);
  } else {
    comm.recv_floats(roles.my_leader, data, tag);
  }
}

// ---------------------------------------------------------------- leaders

void leader_fold_members(comm::Comm& comm, std::span<float> data,
                         std::span<Compressor* const> compressors,
                         const HierarchicalOptions& options,
                         const Roles& roles, CollectiveWorkspace& ws,
                         int tag) {
  // Members fold in fixed ascending rank order (bit-identical run to run;
  // intra-node members are symmetric, so arrival-order service would buy
  // little). Adjacent peer-direct members pair into one direct_pull2 pass —
  // bit-identical to two sequential pulls by the copy_add2 contract — and a
  // channel member in between flushes the pending pair first, preserving
  // the ascending add order.
  int pending = -1;
  const auto flush = [&]() {
    if (pending >= 0) {
      comm.direct_pull(pending, data, /*add=*/true, tag);
      pending = -1;
    }
  };
  for (int m = 0; m < roles.n; ++m) {
    if (m == roles.rank ||
        leader_of(options.node_of, m) != roles.rank) {
      continue;
    }
    if (direct_reduce_link(comm, options, roles.rank, m)) {
      if (pending < 0) {
        pending = m;
      } else {
        comm.direct_pull2(pending, m, data, tag);
        pending = -1;
      }
      continue;
    }
    flush();
    if (options.compress_intra) {
      Compressor& intra = intra_compressor(compressors, roles);
      const std::span<std::byte> payload =
          ws.bytes(kSlotInPayload, intra.compressed_size(data.size()));
      comm.recv(m, payload, tag);
      const std::span<float> incoming =
          ws.floats(kSlotIncoming, data.size());
      intra.decompress(payload, incoming);
      tensor::add_inplace(data, incoming);
    } else if (comm.transport().supports_recv_add()) {
      comm.recv_add_floats(m, data, tag);
    } else {
      const std::span<float> incoming =
          ws.floats(kSlotIncoming, data.size());
      comm.recv_floats(m, incoming, tag);
      tensor::add_inplace(data, incoming);
    }
  }
  flush();
}

void leader_bcast_members(comm::Comm& comm, std::span<const float> data,
                          const HierarchicalOptions& options,
                          const Roles& roles, int tag) {
  // Post to every member first, then collect the acks: members pull
  // concurrently instead of serializing on one wait at a time.
  for (int m = 0; m < roles.n; ++m) {
    if (m == roles.rank || leader_of(options.node_of, m) != roles.rank) {
      continue;
    }
    if (comm.supports_direct_exchange(m)) {
      comm.direct_post(m, data, tag);
    } else {
      comm.send_floats(m, data, tag);
    }
  }
  for (int m = 0; m < roles.n; ++m) {
    if (m == roles.rank || leader_of(options.node_of, m) != roles.rank) {
      continue;
    }
    if (comm.supports_direct_exchange(m)) comm.direct_wait(m, tag);
  }
}

// Leader-level SRA round 1: compress leader-chunk j of the node-aggregated
// vector with compressor j — the node-boundary re-compression whose
// error-feedback lives in that leader-level instance — and ship it to
// aggregator j.
void leader_scatter(comm::Comm& comm, std::span<float> data,
                    std::span<Compressor* const> compressors, util::Rng& rng,
                    const HierarchicalOptions& options, const Roles& roles,
                    CollectiveWorkspace& ws, int scatter_tag) {
  const int L = roles.num_leaders;
  CGX_CHECK_GE(compressors.size(), static_cast<std::size_t>(L));
  int j = 0;
  for (int q = 0; q < roles.n; ++q) {
    if (!is_leader_rank(options.node_of, q)) continue;
    if (q != roles.rank) {
      const auto [first, last] = comm::chunk_range(data.size(), L, j);
      const std::span<const float> chunk = data.subspan(first, last - first);
      const std::span<std::byte> payload = ws.bytes(
          kSlotPayload, compressors[static_cast<std::size_t>(j)]
                            ->compressed_size(chunk.size()));
      const std::size_t written =
          compressors[static_cast<std::size_t>(j)]->compress(chunk, payload,
                                                             rng);
      comm.send(q, payload.first(written), scatter_tag);
    }
    ++j;
  }
}

// Leader-level SRA drain: stage the other leaders' contributions to my
// chunk in arrival order, fold in fixed leader order, re-compress the
// reduced chunk once, allgather.
void leader_drain(comm::Comm& comm, std::span<float> data,
                  std::span<Compressor* const> compressors, util::Rng& rng,
                  const HierarchicalOptions& options, const Roles& roles,
                  CollectiveWorkspace& ws, int scatter_tag, int gather_tag) {
  const int L = roles.num_leaders;
  const int me = roles.my_leader_idx;
  Compressor& mine_comp = *compressors[static_cast<std::size_t>(me)];

  const auto [mf, ml] = comm::chunk_range(data.size(), L, me);
  std::span<float> mine = data.subspan(mf, ml - mf);
  const std::span<float> staged = ws.floats(
      kSlotIncoming, static_cast<std::size_t>(L - 1) * mine.size());
  const std::span<std::byte> in_payload =
      ws.bytes(kSlotInPayload, mine_comp.compressed_size(mine.size()));
  const auto slot_of = [me](int j) {
    return static_cast<std::size_t>(j < me ? j : j - 1);
  };
  const auto stage = [&](int q) {
    const int j = leader_index_of(options.node_of, q);
    comm.recv(q, in_payload, scatter_tag);
    mine_comp.decompress(
        in_payload, staged.subspan(slot_of(j) * mine.size(), mine.size()));
  };

  std::array<int, static_cast<std::size_t>(comm::kMaxAnySourceWorld)> peers;
  int peer_count = 0;
  const bool any_source = L - 1 <= comm::kMaxAnySourceWorld;
  if (any_source) {
    for (int q = 0; q < roles.n; ++q) {
      if (q != roles.rank && is_leader_rank(options.node_of, q)) {
        peers[static_cast<std::size_t>(peer_count++)] = q;
      }
    }
    comm::for_each_by_arrival(
        comm, {peers.data(), static_cast<std::size_t>(peer_count)},
        scatter_tag, stage);
  } else {
    for (int q = 0; q < roles.n; ++q) {
      if (q != roles.rank && is_leader_rank(options.node_of, q)) stage(q);
    }
  }
  for (int j = 0; j < L; ++j) {
    if (j == me) continue;
    tensor::add_inplace(
        mine, staged.subspan(slot_of(j) * mine.size(), mine.size()));
  }

  // Round 2: one re-compression of the fully reduced chunk; everyone —
  // including this leader, via its own payload — adopts the decompressed
  // bytes, so all nodes stay bit-identical.
  const std::span<std::byte> payload =
      ws.bytes(kSlotPayload, mine_comp.compressed_size(mine.size()));
  const std::size_t written = mine_comp.compress(mine, payload, rng);
  const std::span<const std::byte> reduced = payload.first(written);
  for (int q = 0; q < roles.n; ++q) {
    if (q != roles.rank && is_leader_rank(options.node_of, q)) {
      comm.send(q, reduced, gather_tag);
    }
  }
  mine_comp.decompress(reduced, mine);

  // Gathered chunks land in disjoint regions: arrival order can't change
  // the final bytes.
  const auto land = [&](int q) {
    const int j = leader_index_of(options.node_of, q);
    const auto [first, last] = comm::chunk_range(data.size(), L, j);
    std::span<float> chunk = data.subspan(first, last - first);
    const std::span<std::byte> gathered = ws.bytes(
        kSlotInPayload, compressors[static_cast<std::size_t>(j)]
                            ->compressed_size(chunk.size()));
    comm.recv(q, gathered, gather_tag);
    compressors[static_cast<std::size_t>(j)]->decompress(gathered, chunk);
  };
  if (any_source) {
    comm::for_each_by_arrival(
        comm, {peers.data(), static_cast<std::size_t>(peer_count)},
        gather_tag, land);
  } else {
    for (int q = 0; q < roles.n; ++q) {
      if (q != roles.rank && is_leader_rank(options.node_of, q)) land(q);
    }
  }
}

}  // namespace

int leader_of(const std::vector<int>& node_of, int rank) {
  CGX_CHECK(rank >= 0 && rank < static_cast<int>(node_of.size()));
  const int node = node_of[static_cast<std::size_t>(rank)];
  for (int r = 0; r < static_cast<int>(node_of.size()); ++r) {
    if (node_of[static_cast<std::size_t>(r)] == node) return r;
  }
  return rank;
}

int num_leaders(const std::vector<int>& node_of) {
  int count = 0;
  for (int r = 0; r < static_cast<int>(node_of.size()); ++r) {
    if (is_leader_rank(node_of, r)) ++count;
  }
  return count;
}

void hierarchical_begin(comm::Comm& comm, std::span<float> data,
                        std::span<Compressor* const> chunk_compressors,
                        util::Rng& rng, const HierarchicalOptions& options,
                        CollectiveWorkspace& ws, int bucket) {
  if (comm.size() == 1 || data.empty()) return;
  CGX_CHECK(bucket >= 0 && bucket < comm::kMaxTagBuckets);
  CGX_CHECK(!chunk_compressors.empty());
  const Roles roles = resolve_roles(comm, options);
  const int intra_tag = comm::hier_intra_tag(bucket);
  if (!roles.leader) {
    member_begin(comm, data, chunk_compressors, rng, options, roles, ws,
                 intra_tag);
    return;
  }
  leader_fold_members(comm, data, chunk_compressors, options, roles, ws,
                      intra_tag);
  if (roles.num_leaders > 1) {
    leader_scatter(comm, data, chunk_compressors, rng, options, roles, ws,
                   comm::hier_inter_scatter_tag(bucket));
  }
}

void hierarchical_finish(comm::Comm& comm, std::span<float> data,
                         std::span<Compressor* const> chunk_compressors,
                         util::Rng& rng, const HierarchicalOptions& options,
                         CollectiveWorkspace& ws, int bucket) {
  if (comm.size() == 1 || data.empty()) return;
  CGX_CHECK(bucket >= 0 && bucket < comm::kMaxTagBuckets);
  const Roles roles = resolve_roles(comm, options);
  const int intra_tag = comm::hier_intra_tag(bucket);
  if (!roles.leader) {
    member_finish(comm, data, options, roles, intra_tag);
    return;
  }
  if (roles.num_leaders > 1) {
    leader_drain(comm, data, chunk_compressors, rng, options, roles, ws,
                 comm::hier_inter_scatter_tag(bucket),
                 comm::hier_inter_gather_tag(bucket));
  }
  leader_bcast_members(comm, data, options, roles, intra_tag);
}

void hierarchical_allreduce(comm::Comm& comm, std::span<float> data,
                            std::span<Compressor* const> chunk_compressors,
                            util::Rng& rng,
                            const HierarchicalOptions& options,
                            CollectiveWorkspace& ws, int bucket) {
  hierarchical_begin(comm, data, chunk_compressors, rng, options, ws,
                     bucket);
  hierarchical_finish(comm, data, chunk_compressors, rng, options, ws,
                      bucket);
}

void hierarchical_allreduce(comm::Comm& comm, std::span<float> data,
                            std::span<Compressor* const> chunk_compressors,
                            util::Rng& rng,
                            const HierarchicalOptions& options) {
  CollectiveWorkspace ws;
  hierarchical_allreduce(comm, data, chunk_compressors, rng, options, ws, 0);
}

}  // namespace cgx::core
