#include "core/compressor.h"

#include <algorithm>
#include <cstring>

#include "util/check.h"
#include "util/half.h"

namespace cgx::core {

std::size_t NoneCompressor::compress(std::span<const float> in,
                                     std::span<std::byte> out,
                                     util::Rng& rng) {
  (void)rng;
  const std::size_t bytes = in.size() * 4;
  CGX_CHECK_LE(bytes, out.size());
  if (bytes) std::memcpy(out.data(), in.data(), bytes);
  return bytes;
}

void NoneCompressor::decompress(std::span<const std::byte> in,
                                std::span<float> out) {
  CGX_CHECK_EQ(in.size(), out.size() * 4);
  if (!out.empty()) std::memcpy(out.data(), in.data(), in.size());
}

std::size_t Fp16Compressor::compress(std::span<const float> in,
                                     std::span<std::byte> out,
                                     util::Rng& rng) {
  (void)rng;
  const std::size_t bytes = in.size() * 2;
  CGX_CHECK_LE(bytes, out.size());
  auto* halves = reinterpret_cast<std::uint16_t*>(out.data());
  util::floats_to_halves(in, std::span<std::uint16_t>(halves, in.size()));
  return bytes;
}

void Fp16Compressor::decompress(std::span<const std::byte> in,
                                std::span<float> out) {
  CGX_CHECK_EQ(in.size(), out.size() * 2);
  const auto* halves = reinterpret_cast<const std::uint16_t*>(in.data());
  util::halves_to_floats(std::span<const std::uint16_t>(halves, out.size()),
                         out);
}

FakeCompressor::FakeCompressor(double ratio) : ratio_(ratio) {
  CGX_CHECK_GE(ratio, 1.0);
}

std::size_t FakeCompressor::compressed_size(std::size_t n) const {
  if (n == 0) return 0;
  const std::size_t k = std::max<std::size_t>(
      1, static_cast<std::size_t>(static_cast<double>(n) / ratio_));
  return 4 * std::min(k, n);
}

std::size_t FakeCompressor::compress(std::span<const float> in,
                                     std::span<std::byte> out,
                                     util::Rng& rng) {
  (void)rng;
  const std::size_t bytes = compressed_size(in.size());
  CGX_CHECK_LE(bytes, out.size());
  if (bytes) std::memcpy(out.data(), in.data(), bytes);
  return bytes;
}

void FakeCompressor::decompress(std::span<const std::byte> in,
                                std::span<float> out) {
  const std::size_t k = in.size() / 4;
  CGX_CHECK_LE(k, out.size());
  if (k) std::memcpy(out.data(), in.data(), in.size());
  std::fill(out.begin() + static_cast<std::ptrdiff_t>(k), out.end(), 0.0f);
}

std::string FakeCompressor::name() const {
  return "fake(x" + std::to_string(ratio_) + ")";
}

}  // namespace cgx::core
