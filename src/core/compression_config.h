// Per-layer compression configuration and layer filters.
//
// This is the user-facing policy object behind the paper's API (§3): CGX
// "allows users to choose the compression parameters for specific layers or
// filter out the group of layers". Matching is by substring on the layer
// name, like torch_cgx's `exclude_layer("bias")` in Listing 1.
//
// Defaults follow §4: QSGD with 4 bits / bucket 128, and bias +
// batch/layer-norm layers excluded (reduced in full precision in fused
// small packets). Layers smaller than `min_compress_numel` are also routed
// to full precision: compressing tiny tensors costs kernel launches without
// saving meaningful bandwidth.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "core/compressor.h"
#include "tensor/layer_layout.h"

namespace cgx::core {

enum class Method {
  None,
  Fp16,
  Qsgd,
  Nuq,  // NUQSGD: exponential-grid quantization (§2.3 successor work)
  TopK,
  PowerSgd,
  TernGrad,
  OneBit,
  Fake
};

const char* method_name(Method m);

struct LayerCompression {
  Method method = Method::Qsgd;
  unsigned bits = 4;              // Qsgd
  std::size_t bucket_size = 128;  // Qsgd / TernGrad / OneBit
  double topk_ratio = 0.01;       // TopK
  unsigned rank = 4;              // PowerSgd
  double fake_ratio = 1.0;        // Fake
  bool error_feedback = false;    // wrap in ErrorFeedback
  // DGC-style top-k (momentum correction + local clipping). Only meaningful
  // with method == TopK; the velocity store doubles as the residual, so
  // error_feedback is ignored for DGC layers (no double accumulation).
  bool dgc = false;
  float dgc_momentum = 0.9f;
  double dgc_clip = 2.5;
  bool powersgd_fp16 = false;     // demonstrate the FP16 divergence (§6.2)
};

class CompressionConfig {
 public:
  CompressionConfig();

  // Policy mutators (mirroring the torch_cgx API surface).
  void set_default(LayerCompression cfg);
  const LayerCompression& default_compression() const { return default_; }
  // Any layer whose name contains `pattern` is reduced in full precision.
  void exclude_layer(const std::string& pattern);
  // Any layer whose name contains `pattern` uses `cfg` (later rules take
  // precedence over earlier ones).
  void set_layer(const std::string& pattern, LayerCompression cfg);
  // Like set_layer but matches the full layer name exactly — used by the
  // adaptive assigner, whose per-layer overrides must not leak onto layers
  // whose names merely contain this one as a substring.
  void set_layer_exact(const std::string& name, LayerCompression cfg);
  // Convenience used by the adaptive assigner: override bits/bucket for one
  // exact layer name.
  void set_layer_quantization(const std::string& exact_name, unsigned bits,
                              std::size_t bucket_size);
  void set_min_compress_numel(std::size_t numel) {
    min_compress_numel_ = numel;
  }
  std::size_t min_compress_numel() const { return min_compress_numel_; }

  // Resolved policy for a concrete layer.
  LayerCompression for_layer(const std::string& name,
                             std::size_t numel) const;

  // The paper's default exclusions: biases and batch/layer-norm layers.
  static CompressionConfig cgx_default();
  // A config that never compresses (the NCCL baseline).
  static CompressionConfig uncompressed();

 private:
  struct Rule {
    std::string pattern;
    LayerCompression cfg;
    bool exact = false;
  };
  LayerCompression default_;
  std::vector<Rule> rules_;         // later rules win
  std::vector<std::string> excludes_;
  std::size_t min_compress_numel_ = 64;
};

// Instantiates the operator for one layer. `layer_rows` is the leading
// dimension of the layer's shape (PowerSGD needs the matrix view).
std::unique_ptr<Compressor> make_compressor(const LayerCompression& cfg,
                                            std::size_t layer_rows);

// Compressed wire size of one layer under a policy.
std::size_t wire_bytes(const LayerCompression& cfg, std::size_t numel,
                       std::size_t layer_rows);

}  // namespace cgx::core
