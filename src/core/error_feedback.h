// Error feedback (Karimireddy et al. 2019; paper §2.3).
//
// Wraps any compressor with a residual memory: each step compresses
// (gradient + residual) and stores what the compression dropped back into
// the residual, to be re-injected next step. This is the standard fix that
// makes biased operators (TopK, 1-bit, PowerSGD) converge, and the "cost of
// maintaining the error buffer" the paper counts against them (§2.4).
//
// The wrapper holds per-instance state, so — like all stateful compressors —
// the engine creates one per (rank, layer).
#pragma once

#include <memory>
#include <vector>

#include "core/compressor.h"
#include "util/arena.h"

namespace cgx::core {

class ErrorFeedback final : public Compressor {
 public:
  // decay scales the residual before re-injection (corrected = gradient +
  // decay * residual, applied in one fused sweep); 1.0 is classic EF.
  explicit ErrorFeedback(std::unique_ptr<Compressor> inner,
                         float decay = 1.0f);

  std::size_t compressed_size(std::size_t n) const override;
  std::size_t compress(std::span<const float> in, std::span<std::byte> out,
                       util::Rng& rng) override;
  void decompress(std::span<const std::byte> in,
                  std::span<float> out) override;
  std::string name() const override;

  // L2 norm of the current residual; tests use it to verify accumulation.
  double residual_norm() const;

  Compressor& inner() { return *inner_; }

 private:
  std::unique_ptr<Compressor> inner_;
  float decay_;
  // Arena-aware (grow-only, NUMA-local when built on a bound rank thread):
  // the residual lives as long as the layer trains, exactly arena lifecycle.
  util::ArenaBuffer<float> residual_;
  util::ArenaBuffer<float> corrected_;      // scratch: gradient + decay * residual
  util::ArenaBuffer<float> reconstructed_;  // scratch: decompress(payload)
};

}  // namespace cgx::core
