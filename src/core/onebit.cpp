#include "core/onebit.h"

#include <algorithm>
#include <cmath>

#include "core/workspace.h"
#include "util/bitio.h"
#include "util/check.h"

namespace cgx::core {

OneBitCompressor::OneBitCompressor(std::size_t bucket_size)
    : bucket_size_(bucket_size) {
  CGX_CHECK_GT(bucket_size, 0u);
}

std::size_t OneBitCompressor::compressed_size(std::size_t n) const {
  if (n == 0) return 0;
  const std::size_t buckets = (n + bucket_size_ - 1) / bucket_size_;
  return 8 * buckets + util::packed_size_bytes(n, 1);
}

std::size_t OneBitCompressor::scratch_bytes() const {
  return symbol_scratch_.capacity() * sizeof(std::uint32_t);
}

std::size_t OneBitCompressor::compress(std::span<const float> in,
                                       std::span<std::byte> out,
                                       util::Rng& rng) {
  (void)rng;
  const std::size_t n = in.size();
  if (n == 0) return 0;
  const std::size_t total = compressed_size(n);
  CGX_CHECK_LE(total, out.size());
  const std::size_t buckets = (n + bucket_size_ - 1) / bucket_size_;
  auto* means = reinterpret_cast<float*>(out.data());
  const std::span<std::uint32_t> symbols = ensure_span(symbol_scratch_, n);

  for (std::size_t b = 0; b < buckets; ++b) {
    const std::size_t first = b * bucket_size_;
    const std::size_t len = std::min(bucket_size_, n - first);
    double neg_sum = 0.0, pos_sum = 0.0;
    std::size_t neg_count = 0, pos_count = 0;
    std::uint32_t* sym = symbols.data() + first;
    for (std::size_t i = 0; i < len; ++i) {
      const float v = in[first + i];
      if (v < 0.0f) {
        neg_sum += v;
        ++neg_count;
        sym[i] = 1u;
      } else {
        pos_sum += v;
        ++pos_count;
        sym[i] = 0u;
      }
    }
    means[2 * b] =
        neg_count ? static_cast<float>(neg_sum / neg_count) : 0.0f;
    means[2 * b + 1] =
        pos_count ? static_cast<float>(pos_sum / pos_count) : 0.0f;
  }
  util::pack_symbols(symbols, 1,
                     out.subspan(8 * buckets, total - 8 * buckets));
  return total;
}

void OneBitCompressor::decompress(std::span<const std::byte> in,
                                  std::span<float> out) {
  const std::size_t n = out.size();
  if (n == 0) return;
  CGX_CHECK_EQ(in.size(), compressed_size(n));
  const std::size_t buckets = (n + bucket_size_ - 1) / bucket_size_;
  const auto* means = reinterpret_cast<const float*>(in.data());
  const std::span<std::uint32_t> symbols = ensure_span(symbol_scratch_, n);
  util::unpack_symbols(in.subspan(8 * buckets), 1, symbols);
  for (std::size_t b = 0; b < buckets; ++b) {
    const std::size_t first = b * bucket_size_;
    const std::size_t len = std::min(bucket_size_, n - first);
    const float mean_neg = means[2 * b];
    const float mean_pos = means[2 * b + 1];
    const std::uint32_t* sym = symbols.data() + first;
    for (std::size_t i = 0; i < len; ++i) {
      out[first + i] = sym[i] ? mean_neg : mean_pos;
    }
  }
}

std::string OneBitCompressor::name() const {
  return "onebit(bucket=" + std::to_string(bucket_size_) + ")";
}

}  // namespace cgx::core
