#include "core/onebit.h"

#include <algorithm>
#include <cmath>

#include "util/bitio.h"
#include "util/check.h"

namespace cgx::core {

OneBitCompressor::OneBitCompressor(std::size_t bucket_size)
    : bucket_size_(bucket_size) {
  CGX_CHECK_GT(bucket_size, 0u);
}

std::size_t OneBitCompressor::compressed_size(std::size_t n) const {
  if (n == 0) return 0;
  const std::size_t buckets = (n + bucket_size_ - 1) / bucket_size_;
  return 8 * buckets + util::packed_size_bytes(n, 1);
}

std::size_t OneBitCompressor::compress(std::span<const float> in,
                                       std::span<std::byte> out,
                                       util::Rng& rng) {
  (void)rng;
  const std::size_t n = in.size();
  if (n == 0) return 0;
  const std::size_t total = compressed_size(n);
  CGX_CHECK_LE(total, out.size());
  const std::size_t buckets = (n + bucket_size_ - 1) / bucket_size_;
  auto* means = reinterpret_cast<float*>(out.data());
  util::BitWriter writer(out.subspan(8 * buckets, total - 8 * buckets), 1);

  for (std::size_t b = 0; b < buckets; ++b) {
    const std::size_t first = b * bucket_size_;
    const std::size_t len = std::min(bucket_size_, n - first);
    double neg_sum = 0.0, pos_sum = 0.0;
    std::size_t neg_count = 0, pos_count = 0;
    for (std::size_t i = 0; i < len; ++i) {
      const float v = in[first + i];
      if (v < 0.0f) {
        neg_sum += v;
        ++neg_count;
      } else {
        pos_sum += v;
        ++pos_count;
      }
    }
    means[2 * b] =
        neg_count ? static_cast<float>(neg_sum / neg_count) : 0.0f;
    means[2 * b + 1] =
        pos_count ? static_cast<float>(pos_sum / pos_count) : 0.0f;
    for (std::size_t i = 0; i < len; ++i) {
      writer.write(in[first + i] < 0.0f ? 1u : 0u);
    }
  }
  writer.finish();
  return total;
}

void OneBitCompressor::decompress(std::span<const std::byte> in,
                                  std::span<float> out) {
  const std::size_t n = out.size();
  if (n == 0) return;
  CGX_CHECK_EQ(in.size(), compressed_size(n));
  const std::size_t buckets = (n + bucket_size_ - 1) / bucket_size_;
  const auto* means = reinterpret_cast<const float*>(in.data());
  util::BitReader reader(in.subspan(8 * buckets), 1);
  for (std::size_t b = 0; b < buckets; ++b) {
    const std::size_t first = b * bucket_size_;
    const std::size_t len = std::min(bucket_size_, n - first);
    const float mean_neg = means[2 * b];
    const float mean_pos = means[2 * b + 1];
    for (std::size_t i = 0; i < len; ++i) {
      out[first + i] = reader.read() ? mean_neg : mean_pos;
    }
  }
}

std::string OneBitCompressor::name() const {
  return "onebit(bucket=" + std::to_string(bucket_size_) + ")";
}

}  // namespace cgx::core
