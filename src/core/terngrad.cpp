#include "core/terngrad.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "core/workspace.h"
#include "tensor/tensor_ops.h"
#include "util/bitio.h"
#include "util/check.h"

namespace cgx::core {
namespace {

// Symbols: 0 -> 0, 1 -> +1, 2 -> -1.
constexpr std::uint32_t kZero = 0;
constexpr std::uint32_t kPlus = 1;
constexpr std::uint32_t kMinus = 2;

}  // namespace

TernGradCompressor::TernGradCompressor(std::size_t bucket_size)
    : bucket_size_(bucket_size) {
  CGX_CHECK_GT(bucket_size, 0u);
}

std::size_t TernGradCompressor::compressed_size(std::size_t n) const {
  if (n == 0) return 0;
  const std::size_t buckets = (n + bucket_size_ - 1) / bucket_size_;
  return 4 * buckets + util::packed_size_bytes(n, 2);
}

std::size_t TernGradCompressor::scratch_bytes() const {
  return symbol_scratch_.capacity() * sizeof(std::uint32_t) +
         rand_scratch_.capacity() * sizeof(float);
}

std::size_t TernGradCompressor::compress(std::span<const float> in,
                                         std::span<std::byte> out,
                                         util::Rng& rng) {
  const std::size_t n = in.size();
  if (n == 0) return 0;
  const std::size_t total = compressed_size(n);
  CGX_CHECK_LE(total, out.size());
  const std::size_t buckets = (n + bucket_size_ - 1) / bucket_size_;
  auto* scales = reinterpret_cast<float*>(out.data());
  const std::span<std::uint32_t> symbols = ensure_span(symbol_scratch_, n);
  const std::span<float> rand = ensure_span(rand_scratch_, n);

  for (std::size_t b = 0; b < buckets; ++b) {
    const std::size_t first = b * bucket_size_;
    const std::size_t len = std::min(bucket_size_, n - first);
    const std::span<const float> bucket = in.subspan(first, len);
    const float scale = tensor::linf_norm(bucket);
    scales[b] = scale;
    std::uint32_t* sym = symbols.data() + first;
    if (scale == 0.0f || !std::isfinite(scale)) {
      std::memset(sym, 0, len * sizeof(std::uint32_t));
      continue;
    }
    const std::span<float> u = rand.subspan(first, len);
    rng.fill_floats(u);
    const float inv_scale = 1.0f / scale;
    for (std::size_t i = 0; i < len; ++i) {
      const float v = bucket[i];
      const float p = std::fabs(v) * inv_scale;  // in [0, 1]
      if (u[i] < p) {
        sym[i] = std::signbit(v) ? kMinus : kPlus;
      } else {
        sym[i] = kZero;
      }
    }
  }
  util::pack_symbols(symbols, 2,
                     out.subspan(4 * buckets, total - 4 * buckets));
  return total;
}

void TernGradCompressor::decompress(std::span<const std::byte> in,
                                    std::span<float> out) {
  const std::size_t n = out.size();
  if (n == 0) return;
  CGX_CHECK_EQ(in.size(), compressed_size(n));
  const std::size_t buckets = (n + bucket_size_ - 1) / bucket_size_;
  const auto* scales = reinterpret_cast<const float*>(in.data());
  const std::span<std::uint32_t> symbols = ensure_span(symbol_scratch_, n);
  util::unpack_symbols(in.subspan(4 * buckets), 2, symbols);
  for (std::size_t b = 0; b < buckets; ++b) {
    const std::size_t first = b * bucket_size_;
    const std::size_t len = std::min(bucket_size_, n - first);
    const float scale = std::isfinite(scales[b]) ? scales[b] : 0.0f;
    const std::uint32_t* sym = symbols.data() + first;
    for (std::size_t i = 0; i < len; ++i) {
      const std::uint32_t symbol = sym[i];
      float v = 0.0f;
      if (symbol == kPlus) v = scale;
      if (symbol == kMinus) v = -scale;
      out[first + i] = v;
    }
  }
}

std::string TernGradCompressor::name() const {
  return "terngrad(bucket=" + std::to_string(bucket_size_) + ")";
}

}  // namespace cgx::core
