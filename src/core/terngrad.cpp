#include "core/terngrad.h"

#include <algorithm>
#include <cmath>

#include "tensor/tensor_ops.h"
#include "util/bitio.h"
#include "util/check.h"

namespace cgx::core {
namespace {

// Symbols: 0 -> 0, 1 -> +1, 2 -> -1.
constexpr std::uint32_t kZero = 0;
constexpr std::uint32_t kPlus = 1;
constexpr std::uint32_t kMinus = 2;

}  // namespace

TernGradCompressor::TernGradCompressor(std::size_t bucket_size)
    : bucket_size_(bucket_size) {
  CGX_CHECK_GT(bucket_size, 0u);
}

std::size_t TernGradCompressor::compressed_size(std::size_t n) const {
  if (n == 0) return 0;
  const std::size_t buckets = (n + bucket_size_ - 1) / bucket_size_;
  return 4 * buckets + util::packed_size_bytes(n, 2);
}

std::size_t TernGradCompressor::compress(std::span<const float> in,
                                         std::span<std::byte> out,
                                         util::Rng& rng) {
  const std::size_t n = in.size();
  if (n == 0) return 0;
  const std::size_t total = compressed_size(n);
  CGX_CHECK_LE(total, out.size());
  const std::size_t buckets = (n + bucket_size_ - 1) / bucket_size_;
  auto* scales = reinterpret_cast<float*>(out.data());
  util::BitWriter writer(out.subspan(4 * buckets, total - 4 * buckets), 2);

  for (std::size_t b = 0; b < buckets; ++b) {
    const std::size_t first = b * bucket_size_;
    const std::size_t len = std::min(bucket_size_, n - first);
    const std::span<const float> bucket = in.subspan(first, len);
    const float scale = tensor::linf_norm(bucket);
    scales[b] = scale;
    if (scale == 0.0f || !std::isfinite(scale)) {
      for (std::size_t i = 0; i < len; ++i) writer.write(kZero);
      continue;
    }
    for (float v : bucket) {
      const float p = std::fabs(v) / scale;  // in [0, 1]
      if (rng.next_float() < p) {
        writer.write(std::signbit(v) ? kMinus : kPlus);
      } else {
        writer.write(kZero);
      }
    }
  }
  writer.finish();
  return total;
}

void TernGradCompressor::decompress(std::span<const std::byte> in,
                                    std::span<float> out) {
  const std::size_t n = out.size();
  if (n == 0) return;
  CGX_CHECK_EQ(in.size(), compressed_size(n));
  const std::size_t buckets = (n + bucket_size_ - 1) / bucket_size_;
  const auto* scales = reinterpret_cast<const float*>(in.data());
  util::BitReader reader(in.subspan(4 * buckets), 2);
  for (std::size_t b = 0; b < buckets; ++b) {
    const std::size_t first = b * bucket_size_;
    const std::size_t len = std::min(bucket_size_, n - first);
    const float scale = std::isfinite(scales[b]) ? scales[b] : 0.0f;
    for (std::size_t i = 0; i < len; ++i) {
      const auto symbol = static_cast<std::uint32_t>(reader.read());
      float v = 0.0f;
      if (symbol == kPlus) v = scale;
      if (symbol == kMinus) v = -scale;
      out[first + i] = v;
    }
  }
}

std::string TernGradCompressor::name() const {
  return "terngrad(bucket=" + std::to_string(bucket_size_) + ")";
}

}  // namespace cgx::core
