// NUQSGD — nonuniform (exponential-grid) stochastic quantization
// (Ramezani-Kebrya et al., JMLR 2021; paper §2.3 cites it among the
// variance-reduced QSGD successors, and CGX's authors co-wrote it).
//
// Gradient coordinates are heavy-tailed: most mass sits near zero, where a
// UNIFORM grid wastes resolution. NUQSGD places the quantization levels
// exponentially: L = {0, 1/2^(s-1), ..., 1/4, 1/2, 1} (per-bucket L2
// normalization, one sign bit), with stochastic rounding between adjacent
// levels keeping the estimator unbiased. Same wire format and cost as
// QSGD at equal bits; strictly lower variance on small-magnitude
// coordinates.
#pragma once

#include <vector>

#include "core/compressor.h"

namespace cgx::core {

class NuqCompressor final : public Compressor {
 public:
  // bits in [2, 8]: one sign bit + (bits-1) bits indexing 2^(bits-1)
  // exponential levels.
  NuqCompressor(unsigned bits = 4, std::size_t bucket_size = 128);

  std::size_t compressed_size(std::size_t n) const override;
  std::size_t compress(std::span<const float> in, std::span<std::byte> out,
                       util::Rng& rng) override;
  void decompress(std::span<const std::byte> in,
                  std::span<float> out) override;
  std::string name() const override;
  std::size_t scratch_bytes() const override;

  unsigned bits() const { return bits_; }

  // Level value for a symbol's magnitude index (normalized to [0, 1]).
  static float level_value(unsigned index, unsigned bits);

 private:
  unsigned bits_;
  std::size_t bucket_size_;
  std::vector<float> levels_;  // precomputed grid, indexed by magnitude
  std::vector<std::uint32_t> symbol_scratch_;
  std::vector<float> rand_scratch_;
};

}  // namespace cgx::core
