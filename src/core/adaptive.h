// Adaptive layer-wise compression (paper §5, Algorithm 1).
//
// Problem: pick per-layer bit-widths b_1..b_L from a candidate set B that
// minimize the bandwidth objective  sum_l b_l * size(l)  subject to the
// total compression error not exceeding alpha * E4, where E4 is the error
// of uniform 4-bit compression (known to recover accuracy) and
// alpha in [1.5, 3].
//
// Three assigners, matching the paper's comparison (Table 7, Fig. 5):
//   KMeansAssigner — Algorithm 1: 2-D k-means over per-layer points
//                    (size, accumulated-gradient norm), centroids sorted by
//                    norm - size, bit-widths mapped linearly over the sorted
//                    clusters. The winner.
//   LinearAssigner — sort layers by norm/size, interpolate bit-widths
//                    linearly along the order. The simple heuristic that
//                    "recovers accuracy ... but the performance gains are
//                    minor".
//   BayesAssigner  — Bayesian optimization (GP + expected improvement) over
//                    a low-dimensional quantile-threshold parameterisation
//                    of monotone assignments; the paper's first approach,
//                    kept as the baseline it was ("requires
//                    instance-specific tuning ... unstable").
//
// All three honour the error constraint by *measuring* the error: each
// candidate assignment is applied to the recorded gradient snapshot and the
// actual quantization error computed, then bit-widths are bumped until
// error(assignment) <= alpha * E4.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/compression_config.h"
#include "tensor/layer_layout.h"
#include "util/rng.h"

namespace cgx::core {

// Accumulates per-layer gradient statistics over a re-assignment period
// (§5: "We periodically collect gradient statistics").
class GradStatsCollector {
 public:
  explicit GradStatsCollector(const tensor::LayerLayout& layout);

  // Called once per step with the rank's fused gradient.
  void accumulate(std::span<const float> fused);

  std::size_t steps() const { return steps_; }
  // L2 norm of the accumulated gradient of layer l.
  double accumulated_norm(std::size_t layer) const;
  // Snapshot of the accumulated gradient (for measured-error assignment).
  std::span<const float> accumulated(std::size_t layer) const;

  void reset();

  const tensor::LayerLayout& layout() const { return *layout_; }

 private:
  const tensor::LayerLayout* layout_;
  std::vector<float> sum_;  // fused accumulated gradients
  std::size_t steps_ = 0;
};

struct AdaptiveOptions {
  std::vector<unsigned> candidate_bits = {2, 3, 4, 8};
  std::size_t bucket_size = 128;
  double alpha = 2.0;          // error budget multiplier over E4
  unsigned reference_bits = 4; // the "known good" uniform assignment
  // Layers excluded from compression by the engine config are ignored here;
  // the assigner only sees compressible layers.
};

struct Assignment {
  std::vector<unsigned> bits;  // one per layout layer (0 = not compressed)
  double measured_error = 0.0; // L2 quantization error on the snapshot
  double reference_error = 0.0;  // E4 on the same snapshot
  // sum(bits * size) / sum(ref_bits * size): < 1 means better than uniform.
  double relative_size = 1.0;
  // Full per-layer policy (one per layout layer; method == None for layers
  // the assigner did not touch). Set by assigners that choose between codec
  // FAMILIES (the DP budget planner mixes quantization and sparsification);
  // empty for the legacy bits-only assigners. When non-empty it is the
  // authoritative plan and `bits` is a quantization-only mirror for legacy
  // consumers (TopK layers mirror as reference_bits).
  std::vector<LayerCompression> choice;
  // Estimated compressed egress per rank per step under `choice` (0 when
  // choice is empty).
  double wire_bytes = 0.0;
};

class Assigner {
 public:
  virtual ~Assigner() = default;
  virtual Assignment assign(const GradStatsCollector& stats,
                            const std::vector<bool>& compressible,
                            const AdaptiveOptions& options,
                            util::Rng& rng) = 0;
  virtual std::string name() const = 0;
};

class KMeansAssigner final : public Assigner {
 public:
  Assignment assign(const GradStatsCollector& stats,
                    const std::vector<bool>& compressible,
                    const AdaptiveOptions& options, util::Rng& rng) override;
  std::string name() const override { return "KMEANS"; }
};

class LinearAssigner final : public Assigner {
 public:
  Assignment assign(const GradStatsCollector& stats,
                    const std::vector<bool>& compressible,
                    const AdaptiveOptions& options, util::Rng& rng) override;
  std::string name() const override { return "Linear"; }
};

class BayesAssigner final : public Assigner {
 public:
  explicit BayesAssigner(int iterations = 40) : iterations_(iterations) {}
  Assignment assign(const GradStatsCollector& stats,
                    const std::vector<bool>& compressible,
                    const AdaptiveOptions& options, util::Rng& rng) override;
  std::string name() const override { return "Bayes"; }

 private:
  int iterations_;
};

// Measured L2 quantization error of quantizing each compressible layer's
// snapshot at the given bits (0 = skip layer). Exposed for tests/benches.
double measured_assignment_error(const GradStatsCollector& stats,
                                 const std::vector<bool>& compressible,
                                 const std::vector<unsigned>& bits,
                                 std::size_t bucket_size, util::Rng& rng);

// Fills error/size metadata of an assignment and enforces the alpha * E4
// constraint by promoting the most error-contributing layers to higher
// bit-widths until it holds. With `use_remaining_budget` (the KMeans
// assigner's refinement), any slack left under the budget is spent by
// demoting layers with the best bandwidth-saved-per-error ratio.
void finalize_assignment(Assignment& a, const GradStatsCollector& stats,
                         const std::vector<bool>& compressible,
                         const AdaptiveOptions& options, util::Rng& rng,
                         bool use_remaining_budget = false);

// Simple 2-D k-means (kmeans++ init, Lloyd iterations). Returns cluster id
// per point. Exposed for testing.
std::vector<int> kmeans_2d(const std::vector<std::pair<double, double>>& pts,
                           int k, util::Rng& rng,
                           std::vector<std::pair<double, double>>* centroids);

// Applies an assignment to an engine config: per-layer QSGD overrides for
// compressible layers. (Engine.rebuild() must be called afterwards.)
void apply_assignment(const Assignment& a, const tensor::LayerLayout& layout,
                      CompressionConfig& config, std::size_t bucket_size);

}  // namespace cgx::core
