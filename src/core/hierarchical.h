// Two-level (hierarchical) compressed allreduce for multi-node clusters.
//
// Paper §4, "Backend Details": CGX supports heterogeneous communication
// where intra-node traffic uses the fast local backend (SHM) — optionally
// uncompressed, since the local fabric is cheap relative to the NICs —
// while the inter-node exchange runs compressed over MPI/NCCL.
//
// The schedule is the classic node-leader decomposition:
//   1. intra-node reduce: every member hands its vector to the node leader.
//      When the transport offers peer-direct exchange on the (member,
//      leader) link (SHM inside a node — ask per link, see
//      Transport::supports_direct_exchange(a, b)), the member just POSTS
//      its span and the leader folds members pairwise with direct_pull2 —
//      zero intermediate copies. Otherwise the hop rides buffered channels
//      (optionally compressed, see compress_intra).
//   2. inter-node: the leaders run the compression-aware SRA among
//      themselves — the node-aggregated residual is RE-COMPRESSED at the
//      node boundary (fresh quantization of the intra sum, with
//      error-feedback kept by the leader-level compressor), so only the
//      compressed payload crosses the NICs.
//   3. intra-node broadcast: leaders fan the result back out, full
//      precision (each leader re-compressing with an independent stochastic
//      rounding would silently diverge replicas across nodes).
//
// All ranks finish bit-identical (the leader, like everyone else, adopts
// the payload-decompressed values from the leader exchange).
//
// The schedule is split into begin/finish halves exactly like
// compressed_sra_begin/finish so the streaming bucketed engine can overlap
// the two levels across buckets: begin() is the intra-node reduce plus the
// first (scatter) half of the leader exchange; finish() drains the leader
// exchange and broadcasts. Bucket k+1's begin — the node-local fold — can
// therefore run while bucket k's finish is still waiting on the NICs.
// begin(); finish() back to back is the plain allreduce.
//
// Error-feedback contract (who owns which residual):
//   chunk_compressors[j], j < num-leaders   leader-level SRA chunk j
//                                           (the node-boundary EF)
//   chunk_compressors[num-leaders]          the intra-node hop when
//                                           compress_intra is on (member-
//                                           side EF over the full vector)
// The two levels never share a compressor instance, so one level's
// residual can never leak into the other's stream. Every rank passes its
// own instances; a rank only exercises the entries its role touches.
#pragma once

#include <span>
#include <vector>

#include "comm/collectives.h"
#include "core/compressor.h"
#include "core/workspace.h"

namespace cgx::core {

struct HierarchicalOptions {
  // node_of[rank] -> node id; ranks of a node must be assigned the same id.
  // Ids may be arbitrary (non-contiguous) integers.
  std::vector<int> node_of;
  // Compress the intra-node REDUCE hop too (costs an extra compression
  // round, saves local bandwidth; off by default per §4). Forces the
  // channel path for the reduce hop — a compressed payload cannot ride the
  // peer-direct fold. The broadcast hop always stays full precision.
  bool compress_intra = false;
};

// Sum-allreduce across the world, two-level. `bucket` selects the disjoint
// tag lane (comm/tagspace.h) so the streaming engine can keep several
// buckets in flight; plain callers leave it 0. `ws` is the rank's scratch
// arena (grow-only; zero allocations at steady state). The overload
// without it allocates a transient one per call.
void hierarchical_allreduce(comm::Comm& comm, std::span<float> data,
                            std::span<Compressor* const> chunk_compressors,
                            util::Rng& rng,
                            const HierarchicalOptions& options,
                            CollectiveWorkspace& ws, int bucket = 0);
void hierarchical_allreduce(comm::Comm& comm, std::span<float> data,
                            std::span<Compressor* const> chunk_compressors,
                            util::Rng& rng,
                            const HierarchicalOptions& options);

// Split halves for the overlap engine (see file comment). `data` and the
// workspace arena must stay untouched between the two calls; members on
// the peer-direct path have their span posted to the leader for the whole
// window.
void hierarchical_begin(comm::Comm& comm, std::span<float> data,
                        std::span<Compressor* const> chunk_compressors,
                        util::Rng& rng, const HierarchicalOptions& options,
                        CollectiveWorkspace& ws, int bucket = 0);
void hierarchical_finish(comm::Comm& comm, std::span<float> data,
                         std::span<Compressor* const> chunk_compressors,
                         util::Rng& rng, const HierarchicalOptions& options,
                         CollectiveWorkspace& ws, int bucket = 0);

// Leader rank of `rank`'s node under this assignment (lowest rank with the
// same node id). Exposed for tests.
int leader_of(const std::vector<int>& node_of, int rank);

// Number of distinct nodes in the assignment. Exposed for sizing the
// compressor span (the intra operator lives at index num_leaders).
int num_leaders(const std::vector<int>& node_of);

}  // namespace cgx::core
