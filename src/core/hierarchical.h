// Two-level (hierarchical) compressed allreduce for multi-node clusters.
//
// Paper §4, "Backend Details": CGX supports heterogeneous communication
// where intra-node traffic uses the fast local backend (SHM) — optionally
// uncompressed, since the local fabric is cheap relative to the NICs —
// while the inter-node exchange runs compressed over MPI/NCCL.
//
// The schedule is the classic node-leader decomposition:
//   1. intra-node reduce: every member sends its vector to the node leader
//      (full precision by default: the local hop is not the bottleneck and
//      skipping compression here removes one error round);
//   2. inter-node: the leaders run the compression-aware SRA allreduce
//      among themselves — only the compressed payload crosses the NICs;
//   3. intra-node broadcast: leaders fan the result back out.
//
// All ranks finish bit-identical (the leader, like everyone else, adopts
// the payload-decompressed values from the leader exchange).
#pragma once

#include <span>
#include <vector>

#include "comm/collectives.h"
#include "core/compressor.h"
#include "core/workspace.h"

namespace cgx::core {

struct HierarchicalOptions {
  // node_of[rank] -> node id; ranks of a node must be assigned the same id.
  std::vector<int> node_of;
  // Compress the intra-node REDUCE hop too (costs an extra compression
  // round, saves local bandwidth; off by default per §4). The broadcast
  // hop always stays full precision: each leader would compress the final
  // result with independent stochastic roundings, and replicas on
  // different nodes would silently diverge — the lockstep invariant every
  // engine guarantees.
  bool compress_intra = false;
};

// Sum-allreduce across the world. `chunk_compressors` has one compressor
// per LEADER index (the inter-node SRA chunk binding); every rank passes
// its own instances. The leader of a node is its lowest rank. `ws` is the
// rank's scratch arena (see workspace.h); the overload without it
// allocates a transient one per call.
void hierarchical_allreduce(comm::Comm& comm, std::span<float> data,
                            std::span<Compressor* const> chunk_compressors,
                            util::Rng& rng,
                            const HierarchicalOptions& options,
                            CollectiveWorkspace& ws);
void hierarchical_allreduce(comm::Comm& comm, std::span<float> data,
                            std::span<Compressor* const> chunk_compressors,
                            util::Rng& rng,
                            const HierarchicalOptions& options);

// Leader rank of `rank`'s node under this assignment (lowest rank with the
// same node id). Exposed for tests.
int leader_of(const std::vector<int>& node_of, int rank);

}  // namespace cgx::core
