#include "core/nuq.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "core/workspace.h"
#include "tensor/tensor_ops.h"
#include "util/bitio.h"
#include "util/check.h"
#include "util/simd.h"

namespace cgx::core {

NuqCompressor::NuqCompressor(unsigned bits, std::size_t bucket_size)
    : bits_(bits), bucket_size_(bucket_size) {
  CGX_CHECK(bits >= 2 && bits <= 8);
  CGX_CHECK_GT(bucket_size, 0u);
  const unsigned levels = 1u << (bits - 1);
  levels_.resize(levels);
  for (unsigned k = 0; k < levels; ++k) levels_[k] = level_value(k, bits);
}

float NuqCompressor::level_value(unsigned index, unsigned bits) {
  // index 0 -> 0; index k in [1, 2^(bits-1)-1] -> 2^-(levels-1-k) where the
  // top index maps to 1.0.
  const unsigned levels = 1u << (bits - 1);  // including zero
  CGX_CHECK_LT(index, levels);
  if (index == 0) return 0.0f;
  return std::exp2(-static_cast<float>(levels - 1 - index));
}

std::size_t NuqCompressor::compressed_size(std::size_t n) const {
  if (n == 0) return 0;
  const std::size_t buckets = (n + bucket_size_ - 1) / bucket_size_;
  return 4 * buckets + util::packed_size_bytes(n, bits_);
}

std::size_t NuqCompressor::scratch_bytes() const {
  return symbol_scratch_.capacity() * sizeof(std::uint32_t) +
         rand_scratch_.capacity() * sizeof(float);
}

std::size_t NuqCompressor::compress(std::span<const float> in,
                                    std::span<std::byte> out,
                                    util::Rng& rng) {
  const std::size_t n = in.size();
  if (n == 0) return 0;
  const std::size_t total = compressed_size(n);
  CGX_CHECK_LE(total, out.size());
  const std::size_t buckets = (n + bucket_size_ - 1) / bucket_size_;
  auto* norms = reinterpret_cast<float*>(out.data());
  const std::span<std::uint32_t> symbols = ensure_span(symbol_scratch_, n);
  const std::span<float> rand = ensure_span(rand_scratch_, n);

  for (std::size_t b = 0; b < buckets; ++b) {
    const std::size_t first = b * bucket_size_;
    const std::size_t len = std::min(bucket_size_, n - first);
    const std::span<const float> bucket = in.subspan(first, len);
    const auto norm = static_cast<float>(tensor::l2_norm(bucket));
    norms[b] = norm;
    std::uint32_t* sym = symbols.data() + first;
    if (norm == 0.0f || !std::isfinite(norm)) {
      std::memset(sym, 0, len * sizeof(std::uint32_t));
      continue;
    }
    const std::span<float> u = rand.subspan(first, len);
    rng.fill_floats(u);
    const float inv_norm = 1.0f / norm;
    // The grid levels are exact powers of two (levels_[k] = 2^(k - top) for
    // k >= 1), so the kernel finds the containing interval straight from
    // a's exponent field instead of the old linear scan — provably the same
    // index for every finite a in [0, 1] — then applies the same unbiased
    // p-interpolation. Dispatches to the active SIMD level; all levels are
    // bit-identical (util/simd.h).
    util::simd::nuq_quantize(bucket.data(), u.data(), len, inv_norm, bits_,
                             sym);
  }
  util::pack_symbols(symbols, bits_,
                     out.subspan(4 * buckets, total - 4 * buckets));
  return total;
}

void NuqCompressor::decompress(std::span<const std::byte> in,
                               std::span<float> out) {
  const std::size_t n = out.size();
  if (n == 0) return;
  CGX_CHECK_EQ(in.size(), compressed_size(n));
  const std::size_t buckets = (n + bucket_size_ - 1) / bucket_size_;
  const auto* norms = reinterpret_cast<const float*>(in.data());
  const std::span<std::uint32_t> symbols = ensure_span(symbol_scratch_, n);
  util::unpack_symbols(in.subspan(4 * buckets), bits_, symbols);
  for (std::size_t b = 0; b < buckets; ++b) {
    const std::size_t first = b * bucket_size_;
    const std::size_t len = std::min(bucket_size_, n - first);
    const float norm = std::isfinite(norms[b]) ? norms[b] : 0.0f;
    util::simd::nuq_dequantize(symbols.data() + first, len, norm, bits_,
                               out.data() + first);
  }
}

std::string NuqCompressor::name() const {
  return "nuq(b=" + std::to_string(bits_) +
         ",bucket=" + std::to_string(bucket_size_) + ")";
}

}  // namespace cgx::core
