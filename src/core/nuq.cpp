#include "core/nuq.h"

#include <algorithm>
#include <cmath>

#include "tensor/tensor_ops.h"
#include "util/bitio.h"
#include "util/check.h"

namespace cgx::core {

NuqCompressor::NuqCompressor(unsigned bits, std::size_t bucket_size)
    : bits_(bits), bucket_size_(bucket_size) {
  CGX_CHECK(bits >= 2 && bits <= 8);
  CGX_CHECK_GT(bucket_size, 0u);
}

float NuqCompressor::level_value(unsigned index, unsigned bits) {
  // index 0 -> 0; index k in [1, 2^(bits-1)-1] -> 2^-(levels-1-k) where the
  // top index maps to 1.0.
  const unsigned levels = 1u << (bits - 1);  // including zero
  CGX_CHECK_LT(index, levels);
  if (index == 0) return 0.0f;
  return std::exp2(-static_cast<float>(levels - 1 - index));
}

std::size_t NuqCompressor::compressed_size(std::size_t n) const {
  if (n == 0) return 0;
  const std::size_t buckets = (n + bucket_size_ - 1) / bucket_size_;
  return 4 * buckets + util::packed_size_bytes(n, bits_);
}

std::size_t NuqCompressor::compress(std::span<const float> in,
                                    std::span<std::byte> out,
                                    util::Rng& rng) {
  const std::size_t n = in.size();
  if (n == 0) return 0;
  const std::size_t total = compressed_size(n);
  CGX_CHECK_LE(total, out.size());
  const std::size_t buckets = (n + bucket_size_ - 1) / bucket_size_;
  auto* norms = reinterpret_cast<float*>(out.data());
  util::BitWriter writer(out.subspan(4 * buckets, total - 4 * buckets),
                         bits_);
  const unsigned levels = 1u << (bits_ - 1);
  const std::uint32_t sign_bit = 1u << (bits_ - 1);

  for (std::size_t b = 0; b < buckets; ++b) {
    const std::size_t first = b * bucket_size_;
    const std::size_t len = std::min(bucket_size_, n - first);
    const std::span<const float> bucket = in.subspan(first, len);
    const auto norm = static_cast<float>(tensor::l2_norm(bucket));
    norms[b] = norm;
    if (norm == 0.0f || !std::isfinite(norm)) {
      for (std::size_t i = 0; i < len; ++i) writer.write(0);
      continue;
    }
    for (float v : bucket) {
      const float a = std::min(std::fabs(v) / norm, 1.0f);
      // Find the exponential interval [L_k, L_{k+1}] containing a.
      unsigned lo = 0;
      while (lo + 1 < levels && level_value(lo + 1, bits_) <= a) ++lo;
      unsigned index = lo;
      if (lo + 1 < levels) {
        const float low = level_value(lo, bits_);
        const float high = level_value(lo + 1, bits_);
        const float p = (a - low) / (high - low);  // unbiased interpolation
        if (rng.next_float() < p) index = lo + 1;
      }
      std::uint32_t symbol = index;
      if (std::signbit(v)) symbol |= sign_bit;
      writer.write(symbol);
    }
  }
  writer.finish();
  return total;
}

void NuqCompressor::decompress(std::span<const std::byte> in,
                               std::span<float> out) {
  const std::size_t n = out.size();
  if (n == 0) return;
  CGX_CHECK_EQ(in.size(), compressed_size(n));
  const std::size_t buckets = (n + bucket_size_ - 1) / bucket_size_;
  const auto* norms = reinterpret_cast<const float*>(in.data());
  util::BitReader reader(in.subspan(4 * buckets), bits_);
  const std::uint32_t sign_bit = 1u << (bits_ - 1);
  const std::uint32_t index_mask = sign_bit - 1;
  for (std::size_t b = 0; b < buckets; ++b) {
    const std::size_t first = b * bucket_size_;
    const std::size_t len = std::min(bucket_size_, n - first);
    const float norm = std::isfinite(norms[b]) ? norms[b] : 0.0f;
    for (std::size_t i = 0; i < len; ++i) {
      const auto symbol = static_cast<std::uint32_t>(reader.read());
      const float magnitude =
          level_value(symbol & index_mask, bits_) * norm;
      out[first + i] = (symbol & sign_bit) ? -magnitude : magnitude;
    }
  }
}

std::string NuqCompressor::name() const {
  return "nuq(b=" + std::to_string(bits_) +
         ",bucket=" + std::to_string(bucket_size_) + ")";
}

}  // namespace cgx::core
