#include "core/budget.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>

#include "core/topk.h"
#include "util/check.h"

namespace cgx::core {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Measured L2^2 reconstruction error of one candidate on a layer snapshot.
// Stateful wrappers are stripped for the measurement: error feedback with a
// zero residual compresses identically to the bare operator, and DGC's
// velocity store is not meaningful on a one-shot probe — the instantaneous
// top-k drop error is the right (conservative) stand-in for both.
double candidate_sq_error(std::span<const float> snapshot,
                          const LayerCompression& cfg, std::size_t rows,
                          util::Rng& rng) {
  if (snapshot.empty() || cfg.method == Method::None) return 0.0;
  LayerCompression probe = cfg;
  probe.error_feedback = false;
  probe.dgc = false;
  auto compressor = make_compressor(probe, rows);
  std::vector<std::byte> payload(
      compressor->compressed_size(snapshot.size()));
  std::vector<float> restored(snapshot.size());
  const std::size_t written = compressor->compress(snapshot, payload, rng);
  compressor->decompress(std::span<const std::byte>(payload).first(written),
                         restored);
  double err = 0.0;
  for (std::size_t i = 0; i < snapshot.size(); ++i) {
    const double d = static_cast<double>(restored[i]) - snapshot[i];
    err += d * d;
  }
  return err;
}

struct Candidate {
  LayerCompression cfg;
  double err_sq = 0.0;
  double wire = 0.0;
  std::size_t weight = 0;  // err_sq ceil-quantized into budget units
};

std::vector<double> parse_doubles(const std::string& list) {
  std::vector<double> out;
  std::size_t pos = 0;
  while (pos < list.size()) {
    std::size_t comma = list.find(',', pos);
    if (comma == std::string::npos) comma = list.size();
    const std::string item = list.substr(pos, comma - pos);
    if (!item.empty()) out.push_back(std::strtod(item.c_str(), nullptr));
    pos = comma + 1;
  }
  return out;
}

}  // namespace

// ----------------------------------------------------------------- menu

BudgetMenu BudgetMenu::parse(const std::string& spec) {
  BudgetMenu menu;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t semi = spec.find(';', pos);
    if (semi == std::string::npos) semi = spec.size();
    const std::string section = spec.substr(pos, semi - pos);
    pos = semi + 1;
    const std::size_t colon = section.find(':');
    if (colon == std::string::npos) continue;
    const std::string key = section.substr(0, colon);
    const std::string value = section.substr(colon + 1);
    if (key == "qsgd" || key == "nuq") {
      std::vector<unsigned> bits;
      for (double d : parse_doubles(value)) {
        if (d >= 1.0 && d <= 8.0) bits.push_back(static_cast<unsigned>(d));
      }
      (key == "qsgd" ? menu.qsgd_bits : menu.nuq_bits) = std::move(bits);
    } else if (key == "topk") {
      std::vector<double> ratios;
      for (double d : parse_doubles(value)) {
        if (d > 0.0 && d <= 1.0) ratios.push_back(d);
      }
      menu.topk_ratios = std::move(ratios);
    } else if (key == "dgc") {
      menu.dgc = value == "on" || value == "1" || value == "true";
    }
    // Unknown keys are ignored so the env override stays forward-compatible.
  }
  return menu;
}

BudgetMenu BudgetMenu::from_env() {
  if (const char* env = std::getenv("CGX_ADAPTIVE_MENU")) {
    return parse(env);
  }
  return BudgetMenu{};
}

// --------------------------------------------------------------- planner

BudgetPlanner::BudgetPlanner(PlannerOptions options)
    : options_(std::move(options)) {
  CGX_CHECK_GT(options_.alpha, 0.0);
  CGX_CHECK_GT(options_.reference_bits, 0u);
}

BudgetPlan BudgetPlanner::solve(const GradStatsCollector& stats,
                                const std::vector<bool>& compressible,
                                util::Rng& rng) const {
  const tensor::LayerLayout& layout = stats.layout();
  const std::size_t layer_count = layout.layer_count();
  CGX_CHECK_EQ(compressible.size(), layer_count);

  BudgetPlan plan;
  plan.choice.assign(layer_count, LayerCompression{});
  for (auto& c : plan.choice) c.method = Method::None;
  plan.bits.assign(layer_count, 0u);

  std::vector<std::size_t> idx;
  for (std::size_t l = 0; l < layer_count; ++l) {
    if (compressible[l] && layout.layer(l).numel > 0) idx.push_back(l);
  }
  if (idx.empty()) return plan;

  const BudgetMenu& menu = options_.menu;

  // Reference error E4^2 and the uniform reference plan (the guaranteed
  // fallback). Split ids keep every measurement's stream independent of
  // evaluation order: candidate c of layer l always sees the same bits.
  LayerCompression ref_cfg;
  ref_cfg.method = Method::Qsgd;
  ref_cfg.bits = options_.reference_bits;
  ref_cfg.bucket_size = options_.bucket_size;
  std::vector<double> ref_sq(layer_count, 0.0);
  for (std::size_t l : idx) {
    const auto& info = layout.layer(l);
    const std::size_t rows = info.shape.empty() ? 0 : info.shape.front();
    util::Rng child = rng.split(l * 1024 + 1000);
    ref_sq[l] = candidate_sq_error(stats.accumulated(l), ref_cfg, rows, child);
    plan.reference_sq += ref_sq[l];
    plan.reference_wire_bytes +=
        static_cast<double>(wire_bytes(ref_cfg, info.numel, rows));
  }
  plan.budget_sq = options_.alpha * options_.alpha * plan.reference_sq;

  auto fallback_reference = [&] {
    plan.total_sq_error = 0.0;
    plan.wire_bytes = 0.0;
    for (std::size_t l : idx) {
      plan.choice[l] = ref_cfg;
      plan.bits[l] = options_.reference_bits;
      plan.total_sq_error += ref_sq[l];
      const auto& info = layout.layer(l);
      const std::size_t rows = info.shape.empty() ? 0 : info.shape.front();
      plan.wire_bytes +=
          static_cast<double>(wire_bytes(ref_cfg, info.numel, rows));
    }
    return plan;
  };
  if (!(plan.budget_sq > 0.0)) return fallback_reference();

  // Weight resolution: >= 4 bins per layer keeps the uniform reference plan
  // representable after ceil rounding (sum of per-layer +1 slack <= L <=
  // bins/4, on top of reference weight <= bins/alpha^2).
  const std::size_t bins = std::max(options_.error_bins, 4 * idx.size());
  const double unit = plan.budget_sq / static_cast<double>(bins);

  // Candidate menus per compressible layer.
  std::vector<std::vector<Candidate>> menus(idx.size());
  for (std::size_t i = 0; i < idx.size(); ++i) {
    const std::size_t l = idx[i];
    const auto& info = layout.layer(l);
    const std::size_t rows = info.shape.empty() ? 0 : info.shape.front();
    const std::span<const float> snapshot = stats.accumulated(l);
    std::size_t c = 0;
    auto consider = [&](const LayerCompression& cfg) {
      util::Rng child = rng.split(l * 1024 + c);
      ++c;
      Candidate cand;
      cand.cfg = cfg;
      cand.err_sq = candidate_sq_error(snapshot, cfg, rows, child);
      cand.wire = static_cast<double>(wire_bytes(cfg, info.numel, rows));
      const double charged =
          cand.err_sq * (cfg.method == Method::TopK
                             ? options_.topk_error_inflation
                             : 1.0);
      cand.weight =
          charged <= 0.0
              ? 0
              : static_cast<std::size_t>(std::ceil(charged / unit));
      if (cand.weight <= bins) menus[i].push_back(cand);
    };
    for (unsigned bits : menu.qsgd_bits) {
      LayerCompression cfg;
      cfg.method = Method::Qsgd;
      cfg.bits = bits;
      cfg.bucket_size = options_.bucket_size;
      consider(cfg);
    }
    for (unsigned bits : menu.nuq_bits) {
      LayerCompression cfg;
      cfg.method = Method::Nuq;
      cfg.bits = bits;
      cfg.bucket_size = options_.bucket_size;
      consider(cfg);
    }
    for (double ratio : menu.topk_ratios) {
      LayerCompression cfg;
      cfg.method = Method::TopK;
      cfg.topk_ratio = ratio;
      cfg.bucket_size = options_.bucket_size;
      if (menu.dgc) {
        cfg.dgc = true;
        cfg.dgc_momentum = menu.dgc_momentum;
        cfg.dgc_clip = menu.dgc_clip;
      } else {
        cfg.error_feedback = true;  // plain biased top-k needs EF
      }
      consider(cfg);
    }
    if (menus[i].empty()) {
      // Every menu entry blows the whole budget on this layer alone; pin it
      // to the reference so the DP stays feasible.
      Candidate cand;
      cand.cfg = ref_cfg;
      cand.err_sq = ref_sq[l];
      cand.wire = static_cast<double>(wire_bytes(ref_cfg, info.numel, rows));
      cand.weight = std::min(
          bins, static_cast<std::size_t>(std::ceil(ref_sq[l] / unit)));
      menus[i].push_back(cand);
    }
  }

  // Multiple-choice knapsack: dp[w] = min wire bytes over the layers so far
  // with quantized error weight exactly w; pick[i][w] = the candidate that
  // produced dp state w at layer i (backtracking pointer).
  std::vector<double> dp(bins + 1, kInf);
  std::vector<double> next(bins + 1, kInf);
  std::vector<std::vector<int>> pick(idx.size(),
                                     std::vector<int>(bins + 1, -1));
  dp[0] = 0.0;
  for (std::size_t i = 0; i < idx.size(); ++i) {
    std::fill(next.begin(), next.end(), kInf);
    for (std::size_t w = 0; w <= bins; ++w) {
      if (dp[w] == kInf) continue;
      for (std::size_t c = 0; c < menus[i].size(); ++c) {
        const Candidate& cand = menus[i][c];
        const std::size_t nw = w + cand.weight;
        if (nw > bins) continue;
        const double bytes = dp[w] + cand.wire;
        if (bytes < next[nw]) {
          next[nw] = bytes;
          pick[i][nw] = static_cast<int>(c);
        }
      }
    }
    dp.swap(next);
  }

  std::size_t best_w = 0;
  double best_bytes = kInf;
  for (std::size_t w = 0; w <= bins; ++w) {
    if (dp[w] < best_bytes) {
      best_bytes = dp[w];
      best_w = w;
    }
  }
  if (best_bytes == kInf) return fallback_reference();

  // Backtrack the chosen candidate per layer.
  std::size_t w = best_w;
  for (std::size_t i = idx.size(); i-- > 0;) {
    const int c = pick[i][w];
    CGX_CHECK_GE(c, 0);
    const Candidate& cand = menus[i][static_cast<std::size_t>(c)];
    const std::size_t l = idx[i];
    plan.choice[l] = cand.cfg;
    // Legacy bits mirror: quantized layers report their width; sparsified
    // layers report the reference width (the closest bits-only stand-in).
    plan.bits[l] = cand.cfg.method == Method::TopK ? options_.reference_bits
                                                   : cand.cfg.bits;
    plan.total_sq_error += cand.err_sq;
    plan.wire_bytes += cand.wire;
    w -= cand.weight;
  }
  CGX_CHECK_EQ(w, 0u);
  return plan;
}

// -------------------------------------------------------------- assigner

Assignment DpAssigner::assign(const GradStatsCollector& stats,
                              const std::vector<bool>& compressible,
                              const AdaptiveOptions& options,
                              util::Rng& rng) {
  PlannerOptions popts;
  popts.menu = menu_;
  popts.alpha = options.alpha;
  popts.reference_bits = options.reference_bits;
  popts.bucket_size = options.bucket_size;
  const BudgetPlan plan = BudgetPlanner(popts).solve(stats, compressible, rng);

  Assignment a;
  a.bits = plan.bits;
  a.choice = plan.choice;
  a.measured_error = std::sqrt(plan.total_sq_error);
  a.reference_error = std::sqrt(plan.reference_sq);
  a.relative_size = plan.reference_wire_bytes > 0.0
                        ? plan.wire_bytes / plan.reference_wire_bytes
                        : 1.0;
  a.wire_bytes = plan.wire_bytes;
  return a;
}

// ------------------------------------------------------------ controller

PolicyController::PolicyController(const tensor::LayerLayout& layout,
                                   Assigner& assigner, std::size_t period,
                                   std::uint64_t seed)
    : stats_(layout),
      assigner_(assigner),
      period_(period == 0 ? 1 : period),
      seed_(seed) {}

void PolicyController::observe_step(std::span<const float> fused) {
  stats_.accumulate(fused);
}

bool PolicyController::due(std::size_t step) const {
  return step > 0 && step % period_ == 0 && stats_.steps() > 0;
}

Assignment PolicyController::replan(std::size_t step,
                                    const std::vector<bool>& compressible,
                                    const AdaptiveOptions& options,
                                    CompressionConfig& config,
                                    double ef_residual_norm) {
  if (auto* dp = dynamic_cast<DpAssigner*>(&assigner_)) {
    // Residual runaway guard: a residual norm that more than doubled since
    // the previous replan means sparsification is accumulating error faster
    // than it drains — retire the most aggressive density before re-solving.
    if (last_residual_norm_ > 0.0 &&
        ef_residual_norm > 2.0 * last_residual_norm_ &&
        dp->menu().topk_ratios.size() > 1) {
      auto& ratios = dp->menu().topk_ratios;
      ratios.erase(std::min_element(ratios.begin(), ratios.end()));
    }
  }
  last_residual_norm_ = ef_residual_norm;

  util::Rng rng(seed_ + 777 + step);
  Assignment assignment =
      assigner_.assign(stats_, compressible, options, rng);
  apply_assignment(assignment, stats_.layout(), config, options.bucket_size);
  stats_.reset();
  return assignment;
}

}  // namespace cgx::core
