#include "core/compression_config.h"

#include "core/error_feedback.h"
#include "core/nuq.h"
#include "core/onebit.h"
#include "core/powersgd.h"
#include "core/qsgd.h"
#include "core/terngrad.h"
#include "core/topk.h"
#include "util/check.h"

namespace cgx::core {

const char* method_name(Method m) {
  switch (m) {
    case Method::None:
      return "none";
    case Method::Fp16:
      return "fp16";
    case Method::Qsgd:
      return "qsgd";
    case Method::Nuq:
      return "nuq";
    case Method::TopK:
      return "topk";
    case Method::PowerSgd:
      return "powersgd";
    case Method::TernGrad:
      return "terngrad";
    case Method::OneBit:
      return "onebit";
    case Method::Fake:
      return "fake";
  }
  return "?";
}

CompressionConfig::CompressionConfig() = default;

void CompressionConfig::set_default(LayerCompression cfg) { default_ = cfg; }

void CompressionConfig::exclude_layer(const std::string& pattern) {
  CGX_CHECK(!pattern.empty());
  excludes_.push_back(pattern);
}

void CompressionConfig::set_layer(const std::string& pattern,
                                  LayerCompression cfg) {
  CGX_CHECK(!pattern.empty());
  rules_.push_back(Rule{pattern, cfg, /*exact=*/false});
}

void CompressionConfig::set_layer_exact(const std::string& name,
                                        LayerCompression cfg) {
  CGX_CHECK(!name.empty());
  rules_.push_back(Rule{name, cfg, /*exact=*/true});
}

void CompressionConfig::set_layer_quantization(const std::string& exact_name,
                                               unsigned bits,
                                               std::size_t bucket_size) {
  LayerCompression cfg = default_;
  cfg.method = Method::Qsgd;
  cfg.bits = bits;
  cfg.bucket_size = bucket_size;
  set_layer(exact_name, cfg);
}

LayerCompression CompressionConfig::for_layer(const std::string& name,
                                              std::size_t numel) const {
  for (const std::string& pattern : excludes_) {
    if (name.find(pattern) != std::string::npos) {
      LayerCompression none;
      none.method = Method::None;
      return none;
    }
  }
  LayerCompression resolved = default_;
  for (const Rule& rule : rules_) {  // later rules win
    const bool matches = rule.exact ? name == rule.pattern
                                    : name.find(rule.pattern) !=
                                          std::string::npos;
    if (matches) resolved = rule.cfg;
  }
  if (resolved.method != Method::None && numel < min_compress_numel_) {
    resolved.method = Method::None;
  }
  return resolved;
}

CompressionConfig CompressionConfig::cgx_default() {
  CompressionConfig config;
  LayerCompression qsgd;
  qsgd.method = Method::Qsgd;
  qsgd.bits = 4;
  qsgd.bucket_size = 128;
  config.set_default(qsgd);
  // §3: "layers like batch/layer normalization and bias layers are sensitive
  // to gradient compression, while being small" -> full precision.
  config.exclude_layer("bias");
  config.exclude_layer("bn");
  config.exclude_layer("ln");
  config.exclude_layer("norm");
  return config;
}

CompressionConfig CompressionConfig::uncompressed() {
  CompressionConfig config;
  LayerCompression none;
  none.method = Method::None;
  config.set_default(none);
  return config;
}

std::unique_ptr<Compressor> make_compressor(const LayerCompression& cfg,
                                            std::size_t layer_rows) {
  std::unique_ptr<Compressor> compressor;
  switch (cfg.method) {
    case Method::None:
      compressor = std::make_unique<NoneCompressor>();
      break;
    case Method::Fp16:
      compressor = std::make_unique<Fp16Compressor>();
      break;
    case Method::Qsgd:
      compressor =
          std::make_unique<QsgdCompressor>(cfg.bits, cfg.bucket_size);
      break;
    case Method::Nuq:
      compressor = std::make_unique<NuqCompressor>(cfg.bits, cfg.bucket_size);
      break;
    case Method::TopK:
      if (cfg.dgc) {
        compressor = std::make_unique<DgcTopK>(cfg.topk_ratio,
                                               cfg.dgc_momentum, cfg.dgc_clip);
      } else {
        compressor = std::make_unique<TopKCompressor>(cfg.topk_ratio);
      }
      break;
    case Method::PowerSgd:
      compressor = std::make_unique<PowerSgdCompressor>(layer_rows, cfg.rank,
                                                        cfg.powersgd_fp16);
      break;
    case Method::TernGrad:
      compressor = std::make_unique<TernGradCompressor>(cfg.bucket_size);
      break;
    case Method::OneBit:
      compressor = std::make_unique<OneBitCompressor>(cfg.bucket_size);
      break;
    case Method::Fake:
      compressor = std::make_unique<FakeCompressor>(cfg.fake_ratio);
      break;
  }
  // DGC's velocity store IS the residual; wrapping it in ErrorFeedback would
  // accumulate the error twice.
  if (cfg.error_feedback && !(cfg.method == Method::TopK && cfg.dgc)) {
    compressor = std::make_unique<ErrorFeedback>(std::move(compressor));
  }
  return compressor;
}

std::size_t wire_bytes(const LayerCompression& cfg, std::size_t numel,
                       std::size_t layer_rows) {
  return make_compressor(cfg, layer_rows)->compressed_size(numel);
}

}  // namespace cgx::core
