#include "core/frontend.h"

#include "util/check.h"

namespace cgx::core {

DistributedContext::DistributedContext(int world_size, comm::Backend backend)
    : world_size_(world_size),
      backend_(backend),
      config_(CompressionConfig::cgx_default()) {
  CGX_CHECK_GT(world_size, 0);
}

void DistributedContext::register_model(
    const std::vector<std::pair<std::string, tensor::Shape>>& layers) {
  CGX_CHECK(!model_registered()) << "model already registered";
  for (const auto& [name, shape] : layers) {
    layout_.add_layer(name, shape);
  }
}

void DistributedContext::register_model(
    const std::vector<std::pair<std::string, std::size_t>>& layers) {
  CGX_CHECK(!model_registered()) << "model already registered";
  for (const auto& [name, numel] : layers) {
    layout_.add_layer(name, numel);
  }
}

void DistributedContext::exclude_layer(const std::string& pattern) {
  config_.exclude_layer(pattern);
}

void DistributedContext::set_quantization_bits(unsigned bits) {
  LayerCompression cfg = config_.default_compression();
  cfg.method = Method::Qsgd;
  cfg.bits = bits;
  config_.set_default(cfg);
}

void DistributedContext::set_quantization_bucket_size(std::size_t bucket) {
  LayerCompression cfg = config_.default_compression();
  cfg.method = Method::Qsgd;
  cfg.bucket_size = bucket;
  config_.set_default(cfg);
}

void DistributedContext::set_layer_bits(const std::string& layer,
                                        unsigned bits, std::size_t bucket) {
  LayerCompression cfg = config_.default_compression();
  cfg.method = Method::Qsgd;
  cfg.bits = bits;
  cfg.bucket_size = bucket;
  config_.set_layer_exact(layer, cfg);
}

void DistributedContext::set_layer_method(const std::string& pattern,
                                          LayerCompression cfg) {
  config_.set_layer(pattern, cfg);
}

void DistributedContext::set_reduction_scheme(comm::ReductionScheme scheme) {
  options_.scheme = scheme;
}

std::unique_ptr<GradientEngine> DistributedContext::build_engine() const {
  CGX_CHECK(model_registered())
      << "register_model() first (or use build_blob_engine)";
  return std::make_unique<CgxEngine>(layout_, config_, world_size_,
                                     options_);
}

std::unique_ptr<GradientEngine> DistributedContext::build_blob_engine(
    std::size_t fallback_numel) const {
  CGX_CHECK_GT(fallback_numel, 0u);
  // No layer information: uniform blob compression, exactly the QNCCL
  // situation the paper contrasts against (§3).
  if (blob_layout_.layer_count() == 0) {
    blob_layout_.add_layer("blob", fallback_numel);
  }
  const LayerCompression& d = config_.default_compression();
  return std::make_unique<QncclEngine>(blob_layout_, d.bits, d.bucket_size,
                                       world_size_);
}

std::unique_ptr<comm::Transport> DistributedContext::make_transport() const {
  return comm::make_transport(backend_, world_size_);
}

}  // namespace cgx::core
