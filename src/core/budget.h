// Global compression-budget planner (ROADMAP item 2, after L-GreCo —
// Markov et al.): pick a per-layer codec + parameter from a candidate MENU
// spanning two families (QSGD/NUQ quantization at several bit-widths,
// DGC/plain top-k sparsification at several densities) so that total wire
// bytes are minimized subject to the paper's global error budget
//
//     sum_l err_l^2  <=  (alpha * E4)^2
//
// where E4 is the measured error of the uniform reference_bits assignment
// on the same gradient snapshot (core/adaptive.h's constraint, unchanged).
//
// The solver is an exact multiple-choice knapsack over DISCRETIZED error
// weights: each layer x candidate pair's measured squared error is
// ceil-quantized into `error_bins` units of budget, then a DP over layers
// finds the byte-minimal selection whose total weight fits the budget.
// Ceil-quantization only over-counts error, so any DP-feasible plan is
// feasible in real error too; the uniform reference plan stays
// representable because bins scale with the layer count (>= 4L bins keeps
// the per-layer +1 rounding slack under the alpha^2 headroom for
// alpha >= 2/sqrt(3)).
//
// Everything here runs at replan boundaries (every controller period), not
// per step, so the per-candidate compress/decompress measurements and the
// DP table are deliberately allowed to allocate.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/adaptive.h"
#include "core/compression_config.h"
#include "tensor/layer_layout.h"
#include "util/rng.h"

namespace cgx::core {

// The candidate menu the planner chooses from, per layer. An empty family
// vector disables that family.
struct BudgetMenu {
  std::vector<unsigned> qsgd_bits = {2, 3, 4, 6, 8};
  std::vector<unsigned> nuq_bits = {2, 3, 4, 6, 8};
  std::vector<double> topk_ratios = {0.001, 0.01, 0.1};
  // Sparsified layers use DGC (momentum correction + local clipping) rather
  // than plain top-k + error feedback. Off = plain top-k with EF.
  bool dgc = true;
  float dgc_momentum = 0.9f;
  double dgc_clip = 2.5;

  // Parses "qsgd:2,3,4,6,8;nuq:4,8;topk:0.001,0.01,0.1;dgc:on".
  // Families absent from the string keep their defaults; "qsgd:" (empty
  // list) disables a family; unknown keys are ignored.
  static BudgetMenu parse(const std::string& spec);
  // parse(CGX_ADAPTIVE_MENU) if the env var is set, defaults otherwise.
  static BudgetMenu from_env();

  std::size_t candidate_count() const {
    return qsgd_bits.size() + nuq_bits.size() + topk_ratios.size();
  }
};

struct PlannerOptions {
  BudgetMenu menu;
  double alpha = 2.0;           // error budget multiplier over E4
  unsigned reference_bits = 4;  // the "known good" uniform assignment
  std::size_t error_bins = 512; // DP weight resolution (floor; see solve())
  std::size_t bucket_size = 128;
  // Sparsifiers are charged more budget than their one-shot drop error: a
  // coordinate dropped by top-k at density d stays in the error-feedback /
  // DGC residual for ~1/d steps, so the one-shot measurement understates
  // the training-dynamics cost. Only the DP weight is inflated; reported
  // plan errors stay the honest measurement.
  double topk_error_inflation = 8.0;
};

// One solved plan. `choice` is per layout layer (Method::None for layers
// the planner was not allowed to touch).
struct BudgetPlan {
  std::vector<LayerCompression> choice;
  std::vector<unsigned> bits;   // quantization-only mirror (legacy surface)
  double total_sq_error = 0.0;  // measured, of the chosen plan
  double budget_sq = 0.0;       // (alpha * E4)^2
  double reference_sq = 0.0;    // E4^2
  double wire_bytes = 0.0;      // estimated egress under `choice`
  double reference_wire_bytes = 0.0;  // same estimate, uniform reference
};

class BudgetPlanner {
 public:
  explicit BudgetPlanner(PlannerOptions options = {});

  // Deterministic for a given (stats, compressible, rng seed): every
  // (layer, candidate) error measurement uses its own split of `rng`, so
  // the result is independent of evaluation order.
  BudgetPlan solve(const GradStatsCollector& stats,
                   const std::vector<bool>& compressible,
                   util::Rng& rng) const;

  const PlannerOptions& options() const { return options_; }

 private:
  PlannerOptions options_;
};

// Assigner facade over BudgetPlanner, pluggable wherever the k-means /
// linear / Bayes assigners go (fig04/fig05 harness, trainer, benches).
// AdaptiveOptions supplies alpha / reference_bits / bucket_size; the menu
// comes from this assigner.
class DpAssigner final : public Assigner {
 public:
  explicit DpAssigner(BudgetMenu menu = BudgetMenu::from_env())
      : menu_(std::move(menu)) {}

  Assignment assign(const GradStatsCollector& stats,
                    const std::vector<bool>& compressible,
                    const AdaptiveOptions& options, util::Rng& rng) override;
  std::string name() const override { return "DP"; }

  BudgetMenu& menu() { return menu_; }
  const BudgetMenu& menu() const { return menu_; }

 private:
  BudgetMenu menu_;
};

// Live policy controller: accumulates per-layer gradient statistics every
// step, re-solves the assignment every `period` steps through whichever
// Assigner it was given, and applies the result to the engine config (the
// caller still runs the engine's differential rebuild() afterwards, which
// keeps unchanged layers' compressors and arenas warm).
//
// Telemetry guard-rail: the controller watches the engine's unsent-residual
// norm (StepReport-side `CgxEngine::ef_residual_norm`). If the residual
// norm more than doubles between consecutive replans — sparsification
// starving some layer faster than error feedback drains it — and the
// assigner is a DpAssigner, the most aggressive top-k density is dropped
// from its menu before re-solving.
class PolicyController {
 public:
  PolicyController(const tensor::LayerLayout& layout, Assigner& assigner,
                   std::size_t period, std::uint64_t seed);

  // Once per step, with this rank's fused gradient (pre-update).
  void observe_step(std::span<const float> fused);

  // True when `step` is a replan boundary with at least one observed step.
  bool due(std::size_t step) const;

  // Re-solve and apply to `config`. Deterministic per (seed, step): the
  // assigner rng is seeded `seed + 777 + step`, matching the legacy trainer
  // wiring bit-for-bit for the k-means/linear/Bayes assigners.
  Assignment replan(std::size_t step, const std::vector<bool>& compressible,
                    const AdaptiveOptions& options, CompressionConfig& config,
                    double ef_residual_norm);

  GradStatsCollector& stats() { return stats_; }
  const Assigner& assigner() const { return assigner_; }
  std::size_t period() const { return period_; }

 private:
  GradStatsCollector stats_;
  Assigner& assigner_;
  std::size_t period_;
  std::uint64_t seed_;
  double last_residual_norm_ = 0.0;
};

}  // namespace cgx::core
