#include "core/engine.h"

#include <algorithm>
#include <cmath>

#include "comm/fault.h"
#include "comm/membership.h"
#include "comm/tagspace.h"
#include "comm/topology.h"
#include "core/error_feedback.h"
#include "core/hierarchical.h"
#include "core/qsgd.h"
#include "core/topk.h"
#include "tensor/tensor_ops.h"
#include "util/arena.h"
#include "util/check.h"

namespace cgx::core {
namespace {

constexpr int kGraceTag = 310;

// Engine-owned workspace slots. The compressed collectives own byte slots
// 0..2+world and float/size slot 0 (see compressed_allreduce.cpp); engines
// use high slot numbers so a collective call never invalidates a span the
// engine still holds.
constexpr std::size_t kSlotPacket = 16;       // fused FP32 packet (floats)
constexpr std::size_t kSlotCommScratch = 17;  // comm::allreduce scratch
constexpr std::size_t kSlotRoundSnapshot = 18;  // pre-round rollback copy
constexpr std::size_t kSlotGraceMine = 16;       // bytes: own payload
constexpr std::size_t kSlotGraceIncoming = 17;   // bytes: peer payload
constexpr std::size_t kSlotGraceDecompressed = 16;  // floats

// Relative cost of running one byte of gradient through a method's
// compression + decompression kernels, against the device's effective
// quantization rate. Quantizers run "at line rate" (§2.4, Technical Issue
// 1); selection and decomposition methods pay more compute.
double kernel_multiplier(Method m) {
  switch (m) {
    case Method::None:
      return 0.0;
    case Method::Fake:
      return 0.25;
    case Method::Fp16:
      return 0.5;
    case Method::Qsgd:
    case Method::Nuq:
    case Method::TernGrad:
    case Method::OneBit:
      return 1.0;
    case Method::TopK:
      return 2.0;
    case Method::PowerSgd:
      return 6.0;
  }
  return 1.0;
}

std::vector<int> participating_devices(const simgpu::CostModel& cost,
                                       int world_size) {
  CGX_CHECK_GE(cost.topology().num_devices(), world_size);
  std::vector<int> devices(static_cast<std::size_t>(world_size));
  for (int i = 0; i < world_size; ++i) devices[static_cast<std::size_t>(i)] = i;
  return devices;
}

double compress_kernel_seconds(Method method, double raw_bytes,
                               double compress_gbps) {
  if (compress_gbps <= 0.0) return 0.0;
  // One compression plus one decompression pass per rank per step. Half of
  // it rides the communication stream (overlappable); the other half is
  // charged as device contention via CommPlan::kernel_contention_s.
  return kernel_multiplier(method) * 2.0 * raw_bytes /
         (compress_gbps * 1e9);
}

double scheme_seconds(const simgpu::CostModel& cost,
                      std::span<const int> devices,
                      comm::ReductionScheme scheme, double chunk_wire_bytes,
                      double full_wire_bytes) {
  const auto n = static_cast<double>(devices.size());
  if (n <= 1.0) return 0.0;
  switch (scheme) {
    case comm::ReductionScheme::ScatterReduceAllgather:
      return cost.sra_seconds(devices, chunk_wire_bytes, chunk_wire_bytes);
    case comm::ReductionScheme::Ring:
      return 2.0 * (n - 1.0) * cost.ring_step_seconds(devices,
                                                      chunk_wire_bytes);
    case comm::ReductionScheme::Tree:
      return cost.allreduce_seconds(devices, full_wire_bytes, scheme);
  }
  return 0.0;
}

double scheme_egress_bytes(comm::ReductionScheme scheme, std::size_t n,
                           double chunk_wire_bytes, double full_wire_bytes) {
  if (n <= 1) return 0.0;
  switch (scheme) {
    case comm::ReductionScheme::ScatterReduceAllgather:
    case comm::ReductionScheme::Ring:
      return 2.0 * static_cast<double>(n - 1) * chunk_wire_bytes;
    case comm::ReductionScheme::Tree:
      return 2.0 * full_wire_bytes;  // up once, relay down once (worst path)
  }
  return 0.0;
}

// Cost of the two-level schedule: intra-node member->leader reduce (full
// precision), compressed SRA among leaders, intra-node broadcast back.
// Field-wise policy equality for the differential rebuild: a layer whose
// resolved config is unchanged keeps its warmed compressors (and their
// error-feedback residuals / PowerSGD warm starts) across rebuild().
bool same_policy(const LayerCompression& a, const LayerCompression& b) {
  return a.method == b.method && a.bits == b.bits &&
         a.bucket_size == b.bucket_size && a.topk_ratio == b.topk_ratio &&
         a.rank == b.rank && a.fake_ratio == b.fake_ratio &&
         a.error_feedback == b.error_feedback &&
         a.powersgd_fp16 == b.powersgd_fp16 && a.dgc == b.dgc &&
         a.dgc_momentum == b.dgc_momentum && a.dgc_clip == b.dgc_clip;
}

double hierarchical_layer_seconds(const simgpu::CostModel& cost,
                                  const std::vector<int>& node_of,
                                  double raw_bytes,
                                  double leader_chunk_wire_bytes) {
  std::vector<int> leaders;
  std::vector<int> seen;
  for (int r = 0; r < static_cast<int>(node_of.size()); ++r) {
    const int node = node_of[static_cast<std::size_t>(r)];
    if (std::find(seen.begin(), seen.end(), node) == seen.end()) {
      seen.push_back(node);
      leaders.push_back(r);
    }
  }
  std::vector<simgpu::Flow> up, down;
  for (int r = 0; r < static_cast<int>(node_of.size()); ++r) {
    const int leader = leader_of(node_of, r);
    if (leader == r) continue;
    up.push_back(simgpu::Flow{r, leader, raw_bytes});
    down.push_back(simgpu::Flow{leader, r, raw_bytes});
  }
  double total = cost.round_seconds(up) + cost.round_seconds(down);
  if (leaders.size() > 1) {
    total += cost.sra_seconds(leaders, leader_chunk_wire_bytes,
                              leader_chunk_wire_bytes);
  }
  return total;
}

}  // namespace

// ----------------------------------------------------------------- CGX

CgxEngine::CgxEngine(const tensor::LayerLayout& layout,
                     CompressionConfig config, int world_size,
                     EngineOptions options)
    : layout_(layout),
      config_(std::move(config)),
      world_size_(world_size),
      options_(options) {
  CGX_CHECK_GT(world_size, 0);
  active_world_ = world_size;
  rebuild();
}

void CgxEngine::rebuild() {
  // Differential rebuild: ranks_ (and with it every RankState's grow-only
  // CollectiveWorkspace) survives, and only layers whose resolved policy
  // changed get fresh compressors. An adaptive policy swap used to clear
  // ranks_ wholesale, throwing warmed arenas away and re-triggering
  // steady-state allocations on the next step.
  std::vector<LayerCompression> previous = std::move(resolved_);
  resolved_.clear();
  resolved_.reserve(layout_.layer_count());
  filtered_layers_.clear();
  packet_numel_ = 0;
  for (const auto& info : layout_.layers()) {
    resolved_.push_back(config_.for_layer(info.name, info.numel));
    if (resolved_.back().method == Method::None &&
        options_.fuse_filtered_layers) {
      filtered_layers_.push_back(resolved_.size() - 1);
      packet_numel_ += info.numel;
    }
  }
  if (ranks_.empty()) {
    ranks_.resize(static_cast<std::size_t>(world_size_));
  }
  hier_.node_of = options_.node_of;
  hier_.compress_intra = options_.compress_intra;
  for (std::size_t r = 0; r < ranks_.size(); ++r) {
    ranks_[r].workspace.set_arena(&util::rank_arena(static_cast<int>(r)));
  }
  for (auto& rank : ranks_) {
    rank.per_layer.resize(layout_.layer_count());
    rank.chunk_ptrs.resize(layout_.layer_count());
    for (std::size_t l = 0; l < layout_.layer_count(); ++l) {
      const LayerCompression& cfg = resolved_[l];
      auto& chunks = rank.per_layer[l];
      auto& ptrs = rank.chunk_ptrs[l];
      if (l < previous.size() && same_policy(previous[l], cfg) &&
          (cfg.method == Method::None
               ? chunks.empty()
               : chunks.size() == static_cast<std::size_t>(world_size_))) {
        continue;  // unchanged layer keeps its warmed compressors
      }
      chunks.clear();
      ptrs.clear();
      if (cfg.method == Method::None) continue;
      const std::size_t rows = layout_.layer(l).shape.empty()
                                   ? 0
                                   : layout_.layer(l).shape.front();
      chunks.reserve(static_cast<std::size_t>(world_size_));
      ptrs.reserve(static_cast<std::size_t>(world_size_));
      for (int c = 0; c < world_size_; ++c) {
        chunks.push_back(make_compressor(cfg, rows));
        if (options_.compression_pool != nullptr) {
          chunks.back()->enable_threading(
              options_.compression_pool,
              options_.compression_threading_min_numel);
        }
        ptrs.push_back(chunks.back().get());
      }
    }
  }
  wire_bytes_cached_ = wire_bytes_per_rank(options_.scheme);
}

void CgxEngine::finish_report(RankState& state) {
  StepReport& report = state.report;
  report.epoch = applied_epoch_;
  report.world = active_world_;
  // The movement baseline for a rank's first step is the LAUNCH world, so a
  // shrink during step 0 still reports its departure.
  const int last = state.last_world == 0 ? world_size_ : state.last_world;
  report.departed = std::max(0, last - active_world_);
  report.joined = std::max(0, active_world_ - last);
  report.wire_bytes = wire_bytes_cached_;
  state.last_world = active_world_;
}

void CgxEngine::allreduce(comm::Comm& comm, std::span<float> fused,
                          util::Rng& rng) {
  CGX_CHECK_EQ(comm.size(), active_world_);
  CGX_CHECK_EQ(fused.size(), layout_.total_numel());
  // RankState is keyed by GLOBAL rank: a survivor keeps its compressors and
  // workspace across re-shards even as its dense rank shifts.
  RankState& state = ranks_[static_cast<std::size_t>(comm.global_rank())];
  // Grow-only engine state touched inside the collective (error-feedback
  // residuals, compressor scratch) carves from this rank's arena. The alloc
  // tests prove the steady state does not grow, so arena waste is bounded
  // by warm-up.
  util::ScopedArena bind(util::rank_arena(comm.global_rank()));
  const std::uint64_t round = state.rounds++;
  const bool elastic = comm.elastic();
  // Elastic worlds keep retrying through re-shards: every crash consumes
  // one retry, and up to world-1 ranks can die, so the budget scales with
  // the world rather than relying on the caller to size it.
  const int retry_budget =
      elastic ? std::max(options_.max_round_retries, 2 * world_size_)
              : options_.max_round_retries;

  StepReport& report = state.report;
  report.ok = true;
  report.attempts = 0;
  report.retries = 0;
  report.incidents.clear();

  if (retry_budget <= 0) {
    // Seed behaviour: one attempt, failures propagate. No snapshot copy, no
    // extra branches on the hot path (the handler costs nothing until a
    // structured failure actually unwinds through it).
    ++report.attempts;
    try {
      allreduce_attempt(comm, fused, rng, state);
    } catch (const comm::CommError& e) {
      report.ok = false;
      report.incidents.push_back(
          StepReport::Incident{e.src, e.dst, e.tag, e.what()});
      finish_report(state);
      throw;
    }
    finish_report(state);
    return;
  }

  // A failed attempt leaves `fused` partially reduced (collectives work in
  // place), so each attempt starts from a workspace-held snapshot.
  const std::span<float> snapshot =
      state.workspace.floats(kSlotRoundSnapshot, fused.size());
  tensor::copy(std::span<const float>(fused), snapshot);
  for (int attempt = 0;; ++attempt) {
    ++report.attempts;
    try {
      if (options_.injector != nullptr &&
          options_.injector->round_fails(round, attempt)) {
        throw comm::TimeoutError(-1, comm.rank(), -1,
                                 std::chrono::milliseconds{0},
                                 "synthetic round failure (fault harness)");
      }
      allreduce_attempt(comm, fused, rng, state);
      if (elastic) {
        // Commit fence: a step only counts when every CURRENT survivor
        // finished its attempt. A peer that died after this rank's last
        // receive would otherwise split the world into ranks that committed
        // and ranks that retried; the fence turns that into a collective
        // decision (everyone passes or everyone re-shards and retries).
        const comm::CommPolicy& pol = comm.transport().policy();
        const std::chrono::milliseconds fence =
            pol.bounded() ? pol.timeout : std::chrono::milliseconds{1000};
        if (!comm.try_barrier(fence)) {
          throw comm::TimeoutError(-1, comm.global_rank(), -1, fence,
                                   "step commit fence");
        }
      }
      finish_report(state);
      return;
    } catch (const comm::CommError& e) {
      report.incidents.push_back(
          StepReport::Incident{e.src, e.dst, e.tag, e.what()});
      if (attempt >= retry_budget) {
        report.ok = false;
        finish_report(state);
        throw;
      }
      ++report.retries;
      // Every rank must agree to retry and quiesce before buffers are
      // reused; if agreement fails the world is broken for good and the
      // TimeoutError from reshard_world propagates. In elastic mode this is
      // where a crashed peer is voted out and the plans shrink.
      reshard_world(comm);
      tensor::copy(std::span<const float>(snapshot), fused);
    }
  }
}

std::chrono::milliseconds CgxEngine::derived_recovery_timeout(
    const comm::CommPolicy& pol) const {
  if (options_.recovery_timeout.count() > 0) return options_.recovery_timeout;
  // The agreement wait must be bounded even under an unbounded policy —
  // otherwise a rank that died (rather than failed transiently) would hang
  // the retry protocol forever. 2x the policy timeout gives the slowest
  // survivor room to reach its own deadline before agreement expires.
  return pol.bounded() ? 2 * pol.timeout : std::chrono::milliseconds{1000};
}

void CgxEngine::reshard_world(comm::Comm& comm) {
  const comm::CommPolicy& pol = comm.transport().policy();
  const std::chrono::milliseconds timeout = derived_recovery_timeout(pol);
  comm::Membership* membership = comm.membership();
  if (membership == nullptr) {
    // Classic (fixed-world) protocol: agree, flush own inbound, agree again
    // so a fast rank cannot push retry traffic into a channel a slow rank
    // is still resetting.
    if (!comm.try_barrier(timeout)) {
      throw comm::TimeoutError(-1, comm.rank(), -1, timeout,
                               "round-retry agreement barrier");
    }
    comm.transport().reset_inbound(comm.rank());
    if (!comm.try_barrier(timeout)) {
      throw comm::TimeoutError(-1, comm.rank(), -1, timeout,
                               "round-retry reset barrier");
    }
    return;
  }
  const auto outcome = membership->recover(
      comm, timeout, [this](const comm::WorldView& view) { apply_view(view); });
  if (outcome == comm::Membership::Recovery::kReshard) {
    // recover() already fenced the epoch, flushed every rank's inbound and
    // rebuilt the plans under its own gates; the retried attempt can start.
    return;
  }
  // Transient fault (no pending death): the classic quiesce, but over the
  // recovery gate so it can never entangle with ranks parked at the step
  // commit fence.
  if (!membership->recovery_barrier(timeout)) {
    throw comm::TimeoutError(-1, comm.global_rank(), -1, timeout,
                             "round-retry agreement barrier");
  }
  comm.transport().reset_inbound(comm.global_rank());
  if (!membership->recovery_barrier(timeout)) {
    throw comm::TimeoutError(-1, comm.global_rank(), -1, timeout,
                             "round-retry reset barrier");
  }
}

void CgxEngine::apply_view(const comm::WorldView& view) {
  const int active = view.active_count();
  CGX_CHECK_GT(active, 0);
  CGX_CHECK_LE(active, world_size_);
  active_world_ = active;
  applied_epoch_ = view.epoch;
  std::size_t num_leaders = 0;
  if (!options_.node_of.empty()) {
    // Restrict the launch topology to the survivors: ranks keep their node,
    // and a dead node-leader's role falls to the lowest surviving rank on
    // that node (leaders are always the first-appearing rank).
    comm::Topology restricted =
        comm::Topology(options_.node_of).restrict(view.active);
    num_leaders = static_cast<std::size_t>(restricted.num_nodes());
    hier_.node_of = restricted.node_map();
  }
  // Chunk-compressor count the collectives expect in the new world: the
  // flat SRA binds exactly one compressor per dense chunk; the two-level
  // schedule additionally needs one per leader chunk plus the intra slot.
  const std::size_t chunk_count =
      options_.node_of.empty()
          ? static_cast<std::size_t>(active)
          : std::max(static_cast<std::size_t>(active), num_leaders + 1);
  // Fresh compressors for every ACTIVE global rank — the EF-drop contract:
  // the departed rank's residual can never be replayed, and a surviving
  // rank's residual may hold contributions from the aborted attempt, so
  // everyone restarts error feedback from zero. One-shot bounded gradient
  // perturbation, bit-identical across survivors (DESIGN.md §5h).
  for (int g : view.active) {
    RankState& rank = ranks_[static_cast<std::size_t>(g)];
    for (std::size_t l = 0; l < layout_.layer_count(); ++l) {
      const LayerCompression& cfg = resolved_[l];
      auto& chunks = rank.per_layer[l];
      auto& ptrs = rank.chunk_ptrs[l];
      chunks.clear();
      ptrs.clear();
      if (cfg.method == Method::None) continue;
      const std::size_t rows =
          layout_.layer(l).shape.empty() ? 0 : layout_.layer(l).shape.front();
      chunks.reserve(chunk_count);
      ptrs.reserve(chunk_count);
      for (std::size_t c = 0; c < chunk_count; ++c) {
        chunks.push_back(make_compressor(cfg, rows));
        if (options_.compression_pool != nullptr) {
          chunks.back()->enable_threading(
              options_.compression_pool,
              options_.compression_threading_min_numel);
        }
        ptrs.push_back(chunks.back().get());
      }
    }
  }
  wire_bytes_cached_ = wire_bytes_per_rank(options_.scheme);
}

void CgxEngine::allreduce_attempt(comm::Comm& comm, std::span<float> fused,
                                  util::Rng& rng, RankState& state) {
  CollectiveWorkspace& ws = state.workspace;

  // Fused full-precision packet for filtered layers. Gather-scatter through
  // the workspace: the packet and the allreduce scratch live in engine-owned
  // slots, so steady state makes no allocation.
  if (packet_numel_ > 0) {
    const std::span<float> packet = ws.floats(kSlotPacket, packet_numel_);
    std::size_t offset = 0;
    for (std::size_t l : filtered_layers_) {
      const auto slice = layout_.slice(std::span<const float>(fused), l);
      tensor::copy(slice, packet.subspan(offset, slice.size()));
      offset += slice.size();
    }
    comm::allreduce(comm, packet, options_.scheme,
                    ws.floats(kSlotCommScratch, packet_numel_));
    offset = 0;
    for (std::size_t l : filtered_layers_) {
      auto slice = layout_.slice(fused, l);
      tensor::copy(packet.subspan(offset, slice.size()), slice);
      offset += slice.size();
    }
  }
  if (!options_.fuse_filtered_layers) {
    for (std::size_t l = 0; l < resolved_.size(); ++l) {
      if (resolved_[l].method != Method::None) continue;
      std::span<float> slice = layout_.slice(fused, l);
      comm::allreduce(comm, slice, options_.scheme,
                      ws.floats(kSlotCommScratch, slice.size()));
    }
  }

  // Compressed layers, one collective each (per-layer compression, §3).
  for (std::size_t l = 0; l < resolved_.size(); ++l) {
    if (resolved_[l].method == Method::None) continue;
    const std::span<Compressor* const> chunks = state.chunk_ptrs[l];
    if (!options_.node_of.empty()) {
      hierarchical_allreduce(comm, layout_.slice(fused, l), chunks, rng,
                             hier_, ws);
    } else {
      compressed_allreduce(comm, layout_.slice(fused, l), chunks, rng,
                           options_.scheme, ws);
    }
  }

  if (options_.average && active_world_ > 1) {
    tensor::scale(fused, 1.0f / static_cast<float>(active_world_));
  }
}

void CgxEngine::bucket_begin(comm::Comm& comm, std::span<float> fused,
                             std::span<const std::size_t> layers,
                             util::Rng& rng, int tag_base,
                             CollectiveWorkspace& ws) {
  RankState& state = ranks_[static_cast<std::size_t>(comm.global_rank())];
  if (!options_.node_of.empty()) {
    // Two-level begin: intra-node fold to the leader plus the leader
    // scatter — the half that overlaps the previous bucket's NIC drain.
    const int bucket = tag_base / comm::kBucketTagStride;
    for (std::size_t l : layers) {
      hierarchical_begin(comm, layout_.slice(fused, l), state.chunk_ptrs[l],
                         rng, hier_, ws, bucket);
    }
    return;
  }
  if (!supports_split()) return;  // Ring/Tree: all work happens in finish
  for (std::size_t l : layers) {
    compressed_sra_begin(comm, layout_.slice(fused, l), state.chunk_ptrs[l],
                         rng, ws, tag_base);
  }
}

void CgxEngine::bucket_finish(comm::Comm& comm, std::span<float> fused,
                              std::span<const std::size_t> layers,
                              util::Rng& rng, int tag_base,
                              CollectiveWorkspace& ws) {
  RankState& state = ranks_[static_cast<std::size_t>(comm.global_rank())];
  if (!options_.node_of.empty()) {
    const int bucket = tag_base / comm::kBucketTagStride;
    for (std::size_t l : layers) {
      hierarchical_finish(comm, layout_.slice(fused, l),
                          state.chunk_ptrs[l], rng, hier_, ws, bucket);
    }
    if (options_.average && active_world_ > 1) {
      const float inv = 1.0f / static_cast<float>(active_world_);
      for (std::size_t l : layers) {
        tensor::scale(layout_.slice(fused, l), inv);
      }
    }
    return;
  }
  const bool split = supports_split();
  for (std::size_t l : layers) {
    const std::span<float> slice = layout_.slice(fused, l);
    if (split) {
      compressed_sra_finish(comm, slice, state.chunk_ptrs[l], rng, ws,
                            tag_base);
    } else {
      compressed_allreduce(comm, slice, state.chunk_ptrs[l], rng,
                           options_.scheme, ws, tag_base);
    }
  }
  if (options_.average && active_world_ > 1) {
    // Per-slice averaging: multiplying each element by the same scalar is
    // bit-identical to the monolithic path's whole-buffer scale.
    const float inv = 1.0f / static_cast<float>(active_world_);
    for (std::size_t l : layers) tensor::scale(layout_.slice(fused, l), inv);
  }
}

void CgxEngine::packet_allreduce(comm::Comm& comm, std::span<float> fused,
                                 CollectiveWorkspace& ws) {
  if (packet_numel_ == 0) return;
  const std::span<float> packet = ws.floats(kSlotPacket, packet_numel_);
  std::size_t offset = 0;
  for (std::size_t l : filtered_layers_) {
    const auto slice = layout_.slice(std::span<const float>(fused), l);
    tensor::copy(slice, packet.subspan(offset, slice.size()));
    offset += slice.size();
  }
  comm::allreduce(comm, packet, options_.scheme,
                  ws.floats(kSlotCommScratch, packet_numel_));
  if (options_.average && active_world_ > 1) {
    tensor::scale(packet, 1.0f / static_cast<float>(active_world_));
  }
  offset = 0;
  for (std::size_t l : filtered_layers_) {
    auto slice = layout_.slice(fused, l);
    tensor::copy(packet.subspan(offset, slice.size()), slice);
    offset += slice.size();
  }
}

double CgxEngine::ef_residual_norm(int rank) const {
  // Summed (not root-of-sum-of-squares) across chunks: the controller only
  // watches the trend between replans, so any consistent aggregate works.
  double total = 0.0;
  const RankState& state = ranks_[static_cast<std::size_t>(rank)];
  for (const auto& chunks : state.per_layer) {
    for (const auto& c : chunks) {
      if (const auto* ef = dynamic_cast<const ErrorFeedback*>(c.get())) {
        total += ef->residual_norm();
      } else if (const auto* dgc = dynamic_cast<const DgcTopK*>(c.get())) {
        total += dgc->residual_norm();
      }
    }
  }
  return total;
}

std::size_t CgxEngine::scratch_high_water_bytes() const {
  std::size_t total = 0;
  for (const RankState& rank : ranks_) {
    total += rank.workspace.high_water_bytes();
    for (const auto& chunks : rank.per_layer) {
      for (const auto& c : chunks) total += c->scratch_bytes();
    }
  }
  return total;
}

double CgxEngine::layer_wire_bytes(std::size_t layer_index,
                                   comm::ReductionScheme scheme,
                                   bool compressed) const {
  const auto& info = layout_.layer(layer_index);
  const LayerCompression& cfg = resolved_[layer_index];
  const std::size_t rows = info.shape.empty() ? 0 : info.shape.front();
  const std::size_t chunk_numel =
      (info.numel + static_cast<std::size_t>(world_size_) - 1) /
      static_cast<std::size_t>(world_size_);
  const double chunk_bytes =
      compressed && cfg.method != Method::None
          ? static_cast<double>(wire_bytes(cfg, chunk_numel, rows))
          : 4.0 * static_cast<double>(chunk_numel);
  const double full_bytes =
      compressed && cfg.method != Method::None
          ? static_cast<double>(wire_bytes(cfg, info.numel, rows))
          : 4.0 * static_cast<double>(info.numel);
  return scheme_egress_bytes(scheme,
                             static_cast<std::size_t>(world_size_),
                             chunk_bytes, full_bytes);
}

double CgxEngine::wire_bytes_per_rank(comm::ReductionScheme scheme) const {
  double total = 0.0;
  for (std::size_t l = 0; l < resolved_.size(); ++l) {
    total += layer_wire_bytes(l, scheme, /*compressed=*/true);
  }
  return total;
}

double CgxEngine::raw_wire_bytes_per_rank(
    comm::ReductionScheme scheme) const {
  double total = 0.0;
  for (std::size_t l = 0; l < resolved_.size(); ++l) {
    total += layer_wire_bytes(l, scheme, /*compressed=*/false);
  }
  return total;
}

CommPlan CgxEngine::comm_plan(const simgpu::CostModel& cost,
                              double compress_gbps) const {
  CommPlan plan;
  plan.per_layer_s.assign(layout_.layer_count(), 0.0);
  const std::vector<int> devices = participating_devices(cost, world_size_);
  double fused_packet_bytes = 0.0;

  for (std::size_t l = 0; l < layout_.layer_count(); ++l) {
    const auto& info = layout_.layer(l);
    const LayerCompression& cfg = resolved_[l];
    if (cfg.method == Method::None) {
      if (options_.fuse_filtered_layers) {
        fused_packet_bytes += 4.0 * static_cast<double>(info.numel);
      } else {
        plan.per_layer_s[l] = scheme_seconds(
            cost, devices, options_.scheme,
            4.0 * static_cast<double>(info.numel) / world_size_,
            4.0 * static_cast<double>(info.numel));
      }
      continue;
    }
    const std::size_t rows = info.shape.empty() ? 0 : info.shape.front();
    const std::size_t chunk_numel =
        (info.numel + static_cast<std::size_t>(world_size_) - 1) /
        static_cast<std::size_t>(world_size_);
    const double chunk_wire =
        static_cast<double>(wire_bytes(cfg, chunk_numel, rows));
    const double full_wire =
        static_cast<double>(wire_bytes(cfg, info.numel, rows));
    const double raw_bytes = 4.0 * static_cast<double>(info.numel);
    const double kernel =
        compress_kernel_seconds(cfg.method, raw_bytes, compress_gbps);
    if (!options_.node_of.empty()) {
      // Heterogeneous two-level schedule (§4).
      std::size_t leader_count = 0;
      {
        std::vector<int> seen;
        for (int node : options_.node_of) {
          if (std::find(seen.begin(), seen.end(), node) == seen.end()) {
            seen.push_back(node);
          }
        }
        leader_count = seen.size();
      }
      const std::size_t leader_chunk_numel =
          (info.numel + leader_count - 1) / std::max<std::size_t>(1,
                                                                  leader_count);
      const double leader_chunk_wire =
          static_cast<double>(wire_bytes(cfg, leader_chunk_numel, rows));
      plan.per_layer_s[l] =
          hierarchical_layer_seconds(cost, options_.node_of, raw_bytes,
                                     leader_chunk_wire) +
          0.5 * kernel;
    } else {
      plan.per_layer_s[l] = scheme_seconds(cost, devices, options_.scheme,
                                           chunk_wire, full_wire) +
                            0.5 * kernel;
    }
    plan.kernel_contention_s += 0.5 * kernel;
  }

  if (fused_packet_bytes > 0.0) {
    plan.fused_packet_s = scheme_seconds(
        cost, devices, options_.scheme, fused_packet_bytes / world_size_,
        fused_packet_bytes);
  }
  plan.wire_bytes_per_rank = wire_bytes_per_rank(options_.scheme);
  return plan;
}

// ----------------------------------------------------------------- QNCCL

QncclEngine::QncclEngine(const tensor::LayerLayout& layout, unsigned bits,
                         std::size_t bucket_size, int world_size)
    : layout_(layout),
      bits_(bits),
      bucket_size_(bucket_size),
      world_size_(world_size) {
  CGX_CHECK_GT(world_size, 0);
  LayerCompression cfg;
  cfg.method = Method::Qsgd;
  cfg.bits = bits;
  cfg.bucket_size = bucket_size;
  ranks_.resize(static_cast<std::size_t>(world_size));
  for (std::size_t r = 0; r < ranks_.size(); ++r) {
    ranks_[r].workspace.set_arena(&util::rank_arena(static_cast<int>(r)));
  }
  for (auto& rank : ranks_) {
    for (int c = 0; c < world_size; ++c) {
      rank.chunks.push_back(make_compressor(cfg, 0));
      rank.chunk_ptrs.push_back(rank.chunks.back().get());
    }
  }
}

void QncclEngine::allreduce(comm::Comm& comm, std::span<float> fused,
                            util::Rng& rng) {
  CGX_CHECK_EQ(comm.size(), world_size_);
  // The blob path: one ring allreduce over the raw fused buffer, uniform
  // compression, no layer boundaries and no filtering.
  RankState& state = ranks_[static_cast<std::size_t>(comm.rank())];
  util::ScopedArena bind(util::rank_arena(comm.rank()));
  compressed_allreduce_ring(comm, fused, state.chunk_ptrs, rng,
                            state.workspace);
  if (world_size_ > 1) {
    tensor::scale(fused, 1.0f / static_cast<float>(world_size_));
  }
}

CommPlan QncclEngine::comm_plan(const simgpu::CostModel& cost,
                                double compress_gbps) const {
  // QNCCL sits under the framework's fused buckets (like the baseline);
  // each ~25 MB bucket is quantized as one blob inside the ring.
  constexpr double kBucketBytes = 25e6;
  CommPlan plan;
  plan.per_layer_s.assign(layout_.layer_count(), 0.0);
  if (world_size_ <= 1) return plan;
  const std::vector<int> devices = participating_devices(cost, world_size_);
  const QsgdCompressor probe(bits_, bucket_size_);
  // "Limitations in GPU resources imposed by NCCL itself ... lead to
  // non-negligible compression overhead" (§3): the kernels run at a
  // fraction of the native rate.
  const double nccl_kernel_rate = compress_gbps / 4.0;

  double bucket_numel = 0.0;
  auto flush = [&](std::size_t owner_layer) {
    if (bucket_numel <= 0.0) return;
    const auto chunk_numel = static_cast<std::size_t>(
        bucket_numel / world_size_ + 1.0);
    const double chunk_wire =
        static_cast<double>(probe.compressed_size(chunk_numel));
    const double kernel = compress_kernel_seconds(
        Method::Qsgd, 4.0 * bucket_numel, nccl_kernel_rate);
    plan.per_layer_s[owner_layer] +=
        2.0 * (world_size_ - 1) *
            cost.ring_step_seconds(devices, chunk_wire) +
        0.5 * kernel;
    plan.kernel_contention_s += 0.5 * kernel;
    plan.wire_bytes_per_rank +=
        2.0 * static_cast<double>(world_size_ - 1) * chunk_wire;
    bucket_numel = 0.0;
  };
  for (std::size_t i = layout_.layer_count(); i-- > 0;) {
    bucket_numel += static_cast<double>(layout_.layer(i).numel);
    if (4.0 * bucket_numel >= kBucketBytes) flush(i);
  }
  flush(0);
  return plan;
}

// ----------------------------------------------------------------- GRACE

GraceEngine::GraceEngine(const tensor::LayerLayout& layout, unsigned bits,
                         int world_size)
    : layout_(layout), bits_(bits), world_size_(world_size) {
  CGX_CHECK_GT(world_size, 0);
  ranks_.resize(static_cast<std::size_t>(world_size));
  for (std::size_t r = 0; r < ranks_.size(); ++r) {
    ranks_[r].workspace.set_arena(&util::rank_arena(static_cast<int>(r)));
  }
  for (auto& rank : ranks_) {
    for (const auto& info : layout.layers()) {
      LayerCompression cfg;
      cfg.method = Method::Qsgd;
      cfg.bits = bits;
      cfg.bucket_size = info.numel;  // no bucketing: one scale per tensor
      rank.layers.push_back(make_compressor(cfg, 0));
    }
  }
}

void GraceEngine::allreduce(comm::Comm& comm, std::span<float> fused,
                            util::Rng& rng) {
  CGX_CHECK_EQ(comm.size(), world_size_);
  const int n = comm.size();
  const int r = comm.rank();
  RankState& state = ranks_[static_cast<std::size_t>(r)];
  util::ScopedArena bind(util::rank_arena(r));
  CollectiveWorkspace& ws = state.workspace;

  // GRACE's reduction: compress locally, allgather everyone's payload,
  // decompress all of them and sum (no aggregating rank, every rank does
  // the full work).
  for (std::size_t l = 0; l < layout_.layer_count(); ++l) {
    std::span<float> slice = layout_.slice(fused, l);
    Compressor& compressor = *state.layers[l];
    const std::span<std::byte> mine =
        ws.bytes(kSlotGraceMine, compressor.compressed_size(slice.size()));
    const std::size_t written = compressor.compress(slice, mine, rng);
    const std::span<const std::byte> payload = mine.first(written);
    for (int p = 0; p < n; ++p) {
      if (p == r) continue;
      comm.send(p, payload, kGraceTag);
    }
    const std::span<float> decompressed =
        ws.floats(kSlotGraceDecompressed, slice.size());
    // Sum in rank order so all ranks produce bit-identical results; our own
    // contribution also goes through its payload.
    std::fill(slice.begin(), slice.end(), 0.0f);
    const std::span<std::byte> incoming =
        ws.bytes(kSlotGraceIncoming, payload.size());
    for (int p = 0; p < n; ++p) {
      if (p == r) {
        compressor.decompress(payload, decompressed);
      } else {
        comm.recv(p, incoming, kGraceTag);
        compressor.decompress(incoming, decompressed);
      }
      tensor::add_inplace(slice, decompressed);
    }
  }
  if (n > 1) tensor::scale(fused, 1.0f / static_cast<float>(n));
}

CommPlan GraceEngine::comm_plan(const simgpu::CostModel& cost,
                                double compress_gbps) const {
  CommPlan plan;
  plan.per_layer_s.assign(layout_.layer_count(), 0.0);
  const std::vector<int> devices = participating_devices(cost, world_size_);
  for (std::size_t l = 0; l < layout_.layer_count(); ++l) {
    const auto& info = layout_.layer(l);
    // INT8 wire values regardless of the quantization width (§6.2), plus
    // one fp32 scale per tensor.
    const double wire = static_cast<double>(info.numel) + 4.0;
    // Every rank decompresses all N payloads (no aggregating rank), so the
    // kernel work scales with the world size.
    const double kernel = compress_kernel_seconds(
        Method::Qsgd,
        static_cast<double>(world_size_) * 2.0 *
            static_cast<double>(info.numel),
        compress_gbps);
    plan.per_layer_s[l] = cost.allgather_seconds(devices, wire) +
                          0.5 * kernel;
    plan.kernel_contention_s += 0.5 * kernel;
    plan.wire_bytes_per_rank +=
        static_cast<double>(world_size_ - 1) * wire;
  }
  return plan;
}

// ----------------------------------------------------------------- baseline

BaselineEngine::BaselineEngine(const tensor::LayerLayout& layout,
                               int world_size, bool fp16_wire)
    : layout_(layout), world_size_(world_size), fp16_wire_(fp16_wire) {
  CGX_CHECK_GT(world_size, 0);
  ranks_.resize(static_cast<std::size_t>(world_size));
  for (std::size_t r = 0; r < ranks_.size(); ++r) {
    ranks_[r].set_arena(&util::rank_arena(static_cast<int>(r)));
  }
}

void BaselineEngine::allreduce(comm::Comm& comm, std::span<float> fused,
                               util::Rng& rng) {
  (void)rng;
  CGX_CHECK_EQ(comm.size(), world_size_);
  CollectiveWorkspace& ws = ranks_[static_cast<std::size_t>(comm.rank())];
  // NCCL reduces FP16 natively when the framework trains in mixed
  // precision; numerically we keep float accumulation (NCCL sums in the
  // wire type but the difference is irrelevant here — the sim path charges
  // the halved wire size).
  for (std::size_t l = 0; l < layout_.layer_count(); ++l) {
    std::span<float> slice = layout_.slice(fused, l);
    comm::allreduce(comm, slice, comm::ReductionScheme::Ring,
                    ws.floats(kSlotCommScratch, slice.size()));
  }
  if (world_size_ > 1) {
    tensor::scale(fused, 1.0f / static_cast<float>(world_size_));
  }
}

CommPlan BaselineEngine::comm_plan(const simgpu::CostModel& cost,
                                   double compress_gbps) const {
  (void)compress_gbps;
  // DDP/Horovod fuse gradients into ~25 MB buckets before calling NCCL
  // (Tensor Fusion / DDP gradient buckets): one ring allreduce per bucket,
  // amortising per-message latency across layers. Buckets fill in gradient
  // PRODUCTION order (reverse layout order) and fire when the last layer of
  // the bucket materialises, so the bucket's cost is charged to the
  // lowest-index layer it contains.
  constexpr double kBucketBytes = 25e6;
  CommPlan plan;
  plan.per_layer_s.assign(layout_.layer_count(), 0.0);
  if (world_size_ <= 1) return plan;
  const std::vector<int> devices = participating_devices(cost, world_size_);
  const double elem_bytes = fp16_wire_ ? 2.0 : 4.0;

  double bucket_bytes = 0.0;
  auto flush = [&](std::size_t owner_layer) {
    if (bucket_bytes <= 0.0) return;
    const double chunk = bucket_bytes / world_size_;
    plan.per_layer_s[owner_layer] +=
        2.0 * (world_size_ - 1) * cost.ring_step_seconds(devices, chunk);
    plan.wire_bytes_per_rank +=
        2.0 * static_cast<double>(world_size_ - 1) * chunk;
    bucket_bytes = 0.0;
  };
  for (std::size_t i = layout_.layer_count(); i-- > 0;) {
    bucket_bytes += elem_bytes * static_cast<double>(layout_.layer(i).numel);
    if (bucket_bytes >= kBucketBytes) flush(i);
  }
  flush(0);
  return plan;
}

}  // namespace cgx::core
