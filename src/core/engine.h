// The CGX communication engine and the two baseline engines it is evaluated
// against (QNCCL, GRACE).
//
// CgxEngine is the paper's main artefact (§3/§4): it owns the per-layer
// compression policy, routes filtered layers (bias/norm) through a fused
// full-precision packet, runs the compression-aware SRA/Ring/Tree
// collectives for everything else, and exposes the same work as an analytic
// communication plan for the performance model ("real collectives,
// simulated clocks").
//
// QncclEngine reproduces the QNCCL artefact's constraints (§3 "The QNCCL
// Library"): compression is applied uniformly to the raw fused buffer — no
// layer boundaries, no filters, ring reduction only, and a GPU-resource
// penalty on the compression kernels imposed by running inside NCCL.
//
// GraceEngine reproduces GRACE's QSGD configuration as characterised in
// §6.2: no bucketing (one scaling per tensor), allgather-based reduction
// instead of an optimized allreduce, and INT8 wire values even at 4-bit
// quantization.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "comm/collectives.h"
#include "core/compressed_allreduce.h"
#include "core/compression_config.h"
#include "core/hierarchical.h"
#include "simgpu/cost_model.h"
#include "tensor/layer_layout.h"

namespace cgx::comm {
class FaultInjector;  // see comm/fault.h
}  // namespace cgx::comm

namespace cgx::core {

struct EngineOptions {
  comm::ReductionScheme scheme =
      comm::ReductionScheme::ScatterReduceAllgather;
  bool average = true;  // divide the sum by world size
  // Fuse all full-precision (filtered/small) layers into one packet per
  // step, "communicated uncompressed, in separate packages" (§3).
  bool fuse_filtered_layers = true;
  // Heterogeneous multi-node mode (§4 "Backend Details"): intra-node
  // reduction to node leaders (peer-direct where the link allows),
  // compressed SRA with node-boundary re-compression across nodes.
  // node_of[rank] -> node id; empty = flat (single-level) communication.
  std::vector<int> node_of;
  // Compress the intra-node reduce hop too (two-level mode only; see
  // HierarchicalOptions::compress_intra).
  bool compress_intra = false;
  // Intra-call bucket parallelism for compression kernels: layers with at
  // least `compression_threading_min_numel` elements split their buckets
  // across this pool (payloads stay bit-identical to the serial path; see
  // qsgd.h). Null = serial compression.
  util::ThreadPool* compression_pool = nullptr;
  std::size_t compression_threading_min_numel = 1 << 16;
  // Graceful degradation: how many times CgxEngine::allreduce retries a
  // round after a structured comm failure (CommError) before rethrowing.
  // 0 (the default) preserves the seed's fail-fast behaviour and costs
  // nothing; > 0 additionally keeps a pre-round snapshot of the fused
  // buffer in the workspace so a half-reduced round can be rolled back.
  int max_round_retries = 0;
  // Upper bound on each recovery-protocol wait (agreement barriers, the
  // membership vote deadline). 0 = derive from the comm policy: twice its
  // timeout when bounded, else 1000 ms — agreement must stay bounded even
  // under an unbounded policy, or a dead peer hangs the retry forever.
  std::chrono::milliseconds recovery_timeout{0};
  // Optional fault harness hook: lets tests fail a specific round
  // deterministically (FaultInjector::schedule_round_failure). Not owned.
  comm::FaultInjector* injector = nullptr;
};

// What happened to one rank's most recent CgxEngine::allreduce call: how
// many attempts it took, which links failed with what, and whether the step
// finally succeeded. Incidents are recorded only on failure paths, so the
// fault-free steady state allocates nothing here.
struct StepReport {
  struct Incident {
    int src;
    int dst;
    int tag;
    std::string what;
  };
  // Per-phase wall-clock breakdown of one streamed step, filled by
  // AsyncGradientEngine (the synchronous engines leave it zeroed). The
  // overlap win is `comm_s - exposed_comm_s`: communication that ran while
  // the backward pass was still producing gradients. See README "Reading
  // the StepReport timing breakdown".
  struct Timing {
    double compute_s = 0.0;       // begin_step -> last bucket submission
    double compress_s = 0.0;      // round-1 compression inside bucket_begin
    double comm_s = 0.0;          // total busy time on the bucket comm path
    double exposed_comm_s = 0.0;  // wait_all() blocking time (not hidden)
    // exposed_comm_s as a percentage of comm_s (0 when comm_s == 0): the
    // single number the DAG-executor benches gate on — lower means more of
    // the communication ran behind compute.
    double exposed_comm_pct = 0.0;
    // Per-submission launch/finish timestamps, seconds since begin_step,
    // indexed in bucket-plan order (buckets 0..N-1, then the packet).
    // bucket == -1 marks a submission that never launched (error paths).
    // Sized by the engine at (re)build time and reset field-wise each
    // step, so the streamed hot path stays allocation-free.
    struct BucketEvent {
      int bucket = -1;      // plan index (packet = buckets.size())
      int lane = 0;         // comm lane that ran the collective
      double launch_s = 0.0;
      double finish_s = 0.0;
    };
    std::vector<BucketEvent> buckets;
  };
  bool ok = true;
  int attempts = 0;  // 1 = clean first try
  int retries = 0;
  // Elastic membership (comm/membership.h): the world this step actually
  // ran in. Non-elastic runs report epoch 0 and the launch world with no
  // movement. `departed`/`joined` compare against this rank's previous
  // step, so the step that absorbed a crash reports departed > 0 and the
  // step after a readmission reports joined > 0.
  std::uint64_t epoch = 0;
  int world = 0;
  int departed = 0;
  int joined = 0;
  // Compressed egress per rank for this step under the engine's current
  // policy (cached at rebuild time — wire_bytes_per_rank() is too expensive
  // to evaluate per step). The adaptive policy controller's telemetry.
  double wire_bytes = 0.0;
  std::vector<Incident> incidents;
  Timing timing;
};

// Analytic communication plan for one training step, consumed by
// simgpu::simulate_step. Costs are per layer in LAYOUT order; the fused
// full-precision packet ships once, after the last gradient materialises.
struct CommPlan {
  std::vector<double> per_layer_s;
  double fused_packet_s = 0.0;
  double wire_bytes_per_rank = 0.0;  // total egress per rank per step
  // Compression kernels compete with training compute for the device
  // (Appendix A): this portion of the kernel time extends the compute
  // timeline rather than the (overlappable) communication stream.
  double kernel_contention_s = 0.0;
};

class GradientEngine {
 public:
  virtual ~GradientEngine() = default;
  // Real path: collectively reduce (average) each rank's fused gradient.
  // Called by every rank's thread with its own Comm handle and buffer.
  virtual void allreduce(comm::Comm& comm, std::span<float> fused,
                         util::Rng& rng) = 0;
  // Simulated path: the communication plan on a given machine.
  // `compress_gbps` is the device's effective quantization kernel rate.
  virtual CommPlan comm_plan(const simgpu::CostModel& cost,
                             double compress_gbps) const = 0;
  virtual std::string name() const = 0;
};

class CgxEngine final : public GradientEngine {
 public:
  CgxEngine(const tensor::LayerLayout& layout, CompressionConfig config,
            int world_size, EngineOptions options = {});

  void allreduce(comm::Comm& comm, std::span<float> fused,
                 util::Rng& rng) override;
  CommPlan comm_plan(const simgpu::CostModel& cost,
                     double compress_gbps) const override;
  std::string name() const override { return "CGX"; }

  // Policy access; call rebuild() after mutating so per-layer operators
  // match the new policy (the adaptive assigner uses this every
  // re-assignment period). Rebuild is differential: only layers whose
  // resolved policy actually changed get fresh compressors, so warmed
  // workspaces and untouched compressor scratch carry across a policy
  // switch and the steady state stays allocation-free.
  CompressionConfig& config() { return config_; }
  const CompressionConfig& config() const { return config_; }
  void rebuild();

  const tensor::LayerLayout& layout() const { return layout_; }
  int world_size() const { return world_size_; }

  // Resolved policy per layer (after filters), for inspection and tests.
  const std::vector<LayerCompression>& resolved() const { return resolved_; }

  // Layers routed to the fused full-precision packet, and its total numel.
  const std::vector<std::size_t>& filtered_layers() const {
    return filtered_layers_;
  }
  std::size_t packet_numel() const { return packet_numel_; }
  const EngineOptions& options() const { return options_; }

  // ---- Streaming bucket entry points (used by AsyncGradientEngine) ----
  //
  // A bucket is a subset of this engine's COMPRESSED layers; the caller
  // runs each bucket's collective on its own tag range (comm/tagspace.h)
  // and its own workspace arena, so several buckets can be in flight at
  // once. bucket_begin is the non-blocking half (SRA round-1 compress +
  // buffered sends; a no-op for Ring/Tree, whose hop structure has no
  // split point); bucket_finish completes the reduction and applies the
  // 1/world averaging to the bucket's slices. begin(b) + finish(b) over
  // all buckets plus one packet_allreduce is bit-identical to allreduce()
  // given the same per-bucket RNG streams. In two-level mode (node_of set)
  // the bucket runs hierarchical_begin/finish on its own tag lane, so
  // bucket k+1's intra-node fold overlaps bucket k's inter-node drain.
  void bucket_begin(comm::Comm& comm, std::span<float> fused,
                    std::span<const std::size_t> layers, util::Rng& rng,
                    int tag_base, CollectiveWorkspace& ws);
  void bucket_finish(comm::Comm& comm, std::span<float> fused,
                     std::span<const std::size_t> layers, util::Rng& rng,
                     int tag_base, CollectiveWorkspace& ws);
  // The filtered layers' fused FP32 packet as one standalone collective
  // (gather -> uncompressed allreduce -> scatter + averaging).
  void packet_allreduce(comm::Comm& comm, std::span<float> fused,
                        CollectiveWorkspace& ws);
  // True when bucket_begin actually starts work early — flat SRA, or any
  // two-level schedule (whose begin half is the intra-node reduce plus the
  // leader scatter): the precondition for compression/transfer pipelining.
  bool supports_split() const {
    return options_.scheme ==
               comm::ReductionScheme::ScatterReduceAllgather ||
           !options_.node_of.empty();
  }

  // Round-retry recovery protocol, shared with AsyncGradientEngine's
  // per-bucket retries. Non-elastic comms run the classic deadline-bounded
  // agreement barrier / per-rank inbound reset / second barrier. Elastic
  // comms (comm/membership.h) instead run survivor agreement: a transient
  // fault quiesces over the recovery gate; a crash re-shards the world
  // (apply_view rebuilds this engine's plans) and the retried attempt runs
  // in the shrunken world. Throws TimeoutError if agreement cannot be
  // reached. All surviving ranks must call it together.
  void reshard_world(comm::Comm& comm);

  // Rebuilds this engine's collective plans for a freshly published
  // survivor view: shrinks (or re-expands) the active world, restricts the
  // two-level topology so a dead node-leader's role falls to the lowest
  // surviving rank on its node, and gives every surviving rank fresh
  // compressors — deliberately dropping all error-feedback residuals (the
  // departed rank's residual can never be replayed, so survivors take a
  // bounded one-shot gradient perturbation instead of a permanent bias;
  // DESIGN.md §5h). Runs on the membership delta leader's thread while all
  // other participants are parked at the recovery gate.
  void apply_view(const comm::WorldView& view);

  // World the next allreduce will run in (shrinks/grows with re-shards).
  int active_world() const { return active_world_; }

  // Bytes each rank puts on the wire per step (compressed), and the FP32
  // baseline's, for compression-ratio reporting (Fig. 5b / Table 7).
  double wire_bytes_per_rank(comm::ReductionScheme scheme) const;
  double raw_wire_bytes_per_rank(comm::ReductionScheme scheme) const;

  // wire_bytes_per_rank(options().scheme), cached at rebuild()/apply_view()
  // time so StepReport::wire_bytes costs nothing per step.
  double cached_wire_bytes() const { return wire_bytes_cached_; }

  // Total L2 norm of `rank`'s unsent compression residuals (ErrorFeedback
  // residuals + DGC velocity stores, summed over layer chunks). Walks every
  // compressor, so call it at replan boundaries, not per step.
  double ef_residual_norm(int rank) const;

  // Total scratch held across all ranks: per-rank workspace high-water
  // marks plus compressor-internal symbol buffers. Monotone; the
  // zero-allocation test asserts it stabilizes after the first step.
  std::size_t scratch_high_water_bytes() const;

  // What happened to `rank`'s most recent allreduce call (attempts, retried
  // rounds, failed links). Valid after that rank's call returned or threw.
  const StepReport& last_step_report(int rank) const {
    return ranks_[static_cast<std::size_t>(rank)].report;
  }

 private:
  struct RankState {
    // state[layer][chunk] — stable chunk->compressor binding (see
    // compressed_allreduce.h).
    std::vector<std::vector<std::unique_ptr<Compressor>>> per_layer;
    // Raw-pointer view of per_layer, rebuilt alongside it so allreduce()
    // never materializes a pointer vector per call.
    std::vector<std::vector<Compressor*>> chunk_ptrs;
    CollectiveWorkspace workspace;
    StepReport report;
    std::uint64_t rounds = 0;  // allreduce call index (fault-round keying)
    int last_world = 0;        // world of this rank's previous step (0 =
                               // never stepped); feeds StepReport movement
  };

  // One full reduction pass — the body a round retry re-runs.
  void allreduce_attempt(comm::Comm& comm, std::span<float> fused,
                         util::Rng& rng, RankState& state);

  // Fills the StepReport's world-movement fields on every allreduce exit.
  void finish_report(RankState& state);
  std::chrono::milliseconds derived_recovery_timeout(
      const comm::CommPolicy& pol) const;

  double layer_wire_bytes(std::size_t layer_index,
                          comm::ReductionScheme scheme, bool compressed) const;

  tensor::LayerLayout layout_;  // owned copy: engines outlive callers' layouts
  CompressionConfig config_;
  int world_size_;
  EngineOptions options_;
  // Two-level routing options, built once in rebuild() so the per-call hot
  // path never copies the node map (zero steady-state allocations).
  HierarchicalOptions hier_;
  std::vector<LayerCompression> resolved_;
  std::vector<std::size_t> filtered_layers_;  // layers routed to FP32
  std::size_t packet_numel_ = 0;              // total numel of filtered layers
  // Elastic membership: the currently active world (== world_size_ until a
  // re-shard shrinks it) and the epoch of the last applied view. ranks_
  // stays keyed by GLOBAL rank — a survivor keeps its slot across shrinks.
  int active_world_ = 0;
  std::uint64_t applied_epoch_ = 0;
  double wire_bytes_cached_ = 0.0;  // see cached_wire_bytes()
  std::vector<RankState> ranks_;
};

class QncclEngine final : public GradientEngine {
 public:
  // The blob sees no layer names: one uniform quantization policy.
  QncclEngine(const tensor::LayerLayout& layout, unsigned bits,
              std::size_t bucket_size, int world_size);

  void allreduce(comm::Comm& comm, std::span<float> fused,
                 util::Rng& rng) override;
  CommPlan comm_plan(const simgpu::CostModel& cost,
                     double compress_gbps) const override;
  std::string name() const override { return "QNCCL"; }

 private:
  struct RankState {
    std::vector<std::unique_ptr<Compressor>> chunks;
    std::vector<Compressor*> chunk_ptrs;
    CollectiveWorkspace workspace;
  };

  tensor::LayerLayout layout_;
  unsigned bits_;
  std::size_t bucket_size_;
  int world_size_;
  std::vector<RankState> ranks_;
};

class GraceEngine final : public GradientEngine {
 public:
  GraceEngine(const tensor::LayerLayout& layout, unsigned bits,
              int world_size);

  void allreduce(comm::Comm& comm, std::span<float> fused,
                 util::Rng& rng) override;
  CommPlan comm_plan(const simgpu::CostModel& cost,
                     double compress_gbps) const override;
  std::string name() const override { return "GRACE"; }

 private:
  struct RankState {
    std::vector<std::unique_ptr<Compressor>> layers;
    CollectiveWorkspace workspace;
  };

  tensor::LayerLayout layout_;
  unsigned bits_;
  int world_size_;
  std::vector<RankState> ranks_;
};

// The uncompressed Horovod-NCCL / PyTorch-DDP baseline: plain ring
// allreduce of the fused FP32 buffer, layer by layer.
class BaselineEngine final : public GradientEngine {
 public:
  explicit BaselineEngine(const tensor::LayerLayout& layout, int world_size,
                          bool fp16_wire = false);

  void allreduce(comm::Comm& comm, std::span<float> fused,
                 util::Rng& rng) override;
  CommPlan comm_plan(const simgpu::CostModel& cost,
                     double compress_gbps) const override;
  std::string name() const override { return "NCCL-baseline"; }

 private:
  tensor::LayerLayout layout_;
  int world_size_;
  bool fp16_wire_;
  std::vector<CollectiveWorkspace> ranks_;  // per-rank allreduce scratch
};

}  // namespace cgx::core
