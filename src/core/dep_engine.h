// Read/write-set dependency engine for DAG-scheduled execution.
//
// The MXNet note-engine design: ops declare which variables they READ and
// which they WRITE, and the engine derives the dependency edges at push
// time — a read depends on the variable's last writer (RAW), a write
// depends on the last writer (WAW) and on every read issued since it
// (WAR). A topological scheduler then fires ops the moment their
// dependencies resolve: either serially in deterministic ascending-op-id
// order, or onto a util::ThreadPool for inter-op parallelism.
//
// This is what lets the backward pass of a branchy model (nn::Graph — skip
// joins, multi-tower) run independent branches concurrently AND ship each
// gradient bucket the instant its true producers finish, instead of
// waiting for its turn in Sequential's strict reverse-layer walk
// (core/async_engine.h consumes the completions via gradient-ready hooks).
//
// Determinism contract (DESIGN.md §5i):
//  * The op graph is a pure function of push order; op ids are stable.
//  * Per-op randomness must come from op_rng(parent, id) — a stream split
//    by stable op id — never from a shared sequential generator.
//  * Any accumulation across ops (fan-in joins) must happen in an op that
//    depends on all contributors and sums them in a fixed order.
//  Under those rules results are bit-identical across pool sizes
//  {off, 1, 2, 7, ...}: the scheduler can only change WHEN an op runs,
//  never what it computes.
//
// Replay: a recorded graph is re-run every step via run(); the hot path is
// allocation-free after the first run (pool submission uses the raw
// ThreadPool ring, the pending counters are grow-only storage).
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <initializer_list>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "util/rng.h"
#include "util/threadpool.h"

namespace cgx::core {

class DepEngine {
 public:
  using OpId = std::uint32_t;
  using VarId = std::uint32_t;
  static constexpr OpId kNoOp = 0xffffffffu;

  // pool == nullptr -> serial mode: run() executes ops on the calling
  // thread, always picking the smallest ready op id (a deterministic
  // topological order). With a pool, ready ops fire concurrently.
  explicit DepEngine(util::ThreadPool* pool = nullptr) : pool_(pool) {}

  DepEngine(const DepEngine&) = delete;
  DepEngine& operator=(const DepEngine&) = delete;

  void set_pool(util::ThreadPool* pool) { pool_ = pool; }
  util::ThreadPool* pool() const { return pool_; }

  // Registers a fresh variable (no writer yet).
  VarId new_var();
  std::size_t var_count() const { return vars_.size(); }

  // Appends an op with the given read/write sets; returns its stable id
  // (push order). A variable may appear in both sets (read-modify-write).
  OpId push(std::function<void()> fn, std::span<const VarId> reads,
            std::span<const VarId> writes);
  OpId push(std::function<void()> fn, std::initializer_list<VarId> reads,
            std::initializer_list<VarId> writes) {
    return push(std::move(fn), std::span<const VarId>(reads.begin(),
                                                      reads.size()),
                std::span<const VarId>(writes.begin(), writes.size()));
  }

  // Explicit edge: `op` must not start before `after` finished. Lets
  // callers serialize ops whose conflict is not visible through variables
  // (e.g. a shared non-reentrant resource). Cycles introduced here are
  // caught by run()'s validation.
  void add_dep(OpId op, OpId after);

  // Fired after each op's body returns (same thread as the body). This is
  // the earliest-ready hook: nn::Graph uses it to notify the async engine
  // that a node's gradients are final. Must be thread-safe under a pool.
  void set_on_complete(std::function<void(OpId)> cb) {
    on_complete_ = std::move(cb);
  }

  std::size_t op_count() const { return ops_.size(); }

  // The per-op RNG stream of the determinism contract.
  static util::Rng op_rng(const util::Rng& parent, OpId id) {
    return parent.split(id);
  }

  // Executes the whole graph once and blocks until every op completed.
  // Validates acyclicity (throws std::runtime_error on a cycle) the first
  // run after a topology change. Serial mode propagates the first op
  // exception immediately; pool mode records the first failure, skips the
  // remaining op bodies, and rethrows after the graph drained. The graph
  // stays intact for replay.
  void run();

  // Drops all ops and variables (keeps storage capacity for re-recording).
  void clear();

 private:
  struct Var {
    OpId last_writer = kNoOp;
    std::vector<OpId> readers_since_write;
  };
  struct Op {
    std::function<void()> fn;
    std::vector<OpId> deps;        // must finish before this op
    std::vector<OpId> dependents;  // released when this op finishes
  };

  void add_edge(OpId from, OpId to);  // from finishes before to starts
  void validate_acyclic();            // Kahn's algorithm; throws on cycle
  void run_serial();
  void run_pooled();
  void run_op_pooled(OpId id);
  static void op_trampoline(void* self, std::size_t id);

  util::ThreadPool* pool_ = nullptr;
  std::vector<Var> vars_;
  std::vector<Op> ops_;
  std::function<void(OpId)> on_complete_;
  bool validated_ = false;  // acyclicity proven since last topology change

  // Replay scratch, grow-only so steady-state runs allocate nothing.
  std::unique_ptr<std::atomic<std::uint32_t>[]> pending_;
  std::size_t pending_cap_ = 0;
  std::vector<std::uint32_t> serial_pending_;
  std::vector<OpId> ready_heap_;       // serial mode: min-heap on op id
  std::vector<std::uint32_t> kahn_deg_;
  std::vector<OpId> kahn_queue_;

  // Pool-mode run state.
  std::atomic<std::uint32_t> completed_{0};
  std::atomic<bool> failed_{false};
  std::exception_ptr error_;
  std::mutex error_mutex_;
};

}  // namespace cgx::core
