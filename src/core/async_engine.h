// Streaming bucketed gradient engine: overlap compressed communication
// with the backward pass.
//
// CGX's end-to-end wins (paper §4, Fig. 3) depend on communicating layers
// in reverse order as their gradients become ready, so compression and
// transfer hide behind the still-running backward compute. This facade
// adds that streaming path on top of a CgxEngine:
//
//   * A deterministic size-threshold fusion plan (BucketPlan) groups the
//     engine's compressed layers — walked in gradient PRODUCTION order,
//     i.e. reverse layout order — into buckets of ~bucket_bytes raw
//     gradient each. Filtered full-precision layers keep their fused
//     packet, which ships as one pseudo-bucket once its last gradient
//     materialises.
//   * Each rank owns comm_lanes comm threads (lanes), each fed by its own
//     lock-free single-producer/single-consumer ready queue. Submissions
//     ride the lanes of a FIXED byte-balanced lane map (build_lane_map():
//     greedy least-loaded over post-compression wire-byte estimates, a
//     pure function of the shared plan so all ranks agree) on the bucket's
//     own tag range (comm/tagspace.h, per-bucket disjointness doubles as
//     per-lane isolation), so on a latency-bound fabric independent
//     buckets drain in parallel while backward keeps producing gradients.
//   * notify_layer_ready() may be called concurrently (a DAG-scheduled
//     backward fires hooks from pool workers); a producer-side mutex
//     serialises the countdowns. With ordered_launch, completed buckets
//     are held in a release frontier and submitted in canonical plan
//     order — each lane then sees the same bucket order on every rank
//     even though per-rank completion order is nondeterministic, which is
//     what keeps blocking collectives deadlock-free under the executor.
//   * Within a lane, buckets alternate between two grow-only
//     CollectiveWorkspace arenas, so with pipelining the round-1
//     compression of the lane's next bucket (SRA's non-blocking begin
//     half) overlaps the drain of its current one.
//   * wait_all() joins the step before the optimizer runs and fills the
//     StepReport's per-phase Timing (compute / compress / comm / EXPOSED
//     comm) plus per-bucket launch/finish timestamps and the derived
//     exposed_comm_pct.
//
// Determinism: results are bit-identical between overlap=true and
// overlap=false, across ranks, across comm_lanes counts, and between
// ordered and legacy launch — because the bucket assignment is a pure
// function of layout+policy, every bucket folds in fixed rank order inside
// the collectives, and each bucket draws from its own RNG stream
// (rng.split(bucket) after one parent advance per step) — so the thread
// interleaving can only change WHEN work happens, never what it computes.
//
// Fault composition (PR 3): per-bucket round retries reuse the engine's
// recover_world protocol over the facade's own comm-thread barrier;
// pipelining is disabled when retries are on, because recovery resets
// inbound channels and would drop the next bucket's in-flight frames.
// Retries also force comm_lanes = 1: recovery's world-sized comm barrier
// assumes exactly one comm thread per rank.
#pragma once

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "util/barrier.h"

namespace cgx::core {

struct AsyncOptions {
  // Fusion threshold over RAW (FP32) gradient bytes: a bucket closes once
  // it holds at least this much. DDP-style ~4 MiB default.
  std::size_t bucket_bytes = std::size_t{4} << 20;
  // false = run every bucket inline at submission on the training thread,
  // in the exact submission order — the bit-identical synchronous
  // comparator the equivalence suite diffs against.
  bool overlap = true;
  // Start the lane's next bucket's SRA round-1 compression before its
  // current bucket finished draining (double-buffered arenas).
  // Auto-disabled when the inner engine's max_round_retries > 0 —
  // recovery resets inbound channels, which would eat the pipelined
  // bucket's frames.
  bool pipeline = true;
  // Comm threads per rank. Submissions are spread over the lanes by a
  // byte-balanced map (estimated post-compression wire bytes, not bucket
  // counts — a top-k bucket costs far less lane time than an 8-bit one);
  // with a latency-bound transport, lanes drain independent buckets in
  // parallel. Clamped to comm::kMaxCommLanes; forced to 1 when overlap is
  // off or the inner engine retries rounds. comm_lanes > 1 implies
  // ordered_launch (per-lane submission order must match across ranks).
  int comm_lanes = 1;
  // Release completed buckets to the lanes in canonical plan order
  // (bucket 0, 1, …, packet) instead of completion-arrival order. A
  // DAG-scheduled backward completes buckets in a nondeterministic
  // per-rank order; submitting in that order would deadlock blocking
  // collectives across ranks. The frontier holds a completed bucket until
  // every lower-indexed submission has been released, making each lane's
  // order an identical subsequence on every rank. Off by default: the
  // legacy submit-at-notify path is preserved bit-for-bit (fault tests
  // key on round processing order).
  bool ordered_launch = false;
};

// Deterministic fusion plan over a LayerLayout + resolved policy. Buckets
// hold layout indices in gradient-production (descending) order; filtered
// layers map to the trailing packet pseudo-bucket.
struct BucketPlan {
  struct Bucket {
    std::vector<std::size_t> layers;  // layout indices, descending
    std::size_t numel = 0;
    std::size_t raw_bytes = 0;
    int tag_base = 0;  // comm::bucket_tag_offset(index)
  };
  std::vector<Bucket> buckets;
  bool has_packet = false;
  // layer index -> bucket index; filtered layers -> packet_index().
  std::vector<std::int32_t> bucket_of;

  std::size_t packet_index() const { return buckets.size(); }
  // Buckets plus the packet: how many submissions one step makes.
  std::size_t total_submissions() const {
    return buckets.size() + (has_packet ? 1u : 0u);
  }
};

BucketPlan build_bucket_plan(const tensor::LayerLayout& layout,
                             std::span<const LayerCompression> resolved,
                             std::size_t bucket_bytes);

class AsyncGradientEngine final : public GradientEngine {
 public:
  // Takes ownership of the inner engine. Requires fuse_filtered_layers —
  // the streaming plan covers every layer either via a compressed bucket
  // or via the packet. Two-level mode (node_of set) streams too: each
  // bucket runs hierarchical_begin/finish on its own tag lane, and with
  // pipelining the NEXT bucket's intra-node fold overlaps the current
  // bucket's inter-node exchange (the leader's begin of bucket k+1 blocks
  // only on its members' non-blocking begins, which depend only on their
  // training threads — never on any finish — so the schedule cannot
  // deadlock).
  AsyncGradientEngine(std::unique_ptr<CgxEngine> inner,
                      AsyncOptions options = {});
  ~AsyncGradientEngine() override;

  // Monolithic entry (GradientEngine interface): streams all layers in
  // reverse layout order through the bucket machinery. Equivalent to
  // begin_step + notify every layer + wait_all.
  void allreduce(comm::Comm& comm, std::span<float> fused,
                 util::Rng& rng) override;
  CommPlan comm_plan(const simgpu::CostModel& cost,
                     double compress_gbps) const override;
  std::string name() const override { return "CGX-overlap"; }

  // ---- Streaming API (one step per rank) ----
  // begin_step arms the per-bucket countdowns and RNG streams; every layer
  // must then be notified exactly once. Notifications may come from any
  // thread (DAG executor hooks included) and, unless ordered_launch is
  // set, all ranks must complete buckets in the SAME order; wait_all
  // blocks until every bucket drained and rethrows the first comm-thread
  // failure. `fused` must stay valid until wait_all returns.
  void begin_step(comm::Comm& comm, std::span<float> fused, util::Rng& rng);
  void notify_layer_ready(int rank, std::size_t layer);
  void wait_all(int rank);

  // Rebuild after a policy mutation (adaptive swap). Must be called while
  // the fabric is quiesced (all ranks between wait_all and the next
  // begin_step, at a barrier). Warmed arenas and unchanged compressors
  // carry across — see CgxEngine::rebuild().
  void rebuild();

  CgxEngine& inner() { return *inner_; }
  const CgxEngine& inner() const { return *inner_; }
  const BucketPlan& plan() const { return plan_; }
  const AsyncOptions& async_options() const { return options_; }
  const tensor::LayerLayout& layout() const { return inner_->layout(); }
  int comm_lanes() const { return lanes_; }
  bool ordered_launch() const { return ordered_; }
  // Lane the byte-balanced map (DESIGN.md §5j) assigns to submission
  // `idx`; all zeros when comm_lanes == 1. Fixed until the next rebuild.
  int lane_of(std::size_t idx) const { return lane_of_[idx]; }

  // What happened to `rank`'s most recent step: bucket attempts/retries,
  // incidents, and the per-phase Timing breakdown (including per-bucket
  // launch/finish stamps). `attempts` counts bucket attempts (a clean
  // step shows one per submission).
  const StepReport& last_step_report(int rank) const;

  // Facade arenas + the inner engine's scratch; monotone after warm-up.
  std::size_t scratch_high_water_bytes() const;

 private:
  // Tokens carry the submission's plan index in the low byte and the
  // lane-local parity (arena selector) in bit 8; kStopToken shuts a comm
  // thread down.
  static constexpr std::uint32_t kStopToken = 0xffffu;

  // One comm thread + its SPSC ready queue. The producer is the rank's
  // training side (under RankState::submit_mutex), the consumer the
  // lane's comm thread; the queue is sized so a step can never wrap
  // unconsumed entries. Heap-allocated (unique_ptr) because atomics make
  // it immovable.
  struct Lane {
    std::thread thread;
    std::vector<std::uint32_t> queue;
    std::atomic<std::uint32_t> q_tail{0};  // producer-advanced
    std::atomic<std::uint32_t> q_head{0};  // consumer-advanced
    std::optional<comm::Comm> comm;  // comm-thread handle (facade barrier)
    std::uint32_t submitted = 0;  // lane-local; parity picks the arena
    double compress_s = 0.0;      // consumer-written, read after drain
    double comm_busy_s = 0.0;
    CollectiveWorkspace arenas[2];  // double-buffered bucket scratch
  };

  struct RankState {
    std::vector<std::unique_ptr<Lane>> lanes;
    std::atomic<std::uint32_t> done{0};
    std::atomic<bool> failed{false};  // first failure poisons the step
    std::exception_ptr error;         // guarded by report_mutex
    // Comm threads of different lanes mutate the shared report
    // (attempts / retries / incidents / ok) concurrently.
    std::mutex report_mutex;
    // Serialises notify/release/submit — the producers under a DAG
    // executor are pool workers, not one training thread.
    std::mutex submit_mutex;
    comm::Comm* inline_comm = nullptr;  // training-thread handle

    // Per-step streaming state (written under submit_mutex).
    std::span<float> fused;
    std::vector<util::Rng> bucket_rngs;
    std::vector<std::uint32_t> remaining;  // per-bucket layer countdown
    std::vector<std::uint8_t> complete;    // ordered_launch frontier marks
    std::uint32_t release_cursor = 0;      // next plan index to release
    std::uint32_t submitted = 0;
    std::uint32_t notified = 0;
    std::chrono::steady_clock::time_point t_begin;
    std::chrono::steady_clock::time_point t_last_submit;

    // Comm-path state. begun[b] is raced-free without the mutex because
    // bucket b always rides the one lane lane_of_[b] names. rounds keys
    // the fault injector and is monotone across steps (never reset).
    std::vector<std::uint8_t> begun;  // bucket began early (pipelining)
    std::atomic<std::uint64_t> rounds{0};
    CollectiveWorkspace packet_ws;
    StepReport report;
  };

  void submit_locked(RankState& st, std::uint32_t idx);
  void process_token(RankState& st, Lane& lane, comm::Comm& comm,
                     std::uint32_t token);
  void run_compressed(RankState& st, Lane& lane, comm::Comm& comm,
                      std::size_t bucket, CollectiveWorkspace& ws);
  void run_packet(RankState& st, comm::Comm& comm);
  void try_begin_next(RankState& st, Lane& lane, comm::Comm& comm);
  void begin_bucket_timed(RankState& st, Lane& lane, comm::Comm& comm,
                          std::size_t bucket, CollectiveWorkspace& ws);
  void comm_thread_main(int rank, int lane_id);
  void resize_rank_state();
  void build_lane_map();

  std::unique_ptr<CgxEngine> inner_;
  AsyncOptions options_;
  BucketPlan plan_;
  // Submission plan index -> lane id: greedy byte-balanced, rebuilt with
  // the plan. All zeros when lanes_ == 1 (bit-identical legacy path).
  std::vector<int> lane_of_;
  bool pipeline_enabled_ = false;
  int lanes_ = 1;        // resolved comm_lanes (clamped / forced to 1)
  bool ordered_ = false; // resolved ordered_launch (implied by lanes_ > 1)
  util::Barrier comm_barrier_;  // world-sized, comm threads only
  std::vector<RankState> ranks_;
};

}  // namespace cgx::core
