// Streaming bucketed gradient engine: overlap compressed communication
// with the backward pass.
//
// CGX's end-to-end wins (paper §4, Fig. 3) depend on communicating layers
// in reverse order as their gradients become ready, so compression and
// transfer hide behind the still-running backward compute. This facade
// adds that streaming path on top of a CgxEngine:
//
//   * A deterministic size-threshold fusion plan (BucketPlan) groups the
//     engine's compressed layers — walked in gradient PRODUCTION order,
//     i.e. reverse layout order — into buckets of ~bucket_bytes raw
//     gradient each. Filtered full-precision layers keep their fused
//     packet, which ships as one pseudo-bucket once its last gradient
//     materialises.
//   * Each rank owns a dedicated comm thread fed by a lock-free
//     single-producer/single-consumer ready queue. The training thread
//     calls notify_layer_ready() from the backward hooks; when a bucket's
//     last layer arrives it is submitted, and the comm thread runs the
//     compressed collective on the bucket's own tag range
//     (comm/tagspace.h) while backward keeps producing gradients.
//   * Buckets alternate between two grow-only CollectiveWorkspace arenas,
//     so with pipelining the round-1 compression of bucket k+1 (SRA's
//     non-blocking begin half) overlaps the drain of bucket k.
//   * wait_all() joins the step before the optimizer runs and fills the
//     StepReport's per-phase Timing (compute / compress / comm / EXPOSED
//     comm — the part that ended up on the critical path).
//
// Determinism: results are bit-identical between overlap=true and
// overlap=false (and across ranks) because the bucket assignment is a pure
// function of layout+policy, every bucket folds in fixed rank order inside
// the collectives, and each bucket draws from its own RNG stream
// (rng.split(bucket) after one parent advance per step) — so the thread
// interleaving can only change WHEN work happens, never what it computes.
//
// Fault composition (PR 3): per-bucket round retries reuse the engine's
// recover_world protocol over the facade's own comm-thread barrier;
// pipelining is disabled when retries are on, because recovery resets
// inbound channels and would drop the next bucket's in-flight frames.
#pragma once

#include <atomic>
#include <chrono>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "util/barrier.h"

namespace cgx::core {

struct AsyncOptions {
  // Fusion threshold over RAW (FP32) gradient bytes: a bucket closes once
  // it holds at least this much. DDP-style ~4 MiB default.
  std::size_t bucket_bytes = std::size_t{4} << 20;
  // false = run every bucket inline at submission on the training thread,
  // in the exact submission order — the bit-identical synchronous
  // comparator the equivalence suite diffs against.
  bool overlap = true;
  // Start bucket k+1's SRA round-1 compression before bucket k finished
  // draining (double-buffered arenas). Auto-disabled when the inner
  // engine's max_round_retries > 0 — recovery resets inbound channels,
  // which would eat the pipelined bucket's frames.
  bool pipeline = true;
};

// Deterministic fusion plan over a LayerLayout + resolved policy. Buckets
// hold layout indices in gradient-production (descending) order; filtered
// layers map to the trailing packet pseudo-bucket.
struct BucketPlan {
  struct Bucket {
    std::vector<std::size_t> layers;  // layout indices, descending
    std::size_t numel = 0;
    std::size_t raw_bytes = 0;
    int tag_base = 0;  // comm::bucket_tag_offset(index)
  };
  std::vector<Bucket> buckets;
  bool has_packet = false;
  // layer index -> bucket index; filtered layers -> packet_index().
  std::vector<std::int32_t> bucket_of;

  std::size_t packet_index() const { return buckets.size(); }
  // Buckets plus the packet: how many submissions one step makes.
  std::size_t total_submissions() const {
    return buckets.size() + (has_packet ? 1u : 0u);
  }
};

BucketPlan build_bucket_plan(const tensor::LayerLayout& layout,
                             std::span<const LayerCompression> resolved,
                             std::size_t bucket_bytes);

class AsyncGradientEngine final : public GradientEngine {
 public:
  // Takes ownership of the inner engine. Requires fuse_filtered_layers —
  // the streaming plan covers every layer either via a compressed bucket
  // or via the packet. Two-level mode (node_of set) streams too: each
  // bucket runs hierarchical_begin/finish on its own tag lane, and with
  // pipelining the NEXT bucket's intra-node fold overlaps the current
  // bucket's inter-node exchange (the leader's begin of bucket k+1 blocks
  // only on its members' non-blocking begins, which depend only on their
  // training threads — never on any finish — so the schedule cannot
  // deadlock).
  AsyncGradientEngine(std::unique_ptr<CgxEngine> inner,
                      AsyncOptions options = {});
  ~AsyncGradientEngine() override;

  // Monolithic entry (GradientEngine interface): streams all layers in
  // reverse layout order through the bucket machinery. Equivalent to
  // begin_step + notify every layer + wait_all.
  void allreduce(comm::Comm& comm, std::span<float> fused,
                 util::Rng& rng) override;
  CommPlan comm_plan(const simgpu::CostModel& cost,
                     double compress_gbps) const override;
  std::string name() const override { return "CGX-overlap"; }

  // ---- Streaming API (one step per rank) ----
  // begin_step arms the per-bucket countdowns and RNG streams; every layer
  // must then be notified exactly once (any order, but all ranks must use
  // the SAME order); wait_all blocks until every bucket drained and
  // rethrows the first comm-thread failure. `fused` must stay valid until
  // wait_all returns.
  void begin_step(comm::Comm& comm, std::span<float> fused, util::Rng& rng);
  void notify_layer_ready(int rank, std::size_t layer);
  void wait_all(int rank);

  // Rebuild after a policy mutation (adaptive swap). Must be called while
  // the fabric is quiesced (all ranks between wait_all and the next
  // begin_step, at a barrier). Warmed arenas and unchanged compressors
  // carry across — see CgxEngine::rebuild().
  void rebuild();

  CgxEngine& inner() { return *inner_; }
  const CgxEngine& inner() const { return *inner_; }
  const BucketPlan& plan() const { return plan_; }
  const AsyncOptions& async_options() const { return options_; }
  const tensor::LayerLayout& layout() const { return inner_->layout(); }

  // What happened to `rank`'s most recent step: bucket attempts/retries,
  // incidents, and the per-phase Timing breakdown. `attempts` counts
  // bucket attempts (a clean step shows one per submission).
  const StepReport& last_step_report(int rank) const;

  // Facade arenas + the inner engine's scratch; monotone after warm-up.
  std::size_t scratch_high_water_bytes() const;

 private:
  // Tokens carry the bucket id in the low byte and the submission parity
  // (arena selector) in bit 8; kStopToken shuts a comm thread down.
  static constexpr std::uint32_t kStopToken = 0xffffu;

  struct RankState {
    // Comm thread + SPSC ready queue (overlap mode). The producer is the
    // rank's training thread, the consumer its comm thread; the queue is
    // sized so a step can never wrap unconsumed entries.
    std::thread thread;
    std::vector<std::uint32_t> queue;
    std::atomic<std::uint32_t> q_tail{0};  // producer-advanced
    std::atomic<std::uint32_t> q_head{0};  // consumer-advanced
    std::atomic<std::uint32_t> done{0};
    std::optional<comm::Comm> comm;  // comm-thread handle (facade barrier)
    comm::Comm* inline_comm = nullptr;  // training-thread handle
    std::exception_ptr error;  // first failure; synced via `done`

    // Per-step streaming state (training-thread written).
    std::span<float> fused;
    std::vector<util::Rng> bucket_rngs;
    std::vector<std::uint32_t> remaining;  // per-bucket layer countdown
    std::uint32_t submitted = 0;
    std::uint32_t notified = 0;
    std::chrono::steady_clock::time_point t_begin;
    std::chrono::steady_clock::time_point t_last_submit;

    // Comm-path state (consumer-side in overlap mode).
    std::vector<std::uint8_t> begun;  // bucket began early (pipelining)
    std::uint64_t rounds = 0;         // bucket-round counter (fault keying)
    double compress_s = 0.0;
    double comm_busy_s = 0.0;
    CollectiveWorkspace arenas[2];  // double-buffered bucket scratch
    CollectiveWorkspace packet_ws;
    StepReport report;
  };

  void submit(RankState& st, std::uint32_t bucket);
  void process_token(RankState& st, comm::Comm& comm, std::uint32_t token);
  void run_compressed(RankState& st, comm::Comm& comm, std::size_t bucket,
                      CollectiveWorkspace& ws);
  void run_packet(RankState& st, comm::Comm& comm);
  void try_begin_next(RankState& st, comm::Comm& comm);
  void begin_bucket_timed(RankState& st, comm::Comm& comm,
                          std::size_t bucket, CollectiveWorkspace& ws);
  void comm_thread_main(int rank);
  void resize_rank_state();

  std::unique_ptr<CgxEngine> inner_;
  AsyncOptions options_;
  BucketPlan plan_;
  bool pipeline_enabled_ = false;
  util::Barrier comm_barrier_;  // world-sized, comm threads only
  std::vector<RankState> ranks_;
};

}  // namespace cgx::core
