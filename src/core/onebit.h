// 1-bit SGD (Seide et al. 2014; paper §2.3).
//
// Each bucket transmits one bit per element (the sign) plus the mean of the
// positive and the mean of the negative components; reconstruction maps each
// sign to the corresponding mean. The operator is strongly biased and is
// only usable under error feedback, which is how the original paper ran it.
// Wire: [mean_neg fp32, mean_pos fp32] per bucket + 1 bit per element.
#pragma once

#include <vector>

#include "core/compressor.h"

namespace cgx::core {

class OneBitCompressor final : public Compressor {
 public:
  explicit OneBitCompressor(std::size_t bucket_size = 512);

  std::size_t compressed_size(std::size_t n) const override;
  std::size_t compress(std::span<const float> in, std::span<std::byte> out,
                       util::Rng& rng) override;
  void decompress(std::span<const std::byte> in,
                  std::span<float> out) override;
  std::string name() const override;
  std::size_t scratch_bytes() const override;

 private:
  std::size_t bucket_size_;
  std::vector<std::uint32_t> symbol_scratch_;
};

}  // namespace cgx::core
