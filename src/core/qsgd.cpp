#include "core/qsgd.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>

#include "core/workspace.h"
#include "tensor/tensor_ops.h"
#include "util/bitio.h"
#include "util/check.h"
#include "util/simd.h"
#include "util/threadpool.h"

namespace cgx::core {

QsgdCompressor::QsgdCompressor(unsigned bits, std::size_t bucket_size,
                               QsgdNorm norm)
    : bits_(bits), bucket_size_(bucket_size), norm_(norm) {
  CGX_CHECK(bits >= 2 && bits <= 16) << "qsgd bits out of range";
  CGX_CHECK_GT(bucket_size, 0u);
}

std::size_t QsgdCompressor::compressed_size(std::size_t n) const {
  if (n == 0) return 0;
  const std::size_t buckets = (n + bucket_size_ - 1) / bucket_size_;
  return 4 * buckets + util::packed_size_bytes(n, bits_);
}

void QsgdCompressor::enable_threading(util::ThreadPool* pool,
                                      std::size_t min_numel) {
  pool_ = pool;
  threading_min_numel_ = min_numel;
}

std::size_t QsgdCompressor::scratch_bytes() const {
  return symbol_scratch_.capacity() * sizeof(std::uint32_t) +
         rand_scratch_.capacity() * sizeof(float);
}

bool QsgdCompressor::use_pool(std::size_t n, std::size_t buckets) const {
  return pool_ != nullptr && pool_->size() > 1 && buckets > 1 &&
         n >= threading_min_numel_;
}

std::size_t QsgdCompressor::compress(std::span<const float> in,
                                     std::span<std::byte> out,
                                     util::Rng& rng) {
  const std::size_t n = in.size();
  if (n == 0) return 0;
  const std::size_t total = compressed_size(n);
  CGX_CHECK_LE(total, out.size());
  const std::size_t buckets = (n + bucket_size_ - 1) / bucket_size_;
  auto* norms = reinterpret_cast<float*>(out.data());
  const std::span<std::uint32_t> symbols = ensure_span(symbol_scratch_, n);
  const std::span<float> rand = ensure_span(rand_scratch_, n);

  const std::uint32_t s = (1u << (bits_ - 1)) - 1;  // magnitude levels
  const std::uint32_t sign_bit = 1u << (bits_ - 1);

  // One draw off the caller's stream seeds every per-bucket stream, so the
  // caller's RNG advances identically — and the payload is bit-identical —
  // whether buckets run serially or across the pool.
  const util::Rng streams(rng.next_u64());

  auto quantize_bucket = [&](std::size_t b) {
    const std::size_t first = b * bucket_size_;
    const std::size_t len = std::min(bucket_size_, n - first);
    const std::span<const float> bucket = in.subspan(first, len);
    const float norm = norm_ == QsgdNorm::L2
                           ? static_cast<float>(tensor::l2_norm(bucket))
                           : tensor::linf_norm(bucket);
    norms[b] = norm;
    std::uint32_t* sym = symbols.data() + first;
    if (norm == 0.0f || !std::isfinite(norm)) {
      // All-zero bucket (or non-finite, reconstructed as zero): emit zero
      // symbols so the payload stays self-describing.
      std::memset(sym, 0, len * sizeof(std::uint32_t));
      return;
    }
    util::Rng bucket_rng = streams.split(b);
    const std::span<float> u = rand.subspan(first, len);
    bucket_rng.fill_floats(u);
    const float inv_norm = 1.0f / norm;
    // Branchless stochastic rounding, floor(scaled + u): see the kernel doc
    // in util/simd.h. Dispatches to the active SIMD level; every level is
    // bit-identical to the scalar reference, so the payload does not depend
    // on the host CPU or CGX_SIMD.
    util::simd::qsgd_quantize(in.data() + first, u.data(), len, inv_norm, s,
                              sign_bit, sym);
  };

  const std::span<std::byte> payload =
      out.subspan(4 * buckets, total - 4 * buckets);
  if (use_pool(n, buckets)) {
    pool_->parallel_for(buckets, quantize_bucket);
    // Pack in parallel too: chunks aligned to word cycles touch disjoint
    // 64-bit words of the payload.
    const std::size_t cycle = util::symbols_per_word_cycle(bits_);
    const std::size_t per =
        ((n + pool_->size() - 1) / pool_->size() + cycle - 1) / cycle * cycle;
    const std::size_t chunks = (n + per - 1) / per;
    pool_->parallel_for(chunks, [&](std::size_t c) {
      const std::size_t first = c * per;
      const std::size_t len = std::min(per, n - first);
      util::pack_symbols_at({symbols.data() + first, len}, first, bits_,
                            payload);
    });
  } else {
    for (std::size_t b = 0; b < buckets; ++b) quantize_bucket(b);
    util::pack_symbols(symbols, bits_, payload);
  }
  return total;
}

void QsgdCompressor::decompress(std::span<const std::byte> in,
                                std::span<float> out) {
  const std::size_t n = out.size();
  if (n == 0) return;
  CGX_CHECK_EQ(in.size(), compressed_size(n));
  const std::size_t buckets = (n + bucket_size_ - 1) / bucket_size_;
  const auto* norms = reinterpret_cast<const float*>(in.data());
  const std::span<std::uint32_t> symbols = ensure_span(symbol_scratch_, n);
  const std::span<const std::byte> payload = in.subspan(4 * buckets);

  const std::uint32_t s = (1u << (bits_ - 1)) - 1;
  const std::uint32_t sign_bit = 1u << (bits_ - 1);

  // sign_bit sits at bit (bits_ - 1); the kernel shifts it up to the float
  // sign position and ORs it in (util/simd.h).
  const unsigned sign_shift = 32 - bits_;
  auto dequantize_bucket = [&](std::size_t b) {
    const std::size_t first = b * bucket_size_;
    const std::size_t len = std::min(bucket_size_, n - first);
    const float norm = std::isfinite(norms[b]) ? norms[b] : 0.0f;
    const float scale = s > 0 ? norm / static_cast<float>(s) : 0.0f;
    util::simd::qsgd_dequantize(symbols.data() + first, len, scale, sign_bit,
                                sign_shift, out.data() + first);
  };

  if (use_pool(n, buckets)) {
    const std::size_t cycle = util::symbols_per_word_cycle(bits_);
    const std::size_t per =
        ((n + pool_->size() - 1) / pool_->size() + cycle - 1) / cycle * cycle;
    const std::size_t chunks = (n + per - 1) / per;
    pool_->parallel_for(chunks, [&](std::size_t c) {
      const std::size_t first = c * per;
      const std::size_t len = std::min(per, n - first);
      util::unpack_symbols_at(payload, first, bits_,
                              {symbols.data() + first, len});
    });
    pool_->parallel_for(buckets, dequantize_bucket);
  } else {
    util::unpack_symbols(payload, bits_, symbols);
    for (std::size_t b = 0; b < buckets; ++b) dequantize_bucket(b);
  }
}

std::string QsgdCompressor::name() const {
  return "qsgd(b=" + std::to_string(bits_) +
         ",bucket=" + std::to_string(bucket_size_) + ")";
}

double QsgdCompressor::variance_bound(std::size_t d, unsigned bits) {
  CGX_CHECK_GE(bits, 2u);
  const double s = static_cast<double>((1u << (bits - 1)) - 1);
  const double dd = static_cast<double>(d);
  return std::min(dd / (s * s), std::sqrt(dd) / s);
}

}  // namespace cgx::core
