#include "core/qsgd.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "tensor/tensor_ops.h"
#include "util/bitio.h"
#include "util/check.h"

namespace cgx::core {

QsgdCompressor::QsgdCompressor(unsigned bits, std::size_t bucket_size,
                               QsgdNorm norm)
    : bits_(bits), bucket_size_(bucket_size), norm_(norm) {
  CGX_CHECK(bits >= 2 && bits <= 16) << "qsgd bits out of range";
  CGX_CHECK_GT(bucket_size, 0u);
}

std::size_t QsgdCompressor::compressed_size(std::size_t n) const {
  if (n == 0) return 0;
  const std::size_t buckets = (n + bucket_size_ - 1) / bucket_size_;
  return 4 * buckets + util::packed_size_bytes(n, bits_);
}

std::size_t QsgdCompressor::compress(std::span<const float> in,
                                     std::span<std::byte> out,
                                     util::Rng& rng) {
  const std::size_t n = in.size();
  if (n == 0) return 0;
  const std::size_t total = compressed_size(n);
  CGX_CHECK_LE(total, out.size());
  const std::size_t buckets = (n + bucket_size_ - 1) / bucket_size_;
  auto* norms = reinterpret_cast<float*>(out.data());
  util::BitWriter writer(out.subspan(4 * buckets, total - 4 * buckets),
                         bits_);

  const std::uint32_t s = (1u << (bits_ - 1)) - 1;  // magnitude levels
  const std::uint32_t sign_bit = 1u << (bits_ - 1);

  for (std::size_t b = 0; b < buckets; ++b) {
    const std::size_t first = b * bucket_size_;
    const std::size_t len = std::min(bucket_size_, n - first);
    const std::span<const float> bucket = in.subspan(first, len);
    const float norm = norm_ == QsgdNorm::L2
                           ? static_cast<float>(tensor::l2_norm(bucket))
                           : tensor::linf_norm(bucket);
    norms[b] = norm;
    if (norm == 0.0f || !std::isfinite(norm)) {
      // All-zero bucket (or non-finite, reconstructed as zero): emit zero
      // symbols so the payload stays self-describing.
      for (std::size_t i = 0; i < len; ++i) writer.write(0);
      continue;
    }
    for (float v : bucket) {
      const float a = std::fabs(v) / norm;  // in [0, 1] for both norms
      const float scaled = std::min(a, 1.0f) * static_cast<float>(s);
      std::uint32_t level = static_cast<std::uint32_t>(scaled);
      const float p = scaled - static_cast<float>(level);
      if (rng.next_float() < p) ++level;
      level = std::min(level, s);
      std::uint32_t symbol = level;
      if (std::signbit(v)) symbol |= sign_bit;
      writer.write(symbol);
    }
  }
  writer.finish();
  return total;
}

void QsgdCompressor::decompress(std::span<const std::byte> in,
                                std::span<float> out) {
  const std::size_t n = out.size();
  if (n == 0) return;
  CGX_CHECK_EQ(in.size(), compressed_size(n));
  const std::size_t buckets = (n + bucket_size_ - 1) / bucket_size_;
  const auto* norms = reinterpret_cast<const float*>(in.data());
  util::BitReader reader(in.subspan(4 * buckets), bits_);

  const std::uint32_t s = (1u << (bits_ - 1)) - 1;
  const std::uint32_t sign_bit = 1u << (bits_ - 1);
  const std::uint32_t level_mask = sign_bit - 1;

  for (std::size_t b = 0; b < buckets; ++b) {
    const std::size_t first = b * bucket_size_;
    const std::size_t len = std::min(bucket_size_, n - first);
    const float norm = std::isfinite(norms[b]) ? norms[b] : 0.0f;
    const float scale = s > 0 ? norm / static_cast<float>(s) : 0.0f;
    for (std::size_t i = 0; i < len; ++i) {
      const auto symbol = static_cast<std::uint32_t>(reader.read());
      const float magnitude =
          static_cast<float>(symbol & level_mask) * scale;
      out[first + i] = (symbol & sign_bit) ? -magnitude : magnitude;
    }
  }
}

std::string QsgdCompressor::name() const {
  return "qsgd(b=" + std::to_string(bits_) +
         ",bucket=" + std::to_string(bucket_size_) + ")";
}

double QsgdCompressor::variance_bound(std::size_t d, unsigned bits) {
  CGX_CHECK_GE(bits, 2u);
  const double s = static_cast<double>((1u << (bits - 1)) - 1);
  const double dd = static_cast<double>(d);
  return std::min(dd / (s * s), std::sqrt(dd) / s);
}

}  // namespace cgx::core
