// Compression-aware allreduce.
//
// Compression operators are non-associative (paper §3): a stock collective
// cannot sum compressed payloads, so the reduction algorithm and the
// operator must be co-designed. These collectives decompress, accumulate in
// full precision, and recompress only where the algorithm requires it:
//
//   SRA  — exactly TWO compression rounds end-to-end (each gradient chunk
//          is compressed once on the way to its aggregating rank, and the
//          reduced chunk once on the way back). This is why CGX defaults to
//          SRA (§6.2 "Reduction Algorithms": lowest compression error).
//   Ring — the partial sum is re-compressed at every one of the N-1 reduce
//          hops: error grows with world size.
//   Tree — partial sums are re-compressed at each of the log N levels.
//
// Determinism/consistency invariant: ALL ranks finish with bit-identical
// buffers. Aggregating ranks therefore decompress their *own* compressed
// payload rather than keeping the higher-precision local sum.
//
// Stateful operators: `chunk_compressors` supplies one compressor per chunk
// index; chunk j of this rank's traffic always goes through compressor j,
// so error-feedback residuals and PowerSGD warm starts attach to a stable
// data region across iterations. (Tree operates on whole vectors and uses
// compressor 0.)
#pragma once

#include <span>

#include "comm/collectives.h"
#include "core/compressor.h"
#include "core/workspace.h"

namespace cgx::core {

// Sum-allreduce `data` across the world. chunk_compressors.size() must be
// comm.size(); every rank passes its own instances (same configuration on
// all ranks). `ws` is the rank's scratch arena: all payload and
// accumulation buffers come out of it, so a warmed-up workspace makes the
// whole call allocation-free.
//
// `tag_base` shifts every tag the collective uses (comm/tagspace.h): the
// bucketed streaming engine gives each fusion bucket a disjoint tag range
// so several collectives can be in flight on the fabric at once. 0 (the
// default) is the legacy monolithic range.
void compressed_allreduce(comm::Comm& comm, std::span<float> data,
                          std::span<Compressor* const> chunk_compressors,
                          util::Rng& rng, comm::ReductionScheme scheme,
                          CollectiveWorkspace& ws, int tag_base = 0);

void compressed_allreduce_sra(comm::Comm& comm, std::span<float> data,
                              std::span<Compressor* const> chunk_compressors,
                              util::Rng& rng, CollectiveWorkspace& ws,
                              int tag_base = 0);
void compressed_allreduce_ring(comm::Comm& comm, std::span<float> data,
                               std::span<Compressor* const> chunk_compressors,
                               util::Rng& rng, CollectiveWorkspace& ws,
                               int tag_base = 0);
void compressed_allreduce_tree(comm::Comm& comm, std::span<float> data,
                               std::span<Compressor* const> chunk_compressors,
                               util::Rng& rng, CollectiveWorkspace& ws,
                               int tag_base = 0);

// The SRA collective split at its natural pipeline boundary, for the
// streaming engine's compression/transfer overlap:
//
//   begin — round 1 only: compress each remote chunk once and ship it to
//           its aggregating rank. Sends are buffered, so this returns
//           without waiting on any peer — it is pure local compression
//           plus channel pushes, and can run while the previous bucket's
//           finish is still draining the fabric.
//   finish — drain round-1 contributions (arrival order, fixed-rank-order
//           folds), then round 2: compress the reduced chunk, broadcast,
//           decompress. Blocks on peers.
//
// begin(b) followed by finish(b) is bit-identical to
// compressed_allreduce_sra(b): same compressor calls in the same order on
// the same RNG stream. The two halves must see the same arguments, and no
// other traffic may use this tag range in between.
void compressed_sra_begin(comm::Comm& comm, std::span<float> data,
                          std::span<Compressor* const> chunk_compressors,
                          util::Rng& rng, CollectiveWorkspace& ws,
                          int tag_base = 0);
void compressed_sra_finish(comm::Comm& comm, std::span<float> data,
                           std::span<Compressor* const> chunk_compressors,
                           util::Rng& rng, CollectiveWorkspace& ws,
                           int tag_base = 0);

// Back-compat convenience overloads: identical semantics, but each call
// heap-allocates a transient workspace. Fine for tests and one-shot
// benchmarks; the engines keep a per-rank workspace instead.
void compressed_allreduce(comm::Comm& comm, std::span<float> data,
                          std::span<Compressor* const> chunk_compressors,
                          util::Rng& rng, comm::ReductionScheme scheme);
void compressed_allreduce_sra(comm::Comm& comm, std::span<float> data,
                              std::span<Compressor* const> chunk_compressors,
                              util::Rng& rng);
void compressed_allreduce_ring(comm::Comm& comm, std::span<float> data,
                               std::span<Compressor* const> chunk_compressors,
                               util::Rng& rng);
void compressed_allreduce_tree(comm::Comm& comm, std::span<float> data,
                               std::span<Compressor* const> chunk_compressors,
                               util::Rng& rng);

}  // namespace cgx::core
