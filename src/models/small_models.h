// Real trainable models for the accuracy / convergence experiments.
//
// These are small-scale analogues of the paper's workloads — small enough
// to train to convergence on CPU within a test/bench run, but structurally
// faithful: the CNNs have conv+bias+norm layer mixes, the Transformers
// have the embedding-heavy, heterogeneous layer-size profile §5's adaptive
// compression exploits.
#pragma once

#include <memory>

#include "nn/attention.h"
#include "nn/conv.h"
#include "nn/graph.h"
#include "nn/sequential.h"

namespace cgx::models {

// MLP classifier for the quickstart: in -> hidden -> hidden -> classes.
std::unique_ptr<nn::Module> make_mlp(std::size_t in, std::size_t hidden,
                                     std::size_t classes, util::Rng& rng);

// Branchy models (nn::Graph): the DAG-executor workloads. Their backward
// passes have genuinely independent branches, so a DepEngine pool can
// differentiate both towers concurrently and gradients complete in a
// nondeterministic per-rank order — exactly what the engine's
// ordered-launch frontier exists for.

// Two-tower MLP: shared stem, two independent Linear/ReLU towers whose
// outputs SUM at the classifier head (Graph fan-in join).
std::unique_ptr<nn::Graph> make_two_tower(std::size_t in, std::size_t hidden,
                                          std::size_t classes,
                                          util::Rng& rng);

// ResNet-style skip-join CNN: conv stem, a two-conv residual branch whose
// output rejoins the stem activation (fan-out at the stem, fan-in sum at
// the join ReLU), then pool/GAP/classifier. Input [B, channels, hw, hw].
std::unique_ptr<nn::Graph> make_skipjoin_cnn(std::size_t channels,
                                             std::size_t hw,
                                             std::size_t classes,
                                             util::Rng& rng);

// Small CNN ("ResNet-for-ants"): conv/relu/pool x2 -> conv -> GAP -> fc.
// Input [B, channels, hw, hw].
std::unique_ptr<nn::Module> make_small_cnn(std::size_t channels,
                                           std::size_t hw,
                                           std::size_t classes,
                                           util::Rng& rng);

// VGG-flavoured deeper CNN (for the Fig. 9 style CNN benchmarks).
std::unique_ptr<nn::Module> make_vgg_mini(std::size_t channels,
                                          std::size_t hw, std::size_t classes,
                                          util::Rng& rng);

// Residual block: conv-bn-relu-conv-bn (+ 1x1 downsample when the channel
// count changes) with a skip connection — the ResNet building block, so
// the "ResNet50 stand-in" actually carries the conv/bn/bias layer mix the
// CGX filters operate on.
class ResidualBlock final : public nn::Module {
 public:
  ResidualBlock(std::size_t in_channels, std::size_t out_channels,
                util::Rng& rng);

  const tensor::Tensor& forward(const tensor::Tensor& x, bool train) override;
  const tensor::Tensor& backward(const tensor::Tensor& grad_out) override;
  void collect_params(const std::string& prefix,
                      std::vector<nn::Param*>& out) override;
  std::string kind() const override { return "resblock"; }

 private:
  nn::Conv2d conv1_;
  nn::BatchNorm2d bn1_;
  nn::ReLU relu1_;
  nn::Conv2d conv2_;
  nn::BatchNorm2d bn2_;
  std::unique_ptr<nn::Conv2d> downsample_;  // when channels change
  nn::ReLU relu_out_;
  tensor::Tensor skip_;
  tensor::Tensor output_;
  tensor::Tensor grad_in_;
};

// ResNet-for-ants: conv-bn stem, two residual stages, GAP, classifier.
std::unique_ptr<nn::Module> make_resnet_mini(std::size_t channels,
                                             std::size_t hw,
                                             std::size_t classes,
                                             util::Rng& rng);

// Decoder-only causal LM: token+position embeddings, pre-LN blocks, head.
// Input [B, T] of token ids; output [B, T, vocab].
class TinyTransformerLM final : public nn::Module {
 public:
  TinyTransformerLM(std::size_t vocab, std::size_t dim, std::size_t heads,
                    std::size_t blocks, std::size_t max_seq, util::Rng& rng);

  const tensor::Tensor& forward(const tensor::Tensor& x, bool train) override;
  const tensor::Tensor& backward(const tensor::Tensor& grad_out) override;
  void collect_params(const std::string& prefix,
                      std::vector<nn::Param*>& out) override;
  std::string kind() const override { return "tiny_txl"; }

 private:
  std::size_t dim_, max_seq_;
  nn::Embedding tok_;
  nn::Param pos_;
  std::vector<std::unique_ptr<nn::TransformerBlock>> blocks_;
  nn::LayerNorm ln_f_;
  nn::Linear head_;
  std::size_t batch_ = 0, seq_ = 0;
  tensor::Tensor embedded_;
  tensor::Tensor grad_in_;
};

// Bidirectional encoder with a 2-logit span head ("TinyBERT-QA").
// Input [B, T] tokens; output [B, T, 2] start/end logits.
class TinyBertQa final : public nn::Module {
 public:
  TinyBertQa(std::size_t vocab, std::size_t dim, std::size_t heads,
             std::size_t blocks, std::size_t max_seq, util::Rng& rng);

  const tensor::Tensor& forward(const tensor::Tensor& x, bool train) override;
  const tensor::Tensor& backward(const tensor::Tensor& grad_out) override;
  void collect_params(const std::string& prefix,
                      std::vector<nn::Param*>& out) override;
  std::string kind() const override { return "tiny_bert"; }

 private:
  std::size_t dim_, max_seq_;
  nn::Embedding tok_;
  nn::Param pos_;
  std::vector<std::unique_ptr<nn::TransformerBlock>> blocks_;
  nn::LayerNorm ln_f_;
  nn::Linear head_;
  std::size_t batch_ = 0, seq_ = 0;
  tensor::Tensor grad_in_;
};

}  // namespace cgx::models
