// Layer profiles of the paper's evaluation models, plus the calibration
// constants that anchor the performance model to the paper's own
// measurements.
//
// The profiles are generated programmatically to match the real
// architectures' parameter layouts: layer names, shapes, counts and order
// (layout order = model order; gradients materialise in REVERSE of it
// during backward). Parameter totals land within ~2% of the canonical
// numbers (ResNet50 25.6M, VGG16 138M, ViT-B/16 86M, BERT-base 110M,
// GPT-2-small 124M, Transformer-XL-base ~190M with its 267k-token
// embedding).
//
// Single-GPU throughputs come from Table 1 and §6 of the paper (see the
// per-model notes in paper_profiles.cpp); batch sizes from Appendix C.
// EXPERIMENTS.md records where each constant came from.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/engine.h"
#include "simgpu/machines.h"
#include "simgpu/timeline.h"
#include "tensor/layer_layout.h"

namespace cgx::models {

enum class LayerKind { Conv, Linear, Attention, Embedding, Norm, Bias };

struct PaperModel {
  std::string name;
  std::string task;       // dataset, for table labels
  std::string item_unit;  // "imgs" or "tokens"
  tensor::LayerLayout layout;
  std::vector<LayerKind> layer_kinds;  // aligned with layout
  double items_per_step_per_gpu = 0.0;
  bool fp16_wire = false;  // mixed-precision gradient encoding (App. C)
  // Single-GPU training throughput in items/s under the paper's recipe.
  std::map<simgpu::GpuKind, double> throughput;
  // FP32 throughput as a fraction of the above (Table 6 runs at FP32).
  double fp32_factor = 1.0;

  double single_gpu_items_per_s(simgpu::GpuKind gpu, bool fp32 = false) const;
  double step_seconds_1gpu(simgpu::GpuKind gpu, bool fp32 = false) const;
  std::size_t param_count() const { return layout.total_numel(); }

  // Per-layer backward compute time, layout order. Derived from a
  // flops-per-parameter weighting by layer kind (convs are compute-dense,
  // embeddings nearly free), normalised so forward+backward equals the
  // calibrated step time.
  std::vector<double> backward_seconds(simgpu::GpuKind gpu,
                                       bool fp32 = false) const;
  double forward_seconds(simgpu::GpuKind gpu, bool fp32 = false) const;
};

PaperModel resnet50();
PaperModel vgg16();
PaperModel vit_base();
PaperModel transformer_xl_base();
PaperModel bert_base();
PaperModel gpt2_small();

// Synthetic BRANCHY profiles for the DAG-executor experiments
// (bench_dag_overlap). Layer names carry branch prefixes ("stem.",
// "t0.", "t1.", "head." / "branch.", "skip.") so a harness can partition
// the layout into independent backward chains by prefix. Not part of
// all_paper_models(): their throughputs are plausible synthetics, not
// paper-calibrated measurements.
PaperModel two_tower_net();
PaperModel skipjoin_net();

std::vector<PaperModel> all_paper_models();

// Glue: builds the discrete-event step spec for `model` running on
// `gpu`-class devices with the given communication plan (the plan's
// per-layer costs are in LAYOUT order; the spec wants backward order).
simgpu::StepSpec build_step_spec(const PaperModel& model,
                                 simgpu::GpuKind gpu,
                                 const core::CommPlan& plan,
                                 bool fp32 = false);

// Convenience: end-to-end simulated throughput of `engine` driving `model`
// on `machine` with `gpus` devices and the given backend profile.
double simulated_throughput(const PaperModel& model,
                            const simgpu::Machine& machine,
                            core::GradientEngine& engine,
                            const comm::TransportProfile& profile,
                            bool fp32 = false);

}  // namespace cgx::models
