#include "models/small_models.h"

#include "tensor/tensor_ops.h"
#include "util/check.h"

namespace cgx::models {

std::unique_ptr<nn::Module> make_mlp(std::size_t in, std::size_t hidden,
                                     std::size_t classes, util::Rng& rng) {
  auto model = std::make_unique<nn::Sequential>();
  model->emplace<nn::Linear>(in, hidden, rng);
  model->emplace<nn::ReLU>();
  model->emplace<nn::Linear>(hidden, hidden, rng);
  model->emplace<nn::ReLU>();
  model->emplace<nn::Linear>(hidden, classes, rng);
  return model;
}

std::unique_ptr<nn::Module> make_small_cnn(std::size_t channels,
                                           std::size_t hw,
                                           std::size_t classes,
                                           util::Rng& rng) {
  CGX_CHECK_EQ(hw % 4, 0u);
  auto model = std::make_unique<nn::Sequential>();
  model->emplace<nn::Conv2d>(channels, 16, 3, 1, 1, rng);
  model->emplace<nn::ReLU>();
  model->emplace<nn::MaxPool2d>(2);
  model->emplace<nn::Conv2d>(16, 32, 3, 1, 1, rng);
  model->emplace<nn::ReLU>();
  model->emplace<nn::MaxPool2d>(2);
  model->emplace<nn::Conv2d>(32, 32, 3, 1, 1, rng);
  model->emplace<nn::ReLU>();
  model->emplace<nn::GlobalAvgPool>();
  model->emplace<nn::Linear>(32, classes, rng);
  return model;
}

std::unique_ptr<nn::Module> make_vgg_mini(std::size_t channels,
                                          std::size_t hw, std::size_t classes,
                                          util::Rng& rng) {
  CGX_CHECK_EQ(hw % 8, 0u);
  auto model = std::make_unique<nn::Sequential>();
  model->emplace<nn::Conv2d>(channels, 16, 3, 1, 1, rng);
  model->emplace<nn::ReLU>();
  model->emplace<nn::Conv2d>(16, 16, 3, 1, 1, rng);
  model->emplace<nn::ReLU>();
  model->emplace<nn::MaxPool2d>(2);
  model->emplace<nn::Conv2d>(16, 32, 3, 1, 1, rng);
  model->emplace<nn::ReLU>();
  model->emplace<nn::Conv2d>(32, 32, 3, 1, 1, rng);
  model->emplace<nn::ReLU>();
  model->emplace<nn::MaxPool2d>(2);
  model->emplace<nn::Conv2d>(32, 64, 3, 1, 1, rng);
  model->emplace<nn::ReLU>();
  model->emplace<nn::MaxPool2d>(2);
  model->emplace<nn::Flatten>();
  model->emplace<nn::Linear>(64 * (hw / 8) * (hw / 8), 128, rng);
  model->emplace<nn::ReLU>();
  model->emplace<nn::Linear>(128, classes, rng);
  return model;
}

// --------------------------------------------------------------- Graphs

std::unique_ptr<nn::Graph> make_two_tower(std::size_t in, std::size_t hidden,
                                          std::size_t classes,
                                          util::Rng& rng) {
  auto g = std::make_unique<nn::Graph>();
  const auto stem = g->emplace<nn::Linear>({nn::Graph::kInput}, in, hidden,
                                           rng);
  const auto stem_relu = g->emplace<nn::ReLU>({stem});
  // Two towers off the same activation: backward for them is independent,
  // so a pooled executor can run both concurrently.
  nn::Graph::NodeId tower_end[2];
  for (int t = 0; t < 2; ++t) {
    const auto fc1 =
        g->emplace<nn::Linear>({stem_relu}, hidden, hidden, rng);
    const auto relu1 = g->emplace<nn::ReLU>({fc1});
    const auto fc2 = g->emplace<nn::Linear>({relu1}, hidden, hidden, rng);
    tower_end[t] = g->emplace<nn::ReLU>({fc2});
  }
  // Fan-in join: the head sees tower0 + tower1 (declaration-order sum).
  g->emplace<nn::Linear>({tower_end[0], tower_end[1]}, hidden, classes, rng);
  return g;
}

std::unique_ptr<nn::Graph> make_skipjoin_cnn(std::size_t channels,
                                             std::size_t hw,
                                             std::size_t classes,
                                             util::Rng& rng) {
  CGX_CHECK_EQ(hw % 2, 0u);
  auto g = std::make_unique<nn::Graph>();
  const auto stem =
      g->emplace<nn::Conv2d>({nn::Graph::kInput}, channels, 16, 3, 1, 1, rng);
  const auto stem_relu = g->emplace<nn::ReLU>({stem});
  // Residual branch: two convs; the join ReLU consumes branch + skip, so
  // the Graph's fan-in sum IS the residual addition.
  const auto conv1 = g->emplace<nn::Conv2d>({stem_relu}, 16, 16, 3, 1, 1,
                                            rng);
  const auto branch_relu = g->emplace<nn::ReLU>({conv1});
  const auto conv2 = g->emplace<nn::Conv2d>({branch_relu}, 16, 16, 3, 1, 1,
                                            rng);
  const auto join = g->emplace<nn::ReLU>({conv2, stem_relu});
  const auto pool = g->emplace<nn::MaxPool2d>({join}, 2);
  const auto gap = g->emplace<nn::GlobalAvgPool>({pool});
  g->emplace<nn::Linear>({gap}, 16, classes, rng);
  return g;
}

// --------------------------------------------------------------- ResNet

ResidualBlock::ResidualBlock(std::size_t in_channels,
                             std::size_t out_channels, util::Rng& rng)
    : conv1_(in_channels, out_channels, 3, 1, 1, rng, /*bias=*/false),
      bn1_(out_channels),
      conv2_(out_channels, out_channels, 3, 1, 1, rng, /*bias=*/false),
      bn2_(out_channels) {
  if (in_channels != out_channels) {
    downsample_ = std::make_unique<nn::Conv2d>(in_channels, out_channels, 1,
                                               1, 0, rng, /*bias=*/false);
  }
}

const tensor::Tensor& ResidualBlock::forward(const tensor::Tensor& x,
                                             bool train) {
  const tensor::Tensor& main = bn2_.forward(
      conv2_.forward(relu1_.forward(bn1_.forward(conv1_.forward(x, train),
                                                 train),
                                    train),
                     train),
      train);
  skip_ = downsample_ ? downsample_->forward(x, train).clone() : x.clone();
  output_ = main.clone();
  tensor::add_inplace(output_.data(), skip_.data());
  return relu_out_.forward(output_, train);
}

const tensor::Tensor& ResidualBlock::backward(
    const tensor::Tensor& grad_out) {
  const tensor::Tensor& d_sum = relu_out_.backward(grad_out);
  const tensor::Tensor& d_main = conv1_.backward(
      bn1_.backward(relu1_.backward(conv2_.backward(bn2_.backward(d_sum)))));
  grad_in_ = d_main.clone();
  if (downsample_) {
    const tensor::Tensor& d_skip = downsample_->backward(d_sum);
    tensor::add_inplace(grad_in_.data(), d_skip.data());
  } else {
    tensor::add_inplace(grad_in_.data(), d_sum.data());
  }
  return grad_in_;
}

void ResidualBlock::collect_params(const std::string& prefix,
                                   std::vector<nn::Param*>& out) {
  conv1_.collect_params(prefix + "conv1.", out);
  bn1_.collect_params(prefix + "bn1.", out);
  conv2_.collect_params(prefix + "conv2.", out);
  bn2_.collect_params(prefix + "bn2.", out);
  if (downsample_) downsample_->collect_params(prefix + "downsample.", out);
}

std::unique_ptr<nn::Module> make_resnet_mini(std::size_t channels,
                                             std::size_t hw,
                                             std::size_t classes,
                                             util::Rng& rng) {
  CGX_CHECK_EQ(hw % 2, 0u);
  auto model = std::make_unique<nn::Sequential>();
  model->emplace<nn::Conv2d>(channels, 8, 3, 1, 1, rng, /*bias=*/false);
  model->emplace<nn::BatchNorm2d>(8);
  model->emplace<nn::ReLU>();
  model->emplace<ResidualBlock>(8, 8, rng);
  model->emplace<nn::MaxPool2d>(2);
  model->emplace<ResidualBlock>(8, 16, rng);
  model->emplace<nn::GlobalAvgPool>();
  model->emplace<nn::Linear>(16, classes, rng);
  return model;
}

// --------------------------------------------------------------- LM

TinyTransformerLM::TinyTransformerLM(std::size_t vocab, std::size_t dim,
                                     std::size_t heads, std::size_t blocks,
                                     std::size_t max_seq, util::Rng& rng)
    : dim_(dim),
      max_seq_(max_seq),
      tok_(vocab, dim, rng),
      pos_("pos", tensor::Shape{max_seq, dim}),
      ln_f_(dim),
      head_(dim, vocab, rng) {
  pos_.value.fill_gaussian(rng, 0.0f, 0.02f);
  for (std::size_t b = 0; b < blocks; ++b) {
    blocks_.push_back(std::make_unique<nn::TransformerBlock>(
        dim, heads, 4 * dim, /*causal=*/true, rng));
  }
}

const tensor::Tensor& TinyTransformerLM::forward(const tensor::Tensor& x,
                                                 bool train) {
  CGX_CHECK_EQ(x.rank(), 2u);
  batch_ = x.dim(0);
  seq_ = x.dim(1);
  CGX_CHECK_LE(seq_, max_seq_);
  embedded_ = tok_.forward(x, train).clone();  // [B, T, D]
  auto e = embedded_.data();
  const auto pos = pos_.value.data();
  for (std::size_t b = 0; b < batch_; ++b) {
    for (std::size_t t = 0; t < seq_; ++t) {
      for (std::size_t d = 0; d < dim_; ++d) {
        e[(b * seq_ + t) * dim_ + d] += pos[t * dim_ + d];
      }
    }
  }
  const tensor::Tensor* cur = &embedded_;
  for (auto& block : blocks_) cur = &block->forward(*cur, train);
  return head_.forward(ln_f_.forward(*cur, train), train);
}

const tensor::Tensor& TinyTransformerLM::backward(
    const tensor::Tensor& grad_out) {
  const tensor::Tensor* cur = &ln_f_.backward(head_.backward(grad_out));
  for (auto it = blocks_.rbegin(); it != blocks_.rend(); ++it) {
    cur = &(*it)->backward(*cur);
  }
  // d(embedding sum): positional grads accumulate per position across the
  // batch; token grads go to the embedding table.
  auto pg = pos_.grad.data();
  const auto g = cur->data();
  for (std::size_t b = 0; b < batch_; ++b) {
    for (std::size_t t = 0; t < seq_; ++t) {
      for (std::size_t d = 0; d < dim_; ++d) {
        pg[t * dim_ + d] += g[(b * seq_ + t) * dim_ + d];
      }
    }
  }
  grad_in_ = tok_.backward(*cur).clone();
  return grad_in_;
}

void TinyTransformerLM::collect_params(const std::string& prefix,
                                       std::vector<nn::Param*>& out) {
  tok_.collect_params(prefix + "embed.", out);
  pos_.name = prefix + "pos_embed.weight";
  out.push_back(&pos_);
  for (std::size_t b = 0; b < blocks_.size(); ++b) {
    blocks_[b]->collect_params(prefix + "block" + std::to_string(b) + ".",
                               out);
  }
  ln_f_.collect_params(prefix + "ln_f.", out);
  head_.collect_params(prefix + "head.", out);
}

// --------------------------------------------------------------- BERT-QA

TinyBertQa::TinyBertQa(std::size_t vocab, std::size_t dim, std::size_t heads,
                       std::size_t blocks, std::size_t max_seq,
                       util::Rng& rng)
    : dim_(dim),
      max_seq_(max_seq),
      tok_(vocab, dim, rng),
      pos_("pos", tensor::Shape{max_seq, dim}),
      ln_f_(dim),
      head_(dim, 2, rng) {
  pos_.value.fill_gaussian(rng, 0.0f, 0.02f);
  for (std::size_t b = 0; b < blocks; ++b) {
    blocks_.push_back(std::make_unique<nn::TransformerBlock>(
        dim, heads, 4 * dim, /*causal=*/false, rng));
  }
}

const tensor::Tensor& TinyBertQa::forward(const tensor::Tensor& x,
                                          bool train) {
  CGX_CHECK_EQ(x.rank(), 2u);
  batch_ = x.dim(0);
  seq_ = x.dim(1);
  CGX_CHECK_LE(seq_, max_seq_);
  tensor::Tensor embedded = tok_.forward(x, train).clone();
  auto e = embedded.data();
  const auto pos = pos_.value.data();
  for (std::size_t b = 0; b < batch_; ++b) {
    for (std::size_t t = 0; t < seq_; ++t) {
      for (std::size_t d = 0; d < dim_; ++d) {
        e[(b * seq_ + t) * dim_ + d] += pos[t * dim_ + d];
      }
    }
  }
  const tensor::Tensor* cur = &embedded;
  for (auto& block : blocks_) cur = &block->forward(*cur, train);
  return head_.forward(ln_f_.forward(*cur, train), train);
}

const tensor::Tensor& TinyBertQa::backward(const tensor::Tensor& grad_out) {
  const tensor::Tensor* cur = &ln_f_.backward(head_.backward(grad_out));
  for (auto it = blocks_.rbegin(); it != blocks_.rend(); ++it) {
    cur = &(*it)->backward(*cur);
  }
  auto pg = pos_.grad.data();
  const auto g = cur->data();
  for (std::size_t b = 0; b < batch_; ++b) {
    for (std::size_t t = 0; t < seq_; ++t) {
      for (std::size_t d = 0; d < dim_; ++d) {
        pg[t * dim_ + d] += g[(b * seq_ + t) * dim_ + d];
      }
    }
  }
  grad_in_ = tok_.backward(*cur).clone();
  return grad_in_;
}

void TinyBertQa::collect_params(const std::string& prefix,
                                std::vector<nn::Param*>& out) {
  tok_.collect_params(prefix + "embed.", out);
  pos_.name = prefix + "pos_embed.weight";
  out.push_back(&pos_);
  for (std::size_t b = 0; b < blocks_.size(); ++b) {
    blocks_[b]->collect_params(prefix + "block" + std::to_string(b) + ".",
                               out);
  }
  ln_f_.collect_params(prefix + "ln_f.", out);
  head_.collect_params(prefix + "head.", out);
}

}  // namespace cgx::models
