#include "models/paper_profiles.h"

#include <cmath>

#include "util/check.h"

namespace cgx::models {
namespace {

using simgpu::GpuKind;
using tensor::Shape;

// Relative flops-per-parameter by layer kind: a conv weight is reused
// across every output pixel, an embedding row is touched once per token.
double flops_per_param(LayerKind kind) {
  switch (kind) {
    case LayerKind::Conv:
      return 12.0;
    case LayerKind::Linear:
      return 1.0;
    case LayerKind::Attention:
      return 1.6;  // attention matmuls add seq^2 work on top
    case LayerKind::Embedding:
      return 0.02;
    case LayerKind::Norm:
    case LayerKind::Bias:
      return 1.0;
  }
  return 1.0;
}

// Builder helper keeping layout and kinds aligned.
struct ProfileBuilder {
  PaperModel model;

  void add(const std::string& name, Shape shape, LayerKind kind) {
    model.layout.add_layer(name, std::move(shape));
    model.layer_kinds.push_back(kind);
  }
  void conv(const std::string& name, std::size_t oc, std::size_t ic,
            std::size_t k, bool bias = false) {
    add(name + ".weight", Shape{oc, ic, k, k}, LayerKind::Conv);
    if (bias) add(name + ".bias", Shape{oc}, LayerKind::Bias);
  }
  void bn(const std::string& name, std::size_t c) {
    add(name + ".weight", Shape{c}, LayerKind::Norm);
    add(name + ".bias", Shape{c}, LayerKind::Bias);
  }
  void ln(const std::string& name, std::size_t d) {
    add(name + ".weight", Shape{d}, LayerKind::Norm);
    add(name + ".bias", Shape{d}, LayerKind::Bias);
  }
  void linear(const std::string& name, std::size_t in, std::size_t out,
              LayerKind kind = LayerKind::Linear) {
    add(name + ".weight", Shape{in, out}, kind);
    add(name + ".bias", Shape{out}, LayerKind::Bias);
  }
  // One standard pre-LN transformer block of width d (qkv fused),
  // mlp 4x.
  void transformer_block(const std::string& p, std::size_t d) {
    ln(p + ".ln1", d);
    linear(p + ".attn.qkv", d, 3 * d, LayerKind::Attention);
    linear(p + ".attn.proj", d, d, LayerKind::Attention);
    ln(p + ".ln2", d);
    linear(p + ".mlp.fc1", d, 4 * d);
    linear(p + ".mlp.fc2", 4 * d, d);
  }
};

}  // namespace

double PaperModel::single_gpu_items_per_s(GpuKind gpu, bool fp32) const {
  const auto it = throughput.find(gpu);
  CGX_CHECK(it != throughput.end())
      << name << " has no throughput for " << simgpu::gpu_kind_name(gpu);
  return it->second * (fp32 ? fp32_factor : 1.0);
}

double PaperModel::step_seconds_1gpu(GpuKind gpu, bool fp32) const {
  return items_per_step_per_gpu / single_gpu_items_per_s(gpu, fp32);
}

std::vector<double> PaperModel::backward_seconds(GpuKind gpu,
                                                 bool fp32) const {
  // Backward is ~60% of step compute (standard 1:2 fwd:bwd split).
  const double backward_total = 0.6 * step_seconds_1gpu(gpu, fp32);
  std::vector<double> weights(layout.layer_count());
  double total_weight = 0.0;
  for (std::size_t l = 0; l < layout.layer_count(); ++l) {
    weights[l] = flops_per_param(layer_kinds[l]) *
                 static_cast<double>(layout.layer(l).numel);
    total_weight += weights[l];
  }
  CGX_CHECK_GT(total_weight, 0.0);
  for (auto& w : weights) w *= backward_total / total_weight;
  return weights;
}

double PaperModel::forward_seconds(GpuKind gpu, bool fp32) const {
  return 0.4 * step_seconds_1gpu(gpu, fp32);
}

// ------------------------------------------------------------- ResNet50

PaperModel resnet50() {
  ProfileBuilder b;
  b.model.name = "ResNet50";
  b.model.task = "ImageNet";
  b.model.item_unit = "imgs";
  b.model.items_per_step_per_gpu = 32;  // total batch 256 on 8 GPUs (App C)
  b.model.fp16_wire = true;  // NVIDIA AMP recipe: FP16 gradient allreduce
  // Table 1 (V100/RTX3090/RTX2080); A6000 from Table 1's 566 imgs/s.
  b.model.throughput = {{GpuKind::V100, 1226.0},
                        {GpuKind::A6000, 566.0},
                        {GpuKind::RTX3090, 850.0},
                        {GpuKind::RTX2080TI, 484.0}};
  // Table 6 runs FP32: CGX reaches 2900 imgs/s on 8x3090 at ~90% scaling
  // -> ~400 imgs/s per GPU -> factor ~0.47.
  b.model.fp32_factor = 0.47;

  b.conv("conv1", 64, 3, 7);
  b.bn("bn1", 64);
  const std::size_t stage_blocks[4] = {3, 4, 6, 3};
  std::size_t in_c = 64;
  for (int stage = 0; stage < 4; ++stage) {
    const std::size_t width = 64u << stage;      // 64,128,256,512
    const std::size_t out_c = width * 4;         // bottleneck expansion
    for (std::size_t block = 0; block < stage_blocks[stage]; ++block) {
      const std::string p = "layer" + std::to_string(stage + 1) + "." +
                            std::to_string(block);
      b.conv(p + ".conv1", width, in_c, 1);
      b.bn(p + ".bn1", width);
      b.conv(p + ".conv2", width, width, 3);
      b.bn(p + ".bn2", width);
      b.conv(p + ".conv3", out_c, width, 1);
      b.bn(p + ".bn3", out_c);
      if (block == 0) {
        b.conv(p + ".downsample", out_c, in_c, 1);
        b.bn(p + ".downsample_bn", out_c);
      }
      in_c = out_c;
    }
  }
  b.linear("fc", 2048, 1000);
  return std::move(b.model);
}

// ------------------------------------------------------------- VGG16

PaperModel vgg16() {
  ProfileBuilder b;
  b.model.name = "VGG16";
  b.model.task = "ImageNet";
  b.model.item_unit = "imgs";
  b.model.items_per_step_per_gpu = 32;
  b.model.fp16_wire = true;  // NVIDIA AMP recipe: FP16 gradient allreduce
  b.model.throughput = {{GpuKind::V100, 560.0},
                        {GpuKind::A6000, 300.0},
                        {GpuKind::RTX3090, 330.0},
                        {GpuKind::RTX2080TI, 200.0}};
  b.model.fp32_factor = 0.5;

  const std::size_t cfg[] = {64, 64, 0, 128, 128, 0, 256, 256, 256, 0,
                             512, 512, 512, 0, 512, 512, 512, 0};
  std::size_t in_c = 3;
  int conv_idx = 0;
  for (std::size_t c : cfg) {
    if (c == 0) continue;  // pooling layer, no params
    const std::string p = "features." + std::to_string(conv_idx++);
    b.conv(p, c, in_c, 3, /*bias=*/true);
    in_c = c;
  }
  b.linear("classifier.0", 512 * 7 * 7, 4096);
  b.linear("classifier.3", 4096, 4096);
  b.linear("classifier.6", 4096, 1000);
  return std::move(b.model);
}

// ------------------------------------------------------------- ViT-B/16

PaperModel vit_base() {
  ProfileBuilder b;
  b.model.name = "ViT-base";
  b.model.task = "ImageNet";
  b.model.item_unit = "imgs";
  b.model.items_per_step_per_gpu = 72;  // total batch 576 (App C)
  b.model.fp16_wire = false;            // AMP level 1: FP32 gradients
  b.model.throughput = {{GpuKind::V100, 330.0},
                        {GpuKind::A6000, 350.0},
                        {GpuKind::RTX3090, 340.0},
                        {GpuKind::RTX2080TI, 160.0}};
  b.model.fp32_factor = 0.55;

  b.conv("patch_embed", 768, 3, 16, /*bias=*/true);
  b.add("cls_token", Shape{1, 768}, LayerKind::Embedding);
  b.add("pos_embed", Shape{197, 768}, LayerKind::Embedding);
  for (int i = 0; i < 12; ++i) {
    b.transformer_block("blocks." + std::to_string(i), 768);
  }
  b.ln("norm", 768);
  b.linear("head", 768, 1000);
  return std::move(b.model);
}

// ------------------------------------------------------------- TXL-base

PaperModel transformer_xl_base() {
  ProfileBuilder b;
  b.model.name = "Transformer-XL";
  b.model.task = "WikiText-103";
  b.model.item_unit = "tokens";
  // NVIDIA recipe: batch 256 sequences, tgt_len 192 -> 32 seq/GPU.
  b.model.items_per_step_per_gpu = 32.0 * 192.0;
  b.model.fp16_wire = true;  // AMP level 2: FP16 gradients (App C)
  b.model.throughput = {{GpuKind::V100, 37000.0},
                        {GpuKind::A6000, 39000.0},
                        {GpuKind::RTX3090, 39000.0},
                        {GpuKind::RTX2080TI, 13000.0}};
  b.model.fp32_factor = 0.85;

  // The defining feature: a 267735-token embedding dominating the
  // parameter count — the large, early, hard-to-overlap layer of §5 and
  // Appendix E.
  b.add("word_emb.weight", Shape{267735, 512}, LayerKind::Embedding);
  for (int i = 0; i < 16; ++i) {
    b.transformer_block("layers." + std::to_string(i), 512);
  }
  b.ln("ln_out", 512);
  // Output projection tied to the embedding in the real model; the
  // adaptive-softmax clusters add a small projection.
  b.linear("crit.out_proj", 512, 512);
  return std::move(b.model);
}

// ------------------------------------------------------------- BERT-base

PaperModel bert_base() {
  ProfileBuilder b;
  b.model.name = "BERT";
  b.model.task = "SQuAD";
  b.model.item_unit = "tokens";
  // App C: batch 3 per GPU, seq 384, FP32 training.
  b.model.items_per_step_per_gpu = 3.0 * 384.0;
  b.model.fp16_wire = false;
  // Anchored to Table 4 (AWS 4xV100 NCCL: 14.4k tok/s near-linear) and
  // Table 6 (8x3090 CGX: 38.7k tok/s at ~85-90% scaling).
  b.model.throughput = {{GpuKind::V100, 3900.0},
                        {GpuKind::A6000, 5800.0},
                        {GpuKind::RTX3090, 5500.0},
                        {GpuKind::RTX2080TI, 2400.0}};
  b.model.fp32_factor = 1.0;  // the recipe already runs FP32

  b.add("embeddings.word.weight", Shape{30522, 768}, LayerKind::Embedding);
  b.add("embeddings.position.weight", Shape{512, 768},
        LayerKind::Embedding);
  b.add("embeddings.token_type.weight", Shape{2, 768},
        LayerKind::Embedding);
  b.ln("embeddings.ln", 768);
  for (int i = 0; i < 12; ++i) {
    b.transformer_block("encoder.layer." + std::to_string(i), 768);
  }
  b.linear("qa_outputs", 768, 2);
  return std::move(b.model);
}

// ------------------------------------------------------------- GPT-2

PaperModel gpt2_small() {
  ProfileBuilder b;
  b.model.name = "GPT-2";
  b.model.task = "WikiText-2";
  b.model.item_unit = "tokens";
  // App C: batch 24 total over 8 GPUs, seq 1024, AMP level 2.
  b.model.items_per_step_per_gpu = 3.0 * 1024.0;
  b.model.fp16_wire = true;
  b.model.throughput = {{GpuKind::V100, 8200.0},
                        {GpuKind::A6000, 8800.0},
                        {GpuKind::RTX3090, 8600.0},
                        {GpuKind::RTX2080TI, 3100.0}};
  b.model.fp32_factor = 0.6;

  b.add("wte.weight", Shape{50257, 768}, LayerKind::Embedding);
  b.add("wpe.weight", Shape{1024, 768}, LayerKind::Embedding);
  for (int i = 0; i < 12; ++i) {
    b.transformer_block("h." + std::to_string(i), 768);
  }
  b.ln("ln_f", 768);
  return std::move(b.model);
}

// ----------------------------------------------------- branchy synthetics

PaperModel two_tower_net() {
  ProfileBuilder b;
  b.model.name = "TwoTower";
  b.model.task = "synthetic";
  b.model.item_unit = "imgs";
  b.model.items_per_step_per_gpu = 32;
  b.model.fp16_wire = false;
  // Plausible synthetics in the ViT-base ballpark; the DAG bench only
  // needs a self-consistent backward-time split, not paper fidelity.
  b.model.throughput = {{GpuKind::V100, 340.0},
                        {GpuKind::A6000, 360.0},
                        {GpuKind::RTX3090, 350.0},
                        {GpuKind::RTX2080TI, 170.0}};
  b.model.fp32_factor = 1.0;

  // Matches models::make_two_tower's structure: stem, two independent
  // towers ("t0." / "t1."), fan-in head. The towers' gradients are
  // producible concurrently — the exposed-comm experiment's whole point.
  b.linear("stem.fc", 512, 1024);
  for (int t = 0; t < 2; ++t) {
    const std::string p = "t" + std::to_string(t);
    for (int l = 0; l < 4; ++l) {
      b.linear(p + ".fc" + std::to_string(l), 1024, 1024);
    }
  }
  b.linear("head.fc", 1024, 10);
  return std::move(b.model);
}

PaperModel skipjoin_net() {
  ProfileBuilder b;
  b.model.name = "SkipJoin";
  b.model.task = "synthetic";
  b.model.item_unit = "imgs";
  b.model.items_per_step_per_gpu = 32;
  b.model.fp16_wire = false;
  b.model.throughput = {{GpuKind::V100, 800.0},
                        {GpuKind::A6000, 500.0},
                        {GpuKind::RTX3090, 600.0},
                        {GpuKind::RTX2080TI, 300.0}};
  b.model.fp32_factor = 1.0;

  // ResNet-style residual ladder: each block's conv branch runs beside
  // the identity skip ("branch." vs the stem/join trunk).
  b.conv("stem.conv", 64, 3, 7);
  b.bn("stem.bn", 64);
  std::size_t c = 64;
  for (int blk = 0; blk < 4; ++blk) {
    const std::string p = "branch." + std::to_string(blk);
    b.conv(p + ".conv1", c, c, 3);
    b.bn(p + ".bn1", c);
    b.conv(p + ".conv2", c, c, 3);
    b.bn(p + ".bn2", c);
  }
  b.linear("head.fc", c, 10);
  return std::move(b.model);
}

std::vector<PaperModel> all_paper_models() {
  std::vector<PaperModel> models;
  models.push_back(resnet50());
  models.push_back(vgg16());
  models.push_back(vit_base());
  models.push_back(transformer_xl_base());
  models.push_back(bert_base());
  models.push_back(gpt2_small());
  return models;
}

simgpu::StepSpec build_step_spec(const PaperModel& model, GpuKind gpu,
                                 const core::CommPlan& plan, bool fp32) {
  const std::vector<double> backward = model.backward_seconds(gpu, fp32);
  CGX_CHECK_EQ(plan.per_layer_s.size(), backward.size());
  simgpu::StepSpec spec;
  // Compression-kernel contention extends the compute timeline (App. A).
  spec.forward_s = model.forward_seconds(gpu, fp32) +
                   plan.kernel_contention_s;
  const std::size_t n = backward.size();
  spec.backward_s.reserve(n + 1);
  spec.comm_s.reserve(n + 1);
  // Backward visits layers output-side first = REVERSE layout order.
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t l = n - 1 - i;
    spec.backward_s.push_back(backward[l]);
    spec.comm_s.push_back(plan.per_layer_s[l]);
  }
  if (plan.fused_packet_s > 0.0) {
    // The fused full-precision packet ships once everything has been
    // produced.
    spec.backward_s.push_back(0.0);
    spec.comm_s.push_back(plan.fused_packet_s);
  }
  return spec;
}

double simulated_throughput(const PaperModel& model,
                            const simgpu::Machine& machine,
                            core::GradientEngine& engine,
                            const comm::TransportProfile& profile,
                            bool fp32) {
  const simgpu::CostModel cost(machine.topology, profile);
  const core::CommPlan plan =
      engine.comm_plan(cost, simgpu::gpu_spec(machine.gpu).compress_gbps);
  simgpu::StepSpec spec = build_step_spec(model, machine.gpu, plan, fp32);
  // MPI's host/device synchronisation defeats overlap (§4).
  spec.overlap = !profile.requires_host_sync;
  const simgpu::StepResult result = simgpu::simulate_step(spec);
  return simgpu::throughput_items_per_s(result.step_s,
                                        model.items_per_step_per_gpu,
                                        machine.topology.num_devices());
}

}  // namespace cgx::models
