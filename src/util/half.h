// Software IEEE 754 binary16 ("half") conversion.
//
// The paper trains several models in mixed precision (FP16 gradients for
// Transformer-XL / GPT-2, FP16 activations for ViT). We do not need fast
// half arithmetic — gradients are converted to float for math — but we do
// need faithful round-trip conversion so that (a) the engine can transmit
// FP16 baselines and (b) the PowerSGD incompatibility with FP16 (divergence
// via overflow of the power-iteration Gram matrices) can be demonstrated.
//
// Conversion follows the standard round-to-nearest-even algorithm with
// correct handling of subnormals, infinities, and NaN.
#pragma once

#include <cstdint>
#include <span>

namespace cgx::util {

std::uint16_t float_to_half(float f);
float half_to_float(std::uint16_t h);

// Bulk conversions used when the engine transmits FP16 buffers.
void floats_to_halves(std::span<const float> in, std::span<std::uint16_t> out);
void halves_to_floats(std::span<const std::uint16_t> in, std::span<float> out);

// Largest finite half value (65504); gradients above this overflow to +inf
// when cast, which is exactly the failure mode that breaks PowerSGD + FP16.
inline constexpr float kMaxHalf = 65504.0f;

}  // namespace cgx::util
