#include "util/threadpool.h"

#include <algorithm>

#include "util/check.h"

namespace cgx::util {

namespace {
thread_local bool t_on_worker = false;
}  // namespace

bool ThreadPool::on_worker_thread() { return t_on_worker; }

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  CGX_CHECK(task != nullptr);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    CGX_CHECK(!stop_);
    queue_.push(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::grow_raw_locked(std::size_t capacity) {
  // Rebuild the ring in FIFO order into a larger vector. Only reached when
  // submit_raw outruns the reserved capacity; reserve_raw at setup keeps
  // the steady state out of here.
  std::vector<RawTask> bigger(std::max(capacity, std::size_t{8}));
  for (std::size_t i = 0; i < raw_count_; ++i) {
    bigger[i] = raw_ring_[(raw_head_ + i) % raw_ring_.size()];
  }
  raw_ring_ = std::move(bigger);
  raw_head_ = 0;
}

void ThreadPool::submit_raw(RawFn fn, void* ctx, std::size_t arg) {
  CGX_CHECK(fn != nullptr);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    CGX_CHECK(!stop_);
    if (raw_count_ == raw_ring_.size()) {
      grow_raw_locked(raw_ring_.size() * 2 + 8);
    }
    raw_ring_[(raw_head_ + raw_count_) % raw_ring_.size()] =
        RawTask{fn, ctx, arg};
    ++raw_count_;
  }
  work_cv_.notify_one();
}

void ThreadPool::reserve_raw(std::size_t capacity) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (raw_ring_.size() < capacity) grow_raw_locked(capacity);
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock,
                [&] { return queue_.empty() && raw_count_ == 0 &&
                             active_ == 0; });
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t chunks =
      t_on_worker ? 1 : std::min(n, workers_.size());
  if (chunks <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::mutex done_mutex;
  std::condition_variable done_cv;
  std::size_t remaining = chunks;
  const std::size_t per_chunk = (n + chunks - 1) / chunks;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t begin = c * per_chunk;
    const std::size_t end = std::min(n, begin + per_chunk);
    submit([&, begin, end] {
      for (std::size_t i = begin; i < end; ++i) fn(i);
      std::lock_guard<std::mutex> lock(done_mutex);
      if (--remaining == 0) done_cv.notify_one();
    });
  }
  std::unique_lock<std::mutex> lock(done_mutex);
  done_cv.wait(lock, [&] { return remaining == 0; });
}

void ThreadPool::worker_loop() {
  t_on_worker = true;
  for (;;) {
    std::function<void()> task;
    RawTask raw{};
    bool have_raw = false;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] {
        return stop_ || !queue_.empty() || raw_count_ > 0;
      });
      if (stop_ && queue_.empty() && raw_count_ == 0) return;
      if (raw_count_ > 0) {
        raw = raw_ring_[raw_head_];
        raw_head_ = (raw_head_ + 1) % raw_ring_.size();
        --raw_count_;
        have_raw = true;
      } else {
        task = std::move(queue_.front());
        queue_.pop();
      }
      ++active_;
    }
    if (have_raw) {
      raw.fn(raw.ctx, raw.arg);
    } else {
      task();
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --active_;
      if (queue_.empty() && raw_count_ == 0 && active_ == 0) {
        idle_cv_.notify_all();
      }
    }
  }
}

}  // namespace cgx::util
