#include "util/logging.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdlib>
#include <iostream>

namespace cgx::util {
namespace {

std::atomic<LogLevel>& level_storage() {
  static std::atomic<LogLevel> level = [] {
    if (const char* env = std::getenv("CGX_LOG_LEVEL")) {
      return parse_log_level(env);
    }
    return LogLevel::Warn;
  }();
  return level;
}

std::mutex& output_mutex() {
  static std::mutex m;
  return m;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug:
      return "DEBUG";
    case LogLevel::Info:
      return "INFO";
    case LogLevel::Warn:
      return "WARN";
    case LogLevel::Error:
      return "ERROR";
    case LogLevel::Off:
      return "OFF";
  }
  return "?";
}

}  // namespace

LogLevel log_level() { return level_storage().load(std::memory_order_relaxed); }

void set_log_level(LogLevel level) {
  level_storage().store(level, std::memory_order_relaxed);
}

LogLevel parse_log_level(const std::string& name) {
  std::string lower(name);
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (lower == "debug") return LogLevel::Debug;
  if (lower == "info") return LogLevel::Info;
  if (lower == "warn" || lower == "warning") return LogLevel::Warn;
  if (lower == "error") return LogLevel::Error;
  if (lower == "off" || lower == "none") return LogLevel::Off;
  return LogLevel::Warn;
}

namespace detail {

LogLine::LogLine(LogLevel level) : level_(level) {}

LogLine::~LogLine() {
  std::lock_guard<std::mutex> lock(output_mutex());
  std::cerr << "[" << level_name(level_) << "] " << stream_.str() << "\n";
}

}  // namespace detail
}  // namespace cgx::util
