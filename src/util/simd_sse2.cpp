// SSE2 kernel implementations (baseline on x86-64, so no special compile
// flags). Bit-identical to the scalar reference in simd.cpp: elementwise
// kernels perform the same mul-then-add sequence per element, reductions
// keep the same 8-lane striping (here as four 2-wide double vectors) and
// fold with the same canonical tree. Compiled with -ffp-contract=off.
#include "util/simd_internal.h"

#if defined(__x86_64__) || defined(__i386__)

#include <emmintrin.h>

#include <bit>
#include <cstdint>
#include <cstring>

namespace cgx::util::simd::detail {
namespace {

// select(mask, a, b): a where mask bits set, else b (SSE2 has no blendv).
inline __m128i select_i(__m128i mask, __m128i a, __m128i b) {
  return _mm_or_si128(_mm_and_si128(mask, a), _mm_andnot_si128(mask, b));
}

// ------------------------------------------------------------- elementwise

void axpy_sse2(float alpha, const float* x, float* y, std::size_t n) {
  const __m128 va = _mm_set1_ps(alpha);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128 vy = _mm_loadu_ps(y + i);
    const __m128 vx = _mm_loadu_ps(x + i);
    _mm_storeu_ps(y + i, _mm_add_ps(vy, _mm_mul_ps(va, vx)));
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

void scale_sse2(float* x, float alpha, std::size_t n) {
  const __m128 va = _mm_set1_ps(alpha);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm_storeu_ps(x + i, _mm_mul_ps(_mm_loadu_ps(x + i), va));
  }
  for (; i < n; ++i) x[i] *= alpha;
}

void sub_sse2(const float* a, const float* b, float* out, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm_storeu_ps(out + i,
                  _mm_sub_ps(_mm_loadu_ps(a + i), _mm_loadu_ps(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] - b[i];
}

void add_sse2(float* dst, const float* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm_storeu_ps(dst + i,
                  _mm_add_ps(_mm_loadu_ps(dst + i), _mm_loadu_ps(src + i)));
  }
  for (; i < n; ++i) dst[i] += src[i];
}

void add_scaled_sse2(const float* a, float beta, const float* b, float* out,
                     std::size_t n) {
  const __m128 vb = _mm_set1_ps(beta);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm_storeu_ps(out + i,
                  _mm_add_ps(_mm_loadu_ps(a + i),
                             _mm_mul_ps(vb, _mm_loadu_ps(b + i))));
  }
  for (; i < n; ++i) out[i] = a[i] + beta * b[i];
}

void madd_sse2(float* dst, const float* a, const float* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm_storeu_ps(dst + i,
                  _mm_add_ps(_mm_loadu_ps(dst + i),
                             _mm_mul_ps(_mm_loadu_ps(a + i),
                                        _mm_loadu_ps(b + i))));
  }
  for (; i < n; ++i) dst[i] += a[i] * b[i];
}

// ------------------------------------------------------------- reductions

// Widen 8 floats into four 2-lane double vectors (lanes [0,1][2,3][4,5][6,7]).
struct Lanes8d {
  __m128d d01, d23, d45, d67;
};

inline Lanes8d widen8(const float* p) {
  const __m128 x03 = _mm_loadu_ps(p);
  const __m128 x47 = _mm_loadu_ps(p + 4);
  return {_mm_cvtps_pd(x03), _mm_cvtps_pd(_mm_movehl_ps(x03, x03)),
          _mm_cvtps_pd(x47), _mm_cvtps_pd(_mm_movehl_ps(x47, x47))};
}

struct Acc8d {
  __m128d a01 = _mm_setzero_pd(), a23 = _mm_setzero_pd(),
          a45 = _mm_setzero_pd(), a67 = _mm_setzero_pd();
  void spill(double lanes[8]) const {
    _mm_storeu_pd(lanes + 0, a01);
    _mm_storeu_pd(lanes + 2, a23);
    _mm_storeu_pd(lanes + 4, a45);
    _mm_storeu_pd(lanes + 6, a67);
  }
};

double reduce_sum_sse2(const float* x, std::size_t n) {
  Acc8d acc;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const Lanes8d v = widen8(x + i);
    acc.a01 = _mm_add_pd(acc.a01, v.d01);
    acc.a23 = _mm_add_pd(acc.a23, v.d23);
    acc.a45 = _mm_add_pd(acc.a45, v.d45);
    acc.a67 = _mm_add_pd(acc.a67, v.d67);
  }
  double lanes[8];
  acc.spill(lanes);
  for (; i < n; ++i) lanes[i % 8] += static_cast<double>(x[i]);
  return combine_lanes(lanes);
}

double reduce_dot_sse2(const float* x, const float* y, std::size_t n) {
  Acc8d acc;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const Lanes8d vx = widen8(x + i);
    const Lanes8d vy = widen8(y + i);
    acc.a01 = _mm_add_pd(acc.a01, _mm_mul_pd(vx.d01, vy.d01));
    acc.a23 = _mm_add_pd(acc.a23, _mm_mul_pd(vx.d23, vy.d23));
    acc.a45 = _mm_add_pd(acc.a45, _mm_mul_pd(vx.d45, vy.d45));
    acc.a67 = _mm_add_pd(acc.a67, _mm_mul_pd(vx.d67, vy.d67));
  }
  double lanes[8];
  acc.spill(lanes);
  for (; i < n; ++i) {
    lanes[i % 8] += static_cast<double>(x[i]) * static_cast<double>(y[i]);
  }
  return combine_lanes(lanes);
}

double reduce_sqnorm_sse2(const float* x, std::size_t n) {
  return reduce_dot_sse2(x, x, n);
}

double reduce_sqdiff_sse2(const float* x, double mean, std::size_t n) {
  const __m128d vm = _mm_set1_pd(mean);
  Acc8d acc;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const Lanes8d v = widen8(x + i);
    const __m128d d01 = _mm_sub_pd(v.d01, vm);
    const __m128d d23 = _mm_sub_pd(v.d23, vm);
    const __m128d d45 = _mm_sub_pd(v.d45, vm);
    const __m128d d67 = _mm_sub_pd(v.d67, vm);
    acc.a01 = _mm_add_pd(acc.a01, _mm_mul_pd(d01, d01));
    acc.a23 = _mm_add_pd(acc.a23, _mm_mul_pd(d23, d23));
    acc.a45 = _mm_add_pd(acc.a45, _mm_mul_pd(d45, d45));
    acc.a67 = _mm_add_pd(acc.a67, _mm_mul_pd(d67, d67));
  }
  double lanes[8];
  acc.spill(lanes);
  for (; i < n; ++i) {
    const double d = static_cast<double>(x[i]) - mean;
    lanes[i % 8] += d * d;
  }
  return combine_lanes(lanes);
}

float reduce_max_sse2(const float* x, std::size_t n, float init) {
  __m128 m03 = _mm_set1_ps(init);
  __m128 m47 = _mm_set1_ps(init);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    // max_ps(x, m): keeps m when x is NaN, matching the scalar ternary.
    m03 = _mm_max_ps(_mm_loadu_ps(x + i), m03);
    m47 = _mm_max_ps(_mm_loadu_ps(x + i + 4), m47);
  }
  float lanes[8];
  _mm_storeu_ps(lanes, m03);
  _mm_storeu_ps(lanes + 4, m47);
  for (; i < n; ++i) {
    lanes[i % 8] = lanes[i % 8] < x[i] ? x[i] : lanes[i % 8];
  }
  return combine_lanes_max(lanes);
}

float reduce_max_abs_sse2(const float* x, std::size_t n) {
  const __m128 abs_mask = _mm_castsi128_ps(_mm_set1_epi32(0x7fffffff));
  __m128 m03 = _mm_setzero_ps();
  __m128 m47 = _mm_setzero_ps();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    m03 = _mm_max_ps(_mm_and_ps(_mm_loadu_ps(x + i), abs_mask), m03);
    m47 = _mm_max_ps(_mm_and_ps(_mm_loadu_ps(x + i + 4), abs_mask), m47);
  }
  float lanes[8];
  _mm_storeu_ps(lanes, m03);
  _mm_storeu_ps(lanes + 4, m47);
  for (; i < n; ++i) {
    const float a = std::bit_cast<float>(std::bit_cast<std::uint32_t>(x[i]) &
                                         0x7fffffffu);
    lanes[i % 8] = lanes[i % 8] < a ? a : lanes[i % 8];
  }
  return combine_lanes_max(lanes);
}

// ------------------------------------------------------------ quantization

void qsgd_quantize_sse2(const float* v, const float* u, std::size_t n,
                        float inv_norm, std::uint32_t s,
                        std::uint32_t sign_bit, std::uint32_t* sym) {
  const float s_f = static_cast<float>(s);
  const __m128 vinv = _mm_set1_ps(inv_norm);
  const __m128 vs_f = _mm_set1_ps(s_f);
  const __m128i vs_i = _mm_set1_epi32(static_cast<int>(s));
  const __m128i abs_mask = _mm_set1_epi32(0x7fffffff);
  const __m128i shift = _mm_cvtsi32_si128(
      static_cast<int>(std::countr_zero(sign_bit)));
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i vbits =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(v + i));
    const __m128 a =
        _mm_mul_ps(_mm_castsi128_ps(_mm_and_si128(vbits, abs_mask)), vinv);
    const __m128 t = _mm_add_ps(_mm_mul_ps(a, vs_f), _mm_loadu_ps(u + i));
    __m128i level = _mm_cvttps_epi32(t);
    level = select_i(_mm_cmpgt_epi32(level, vs_i), vs_i, level);
    const __m128i sign = _mm_sll_epi32(_mm_srli_epi32(vbits, 31), shift);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(sym + i),
                     _mm_or_si128(level, sign));
  }
  const auto s_i = static_cast<std::int32_t>(s);
  for (; i < n; ++i) {
    const std::uint32_t v_bits = std::bit_cast<std::uint32_t>(v[i]);
    const float a = std::bit_cast<float>(v_bits & 0x7fffffffu) * inv_norm;
    std::int32_t level = static_cast<std::int32_t>(a * s_f + u[i]);
    level = level < s_i ? level : s_i;
    sym[i] = static_cast<std::uint32_t>(level) | ((v_bits >> 31) * sign_bit);
  }
}

void qsgd_dequantize_sse2(const std::uint32_t* sym, std::size_t n, float scale,
                          std::uint32_t sign_bit, unsigned sign_shift,
                          float* out) {
  const std::uint32_t level_mask = sign_bit - 1;
  const __m128 vscale = _mm_set1_ps(scale);
  const __m128i vmask = _mm_set1_epi32(static_cast<int>(level_mask));
  const __m128i vsign = _mm_set1_epi32(static_cast<int>(sign_bit));
  const __m128i shift = _mm_cvtsi32_si128(static_cast<int>(sign_shift));
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i s =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(sym + i));
    const __m128 mag =
        _mm_mul_ps(_mm_cvtepi32_ps(_mm_and_si128(s, vmask)), vscale);
    const __m128i sg = _mm_sll_epi32(_mm_and_si128(s, vsign), shift);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i),
                     _mm_or_si128(_mm_castps_si128(mag), sg));
  }
  for (; i < n; ++i) {
    const std::uint32_t symbol = sym[i];
    const float magnitude = static_cast<float>(symbol & level_mask) * scale;
    out[i] = std::bit_cast<float>(std::bit_cast<std::uint32_t>(magnitude) |
                                  ((symbol & sign_bit) << sign_shift));
  }
}

void nuq_quantize_sse2(const float* v, const float* u, std::size_t n,
                       float inv_norm, unsigned bits, std::uint32_t* sym) {
  const int top = (1 << (bits - 1)) - 1;
  const std::uint32_t sign_bit = 1u << (bits - 1);
  const __m128 vinv = _mm_set1_ps(inv_norm);
  const __m128 vone = _mm_set1_ps(1.0f);
  const __m128i abs_mask = _mm_set1_epi32(0x7fffffff);
  const __m128i vtop = _mm_set1_epi32(top);
  const __m128i voff = _mm_set1_epi32(top - 127);   // e_field + voff = lo
  const __m128i vexp0 = _mm_set1_epi32(127 - top);  // lo + vexp0 = exp(L_lo)
  const __m128i vexp1 = _mm_set1_epi32(128 - top);
  const __m128i vzero = _mm_setzero_si128();
  const __m128i vone_i = _mm_set1_epi32(1);
  const __m128i sshift = _mm_cvtsi32_si128(static_cast<int>(bits - 1));
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i vbits =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(v + i));
    const __m128 a = _mm_min_ps(
        _mm_mul_ps(_mm_castsi128_ps(_mm_and_si128(vbits, abs_mask)), vinv),
        vone);
    __m128i lo = _mm_add_epi32(_mm_srli_epi32(_mm_castps_si128(a), 23), voff);
    lo = _mm_andnot_si128(_mm_cmpgt_epi32(vzero, lo), lo);  // max(lo, 0)
    lo = select_i(_mm_cmpgt_epi32(lo, vtop), vtop, lo);     // min(lo, top)
    const __m128 low = _mm_castsi128_ps(_mm_andnot_si128(
        _mm_cmpeq_epi32(lo, vzero),
        _mm_slli_epi32(_mm_add_epi32(lo, vexp0), 23)));
    const __m128 high =
        _mm_castsi128_ps(_mm_slli_epi32(_mm_add_epi32(lo, vexp1), 23));
    const __m128 p =
        _mm_div_ps(_mm_sub_ps(a, low), _mm_sub_ps(high, low));
    const __m128i take =
        _mm_and_si128(_mm_castps_si128(_mm_cmplt_ps(_mm_loadu_ps(u + i), p)),
                      _mm_cmpgt_epi32(vtop, lo));
    const __m128i idx = _mm_add_epi32(lo, _mm_and_si128(take, vone_i));
    const __m128i sign = _mm_sll_epi32(_mm_srli_epi32(vbits, 31), sshift);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(sym + i),
                     _mm_or_si128(idx, sign));
  }
  for (; i < n; ++i) {
    const std::uint32_t v_bits = std::bit_cast<std::uint32_t>(v[i]);
    float a = std::bit_cast<float>(v_bits & 0x7fffffffu) * inv_norm;
    a = a < 1.0f ? a : 1.0f;
    const int e =
        static_cast<int>(std::bit_cast<std::uint32_t>(a) >> 23) - 127;
    int lo = e + top;
    lo = lo < 0 ? 0 : (lo > top ? top : lo);
    std::uint32_t inc = 0;
    if (lo < top) {
      const float low =
          lo == 0 ? 0.0f
                  : std::bit_cast<float>(
                        static_cast<std::uint32_t>(lo - top + 127) << 23);
      const float high = std::bit_cast<float>(
          static_cast<std::uint32_t>(lo + 1 - top + 127) << 23);
      const float p = (a - low) / (high - low);
      inc = u[i] < p ? 1u : 0u;
    }
    sym[i] = (static_cast<std::uint32_t>(lo) + inc) |
             ((v_bits >> 31) * sign_bit);
  }
}

void nuq_dequantize_sse2(const std::uint32_t* sym, std::size_t n, float norm,
                         unsigned bits, float* out) {
  const int top = (1 << (bits - 1)) - 1;
  const std::uint32_t sign_bit = 1u << (bits - 1);
  const std::uint32_t index_mask = sign_bit - 1;
  const __m128 vnorm = _mm_set1_ps(norm);
  const __m128i vmask = _mm_set1_epi32(static_cast<int>(index_mask));
  const __m128i vsign = _mm_set1_epi32(static_cast<int>(sign_bit));
  const __m128i vexp0 = _mm_set1_epi32(127 - top);
  const __m128i vzero = _mm_setzero_si128();
  const __m128i shift = _mm_cvtsi32_si128(static_cast<int>(32 - bits));
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i s =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(sym + i));
    const __m128i idx = _mm_and_si128(s, vmask);
    const __m128 level = _mm_castsi128_ps(_mm_andnot_si128(
        _mm_cmpeq_epi32(idx, vzero),
        _mm_slli_epi32(_mm_add_epi32(idx, vexp0), 23)));
    const __m128 value = _mm_mul_ps(level, vnorm);
    const __m128i sg = _mm_sll_epi32(_mm_and_si128(s, vsign), shift);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i),
                     _mm_xor_si128(_mm_castps_si128(value), sg));
  }
  for (; i < n; ++i) {
    const std::uint32_t symbol = sym[i];
    const auto idx = static_cast<int>(symbol & index_mask);
    const float level =
        idx == 0 ? 0.0f
                 : std::bit_cast<float>(
                       static_cast<std::uint32_t>(idx - top + 127) << 23);
    const float value = level * norm;
    out[i] = std::bit_cast<float>(std::bit_cast<std::uint32_t>(value) ^
                                  ((symbol & sign_bit) ? 0x80000000u : 0u));
  }
}

// -------------------------------------------------------------------- gemm

// Scalar leftovers: per row, single float accumulator per element updated in
// increasing-k order (bit-identical to the vector path's register
// accumulation because float load/store round-trips exactly).
inline void gemm_cols_scalar(const float* a, std::size_t lda, bool a_trans,
                             const float* b, std::size_t ldb, float* c,
                             std::size_t ldc, std::size_t mb, std::size_t kb,
                             std::size_t j0, std::size_t nb) {
  for (std::size_t i = 0; i < mb; ++i) {
    float* crow = c + i * ldc;
    for (std::size_t j = j0; j < nb; ++j) {
      float acc = crow[j];
      for (std::size_t k = 0; k < kb; ++k) {
        const float aik = a_trans ? a[k * lda + i] : a[i * lda + k];
        acc += aik * b[k * ldb + j];
      }
      crow[j] = acc;
    }
  }
}

template <bool ATrans>
inline void gemm_tile_impl(const float* a, std::size_t lda, const float* b,
                           std::size_t ldb, float* c, std::size_t ldc,
                           std::size_t mb, std::size_t kb, std::size_t nb) {
  auto a_at = [&](std::size_t i, std::size_t k) {
    return ATrans ? a[k * lda + i] : a[i * lda + k];
  };
  std::size_t i = 0;
  for (; i + 4 <= mb; i += 4) {
    float* c0 = c + (i + 0) * ldc;
    float* c1 = c + (i + 1) * ldc;
    float* c2 = c + (i + 2) * ldc;
    float* c3 = c + (i + 3) * ldc;
    std::size_t j = 0;
    for (; j + 8 <= nb; j += 8) {
      __m128 acc0a = _mm_loadu_ps(c0 + j), acc0b = _mm_loadu_ps(c0 + j + 4);
      __m128 acc1a = _mm_loadu_ps(c1 + j), acc1b = _mm_loadu_ps(c1 + j + 4);
      __m128 acc2a = _mm_loadu_ps(c2 + j), acc2b = _mm_loadu_ps(c2 + j + 4);
      __m128 acc3a = _mm_loadu_ps(c3 + j), acc3b = _mm_loadu_ps(c3 + j + 4);
      for (std::size_t k = 0; k < kb; ++k) {
        const float* brow = b + k * ldb + j;
        const __m128 b0 = _mm_loadu_ps(brow);
        const __m128 b1 = _mm_loadu_ps(brow + 4);
        __m128 av = _mm_set1_ps(a_at(i + 0, k));
        acc0a = _mm_add_ps(acc0a, _mm_mul_ps(av, b0));
        acc0b = _mm_add_ps(acc0b, _mm_mul_ps(av, b1));
        av = _mm_set1_ps(a_at(i + 1, k));
        acc1a = _mm_add_ps(acc1a, _mm_mul_ps(av, b0));
        acc1b = _mm_add_ps(acc1b, _mm_mul_ps(av, b1));
        av = _mm_set1_ps(a_at(i + 2, k));
        acc2a = _mm_add_ps(acc2a, _mm_mul_ps(av, b0));
        acc2b = _mm_add_ps(acc2b, _mm_mul_ps(av, b1));
        av = _mm_set1_ps(a_at(i + 3, k));
        acc3a = _mm_add_ps(acc3a, _mm_mul_ps(av, b0));
        acc3b = _mm_add_ps(acc3b, _mm_mul_ps(av, b1));
      }
      _mm_storeu_ps(c0 + j, acc0a);
      _mm_storeu_ps(c0 + j + 4, acc0b);
      _mm_storeu_ps(c1 + j, acc1a);
      _mm_storeu_ps(c1 + j + 4, acc1b);
      _mm_storeu_ps(c2 + j, acc2a);
      _mm_storeu_ps(c2 + j + 4, acc2b);
      _mm_storeu_ps(c3 + j, acc3a);
      _mm_storeu_ps(c3 + j + 4, acc3b);
    }
    for (; j + 4 <= nb; j += 4) {
      __m128 acc0 = _mm_loadu_ps(c0 + j);
      __m128 acc1 = _mm_loadu_ps(c1 + j);
      __m128 acc2 = _mm_loadu_ps(c2 + j);
      __m128 acc3 = _mm_loadu_ps(c3 + j);
      for (std::size_t k = 0; k < kb; ++k) {
        const __m128 b0 = _mm_loadu_ps(b + k * ldb + j);
        acc0 = _mm_add_ps(acc0, _mm_mul_ps(_mm_set1_ps(a_at(i + 0, k)), b0));
        acc1 = _mm_add_ps(acc1, _mm_mul_ps(_mm_set1_ps(a_at(i + 1, k)), b0));
        acc2 = _mm_add_ps(acc2, _mm_mul_ps(_mm_set1_ps(a_at(i + 2, k)), b0));
        acc3 = _mm_add_ps(acc3, _mm_mul_ps(_mm_set1_ps(a_at(i + 3, k)), b0));
      }
      _mm_storeu_ps(c0 + j, acc0);
      _mm_storeu_ps(c1 + j, acc1);
      _mm_storeu_ps(c2 + j, acc2);
      _mm_storeu_ps(c3 + j, acc3);
    }
    if (j < nb) {
      gemm_cols_scalar(ATrans ? a + i : a + i * lda, lda, ATrans, b, ldb,
                       c + i * ldc, ldc, 4, kb, j, nb);
    }
  }
  for (; i < mb; ++i) {
    float* crow = c + i * ldc;
    std::size_t j = 0;
    for (; j + 4 <= nb; j += 4) {
      __m128 acc = _mm_loadu_ps(crow + j);
      for (std::size_t k = 0; k < kb; ++k) {
        acc = _mm_add_ps(acc, _mm_mul_ps(_mm_set1_ps(a_at(i, k)),
                                         _mm_loadu_ps(b + k * ldb + j)));
      }
      _mm_storeu_ps(crow + j, acc);
    }
    if (j < nb) {
      gemm_cols_scalar(ATrans ? a + i : a + i * lda, lda, ATrans, b, ldb,
                       crow, ldc, 1, kb, j, nb);
    }
  }
}

void gemm_tile_sse2(const float* a, std::size_t lda, const float* b,
                    std::size_t ldb, float* c, std::size_t ldc, std::size_t mb,
                    std::size_t kb, std::size_t nb) {
  gemm_tile_impl<false>(a, lda, b, ldb, c, ldc, mb, kb, nb);
}

void gemm_tile_at_sse2(const float* a, std::size_t lda, const float* b,
                       std::size_t ldb, float* c, std::size_t ldc,
                       std::size_t mb, std::size_t kb, std::size_t nb) {
  gemm_tile_impl<true>(a, lda, b, ldb, c, ldc, mb, kb, nb);
}

// ------------------------------------------------------------- copy engine

void copy_bytes_sse2(std::byte* dst, const std::byte* src, std::size_t n) {
  // Below the non-temporal threshold libc memcpy wins (see the AVX2 kernel
  // note); only the streaming regime needs explicit stores.
  if (n < kNonTemporalCopyBytes) {
    std::memcpy(dst, src, n);
    return;
  }
  // Align the store side to 16 so the vector body never splits a line.
  const std::size_t head =
      (16 - reinterpret_cast<std::uintptr_t>(dst) % 16) % 16;
  if (head != 0) {
    std::memcpy(dst, src, head);
    dst += head;
    src += head;
    n -= head;
  }
  std::size_t i = 0;
  {
    // Past-L2 copy: stream the stores around the cache. Same bytes land in
    // memory; only cache state differs (see the bit-exactness note in
    // simd_internal.h).
    for (; i + 64 <= n; i += 64) {
      _mm_prefetch(reinterpret_cast<const char*>(src + i) + 512,
                   _MM_HINT_NTA);
      const __m128i a =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
      const __m128i b =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i + 16));
      const __m128i c =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i + 32));
      const __m128i d =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i + 48));
      _mm_stream_si128(reinterpret_cast<__m128i*>(dst + i), a);
      _mm_stream_si128(reinterpret_cast<__m128i*>(dst + i + 16), b);
      _mm_stream_si128(reinterpret_cast<__m128i*>(dst + i + 32), c);
      _mm_stream_si128(reinterpret_cast<__m128i*>(dst + i + 48), d);
    }
    // Order the streamed stores before any subsequent flag publish.
    _mm_sfence();
  }
  if (i < n) std::memcpy(dst + i, src + i, n - i);
}

// dst[i] += src[i], same order as the scalar loop; prefetch both streams
// (dst is read-modify-write, so no non-temporal path here).
void copy_add_sse2(float* dst, const float* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    _mm_prefetch(reinterpret_cast<const char*>(src + i) + 128, _MM_HINT_T0);
    _mm_prefetch(reinterpret_cast<const char*>(dst + i) + 128, _MM_HINT_T0);
    for (std::size_t j = 0; j < 16; j += 4) {
      const __m128 vd = _mm_loadu_ps(dst + i + j);
      const __m128 vs = _mm_loadu_ps(src + i + j);
      _mm_storeu_ps(dst + i + j, _mm_add_ps(vd, vs));
    }
  }
  for (; i + 4 <= n; i += 4) {
    const __m128 vd = _mm_loadu_ps(dst + i);
    const __m128 vs = _mm_loadu_ps(src + i);
    _mm_storeu_ps(dst + i, _mm_add_ps(vd, vs));
  }
  for (; i < n; ++i) dst[i] += src[i];
}

void copy_add2_sse2(float* dst, const float* a, const float* b,
                    std::size_t n) {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    _mm_prefetch(reinterpret_cast<const char*>(a + i) + 128, _MM_HINT_T0);
    _mm_prefetch(reinterpret_cast<const char*>(b + i) + 128, _MM_HINT_T0);
    _mm_prefetch(reinterpret_cast<const char*>(dst + i) + 128, _MM_HINT_T0);
    for (std::size_t j = 0; j < 16; j += 4) {
      const __m128 vd = _mm_loadu_ps(dst + i + j);
      const __m128 va = _mm_loadu_ps(a + i + j);
      const __m128 vb = _mm_loadu_ps(b + i + j);
      _mm_storeu_ps(dst + i + j,
                    _mm_add_ps(_mm_add_ps(vd, va), vb));
    }
  }
  for (; i + 4 <= n; i += 4) {
    const __m128 vd = _mm_loadu_ps(dst + i);
    const __m128 va = _mm_loadu_ps(a + i);
    const __m128 vb = _mm_loadu_ps(b + i);
    _mm_storeu_ps(dst + i, _mm_add_ps(_mm_add_ps(vd, va), vb));
  }
  for (; i < n; ++i) {
    float acc = dst[i] + a[i];
    dst[i] = acc + b[i];
  }
}

constexpr SimdOps kSse2Ops = {
    axpy_sse2,       scale_sse2,          sub_sse2,
    add_sse2,        add_scaled_sse2,     madd_sse2,
    reduce_sum_sse2, reduce_dot_sse2,     reduce_sqnorm_sse2,
    reduce_sqdiff_sse2, reduce_max_sse2,  reduce_max_abs_sse2,
    qsgd_quantize_sse2, qsgd_dequantize_sse2,
    nuq_quantize_sse2,  nuq_dequantize_sse2,
    gemm_tile_sse2,  gemm_tile_at_sse2,
    nullptr,         nullptr,  // no SSE2 pack/unpack (needs AVX2 vpsrlvd)
    copy_bytes_sse2, copy_add_sse2, copy_add2_sse2,
    nullptr,         nullptr,  // no SSE2 half path (needs AVX2 vpsrlvd)
};

}  // namespace

const SimdOps& sse2_ops() { return kSse2Ops; }

}  // namespace cgx::util::simd::detail

#else  // non-x86: "sse2" aliases the scalar reference

namespace cgx::util::simd::detail {
const SimdOps& sse2_ops() { return scalar_ops(); }
}  // namespace cgx::util::simd::detail

#endif
