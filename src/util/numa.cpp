#include "util/numa.h"

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <vector>

#if defined(__linux__)
#include <sched.h>
#endif

namespace cgx::util::numa {
namespace {

// Parses a kernel cpulist ("0-3,8,10-11") into CPU ids.
std::vector<int> parse_cpulist(const std::string& list) {
  std::vector<int> cpus;
  std::stringstream ss(list);
  std::string range;
  while (std::getline(ss, range, ',')) {
    if (range.empty()) continue;
    const std::size_t dash = range.find('-');
    const int lo = std::atoi(range.c_str());
    const int hi = dash == std::string::npos
                       ? lo
                       : std::atoi(range.c_str() + dash + 1);
    for (int c = lo; c <= hi && c - lo < 4096; ++c) cpus.push_back(c);
  }
  return cpus;
}

struct Topology {
  std::vector<std::vector<int>> node_cpus;  // node -> CPU ids
  bool env_off = false;

  Topology() {
    const char* env = std::getenv("CGX_NUMA");
    if (env != nullptr && std::strcmp(env, "off") == 0) env_off = true;
    if (env != nullptr && !env_off && std::strcmp(env, "auto") != 0 &&
        env[0] != '\0') {
      std::fprintf(stderr,
                   "cgx: unknown CGX_NUMA value '%s' (want off|auto); "
                   "using auto\n",
                   env);
    }
#if defined(__linux__)
    for (int node = 0; node < 1024; ++node) {
      std::ifstream cpulist("/sys/devices/system/node/node" +
                            std::to_string(node) + "/cpulist");
      if (!cpulist.is_open()) break;
      std::string list;
      std::getline(cpulist, list);
      node_cpus.push_back(parse_cpulist(list));
    }
#endif
    if (node_cpus.empty()) node_cpus.push_back({});  // unknown: 1 flat node
  }
};

const Topology& topology() {
  static const Topology kTopo;
  return kTopo;
}

}  // namespace

bool enabled() {
  const Topology& t = topology();
  return !t.env_off && t.node_cpus.size() > 1;
}

int node_count() { return static_cast<int>(topology().node_cpus.size()); }

int node_cpu_count(int node) {
  const Topology& t = topology();
  if (node < 0 || node >= static_cast<int>(t.node_cpus.size())) return 0;
  return static_cast<int>(t.node_cpus[static_cast<std::size_t>(node)].size());
}

int node_for_rank(int rank) {
  const int nodes = node_count();
  if (rank < 0 || nodes <= 1) return 0;
  return rank % nodes;
}

bool pin_current_thread_to_node(int node) {
  if (!enabled()) return false;
  const Topology& t = topology();
  if (node < 0 || node >= static_cast<int>(t.node_cpus.size())) return false;
  const auto& cpus = t.node_cpus[static_cast<std::size_t>(node)];
  if (cpus.empty()) return false;
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  for (int c : cpus) {
    if (c >= 0 && c < CPU_SETSIZE) CPU_SET(c, &set);
  }
  return sched_setaffinity(0, sizeof(set), &set) == 0;
#else
  return false;
#endif
}

bool pin_current_thread_for_rank(int rank) {
  return pin_current_thread_to_node(node_for_rank(rank));
}

void first_touch(std::span<std::byte> memory) {
  constexpr std::size_t kPage = 4096;
  for (std::size_t off = 0; off < memory.size(); off += kPage) {
    memory[off] = std::byte{0};
  }
}

std::string topology_summary() {
  const Topology& t = topology();
  std::ostringstream out;
  out << "numa: " << t.node_cpus.size() << " node"
      << (t.node_cpus.size() == 1 ? "" : "s") << " (";
  for (std::size_t n = 0; n < t.node_cpus.size(); ++n) {
    if (n) out << "+";
    out << t.node_cpus[n].size();
  }
  out << " cpus), CGX_NUMA=" << (t.env_off ? "off" : "auto")
      << (enabled() ? "" : " [placement inactive]");
  return out.str();
}

}  // namespace cgx::util::numa
