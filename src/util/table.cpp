#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <sstream>

#include "util/check.h"

namespace cgx::util {

Table::Table(std::string title) : title_(std::move(title)) {}

void Table::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void Table::add_row(std::vector<std::string> row) {
  if (!header_.empty()) {
    CGX_CHECK_EQ(row.size(), header_.size());
  }
  rows_.push_back(std::move(row));
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::compact(double v) {
  char buf[64];
  if (v >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fM", v / 1e6);
  } else if (v >= 1e4) {
    std::snprintf(buf, sizeof(buf), "%.1fk", v / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  }
  return buf;
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths;
  auto grow = [&](const std::vector<std::string>& row) {
    if (widths.size() < row.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  if (!header_.empty()) grow(header_);
  for (const auto& row : rows_) grow(row);

  std::ostringstream out;
  if (!title_.empty()) out << "== " << title_ << " ==\n";
  auto emit = [&](const std::vector<std::string>& row) {
    out << "|";
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string();
      out << " " << cell << std::string(widths[i] - cell.size(), ' ') << " |";
    }
    out << "\n";
  };
  if (!header_.empty()) {
    emit(header_);
    out << "|";
    for (std::size_t w : widths) out << std::string(w + 2, '-') << "|";
    out << "\n";
  }
  for (const auto& row : rows_) emit(row);
  return out.str();
}

void Table::print() const { std::cout << to_string() << std::flush; }

}  // namespace cgx::util
