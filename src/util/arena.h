// Per-rank grow-only arena allocator with a pointer registry.
//
// The data plane's long-lived buffers — collective workspace slots, ring
// channel slabs, error-feedback residuals, persistent tensors — share one
// lifecycle: they grow to a high-water size during warm-up and are then
// reused unchanged for the rest of the run. An Arena matches that lifecycle
// exactly: allocations are 64-byte aligned bump-pointer carves out of large
// blocks, nothing is ever freed individually, and blocks only accumulate.
// What the general-purpose heap cannot promise, the arena does:
//
//  * placement — the thread that first writes a fresh block faults its pages
//    in (first-touch), so an arena owned by a NUMA-pinned rank thread lands
//    on that rank's node (see util/numa.h);
//  * alignment — every span starts on a 64-byte (cache-line / AVX-512)
//    boundary, so the simd copy engine never pays split-line penalties;
//  * optional transparent-huge-page backing (CGX_HUGEPAGES=on) — fewer TLB
//    misses on multi-MB gradient sweeps;
//  * attribution — a process-wide registry answers "which arena owns this
//    pointer", which the allocation tests use to prove the hot-path buffers
//    really are arena-backed.
//
// Growing an arena-backed buffer abandons its old extent (grow-only means no
// free list); that waste is bounded by warm-up, the same argument the
// grow-only workspace slots have always made.
#pragma once

#include <cstddef>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

namespace cgx::util {

class Arena {
 public:
  // Every allocation is aligned to this (cache line, also AVX-512 width).
  static constexpr std::size_t kAlignment = 64;

  // `first_block_bytes` sizes the initial reservation; later blocks grow
  // geometrically. `huge_pages` requests MADV_HUGEPAGE backing on each block
  // (Linux only; silently a no-op elsewhere or when madvise refuses) —
  // pass huge_pages_enabled() to follow the CGX_HUGEPAGES env setting.
  explicit Arena(std::size_t first_block_bytes = 1ull << 20,
                 bool huge_pages = huge_pages_enabled());
  ~Arena();

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  // 64-byte-aligned carve; never individually freed. Thread-safe (the rank
  // thread and its comm thread may both grow buffers). n == 0 returns a
  // unique non-null pointer, like operator new.
  void* allocate(std::size_t bytes);

  template <class T>
  std::span<T> make_span(std::size_t n) {
    return {static_cast<T*>(allocate(n * sizeof(T))), n};
  }

  // Total bytes reserved in blocks (monotone non-decreasing).
  std::size_t reserved_bytes() const;
  // Bytes handed out to callers (monotone non-decreasing).
  std::size_t allocated_bytes() const;
  std::size_t block_count() const;
  // True when MADV_HUGEPAGE was applied to at least one block.
  bool huge_pages_active() const;

  // True if p points into one of this arena's blocks.
  bool owns(const void* p) const;

  // Whether CGX_HUGEPAGES=on|1 was set (read once per process).
  static bool huge_pages_enabled();

 private:
  struct Block;

  void* allocate_locked(std::size_t bytes);

  mutable std::mutex mutex_;
  std::vector<Block> blocks_;
  const std::size_t first_block_bytes_;
  const bool want_huge_pages_;
  bool huge_pages_active_ = false;
  std::size_t allocated_ = 0;
  std::size_t reserved_ = 0;
};

// Process-wide map from block address ranges to owning arenas. Queries are
// for tests and diagnostics, not hot paths (shared lock + ordered map).
class ArenaRegistry {
 public:
  static ArenaRegistry& instance();

  // The arena whose block contains p, or nullptr for heap/stack memory.
  Arena* owner(const void* p) const;

 private:
  friend class Arena;
  void add(const void* base, std::size_t size, Arena* arena);
  void remove_owner(Arena* arena);

  mutable std::mutex mutex_;
  // base -> (end, arena); disjoint ranges, so upper_bound resolves lookups.
  std::vector<std::tuple<const void*, const void*, Arena*>> ranges_;
};

// The per-rank arenas. Process lifetime (never destroyed): buffers handed
// out survive engine and transport teardown, so no binding site has to
// reason about arena-vs-buffer lifetime. Rank r's engine thread, comm
// thread, and channel slabs all draw from rank_arena(r), which first-touch
// places them together on r's NUMA node.
Arena& rank_arena(int rank);

// Thread-local arena binding. While a ScopedArena is live on a thread,
// ArenaBuffer growth on that thread carves from the bound arena instead of
// the heap. Bind only around allocations with arena lifecycle (persistent,
// grow-only); transient per-step allocations would leak arena space.
Arena* current_arena();

class ScopedArena {
 public:
  explicit ScopedArena(Arena& arena);
  ~ScopedArena();
  ScopedArena(const ScopedArena&) = delete;
  ScopedArena& operator=(const ScopedArena&) = delete;

 private:
  Arena* previous_;
};

// Grow-only typed buffer, the storage primitive behind tensors, workspace
// slots, EF residuals, and ring slabs. Capacity never shrinks; growth
// preserves contents. Where the storage comes from is decided at grow time:
// an explicitly set arena, else the thread's ScopedArena, else the heap
// (64-byte-aligned operator new) — so code paths never need an arena to
// exist, they just benefit when one is bound.
template <class T>
class ArenaBuffer {
  static_assert(std::is_trivially_copyable_v<T>,
                "ArenaBuffer holds raw storage; elements must be trivially "
                "copyable");

 public:
  ArenaBuffer() = default;
  explicit ArenaBuffer(std::size_t n) { resize(n); }

  ArenaBuffer(ArenaBuffer&& other) noexcept { swap(other); }
  ArenaBuffer& operator=(ArenaBuffer&& other) noexcept {
    if (this != &other) {
      release_heap();
      data_ = nullptr;
      size_ = capacity_ = 0;
      heap_ = nullptr;
      arena_ = other.arena_;
      swap(other);
    }
    return *this;
  }
  ArenaBuffer(const ArenaBuffer&) = delete;
  ArenaBuffer& operator=(const ArenaBuffer&) = delete;

  ~ArenaBuffer() { release_heap(); }

  // Pins growth to `arena` regardless of thread bindings (nullptr returns
  // to the default policy). Only affects future growth.
  void set_arena(Arena* arena) { arena_ = arena; }
  Arena* arena() const { return arena_; }

  T* data() { return data_; }
  const T* data() const { return data_; }
  std::size_t size() const { return size_; }
  std::size_t capacity() const { return capacity_; }
  bool empty() const { return size_ == 0; }

  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }

  std::span<T> span() { return {data_, size_}; }
  std::span<const T> span() const { return {data_, size_}; }

  // Implicit span conversion, mirroring std::vector's use at call sites
  // that take std::span parameters.
  operator std::span<T>() { return {data_, size_}; }              // NOLINT
  operator std::span<const T>() const { return {data_, size_}; }  // NOLINT

  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }

  // Grow-only size change: new elements are uninitialized, existing
  // contents survive. Shrinking only changes size(), never capacity.
  void resize(std::size_t n) {
    reserve(n);
    size_ = n;
  }

  void reserve(std::size_t n);

  void assign(std::size_t n, const T& value) {
    resize(n);
    for (std::size_t i = 0; i < n; ++i) data_[i] = value;
  }

  void clear() { size_ = 0; }

  void swap(ArenaBuffer& other) noexcept {
    std::swap(data_, other.data_);
    std::swap(size_, other.size_);
    std::swap(capacity_, other.capacity_);
    std::swap(heap_, other.heap_);
    std::swap(arena_, other.arena_);
  }

 private:
  void release_heap() {
    // Arena extents are abandoned (grow-only); only heap storage is freed.
    ::operator delete[](heap_, std::align_val_t{Arena::kAlignment});
  }

  T* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t capacity_ = 0;
  void* heap_ = nullptr;  // non-null when data_ is heap-backed
  Arena* arena_ = nullptr;
};

template <class T>
void ArenaBuffer<T>::reserve(std::size_t n) {
  if (n <= capacity_) return;
  Arena* arena = arena_ != nullptr ? arena_ : current_arena();
  T* grown = nullptr;
  void* grown_heap = nullptr;
  if (arena != nullptr) {
    grown = static_cast<T*>(arena->allocate(n * sizeof(T)));
  } else {
    grown_heap = ::operator new[](n * sizeof(T),
                                  std::align_val_t{Arena::kAlignment});
    grown = static_cast<T*>(grown_heap);
  }
  if (size_ > 0) __builtin_memcpy(grown, data_, size_ * sizeof(T));
  release_heap();
  heap_ = grown_heap;
  data_ = grown;
  capacity_ = n;
}

}  // namespace cgx::util
