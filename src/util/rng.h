// Deterministic, fast pseudo-random number generation.
//
// All stochastic components of the library (stochastic rounding in QSGD,
// data generators, weight init, k-means++ seeding) draw from this generator
// so that every test and bench is reproducible from a single seed.
//
// The engine is xoshiro256** (Blackman & Vigna), which is much faster than
// std::mt19937_64 and has no measurable bias for our use cases. `split()`
// derives an independent stream per device thread from a parent seed, so
// data-parallel workers produce uncorrelated randomness without sharing
// state.
#pragma once

#include <cstdint>
#include <span>

namespace cgx::util {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  // Uniform on [0, 2^64).
  std::uint64_t next_u64();

  // Uniform on [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound);

  // Uniform on [0, 1).
  double next_double();

  // Uniform on [0, 1) with float precision; used in hot quantization loops.
  float next_float();

  // Fills `out` with uniform [0, 1) floats; what the quantizers' fused
  // kernels use instead of one next_float() call per gradient element. The
  // batch loop keeps the generator state in registers and extracts four
  // 16-bit floats per 64-bit draw (plenty of resolution for stochastic
  // rounding), so it is much faster than — though NOT bit-equivalent to —
  // repeated next_float(). Deterministic in the state: equal states produce
  // equal batches, and the state advances by ceil(out.size() / 4) draws.
  void fill_floats(std::span<float> out);

  // Standard normal via Box-Muller (cached second value).
  double next_gaussian();

  // Derives an independent child stream; deterministic in (parent state, i).
  Rng split(std::uint64_t i) const;

 private:
  std::uint64_t s_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace cgx::util
