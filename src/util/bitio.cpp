#include "util/bitio.h"

#include <cstring>

namespace cgx::util {

std::size_t packed_size_bytes(std::size_t n, unsigned bits) {
  CGX_CHECK(bits >= 1 && bits <= 32);
  const std::size_t total_bits = n * bits;
  const std::size_t words = (total_bits + 63) / 64;
  return words * 8;
}

BitWriter::BitWriter(std::span<std::byte> out, unsigned bits)
    : out_(out), bits_(bits) {
  CGX_CHECK(bits >= 1 && bits <= 32);
  CGX_CHECK_EQ(out.size() % 8, 0u);
}

void BitWriter::write(std::uint64_t symbol) {
  CGX_DCHECK(!finished_);
  CGX_DCHECK(symbol < (1ULL << bits_));
  acc_ |= static_cast<unsigned __int128>(symbol) << acc_bits_;
  acc_bits_ += bits_;
  if (acc_bits_ >= 64) {
    const std::uint64_t word = static_cast<std::uint64_t>(acc_);
    CGX_DCHECK(word_index_ * 8 + 8 <= out_.size());
    std::memcpy(out_.data() + word_index_ * 8, &word, 8);
    ++word_index_;
    acc_ >>= 64;
    acc_bits_ -= 64;
  }
  ++symbols_;
}

void BitWriter::finish() {
  CGX_CHECK(!finished_);
  if (acc_bits_ > 0) {
    const std::uint64_t word = static_cast<std::uint64_t>(acc_);
    CGX_CHECK(word_index_ * 8 + 8 <= out_.size());
    std::memcpy(out_.data() + word_index_ * 8, &word, 8);
    ++word_index_;
  }
  finished_ = true;
}

BitReader::BitReader(std::span<const std::byte> in, unsigned bits)
    : in_(in), bits_(bits) {
  CGX_CHECK(bits >= 1 && bits <= 32);
  CGX_CHECK_EQ(in.size() % 8, 0u);
}

std::uint64_t BitReader::read() {
  if (acc_bits_ < bits_) {
    CGX_DCHECK(word_index_ * 8 + 8 <= in_.size());
    std::uint64_t word = 0;
    std::memcpy(&word, in_.data() + word_index_ * 8, 8);
    ++word_index_;
    acc_ |= static_cast<unsigned __int128>(word) << acc_bits_;
    acc_bits_ += 64;
  }
  const std::uint64_t mask = (bits_ == 64) ? ~0ULL : ((1ULL << bits_) - 1);
  const std::uint64_t symbol = static_cast<std::uint64_t>(acc_) & mask;
  acc_ >>= bits_;
  acc_bits_ -= bits_;
  ++symbols_;
  return symbol;
}

void pack_symbols(std::span<const std::uint32_t> symbols, unsigned bits,
                  std::span<std::byte> out) {
  BitWriter writer(out, bits);
  for (std::uint32_t s : symbols) writer.write(s);
  writer.finish();
}

void unpack_symbols(std::span<const std::byte> in, unsigned bits,
                    std::span<std::uint32_t> symbols) {
  BitReader reader(in, bits);
  for (auto& s : symbols) s = static_cast<std::uint32_t>(reader.read());
}

}  // namespace cgx::util
