#include "util/bitio.h"

#include <cstring>

#include "util/simd.h"

namespace cgx::util {

std::size_t packed_size_bytes(std::size_t n, unsigned bits) {
  CGX_CHECK(bits >= 1 && bits <= 32);
  const std::size_t total_bits = n * bits;
  const std::size_t words = (total_bits + 63) / 64;
  return words * 8;
}

BitWriter::BitWriter(std::span<std::byte> out, unsigned bits)
    : out_(out), bits_(bits) {
  CGX_CHECK(bits >= 1 && bits <= 32);
  CGX_CHECK_EQ(out.size() % 8, 0u);
}

void BitWriter::write(std::uint64_t symbol) {
  CGX_DCHECK(!finished_);
  CGX_DCHECK(symbol < (1ULL << bits_));
  acc_ |= static_cast<unsigned __int128>(symbol) << acc_bits_;
  acc_bits_ += bits_;
  if (acc_bits_ >= 64) {
    const std::uint64_t word = static_cast<std::uint64_t>(acc_);
    CGX_DCHECK(word_index_ * 8 + 8 <= out_.size());
    std::memcpy(out_.data() + word_index_ * 8, &word, 8);
    ++word_index_;
    acc_ >>= 64;
    acc_bits_ -= 64;
  }
  ++symbols_;
}

void BitWriter::finish() {
  CGX_CHECK(!finished_);
  if (acc_bits_ > 0) {
    const std::uint64_t word = static_cast<std::uint64_t>(acc_);
    CGX_CHECK(word_index_ * 8 + 8 <= out_.size());
    std::memcpy(out_.data() + word_index_ * 8, &word, 8);
    ++word_index_;
  }
  finished_ = true;
}

BitReader::BitReader(std::span<const std::byte> in, unsigned bits)
    : in_(in), bits_(bits) {
  CGX_CHECK(bits >= 1 && bits <= 32);
  CGX_CHECK_EQ(in.size() % 8, 0u);
}

std::uint64_t BitReader::read() {
  if (acc_bits_ < bits_) {
    CGX_DCHECK(word_index_ * 8 + 8 <= in_.size());
    std::uint64_t word = 0;
    std::memcpy(&word, in_.data() + word_index_ * 8, 8);
    ++word_index_;
    acc_ |= static_cast<unsigned __int128>(word) << acc_bits_;
    acc_bits_ += 64;
  }
  const std::uint64_t mask = (bits_ == 64) ? ~0ULL : ((1ULL << bits_) - 1);
  const std::uint64_t symbol = static_cast<std::uint64_t>(acc_) & mask;
  acc_ >>= bits_;
  acc_bits_ -= bits_;
  ++symbols_;
  return symbol;
}

namespace {

// Fast path for widths dividing 64: exactly kPerWord symbols per output
// word, no symbol ever straddles a word boundary, so each word is a short
// fixed-trip-count shift/or reduction the compiler unrolls and vectorizes.
template <unsigned Bits>
void pack_div64(const std::uint32_t* symbols, std::size_t n,
                std::byte* out) {
  constexpr unsigned kPerWord = 64 / Bits;
  std::size_t i = 0;
  for (; i + kPerWord <= n; i += kPerWord) {
    std::uint64_t word = 0;
    for (unsigned j = 0; j < kPerWord; ++j) {
      word |= static_cast<std::uint64_t>(symbols[i + j]) << (j * Bits);
    }
    std::memcpy(out, &word, 8);
    out += 8;
  }
  if (i < n) {
    std::uint64_t word = 0;
    for (unsigned j = 0; i + j < n; ++j) {
      word |= static_cast<std::uint64_t>(symbols[i + j]) << (j * Bits);
    }
    std::memcpy(out, &word, 8);
  }
}

template <unsigned Bits>
void unpack_div64(const std::byte* in, std::size_t n,
                  std::uint32_t* symbols) {
  constexpr unsigned kPerWord = 64 / Bits;
  constexpr std::uint64_t kMask =
      Bits == 64 ? ~0ULL : ((1ULL << Bits) - 1);
  std::size_t i = 0;
  for (; i + kPerWord <= n; i += kPerWord) {
    std::uint64_t word;
    std::memcpy(&word, in, 8);
    in += 8;
    for (unsigned j = 0; j < kPerWord; ++j) {
      symbols[i + j] =
          static_cast<std::uint32_t>((word >> (j * Bits)) & kMask);
    }
  }
  if (i < n) {
    std::uint64_t word;
    std::memcpy(&word, in, 8);
    for (unsigned j = 0; i + j < n; ++j) {
      symbols[i + j] =
          static_cast<std::uint32_t>((word >> (j * Bits)) & kMask);
    }
  }
}

// Generic word-at-a-time fallback: same accumulator scheme as BitWriter /
// BitReader but inlined into one batch loop (no per-symbol call or state
// spill), for widths like 3/5/6 where symbols straddle word boundaries.
void pack_generic(const std::uint32_t* symbols, std::size_t n, unsigned bits,
                  std::byte* out) {
  unsigned __int128 acc = 0;
  unsigned acc_bits = 0;
  for (std::size_t i = 0; i < n; ++i) {
    acc |= static_cast<unsigned __int128>(symbols[i]) << acc_bits;
    acc_bits += bits;
    if (acc_bits >= 64) {
      const std::uint64_t word = static_cast<std::uint64_t>(acc);
      std::memcpy(out, &word, 8);
      out += 8;
      acc >>= 64;
      acc_bits -= 64;
    }
  }
  if (acc_bits > 0) {
    const std::uint64_t word = static_cast<std::uint64_t>(acc);
    std::memcpy(out, &word, 8);
  }
}

void unpack_generic(const std::byte* in, std::size_t n, unsigned bits,
                    std::uint32_t* symbols) {
  const std::uint64_t mask = (bits == 64) ? ~0ULL : ((1ULL << bits) - 1);
  unsigned __int128 acc = 0;
  unsigned acc_bits = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (acc_bits < bits) {
      std::uint64_t word;
      std::memcpy(&word, in, 8);
      in += 8;
      acc |= static_cast<unsigned __int128>(word) << acc_bits;
      acc_bits += 64;
    }
    symbols[i] = static_cast<std::uint32_t>(
        static_cast<std::uint64_t>(acc) & mask);
    acc >>= bits;
    acc_bits -= bits;
  }
}

void pack_dispatch(const std::uint32_t* symbols, std::size_t n,
                   unsigned bits, std::byte* out) {
  // SIMD fast path for the word-aligned prefix (false when the active
  // dispatch level has no vector kernel for this width). The ragged tail —
  // and everything, when the vector path is unavailable — goes through the
  // scalar loops below, which produce bit-identical words.
  if (bits == 4 || bits == 8) {
    const std::size_t per_word = 64 / bits;
    const std::size_t nwords = n / per_word;
    if (nwords > 0 && simd::pack_words(symbols, nwords, bits, out)) {
      const std::size_t done = nwords * per_word;
      symbols += done;
      n -= done;
      out += nwords * 8;
      if (n == 0) return;
    }
  }
  switch (bits) {
    case 1:
      pack_div64<1>(symbols, n, out);
      return;
    case 2:
      pack_div64<2>(symbols, n, out);
      return;
    case 4:
      pack_div64<4>(symbols, n, out);
      return;
    case 8:
      pack_div64<8>(symbols, n, out);
      return;
    case 16:
      pack_div64<16>(symbols, n, out);
      return;
    case 32:
      pack_div64<32>(symbols, n, out);
      return;
    default:
      pack_generic(symbols, n, bits, out);
      return;
  }
}

void unpack_dispatch(const std::byte* in, std::size_t n, unsigned bits,
                     std::uint32_t* symbols) {
  if (bits == 2 || bits == 4 || bits == 8) {
    const std::size_t per_word = 64 / bits;
    const std::size_t nwords = n / per_word;
    if (nwords > 0 && simd::unpack_words(in, nwords, bits, symbols)) {
      const std::size_t done = nwords * per_word;
      symbols += done;
      n -= done;
      in += nwords * 8;
      if (n == 0) return;
    }
  }
  switch (bits) {
    case 1:
      unpack_div64<1>(in, n, symbols);
      return;
    case 2:
      unpack_div64<2>(in, n, symbols);
      return;
    case 4:
      unpack_div64<4>(in, n, symbols);
      return;
    case 8:
      unpack_div64<8>(in, n, symbols);
      return;
    case 16:
      unpack_div64<16>(in, n, symbols);
      return;
    case 32:
      unpack_div64<32>(in, n, symbols);
      return;
    default:
      unpack_generic(in, n, bits, symbols);
      return;
  }
}

}  // namespace

void pack_symbols(std::span<const std::uint32_t> symbols, unsigned bits,
                  std::span<std::byte> out) {
  CGX_CHECK(bits >= 1 && bits <= 32);
  CGX_CHECK_GE(out.size(), packed_size_bytes(symbols.size(), bits));
  if (symbols.empty()) return;
  pack_dispatch(symbols.data(), symbols.size(), bits, out.data());
}

void unpack_symbols(std::span<const std::byte> in, unsigned bits,
                    std::span<std::uint32_t> symbols) {
  CGX_CHECK(bits >= 1 && bits <= 32);
  CGX_CHECK_GE(in.size(), packed_size_bytes(symbols.size(), bits));
  if (symbols.empty()) return;
  unpack_dispatch(in.data(), symbols.size(), bits, symbols.data());
}

std::size_t symbols_per_word_cycle(unsigned bits) {
  CGX_CHECK(bits >= 1 && bits <= 32);
  unsigned a = bits, b = 64;
  while (b != 0) {
    const unsigned t = a % b;
    a = b;
    b = t;
  }
  return 64 / a;
}

void pack_symbols_at(std::span<const std::uint32_t> symbols,
                     std::size_t first_symbol, unsigned bits,
                     std::span<std::byte> payload) {
  CGX_CHECK(bits >= 1 && bits <= 32);
  CGX_CHECK_EQ(first_symbol % symbols_per_word_cycle(bits), 0u);
  const std::size_t byte_offset = first_symbol * bits / 8;
  CGX_CHECK_GE(payload.size(),
               byte_offset + packed_size_bytes(symbols.size(), bits));
  if (symbols.empty()) return;
  pack_dispatch(symbols.data(), symbols.size(), bits,
                payload.data() + byte_offset);
}

void unpack_symbols_at(std::span<const std::byte> payload,
                       std::size_t first_symbol, unsigned bits,
                       std::span<std::uint32_t> symbols) {
  CGX_CHECK(bits >= 1 && bits <= 32);
  CGX_CHECK_EQ(first_symbol % symbols_per_word_cycle(bits), 0u);
  const std::size_t byte_offset = first_symbol * bits / 8;
  CGX_CHECK_GE(payload.size(),
               byte_offset + packed_size_bytes(symbols.size(), bits));
  if (symbols.empty()) return;
  unpack_dispatch(payload.data() + byte_offset, symbols.size(), bits,
                  symbols.data());
}

}  // namespace cgx::util
