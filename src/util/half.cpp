#include "util/half.h"

#include <cstring>

#include "util/check.h"
#include "util/simd.h"

namespace cgx::util {

std::uint16_t float_to_half(float f) {
  std::uint32_t x = 0;
  std::memcpy(&x, &f, 4);
  const std::uint32_t sign = (x >> 16) & 0x8000u;
  std::uint32_t exp = (x >> 23) & 0xffu;
  std::uint32_t mant = x & 0x7fffffu;

  if (exp == 0xffu) {  // inf / NaN
    // Preserve NaN-ness by forcing a non-zero mantissa.
    return static_cast<std::uint16_t>(sign | 0x7c00u |
                                      (mant != 0 ? 0x200u : 0));
  }

  // Re-bias exponent: float bias 127, half bias 15.
  int new_exp = static_cast<int>(exp) - 127 + 15;

  if (new_exp >= 0x1f) {  // overflow -> inf
    return static_cast<std::uint16_t>(sign | 0x7c00u);
  }

  if (new_exp <= 0) {  // subnormal or zero
    if (new_exp < -10) {
      return static_cast<std::uint16_t>(sign);  // underflows to zero
    }
    // Add implicit leading 1, then shift into subnormal position.
    mant |= 0x800000u;
    const unsigned shift = static_cast<unsigned>(14 - new_exp);
    std::uint32_t half_mant = mant >> shift;
    // Round to nearest even on the dropped bits.
    const std::uint32_t dropped = mant & ((1u << shift) - 1);
    const std::uint32_t halfway = 1u << (shift - 1);
    if (dropped > halfway || (dropped == halfway && (half_mant & 1u))) {
      ++half_mant;  // may carry into the exponent; that is correct
    }
    return static_cast<std::uint16_t>(sign | half_mant);
  }

  // Normal number: keep the top 10 mantissa bits, round to nearest even.
  std::uint16_t half =
      static_cast<std::uint16_t>(sign | (static_cast<std::uint32_t>(new_exp) << 10) |
                                 (mant >> 13));
  const std::uint32_t dropped = mant & 0x1fffu;
  if (dropped > 0x1000u || (dropped == 0x1000u && (half & 1u))) {
    ++half;  // carry propagates correctly into exponent / infinity
  }
  return half;
}

float half_to_float(std::uint16_t h) {
  const std::uint32_t sign = static_cast<std::uint32_t>(h & 0x8000u) << 16;
  const std::uint32_t exp = (h >> 10) & 0x1fu;
  std::uint32_t mant = h & 0x3ffu;
  std::uint32_t out;

  if (exp == 0) {
    if (mant == 0) {
      out = sign;  // +-0
    } else {
      // Subnormal: normalize.
      int e = -1;
      std::uint32_t m = mant;
      do {
        ++e;
        m <<= 1;
      } while ((m & 0x400u) == 0);
      out = sign | (static_cast<std::uint32_t>(127 - 15 - e) << 23) |
            ((m & 0x3ffu) << 13);
    }
  } else if (exp == 0x1f) {
    out = sign | 0x7f800000u | (mant << 13);  // inf / NaN
  } else {
    out = sign | ((exp - 15 + 127) << 23) | (mant << 13);
  }

  float f = 0.0f;
  std::memcpy(&f, &out, 4);
  return f;
}

// Bulk conversions dispatch through the simd table; the vector paths are
// bit-identical to the per-element reference above, and CGX_SIMD=off (or a
// level with no half kernels) falls back to these scalar loops — the
// contract, exercised directly.
void floats_to_halves(std::span<const float> in,
                      std::span<std::uint16_t> out) {
  CGX_CHECK_EQ(in.size(), out.size());
  if (simd::f32_to_f16(in.data(), out.data(), in.size())) return;
  for (std::size_t i = 0; i < in.size(); ++i) out[i] = float_to_half(in[i]);
}

void halves_to_floats(std::span<const std::uint16_t> in,
                      std::span<float> out) {
  CGX_CHECK_EQ(in.size(), out.size());
  if (simd::f16_to_f32(in.data(), out.data(), in.size())) return;
  for (std::size_t i = 0; i < in.size(); ++i) out[i] = half_to_float(in[i]);
}

}  // namespace cgx::util
