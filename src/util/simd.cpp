// Runtime dispatch plus the scalar reference implementations.
//
// The scalar kernels below ARE the numerical specification: the SSE2/AVX2
// TUs reproduce these exact per-element operation sequences and the same
// canonical 8-lane reduction order, so every level is bit-identical. This
// TU is compiled with -ffp-contract=off (see util/CMakeLists.txt) so the
// compiler cannot fuse the mul+add sequences the contract keeps separate.
#include "util/simd.h"

#include <atomic>
#include <bit>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "util/check.h"
#include "util/simd_internal.h"

namespace cgx::util::simd {
namespace detail {
namespace {

// ------------------------------------------------------------- elementwise

void axpy_scalar(float alpha, const float* x, float* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void scale_scalar(float* x, float alpha, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) x[i] *= alpha;
}

void sub_scalar(const float* a, const float* b, float* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = a[i] - b[i];
}

void add_scalar(float* dst, const float* src, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] += src[i];
}

void add_scaled_scalar(const float* a, float beta, const float* b, float* out,
                       std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = a[i] + beta * b[i];
}

void madd_scalar(float* dst, const float* a, const float* b, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] += a[i] * b[i];
}

// ------------------------------------------------------------- reductions
//
// Element i always lands in lane i % 8; the lanes fold with combine_lanes.
// Keeping the lane loop in blocks of 8 lets the compiler map it onto
// whatever vector width it has without changing the math.

double reduce_sum_scalar(const float* x, std::size_t n) {
  double lanes[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    for (unsigned t = 0; t < 8; ++t) {
      lanes[t] += static_cast<double>(x[i + t]);
    }
  }
  for (; i < n; ++i) lanes[i % 8] += static_cast<double>(x[i]);
  return combine_lanes(lanes);
}

double reduce_dot_scalar(const float* x, const float* y, std::size_t n) {
  double lanes[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    for (unsigned t = 0; t < 8; ++t) {
      lanes[t] += static_cast<double>(x[i + t]) * static_cast<double>(y[i + t]);
    }
  }
  for (; i < n; ++i) {
    lanes[i % 8] += static_cast<double>(x[i]) * static_cast<double>(y[i]);
  }
  return combine_lanes(lanes);
}

double reduce_sqnorm_scalar(const float* x, std::size_t n) {
  return reduce_dot_scalar(x, x, n);
}

double reduce_sqdiff_scalar(const float* x, double mean, std::size_t n) {
  double lanes[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    for (unsigned t = 0; t < 8; ++t) {
      const double d = static_cast<double>(x[i + t]) - mean;
      lanes[t] += d * d;
    }
  }
  for (; i < n; ++i) {
    const double d = static_cast<double>(x[i]) - mean;
    lanes[i % 8] += d * d;
  }
  return combine_lanes(lanes);
}

float reduce_max_scalar(const float* x, std::size_t n, float init) {
  float lanes[8];
  for (auto& l : lanes) l = init;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    for (unsigned t = 0; t < 8; ++t) {
      // (lanes < x) ? x : lanes — keeps the lane value when x is NaN, the
      // same selection maxps(x, lanes) performs.
      lanes[t] = lanes[t] < x[i + t] ? x[i + t] : lanes[t];
    }
  }
  for (; i < n; ++i) {
    lanes[i % 8] = lanes[i % 8] < x[i] ? x[i] : lanes[i % 8];
  }
  return combine_lanes_max(lanes);
}

float reduce_max_abs_scalar(const float* x, std::size_t n) {
  float lanes[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    for (unsigned t = 0; t < 8; ++t) {
      const float a =
          std::bit_cast<float>(std::bit_cast<std::uint32_t>(x[i + t]) &
                               0x7fffffffu);
      lanes[t] = lanes[t] < a ? a : lanes[t];
    }
  }
  for (; i < n; ++i) {
    const float a = std::bit_cast<float>(std::bit_cast<std::uint32_t>(x[i]) &
                                         0x7fffffffu);
    lanes[i % 8] = lanes[i % 8] < a ? a : lanes[i % 8];
  }
  return combine_lanes_max(lanes);
}

// ------------------------------------------------------------ quantization

void qsgd_quantize_scalar(const float* v, const float* u, std::size_t n,
                          float inv_norm, std::uint32_t s,
                          std::uint32_t sign_bit, std::uint32_t* sym) {
  const float s_f = static_cast<float>(s);
  const auto s_i = static_cast<std::int32_t>(s);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t v_bits = std::bit_cast<std::uint32_t>(v[i]);
    const float a = std::bit_cast<float>(v_bits & 0x7fffffffu) * inv_norm;
    std::int32_t level = static_cast<std::int32_t>(a * s_f + u[i]);
    level = level < s_i ? level : s_i;
    sym[i] = static_cast<std::uint32_t>(level) | ((v_bits >> 31) * sign_bit);
  }
}

void qsgd_dequantize_scalar(const std::uint32_t* sym, std::size_t n,
                            float scale, std::uint32_t sign_bit,
                            unsigned sign_shift, float* out) {
  const std::uint32_t level_mask = sign_bit - 1;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t symbol = sym[i];
    const float magnitude = static_cast<float>(symbol & level_mask) * scale;
    out[i] = std::bit_cast<float>(std::bit_cast<std::uint32_t>(magnitude) |
                                  ((symbol & sign_bit) << sign_shift));
  }
}

// NUQ interval search by exponent extraction. Level k >= 1 has value
// 2^(k - top); a normalized a in [2^j, 2^(j+1)) therefore sits in interval
// lo = j + top (clamped to [0, top]), and zero/subnormal a (exponent field
// 0) clamps to interval 0. Identical to a linear scan over the level table
// for every finite a in [0, 1].
void nuq_quantize_scalar(const float* v, const float* u, std::size_t n,
                         float inv_norm, unsigned bits, std::uint32_t* sym) {
  const int top = (1 << (bits - 1)) - 1;
  const std::uint32_t sign_bit = 1u << (bits - 1);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t v_bits = std::bit_cast<std::uint32_t>(v[i]);
    float a = std::bit_cast<float>(v_bits & 0x7fffffffu) * inv_norm;
    a = a < 1.0f ? a : 1.0f;  // minps(a, 1) semantics: NaN -> 1
    const int e = static_cast<int>(std::bit_cast<std::uint32_t>(a) >> 23) -
                  127;
    int lo = e + top;
    lo = lo < 0 ? 0 : (lo > top ? top : lo);
    std::uint32_t inc = 0;
    if (lo < top) {
      const float low =
          lo == 0 ? 0.0f
                  : std::bit_cast<float>(
                        static_cast<std::uint32_t>(lo - top + 127) << 23);
      const float high = std::bit_cast<float>(
          static_cast<std::uint32_t>(lo + 1 - top + 127) << 23);
      const float p = (a - low) / (high - low);
      inc = u[i] < p ? 1u : 0u;
    }
    sym[i] = (static_cast<std::uint32_t>(lo) + inc) |
             ((v_bits >> 31) * sign_bit);
  }
}

void nuq_dequantize_scalar(const std::uint32_t* sym, std::size_t n, float norm,
                           unsigned bits, float* out) {
  const int top = (1 << (bits - 1)) - 1;
  const std::uint32_t sign_bit = 1u << (bits - 1);
  const std::uint32_t index_mask = sign_bit - 1;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t symbol = sym[i];
    const auto idx = static_cast<int>(symbol & index_mask);
    const float level =
        idx == 0 ? 0.0f
                 : std::bit_cast<float>(
                       static_cast<std::uint32_t>(idx - top + 127) << 23);
    const float value = level * norm;
    out[i] = std::bit_cast<float>(std::bit_cast<std::uint32_t>(value) ^
                                  ((symbol & sign_bit) ? 0x80000000u : 0u));
  }
}

// -------------------------------------------------------------------- gemm

void gemm_tile_scalar(const float* a, std::size_t lda, const float* b,
                      std::size_t ldb, float* c, std::size_t ldc,
                      std::size_t mb, std::size_t kb, std::size_t nb) {
  for (std::size_t i = 0; i < mb; ++i) {
    const float* arow = a + i * lda;
    float* crow = c + i * ldc;
    for (std::size_t k = 0; k < kb; ++k) {
      const float aik = arow[k];
      const float* brow = b + k * ldb;
      for (std::size_t j = 0; j < nb; ++j) crow[j] += aik * brow[j];
    }
  }
}

void gemm_tile_at_scalar(const float* a, std::size_t lda, const float* b,
                         std::size_t ldb, float* c, std::size_t ldc,
                         std::size_t mb, std::size_t kb, std::size_t nb) {
  for (std::size_t i = 0; i < mb; ++i) {
    float* crow = c + i * ldc;
    for (std::size_t k = 0; k < kb; ++k) {
      const float aik = a[k * lda + i];
      const float* brow = b + k * ldb;
      for (std::size_t j = 0; j < nb; ++j) crow[j] += aik * brow[j];
    }
  }
}

// ------------------------------------------------------------- copy engine
//
// The scalar copy IS std::memcpy: byte moves have no rounding, so the
// "scalar reference" for copies is simply the libc copy. copy_add reuses
// the elementwise add loop — same per-element sequence the vector levels
// reproduce.

void copy_bytes_scalar(std::byte* dst, const std::byte* src, std::size_t n) {
  if (n != 0) std::memcpy(dst, src, n);
}

void copy_add2_scalar(float* dst, const float* a, const float* b,
                      std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    float acc = dst[i] + a[i];
    dst[i] = acc + b[i];
  }
}

constexpr SimdOps kScalarOps = {
    axpy_scalar,       scale_scalar,          sub_scalar,
    add_scalar,        add_scaled_scalar,     madd_scalar,
    reduce_sum_scalar, reduce_dot_scalar,     reduce_sqnorm_scalar,
    reduce_sqdiff_scalar, reduce_max_scalar,  reduce_max_abs_scalar,
    qsgd_quantize_scalar, qsgd_dequantize_scalar,
    nuq_quantize_scalar,  nuq_dequantize_scalar,
    gemm_tile_scalar,  gemm_tile_at_scalar,
    nullptr,           nullptr,
    copy_bytes_scalar, add_scalar,  // copy_add == the elementwise add loop
    copy_add2_scalar,
    nullptr,           nullptr,     // no scalar vector path for half (see half.cpp)
};

}  // namespace

const SimdOps& scalar_ops() { return kScalarOps; }

}  // namespace detail

// ----------------------------------------------------------------- dispatch

namespace {

const detail::SimdOps* ops_for(Level level) {
  switch (level) {
    case Level::kAvx2:
      return &detail::avx2_ops();
    case Level::kSse2:
      return &detail::sse2_ops();
    case Level::kScalar:
      return &detail::scalar_ops();
  }
  return &detail::scalar_ops();
}

Level level_from_env() {
  const char* env = std::getenv("CGX_SIMD");
  if (env == nullptr || env[0] == '\0' || std::strcmp(env, "auto") == 0) {
    return max_supported_level();
  }
  if (std::strcmp(env, "off") == 0 || std::strcmp(env, "scalar") == 0) {
    return Level::kScalar;
  }
  if (std::strcmp(env, "sse2") == 0) return Level::kSse2;
  if (std::strcmp(env, "avx2") == 0) return Level::kAvx2;
  std::fprintf(stderr,
               "cgx: unknown CGX_SIMD value '%s' (want off|sse2|avx2|auto); "
               "using auto\n",
               env);
  return max_supported_level();
}

struct Dispatch {
  std::atomic<Level> level;
  std::atomic<const detail::SimdOps*> ops;
  Dispatch() {
    Level l = level_from_env();
    if (l > max_supported_level()) l = max_supported_level();
    level.store(l, std::memory_order_relaxed);
    ops.store(ops_for(l), std::memory_order_relaxed);
  }
};

Dispatch& dispatch() {
  static Dispatch d;
  return d;
}

const detail::SimdOps& ops() {
  return *dispatch().ops.load(std::memory_order_relaxed);
}

}  // namespace

Level max_supported_level() {
#if defined(__x86_64__) || defined(__i386__)
  static const Level kMax = [] {
    if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
      return Level::kAvx2;
    }
    return Level::kSse2;
  }();
  return kMax;
#else
  return Level::kScalar;
#endif
}

Level active_level() {
  return dispatch().level.load(std::memory_order_relaxed);
}

void set_level(Level level) {
  if (level > max_supported_level()) level = max_supported_level();
  dispatch().level.store(level, std::memory_order_relaxed);
  dispatch().ops.store(ops_for(level), std::memory_order_relaxed);
}

const char* level_name(Level level) {
  switch (level) {
    case Level::kScalar:
      return "scalar";
    case Level::kSse2:
      return "sse2";
    case Level::kAvx2:
      return "avx2";
  }
  return "?";
}

// ----------------------------------------------------------- public wrappers

void axpy(float alpha, std::span<const float> x, std::span<float> y) {
  CGX_DCHECK(x.size() == y.size());
  ops().axpy(alpha, x.data(), y.data(), x.size());
}

void scale(std::span<float> x, float alpha) {
  ops().scale(x.data(), alpha, x.size());
}

void sub(std::span<const float> a, std::span<const float> b,
         std::span<float> out) {
  CGX_DCHECK(a.size() == b.size() && a.size() == out.size());
  ops().sub(a.data(), b.data(), out.data(), a.size());
}

void add(std::span<float> dst, std::span<const float> src) {
  CGX_DCHECK(dst.size() == src.size());
  ops().add(dst.data(), src.data(), dst.size());
}

void add_scaled(std::span<const float> a, float beta, std::span<const float> b,
                std::span<float> out) {
  CGX_DCHECK(a.size() == b.size() && a.size() == out.size());
  ops().add_scaled(a.data(), beta, b.data(), out.data(), a.size());
}

void madd(std::span<float> dst, std::span<const float> a,
          std::span<const float> b) {
  CGX_DCHECK(dst.size() == a.size() && dst.size() == b.size());
  ops().madd(dst.data(), a.data(), b.data(), dst.size());
}

double reduce_sum(std::span<const float> x) {
  return ops().reduce_sum(x.data(), x.size());
}

double reduce_dot(std::span<const float> x, std::span<const float> y) {
  CGX_DCHECK(x.size() == y.size());
  return ops().reduce_dot(x.data(), y.data(), x.size());
}

double reduce_sqnorm(std::span<const float> x) {
  return ops().reduce_sqnorm(x.data(), x.size());
}

double reduce_sqdiff(std::span<const float> x, double mean) {
  return ops().reduce_sqdiff(x.data(), mean, x.size());
}

float reduce_max(std::span<const float> x, float init) {
  return ops().reduce_max(x.data(), x.size(), init);
}

float reduce_max_abs(std::span<const float> x) {
  return ops().reduce_max_abs(x.data(), x.size());
}

void qsgd_quantize(const float* v, const float* u, std::size_t n,
                   float inv_norm, std::uint32_t s, std::uint32_t sign_bit,
                   std::uint32_t* sym) {
  ops().qsgd_quantize(v, u, n, inv_norm, s, sign_bit, sym);
}

void qsgd_dequantize(const std::uint32_t* sym, std::size_t n, float scale,
                     std::uint32_t sign_bit, unsigned sign_shift, float* out) {
  ops().qsgd_dequantize(sym, n, scale, sign_bit, sign_shift, out);
}

void nuq_quantize(const float* v, const float* u, std::size_t n,
                  float inv_norm, unsigned bits, std::uint32_t* sym) {
  ops().nuq_quantize(v, u, n, inv_norm, bits, sym);
}

void nuq_dequantize(const std::uint32_t* sym, std::size_t n, float norm,
                    unsigned bits, float* out) {
  ops().nuq_dequantize(sym, n, norm, bits, out);
}

void gemm_tile(const float* a, std::size_t lda, const float* b,
               std::size_t ldb, float* c, std::size_t ldc, std::size_t mb,
               std::size_t kb, std::size_t nb) {
  ops().gemm_tile(a, lda, b, ldb, c, ldc, mb, kb, nb);
}

void gemm_tile_at(const float* a, std::size_t lda, const float* b,
                  std::size_t ldb, float* c, std::size_t ldc, std::size_t mb,
                  std::size_t kb, std::size_t nb) {
  ops().gemm_tile_at(a, lda, b, ldb, c, ldc, mb, kb, nb);
}

bool pack_words(const std::uint32_t* sym, std::size_t nwords, unsigned bits,
                std::byte* out) {
  const auto fn = ops().pack_words;
  return fn != nullptr && fn(sym, nwords, bits, out);
}

bool unpack_words(const std::byte* in, std::size_t nwords, unsigned bits,
                  std::uint32_t* sym) {
  const auto fn = ops().unpack_words;
  return fn != nullptr && fn(in, nwords, bits, sym);
}

// -------------------------------------------------------------- copy engine

namespace {

// Padded so the three counters never false-share with neighbours; eight rank
// threads bump these on every frame copy.
struct alignas(64) CopyCounters {
  std::atomic<std::uint64_t> copied_bytes{0};
  std::atomic<std::uint64_t> copy_add_bytes{0};
  std::atomic<std::uint64_t> calls{0};
};

CopyCounters& copy_counters() {
  static CopyCounters c;
  return c;
}

}  // namespace

CopyStats copy_engine_stats() {
  CopyCounters& c = copy_counters();
  CopyStats s;
  s.copied_bytes = c.copied_bytes.load(std::memory_order_relaxed);
  s.copy_add_bytes = c.copy_add_bytes.load(std::memory_order_relaxed);
  s.calls = c.calls.load(std::memory_order_relaxed);
  return s;
}

void reset_copy_engine_stats() {
  CopyCounters& c = copy_counters();
  c.copied_bytes.store(0, std::memory_order_relaxed);
  c.copy_add_bytes.store(0, std::memory_order_relaxed);
  c.calls.store(0, std::memory_order_relaxed);
}

std::size_t non_temporal_threshold() { return detail::kNonTemporalCopyBytes; }

void copy_bytes(void* dst, const void* src, std::size_t n) {
  if (n == 0) return;
  CopyCounters& c = copy_counters();
  c.copied_bytes.fetch_add(n, std::memory_order_relaxed);
  c.calls.fetch_add(1, std::memory_order_relaxed);
  ops().copy_bytes(static_cast<std::byte*>(dst),
                   static_cast<const std::byte*>(src), n);
}

void copy_floats(std::span<const float> src, std::span<float> dst) {
  CGX_DCHECK(src.size() == dst.size());
  copy_bytes(dst.data(), src.data(), src.size() * sizeof(float));
}

void copy_add(std::span<float> dst, std::span<const float> src) {
  CGX_DCHECK(dst.size() == src.size());
  if (dst.empty()) return;
  CopyCounters& c = copy_counters();
  c.copy_add_bytes.fetch_add(src.size() * sizeof(float),
                             std::memory_order_relaxed);
  c.calls.fetch_add(1, std::memory_order_relaxed);
  ops().copy_add(dst.data(), src.data(), dst.size());
}

void copy_add2(std::span<float> dst, std::span<const float> a,
               std::span<const float> b) {
  CGX_DCHECK(dst.size() == a.size());
  CGX_DCHECK(dst.size() == b.size());
  if (dst.empty()) return;
  CopyCounters& c = copy_counters();
  c.copy_add_bytes.fetch_add(2 * dst.size() * sizeof(float),
                             std::memory_order_relaxed);
  c.calls.fetch_add(1, std::memory_order_relaxed);
  ops().copy_add2(dst.data(), a.data(), b.data(), dst.size());
}

bool f32_to_f16(const float* in, std::uint16_t* out, std::size_t n) {
  const auto fn = ops().f32_to_f16;
  return fn != nullptr && fn(in, out, n);
}

bool f16_to_f32(const std::uint16_t* in, float* out, std::size_t n) {
  const auto fn = ops().f16_to_f32;
  return fn != nullptr && fn(in, out, n);
}

}  // namespace cgx::util::simd
