#include "util/virtual_clock.h"

namespace cgx::util {

VirtualClock::VirtualClock(int ranks, int nodes)
    : rank_now_(static_cast<std::size_t>(ranks > 0 ? ranks : 1)),
      nic_tx_(static_cast<std::size_t>(nodes > 0 ? nodes : 1)),
      nic_rx_(static_cast<std::size_t>(nodes > 0 ? nodes : 1)),
      fabric_(static_cast<std::size_t>(nodes > 0 ? nodes : 1)) {}

void VirtualClock::reset() {
  for (auto& c : rank_now_) c.v.store(0, std::memory_order_relaxed);
  for (auto& c : nic_tx_) c.v.store(0, std::memory_order_relaxed);
  for (auto& c : nic_rx_) c.v.store(0, std::memory_order_relaxed);
  for (auto& c : fabric_) c.v.store(0, std::memory_order_relaxed);
}

std::uint64_t VirtualClock::max_rank_now_ns() const {
  std::uint64_t m = 0;
  for (const auto& c : rank_now_) {
    std::uint64_t v = c.v.load(std::memory_order_relaxed);
    if (v > m) m = v;
  }
  return m;
}

std::uint64_t VirtualClock::max_busy_ns() const {
  std::uint64_t m = 0;
  auto fold = [&m](const std::vector<Cell>& cells) {
    for (const auto& c : cells) {
      std::uint64_t v = c.v.load(std::memory_order_relaxed);
      if (v > m) m = v;
    }
  };
  fold(nic_tx_);
  fold(nic_rx_);
  fold(fabric_);
  return m;
}

std::uint64_t VirtualClock::elapsed_ns() const {
  std::uint64_t causal = max_rank_now_ns();
  std::uint64_t busy = max_busy_ns();
  return causal > busy ? causal : busy;
}

}  // namespace cgx::util
