// Internal dispatch table shared by the scalar/SSE2/AVX2 translation units.
// Not installed API — include only from src/util/simd*.cpp and tests that
// poke specific levels.
#pragma once

#include <cstddef>
#include <cstdint>

namespace cgx::util::simd::detail {

struct SimdOps {
  void (*axpy)(float alpha, const float* x, float* y, std::size_t n);
  void (*scale)(float* x, float alpha, std::size_t n);
  void (*sub)(const float* a, const float* b, float* out, std::size_t n);
  void (*add)(float* dst, const float* src, std::size_t n);
  void (*add_scaled)(const float* a, float beta, const float* b, float* out,
                     std::size_t n);
  void (*madd)(float* dst, const float* a, const float* b, std::size_t n);

  double (*reduce_sum)(const float* x, std::size_t n);
  double (*reduce_dot)(const float* x, const float* y, std::size_t n);
  double (*reduce_sqnorm)(const float* x, std::size_t n);
  double (*reduce_sqdiff)(const float* x, double mean, std::size_t n);
  float (*reduce_max)(const float* x, std::size_t n, float init);
  float (*reduce_max_abs)(const float* x, std::size_t n);

  void (*qsgd_quantize)(const float* v, const float* u, std::size_t n,
                        float inv_norm, std::uint32_t s, std::uint32_t sign_bit,
                        std::uint32_t* sym);
  void (*qsgd_dequantize)(const std::uint32_t* sym, std::size_t n, float scale,
                          std::uint32_t sign_bit, unsigned sign_shift,
                          float* out);
  void (*nuq_quantize)(const float* v, const float* u, std::size_t n,
                       float inv_norm, unsigned bits, std::uint32_t* sym);
  void (*nuq_dequantize)(const std::uint32_t* sym, std::size_t n, float norm,
                         unsigned bits, float* out);

  void (*gemm_tile)(const float* a, std::size_t lda, const float* b,
                    std::size_t ldb, float* c, std::size_t ldc, std::size_t mb,
                    std::size_t kb, std::size_t nb);
  void (*gemm_tile_at)(const float* a, std::size_t lda, const float* b,
                       std::size_t ldb, float* c, std::size_t ldc,
                       std::size_t mb, std::size_t kb, std::size_t nb);

  // May be null (no vector path at this level).
  bool (*pack_words)(const std::uint32_t* sym, std::size_t nwords,
                     unsigned bits, std::byte* out);
  bool (*unpack_words)(const std::byte* in, std::size_t nwords, unsigned bits,
                       std::uint32_t* sym);

  // Streaming copy engine (see simd.h). copy_bytes moves raw bytes —
  // trivially bit-identical at every level; vector levels add software
  // prefetch and switch to non-temporal stores at kNonTemporalCopyBytes.
  // copy_add performs dst[i] += src[i] in increasing index order, the same
  // per-element rounding as the scalar loop (bit-identical at any width).
  // copy_add2 folds two sources in one pass over dst with the exact
  // per-element sequence dst[i] += a[i]; dst[i] += b[i]; — bit-identical to
  // two copy_add calls, but dst is read and written once instead of twice.
  void (*copy_bytes)(std::byte* dst, const std::byte* src, std::size_t n);
  void (*copy_add)(float* dst, const float* src, std::size_t n);
  void (*copy_add2)(float* dst, const float* a, const float* b,
                    std::size_t n);

  // Bulk binary16 conversions covering the whole range [0, n). May be null
  // (no vector path at this level): the caller (util/half.cpp) then runs
  // its scalar reference loops. Vector implementations must be bit-identical
  // to float_to_half / half_to_float, including RN-even rounding, subnormals
  // and the NaN mantissa squash.
  bool (*f32_to_f16)(const float* in, std::uint16_t* out, std::size_t n);
  bool (*f16_to_f32)(const std::uint16_t* in, float* out, std::size_t n);
};

// Copies at or above this size bypass the cache on the store side
// (non-temporal): a buffer this large is past L2, and streaming it through
// the cache would evict the working set twice. Non-temporal stores write the
// same bytes — the threshold affects cache state, never results.
inline constexpr std::size_t kNonTemporalCopyBytes = 2u << 20;

// Canonical lane fold shared by every reduction implementation. The tree
// shape is part of the bit-exactness contract — do not reassociate.
inline double combine_lanes(const double l[8]) {
  return ((l[0] + l[1]) + (l[2] + l[3])) + ((l[4] + l[5]) + (l[6] + l[7]));
}

inline float combine_lanes_max(const float l[8]) {
  auto mx = [](float a, float b) { return a < b ? b : a; };
  return mx(mx(mx(l[0], l[1]), mx(l[2], l[3])),
            mx(mx(l[4], l[5]), mx(l[6], l[7])));
}

const SimdOps& scalar_ops();
const SimdOps& sse2_ops();  // null-equivalent to scalar on non-x86
const SimdOps& avx2_ops();  // only safe to call through when CPU has AVX2+FMA

}  // namespace cgx::util::simd::detail
