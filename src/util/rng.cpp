#include "util/rng.h"

#include <cmath>

#include "util/check.h"

namespace cgx::util {
namespace {

// splitmix64: used to expand a 64-bit seed into the xoshiro state, as
// recommended by the xoshiro authors.
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  CGX_DCHECK(bound > 0);
  // Lemire's multiply-shift rejection method: unbiased and one division-free
  // multiplication in the common case.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  std::uint64_t low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

float Rng::next_float() {
  return static_cast<float>(next_u64() >> 40) * 0x1.0p-24f;
}

void Rng::fill_floats(std::span<float> out) {
  // State lives in locals so the compiler keeps it in registers across the
  // batch, and each 64-bit draw yields FOUR floats (disjoint 16-bit windows
  // of the xoshiro256** output — the ** scrambler makes every window pass
  // its statistical tests), quartering the generator work relative to
  // repeated next_float() calls. 16-bit granularity (step 2^-16) is ample
  // for the stochastic-rounding probabilities these batches feed — hardware
  // SR units typically use 8-16 random bits.
  std::uint64_t s0 = s_[0], s1 = s_[1], s2 = s_[2], s3 = s_[3];
  const auto draw = [&] {
    const std::uint64_t result = rotl(s1 * 5, 7) * 9;
    const std::uint64_t t = s1 << 17;
    s2 ^= s0;
    s3 ^= s1;
    s1 ^= s2;
    s0 ^= s3;
    s2 ^= t;
    s3 = rotl(s3, 45);
    return result;
  };
  // Two phases per block: a serial draw loop that deposits the 16-bit
  // windows into a stack buffer, then a u16->f32 conversion loop over the
  // buffer that gcc vectorizes (the draw's serial dependency chain would
  // otherwise block SIMD for the whole body). ~40% faster than extracting
  // scalars draw-by-draw.
  constexpr std::size_t kBlock = 256;
  std::uint16_t buf[kBlock];
  std::size_t i = 0;
  while (i + kBlock <= out.size()) {
    for (std::size_t d = 0; d < kBlock / 4; ++d) {
      const std::uint64_t r = draw();
      buf[4 * d] = static_cast<std::uint16_t>(r >> 48);
      buf[4 * d + 1] = static_cast<std::uint16_t>(r >> 32);
      buf[4 * d + 2] = static_cast<std::uint16_t>(r >> 16);
      buf[4 * d + 3] = static_cast<std::uint16_t>(r);
    }
    float* o = out.data() + i;
    for (std::size_t j = 0; j < kBlock; ++j) {
      o[j] = static_cast<float>(buf[j]) * 0x1.0p-16f;
    }
    i += kBlock;
  }
  for (; i + 4 <= out.size(); i += 4) {
    const std::uint64_t r = draw();
    out[i] = static_cast<float>(r >> 48) * 0x1.0p-16f;
    out[i + 1] = static_cast<float>((r >> 32) & 0xffffu) * 0x1.0p-16f;
    out[i + 2] = static_cast<float>((r >> 16) & 0xffffu) * 0x1.0p-16f;
    out[i + 3] = static_cast<float>(r & 0xffffu) * 0x1.0p-16f;
  }
  if (i < out.size()) {
    const std::uint64_t r = draw();
    for (unsigned k = 0; i < out.size(); ++i, ++k) {
      out[i] = static_cast<float>((r >> (48 - 16 * k)) & 0xffffu) * 0x1.0p-16f;
    }
  }
  s_[0] = s0;
  s_[1] = s1;
  s_[2] = s2;
  s_[3] = s3;
}

double Rng::next_gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = next_double();
  } while (u1 <= 1e-300);
  const double u2 = next_double();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * 3.14159265358979323846 * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

Rng Rng::split(std::uint64_t i) const {
  // Mix the child index with the parent state through splitmix64 so children
  // with adjacent indices start far apart.
  std::uint64_t x = s_[0] ^ (s_[3] + 0x632be59bd9b4e019ULL * (i + 1));
  return Rng(splitmix64(x));
}

}  // namespace cgx::util
