#include "util/rng.h"

#include <cmath>

#include "util/check.h"

namespace cgx::util {
namespace {

// splitmix64: used to expand a 64-bit seed into the xoshiro state, as
// recommended by the xoshiro authors.
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  CGX_DCHECK(bound > 0);
  // Lemire's multiply-shift rejection method: unbiased and one division-free
  // multiplication in the common case.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  std::uint64_t low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

float Rng::next_float() {
  return static_cast<float>(next_u64() >> 40) * 0x1.0p-24f;
}

double Rng::next_gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = next_double();
  } while (u1 <= 1e-300);
  const double u2 = next_double();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * 3.14159265358979323846 * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

Rng Rng::split(std::uint64_t i) const {
  // Mix the child index with the parent state through splitmix64 so children
  // with adjacent indices start far apart.
  std::uint64_t x = s_[0] ^ (s_[3] + 0x632be59bd9b4e019ULL * (i + 1));
  return Rng(splitmix64(x));
}

}  // namespace cgx::util
