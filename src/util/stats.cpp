#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace cgx::util {

void OnlineStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void OnlineStats::merge(const OnlineStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void OnlineStats::reset() { *this = OnlineStats(); }

double OnlineStats::mean() const { return count_ == 0 ? 0.0 : mean_; }

double OnlineStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

double percentile(std::span<const double> xs, double q) {
  CGX_CHECK(!xs.empty());
  CGX_CHECK(q >= 0.0 && q <= 1.0);
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted[0];
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

void Ema::add(double x) {
  if (empty_) {
    value_ = x;
    empty_ = false;
  } else {
    value_ = alpha_ * x + (1.0 - alpha_) * value_;
  }
}

}  // namespace cgx::util
