// Deterministic virtual-time accounting for the simulated multi-node fabric.
//
// The in-process SPMD harness moves real bytes between device threads, but
// wall-clock time on an oversubscribed CI box says nothing about how a
// schedule would behave on a cluster. A VirtualClock attributes *modelled*
// time instead, with an accounting discipline chosen so the numbers are
// bit-identical run to run regardless of thread scheduling:
//
//   * per-rank causal time (`rank_now`): a sender ADDS its serialization
//     cost (program order on the rank's thread makes the sum deterministic);
//     a receiver MAX-MERGES the message's arrival stamp. Addition and max
//     are commutative, so any-source arrival order can reshuffle WHEN the
//     merges happen but never what they compute.
//   * shared-resource floors (`nic_tx`/`nic_rx`/`fabric`): relaxed atomic
//     byte-time sums per node. Concurrent flows through one simulated NIC
//     therefore share its bandwidth: an epoch cannot be shorter than any
//     NIC's total busy time, which is exactly the α-β-with-contention model
//     (see comm/simnet.h for who charges what).
//
// elapsed_ns() = max(max rank causal time, max resource floor). All
// arithmetic is integer nanoseconds (costs are derived from integer
// picoseconds-per-byte rates), so results are also bit-identical across
// CGX_SIMD/CGX_NUMA settings and across machines.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

namespace cgx::util {

class VirtualClock {
 public:
  VirtualClock(int ranks, int nodes);

  VirtualClock(const VirtualClock&) = delete;
  VirtualClock& operator=(const VirtualClock&) = delete;

  int ranks() const { return static_cast<int>(rank_now_.size()); }
  int nodes() const { return static_cast<int>(nic_tx_.size()); }

  // Zeroes every counter. Only safe while the fabric is quiesced (benches
  // call it between the warm-up and the measured epoch).
  void reset();

  // ---- per-rank causal time ----
  // advance_rank is a relaxed add: sends on one rank are program-ordered by
  // its thread, and addition commutes, so even a rank whose training and
  // comm threads interleave charges a deterministic total. merge_rank is a
  // CAS-max: commutative and idempotent, so arrival order cannot matter.
  std::uint64_t rank_now_ns(int rank) const {
    return cell(rank_now_, rank).load(std::memory_order_relaxed);
  }
  void advance_rank(int rank, std::uint64_t ns) {
    cell(rank_now_, rank).fetch_add(ns, std::memory_order_relaxed);
  }
  void merge_rank(int rank, std::uint64_t stamp_ns) {
    auto& now = cell(rank_now_, rank);
    std::uint64_t cur = now.load(std::memory_order_relaxed);
    while (cur < stamp_ns &&
           !now.compare_exchange_weak(cur, stamp_ns,
                                      std::memory_order_relaxed)) {
    }
  }

  // ---- shared-resource busy floors (per node) ----
  void charge_nic_tx(int node, std::uint64_t ns) {
    cell(nic_tx_, node).fetch_add(ns, std::memory_order_relaxed);
  }
  void charge_nic_rx(int node, std::uint64_t ns) {
    cell(nic_rx_, node).fetch_add(ns, std::memory_order_relaxed);
  }
  void charge_fabric(int node, std::uint64_t ns) {
    cell(fabric_, node).fetch_add(ns, std::memory_order_relaxed);
  }
  std::uint64_t nic_tx_busy_ns(int node) const {
    return cell(nic_tx_, node).load(std::memory_order_relaxed);
  }
  std::uint64_t nic_rx_busy_ns(int node) const {
    return cell(nic_rx_, node).load(std::memory_order_relaxed);
  }
  std::uint64_t fabric_busy_ns(int node) const {
    return cell(fabric_, node).load(std::memory_order_relaxed);
  }

  std::uint64_t max_rank_now_ns() const;
  std::uint64_t max_busy_ns() const;
  // The epoch's modelled duration: no rank can finish before its causal
  // chain, and no schedule can beat a saturated shared resource.
  std::uint64_t elapsed_ns() const;

 private:
  // One atomic per cache line: ranks hammer their own cell on every send.
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> v{0};
  };
  static std::atomic<std::uint64_t>& cell(std::vector<Cell>& c, int i) {
    return c[static_cast<std::size_t>(i)].v;
  }
  static const std::atomic<std::uint64_t>& cell(const std::vector<Cell>& c,
                                                int i) {
    return c[static_cast<std::size_t>(i)].v;
  }

  std::vector<Cell> rank_now_;
  std::vector<Cell> nic_tx_;
  std::vector<Cell> nic_rx_;
  std::vector<Cell> fabric_;
};

}  // namespace cgx::util
