// Bit-level packing for quantized gradient payloads.
//
// QSGD with b bits per element produces symbols in [0, 2^b); the wire format
// packs them densely, little-endian within each 64-bit word, exactly like the
// CUDA kernels in the original CGX pack values into machine words. Writer and
// reader keep a 128-bit accumulator so symbols spanning a word boundary need
// no special casing — 4-bit pack/unpack runs at memory speed, which the
// paper's Appendix A requires (compression overhead in the 1-3% range).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "util/check.h"

namespace cgx::util {

// Number of bytes needed to hold n symbols of `bits` bits, rounded up to
// whole 8-byte words (word granularity keeps the unpacker simple and mirrors
// GPU word-aligned stores).
std::size_t packed_size_bytes(std::size_t n, unsigned bits);

class BitWriter {
 public:
  // `out` must have at least packed_size_bytes(n, bits) capacity for the
  // symbols that will be written.
  BitWriter(std::span<std::byte> out, unsigned bits);

  void write(std::uint64_t symbol);
  // Flushes the partial word; must be called exactly once, after all writes.
  void finish();

  std::size_t symbols_written() const { return symbols_; }

 private:
  std::span<std::byte> out_;
  unsigned bits_;
  unsigned __int128 acc_ = 0;
  unsigned acc_bits_ = 0;
  std::size_t word_index_ = 0;
  std::size_t symbols_ = 0;
  bool finished_ = false;
};

class BitReader {
 public:
  BitReader(std::span<const std::byte> in, unsigned bits);

  std::uint64_t read();

  std::size_t symbols_read() const { return symbols_; }

 private:
  std::span<const std::byte> in_;
  unsigned bits_;
  unsigned __int128 acc_ = 0;
  unsigned acc_bits_ = 0;
  std::size_t word_index_ = 0;
  std::size_t symbols_ = 0;
};

// Whole-buffer pack/unpack (used by compressors). Bit widths that divide 64
// (1/2/4/8/16/32) take a word-at-a-time fast path where no symbol straddles
// a word boundary; other widths run a generic 128-bit accumulator loop.
// Both produce payloads bit-identical to BitWriter/BitReader.
void pack_symbols(std::span<const std::uint32_t> symbols, unsigned bits,
                  std::span<std::byte> out);
void unpack_symbols(std::span<const std::byte> in, unsigned bits,
                    std::span<std::uint32_t> symbols);

// Smallest symbol count whose packed size is a whole number of 64-bit words:
// 64 / gcd(bits, 64). Chunking a symbol stream at multiples of this value
// lets independent workers pack/unpack disjoint word ranges of one payload
// (each chunk starts with a fresh accumulator on a word boundary).
std::size_t symbols_per_word_cycle(unsigned bits);

// Pack/unpack a sub-range of a larger symbol stream. `first_symbol` must be
// a multiple of symbols_per_word_cycle(bits); `payload` is the full packed
// buffer for the whole stream. Used by threaded compressors.
void pack_symbols_at(std::span<const std::uint32_t> symbols,
                     std::size_t first_symbol, unsigned bits,
                     std::span<std::byte> payload);
void unpack_symbols_at(std::span<const std::byte> payload,
                       std::size_t first_symbol, unsigned bits,
                       std::span<std::uint32_t> symbols);

}  // namespace cgx::util
