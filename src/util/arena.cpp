#include "util/arena.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <tuple>

#if defined(__linux__)
#include <sys/mman.h>
#endif

#include "util/check.h"

namespace cgx::util {
namespace {

std::size_t round_up(std::size_t n, std::size_t align) {
  return (n + align - 1) & ~(align - 1);
}

}  // namespace

// Blocks are raw reservations. On Linux they come from mmap so huge-page
// advice applies to whole mappings and startup cost is lazy (pages fault in
// on first touch — the NUMA placement hook); elsewhere plain aligned new.
struct Arena::Block {
  std::byte* base = nullptr;
  std::size_t size = 0;
  std::size_t used = 0;
  bool mmapped = false;
};

bool Arena::huge_pages_enabled() {
  static const bool kEnabled = [] {
    const char* env = std::getenv("CGX_HUGEPAGES");
    return env != nullptr &&
           (std::strcmp(env, "on") == 0 || std::strcmp(env, "1") == 0);
  }();
  return kEnabled;
}

Arena::Arena(std::size_t first_block_bytes, bool huge_pages)
    : first_block_bytes_(std::max<std::size_t>(first_block_bytes, 4096)),
      want_huge_pages_(huge_pages) {}

Arena::~Arena() {
  ArenaRegistry::instance().remove_owner(this);
  for (Block& b : blocks_) {
    if (b.mmapped) {
#if defined(__linux__)
      ::munmap(b.base, b.size);
#endif
    } else {
      ::operator delete[](b.base, std::align_val_t{kAlignment});
    }
  }
}

void* Arena::allocate(std::size_t bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  return allocate_locked(bytes);
}

void* Arena::allocate_locked(std::size_t bytes) {
  const std::size_t need = round_up(std::max<std::size_t>(bytes, 1),
                                    kAlignment);
  if (blocks_.empty() || blocks_.back().used + need > blocks_.back().size) {
    // Geometric growth keeps block count logarithmic in total footprint, so
    // a warm arena's registry stays a handful of ranges.
    std::size_t target = blocks_.empty() ? first_block_bytes_
                                         : blocks_.back().size * 2;
    target = std::max(target, need);
    Block block;
    block.size = round_up(target, 4096);
#if defined(__linux__)
    void* mapped = ::mmap(nullptr, block.size, PROT_READ | PROT_WRITE,
                          MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (mapped != MAP_FAILED) {
      block.base = static_cast<std::byte*>(mapped);
      block.mmapped = true;
      if (want_huge_pages_) {
#if defined(MADV_HUGEPAGE)
        if (::madvise(mapped, block.size, MADV_HUGEPAGE) == 0) {
          huge_pages_active_ = true;
        }
#endif
      }
    }
#endif
    if (block.base == nullptr) {
      block.base = static_cast<std::byte*>(
          ::operator new[](block.size, std::align_val_t{kAlignment}));
    }
    CGX_CHECK_EQ(reinterpret_cast<std::uintptr_t>(block.base) % kAlignment,
                 0u);
    reserved_ += block.size;
    ArenaRegistry::instance().add(block.base, block.size, this);
    blocks_.push_back(block);
  }
  Block& b = blocks_.back();
  void* p = b.base + b.used;
  b.used += need;
  allocated_ += need;
  return p;
}

std::size_t Arena::reserved_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return reserved_;
}

std::size_t Arena::allocated_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return allocated_;
}

std::size_t Arena::block_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return blocks_.size();
}

bool Arena::huge_pages_active() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return huge_pages_active_;
}

bool Arena::owns(const void* p) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const Block& b : blocks_) {
    if (p >= b.base && p < b.base + b.size) return true;
  }
  return false;
}

// ------------------------------------------------------------ ArenaRegistry

ArenaRegistry& ArenaRegistry::instance() {
  // Intentionally leaked: arenas with process lifetime (rank_arena) must be
  // able to unregister during static destruction without ordering hazards.
  static ArenaRegistry* const kRegistry = new ArenaRegistry();
  return *kRegistry;
}

void ArenaRegistry::add(const void* base, std::size_t size, Arena* arena) {
  std::lock_guard<std::mutex> lock(mutex_);
  ranges_.emplace_back(base, static_cast<const std::byte*>(base) + size,
                       arena);
}

void ArenaRegistry::remove_owner(Arena* arena) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::erase_if(ranges_, [arena](const auto& r) {
    return std::get<2>(r) == arena;
  });
}

Arena* ArenaRegistry::owner(const void* p) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [base, end, arena] : ranges_) {
    if (p >= base && p < end) return arena;
  }
  return nullptr;
}

// ------------------------------------------------------------- rank arenas

Arena& rank_arena(int rank) {
  CGX_CHECK_GE(rank, 0);
  // Process lifetime by design (see header): never destroyed, so spans
  // handed out survive any engine/transport teardown order.
  static std::mutex* const mu = new std::mutex();
  static std::deque<std::unique_ptr<Arena>>* const arenas =
      new std::deque<std::unique_ptr<Arena>>();
  std::lock_guard<std::mutex> lock(*mu);
  while (arenas->size() <= static_cast<std::size_t>(rank)) {
    arenas->push_back(std::make_unique<Arena>());
  }
  return *(*arenas)[static_cast<std::size_t>(rank)];
}

// ---------------------------------------------------------- thread binding

namespace {
thread_local Arena* t_current_arena = nullptr;
}  // namespace

Arena* current_arena() { return t_current_arena; }

ScopedArena::ScopedArena(Arena& arena) : previous_(t_current_arena) {
  t_current_arena = &arena;
}

ScopedArena::~ScopedArena() { t_current_arena = previous_; }

}  // namespace cgx::util
