// CRC32 (IEEE 802.3, polynomial 0xEDB88320) over byte spans.
//
// Used by the transport layer's optional frame checksums: the sender stamps
// each ring frame with the CRC of its payload, the receiver recomputes it
// after the copy-out and requests retransmission on mismatch (see
// comm/ring_channel.h). Incremental form so a payload that wraps the
// physical end of a ring slab can be checksummed in two passes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace cgx::util {

inline constexpr std::uint32_t kCrc32Seed = 0xffffffffu;

// Feeds `data` into a running CRC. Start from kCrc32Seed; chain the return
// value through subsequent calls; finalize with crc32_finish.
std::uint32_t crc32_update(std::uint32_t state, std::span<const std::byte> data);

inline std::uint32_t crc32_finish(std::uint32_t state) {
  return state ^ 0xffffffffu;
}

// One-shot convenience.
inline std::uint32_t crc32(std::span<const std::byte> data) {
  return crc32_finish(crc32_update(kCrc32Seed, data));
}

}  // namespace cgx::util
