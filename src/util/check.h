// Lightweight precondition / invariant checking.
//
// CHECK* macros are always on (they guard API contracts and are cheap relative
// to the numerical work in this library); DCHECK* compile out in NDEBUG
// builds and are used in inner loops.
//
// A failed check prints the condition, location, and an optional streamed
// message, then aborts. We deliberately abort rather than throw: checks fire
// on programmer error, and several call sites run on detached device threads
// where an exception could not be handled meaningfully (see
// CppCoreGuidelines I.5/E.12).
#pragma once

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace cgx::util {

namespace detail {

// Collects the streamed message and aborts in the destructor.
class CheckFailure {
 public:
  CheckFailure(const char* cond, const char* file, int line) {
    stream_ << "CHECK failed: " << cond << " at " << file << ":" << line
            << " ";
  }
  [[noreturn]] ~CheckFailure() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }
  template <typename T>
  CheckFailure& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace cgx::util

#define CGX_CHECK(cond)                                              \
  if (cond) {                                                        \
  } else                                                             \
    ::cgx::util::detail::CheckFailure(#cond, __FILE__, __LINE__)

#define CGX_CHECK_OP(a, b, op) \
  CGX_CHECK((a)op(b)) << "(" << (a) << " vs " << (b) << ") "

#define CGX_CHECK_EQ(a, b) CGX_CHECK_OP(a, b, ==)
#define CGX_CHECK_NE(a, b) CGX_CHECK_OP(a, b, !=)
#define CGX_CHECK_LT(a, b) CGX_CHECK_OP(a, b, <)
#define CGX_CHECK_LE(a, b) CGX_CHECK_OP(a, b, <=)
#define CGX_CHECK_GT(a, b) CGX_CHECK_OP(a, b, >)
#define CGX_CHECK_GE(a, b) CGX_CHECK_OP(a, b, >=)

#ifdef NDEBUG
#define CGX_DCHECK(cond) \
  if (true) {            \
  } else                 \
    ::cgx::util::detail::CheckFailure(#cond, __FILE__, __LINE__)
#else
#define CGX_DCHECK(cond) CGX_CHECK(cond)
#endif
