// Online and batch statistics used by benches (step-time aggregation) and by
// the adaptive-compression gradient-statistics collector.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace cgx::util {

// Welford's online mean/variance. Numerically stable for long benchmark runs.
class OnlineStats {
 public:
  void add(double x);
  void merge(const OnlineStats& other);
  void reset();

  std::size_t count() const { return count_; }
  double mean() const;
  // Sample variance (n-1 denominator); 0 for fewer than 2 samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Percentile of a sample set (linear interpolation between order statistics).
// q in [0, 1]. The input is copied; fine for bench-sized data.
double percentile(std::span<const double> xs, double q);

// Exponential moving average, used for the gradient-norm statistics that
// drive adaptive bit-width assignment.
class Ema {
 public:
  explicit Ema(double alpha) : alpha_(alpha) {}
  void add(double x);
  double value() const { return value_; }
  bool empty() const { return empty_; }

 private:
  double alpha_;
  double value_ = 0.0;
  bool empty_ = true;
};

}  // namespace cgx::util
