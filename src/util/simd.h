// Portable SIMD kernel layer with runtime CPU dispatch.
//
// Every numerical hot path in the library (tensor_ops GEMM, the nn layer
// reductions, QSGD/NUQ quantization, bitio pack/unpack) routes through the
// kernels declared here. At startup the best instruction set the CPU
// supports is selected (AVX2+FMA > SSE2 > scalar); the CGX_SIMD environment
// variable (`off`/`scalar`, `sse2`, `avx2`, `auto`) overrides the choice so
// tests can pin a level, and set_level() switches levels at runtime for
// in-process A/B comparison.
//
// Bit-exactness contract: for identical inputs, every kernel produces
// bit-identical outputs at every dispatch level. Elementwise kernels
// guarantee this by performing the exact same rounding sequence per element
// (multiply then add — never fused — for float math). Reductions guarantee
// it by a *canonical combine order*: the input is striped across eight
// double-precision lane accumulators (element i lands in lane i % 8,
// regardless of vector width) and the lanes are folded with the fixed tree
//   ((l0+l1) + (l2+l3)) + ((l4+l5) + (l6+l7)).
// The scalar reference implements this same order, so "scalar" is not a
// different numerical contract — it is the specification. All three TUs
// (scalar/sse2/avx2) are compiled with -ffp-contract=off so the compiler
// cannot re-fuse what the contract keeps separate.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace cgx::util::simd {

enum class Level { kScalar = 0, kSse2 = 1, kAvx2 = 2 };

// Best level this CPU can execute (compile-time capped on non-x86).
Level max_supported_level();
// Currently active level. First call initializes from CGX_SIMD.
Level active_level();
// Forces a level (clamped to max_supported_level()); used by tests and the
// microbench to compare levels in-process. Thread-safe but not meant to be
// raced against in-flight kernels.
void set_level(Level level);
const char* level_name(Level level);

// ---------------------------------------------------------------------------
// Elementwise float kernels (bit-identical across levels, per-element ops).
// ---------------------------------------------------------------------------

// y += alpha * x
void axpy(float alpha, std::span<const float> x, std::span<float> y);
// x *= alpha
void scale(std::span<float> x, float alpha);
// out = a - b
void sub(std::span<const float> a, std::span<const float> b,
         std::span<float> out);
// dst += src
void add(std::span<float> dst, std::span<const float> src);
// out = a + beta * b  (the fused error-feedback decay+accumulate sweep)
void add_scaled(std::span<const float> a, float beta, std::span<const float> b,
                std::span<float> out);
// dst += a * b (elementwise)
void madd(std::span<float> dst, std::span<const float> a,
          std::span<const float> b);

// ---------------------------------------------------------------------------
// Reductions (canonical 8-lane double accumulators, fixed combine tree).
// ---------------------------------------------------------------------------

double reduce_sum(std::span<const float> x);
double reduce_dot(std::span<const float> x, std::span<const float> y);
double reduce_sqnorm(std::span<const float> x);
// sum over (x[i] - mean)^2, each term computed in double.
double reduce_sqdiff(std::span<const float> x, double mean);
// max(init, max_i x[i]); NaN elements are ignored (std::max semantics).
float reduce_max(std::span<const float> x, float init);
// max_i |x[i]| (0 for empty input).
float reduce_max_abs(std::span<const float> x);

// ---------------------------------------------------------------------------
// Quantization kernels.
// ---------------------------------------------------------------------------

// QSGD stochastic rounding: for each i,
//   a     = |v[i]| * inv_norm
//   level = min((int)(a * s + u[i]), s)
//   sym[i]= level | (signbit(v[i]) ? sign_bit : 0)
// u holds pre-drawn uniforms in [0,1); s = sign_bit - 1 magnitude levels.
void qsgd_quantize(const float* v, const float* u, std::size_t n,
                   float inv_norm, std::uint32_t s, std::uint32_t sign_bit,
                   std::uint32_t* sym);
// Inverse: out[i] = ±(sym_level * scale); sign_shift = 32 - bits moves the
// payload sign bit to the float sign position.
void qsgd_dequantize(const std::uint32_t* sym, std::size_t n, float scale,
                     std::uint32_t sign_bit, unsigned sign_shift, float* out);

// NUQ exponential-grid stochastic quantization (levels 0, 2^-(top), ...,
// 2^-1, 1 where top = 2^(bits-1) - 1). Interval search is done by exponent
// extraction, identically in scalar and vector form.
void nuq_quantize(const float* v, const float* u, std::size_t n,
                  float inv_norm, unsigned bits, std::uint32_t* sym);
void nuq_dequantize(const std::uint32_t* sym, std::size_t n, float norm,
                    unsigned bits, float* out);

// ---------------------------------------------------------------------------
// GEMM micro-kernels. Called by the tiled drivers in tensor_ops.cpp; each
// accumulates C[mb x nb] += A * B for one tile with row strides lda/ldb/ldc.
// Every output element keeps a single float accumulator updated in
// increasing-k order (register accumulation is bit-identical to the scalar
// store/reload loop because float load/store is exact).
// ---------------------------------------------------------------------------

// A tile addressed a[i*lda + k].
void gemm_tile(const float* a, std::size_t lda, const float* b,
               std::size_t ldb, float* c, std::size_t ldc, std::size_t mb,
               std::size_t kb, std::size_t nb);
// A tile addressed transposed: a[k*lda + i] (for C = A^T * B).
void gemm_tile_at(const float* a, std::size_t lda, const float* b,
                  std::size_t ldb, float* c, std::size_t ldc, std::size_t mb,
                  std::size_t kb, std::size_t nb);

// ---------------------------------------------------------------------------
// Bit pack/unpack fast paths for util/bitio. Operates on complete 64-bit
// payload words only (nwords words, 64/bits symbols each); the caller packs
// the ragged tail with its scalar loop. Returns false when the active level
// has no vector path for `bits`, in which case the caller must run its
// scalar loop over the whole range.
// ---------------------------------------------------------------------------

bool pack_words(const std::uint32_t* sym, std::size_t nwords, unsigned bits,
                std::byte* out);
bool unpack_words(const std::byte* in, std::size_t nwords, unsigned bits,
                  std::uint32_t* sym);

// ---------------------------------------------------------------------------
// Streaming copy engine. The data plane's ring-channel copy-in/copy-out,
// peer-direct pulls, and tensor copies all route through these instead of
// raw std::memcpy / element loops. Vector levels prefetch ahead of the
// stream and use non-temporal stores for copies at or above
// non_temporal_threshold() bytes (past-L2 buffers that would otherwise be
// streamed through the cache twice). Results are bit-identical at every
// level: byte copies move the same bytes, and copy_add applies the exact
// scalar per-element sequence dst[i] += src[i] in increasing index order.
// ---------------------------------------------------------------------------

// Process-wide copy-engine counters (relaxed atomics; cheap enough for the
// hot path, precise enough for the bench roofline accounting).
struct CopyStats {
  std::uint64_t copied_bytes = 0;    // moved by copy_bytes / copy_floats
  std::uint64_t copy_add_bytes = 0;  // accumulated by copy_add (src bytes)
  std::uint64_t calls = 0;
};
CopyStats copy_engine_stats();
void reset_copy_engine_stats();

// Byte size at which copy_bytes switches to non-temporal stores.
std::size_t non_temporal_threshold();

// memcpy contract (regions must not overlap); n == 0 is a no-op.
void copy_bytes(void* dst, const void* src, std::size_t n);
// Typed convenience over copy_bytes.
void copy_floats(std::span<const float> src, std::span<float> dst);
// dst[i] += src[i] with software prefetch; bit-identical to add().
void copy_add(std::span<float> dst, std::span<const float> src);
// Fused two-source fold: per element dst += a, then dst += b — bit-identical
// to copy_add(dst, a); copy_add(dst, b); but one pass over dst. The SRA
// scatter-reduce pairs peers through this to halve dst read/write traffic.
void copy_add2(std::span<float> dst, std::span<const float> a,
               std::span<const float> b);

// Bulk binary16 conversions. Return false when the active level has no
// vector path, in which case the caller must run its scalar loop (this is
// how CGX_SIMD=off pins the scalar contract — see util/half.cpp).
bool f32_to_f16(const float* in, std::uint16_t* out, std::size_t n);
bool f16_to_f32(const std::uint16_t* in, float* out, std::size_t n);

}  // namespace cgx::util::simd
