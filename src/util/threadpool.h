// Fixed-size thread pool with a parallel_for helper.
//
// Used by the trainer to run per-device work and by compression kernels that
// want intra-"GPU" parallelism. Tasks must not throw: device-thread work
// reports failure through CHECK (which aborts) by design.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace cgx::util {

class ThreadPool {
 public:
  // threads == 0 means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  // Enqueues a task; fire-and-forget. Use wait_idle() to join logically.
  void submit(std::function<void()> task);

  // Allocation-free task path for schedulers that replay a fixed op graph
  // every step (core::DepEngine). Tasks are a plain (fn, ctx, arg) triple
  // held in a grow-only ring, so after reserve_raw() has sized it the hot
  // path never touches the heap (std::function submission allocates both
  // its queue node and, often, its callable). Raw tasks run before queued
  // std::function tasks; ordering between the two classes is otherwise
  // unspecified.
  using RawFn = void (*)(void* ctx, std::size_t arg);
  void submit_raw(RawFn fn, void* ctx, std::size_t arg);
  // Pre-grows the raw ring to hold at least `capacity` pending tasks.
  // Grow-only; cheap when already large enough.
  void reserve_raw(std::size_t capacity);

  // Blocks until the queue is empty and no task is running.
  void wait_idle();

  // Runs fn(i) for i in [0, n), partitioned into contiguous chunks across the
  // pool, and blocks until all chunks complete. When called from a pool
  // worker it degrades to a serial loop instead of deadlocking (the worker
  // would otherwise block on chunks that sit behind it in the queue).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  // True when the calling thread is a worker of *any* ThreadPool. Kernels use
  // this to avoid nested parallel_for.
  static bool on_worker_thread();

 private:
  struct RawTask {
    RawFn fn;
    void* ctx;
    std::size_t arg;
  };

  void worker_loop();
  void grow_raw_locked(std::size_t capacity);

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::vector<RawTask> raw_ring_;  // FIFO ring guarded by mutex_
  std::size_t raw_head_ = 0;
  std::size_t raw_count_ = 0;
  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::size_t active_ = 0;
  bool stop_ = false;
};

}  // namespace cgx::util
