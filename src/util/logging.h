// Minimal leveled logger, thread-safe at line granularity.
//
// Usage:  CGX_LOG(Info) << "rank " << rank << " done";
// The global level defaults to Warn so tests and benches stay quiet; set
// CGX_LOG_LEVEL=debug|info|warn|error in the environment or call
// set_log_level() to change it.
#pragma once

#include <mutex>
#include <sstream>
#include <string>

namespace cgx::util {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

LogLevel log_level();
void set_log_level(LogLevel level);

// Parses "debug"/"info"/"warn"/"error"/"off" (case-insensitive).
LogLevel parse_log_level(const std::string& name);

namespace detail {

class LogLine {
 public:
  explicit LogLine(LogLevel level);
  ~LogLine();
  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace cgx::util

#define CGX_LOG(severity)                                                  \
  if (::cgx::util::LogLevel::severity < ::cgx::util::log_level()) {        \
  } else                                                                   \
    ::cgx::util::detail::LogLine(::cgx::util::LogLevel::severity)
