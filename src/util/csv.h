// CSV writer for figure data series.
//
// Figure-regenerating benches dump their series as CSV next to the printed
// summary so the plots can be recreated with any plotting tool.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace cgx::util {

class CsvWriter {
 public:
  // Opens `path` for writing and emits the header row. Directories must
  // already exist. Check ok() before use.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  bool ok() const { return out_.good(); }
  void add_row(const std::vector<std::string>& cells);

 private:
  std::ofstream out_;
  std::size_t columns_;
};

// Quotes a cell if needed (commas/quotes/newlines).
std::string csv_escape(const std::string& cell);

}  // namespace cgx::util
