// Reusable spin-free barrier for device-thread groups.
//
// std::barrier exists in C++20 but we need (a) a copy-free handle shared by
// worker threads, and (b) `arrive_and_wait` that tolerates reuse across an
// unbounded number of phases — this simple generation-counting barrier covers
// both and keeps the dependency surface small.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <mutex>

#include "util/check.h"

namespace cgx::util {

class Barrier {
 public:
  explicit Barrier(std::size_t parties) : parties_(parties) {
    CGX_CHECK_GT(parties, 0u);
  }

  Barrier(const Barrier&) = delete;
  Barrier& operator=(const Barrier&) = delete;

  void arrive_and_wait() {
    std::unique_lock<std::mutex> lock(mutex_);
    const std::size_t my_generation = generation_;
    if (++arrived_ == parties_) {
      arrived_ = 0;
      ++generation_;
      cv_.notify_all();
      return;
    }
    cv_.wait(lock, [&] { return generation_ != my_generation; });
  }

 private:
  const std::size_t parties_;
  std::size_t arrived_ = 0;
  std::size_t generation_ = 0;
  std::mutex mutex_;
  std::condition_variable cv_;
};

}  // namespace cgx::util
