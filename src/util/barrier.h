// Reusable spin-free barrier for device-thread groups.
//
// std::barrier exists in C++20 but we need (a) a copy-free handle shared by
// worker threads, and (b) `arrive_and_wait` that tolerates reuse across an
// unbounded number of phases — this simple generation-counting barrier covers
// both and keeps the dependency surface small.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <mutex>

#include "util/check.h"

namespace cgx::util {

class Barrier {
 public:
  explicit Barrier(std::size_t parties) : parties_(parties) {
    CGX_CHECK_GT(parties, 0u);
  }

  Barrier(const Barrier&) = delete;
  Barrier& operator=(const Barrier&) = delete;

  void arrive_and_wait() {
    std::unique_lock<std::mutex> lock(mutex_);
    const std::size_t my_generation = generation_;
    if (++arrived_ == parties_) {
      arrived_ = 0;
      ++generation_;
      cv_.notify_all();
      return;
    }
    cv_.wait(lock, [&] { return generation_ != my_generation; });
  }

  // Deadline-bounded arrival: returns true once every party of this
  // generation has arrived, false if `timeout` expires first. On timeout the
  // caller's arrival is withdrawn, so a later retry round starts from a
  // clean count — but the round this caller abandoned can no longer
  // complete, and every other party of the generation will time out too (a
  // broken barrier round must be abandoned by ALL parties; the comm layer
  // surfaces this as a TimeoutError on each rank).
  bool arrive_and_wait_for(std::chrono::nanoseconds timeout) {
    std::unique_lock<std::mutex> lock(mutex_);
    const std::size_t my_generation = generation_;
    if (++arrived_ == parties_) {
      arrived_ = 0;
      ++generation_;
      cv_.notify_all();
      return true;
    }
    if (cv_.wait_for(lock, timeout,
                     [&] { return generation_ != my_generation; })) {
      return true;
    }
    // Withdraw the arrival only if the generation is still open (a release
    // between the wait's last predicate check and reacquiring the lock
    // cannot happen — wait_for rechecks under the lock — but stay safe).
    if (generation_ == my_generation && arrived_ > 0) --arrived_;
    return false;
  }

 private:
  const std::size_t parties_;
  std::size_t arrived_ = 0;
  std::size_t generation_ = 0;
  std::mutex mutex_;
  std::condition_variable cv_;
};

}  // namespace cgx::util
