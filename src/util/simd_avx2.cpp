// AVX2 kernel implementations. Compiled with -mavx2 -mfma so the intrinsics
// are available, but arithmetic deliberately uses separate multiply+add —
// never FMA — and the TU is built with -ffp-contract=off, because fusing
// would change rounding and break the bit-exactness contract against the
// scalar reference (see simd.h). Reductions stripe elements across eight
// double lanes exactly like the scalar path (element i -> lane i % 8) and
// fold with the shared canonical tree.
#include "util/simd_internal.h"

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

#include <bit>
#include <cstring>

namespace cgx::util::simd::detail {
namespace {

// ------------------------------------------------------------- elementwise

void axpy_avx2(float alpha, const float* x, float* y, std::size_t n) {
  const __m256 va = _mm256_set1_ps(alpha);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 vy = _mm256_loadu_ps(y + i);
    const __m256 vx = _mm256_loadu_ps(x + i);
    _mm256_storeu_ps(y + i, _mm256_add_ps(vy, _mm256_mul_ps(va, vx)));
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

void scale_avx2(float* x, float alpha, std::size_t n) {
  const __m256 va = _mm256_set1_ps(alpha);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(x + i, _mm256_mul_ps(_mm256_loadu_ps(x + i), va));
  }
  for (; i < n; ++i) x[i] *= alpha;
}

void sub_avx2(const float* a, const float* b, float* out, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        out + i, _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] - b[i];
}

void add_avx2(float* dst, const float* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(dst + i, _mm256_add_ps(_mm256_loadu_ps(dst + i),
                                            _mm256_loadu_ps(src + i)));
  }
  for (; i < n; ++i) dst[i] += src[i];
}

void add_scaled_avx2(const float* a, float beta, const float* b, float* out,
                     std::size_t n) {
  const __m256 vb = _mm256_set1_ps(beta);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(out + i,
                     _mm256_add_ps(_mm256_loadu_ps(a + i),
                                   _mm256_mul_ps(vb, _mm256_loadu_ps(b + i))));
  }
  for (; i < n; ++i) out[i] = a[i] + beta * b[i];
}

void madd_avx2(float* dst, const float* a, const float* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(dst + i,
                     _mm256_add_ps(_mm256_loadu_ps(dst + i),
                                   _mm256_mul_ps(_mm256_loadu_ps(a + i),
                                                 _mm256_loadu_ps(b + i))));
  }
  for (; i < n; ++i) dst[i] += a[i] * b[i];
}

// ------------------------------------------------------------- reductions

// 8 floats widen to two 4-lane double vectors: lanes [0..3] and [4..7].
struct Lanes8d {
  __m256d d03, d47;
};

inline Lanes8d widen8(const float* p) {
  const __m256 x = _mm256_loadu_ps(p);
  return {_mm256_cvtps_pd(_mm256_castps256_ps128(x)),
          _mm256_cvtps_pd(_mm256_extractf128_ps(x, 1))};
}

double reduce_sum_avx2(const float* x, std::size_t n) {
  __m256d a03 = _mm256_setzero_pd();
  __m256d a47 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const Lanes8d v = widen8(x + i);
    a03 = _mm256_add_pd(a03, v.d03);
    a47 = _mm256_add_pd(a47, v.d47);
  }
  double lanes[8];
  _mm256_storeu_pd(lanes, a03);
  _mm256_storeu_pd(lanes + 4, a47);
  for (; i < n; ++i) lanes[i % 8] += static_cast<double>(x[i]);
  return combine_lanes(lanes);
}

double reduce_dot_avx2(const float* x, const float* y, std::size_t n) {
  __m256d a03 = _mm256_setzero_pd();
  __m256d a47 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const Lanes8d vx = widen8(x + i);
    const Lanes8d vy = widen8(y + i);
    a03 = _mm256_add_pd(a03, _mm256_mul_pd(vx.d03, vy.d03));
    a47 = _mm256_add_pd(a47, _mm256_mul_pd(vx.d47, vy.d47));
  }
  double lanes[8];
  _mm256_storeu_pd(lanes, a03);
  _mm256_storeu_pd(lanes + 4, a47);
  for (; i < n; ++i) {
    lanes[i % 8] += static_cast<double>(x[i]) * static_cast<double>(y[i]);
  }
  return combine_lanes(lanes);
}

double reduce_sqnorm_avx2(const float* x, std::size_t n) {
  return reduce_dot_avx2(x, x, n);
}

double reduce_sqdiff_avx2(const float* x, double mean, std::size_t n) {
  const __m256d vm = _mm256_set1_pd(mean);
  __m256d a03 = _mm256_setzero_pd();
  __m256d a47 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const Lanes8d v = widen8(x + i);
    const __m256d d03 = _mm256_sub_pd(v.d03, vm);
    const __m256d d47 = _mm256_sub_pd(v.d47, vm);
    a03 = _mm256_add_pd(a03, _mm256_mul_pd(d03, d03));
    a47 = _mm256_add_pd(a47, _mm256_mul_pd(d47, d47));
  }
  double lanes[8];
  _mm256_storeu_pd(lanes, a03);
  _mm256_storeu_pd(lanes + 4, a47);
  for (; i < n; ++i) {
    const double d = static_cast<double>(x[i]) - mean;
    lanes[i % 8] += d * d;
  }
  return combine_lanes(lanes);
}

float reduce_max_avx2(const float* x, std::size_t n, float init) {
  __m256 m = _mm256_set1_ps(init);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    // max_ps(x, m): keeps m when x is NaN, matching the scalar ternary.
    m = _mm256_max_ps(_mm256_loadu_ps(x + i), m);
  }
  float lanes[8];
  _mm256_storeu_ps(lanes, m);
  for (; i < n; ++i) {
    lanes[i % 8] = lanes[i % 8] < x[i] ? x[i] : lanes[i % 8];
  }
  return combine_lanes_max(lanes);
}

float reduce_max_abs_avx2(const float* x, std::size_t n) {
  const __m256 abs_mask = _mm256_castsi256_ps(_mm256_set1_epi32(0x7fffffff));
  __m256 m = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    m = _mm256_max_ps(_mm256_and_ps(_mm256_loadu_ps(x + i), abs_mask), m);
  }
  float lanes[8];
  _mm256_storeu_ps(lanes, m);
  for (; i < n; ++i) {
    const float a = std::bit_cast<float>(std::bit_cast<std::uint32_t>(x[i]) &
                                         0x7fffffffu);
    lanes[i % 8] = lanes[i % 8] < a ? a : lanes[i % 8];
  }
  return combine_lanes_max(lanes);
}

// ------------------------------------------------------------ quantization

void qsgd_quantize_avx2(const float* v, const float* u, std::size_t n,
                        float inv_norm, std::uint32_t s,
                        std::uint32_t sign_bit, std::uint32_t* sym) {
  const float s_f = static_cast<float>(s);
  const __m256 vinv = _mm256_set1_ps(inv_norm);
  const __m256 vs_f = _mm256_set1_ps(s_f);
  const __m256i vs_i = _mm256_set1_epi32(static_cast<int>(s));
  const __m256i abs_mask = _mm256_set1_epi32(0x7fffffff);
  const __m128i shift =
      _mm_cvtsi32_si128(static_cast<int>(std::countr_zero(sign_bit)));
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i vbits =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i));
    const __m256 a = _mm256_mul_ps(
        _mm256_castsi256_ps(_mm256_and_si256(vbits, abs_mask)), vinv);
    const __m256 t =
        _mm256_add_ps(_mm256_mul_ps(a, vs_f), _mm256_loadu_ps(u + i));
    const __m256i level = _mm256_min_epi32(_mm256_cvttps_epi32(t), vs_i);
    const __m256i sign =
        _mm256_sll_epi32(_mm256_srli_epi32(vbits, 31), shift);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(sym + i),
                        _mm256_or_si256(level, sign));
  }
  const auto s_i = static_cast<std::int32_t>(s);
  for (; i < n; ++i) {
    const std::uint32_t v_bits = std::bit_cast<std::uint32_t>(v[i]);
    const float a = std::bit_cast<float>(v_bits & 0x7fffffffu) * inv_norm;
    std::int32_t level = static_cast<std::int32_t>(a * s_f + u[i]);
    level = level < s_i ? level : s_i;
    sym[i] = static_cast<std::uint32_t>(level) | ((v_bits >> 31) * sign_bit);
  }
}

void qsgd_dequantize_avx2(const std::uint32_t* sym, std::size_t n, float scale,
                          std::uint32_t sign_bit, unsigned sign_shift,
                          float* out) {
  const std::uint32_t level_mask = sign_bit - 1;
  const __m256 vscale = _mm256_set1_ps(scale);
  const __m256i vmask = _mm256_set1_epi32(static_cast<int>(level_mask));
  const __m256i vsign = _mm256_set1_epi32(static_cast<int>(sign_bit));
  const __m128i shift = _mm_cvtsi32_si128(static_cast<int>(sign_shift));
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(sym + i));
    const __m256 mag = _mm256_mul_ps(
        _mm256_cvtepi32_ps(_mm256_and_si256(s, vmask)), vscale);
    const __m256i sg = _mm256_sll_epi32(_mm256_and_si256(s, vsign), shift);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        _mm256_or_si256(_mm256_castps_si256(mag), sg));
  }
  for (; i < n; ++i) {
    const std::uint32_t symbol = sym[i];
    const float magnitude = static_cast<float>(symbol & level_mask) * scale;
    out[i] = std::bit_cast<float>(std::bit_cast<std::uint32_t>(magnitude) |
                                  ((symbol & sign_bit) << sign_shift));
  }
}

void nuq_quantize_avx2(const float* v, const float* u, std::size_t n,
                       float inv_norm, unsigned bits, std::uint32_t* sym) {
  const int top = (1 << (bits - 1)) - 1;
  const std::uint32_t sign_bit = 1u << (bits - 1);
  const __m256 vinv = _mm256_set1_ps(inv_norm);
  const __m256 vone = _mm256_set1_ps(1.0f);
  const __m256i abs_mask = _mm256_set1_epi32(0x7fffffff);
  const __m256i vtop = _mm256_set1_epi32(top);
  const __m256i voff = _mm256_set1_epi32(top - 127);
  const __m256i vexp0 = _mm256_set1_epi32(127 - top);
  const __m256i vexp1 = _mm256_set1_epi32(128 - top);
  const __m256i vzero = _mm256_setzero_si256();
  const __m256i vone_i = _mm256_set1_epi32(1);
  const __m128i sshift = _mm_cvtsi32_si128(static_cast<int>(bits - 1));
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i vbits =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i));
    const __m256 a = _mm256_min_ps(
        _mm256_mul_ps(_mm256_castsi256_ps(_mm256_and_si256(vbits, abs_mask)),
                      vinv),
        vone);
    __m256i lo = _mm256_add_epi32(
        _mm256_srli_epi32(_mm256_castps_si256(a), 23), voff);
    lo = _mm256_min_epi32(_mm256_max_epi32(lo, vzero), vtop);
    const __m256 low = _mm256_castsi256_ps(_mm256_andnot_si256(
        _mm256_cmpeq_epi32(lo, vzero),
        _mm256_slli_epi32(_mm256_add_epi32(lo, vexp0), 23)));
    const __m256 high = _mm256_castsi256_ps(
        _mm256_slli_epi32(_mm256_add_epi32(lo, vexp1), 23));
    const __m256 p = _mm256_div_ps(_mm256_sub_ps(a, low),
                                   _mm256_sub_ps(high, low));
    // u < p, ordered (false on NaN p), matching the scalar `u[i] < p`.
    const __m256i ult =
        _mm256_castps_si256(_mm256_cmp_ps(_mm256_loadu_ps(u + i), p, _CMP_LT_OQ));
    const __m256i take = _mm256_and_si256(ult, _mm256_cmpgt_epi32(vtop, lo));
    const __m256i idx = _mm256_add_epi32(lo, _mm256_and_si256(take, vone_i));
    const __m256i sign =
        _mm256_sll_epi32(_mm256_srli_epi32(vbits, 31), sshift);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(sym + i),
                        _mm256_or_si256(idx, sign));
  }
  for (; i < n; ++i) {
    const std::uint32_t v_bits = std::bit_cast<std::uint32_t>(v[i]);
    float a = std::bit_cast<float>(v_bits & 0x7fffffffu) * inv_norm;
    a = a < 1.0f ? a : 1.0f;
    const int e =
        static_cast<int>(std::bit_cast<std::uint32_t>(a) >> 23) - 127;
    int lo = e + top;
    lo = lo < 0 ? 0 : (lo > top ? top : lo);
    std::uint32_t inc = 0;
    if (lo < top) {
      const float low =
          lo == 0 ? 0.0f
                  : std::bit_cast<float>(
                        static_cast<std::uint32_t>(lo - top + 127) << 23);
      const float high = std::bit_cast<float>(
          static_cast<std::uint32_t>(lo + 1 - top + 127) << 23);
      const float p = (a - low) / (high - low);
      inc = u[i] < p ? 1u : 0u;
    }
    sym[i] = (static_cast<std::uint32_t>(lo) + inc) |
             ((v_bits >> 31) * sign_bit);
  }
}

void nuq_dequantize_avx2(const std::uint32_t* sym, std::size_t n, float norm,
                         unsigned bits, float* out) {
  const int top = (1 << (bits - 1)) - 1;
  const std::uint32_t sign_bit = 1u << (bits - 1);
  const std::uint32_t index_mask = sign_bit - 1;
  const __m256 vnorm = _mm256_set1_ps(norm);
  const __m256i vmask = _mm256_set1_epi32(static_cast<int>(index_mask));
  const __m256i vsign = _mm256_set1_epi32(static_cast<int>(sign_bit));
  const __m256i vexp0 = _mm256_set1_epi32(127 - top);
  const __m256i vzero = _mm256_setzero_si256();
  const __m128i shift = _mm_cvtsi32_si128(static_cast<int>(32 - bits));
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(sym + i));
    const __m256i idx = _mm256_and_si256(s, vmask);
    const __m256 level = _mm256_castsi256_ps(_mm256_andnot_si256(
        _mm256_cmpeq_epi32(idx, vzero),
        _mm256_slli_epi32(_mm256_add_epi32(idx, vexp0), 23)));
    const __m256 value = _mm256_mul_ps(level, vnorm);
    const __m256i sg = _mm256_sll_epi32(_mm256_and_si256(s, vsign), shift);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        _mm256_xor_si256(_mm256_castps_si256(value), sg));
  }
  for (; i < n; ++i) {
    const std::uint32_t symbol = sym[i];
    const auto idx = static_cast<int>(symbol & index_mask);
    const float level =
        idx == 0 ? 0.0f
                 : std::bit_cast<float>(
                       static_cast<std::uint32_t>(idx - top + 127) << 23);
    const float value = level * norm;
    out[i] = std::bit_cast<float>(std::bit_cast<std::uint32_t>(value) ^
                                  ((symbol & sign_bit) ? 0x80000000u : 0u));
  }
}

// -------------------------------------------------------------------- gemm

inline void gemm_cols_scalar(const float* a, std::size_t lda, bool a_trans,
                             const float* b, std::size_t ldb, float* c,
                             std::size_t ldc, std::size_t mb, std::size_t kb,
                             std::size_t j0, std::size_t nb) {
  for (std::size_t i = 0; i < mb; ++i) {
    float* crow = c + i * ldc;
    for (std::size_t j = j0; j < nb; ++j) {
      float acc = crow[j];
      for (std::size_t k = 0; k < kb; ++k) {
        const float aik = a_trans ? a[k * lda + i] : a[i * lda + k];
        acc += aik * b[k * ldb + j];
      }
      crow[j] = acc;
    }
  }
}

// 4x16 register-blocked micro-kernel (8 ymm accumulators) with 4x8, 1x8 and
// scalar fallbacks for the fringes. mul+add, never FMA (see header comment).
template <bool ATrans>
inline void gemm_tile_impl(const float* a, std::size_t lda, const float* b,
                           std::size_t ldb, float* c, std::size_t ldc,
                           std::size_t mb, std::size_t kb, std::size_t nb) {
  auto a_at = [&](std::size_t i, std::size_t k) {
    return ATrans ? a[k * lda + i] : a[i * lda + k];
  };
  std::size_t i = 0;
  for (; i + 4 <= mb; i += 4) {
    float* c0 = c + (i + 0) * ldc;
    float* c1 = c + (i + 1) * ldc;
    float* c2 = c + (i + 2) * ldc;
    float* c3 = c + (i + 3) * ldc;
    std::size_t j = 0;
    for (; j + 16 <= nb; j += 16) {
      __m256 acc0a = _mm256_loadu_ps(c0 + j);
      __m256 acc0b = _mm256_loadu_ps(c0 + j + 8);
      __m256 acc1a = _mm256_loadu_ps(c1 + j);
      __m256 acc1b = _mm256_loadu_ps(c1 + j + 8);
      __m256 acc2a = _mm256_loadu_ps(c2 + j);
      __m256 acc2b = _mm256_loadu_ps(c2 + j + 8);
      __m256 acc3a = _mm256_loadu_ps(c3 + j);
      __m256 acc3b = _mm256_loadu_ps(c3 + j + 8);
      for (std::size_t k = 0; k < kb; ++k) {
        const float* brow = b + k * ldb + j;
        const __m256 b0 = _mm256_loadu_ps(brow);
        const __m256 b1 = _mm256_loadu_ps(brow + 8);
        __m256 av = _mm256_set1_ps(a_at(i + 0, k));
        acc0a = _mm256_add_ps(acc0a, _mm256_mul_ps(av, b0));
        acc0b = _mm256_add_ps(acc0b, _mm256_mul_ps(av, b1));
        av = _mm256_set1_ps(a_at(i + 1, k));
        acc1a = _mm256_add_ps(acc1a, _mm256_mul_ps(av, b0));
        acc1b = _mm256_add_ps(acc1b, _mm256_mul_ps(av, b1));
        av = _mm256_set1_ps(a_at(i + 2, k));
        acc2a = _mm256_add_ps(acc2a, _mm256_mul_ps(av, b0));
        acc2b = _mm256_add_ps(acc2b, _mm256_mul_ps(av, b1));
        av = _mm256_set1_ps(a_at(i + 3, k));
        acc3a = _mm256_add_ps(acc3a, _mm256_mul_ps(av, b0));
        acc3b = _mm256_add_ps(acc3b, _mm256_mul_ps(av, b1));
      }
      _mm256_storeu_ps(c0 + j, acc0a);
      _mm256_storeu_ps(c0 + j + 8, acc0b);
      _mm256_storeu_ps(c1 + j, acc1a);
      _mm256_storeu_ps(c1 + j + 8, acc1b);
      _mm256_storeu_ps(c2 + j, acc2a);
      _mm256_storeu_ps(c2 + j + 8, acc2b);
      _mm256_storeu_ps(c3 + j, acc3a);
      _mm256_storeu_ps(c3 + j + 8, acc3b);
    }
    for (; j + 8 <= nb; j += 8) {
      __m256 acc0 = _mm256_loadu_ps(c0 + j);
      __m256 acc1 = _mm256_loadu_ps(c1 + j);
      __m256 acc2 = _mm256_loadu_ps(c2 + j);
      __m256 acc3 = _mm256_loadu_ps(c3 + j);
      for (std::size_t k = 0; k < kb; ++k) {
        const __m256 b0 = _mm256_loadu_ps(b + k * ldb + j);
        acc0 = _mm256_add_ps(acc0,
                             _mm256_mul_ps(_mm256_set1_ps(a_at(i + 0, k)), b0));
        acc1 = _mm256_add_ps(acc1,
                             _mm256_mul_ps(_mm256_set1_ps(a_at(i + 1, k)), b0));
        acc2 = _mm256_add_ps(acc2,
                             _mm256_mul_ps(_mm256_set1_ps(a_at(i + 2, k)), b0));
        acc3 = _mm256_add_ps(acc3,
                             _mm256_mul_ps(_mm256_set1_ps(a_at(i + 3, k)), b0));
      }
      _mm256_storeu_ps(c0 + j, acc0);
      _mm256_storeu_ps(c1 + j, acc1);
      _mm256_storeu_ps(c2 + j, acc2);
      _mm256_storeu_ps(c3 + j, acc3);
    }
    if (j < nb) {
      gemm_cols_scalar(ATrans ? a + i : a + i * lda, lda, ATrans, b, ldb,
                       c + i * ldc, ldc, 4, kb, j, nb);
    }
  }
  for (; i < mb; ++i) {
    float* crow = c + i * ldc;
    std::size_t j = 0;
    for (; j + 8 <= nb; j += 8) {
      __m256 acc = _mm256_loadu_ps(crow + j);
      for (std::size_t k = 0; k < kb; ++k) {
        acc = _mm256_add_ps(acc, _mm256_mul_ps(_mm256_set1_ps(a_at(i, k)),
                                               _mm256_loadu_ps(b + k * ldb + j)));
      }
      _mm256_storeu_ps(crow + j, acc);
    }
    if (j < nb) {
      gemm_cols_scalar(ATrans ? a + i : a + i * lda, lda, ATrans, b, ldb,
                       crow, ldc, 1, kb, j, nb);
    }
  }
}

void gemm_tile_avx2(const float* a, std::size_t lda, const float* b,
                    std::size_t ldb, float* c, std::size_t ldc, std::size_t mb,
                    std::size_t kb, std::size_t nb) {
  gemm_tile_impl<false>(a, lda, b, ldb, c, ldc, mb, kb, nb);
}

void gemm_tile_at_avx2(const float* a, std::size_t lda, const float* b,
                       std::size_t ldb, float* c, std::size_t ldc,
                       std::size_t mb, std::size_t kb, std::size_t nb) {
  gemm_tile_impl<true>(a, lda, b, ldb, c, ldc, mb, kb, nb);
}

// ------------------------------------------------------------- pack/unpack

// Vector paths exist for the word-aligned prefix only; output words are
// bit-identical to bitio's scalar `word |= sym << (j*bits)` loop.

bool pack_words_avx2(const std::uint32_t* sym, std::size_t nwords,
                     unsigned bits, std::byte* out) {
  if (bits == 8) {
    // 8 symbols -> one 64-bit word: gather the low byte of each dword.
    const __m256i shuf = _mm256_setr_epi8(
        0, 4, 8, 12, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1,  //
        0, 4, 8, 12, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1);
    for (std::size_t w = 0; w < nwords; ++w) {
      const __m256i v =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(sym + w * 8));
      const __m256i t = _mm256_shuffle_epi8(v, shuf);
      const auto lo = static_cast<std::uint32_t>(
          _mm_cvtsi128_si32(_mm256_castsi256_si128(t)));
      const auto hi = static_cast<std::uint32_t>(
          _mm_cvtsi128_si32(_mm256_extracti128_si256(t, 1)));
      const std::uint64_t word =
          static_cast<std::uint64_t>(lo) | (static_cast<std::uint64_t>(hi) << 32);
      std::memcpy(out + w * 8, &word, 8);
    }
    return true;
  }
  if (bits == 4) {
    // 16 symbols -> one word: pair nibbles inside each qword, then gather.
    const __m256i nib_mask = _mm256_set1_epi32(0xF);
    const __m256i odd_shift = _mm256_setr_epi32(0, 4, 0, 4, 0, 4, 0, 4);
    const __m256i shuf = _mm256_setr_epi8(
        0, 8, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1,  //
        0, 8, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1);
    auto gather4 = [&](const std::uint32_t* p) {
      __m256i v = _mm256_and_si256(
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p)), nib_mask);
      v = _mm256_sllv_epi32(v, odd_shift);
      v = _mm256_or_si256(v, _mm256_srli_epi64(v, 32));
      const __m256i t = _mm256_shuffle_epi8(v, shuf);
      const auto lo = static_cast<std::uint32_t>(
          _mm_cvtsi128_si32(_mm256_castsi256_si128(t)));
      const auto hi = static_cast<std::uint32_t>(
          _mm_cvtsi128_si32(_mm256_extracti128_si256(t, 1)));
      return (lo & 0xFFFFu) | ((hi & 0xFFFFu) << 16);
    };
    for (std::size_t w = 0; w < nwords; ++w) {
      const std::uint32_t* p = sym + w * 16;
      const std::uint64_t word =
          static_cast<std::uint64_t>(gather4(p)) |
          (static_cast<std::uint64_t>(gather4(p + 8)) << 32);
      std::memcpy(out + w * 8, &word, 8);
    }
    return true;
  }
  return false;
}

bool unpack_words_avx2(const std::byte* in, std::size_t nwords, unsigned bits,
                       std::uint32_t* sym) {
  if (bits == 8) {
    for (std::size_t w = 0; w < nwords; ++w) {
      std::uint64_t word;
      std::memcpy(&word, in + w * 8, 8);
      const __m128i b = _mm_cvtsi64_si128(static_cast<long long>(word));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(sym + w * 8),
                          _mm256_cvtepu8_epi32(b));
    }
    return true;
  }
  if (bits == 4) {
    const __m256i shifts = _mm256_setr_epi32(0, 4, 8, 12, 16, 20, 24, 28);
    const __m256i mask = _mm256_set1_epi32(0xF);
    for (std::size_t w = 0; w < nwords; ++w) {
      std::uint64_t word;
      std::memcpy(&word, in + w * 8, 8);
      const auto lo = static_cast<std::uint32_t>(word);
      const auto hi = static_cast<std::uint32_t>(word >> 32);
      _mm256_storeu_si256(
          reinterpret_cast<__m256i*>(sym + w * 16),
          _mm256_and_si256(
              _mm256_srlv_epi32(_mm256_set1_epi32(static_cast<int>(lo)), shifts),
              mask));
      _mm256_storeu_si256(
          reinterpret_cast<__m256i*>(sym + w * 16 + 8),
          _mm256_and_si256(
              _mm256_srlv_epi32(_mm256_set1_epi32(static_cast<int>(hi)), shifts),
              mask));
    }
    return true;
  }
  if (bits == 2) {
    const __m256i shifts = _mm256_setr_epi32(0, 2, 4, 6, 8, 10, 12, 14);
    const __m256i mask = _mm256_set1_epi32(0x3);
    for (std::size_t w = 0; w < nwords; ++w) {
      std::uint64_t word;
      std::memcpy(&word, in + w * 8, 8);
      for (unsigned g = 0; g < 4; ++g) {
        const auto part =
            static_cast<std::uint32_t>((word >> (16 * g)) & 0xFFFFu);
        _mm256_storeu_si256(
            reinterpret_cast<__m256i*>(sym + w * 32 + g * 8),
            _mm256_and_si256(
                _mm256_srlv_epi32(_mm256_set1_epi32(static_cast<int>(part)),
                                  shifts),
                mask));
      }
    }
    return true;
  }
  return false;
}

constexpr SimdOps kAvx2Ops = {
    axpy_avx2,       scale_avx2,          sub_avx2,
    add_avx2,        add_scaled_avx2,     madd_avx2,
    reduce_sum_avx2, reduce_dot_avx2,     reduce_sqnorm_avx2,
    reduce_sqdiff_avx2, reduce_max_avx2,  reduce_max_abs_avx2,
    qsgd_quantize_avx2, qsgd_dequantize_avx2,
    nuq_quantize_avx2,  nuq_dequantize_avx2,
    gemm_tile_avx2,  gemm_tile_at_avx2,
    pack_words_avx2, unpack_words_avx2,
};

}  // namespace

const SimdOps& avx2_ops() { return kAvx2Ops; }

}  // namespace cgx::util::simd::detail

#else  // non-x86: never selected (max_supported_level() caps at scalar)

namespace cgx::util::simd::detail {
const SimdOps& avx2_ops() { return scalar_ops(); }
}  // namespace cgx::util::simd::detail

#endif
