// AVX2 kernel implementations. Compiled with -mavx2 -mfma so the intrinsics
// are available, but arithmetic deliberately uses separate multiply+add —
// never FMA — and the TU is built with -ffp-contract=off, because fusing
// would change rounding and break the bit-exactness contract against the
// scalar reference (see simd.h). Reductions stripe elements across eight
// double lanes exactly like the scalar path (element i -> lane i % 8) and
// fold with the shared canonical tree.
#include "util/simd_internal.h"

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

#include <bit>
#include <cstdint>
#include <cstring>

namespace cgx::util::simd::detail {
namespace {

// ------------------------------------------------------------- elementwise

void axpy_avx2(float alpha, const float* x, float* y, std::size_t n) {
  const __m256 va = _mm256_set1_ps(alpha);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 vy = _mm256_loadu_ps(y + i);
    const __m256 vx = _mm256_loadu_ps(x + i);
    _mm256_storeu_ps(y + i, _mm256_add_ps(vy, _mm256_mul_ps(va, vx)));
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

void scale_avx2(float* x, float alpha, std::size_t n) {
  const __m256 va = _mm256_set1_ps(alpha);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(x + i, _mm256_mul_ps(_mm256_loadu_ps(x + i), va));
  }
  for (; i < n; ++i) x[i] *= alpha;
}

void sub_avx2(const float* a, const float* b, float* out, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        out + i, _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] - b[i];
}

void add_avx2(float* dst, const float* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(dst + i, _mm256_add_ps(_mm256_loadu_ps(dst + i),
                                            _mm256_loadu_ps(src + i)));
  }
  for (; i < n; ++i) dst[i] += src[i];
}

void add_scaled_avx2(const float* a, float beta, const float* b, float* out,
                     std::size_t n) {
  const __m256 vb = _mm256_set1_ps(beta);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(out + i,
                     _mm256_add_ps(_mm256_loadu_ps(a + i),
                                   _mm256_mul_ps(vb, _mm256_loadu_ps(b + i))));
  }
  for (; i < n; ++i) out[i] = a[i] + beta * b[i];
}

void madd_avx2(float* dst, const float* a, const float* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(dst + i,
                     _mm256_add_ps(_mm256_loadu_ps(dst + i),
                                   _mm256_mul_ps(_mm256_loadu_ps(a + i),
                                                 _mm256_loadu_ps(b + i))));
  }
  for (; i < n; ++i) dst[i] += a[i] * b[i];
}

// ------------------------------------------------------------- reductions

// 8 floats widen to two 4-lane double vectors: lanes [0..3] and [4..7].
struct Lanes8d {
  __m256d d03, d47;
};

inline Lanes8d widen8(const float* p) {
  const __m256 x = _mm256_loadu_ps(p);
  return {_mm256_cvtps_pd(_mm256_castps256_ps128(x)),
          _mm256_cvtps_pd(_mm256_extractf128_ps(x, 1))};
}

double reduce_sum_avx2(const float* x, std::size_t n) {
  __m256d a03 = _mm256_setzero_pd();
  __m256d a47 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const Lanes8d v = widen8(x + i);
    a03 = _mm256_add_pd(a03, v.d03);
    a47 = _mm256_add_pd(a47, v.d47);
  }
  double lanes[8];
  _mm256_storeu_pd(lanes, a03);
  _mm256_storeu_pd(lanes + 4, a47);
  for (; i < n; ++i) lanes[i % 8] += static_cast<double>(x[i]);
  return combine_lanes(lanes);
}

double reduce_dot_avx2(const float* x, const float* y, std::size_t n) {
  __m256d a03 = _mm256_setzero_pd();
  __m256d a47 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const Lanes8d vx = widen8(x + i);
    const Lanes8d vy = widen8(y + i);
    a03 = _mm256_add_pd(a03, _mm256_mul_pd(vx.d03, vy.d03));
    a47 = _mm256_add_pd(a47, _mm256_mul_pd(vx.d47, vy.d47));
  }
  double lanes[8];
  _mm256_storeu_pd(lanes, a03);
  _mm256_storeu_pd(lanes + 4, a47);
  for (; i < n; ++i) {
    lanes[i % 8] += static_cast<double>(x[i]) * static_cast<double>(y[i]);
  }
  return combine_lanes(lanes);
}

double reduce_sqnorm_avx2(const float* x, std::size_t n) {
  return reduce_dot_avx2(x, x, n);
}

double reduce_sqdiff_avx2(const float* x, double mean, std::size_t n) {
  const __m256d vm = _mm256_set1_pd(mean);
  __m256d a03 = _mm256_setzero_pd();
  __m256d a47 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const Lanes8d v = widen8(x + i);
    const __m256d d03 = _mm256_sub_pd(v.d03, vm);
    const __m256d d47 = _mm256_sub_pd(v.d47, vm);
    a03 = _mm256_add_pd(a03, _mm256_mul_pd(d03, d03));
    a47 = _mm256_add_pd(a47, _mm256_mul_pd(d47, d47));
  }
  double lanes[8];
  _mm256_storeu_pd(lanes, a03);
  _mm256_storeu_pd(lanes + 4, a47);
  for (; i < n; ++i) {
    const double d = static_cast<double>(x[i]) - mean;
    lanes[i % 8] += d * d;
  }
  return combine_lanes(lanes);
}

float reduce_max_avx2(const float* x, std::size_t n, float init) {
  __m256 m = _mm256_set1_ps(init);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    // max_ps(x, m): keeps m when x is NaN, matching the scalar ternary.
    m = _mm256_max_ps(_mm256_loadu_ps(x + i), m);
  }
  float lanes[8];
  _mm256_storeu_ps(lanes, m);
  for (; i < n; ++i) {
    lanes[i % 8] = lanes[i % 8] < x[i] ? x[i] : lanes[i % 8];
  }
  return combine_lanes_max(lanes);
}

float reduce_max_abs_avx2(const float* x, std::size_t n) {
  const __m256 abs_mask = _mm256_castsi256_ps(_mm256_set1_epi32(0x7fffffff));
  __m256 m = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    m = _mm256_max_ps(_mm256_and_ps(_mm256_loadu_ps(x + i), abs_mask), m);
  }
  float lanes[8];
  _mm256_storeu_ps(lanes, m);
  for (; i < n; ++i) {
    const float a = std::bit_cast<float>(std::bit_cast<std::uint32_t>(x[i]) &
                                         0x7fffffffu);
    lanes[i % 8] = lanes[i % 8] < a ? a : lanes[i % 8];
  }
  return combine_lanes_max(lanes);
}

// ------------------------------------------------------------ quantization

void qsgd_quantize_avx2(const float* v, const float* u, std::size_t n,
                        float inv_norm, std::uint32_t s,
                        std::uint32_t sign_bit, std::uint32_t* sym) {
  const float s_f = static_cast<float>(s);
  const __m256 vinv = _mm256_set1_ps(inv_norm);
  const __m256 vs_f = _mm256_set1_ps(s_f);
  const __m256i vs_i = _mm256_set1_epi32(static_cast<int>(s));
  const __m256i abs_mask = _mm256_set1_epi32(0x7fffffff);
  const __m128i shift =
      _mm_cvtsi32_si128(static_cast<int>(std::countr_zero(sign_bit)));
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i vbits =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i));
    const __m256 a = _mm256_mul_ps(
        _mm256_castsi256_ps(_mm256_and_si256(vbits, abs_mask)), vinv);
    const __m256 t =
        _mm256_add_ps(_mm256_mul_ps(a, vs_f), _mm256_loadu_ps(u + i));
    const __m256i level = _mm256_min_epi32(_mm256_cvttps_epi32(t), vs_i);
    const __m256i sign =
        _mm256_sll_epi32(_mm256_srli_epi32(vbits, 31), shift);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(sym + i),
                        _mm256_or_si256(level, sign));
  }
  const auto s_i = static_cast<std::int32_t>(s);
  for (; i < n; ++i) {
    const std::uint32_t v_bits = std::bit_cast<std::uint32_t>(v[i]);
    const float a = std::bit_cast<float>(v_bits & 0x7fffffffu) * inv_norm;
    std::int32_t level = static_cast<std::int32_t>(a * s_f + u[i]);
    level = level < s_i ? level : s_i;
    sym[i] = static_cast<std::uint32_t>(level) | ((v_bits >> 31) * sign_bit);
  }
}

void qsgd_dequantize_avx2(const std::uint32_t* sym, std::size_t n, float scale,
                          std::uint32_t sign_bit, unsigned sign_shift,
                          float* out) {
  const std::uint32_t level_mask = sign_bit - 1;
  const __m256 vscale = _mm256_set1_ps(scale);
  const __m256i vmask = _mm256_set1_epi32(static_cast<int>(level_mask));
  const __m256i vsign = _mm256_set1_epi32(static_cast<int>(sign_bit));
  const __m128i shift = _mm_cvtsi32_si128(static_cast<int>(sign_shift));
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(sym + i));
    const __m256 mag = _mm256_mul_ps(
        _mm256_cvtepi32_ps(_mm256_and_si256(s, vmask)), vscale);
    const __m256i sg = _mm256_sll_epi32(_mm256_and_si256(s, vsign), shift);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        _mm256_or_si256(_mm256_castps_si256(mag), sg));
  }
  for (; i < n; ++i) {
    const std::uint32_t symbol = sym[i];
    const float magnitude = static_cast<float>(symbol & level_mask) * scale;
    out[i] = std::bit_cast<float>(std::bit_cast<std::uint32_t>(magnitude) |
                                  ((symbol & sign_bit) << sign_shift));
  }
}

void nuq_quantize_avx2(const float* v, const float* u, std::size_t n,
                       float inv_norm, unsigned bits, std::uint32_t* sym) {
  const int top = (1 << (bits - 1)) - 1;
  const std::uint32_t sign_bit = 1u << (bits - 1);
  const __m256 vinv = _mm256_set1_ps(inv_norm);
  const __m256 vone = _mm256_set1_ps(1.0f);
  const __m256i abs_mask = _mm256_set1_epi32(0x7fffffff);
  const __m256i vtop = _mm256_set1_epi32(top);
  const __m256i voff = _mm256_set1_epi32(top - 127);
  const __m256i vexp0 = _mm256_set1_epi32(127 - top);
  const __m256i vexp1 = _mm256_set1_epi32(128 - top);
  const __m256i vzero = _mm256_setzero_si256();
  const __m256i vone_i = _mm256_set1_epi32(1);
  const __m128i sshift = _mm_cvtsi32_si128(static_cast<int>(bits - 1));
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i vbits =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i));
    const __m256 a = _mm256_min_ps(
        _mm256_mul_ps(_mm256_castsi256_ps(_mm256_and_si256(vbits, abs_mask)),
                      vinv),
        vone);
    __m256i lo = _mm256_add_epi32(
        _mm256_srli_epi32(_mm256_castps_si256(a), 23), voff);
    lo = _mm256_min_epi32(_mm256_max_epi32(lo, vzero), vtop);
    const __m256 low = _mm256_castsi256_ps(_mm256_andnot_si256(
        _mm256_cmpeq_epi32(lo, vzero),
        _mm256_slli_epi32(_mm256_add_epi32(lo, vexp0), 23)));
    const __m256 high = _mm256_castsi256_ps(
        _mm256_slli_epi32(_mm256_add_epi32(lo, vexp1), 23));
    const __m256 p = _mm256_div_ps(_mm256_sub_ps(a, low),
                                   _mm256_sub_ps(high, low));
    // u < p, ordered (false on NaN p), matching the scalar `u[i] < p`.
    const __m256i ult =
        _mm256_castps_si256(_mm256_cmp_ps(_mm256_loadu_ps(u + i), p, _CMP_LT_OQ));
    const __m256i take = _mm256_and_si256(ult, _mm256_cmpgt_epi32(vtop, lo));
    const __m256i idx = _mm256_add_epi32(lo, _mm256_and_si256(take, vone_i));
    const __m256i sign =
        _mm256_sll_epi32(_mm256_srli_epi32(vbits, 31), sshift);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(sym + i),
                        _mm256_or_si256(idx, sign));
  }
  for (; i < n; ++i) {
    const std::uint32_t v_bits = std::bit_cast<std::uint32_t>(v[i]);
    float a = std::bit_cast<float>(v_bits & 0x7fffffffu) * inv_norm;
    a = a < 1.0f ? a : 1.0f;
    const int e =
        static_cast<int>(std::bit_cast<std::uint32_t>(a) >> 23) - 127;
    int lo = e + top;
    lo = lo < 0 ? 0 : (lo > top ? top : lo);
    std::uint32_t inc = 0;
    if (lo < top) {
      const float low =
          lo == 0 ? 0.0f
                  : std::bit_cast<float>(
                        static_cast<std::uint32_t>(lo - top + 127) << 23);
      const float high = std::bit_cast<float>(
          static_cast<std::uint32_t>(lo + 1 - top + 127) << 23);
      const float p = (a - low) / (high - low);
      inc = u[i] < p ? 1u : 0u;
    }
    sym[i] = (static_cast<std::uint32_t>(lo) + inc) |
             ((v_bits >> 31) * sign_bit);
  }
}

void nuq_dequantize_avx2(const std::uint32_t* sym, std::size_t n, float norm,
                         unsigned bits, float* out) {
  const int top = (1 << (bits - 1)) - 1;
  const std::uint32_t sign_bit = 1u << (bits - 1);
  const std::uint32_t index_mask = sign_bit - 1;
  const __m256 vnorm = _mm256_set1_ps(norm);
  const __m256i vmask = _mm256_set1_epi32(static_cast<int>(index_mask));
  const __m256i vsign = _mm256_set1_epi32(static_cast<int>(sign_bit));
  const __m256i vexp0 = _mm256_set1_epi32(127 - top);
  const __m256i vzero = _mm256_setzero_si256();
  const __m128i shift = _mm_cvtsi32_si128(static_cast<int>(32 - bits));
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(sym + i));
    const __m256i idx = _mm256_and_si256(s, vmask);
    const __m256 level = _mm256_castsi256_ps(_mm256_andnot_si256(
        _mm256_cmpeq_epi32(idx, vzero),
        _mm256_slli_epi32(_mm256_add_epi32(idx, vexp0), 23)));
    const __m256 value = _mm256_mul_ps(level, vnorm);
    const __m256i sg = _mm256_sll_epi32(_mm256_and_si256(s, vsign), shift);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        _mm256_xor_si256(_mm256_castps_si256(value), sg));
  }
  for (; i < n; ++i) {
    const std::uint32_t symbol = sym[i];
    const auto idx = static_cast<int>(symbol & index_mask);
    const float level =
        idx == 0 ? 0.0f
                 : std::bit_cast<float>(
                       static_cast<std::uint32_t>(idx - top + 127) << 23);
    const float value = level * norm;
    out[i] = std::bit_cast<float>(std::bit_cast<std::uint32_t>(value) ^
                                  ((symbol & sign_bit) ? 0x80000000u : 0u));
  }
}

// -------------------------------------------------------------------- gemm

inline void gemm_cols_scalar(const float* a, std::size_t lda, bool a_trans,
                             const float* b, std::size_t ldb, float* c,
                             std::size_t ldc, std::size_t mb, std::size_t kb,
                             std::size_t j0, std::size_t nb) {
  for (std::size_t i = 0; i < mb; ++i) {
    float* crow = c + i * ldc;
    for (std::size_t j = j0; j < nb; ++j) {
      float acc = crow[j];
      for (std::size_t k = 0; k < kb; ++k) {
        const float aik = a_trans ? a[k * lda + i] : a[i * lda + k];
        acc += aik * b[k * ldb + j];
      }
      crow[j] = acc;
    }
  }
}

// 4x16 register-blocked micro-kernel (8 ymm accumulators) with 4x8, 1x8 and
// scalar fallbacks for the fringes. mul+add, never FMA (see header comment).
template <bool ATrans>
inline void gemm_tile_impl(const float* a, std::size_t lda, const float* b,
                           std::size_t ldb, float* c, std::size_t ldc,
                           std::size_t mb, std::size_t kb, std::size_t nb) {
  auto a_at = [&](std::size_t i, std::size_t k) {
    return ATrans ? a[k * lda + i] : a[i * lda + k];
  };
  std::size_t i = 0;
  for (; i + 4 <= mb; i += 4) {
    float* c0 = c + (i + 0) * ldc;
    float* c1 = c + (i + 1) * ldc;
    float* c2 = c + (i + 2) * ldc;
    float* c3 = c + (i + 3) * ldc;
    std::size_t j = 0;
    for (; j + 16 <= nb; j += 16) {
      __m256 acc0a = _mm256_loadu_ps(c0 + j);
      __m256 acc0b = _mm256_loadu_ps(c0 + j + 8);
      __m256 acc1a = _mm256_loadu_ps(c1 + j);
      __m256 acc1b = _mm256_loadu_ps(c1 + j + 8);
      __m256 acc2a = _mm256_loadu_ps(c2 + j);
      __m256 acc2b = _mm256_loadu_ps(c2 + j + 8);
      __m256 acc3a = _mm256_loadu_ps(c3 + j);
      __m256 acc3b = _mm256_loadu_ps(c3 + j + 8);
      for (std::size_t k = 0; k < kb; ++k) {
        const float* brow = b + k * ldb + j;
        const __m256 b0 = _mm256_loadu_ps(brow);
        const __m256 b1 = _mm256_loadu_ps(brow + 8);
        __m256 av = _mm256_set1_ps(a_at(i + 0, k));
        acc0a = _mm256_add_ps(acc0a, _mm256_mul_ps(av, b0));
        acc0b = _mm256_add_ps(acc0b, _mm256_mul_ps(av, b1));
        av = _mm256_set1_ps(a_at(i + 1, k));
        acc1a = _mm256_add_ps(acc1a, _mm256_mul_ps(av, b0));
        acc1b = _mm256_add_ps(acc1b, _mm256_mul_ps(av, b1));
        av = _mm256_set1_ps(a_at(i + 2, k));
        acc2a = _mm256_add_ps(acc2a, _mm256_mul_ps(av, b0));
        acc2b = _mm256_add_ps(acc2b, _mm256_mul_ps(av, b1));
        av = _mm256_set1_ps(a_at(i + 3, k));
        acc3a = _mm256_add_ps(acc3a, _mm256_mul_ps(av, b0));
        acc3b = _mm256_add_ps(acc3b, _mm256_mul_ps(av, b1));
      }
      _mm256_storeu_ps(c0 + j, acc0a);
      _mm256_storeu_ps(c0 + j + 8, acc0b);
      _mm256_storeu_ps(c1 + j, acc1a);
      _mm256_storeu_ps(c1 + j + 8, acc1b);
      _mm256_storeu_ps(c2 + j, acc2a);
      _mm256_storeu_ps(c2 + j + 8, acc2b);
      _mm256_storeu_ps(c3 + j, acc3a);
      _mm256_storeu_ps(c3 + j + 8, acc3b);
    }
    for (; j + 8 <= nb; j += 8) {
      __m256 acc0 = _mm256_loadu_ps(c0 + j);
      __m256 acc1 = _mm256_loadu_ps(c1 + j);
      __m256 acc2 = _mm256_loadu_ps(c2 + j);
      __m256 acc3 = _mm256_loadu_ps(c3 + j);
      for (std::size_t k = 0; k < kb; ++k) {
        const __m256 b0 = _mm256_loadu_ps(b + k * ldb + j);
        acc0 = _mm256_add_ps(acc0,
                             _mm256_mul_ps(_mm256_set1_ps(a_at(i + 0, k)), b0));
        acc1 = _mm256_add_ps(acc1,
                             _mm256_mul_ps(_mm256_set1_ps(a_at(i + 1, k)), b0));
        acc2 = _mm256_add_ps(acc2,
                             _mm256_mul_ps(_mm256_set1_ps(a_at(i + 2, k)), b0));
        acc3 = _mm256_add_ps(acc3,
                             _mm256_mul_ps(_mm256_set1_ps(a_at(i + 3, k)), b0));
      }
      _mm256_storeu_ps(c0 + j, acc0);
      _mm256_storeu_ps(c1 + j, acc1);
      _mm256_storeu_ps(c2 + j, acc2);
      _mm256_storeu_ps(c3 + j, acc3);
    }
    if (j < nb) {
      gemm_cols_scalar(ATrans ? a + i : a + i * lda, lda, ATrans, b, ldb,
                       c + i * ldc, ldc, 4, kb, j, nb);
    }
  }
  for (; i < mb; ++i) {
    float* crow = c + i * ldc;
    std::size_t j = 0;
    for (; j + 8 <= nb; j += 8) {
      __m256 acc = _mm256_loadu_ps(crow + j);
      for (std::size_t k = 0; k < kb; ++k) {
        acc = _mm256_add_ps(acc, _mm256_mul_ps(_mm256_set1_ps(a_at(i, k)),
                                               _mm256_loadu_ps(b + k * ldb + j)));
      }
      _mm256_storeu_ps(crow + j, acc);
    }
    if (j < nb) {
      gemm_cols_scalar(ATrans ? a + i : a + i * lda, lda, ATrans, b, ldb,
                       crow, ldc, 1, kb, j, nb);
    }
  }
}

void gemm_tile_avx2(const float* a, std::size_t lda, const float* b,
                    std::size_t ldb, float* c, std::size_t ldc, std::size_t mb,
                    std::size_t kb, std::size_t nb) {
  gemm_tile_impl<false>(a, lda, b, ldb, c, ldc, mb, kb, nb);
}

void gemm_tile_at_avx2(const float* a, std::size_t lda, const float* b,
                       std::size_t ldb, float* c, std::size_t ldc,
                       std::size_t mb, std::size_t kb, std::size_t nb) {
  gemm_tile_impl<true>(a, lda, b, ldb, c, ldc, mb, kb, nb);
}

// ------------------------------------------------------------- pack/unpack

// Vector paths exist for the word-aligned prefix only; output words are
// bit-identical to bitio's scalar `word |= sym << (j*bits)` loop.

bool pack_words_avx2(const std::uint32_t* sym, std::size_t nwords,
                     unsigned bits, std::byte* out) {
  if (bits == 8) {
    // 8 symbols -> one 64-bit word: gather the low byte of each dword.
    const __m256i shuf = _mm256_setr_epi8(
        0, 4, 8, 12, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1,  //
        0, 4, 8, 12, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1);
    for (std::size_t w = 0; w < nwords; ++w) {
      const __m256i v =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(sym + w * 8));
      const __m256i t = _mm256_shuffle_epi8(v, shuf);
      const auto lo = static_cast<std::uint32_t>(
          _mm_cvtsi128_si32(_mm256_castsi256_si128(t)));
      const auto hi = static_cast<std::uint32_t>(
          _mm_cvtsi128_si32(_mm256_extracti128_si256(t, 1)));
      const std::uint64_t word =
          static_cast<std::uint64_t>(lo) | (static_cast<std::uint64_t>(hi) << 32);
      std::memcpy(out + w * 8, &word, 8);
    }
    return true;
  }
  if (bits == 4) {
    // 16 symbols -> one word: pair nibbles inside each qword, then gather.
    const __m256i nib_mask = _mm256_set1_epi32(0xF);
    const __m256i odd_shift = _mm256_setr_epi32(0, 4, 0, 4, 0, 4, 0, 4);
    const __m256i shuf = _mm256_setr_epi8(
        0, 8, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1,  //
        0, 8, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1);
    auto gather4 = [&](const std::uint32_t* p) {
      __m256i v = _mm256_and_si256(
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p)), nib_mask);
      v = _mm256_sllv_epi32(v, odd_shift);
      v = _mm256_or_si256(v, _mm256_srli_epi64(v, 32));
      const __m256i t = _mm256_shuffle_epi8(v, shuf);
      const auto lo = static_cast<std::uint32_t>(
          _mm_cvtsi128_si32(_mm256_castsi256_si128(t)));
      const auto hi = static_cast<std::uint32_t>(
          _mm_cvtsi128_si32(_mm256_extracti128_si256(t, 1)));
      return (lo & 0xFFFFu) | ((hi & 0xFFFFu) << 16);
    };
    for (std::size_t w = 0; w < nwords; ++w) {
      const std::uint32_t* p = sym + w * 16;
      const std::uint64_t word =
          static_cast<std::uint64_t>(gather4(p)) |
          (static_cast<std::uint64_t>(gather4(p + 8)) << 32);
      std::memcpy(out + w * 8, &word, 8);
    }
    return true;
  }
  return false;
}

bool unpack_words_avx2(const std::byte* in, std::size_t nwords, unsigned bits,
                       std::uint32_t* sym) {
  if (bits == 8) {
    for (std::size_t w = 0; w < nwords; ++w) {
      std::uint64_t word;
      std::memcpy(&word, in + w * 8, 8);
      const __m128i b = _mm_cvtsi64_si128(static_cast<long long>(word));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(sym + w * 8),
                          _mm256_cvtepu8_epi32(b));
    }
    return true;
  }
  if (bits == 4) {
    const __m256i shifts = _mm256_setr_epi32(0, 4, 8, 12, 16, 20, 24, 28);
    const __m256i mask = _mm256_set1_epi32(0xF);
    for (std::size_t w = 0; w < nwords; ++w) {
      std::uint64_t word;
      std::memcpy(&word, in + w * 8, 8);
      const auto lo = static_cast<std::uint32_t>(word);
      const auto hi = static_cast<std::uint32_t>(word >> 32);
      _mm256_storeu_si256(
          reinterpret_cast<__m256i*>(sym + w * 16),
          _mm256_and_si256(
              _mm256_srlv_epi32(_mm256_set1_epi32(static_cast<int>(lo)), shifts),
              mask));
      _mm256_storeu_si256(
          reinterpret_cast<__m256i*>(sym + w * 16 + 8),
          _mm256_and_si256(
              _mm256_srlv_epi32(_mm256_set1_epi32(static_cast<int>(hi)), shifts),
              mask));
    }
    return true;
  }
  if (bits == 2) {
    const __m256i shifts = _mm256_setr_epi32(0, 2, 4, 6, 8, 10, 12, 14);
    const __m256i mask = _mm256_set1_epi32(0x3);
    for (std::size_t w = 0; w < nwords; ++w) {
      std::uint64_t word;
      std::memcpy(&word, in + w * 8, 8);
      for (unsigned g = 0; g < 4; ++g) {
        const auto part =
            static_cast<std::uint32_t>((word >> (16 * g)) & 0xFFFFu);
        _mm256_storeu_si256(
            reinterpret_cast<__m256i*>(sym + w * 32 + g * 8),
            _mm256_and_si256(
                _mm256_srlv_epi32(_mm256_set1_epi32(static_cast<int>(part)),
                                  shifts),
                mask));
      }
    }
    return true;
  }
  return false;
}

// ------------------------------------------------------------- copy engine

void copy_bytes_avx2(std::byte* dst, const std::byte* src, std::size_t n) {
  // Cache-resident sizes: libc memcpy (ERMS / tuned AVX loops) beats an
  // explicit vector loop — measured ~12% on bench_micro_memory — so the
  // custom path exists only for the non-temporal regime.
  if (n < kNonTemporalCopyBytes) {
    std::memcpy(dst, src, n);
    return;
  }
  const std::size_t head =
      (32 - reinterpret_cast<std::uintptr_t>(dst) % 32) % 32;
  if (head != 0) {
    std::memcpy(dst, src, head);
    dst += head;
    src += head;
    n -= head;
  }
  std::size_t i = 0;
  {
    // Past-L2 copy: non-temporal stores keep the destination out of the
    // cache so the working set survives. Identical bytes either way.
    for (; i + 128 <= n; i += 128) {
      _mm_prefetch(reinterpret_cast<const char*>(src + i) + 1024,
                   _MM_HINT_NTA);
      _mm_prefetch(reinterpret_cast<const char*>(src + i) + 1088,
                   _MM_HINT_NTA);
      const __m256i a =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
      const __m256i b =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i + 32));
      const __m256i c =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i + 64));
      const __m256i d =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i + 96));
      _mm256_stream_si256(reinterpret_cast<__m256i*>(dst + i), a);
      _mm256_stream_si256(reinterpret_cast<__m256i*>(dst + i + 32), b);
      _mm256_stream_si256(reinterpret_cast<__m256i*>(dst + i + 64), c);
      _mm256_stream_si256(reinterpret_cast<__m256i*>(dst + i + 96), d);
    }
    _mm_sfence();
  }
  if (i < n) std::memcpy(dst + i, src + i, n - i);
}

// dst[i] += src[i] in index order — the scalar sequence, eight lanes at a
// time. Prefetch both streams; dst is read back, so no non-temporal path.
void copy_add_avx2(float* dst, const float* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    _mm_prefetch(reinterpret_cast<const char*>(src + i) + 256, _MM_HINT_T0);
    _mm_prefetch(reinterpret_cast<const char*>(dst + i) + 256, _MM_HINT_T0);
    for (std::size_t j = 0; j < 32; j += 8) {
      const __m256 vd = _mm256_loadu_ps(dst + i + j);
      const __m256 vs = _mm256_loadu_ps(src + i + j);
      _mm256_storeu_ps(dst + i + j, _mm256_add_ps(vd, vs));
    }
  }
  for (; i + 8 <= n; i += 8) {
    const __m256 vd = _mm256_loadu_ps(dst + i);
    const __m256 vs = _mm256_loadu_ps(src + i);
    _mm256_storeu_ps(dst + i, _mm256_add_ps(vd, vs));
  }
  for (; i < n; ++i) dst[i] += src[i];
}

void copy_add2_avx2(float* dst, const float* a, const float* b,
                    std::size_t n) {
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    _mm_prefetch(reinterpret_cast<const char*>(a + i) + 256, _MM_HINT_T0);
    _mm_prefetch(reinterpret_cast<const char*>(b + i) + 256, _MM_HINT_T0);
    _mm_prefetch(reinterpret_cast<const char*>(dst + i) + 256, _MM_HINT_T0);
    for (std::size_t j = 0; j < 32; j += 8) {
      const __m256 vd = _mm256_loadu_ps(dst + i + j);
      const __m256 va = _mm256_loadu_ps(a + i + j);
      const __m256 vb = _mm256_loadu_ps(b + i + j);
      _mm256_storeu_ps(dst + i + j,
                       _mm256_add_ps(_mm256_add_ps(vd, va), vb));
    }
  }
  for (; i + 8 <= n; i += 8) {
    const __m256 vd = _mm256_loadu_ps(dst + i);
    const __m256 va = _mm256_loadu_ps(a + i);
    const __m256 vb = _mm256_loadu_ps(b + i);
    _mm256_storeu_ps(dst + i, _mm256_add_ps(_mm256_add_ps(vd, va), vb));
  }
  for (; i < n; ++i) {
    float acc = dst[i] + a[i];
    dst[i] = acc + b[i];
  }
}

// -------------------------------------------------------- half conversions
//
// Integer-exact vectorizations of util/half.cpp. Every step below is either
// pure integer manipulation or an exact float operation (int -> float for
// values < 2^24, multiply by a power of two), so the results are
// bit-identical to the scalar reference for every input, including
// subnormals, RN-even ties, and the NaN mantissa squash.

// 8 halves (zero-extended into 32-bit lanes) -> 8 float bit patterns.
inline __m256i f16_to_f32_block(__m256i h) {
  const __m256i sign = _mm256_slli_epi32(
      _mm256_and_si256(h, _mm256_set1_epi32(0x8000)), 16);
  const __m256i expf =
      _mm256_and_si256(_mm256_srli_epi32(h, 10), _mm256_set1_epi32(0x1f));
  const __m256i mant = _mm256_and_si256(h, _mm256_set1_epi32(0x3ff));
  const __m256i mant13 = _mm256_slli_epi32(mant, 13);
  // Normal: rebias exponent (half 15 -> float 127).
  const __m256i norm = _mm256_or_si256(
      _mm256_slli_epi32(_mm256_add_epi32(expf, _mm256_set1_epi32(112)), 23),
      mant13);
  // Inf/NaN: exponent all-ones, mantissa shifted up (preserves NaN payload
  // exactly like the scalar path).
  const __m256i infnan =
      _mm256_or_si256(_mm256_set1_epi32(0x7f800000), mant13);
  // Subnormal (and zero): value is mant * 2^-24 exactly. mant < 2^10, so
  // int -> float is exact, and the power-of-two multiply is exact.
  const __m256i sub = _mm256_castps_si256(_mm256_mul_ps(
      _mm256_cvtepi32_ps(mant), _mm256_set1_ps(0x1p-24f)));
  const __m256i zero_exp = _mm256_cmpeq_epi32(expf, _mm256_setzero_si256());
  const __m256i max_exp =
      _mm256_cmpeq_epi32(expf, _mm256_set1_epi32(0x1f));
  __m256i res = _mm256_blendv_epi8(norm, infnan, max_exp);
  res = _mm256_blendv_epi8(res, sub, zero_exp);
  return _mm256_or_si256(res, sign);
}

bool f16_to_f32_avx2(const std::uint16_t* in, float* out, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i h = _mm256_cvtepu16_epi32(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + i)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        f16_to_f32_block(h));
  }
  if (i < n) {
    // Ragged tail: run one padded vector block so the tail goes through the
    // exact same lanes as the body (no scalar duplicate to keep in sync).
    alignas(32) std::uint16_t tin[8] = {};
    alignas(32) float tout[8];
    std::memcpy(tin, in + i, (n - i) * sizeof(std::uint16_t));
    const __m256i h = _mm256_cvtepu16_epi32(
        _mm_load_si128(reinterpret_cast<const __m128i*>(tin)));
    _mm256_store_si256(reinterpret_cast<__m256i*>(tout), f16_to_f32_block(h));
    std::memcpy(out + i, tout, (n - i) * sizeof(float));
  }
  return true;
}

// 8 float bit patterns -> 8 half codes in the low 16 bits of each lane.
inline __m256i f32_to_f16_block(__m256i x) {
  const __m256i one = _mm256_set1_epi32(1);
  const __m256i sign16 = _mm256_and_si256(_mm256_srli_epi32(x, 16),
                                          _mm256_set1_epi32(0x8000));
  const __m256i expf =
      _mm256_and_si256(_mm256_srli_epi32(x, 23), _mm256_set1_epi32(0xff));
  const __m256i mant = _mm256_and_si256(x, _mm256_set1_epi32(0x7fffff));
  const __m256i new_exp = _mm256_sub_epi32(expf, _mm256_set1_epi32(112));

  // Normal candidate with RN-even on the 13 dropped bits. A rounding carry
  // walks into the exponent (0x7bff + 1 = 0x7c00 = inf), as in scalar.
  __m256i vn = _mm256_or_si256(_mm256_slli_epi32(new_exp, 10),
                               _mm256_srli_epi32(mant, 13));
  {
    const __m256i dropped =
        _mm256_and_si256(mant, _mm256_set1_epi32(0x1fff));
    const __m256i gt =
        _mm256_cmpgt_epi32(dropped, _mm256_set1_epi32(0x1000));
    const __m256i eq =
        _mm256_cmpeq_epi32(dropped, _mm256_set1_epi32(0x1000));
    const __m256i odd =
        _mm256_cmpeq_epi32(_mm256_and_si256(vn, one), one);
    // Masks are all-ones (-1); subtracting adds the rounding increment.
    vn = _mm256_sub_epi32(vn, _mm256_or_si256(gt, _mm256_and_si256(eq, odd)));
  }

  // Subnormal candidate: shift = 14 - new_exp in [14, 24] for the lanes
  // that select it; per-lane variable shifts keep everything exact. Shift
  // counts > 31 (deeply underflowed lanes) produce 0 by vpsrlvd/vpsllvd
  // semantics and are masked to zero below anyway.
  const __m256i shift = _mm256_sub_epi32(_mm256_set1_epi32(14), new_exp);
  const __m256i m2 = _mm256_or_si256(mant, _mm256_set1_epi32(0x800000));
  __m256i vs = _mm256_srlv_epi32(m2, shift);
  {
    const __m256i low_mask =
        _mm256_sub_epi32(_mm256_sllv_epi32(one, shift), one);
    const __m256i dropped = _mm256_and_si256(m2, low_mask);
    const __m256i halfway =
        _mm256_sllv_epi32(one, _mm256_sub_epi32(shift, one));
    const __m256i gt = _mm256_cmpgt_epi32(dropped, halfway);
    const __m256i eq = _mm256_cmpeq_epi32(dropped, halfway);
    const __m256i odd =
        _mm256_cmpeq_epi32(_mm256_and_si256(vs, one), one);
    vs = _mm256_sub_epi32(vs, _mm256_or_si256(gt, _mm256_and_si256(eq, odd)));
  }

  // Select per the scalar branch ladder (later blends win, so order the
  // special cases from widest to most specific).
  __m256i res = vn;
  res = _mm256_blendv_epi8(
      res, _mm256_set1_epi32(0x7c00),
      _mm256_cmpgt_epi32(new_exp, _mm256_set1_epi32(30)));  // overflow
  res = _mm256_blendv_epi8(res, vs,
                           _mm256_cmpgt_epi32(one, new_exp));  // new_exp <= 0
  res = _mm256_blendv_epi8(
      res, _mm256_setzero_si256(),
      _mm256_cmpgt_epi32(_mm256_set1_epi32(-10), new_exp));  // underflow
  const __m256i nan_bit = _mm256_andnot_si256(
      _mm256_cmpeq_epi32(mant, _mm256_setzero_si256()),
      _mm256_set1_epi32(0x200));
  res = _mm256_blendv_epi8(
      res, _mm256_or_si256(_mm256_set1_epi32(0x7c00), nan_bit),
      _mm256_cmpeq_epi32(expf, _mm256_set1_epi32(0xff)));  // inf / NaN
  return _mm256_or_si256(res, sign16);
}

bool f32_to_f16_avx2(const float* in, std::uint16_t* out, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(in + i));
    const __m256i res = f32_to_f16_block(x);
    // Lanes are <= 0xffff, so unsigned-saturating pack is lossless; the
    // permute undoes packus's per-128-bit-lane interleave.
    const __m256i packed = _mm256_packus_epi32(res, res);
    const __m256i lin = _mm256_permute4x64_epi64(packed, 0x08);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i),
                     _mm256_castsi256_si128(lin));
  }
  if (i < n) {
    alignas(32) float tin[8] = {};
    alignas(32) std::uint16_t tout[8];
    std::memcpy(tin, in + i, (n - i) * sizeof(float));
    const __m256i x =
        _mm256_load_si256(reinterpret_cast<const __m256i*>(tin));
    const __m256i packed = _mm256_packus_epi32(f32_to_f16_block(x),
                                               f32_to_f16_block(x));
    const __m256i lin = _mm256_permute4x64_epi64(packed, 0x08);
    _mm_store_si128(reinterpret_cast<__m128i*>(tout),
                    _mm256_castsi256_si128(lin));
    std::memcpy(out + i, tout, (n - i) * sizeof(std::uint16_t));
  }
  return true;
}

constexpr SimdOps kAvx2Ops = {
    axpy_avx2,       scale_avx2,          sub_avx2,
    add_avx2,        add_scaled_avx2,     madd_avx2,
    reduce_sum_avx2, reduce_dot_avx2,     reduce_sqnorm_avx2,
    reduce_sqdiff_avx2, reduce_max_avx2,  reduce_max_abs_avx2,
    qsgd_quantize_avx2, qsgd_dequantize_avx2,
    nuq_quantize_avx2,  nuq_dequantize_avx2,
    gemm_tile_avx2,  gemm_tile_at_avx2,
    pack_words_avx2, unpack_words_avx2,
    copy_bytes_avx2, copy_add_avx2, copy_add2_avx2,
    f32_to_f16_avx2, f16_to_f32_avx2,
};

}  // namespace

const SimdOps& avx2_ops() { return kAvx2Ops; }

}  // namespace cgx::util::simd::detail

#else  // non-x86: never selected (max_supported_level() caps at scalar)

namespace cgx::util::simd::detail {
const SimdOps& avx2_ops() { return scalar_ops(); }
}  // namespace cgx::util::simd::detail

#endif
