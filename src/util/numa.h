// NUMA topology detection and rank-to-node thread placement.
//
// On a multi-socket box, a rank whose engine thread, comm thread, and
// buffers live on one node sees local-DRAM latency and full local bandwidth;
// a rank whose threads migrate across nodes pays the interconnect on every
// gradient sweep. This module gives the data plane the three primitives it
// needs, with zero configuration:
//
//  * topology detection from sysfs (/sys/devices/system/node) — no libnuma
//    dependency, and non-Linux / single-node machines degrade to a no-op;
//  * deterministic rank -> node assignment (ranks round-robin across nodes,
//    mirroring how multi-GPU hosts pair GPUs with sockets);
//  * thread pinning (sched_setaffinity to the node's whole CPU set — the
//    scheduler still balances within the node) plus first-touch page
//    priming, so a pinned rank's arena and ring slabs fault in locally.
//
// The CGX_NUMA environment variable mirrors the CGX_SIMD pattern:
//    off   — every call is a no-op (placement identical to the seed);
//    auto  — pin when the machine has more than one node (default).
// Results are bit-identical either way: placement moves bytes, never math.
#pragma once

#include <cstddef>
#include <span>
#include <string>

namespace cgx::util::numa {

// True when CGX_NUMA != off AND the machine exposes >1 NUMA node. All
// placement calls below are no-ops when this is false.
bool enabled();

// Number of NUMA nodes detected (1 on non-Linux or when sysfs is absent).
int node_count();

// Number of CPUs in `node`'s cpulist (0 for an unknown node).
int node_cpu_count(int node);

// Deterministic rank placement: ranks round-robin across nodes, so
// consecutive ranks spread like GPUs across sockets.
int node_for_rank(int rank);

// Pins the calling thread to every CPU of `node`. No-op (returns false)
// when !enabled(), the node is unknown, or the syscall is unavailable.
bool pin_current_thread_to_node(int node);

// pin_current_thread_to_node(node_for_rank(rank)); the one-liner every
// rank-thread entry point calls. Returns false when nothing was pinned.
bool pin_current_thread_for_rank(int rank);

// Writes one byte per page so the pages fault in on the calling (pinned)
// thread's node — first-touch placement for freshly reserved slabs.
// Contents are zeroed; safe only on memory the caller owns exclusively.
void first_touch(std::span<std::byte> memory);

// "numa: 2 nodes (16+16 cpus), CGX_NUMA=auto" — for logs and benches.
std::string topology_summary();

}  // namespace cgx::util::numa
