#include "util/csv.h"

#include "util/check.h"

namespace cgx::util {

std::string csv_escape(const std::string& cell) {
  const bool needs_quote =
      cell.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quote) return cell;
  std::string quoted = "\"";
  for (char c : cell) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : out_(path), columns_(header.size()) {
  if (!out_.good()) return;
  add_row(header);
}

void CsvWriter::add_row(const std::vector<std::string>& cells) {
  CGX_CHECK_EQ(cells.size(), columns_);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ",";
    out_ << csv_escape(cells[i]);
  }
  out_ << "\n";
}

}  // namespace cgx::util
