// ASCII table renderer for bench output.
//
// Every bench binary regenerates one of the paper's tables/figures and prints
// it in the same row/column layout; this helper keeps the formatting uniform
// (aligned columns, optional title, markdown-ish separators).
#pragma once

#include <string>
#include <vector>

namespace cgx::util {

class Table {
 public:
  explicit Table(std::string title = "");

  void set_header(std::vector<std::string> header);
  void add_row(std::vector<std::string> row);

  // Formats a double with `precision` digits after the point.
  static std::string num(double v, int precision = 2);
  // Formats large counts with k/M suffixes (e.g. 260k items/s like Table 6).
  static std::string compact(double v);

  std::string to_string() const;
  void print() const;  // to stdout

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace cgx::util
