#include "comm/ring_channel.h"

#include <algorithm>
#include <cstring>
#include <limits>

#include "util/check.h"

namespace cgx::comm {
namespace {

// Smallest physical slab worth allocating.
constexpr std::size_t kMinSlab = 4096;

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

std::size_t RingChannel::effective_capacity() const {
  return capacity_ == 0 ? std::numeric_limits<std::size_t>::max() / 2
                        : capacity_;
}

void RingChannel::ensure_slab(std::size_t need) {
  need = std::min(need, effective_capacity());
  if (slab_.size() >= need) return;
  std::size_t target = std::max(kMinSlab, round_up_pow2(need));
  target = std::min(target, effective_capacity());
  target = std::max(target, need);  // capacity smaller than kMinSlab
  std::vector<std::byte> grown(target);
  // Linearise live bytes to the front so modular arithmetic stays valid.
  if (used_ > 0) {
    const std::size_t first = std::min(used_, slab_.size() - head_);
    std::memcpy(grown.data(), slab_.data() + head_, first);
    if (first < used_) {
      std::memcpy(grown.data() + first, slab_.data(), used_ - first);
    }
  }
  slab_.swap(grown);
  head_ = 0;
  slab_high_water_.store(slab_.size(), std::memory_order_release);
}

void RingChannel::ring_doorbell() {
  if (doorbell_ == nullptr) return;
  doorbell_->seq.fetch_add(1, std::memory_order_release);
  if (doorbell_->waiters.load(std::memory_order_acquire) > 0) {
    // Lock/unlock pairs the notify with the waiter's predicate check; the
    // waiters gate keeps this off the common (no any-source) path.
    std::lock_guard<std::mutex> lock(doorbell_->mutex);
    doorbell_->cv.notify_all();
  }
}

void RingChannel::notify_data() {
  if (data_waiters_ > 0) data_cv_.notify_all();
}

void RingChannel::notify_space() {
  if (space_waiters_ > 0) space_cv_.notify_all();
}

void RingChannel::write_stream(std::unique_lock<std::mutex>& lock,
                               std::span<const std::byte> src) {
  const std::size_t cap = effective_capacity();
  std::size_t off = 0;
  while (off < src.size()) {
    wait_space(lock, [&] { return used_ < cap; });
    // Move everything that fits in one locked pass: the common case (the
    // whole message fits free space) costs one commit and one wakeup. Only
    // an over-capacity message loops, draining against a concurrent reader.
    std::size_t n = std::min(src.size() - off, cap - used_);
    ensure_slab(used_ + n);
    n = std::min(n, slab_.size() - used_);
    // Modular copy into [head_ + used_, head_ + used_ + n).
    const std::size_t start = (head_ + used_) % slab_.size();
    const std::size_t first = std::min(n, slab_.size() - start);
    std::memcpy(slab_.data() + start, src.data() + off, first);
    if (first < n) {
      std::memcpy(slab_.data(), src.data() + off + first, n - first);
    }
    used_ += n;
    off += n;
    readable_.store(used_, std::memory_order_release);
    notify_data();
    ring_doorbell();
  }
}

void RingChannel::read_stream(std::unique_lock<std::mutex>& lock,
                              std::span<std::byte> dst) {
  std::size_t off = 0;
  while (off < dst.size()) {
    wait_data(lock, [&] { return used_ > 0; });
    const std::size_t n = std::min(dst.size() - off, used_);
    const std::size_t first = std::min(n, slab_.size() - head_);
    std::memcpy(dst.data() + off, slab_.data() + head_, first);
    if (first < n) {
      std::memcpy(dst.data() + off + first, slab_.data(), n - first);
    }
    head_ = (head_ + n) % slab_.size();
    used_ -= n;
    off += n;
    readable_.store(used_, std::memory_order_release);
    notify_space();
  }
}

void RingChannel::read_stream_add(std::unique_lock<std::mutex>& lock,
                                  std::span<float> dst) {
  // Bytes hop slab -> L1-resident stage -> add into dst, so each payload
  // byte crosses DRAM once on the receive side instead of twice (no bounce
  // through a full-size scratch buffer). A locked pass may end mid-float;
  // the sub-float remainder is carried in the stage across passes.
  constexpr std::size_t kStageFloats = 4096;  // 16 KiB
  float stage[kStageFloats];
  auto* stage_bytes = reinterpret_cast<std::byte*>(stage);
  std::size_t carry = 0;          // partial-float bytes at the stage front
  std::size_t emitted = 0;        // floats already added into dst
  std::size_t remaining = dst.size() * sizeof(float);
  while (remaining > 0) {
    wait_data(lock, [&] { return used_ > 0; });
    while (remaining > 0 && used_ > 0) {
      const std::size_t n = std::min(
          {remaining, used_, sizeof(stage) - carry});
      const std::size_t first = std::min(n, slab_.size() - head_);
      std::memcpy(stage_bytes + carry, slab_.data() + head_, first);
      if (first < n) {
        std::memcpy(stage_bytes + carry + first, slab_.data(), n - first);
      }
      head_ = (head_ + n) % slab_.size();
      used_ -= n;
      remaining -= n;
      const std::size_t avail = carry + n;
      const std::size_t nfloat = avail / sizeof(float);
      float* out = dst.data() + emitted;
      for (std::size_t i = 0; i < nfloat; ++i) out[i] += stage[i];
      emitted += nfloat;
      carry = avail - nfloat * sizeof(float);
      if (carry > 0) {
        std::memmove(stage_bytes, stage_bytes + nfloat * sizeof(float),
                     carry);
      }
    }
    readable_.store(used_, std::memory_order_release);
    notify_space();
  }
}

void RingChannel::push(std::span<const std::byte> data) {
  std::unique_lock<std::mutex> lock(mutex_);
  // One in-flight message body per channel: take the writer token so a
  // streamed message never interleaves with another producer's bytes.
  wait_space(lock, [&] { return !writer_active_; });
  writer_active_ = true;

  // One grow decision per message: reserve the whole frame (clamped to
  // capacity inside ensure_slab) up front, so a queue-depth wobble later
  // cannot trigger a mid-steady-state reallocation.
  std::uint64_t size = data.size();
  std::byte header[sizeof(size)];
  std::memcpy(header, &size, sizeof(size));
  ensure_slab(used_ + sizeof(header) + data.size());
  write_stream(lock, header);
  // Header committed: the message is now visible to pending_messages() and
  // a streaming reader may start consuming it while we keep writing.
  ++pending_;
  pending_messages_.store(pending_, std::memory_order_release);
  write_stream(lock, data);

  writer_active_ = false;
  notify_space();
}

void RingChannel::pop_into(std::span<std::byte> out) {
  std::unique_lock<std::mutex> lock(mutex_);
  wait_data(lock, [&] { return !reader_active_; });
  reader_active_ = true;

  std::uint64_t size = 0;
  std::byte header[sizeof(size)];
  read_stream(lock, header);
  std::memcpy(&size, header, sizeof(size));
  CGX_CHECK_EQ(size, out.size());
  read_stream(lock, out);

  CGX_CHECK_GT(pending_, 0u);
  --pending_;
  pending_messages_.store(pending_, std::memory_order_release);
  reader_active_ = false;
  notify_data();
}

void RingChannel::pop_into_add(std::span<float> dst) {
  std::unique_lock<std::mutex> lock(mutex_);
  wait_data(lock, [&] { return !reader_active_; });
  reader_active_ = true;

  std::uint64_t size = 0;
  std::byte header[sizeof(size)];
  read_stream(lock, header);
  std::memcpy(&size, header, sizeof(size));
  CGX_CHECK_EQ(size, dst.size() * sizeof(float));
  read_stream_add(lock, dst);

  CGX_CHECK_GT(pending_, 0u);
  --pending_;
  pending_messages_.store(pending_, std::memory_order_release);
  reader_active_ = false;
  notify_data();
}

std::vector<std::byte> RingChannel::pop() {
  std::unique_lock<std::mutex> lock(mutex_);
  wait_data(lock, [&] { return !reader_active_; });
  reader_active_ = true;

  std::uint64_t size = 0;
  std::byte header[sizeof(size)];
  read_stream(lock, header);
  std::memcpy(&size, header, sizeof(size));
  std::vector<std::byte> out(size);
  read_stream(lock, out);

  CGX_CHECK_GT(pending_, 0u);
  --pending_;
  pending_messages_.store(pending_, std::memory_order_release);
  reader_active_ = false;
  notify_data();
  return out;
}

}  // namespace cgx::comm
