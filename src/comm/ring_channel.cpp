#include "comm/ring_channel.h"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <limits>
#include <thread>

#include "comm/fault.h"
#include "util/check.h"
#include "util/crc32.h"
#include "util/numa.h"
#include "util/simd.h"

namespace cgx::comm {
namespace {

// Smallest physical slab worth allocating.
constexpr std::size_t kMinSlab = 4096;

// Exponential backoff is capped at base * 2^6 so a hopeless link fails in
// bounded time instead of sleeping geometrically.
constexpr int kMaxBackoffShift = 6;

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

const CommPolicy& RingChannel::policy() const {
  static const CommPolicy kDefault;
  return (fabric_ != nullptr && fabric_->policy != nullptr) ? *fabric_->policy
                                                            : kDefault;
}

std::uint64_t RingChannel::current_epoch_bits() const {
  return fabric_ == nullptr
             ? 0
             : (fabric_->epoch.load(std::memory_order_acquire) & kEpochMask);
}

std::size_t RingChannel::effective_capacity() const {
  return capacity_ == 0 ? std::numeric_limits<std::size_t>::max() / 2
                        : capacity_;
}

void RingChannel::ensure_slab(std::size_t need) {
  need = std::min(need, effective_capacity());
  if (slab_.size() >= need) return;
  std::size_t target = std::max(kMinSlab, round_up_pow2(need));
  target = std::min(target, effective_capacity());
  target = std::max(target, need);  // capacity smaller than kMinSlab
  util::ArenaBuffer<std::byte> grown;
  grown.set_arena(slab_.arena());
  grown.resize(target);
  // Fault every page in now, on the (NUMA-pinned) thread that grows the
  // slab: first-touch placement, and no page-fault stalls in steady state.
  util::numa::first_touch(grown.span());
  // Linearise live bytes to the front so modular arithmetic stays valid.
  if (used_ > 0) {
    const std::size_t first = std::min(used_, slab_.size() - head_);
    util::simd::copy_bytes(grown.data(), slab_.data() + head_, first);
    if (first < used_) {
      util::simd::copy_bytes(grown.data() + first, slab_.data(),
                             used_ - first);
    }
  }
  slab_.swap(grown);
  head_ = 0;
  slab_high_water_.store(slab_.size(), std::memory_order_release);
}

void RingChannel::ring_doorbell() {
  if (doorbell_ == nullptr) return;
  doorbell_->seq.fetch_add(1, std::memory_order_release);
  if (doorbell_->waiters.load(std::memory_order_acquire) > 0) {
    // Lock/unlock pairs the notify with the waiter's predicate check; the
    // waiters gate keeps this off the common (no any-source) path.
    std::lock_guard<std::mutex> lock(doorbell_->mutex);
    doorbell_->cv.notify_all();
  }
}

void RingChannel::notify_data() {
  if (data_waiters_ > 0) data_cv_.notify_all();
}

void RingChannel::notify_space() {
  if (space_waiters_ > 0) space_cv_.notify_all();
}

void RingChannel::poison(std::unique_lock<std::mutex>& lock) {
  (void)lock;  // documents the precondition: mutex_ held
  poisoned_ = true;
  poisoned_flag_.store(true, std::memory_order_release);
  // Wake every parked thread so the failure surfaces on all users of the
  // link instead of leaving them blocked on a frame that will never finish.
  data_cv_.notify_all();
  space_cv_.notify_all();
}

void RingChannel::peek_bytes(std::size_t offset,
                             std::span<std::byte> dst) const {
  const std::size_t start = (head_ + offset) % slab_.size();
  const std::size_t first = std::min(dst.size(), slab_.size() - start);
  util::simd::copy_bytes(dst.data(), slab_.data() + start, first);
  if (first < dst.size()) {
    util::simd::copy_bytes(dst.data() + first, slab_.data(),
                           dst.size() - first);
  }
}

void RingChannel::consume_bytes(std::size_t n) {
  CGX_CHECK_LE(n, used_);
  head_ = (head_ + n) % slab_.size();
  used_ -= n;
  readable_.store(used_, std::memory_order_release);
  notify_space();
}

ChannelStatus RingChannel::write_stream(std::unique_lock<std::mutex>& lock,
                                        std::span<const std::byte> src,
                                        Clock::time_point deadline,
                                        std::size_t& moved) {
  const std::size_t cap = effective_capacity();
  std::size_t off = 0;
  while (off < src.size()) {
    if (!wait_space_until(lock, deadline,
                          [&] { return used_ < cap || poisoned_; })) {
      return ChannelStatus::kTimeout;
    }
    if (poisoned_) return ChannelStatus::kPoisoned;
    // Move everything that fits in one locked pass: the common case (the
    // whole message fits free space) costs one commit and one wakeup. Only
    // an over-capacity message loops, draining against a concurrent reader.
    std::size_t n = std::min(src.size() - off, cap - used_);
    ensure_slab(used_ + n);
    n = std::min(n, slab_.size() - used_);
    // Modular copy into [head_ + used_, head_ + used_ + n).
    const std::size_t start = (head_ + used_) % slab_.size();
    const std::size_t first = std::min(n, slab_.size() - start);
    util::simd::copy_bytes(slab_.data() + start, src.data() + off, first);
    if (first < n) {
      util::simd::copy_bytes(slab_.data(), src.data() + off + first,
                             n - first);
    }
    used_ += n;
    off += n;
    moved += n;
    readable_.store(used_, std::memory_order_release);
    notify_data();
    ring_doorbell();
  }
  return ChannelStatus::kOk;
}

ChannelStatus RingChannel::read_stream(std::unique_lock<std::mutex>& lock,
                                       std::span<std::byte> dst,
                                       Clock::time_point deadline,
                                       std::size_t& moved) {
  std::size_t off = 0;
  while (off < dst.size()) {
    if (!wait_data_until(lock, deadline,
                         [&] { return used_ > 0 || poisoned_; })) {
      return ChannelStatus::kTimeout;
    }
    if (poisoned_) return ChannelStatus::kPoisoned;
    const std::size_t n = std::min(dst.size() - off, used_);
    const std::size_t first = std::min(n, slab_.size() - head_);
    util::simd::copy_bytes(dst.data() + off, slab_.data() + head_, first);
    if (first < n) {
      util::simd::copy_bytes(dst.data() + off + first, slab_.data(),
                             n - first);
    }
    head_ = (head_ + n) % slab_.size();
    used_ -= n;
    off += n;
    moved += n;
    readable_.store(used_, std::memory_order_release);
    notify_space();
  }
  return ChannelStatus::kOk;
}

ChannelStatus RingChannel::read_stream_add(std::unique_lock<std::mutex>& lock,
                                           std::span<float> dst,
                                           Clock::time_point deadline,
                                           std::size_t& moved) {
  // Whole floats are accumulated straight out of the slab with the
  // prefetched simd copy_add kernel — one DRAM pass on the receive side and
  // no staging copy at all. Only the ragged boundaries go through a small
  // stage: a float that wraps the physical slab end, a float-misaligned
  // head, or a locked pass that ended mid-float (the sub-float remainder is
  // carried in the stage across passes). Element order is unchanged —
  // payload order either way — so the result stays bit-identical to
  // pop_into-then-add_inplace.
  constexpr std::size_t kStageFloats = 4096;  // 16 KiB
  float stage[kStageFloats];
  auto* stage_bytes = reinterpret_cast<std::byte*>(stage);
  std::size_t carry = 0;          // partial-float bytes at the stage front
  std::size_t emitted = 0;        // floats already added into dst
  std::size_t remaining = dst.size() * sizeof(float);
  while (remaining > 0) {
    if (!wait_data_until(lock, deadline,
                         [&] { return used_ > 0 || poisoned_; })) {
      return ChannelStatus::kTimeout;
    }
    if (poisoned_) return ChannelStatus::kPoisoned;
    while (remaining > 0 && used_ > 0) {
      const std::size_t contig =
          std::min({remaining, used_, slab_.size() - head_});
      const std::byte* src_bytes = slab_.data() + head_;
      if (carry == 0 && contig >= sizeof(float) &&
          reinterpret_cast<std::uintptr_t>(src_bytes) % alignof(float) == 0) {
        // Fast path: the slab bytes are the payload's float storage (the
        // writer copied a float buffer in); reduce directly from it.
        const std::size_t nfloat = contig / sizeof(float);
        util::simd::copy_add(
            {dst.data() + emitted, nfloat},
            {reinterpret_cast<const float*>(src_bytes), nfloat});
        const std::size_t n = nfloat * sizeof(float);
        emitted += nfloat;
        head_ = (head_ + n) % slab_.size();
        used_ -= n;
        remaining -= n;
        moved += n;
        continue;
      }
      // Boundary: stage the ragged bytes (wrap-around or partial float).
      const std::size_t n = std::min(
          {remaining, used_, sizeof(stage) - carry});
      const std::size_t first = std::min(n, slab_.size() - head_);
      util::simd::copy_bytes(stage_bytes + carry, slab_.data() + head_,
                             first);
      if (first < n) {
        util::simd::copy_bytes(stage_bytes + carry + first, slab_.data(),
                               n - first);
      }
      head_ = (head_ + n) % slab_.size();
      used_ -= n;
      remaining -= n;
      moved += n;
      const std::size_t avail = carry + n;
      const std::size_t nfloat = avail / sizeof(float);
      util::simd::copy_add({dst.data() + emitted, nfloat}, {stage, nfloat});
      emitted += nfloat;
      carry = avail - nfloat * sizeof(float);
      if (carry > 0) {
        std::memmove(stage_bytes, stage_bytes + nfloat * sizeof(float),
                     carry);
      }
    }
    readable_.store(used_, std::memory_order_release);
    notify_space();
  }
  return ChannelStatus::kOk;
}

ChannelStatus RingChannel::read_frame_meta(std::unique_lock<std::mutex>& lock,
                                           Clock::time_point deadline,
                                           FrameMeta& meta) {
  if (effective_capacity() < kMinPeekCapacity) {
    // Tiny segment: the length word itself may wrap and stream through the
    // slab in pieces — consume it exactly as the seed did. push() never
    // checksums frames on such channels.
    std::byte word[kWordBytes];
    std::size_t word_moved = 0;
    const ChannelStatus st = read_stream(lock, word, deadline, word_moved);
    if (st != ChannelStatus::kOk) {
      if (st == ChannelStatus::kTimeout && word_moved > 0) poison(lock);
      return st;
    }
    std::uint64_t w = 0;
    std::memcpy(&w, word, kWordBytes);
    // Tiny channels carry neither the CRC flag nor epoch bits, so the whole
    // top byte of the word must be clear.
    CGX_CHECK((w >> kEpochShift) == 0)
        << "flagged frame on a sub-peek-capacity channel";
    meta.payload_bytes = w;
    meta.checksummed = false;
    meta.header_consumed = true;
    return ChannelStatus::kOk;
  }
  for (;;) {
    if (!wait_data_until(lock, deadline,
                         [&] { return used_ >= kWordBytes || poisoned_; })) {
      return ChannelStatus::kTimeout;
    }
    if (poisoned_) return ChannelStatus::kPoisoned;
    std::byte word[kWordBytes];
    peek_bytes(0, word);
    std::uint64_t w = 0;
    std::memcpy(&w, word, kWordBytes);
    // Elastic fencing: a frame stamped with another world epoch is traffic
    // from before a re-shard that slipped in after the recovery flush —
    // discard it whole and try the next frame.
    const std::uint64_t frame_epoch = (w >> kEpochShift) & kEpochMask;
    if (frame_epoch != current_epoch_bits()) {
      FrameMeta stale;
      stale.payload_bytes = w & kPayloadMask;
      stale.checksummed = (w & kCrcFlag) != 0;
      stale.header_consumed = false;
      const ChannelStatus st = discard_frame(lock, stale, deadline);
      if (st != ChannelStatus::kOk) return st;
      continue;
    }
    meta.checksummed = (w & kCrcFlag) != 0;
    meta.payload_bytes = w & kPayloadMask;
    meta.header_consumed = false;
    if (meta.checksummed) {
      // Retransmission needs the whole frame retained in the slab; push()
      // guaranteed it fits, so wait for full residency before touching it.
      const std::size_t frame = kWordBytes + kCrcBytes +
                                static_cast<std::size_t>(meta.payload_bytes);
      if (!wait_data_until(lock, deadline,
                           [&] { return used_ >= frame || poisoned_; })) {
        return ChannelStatus::kTimeout;
      }
      if (poisoned_) return ChannelStatus::kPoisoned;
      std::byte crc[kCrcBytes];
      peek_bytes(kWordBytes, crc);
      std::memcpy(&meta.crc, crc, kCrcBytes);
    }
    return ChannelStatus::kOk;
  }
}

ChannelStatus RingChannel::discard_frame(std::unique_lock<std::mutex>& lock,
                                         const FrameMeta& meta,
                                         Clock::time_point deadline) {
  // The payload of an oversized frame streams through the slab in pieces,
  // so the discard must drain incrementally against the (stale) writer.
  std::size_t left = static_cast<std::size_t>(meta.payload_bytes) +
                     (meta.header_consumed ? 0 : kWordBytes) +
                     (meta.checksummed ? kCrcBytes : 0);
  while (left > 0) {
    if (!wait_data_until(lock, deadline,
                         [&] { return used_ > 0 || poisoned_; })) {
      // Abandoning a half-discarded frame leaves the stream unframeable,
      // exactly like abandoning a half-read one.
      poison(lock);
      return ChannelStatus::kTimeout;
    }
    if (poisoned_) return ChannelStatus::kPoisoned;
    const std::size_t n = std::min(left, used_);
    consume_bytes(n);
    left -= n;
  }
  CGX_CHECK_GT(pending_, 0u);
  --pending_;
  pending_messages_.store(pending_, std::memory_order_release);
  ++frames_consumed_;
  if (fabric_ != nullptr) {
    fabric_->stale_frames.fetch_add(1, std::memory_order_relaxed);
  }
  return ChannelStatus::kOk;
}

ChannelStatus RingChannel::recv_verified(std::unique_lock<std::mutex>& lock,
                                         const FrameMeta& meta,
                                         std::span<std::byte> out,
                                         Clock::time_point deadline) {
  const std::size_t frame_bytes = kWordBytes + kCrcBytes + out.size();
  const std::uint64_t frame_seq = frames_consumed_;
  FaultInjector* injector = fabric_ != nullptr ? fabric_->injector : nullptr;
  HealthMonitor* health = fabric_ != nullptr ? fabric_->health : nullptr;
  const CommPolicy pol = policy();
  const auto consume_frame = [&] {
    consume_bytes(frame_bytes);
    CGX_CHECK_GT(pending_, 0u);
    --pending_;
    pending_messages_.store(pending_, std::memory_order_release);
    ++frames_consumed_;
  };
  for (int attempt = 0;; ++attempt) {
    // The copy-out models the wire crossing; the retained frame in the slab
    // is the sender's copy and stays untouched across attempts.
    peek_bytes(kWordBytes + kCrcBytes, out);
    WireOutcome outcome = WireOutcome::kOk;
    if (injector != nullptr) {
      outcome = injector->wire_outcome(src_, dst_, tag_, frame_seq, attempt);
      if (outcome == WireOutcome::kCorrupt) {
        injector->corrupt_bytes(out, src_, dst_, tag_, frame_seq, attempt);
      }
    }
    if (outcome != WireOutcome::kDrop && util::crc32(out) == meta.crc) {
      consume_frame();
      if (health != nullptr && attempt > 0) {
        // The link recovered: end the consecutive-failure streak so health
        // reflects "flaky but alive", not "down".
        health->link(src_, dst_).consecutive_failures.store(
            0, std::memory_order_relaxed);
      }
      return ChannelStatus::kOk;
    }
    if (health != nullptr) {
      if (outcome == WireOutcome::kDrop) {
        health->record_wire_drop(src_, dst_);
      } else {
        health->record_retransmit(src_, dst_);
      }
    }
    if (attempt >= pol.max_retries) {
      // A hopeless frame must not wedge the link: consume it and report.
      consume_frame();
      return ChannelStatus::kCorrupt;
    }
    const auto delay = pol.backoff * (1 << std::min(attempt, kMaxBackoffShift));
    if (deadline != kNoDeadline && Clock::now() + delay >= deadline) {
      // Clean timeout: the frame stays intact for a later receive attempt.
      return ChannelStatus::kTimeout;
    }
    // Capped exponential backoff before the NAK-triggered re-copy. The
    // reader token stays held, so the frame cannot be consumed under us.
    lock.unlock();
    std::this_thread::sleep_for(delay);
    lock.lock();
    if (poisoned_) return ChannelStatus::kPoisoned;
  }
}

ChannelStatus RingChannel::push_until(std::span<const std::byte> data,
                                      Clock::time_point deadline) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (poisoned_) return ChannelStatus::kPoisoned;
  // One in-flight message body per channel: take the writer token so a
  // streamed message never interleaves with another producer's bytes.
  if (!wait_space_until(lock, deadline,
                        [&] { return !writer_active_ || poisoned_; })) {
    return ChannelStatus::kTimeout;
  }
  if (poisoned_) return ChannelStatus::kPoisoned;
  writer_active_ = true;

  CGX_DCHECK(data.size() <= kPayloadMask);
  std::byte header[kWordBytes + kCrcBytes];
  std::size_t header_len = kWordBytes;
  std::uint64_t word = data.size();
  const bool peekable = effective_capacity() >= kMinPeekCapacity;
  // Epoch bits ride the same peekability gate as the CRC flag: a tiny
  // channel's consuming-stream reader cannot discard-and-retry, so its
  // frames stay unstamped (epoch 0 stamps as zero bits anyway).
  if (peekable) word |= current_epoch_bits() << kEpochShift;
  // Checksum only frames the slab can retain whole: oversized streaming
  // frames (and sub-peek-capacity channels) fall back to plain framing.
  const bool crc = policy().checksums && peekable &&
                   kWordBytes + kCrcBytes + data.size() <= effective_capacity();
  if (crc) {
    word |= kCrcFlag;
    const std::uint32_t c = util::crc32(data);
    std::memcpy(header + kWordBytes, &c, kCrcBytes);
    header_len += kCrcBytes;
  }
  std::memcpy(header, &word, kWordBytes);

  // One grow decision per message: reserve the whole frame (clamped to
  // capacity inside ensure_slab) up front, so a queue-depth wobble later
  // cannot trigger a mid-steady-state reallocation.
  ensure_slab(used_ + header_len + data.size());
  std::size_t moved = 0;
  ChannelStatus st =
      write_stream(lock, std::span<const std::byte>(header, header_len),
                   deadline, moved);
  if (st == ChannelStatus::kOk) {
    // Header committed: the message is now visible to pending_messages()
    // and a streaming reader may start consuming it while we keep writing.
    ++pending_;
    pending_messages_.store(pending_, std::memory_order_release);
    st = write_stream(lock, data, deadline, moved);
  }
  writer_active_ = false;
  if (st == ChannelStatus::kTimeout && moved > 0) {
    // The frame was abandoned half-written: no reader can ever frame past
    // it, so the link is fail-stopped rather than silently corrupted.
    poison(lock);
  }
  notify_space();
  return st;
}

ChannelStatus RingChannel::pop_into_until(std::span<std::byte> out,
                                          Clock::time_point deadline) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (poisoned_) return ChannelStatus::kPoisoned;
  if (!wait_data_until(lock, deadline,
                       [&] { return !reader_active_ || poisoned_; })) {
    return ChannelStatus::kTimeout;
  }
  if (poisoned_) return ChannelStatus::kPoisoned;
  reader_active_ = true;

  FrameMeta meta;
  ChannelStatus st = read_frame_meta(lock, deadline, meta);
  if (st == ChannelStatus::kOk) {
    CGX_CHECK_EQ(meta.payload_bytes, out.size());
    if (meta.checksummed) {
      st = recv_verified(lock, meta, out, deadline);
    } else {
      if (!meta.header_consumed) consume_bytes(kWordBytes);
      std::size_t moved = 0;
      st = read_stream(lock, out, deadline, moved);
      if (st == ChannelStatus::kOk) {
        CGX_CHECK_GT(pending_, 0u);
        --pending_;
        pending_messages_.store(pending_, std::memory_order_release);
        ++frames_consumed_;
      } else if (st == ChannelStatus::kTimeout) {
        poison(lock);  // header consumed: the frame was abandoned mid-read
      }
    }
  }
  reader_active_ = false;
  notify_data();
  return st;
}

ChannelStatus RingChannel::pop_into_add_until(std::span<float> dst,
                                              Clock::time_point deadline) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (poisoned_) return ChannelStatus::kPoisoned;
  if (!wait_data_until(lock, deadline,
                       [&] { return !reader_active_ || poisoned_; })) {
    return ChannelStatus::kTimeout;
  }
  if (poisoned_) return ChannelStatus::kPoisoned;
  reader_active_ = true;

  FrameMeta meta;
  ChannelStatus st = read_frame_meta(lock, deadline, meta);
  if (st == ChannelStatus::kOk) {
    // Transports disable fused receives under checksums (an accumulated
    // block cannot be retracted after a CRC mismatch), so a flagged frame
    // here is a protocol violation, not a runtime fault.
    CGX_CHECK(!meta.checksummed)
        << "pop_into_add on a checksummed frame (fused receive must be "
           "disabled while CommPolicy::checksums is on)";
    CGX_CHECK_EQ(meta.payload_bytes, dst.size() * sizeof(float));
    if (!meta.header_consumed) consume_bytes(kWordBytes);
    std::size_t moved = 0;
    st = read_stream_add(lock, dst, deadline, moved);
    if (st == ChannelStatus::kOk) {
      CGX_CHECK_GT(pending_, 0u);
      --pending_;
      pending_messages_.store(pending_, std::memory_order_release);
      ++frames_consumed_;
    } else if (st == ChannelStatus::kTimeout) {
      poison(lock);
    }
  }
  reader_active_ = false;
  notify_data();
  return st;
}

void RingChannel::push(std::span<const std::byte> data) {
  const ChannelStatus st = push_until(data, kNoDeadline);
  CGX_CHECK(st == ChannelStatus::kOk) << "push on a poisoned channel";
}

void RingChannel::pop_into(std::span<std::byte> out) {
  const ChannelStatus st = pop_into_until(out, kNoDeadline);
  CGX_CHECK(st == ChannelStatus::kOk)
      << "pop_into failed (poisoned or unrecoverably corrupt channel)";
}

void RingChannel::pop_into_add(std::span<float> dst) {
  const ChannelStatus st = pop_into_add_until(dst, kNoDeadline);
  CGX_CHECK(st == ChannelStatus::kOk)
      << "pop_into_add failed (poisoned channel)";
}

std::vector<std::byte> RingChannel::pop() {
  std::unique_lock<std::mutex> lock(mutex_);
  CGX_CHECK(!poisoned_) << "pop on a poisoned channel";
  wait_data_until(lock, kNoDeadline,
                  [&] { return !reader_active_ || poisoned_; });
  CGX_CHECK(!poisoned_) << "pop on a poisoned channel";
  reader_active_ = true;

  FrameMeta meta;
  ChannelStatus st = read_frame_meta(lock, kNoDeadline, meta);
  std::vector<std::byte> out;
  if (st == ChannelStatus::kOk) {
    out.resize(static_cast<std::size_t>(meta.payload_bytes));
    if (meta.checksummed) {
      st = recv_verified(lock, meta, out, kNoDeadline);
    } else {
      if (!meta.header_consumed) consume_bytes(kWordBytes);
      std::size_t moved = 0;
      st = read_stream(lock, out, kNoDeadline, moved);
      if (st == ChannelStatus::kOk) {
        CGX_CHECK_GT(pending_, 0u);
        --pending_;
        pending_messages_.store(pending_, std::memory_order_release);
        ++frames_consumed_;
      }
    }
  }
  reader_active_ = false;
  notify_data();
  CGX_CHECK(st == ChannelStatus::kOk) << "pop failed";
  return out;
}

void RingChannel::reset() {
  std::unique_lock<std::mutex> lock(mutex_);
  head_ = 0;
  used_ = 0;
  pending_ = 0;
  writer_active_ = false;
  reader_active_ = false;
  poisoned_ = false;
  poisoned_flag_.store(false, std::memory_order_release);
  readable_.store(0, std::memory_order_release);
  pending_messages_.store(0, std::memory_order_release);
  data_cv_.notify_all();
  space_cv_.notify_all();
}

}  // namespace cgx::comm
