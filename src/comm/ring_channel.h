// Fixed-slab ring-buffer channel: the transport hot path.
//
// One RingChannel stands in for one pre-registered shared-memory segment of
// the paper's SHM backend (one UNIX segment per GPU pair, §4): the sender
// copies its span directly into the segment, the receiver copies straight
// out into its destination span — one copy per side, zero steady-state heap
// allocations. Condition-variable signalling plays the role of the CUDA IPC
// events that tell the peer "bytes landed" / "bytes drained".
//
// Wire format inside the slab: every message is framed as an 8-byte
// little-endian length word followed by the payload, laid out in modular
// (wrap-around) byte space — a frame may wrap across the physical end of
// the slab, including mid-header. When the bound CommPolicy enables
// checksums, the top bit of the length word is set and a 4-byte CRC32 of
// the payload follows the word (12-byte header total); the flag rides the
// existing word, so disabled checksums add zero bytes and zero work.
// Messages larger than the segment are NOT bypassed around capacity: they
// stream through the ring in pieces, the writer blocking for drained space,
// exactly as a real fixed-size segment forces (such frames are never
// checksummed — retransmission needs the whole frame retained in the slab).
//
// Reliability model: the slab IS the sender's retained copy. The receiver's
// copy-out models the wire crossing — an attached FaultInjector may corrupt
// or drop bytes during that copy — and a CRC mismatch triggers a NAK-style
// re-copy of the same retained frame with capped exponential backoff. Only
// after verification (or retry exhaustion) is the frame consumed.
//
// Deadlines: every *_until operation gives up at `deadline` and reports
// kTimeout. A timeout that abandons a partially-moved frame poisons the
// channel (subsequent operations fail fast with kPoisoned) — fail-stop per
// link, surfaced by the transport as a structured error; reset() restores a
// quiesced channel for an engine-level round retry.
//
// Concurrency contract: any number of producers and consumers; whole
// messages never interleave (a writer token serialises message bodies, a
// reader token serialises message consumption). Capacity 0 = unbounded:
// the slab grows instead of blocking (used by the MPI mailbox analogue).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <span>
#include <vector>

#include "comm/policy.h"
#include "util/arena.h"

namespace cgx::comm {

class FaultInjector;  // wire-fault model; see comm/fault.h

// Per-receiver wakeup channel for any-source receives: every byte commit
// into any of a rank's inbound rings bumps `seq` and (only if someone is
// parked) notifies, so select_source() can sleep instead of spinning.
struct RecvDoorbell {
  std::mutex mutex;
  std::condition_variable cv;
  std::atomic<std::uint64_t> seq{0};
  std::atomic<int> waiters{0};
};

// Reliability context shared by every channel of one transport: the policy
// snapshot, the health sink, and an optional wire-fault injector. The table
// owns one instance; channels hold a pointer, so installing an injector or
// updating the policy reaches already-created channels.
//
// `epoch` is the elastic-membership world epoch (comm/membership.h): writers
// stamp its low 7 bits into every peekable frame header and readers discard
// frames stamped with any other epoch (counted in `stale_frames`). Epoch 0 —
// the only value a non-elastic run ever sees — stamps as all-zero bits, so
// the wire format is unchanged when membership is off.
struct ChannelFabric {
  const CommPolicy* policy = nullptr;  // null = default CommPolicy
  HealthMonitor* health = nullptr;
  FaultInjector* injector = nullptr;
  std::atomic<std::uint64_t> epoch{0};
  mutable std::atomic<std::uint64_t> stale_frames{0};
};

enum class ChannelStatus {
  kOk,
  kTimeout,   // deadline expired before the operation completed
  kCorrupt,   // checksummed frame failed verification on every attempt
  kPoisoned,  // an earlier timeout abandoned a partially-moved frame
};

class RingChannel {
 public:
  using Clock = std::chrono::steady_clock;
  // Sentinel for "wait forever" — the seed semantics.
  static constexpr Clock::time_point kNoDeadline = Clock::time_point::max();

  // `capacity_bytes` is the logical segment size (max bytes in flight,
  // headers included); 0 means unbounded. The physical slab is allocated
  // lazily and only ever grows, so warm-up pays the allocations and the
  // steady state pays none. `doorbell` (optional) is rung on data arrival.
  explicit RingChannel(std::size_t capacity_bytes,
                       RecvDoorbell* doorbell = nullptr)
      : capacity_(capacity_bytes), doorbell_(doorbell) {}

  RingChannel(const RingChannel&) = delete;
  RingChannel& operator=(const RingChannel&) = delete;

  // Attaches this channel to a transport's reliability fabric and names its
  // directed link (for checksum retries, health accounting, deterministic
  // fault keying). Call before the channel carries traffic; unbound channels
  // behave exactly like the seed (no checksums, no injection). Binding also
  // homes the slab on the sender's arena: the writer (src's comm thread,
  // NUMA-pinned) first-touches the pages, so the segment lands on src's
  // node — the in-process analogue of registering the SHM segment there.
  void bind_link(const ChannelFabric* fabric, int src, int dst, int tag) {
    fabric_ = fabric;
    src_ = src;
    dst_ = dst;
    tag_ = tag;
    if (src >= 0) slab_.set_arena(&util::rank_arena(src));
  }

  // Seed-compatible blocking operations: wait forever, CHECK on any failure
  // (poison/corruption only arise under fault policies, whose callers use
  // the *_until forms).
  void push(std::span<const std::byte> data);
  void pop_into(std::span<std::byte> out);

  // Fused receive+reduce: interprets the next message as floats and adds it
  // into `dst` directly out of the slab (staged through an L1-resident
  // buffer, so the payload never takes a second trip through DRAM — the
  // in-process analogue of reducing straight from the peer's shared
  // segment). CHECKs the message holds exactly dst.size() floats. The add
  // runs element-by-element in payload order, so the result is bit-identical
  // to pop_into-then-add_inplace. Not valid for checksummed frames: an
  // accumulated block cannot be retracted after a CRC mismatch, so
  // transports disable fused receives while checksums are on.
  void pop_into_add(std::span<float> dst);

  // Deadline-bounded variants. kTimeout with no bytes moved leaves the
  // channel clean (the wait can simply be retried); kTimeout that abandons
  // a partial frame poisons the channel.
  ChannelStatus push_until(std::span<const std::byte> data,
                           Clock::time_point deadline);
  ChannelStatus pop_into_until(std::span<std::byte> out,
                               Clock::time_point deadline);
  ChannelStatus pop_into_add_until(std::span<float> dst,
                                   Clock::time_point deadline);

  // Test convenience: pops the next message into a fresh vector (allocates;
  // the hot path uses pop_into).
  std::vector<std::byte> pop();

  // Drops every buffered byte and frame and clears poisoning. The caller
  // must guarantee no producer or consumer is active on the channel — the
  // engine's round retry runs this only after a world-wide agreement
  // barrier has quiesced the fabric.
  void reset();

  bool poisoned() const { return poisoned_flag_.load(std::memory_order_acquire); }

  // Messages whose header has been committed and that have not been fully
  // consumed. Lock-free.
  std::size_t pending_messages() const {
    return pending_messages_.load(std::memory_order_acquire);
  }

  // True if at least one committed byte is waiting. Lock-free probe used by
  // any-source selection.
  bool has_data() const {
    return readable_.load(std::memory_order_acquire) > 0;
  }

  // Physical slab size (monotone non-decreasing): the transport-level
  // high-water harness sums this to assert zero steady-state allocation.
  std::size_t slab_bytes() const {
    return slab_high_water_.load(std::memory_order_acquire);
  }

  std::size_t capacity_bytes() const { return capacity_; }

 private:
  // Header layout constants (see "Wire format" above). The length word
  // carries three fields: bit 63 is the CRC flag, bits 56..62 hold the low
  // 7 bits of the world epoch (elastic membership fencing; always zero when
  // no Membership is attached), and bits 0..55 are the payload length.
  static constexpr std::uint64_t kCrcFlag = 1ull << 63;
  static constexpr int kEpochShift = 56;
  static constexpr std::uint64_t kEpochMask = 0x7f;
  static constexpr std::uint64_t kPayloadMask = (1ull << kEpochShift) - 1;
  static constexpr std::size_t kWordBytes = 8;
  static constexpr std::size_t kCrcBytes = 4;
  // Channels with a segment smaller than this cannot hold a peekable header
  // and use the seed's consuming-stream header path (never checksummed).
  static constexpr std::size_t kMinPeekCapacity = 16;

  // Parsed frame header, possibly still unconsumed in the slab.
  struct FrameMeta {
    std::uint64_t payload_bytes = 0;
    std::uint32_t crc = 0;
    bool checksummed = false;
    bool header_consumed = false;  // legacy path consumed the length word
  };

  const CommPolicy& policy() const;

  // Streaming primitives; `lock` must hold mutex_ on entry and exit, and is
  // released only while waiting — each pass moves everything that currently
  // fits (write) or is readable (read) in one locked copy, so a message
  // that fits free space costs exactly one commit and one wakeup. `moved`
  // accumulates transferred bytes so callers can decide whether a timeout
  // was clean or abandoned a partial frame.
  ChannelStatus write_stream(std::unique_lock<std::mutex>& lock,
                             std::span<const std::byte> src,
                             Clock::time_point deadline, std::size_t& moved);
  ChannelStatus read_stream(std::unique_lock<std::mutex>& lock,
                            std::span<std::byte> dst,
                            Clock::time_point deadline, std::size_t& moved);
  ChannelStatus read_stream_add(std::unique_lock<std::mutex>& lock,
                                std::span<float> dst,
                                Clock::time_point deadline,
                                std::size_t& moved);

  // Waits for the next frame header and parses it. Peek-capable channels
  // leave the header in the slab (so a checksummed frame stays fully
  // retained for retransmission); tiny-capacity channels stream-consume the
  // length word exactly as the seed did.
  ChannelStatus read_frame_meta(std::unique_lock<std::mutex>& lock,
                                Clock::time_point deadline, FrameMeta& meta);

  // The epoch bits frames are currently stamped with (0 when unbound or
  // non-elastic).
  std::uint64_t current_epoch_bits() const;

  // Consumes an entire stale-epoch frame (header, optional CRC, payload —
  // waiting for a streaming writer's bytes as needed) so the next live
  // frame becomes readable. A timeout mid-discard poisons, exactly like a
  // timeout mid-read.
  ChannelStatus discard_frame(std::unique_lock<std::mutex>& lock,
                              const FrameMeta& meta,
                              Clock::time_point deadline);

  // Copy-out of a fully-resident checksummed frame with verify/retry (the
  // wire model; see file comment). Consumes the frame on success AND on
  // retry exhaustion (a hopeless frame must not wedge the link).
  ChannelStatus recv_verified(std::unique_lock<std::mutex>& lock,
                              const FrameMeta& meta, std::span<std::byte> out,
                              Clock::time_point deadline);

  // Modular copy of `n` bytes starting `offset` past head_ into dst; does
  // not consume. Lock held.
  void peek_bytes(std::size_t offset, std::span<std::byte> dst) const;
  // Advances head_ past n consumed bytes. Lock held.
  void consume_bytes(std::size_t n);

  void poison(std::unique_lock<std::mutex>& lock);

  // Grows the physical slab to hold `need` bytes (clamped to capacity),
  // linearising live contents so head_ returns to 0. Lock held.
  void ensure_slab(std::size_t need);

  void ring_doorbell();

  std::size_t effective_capacity() const;

  const std::size_t capacity_;
  RecvDoorbell* const doorbell_;

  const ChannelFabric* fabric_ = nullptr;
  int src_ = -1;
  int dst_ = -1;
  int tag_ = -1;

  // Wakeups are gated on these waiter counts (guarded by mutex_), so the
  // uncontended fast path — buffered send into free space, receive of an
  // already-landed message — makes no futex call at all.
  void notify_data();
  void notify_space();
  template <typename Pred>
  bool wait_data_until(std::unique_lock<std::mutex>& lock,
                       Clock::time_point deadline, Pred pred) {
    if (pred()) return true;
    ++data_waiters_;
    bool ok = true;
    if (deadline == kNoDeadline) {
      data_cv_.wait(lock, pred);
    } else {
      ok = data_cv_.wait_until(lock, deadline, pred);
    }
    --data_waiters_;
    return ok;
  }
  template <typename Pred>
  bool wait_space_until(std::unique_lock<std::mutex>& lock,
                        Clock::time_point deadline, Pred pred) {
    if (pred()) return true;
    ++space_waiters_;
    bool ok = true;
    if (deadline == kNoDeadline) {
      space_cv_.wait(lock, pred);
    } else {
      ok = space_cv_.wait_until(lock, deadline, pred);
    }
    --space_waiters_;
    return ok;
  }

  mutable std::mutex mutex_;
  std::condition_variable data_cv_;   // readers: bytes or reader token
  std::condition_variable space_cv_;  // writers: space or writer token
  int data_waiters_ = 0;
  int space_waiters_ = 0;

  util::ArenaBuffer<std::byte> slab_;
  std::size_t head_ = 0;  // first live byte
  std::size_t used_ = 0;  // live bytes (committed, unread)
  bool writer_active_ = false;
  bool reader_active_ = false;
  bool poisoned_ = false;    // guarded by mutex_
  std::size_t pending_ = 0;  // headers committed minus messages consumed
  std::uint64_t frames_consumed_ = 0;  // deterministic fault-keying sequence

  std::atomic<std::size_t> readable_{0};
  std::atomic<std::size_t> pending_messages_{0};
  std::atomic<std::size_t> slab_high_water_{0};
  std::atomic<bool> poisoned_flag_{false};
};

}  // namespace cgx::comm
