// Fixed-slab ring-buffer channel: the transport hot path.
//
// One RingChannel stands in for one pre-registered shared-memory segment of
// the paper's SHM backend (one UNIX segment per GPU pair, §4): the sender
// copies its span directly into the segment, the receiver copies straight
// out into its destination span — one copy per side, zero steady-state heap
// allocations. Condition-variable signalling plays the role of the CUDA IPC
// events that tell the peer "bytes landed" / "bytes drained".
//
// Wire format inside the slab: every message is framed as an 8-byte
// little-endian length header followed by the payload, laid out in modular
// (wrap-around) byte space — a frame may wrap across the physical end of
// the slab, including mid-header. Messages larger than the segment are NOT
// bypassed around capacity: they stream through the ring in pieces, the
// writer blocking for drained space, exactly as a real fixed-size segment
// forces. (Consequence: an over-segment message needs its receiver to be
// draining concurrently — true of the hardware, and guaranteed by the
// collectives' chunking, which keeps messages far below segment size.)
//
// Concurrency contract: any number of producers and consumers; whole
// messages never interleave (a writer token serialises message bodies, a
// reader token serialises message consumption). Capacity 0 = unbounded:
// the slab grows instead of blocking (used by the MPI mailbox analogue).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <span>
#include <vector>

namespace cgx::comm {

// Per-receiver wakeup channel for any-source receives: every byte commit
// into any of a rank's inbound rings bumps `seq` and (only if someone is
// parked) notifies, so select_source() can sleep instead of spinning.
struct RecvDoorbell {
  std::mutex mutex;
  std::condition_variable cv;
  std::atomic<std::uint64_t> seq{0};
  std::atomic<int> waiters{0};
};

class RingChannel {
 public:
  // `capacity_bytes` is the logical segment size (max bytes in flight,
  // headers included); 0 means unbounded. The physical slab is allocated
  // lazily and only ever grows, so warm-up pays the allocations and the
  // steady state pays none. `doorbell` (optional) is rung on data arrival.
  explicit RingChannel(std::size_t capacity_bytes,
                       RecvDoorbell* doorbell = nullptr)
      : capacity_(capacity_bytes), doorbell_(doorbell) {}

  RingChannel(const RingChannel&) = delete;
  RingChannel& operator=(const RingChannel&) = delete;

  // Blocking buffered send; returns once the whole message is in the ring
  // (or, when streaming an oversized message, once the tail piece is in).
  void push(std::span<const std::byte> data);

  // Blocking receive; CHECKs the next message has exactly out.size() bytes.
  void pop_into(std::span<std::byte> out);

  // Fused receive+reduce: interprets the next message as floats and adds it
  // into `dst` directly out of the slab (staged through an L1-resident
  // buffer, so the payload never takes a second trip through DRAM — the
  // in-process analogue of reducing straight from the peer's shared
  // segment). CHECKs the message holds exactly dst.size() floats. The add
  // runs element-by-element in payload order, so the result is bit-identical
  // to pop_into-then-add_inplace.
  void pop_into_add(std::span<float> dst);

  // Test convenience: pops the next message into a fresh vector (allocates;
  // the hot path uses pop_into).
  std::vector<std::byte> pop();

  // Messages whose header has been committed and that have not been fully
  // consumed. Lock-free.
  std::size_t pending_messages() const {
    return pending_messages_.load(std::memory_order_acquire);
  }

  // True if at least one committed byte is waiting. Lock-free probe used by
  // any-source selection.
  bool has_data() const {
    return readable_.load(std::memory_order_acquire) > 0;
  }

  // Physical slab size (monotone non-decreasing): the transport-level
  // high-water harness sums this to assert zero steady-state allocation.
  std::size_t slab_bytes() const {
    return slab_high_water_.load(std::memory_order_acquire);
  }

  std::size_t capacity_bytes() const { return capacity_; }

 private:
  // Streaming primitives; `lock` must hold mutex_ on entry and exit, and is
  // released only while waiting — each pass moves everything that currently
  // fits (write) or is readable (read) in one locked copy, so a message
  // that fits free space costs exactly one commit and one wakeup.
  void write_stream(std::unique_lock<std::mutex>& lock,
                    std::span<const std::byte> src);
  void read_stream(std::unique_lock<std::mutex>& lock,
                   std::span<std::byte> dst);
  void read_stream_add(std::unique_lock<std::mutex>& lock,
                       std::span<float> dst);

  // Grows the physical slab to hold `need` bytes (clamped to capacity),
  // linearising live contents so head_ returns to 0. Lock held.
  void ensure_slab(std::size_t need);

  void ring_doorbell();

  std::size_t effective_capacity() const;

  const std::size_t capacity_;
  RecvDoorbell* const doorbell_;

  // Wakeups are gated on these waiter counts (guarded by mutex_), so the
  // uncontended fast path — buffered send into free space, receive of an
  // already-landed message — makes no futex call at all.
  void notify_data();
  void notify_space();
  template <typename Pred>
  void wait_data(std::unique_lock<std::mutex>& lock, Pred pred) {
    ++data_waiters_;
    data_cv_.wait(lock, pred);
    --data_waiters_;
  }
  template <typename Pred>
  void wait_space(std::unique_lock<std::mutex>& lock, Pred pred) {
    ++space_waiters_;
    space_cv_.wait(lock, pred);
    --space_waiters_;
  }

  mutable std::mutex mutex_;
  std::condition_variable data_cv_;   // readers: bytes or reader token
  std::condition_variable space_cv_;  // writers: space or writer token
  int data_waiters_ = 0;
  int space_waiters_ = 0;

  std::vector<std::byte> slab_;
  std::size_t head_ = 0;  // first live byte
  std::size_t used_ = 0;  // live bytes (committed, unread)
  bool writer_active_ = false;
  bool reader_active_ = false;
  std::size_t pending_ = 0;  // headers committed minus messages consumed

  std::atomic<std::size_t> readable_{0};
  std::atomic<std::size_t> pending_messages_{0};
  std::atomic<std::size_t> slab_high_water_{0};
};

}  // namespace cgx::comm
