// Tag-space layout for the whole fabric.
//
// Every concurrent conversation over a transport needs its own tag so the
// dense (src, dst, tag) channel table keeps streams apart. This header is
// the single registry of who owns which tags — collectives hard-code their
// bases from here, and the streaming bucketed engine (core/async_engine.h)
// carves a disjoint per-bucket range out of the compressed region so
// bucket k+1's frames can be in flight while bucket k is still draining.
//
// Layout (see also DESIGN.md §5d):
//
//   110..160   uncompressed collectives (SRA 110/111, Ring 120/121,
//              Tree 130/131, bcast 140, allgather 150, reduce-scatter 160)
//   210..293   compressed collectives, strided per bucket: bucket b uses
//              base+2b for b < kMaxTagBuckets (SRA 210/211, Ring 220/221,
//              Tree 230/231; bucket 0 == the legacy monolithic tags)
//   162..193   hierarchical intra-node lane, strided per bucket: bucket b
//              uses kHierIntraTag + b (one tag per bucket — the member→leader
//              reduce and the leader→member broadcast travel opposite
//              directions over the same (src, dst, tag) table, so they never
//              share a channel)
//   310        GRACE allgather
//   310..360   SHADOW: peer-direct acks of the uncompressed collectives
//              (tag + kDirectAckTagOffset = +200) — nothing else may sit
//              here, which is what caps the bucket stride region at <300
//   362..393   SHADOW: peer-direct acks of the hierarchical intra lane
//   420..483   hierarchical inter-node (leader SRA) lane, strided per
//              bucket: scatter 420+2b / gather 421+2b. Leaders talk over
//              plain channels (never peer-direct — they model the NIC), so
//              this region needs no ack shadow and may run to the table cap.
#pragma once

namespace cgx::comm {

// Compressed-collective base tags (the per-TU constants that used to live in
// core/compressed_allreduce.cpp). A bucketed caller adds
// bucket_tag_offset(b) to each.
inline constexpr int kSraScatterTag = 210;
inline constexpr int kSraGatherTag = 211;
inline constexpr int kRingReduceTag = 220;
inline constexpr int kRingGatherTag = 221;
inline constexpr int kTreeReduceTag = 230;
inline constexpr int kTreeBcastTag = 231;

// Per-bucket tag stride: each scheme uses two tags (reduce + gather phase),
// so consecutive buckets are 2 apart and a bucket's pair never collides
// with another bucket's pair OF THE SAME SCHEME. One engine instance runs
// one scheme, so cross-scheme aliasing (bucket 5's SRA pair landing on
// bucket 0's Ring pair) cannot happen within a step.
inline constexpr int kBucketTagStride = 2;

// Buckets beyond this many fold into the last one (async_engine's plan
// builder enforces it). Bounds the compressed region below the peer-direct
// ack shadow of the uncompressed collectives (310..360) and GRACE's 310.
inline constexpr int kMaxTagBuckets = 32;

constexpr int bucket_tag_offset(int bucket) {
  return bucket * kBucketTagStride;
}

// Comm LANES (async_engine's comm_lanes): several comm threads per rank,
// each draining a disjoint subset of buckets (every submission — bucket or
// packet — rides the single lane its engine's byte-balanced lane map
// assigns it, fixed until the next rebuild). Lanes consume no
// extra tags — a bucket keeps its own per-bucket tag pair whichever lane
// runs it, and no bucket is ever in flight on two lanes at once, so the
// per-bucket disjointness above IS the per-lane isolation. The cap below
// only bounds thread fan-out; any value up to it keeps the tag story
// unchanged. Cross-rank safety needs every rank to submit to a given lane
// in the same bucket order — the engine's ordered-launch release frontier
// guarantees that even when completion order differs per rank.
inline constexpr int kMaxCommLanes = 8;

static_assert(kTreeBcastTag + bucket_tag_offset(kMaxTagBuckets - 1) < 310,
              "bucketed compressed tags must stay below the GRACE tag and "
              "the uncompressed collectives' direct-ack shadow (310..360)");

// Peer-direct exchanges acknowledge on tag + kDirectAckTagOffset; any tag
// that may ride the direct path must keep its shadow inside the table.
inline constexpr int kDirectAckTagOffset = 200;

// Hierarchical (two-level) schedule. The intra-node lane carries both the
// member→leader reduce and the leader→member broadcast: opposite directions
// on the same tag occupy distinct (src, dst, tag) channels. It may go
// peer-direct, so its ack shadow (362..393) must stay clear of both the
// uncompressed shadow (310..360) and the inter-node lane.
inline constexpr int kHierIntraTag = 162;
inline constexpr int kHierInterScatterTag = 420;
inline constexpr int kHierInterGatherTag = 421;

constexpr int hier_intra_tag(int bucket) { return kHierIntraTag + bucket; }
constexpr int hier_inter_scatter_tag(int bucket) {
  return kHierInterScatterTag + bucket_tag_offset(bucket);
}
constexpr int hier_inter_gather_tag(int bucket) {
  return kHierInterGatherTag + bucket_tag_offset(bucket);
}

static_assert(hier_intra_tag(kMaxTagBuckets - 1) < kSraScatterTag,
              "hierarchical intra lane must stay below the compressed region");
static_assert(hier_intra_tag(0) + kDirectAckTagOffset > 360,
              "hierarchical intra ack shadow must start past the "
              "uncompressed collectives' shadow (310..360)");
static_assert(hier_intra_tag(kMaxTagBuckets - 1) + kDirectAckTagOffset <
                  kHierInterScatterTag,
              "hierarchical intra ack shadow must end before the inter lane");
static_assert(hier_inter_gather_tag(kMaxTagBuckets - 1) < 512,
              "hierarchical inter lane must fit the channel-table tag slots");

// Elastic membership ballots (comm/membership.h): survivor-agreement votes
// after a rank failure travel on their own lane above everything else.
// Ballots never ride the peer-direct path, so no ack shadow is needed.
inline constexpr int kMembershipTag = 505;

static_assert(kMembershipTag > hier_inter_gather_tag(kMaxTagBuckets - 1),
              "membership lane must sit above the hierarchical inter lane");
static_assert(kMembershipTag < 512,
              "membership lane must fit the channel-table tag slots");

}  // namespace cgx::comm
