// Tag-space layout for the whole fabric.
//
// Every concurrent conversation over a transport needs its own tag so the
// dense (src, dst, tag) channel table keeps streams apart. This header is
// the single registry of who owns which tags — collectives hard-code their
// bases from here, and the streaming bucketed engine (core/async_engine.h)
// carves a disjoint per-bucket range out of the compressed region so
// bucket k+1's frames can be in flight while bucket k is still draining.
//
// Layout (see also DESIGN.md §5d):
//
//   110..160   uncompressed collectives (SRA 110/111, Ring 120/121,
//              Tree 130/131, bcast 140, allgather 150, reduce-scatter 160)
//   210..293   compressed collectives, strided per bucket: bucket b uses
//              base+2b for b < kMaxTagBuckets (SRA 210/211, Ring 220/221,
//              Tree 230/231; bucket 0 == the legacy monolithic tags)
//   310        GRACE allgather
//   310..360   SHADOW: peer-direct acks of the uncompressed collectives
//              (tag + kDirectAckTagOffset = +200) — nothing else may sit
//              here, which is what caps the bucket stride region at <300
//   410..413   hierarchical (two-level) schedule
#pragma once

namespace cgx::comm {

// Compressed-collective base tags (the per-TU constants that used to live in
// core/compressed_allreduce.cpp). A bucketed caller adds
// bucket_tag_offset(b) to each.
inline constexpr int kSraScatterTag = 210;
inline constexpr int kSraGatherTag = 211;
inline constexpr int kRingReduceTag = 220;
inline constexpr int kRingGatherTag = 221;
inline constexpr int kTreeReduceTag = 230;
inline constexpr int kTreeBcastTag = 231;

// Per-bucket tag stride: each scheme uses two tags (reduce + gather phase),
// so consecutive buckets are 2 apart and a bucket's pair never collides
// with another bucket's pair OF THE SAME SCHEME. One engine instance runs
// one scheme, so cross-scheme aliasing (bucket 5's SRA pair landing on
// bucket 0's Ring pair) cannot happen within a step.
inline constexpr int kBucketTagStride = 2;

// Buckets beyond this many fold into the last one (async_engine's plan
// builder enforces it). Bounds the compressed region below the peer-direct
// ack shadow of the uncompressed collectives (310..360) and GRACE's 310.
inline constexpr int kMaxTagBuckets = 32;

constexpr int bucket_tag_offset(int bucket) {
  return bucket * kBucketTagStride;
}

static_assert(kTreeBcastTag + bucket_tag_offset(kMaxTagBuckets - 1) < 310,
              "bucketed compressed tags must stay below the GRACE tag and "
              "the uncompressed collectives' direct-ack shadow (310..360)");

}  // namespace cgx::comm
