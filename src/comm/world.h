// SPMD execution harness: one thread per simulated device.
//
// `run_world(transport, n, fn)` launches n device threads; each receives a
// Comm handle (rank, world size, p2p primitives, barrier) and runs the same
// function — the standard data-parallel SPMD shape. This is the in-process
// analogue of one training process per GPU.
//
// Elastic mode (comm/membership.h): when a Membership is attached via
// WorldOptions, a Comm becomes a *view* onto the surviving ranks. The thread
// keeps its launch-time identity (`global_rank()`, stable forever) while
// `rank()`/`size()` report the DENSE coordinates of the current WorldView —
// the contiguous renumbering of the survivors that collectives operate in.
// All peer arguments of the p2p/direct primitives are dense and translated
// to global transport ranks at the boundary, so collective code is oblivious
// to membership changes. With no Membership attached every translation is
// the identity and behaviour is bit-identical to the non-elastic harness.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "comm/transport.h"
#include "util/barrier.h"

namespace cgx::comm {

class Membership;

// A device thread died with an exception. run_world catches it on the worker
// thread, annotates it with the rank, and rethrows this on the joining
// thread — so a failed worker surfaces as an ordinary exception at the call
// site instead of tearing down the process (or vanishing into a terminate).
// `original` holds the worker's exception for callers that need the precise
// type (e.g. to distinguish a TimeoutError from a FaultInjectedError).
class WorkerError : public std::runtime_error {
 public:
  WorkerError(int rank, std::string what, std::exception_ptr original)
      : std::runtime_error("rank " + std::to_string(rank) +
                           " failed: " + std::move(what)),
        rank(rank),
        original(std::move(original)) {}
  int rank;
  std::exception_ptr original;
};

// One immutable epoch of world membership. Published by Membership behind an
// atomic pointer and never mutated afterwards, so readers may hold the
// pointer across an entire collective without locking. `active` lists the
// surviving GLOBAL (launch-time) ranks in ascending order; dense rank i is
// by definition active[i], which keeps survivor renumbering deterministic.
struct WorldView {
  std::uint64_t epoch = 0;
  std::vector<int> active;    // sorted global ranks
  std::vector<int> dense_of;  // global rank -> dense rank, -1 when inactive

  int active_count() const { return static_cast<int>(active.size()); }
  bool is_active(int global) const {
    return dense_of[static_cast<std::size_t>(global)] >= 0;
  }
  int dense_rank(int global) const {
    return dense_of[static_cast<std::size_t>(global)];
  }
  int global_rank(int dense) const {
    return active[static_cast<std::size_t>(dense)];
  }
};

class Comm {
 public:
  Comm(int rank, Transport& transport, util::Barrier& barrier,
       Membership* membership = nullptr)
      : rank_(rank),
        transport_(transport),
        barrier_(barrier),
        membership_(membership) {}

  // Dense rank within the current WorldView (== global_rank() when no
  // Membership is attached). Re-reads the view on every call: after a
  // re-shard the same thread may own a different dense slot.
  int rank() const { return membership_ == nullptr ? rank_ : dense_rank_(); }
  int size() const {
    return membership_ == nullptr ? transport_.world_size() : active_count_();
  }
  // Launch-time transport rank: this thread's stable identity across
  // membership changes (data sharding, RNG streams, arenas key off it).
  int global_rank() const { return rank_; }
  bool elastic() const { return membership_ != nullptr; }
  Membership* membership() const { return membership_; }
  // Translates a dense rank of the current view to its global transport
  // rank (identity when non-elastic).
  int to_global(int dense) const {
    return membership_ == nullptr ? dense : to_global_(dense);
  }
  Transport& transport() { return transport_; }

  void send(int to, std::span<const std::byte> data, int tag = 0) {
    transport_.send(rank_, to_global(to), data, tag);
  }
  void recv(int from, std::span<std::byte> data, int tag = 0) {
    transport_.recv(rank_, to_global(from), data, tag);
  }

  void send_floats(int to, std::span<const float> data, int tag = 0) {
    send(to, std::as_bytes(data), tag);
  }
  void recv_floats(int from, std::span<float> data, int tag = 0) {
    recv(from, std::as_writable_bytes(data), tag);
  }

  // Fused receive+reduce (see Transport::recv_add): adds the matching
  // message's floats into `data` with no scratch bounce. Only valid when
  // transport().supports_recv_add().
  void recv_add_floats(int from, std::span<float> data, int tag = 0) {
    transport_.recv_add(rank_, to_global(from), data, tag);
  }

  // Peer-direct rendezvous (see Transport::direct_post/pull/wait): the
  // posted span must stay unmodified until the matching direct_wait.
  bool supports_direct_exchange() const {
    return transport_.supports_direct_exchange();
  }
  // Per-link capability (see Transport): topology-aware transports offer
  // peer-direct only inside a node. Both endpoints answer identically, so
  // SPMD code picks the path with this query for a specific peer.
  bool supports_direct_exchange(int peer) const {
    return transport_.supports_direct_exchange(rank_, to_global(peer));
  }
  void direct_post(int to, std::span<const float> data, int tag = 0) {
    transport_.direct_post(rank_, to_global(to), data, tag);
  }
  void direct_pull(int from, std::span<float> data, bool add, int tag = 0) {
    transport_.direct_pull(rank_, to_global(from), data, add, tag);
  }
  void direct_pull2(int from1, int from2, std::span<float> data,
                    int tag = 0) {
    transport_.direct_pull2(rank_, to_global(from1), to_global(from2), data,
                            tag);
  }
  void direct_wait(int to, int tag = 0) {
    transport_.direct_wait(rank_, to_global(to), tag);
  }

  // Blocking arrival-order selection: returns an element of `candidates`
  // with bytes pending for this rank under `tag`. Lets collectives take
  // scatter-reduce contributions in whatever order peers produce them.
  // Candidates (and the result) are dense ranks.
  int select_source(std::span<const int> candidates, int tag = 0) {
    if (membership_ == nullptr) {
      return transport_.select_source(rank_, candidates, tag);
    }
    return select_source_elastic(candidates, tag);
  }

  // Synchronises all ranks in the world (used between training steps and by
  // collectives that need phase separation in tests). Under a bounded
  // CommPolicy the wait is deadline-limited and expiry throws a TimeoutError
  // (src = -1: no single culprit; dst = this rank) — a hung peer turns a
  // world barrier into a diagnosable failure instead of a deadlock. In
  // elastic mode the barrier collects the current view's survivors on the
  // Membership step gate instead of the fixed launch-world barrier.
  void barrier();

  // Deadline-bounded barrier that reports instead of throwing: true once
  // every rank arrived, false on expiry (the arrival is withdrawn; see
  // util::Barrier::arrive_and_wait_for). The engine's round-retry agreement
  // protocol uses this to decide whether the world is still whole.
  bool try_barrier(std::chrono::milliseconds timeout);

 private:
  int dense_rank_() const;
  int active_count_() const;
  int to_global_(int dense) const;
  int select_source_elastic(std::span<const int> candidates, int tag);

  const int rank_;
  Transport& transport_;
  util::Barrier& barrier_;
  Membership* membership_ = nullptr;
};

// Options for run_world. `membership` turns on elastic mode: worker threads
// that die with a FaultInjectedError are treated as survivable departures
// (the oracle is informed, no WorkerError is rethrown) and, when a rejoin is
// scheduled for that rank, a successor thread is launched to re-run fn as
// the readmission candidate.
struct WorldOptions {
  Membership* membership = nullptr;
};

// Runs fn(comm) on `transport.world_size()` threads and joins them.
// Any CHECK failure in a worker aborts the process (worker errors are
// programmer errors by contract; see util/check.h). An exception escaping a
// worker is caught on its thread, every other worker is still joined, and
// the first failure (lowest rank) is rethrown here as a WorkerError — so
// structured comm failures (TimeoutError, FaultInjectedError, ...) propagate
// to the caller instead of std::terminate-ing the process.
void run_world(Transport& transport, const std::function<void(Comm&)>& fn);
void run_world(Transport& transport, const std::function<void(Comm&)>& fn,
               const WorldOptions& options);

}  // namespace cgx::comm
