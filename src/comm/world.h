// SPMD execution harness: one thread per simulated device.
//
// `run_world(transport, n, fn)` launches n device threads; each receives a
// Comm handle (rank, world size, p2p primitives, barrier) and runs the same
// function — the standard data-parallel SPMD shape. This is the in-process
// analogue of one training process per GPU.
#pragma once

#include <cstddef>
#include <functional>
#include <span>

#include "comm/transport.h"
#include "util/barrier.h"

namespace cgx::comm {

class Comm {
 public:
  Comm(int rank, Transport& transport, util::Barrier& barrier)
      : rank_(rank), transport_(transport), barrier_(barrier) {}

  int rank() const { return rank_; }
  int size() const { return transport_.world_size(); }
  Transport& transport() { return transport_; }

  void send(int to, std::span<const std::byte> data, int tag = 0) {
    transport_.send(rank_, to, data, tag);
  }
  void recv(int from, std::span<std::byte> data, int tag = 0) {
    transport_.recv(rank_, from, data, tag);
  }

  void send_floats(int to, std::span<const float> data, int tag = 0) {
    send(to, std::as_bytes(data), tag);
  }
  void recv_floats(int from, std::span<float> data, int tag = 0) {
    recv(from, std::as_writable_bytes(data), tag);
  }

  // Fused receive+reduce (see Transport::recv_add): adds the matching
  // message's floats into `data` with no scratch bounce. Only valid when
  // transport().supports_recv_add().
  void recv_add_floats(int from, std::span<float> data, int tag = 0) {
    transport_.recv_add(rank_, from, data, tag);
  }

  // Peer-direct rendezvous (see Transport::direct_post/pull/wait): the
  // posted span must stay unmodified until the matching direct_wait.
  bool supports_direct_exchange() const {
    return transport_.supports_direct_exchange();
  }
  void direct_post(int to, std::span<const float> data, int tag = 0) {
    transport_.direct_post(rank_, to, data, tag);
  }
  void direct_pull(int from, std::span<float> data, bool add, int tag = 0) {
    transport_.direct_pull(rank_, from, data, add, tag);
  }
  void direct_wait(int to, int tag = 0) { transport_.direct_wait(rank_, to, tag); }

  // Blocking arrival-order selection: returns an element of `candidates`
  // with bytes pending for this rank under `tag`. Lets collectives take
  // scatter-reduce contributions in whatever order peers produce them.
  int select_source(std::span<const int> candidates, int tag = 0) {
    return transport_.select_source(rank_, candidates, tag);
  }

  // Synchronises all ranks in the world (used between training steps and by
  // collectives that need phase separation in tests).
  void barrier() { barrier_.arrive_and_wait(); }

 private:
  const int rank_;
  Transport& transport_;
  util::Barrier& barrier_;
};

// Runs fn(comm) on `transport.world_size()` threads and joins them.
// Any CHECK failure in a worker aborts the process (worker errors are
// programmer errors by contract; see util/check.h).
void run_world(Transport& transport, const std::function<void(Comm&)>& fn);

}  // namespace cgx::comm
