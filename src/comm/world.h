// SPMD execution harness: one thread per simulated device.
//
// `run_world(transport, n, fn)` launches n device threads; each receives a
// Comm handle (rank, world size, p2p primitives, barrier) and runs the same
// function — the standard data-parallel SPMD shape. This is the in-process
// analogue of one training process per GPU.
#pragma once

#include <chrono>
#include <cstddef>
#include <exception>
#include <functional>
#include <span>
#include <stdexcept>
#include <string>

#include "comm/transport.h"
#include "util/barrier.h"

namespace cgx::comm {

// A device thread died with an exception. run_world catches it on the worker
// thread, annotates it with the rank, and rethrows this on the joining
// thread — so a failed worker surfaces as an ordinary exception at the call
// site instead of tearing down the process (or vanishing into a terminate).
// `original` holds the worker's exception for callers that need the precise
// type (e.g. to distinguish a TimeoutError from a FaultInjectedError).
class WorkerError : public std::runtime_error {
 public:
  WorkerError(int rank, std::string what, std::exception_ptr original)
      : std::runtime_error("rank " + std::to_string(rank) +
                           " failed: " + std::move(what)),
        rank(rank),
        original(std::move(original)) {}
  int rank;
  std::exception_ptr original;
};

class Comm {
 public:
  Comm(int rank, Transport& transport, util::Barrier& barrier)
      : rank_(rank), transport_(transport), barrier_(barrier) {}

  int rank() const { return rank_; }
  int size() const { return transport_.world_size(); }
  Transport& transport() { return transport_; }

  void send(int to, std::span<const std::byte> data, int tag = 0) {
    transport_.send(rank_, to, data, tag);
  }
  void recv(int from, std::span<std::byte> data, int tag = 0) {
    transport_.recv(rank_, from, data, tag);
  }

  void send_floats(int to, std::span<const float> data, int tag = 0) {
    send(to, std::as_bytes(data), tag);
  }
  void recv_floats(int from, std::span<float> data, int tag = 0) {
    recv(from, std::as_writable_bytes(data), tag);
  }

  // Fused receive+reduce (see Transport::recv_add): adds the matching
  // message's floats into `data` with no scratch bounce. Only valid when
  // transport().supports_recv_add().
  void recv_add_floats(int from, std::span<float> data, int tag = 0) {
    transport_.recv_add(rank_, from, data, tag);
  }

  // Peer-direct rendezvous (see Transport::direct_post/pull/wait): the
  // posted span must stay unmodified until the matching direct_wait.
  bool supports_direct_exchange() const {
    return transport_.supports_direct_exchange();
  }
  // Per-link capability (see Transport): topology-aware transports offer
  // peer-direct only inside a node. Both endpoints answer identically, so
  // SPMD code picks the path with this query for a specific peer.
  bool supports_direct_exchange(int peer) const {
    return transport_.supports_direct_exchange(rank_, peer);
  }
  void direct_post(int to, std::span<const float> data, int tag = 0) {
    transport_.direct_post(rank_, to, data, tag);
  }
  void direct_pull(int from, std::span<float> data, bool add, int tag = 0) {
    transport_.direct_pull(rank_, from, data, add, tag);
  }
  void direct_pull2(int from1, int from2, std::span<float> data,
                    int tag = 0) {
    transport_.direct_pull2(rank_, from1, from2, data, tag);
  }
  void direct_wait(int to, int tag = 0) { transport_.direct_wait(rank_, to, tag); }

  // Blocking arrival-order selection: returns an element of `candidates`
  // with bytes pending for this rank under `tag`. Lets collectives take
  // scatter-reduce contributions in whatever order peers produce them.
  int select_source(std::span<const int> candidates, int tag = 0) {
    return transport_.select_source(rank_, candidates, tag);
  }

  // Synchronises all ranks in the world (used between training steps and by
  // collectives that need phase separation in tests). Under a bounded
  // CommPolicy the wait is deadline-limited and expiry throws a TimeoutError
  // (src = -1: no single culprit; dst = this rank) — a hung peer turns a
  // world barrier into a diagnosable failure instead of a deadlock.
  void barrier() {
    const CommPolicy& pol = transport_.policy();
    if (!pol.bounded()) {
      barrier_.arrive_and_wait();
      return;
    }
    if (!try_barrier(pol.timeout)) {
      throw TimeoutError(-1, rank_, -1, pol.timeout, "world barrier");
    }
  }

  // Deadline-bounded barrier that reports instead of throwing: true once
  // every rank arrived, false on expiry (the arrival is withdrawn; see
  // util::Barrier::arrive_and_wait_for). The engine's round-retry agreement
  // protocol uses this to decide whether the world is still whole.
  bool try_barrier(std::chrono::milliseconds timeout) {
    return barrier_.arrive_and_wait_for(timeout);
  }

 private:
  const int rank_;
  Transport& transport_;
  util::Barrier& barrier_;
};

// Runs fn(comm) on `transport.world_size()` threads and joins them.
// Any CHECK failure in a worker aborts the process (worker errors are
// programmer errors by contract; see util/check.h). An exception escaping a
// worker is caught on its thread, every other worker is still joined, and
// the first failure (lowest rank) is rethrown here as a WorkerError — so
// structured comm failures (TimeoutError, FaultInjectedError, ...) propagate
// to the caller instead of std::terminate-ing the process.
void run_world(Transport& transport, const std::function<void(Comm&)>& fn);

}  // namespace cgx::comm
