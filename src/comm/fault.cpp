#include "comm/fault.h"

#include <algorithm>
#include <sstream>
#include <thread>

#include "util/check.h"

namespace cgx::comm {
namespace {

// SplitMix64 finaliser: a strong stateless mixer, so every fault decision is
// an independent pure function of its key — no RNG stream to race on.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Distinct decision streams drawn from one seed.
enum class Stream : std::uint64_t {
  kWire = 0x77697265,     // drop/corrupt outcome per delivery attempt
  kFlipPos = 0x666c6970,  // corrupted byte position
  kFlipBit = 0x62697473,  // corrupted bit mask
  kDelay = 0x64656c61,    // send straggler decision
};

std::uint64_t key(std::uint64_t seed, Stream stream, int src, int dst,
                  int tag, std::uint64_t frame, int attempt) {
  std::uint64_t h = mix64(seed ^ static_cast<std::uint64_t>(stream));
  h = mix64(h ^ (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) |
                 static_cast<std::uint64_t>(static_cast<std::uint32_t>(dst))
                     << 32));
  h = mix64(h ^ static_cast<std::uint64_t>(static_cast<std::uint32_t>(tag)));
  h = mix64(h ^ frame);
  h = mix64(h ^ static_cast<std::uint64_t>(static_cast<std::uint32_t>(attempt)));
  return h;
}

// Uniform draw in [0, 1) from a hashed key (53 mantissa bits).
double unit(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

std::string injected_what(int rank, const char* kind) {
  std::ostringstream os;
  os << "FaultInjectedError: rank " << rank << " " << kind
     << " (scheduled by the fault harness)";
  return os.str();
}

}  // namespace

FaultInjectedError::FaultInjectedError(int rank, const char* kind)
    : std::runtime_error(injected_what(rank, kind)), rank(rank) {}

// ------------------------------------------------------------ FaultInjector

FaultInjector::FaultInjector(std::uint64_t seed, int world_size)
    : seed_(seed),
      world_(world_size),
      specs_(static_cast<std::size_t>(world_size) *
             static_cast<std::size_t>(world_size)),
      ranks_(static_cast<std::size_t>(world_size)) {
  CGX_CHECK_GT(world_size, 0);
}

std::size_t FaultInjector::link_index(int src, int dst) const {
  CGX_CHECK(src >= 0 && src < world_);
  CGX_CHECK(dst >= 0 && dst < world_);
  return static_cast<std::size_t>(src) * static_cast<std::size_t>(world_) +
         static_cast<std::size_t>(dst);
}

void FaultInjector::set_link(int src, int dst, const FaultSpec& spec) {
  specs_[link_index(src, dst)] = spec;
}

void FaultInjector::set_all_links(const FaultSpec& spec) {
  for (FaultSpec& s : specs_) s = spec;
}

void FaultInjector::schedule_hang(int rank, std::uint64_t op_index,
                                  std::chrono::milliseconds duration) {
  CGX_CHECK(rank >= 0 && rank < world_);
  ranks_[static_cast<std::size_t>(rank)].hang_at = op_index;
  ranks_[static_cast<std::size_t>(rank)].hang_for = duration;
}

void FaultInjector::schedule_crash(int rank, std::uint64_t op_index) {
  CGX_CHECK(rank >= 0 && rank < world_);
  ranks_[static_cast<std::size_t>(rank)].crash_at = op_index;
}

void FaultInjector::schedule_departure(int rank, std::uint64_t step) {
  CGX_CHECK(rank >= 0 && rank < world_);
  ranks_[static_cast<std::size_t>(rank)].depart_at_step = step;
}

std::uint64_t FaultInjector::departure_step(int rank) const {
  CGX_CHECK(rank >= 0 && rank < world_);
  return ranks_[static_cast<std::size_t>(rank)].depart_at_step;
}

std::uint64_t FaultInjector::rank_ops(int rank) const {
  CGX_CHECK(rank >= 0 && rank < world_);
  return ranks_[static_cast<std::size_t>(rank)].ops.load(
      std::memory_order_relaxed);
}

void FaultInjector::schedule_round_failure(std::uint64_t round) {
  failing_rounds_.push_back(round);
}

bool FaultInjector::round_fails(std::uint64_t round, int attempt) const {
  // Only the first attempt of a round fails: the retry must find clear air,
  // otherwise the test would assert an infinite loop.
  if (attempt != 0) return false;
  return std::find(failing_rounds_.begin(), failing_rounds_.end(), round) !=
         failing_rounds_.end();
}

void FaultInjector::on_rank_op(int rank) {
  CGX_CHECK(rank >= 0 && rank < world_);
  RankSchedule& rs = ranks_[static_cast<std::size_t>(rank)];
  if (!count_ops_ && rs.hang_at == kNever && rs.crash_at == kNever) {
    // Fast path: nothing scheduled, skip the counter entirely.
    return;
  }
  const std::uint64_t op = rs.ops.fetch_add(1, std::memory_order_relaxed);
  if (op == rs.crash_at) {
    throw FaultInjectedError(rank, "crashed");
  }
  if (op == rs.hang_at) {
    // A straggler that turns into a casualty: stall long enough for every
    // bounded peer to time out, then die. Never resume into a half-done
    // operation — a partially-written frame would corrupt the link rather
    // than model a hung process.
    std::this_thread::sleep_for(rs.hang_for);
    throw FaultInjectedError(rank, "hung and was declared dead");
  }
}

WireOutcome FaultInjector::wire_outcome(int src, int dst, int tag,
                                        std::uint64_t frame,
                                        int attempt) const {
  const FaultSpec& spec = specs_[link_index(src, dst)];
  if (spec.drop_prob <= 0.0 && spec.corrupt_prob <= 0.0) {
    return WireOutcome::kOk;
  }
  const double u =
      unit(key(seed_, Stream::kWire, src, dst, tag, frame, attempt));
  if (u < spec.drop_prob) return WireOutcome::kDrop;
  if (u < spec.drop_prob + spec.corrupt_prob) return WireOutcome::kCorrupt;
  return WireOutcome::kOk;
}

void FaultInjector::corrupt_bytes(std::span<std::byte> payload, int src,
                                  int dst, int tag, std::uint64_t frame,
                                  int attempt) const {
  if (payload.empty()) return;
  const std::uint64_t pos =
      key(seed_, Stream::kFlipPos, src, dst, tag, frame, attempt) %
      payload.size();
  const std::uint64_t bit =
      key(seed_, Stream::kFlipBit, src, dst, tag, frame, attempt) % 8;
  payload[static_cast<std::size_t>(pos)] ^=
      static_cast<std::byte>(1u << bit);
}

std::chrono::microseconds FaultInjector::send_delay(int src, int dst,
                                                    std::uint64_t op) const {
  const FaultSpec& spec = specs_[link_index(src, dst)];
  if (spec.delay_prob <= 0.0 || spec.delay.count() <= 0) {
    return std::chrono::microseconds{0};
  }
  const double u =
      unit(key(seed_, Stream::kDelay, src, dst, /*tag=*/0, op, /*attempt=*/0));
  return u < spec.delay_prob ? spec.delay : std::chrono::microseconds{0};
}

// ---------------------------------------------------------- FaultyTransport

FaultyTransport::FaultyTransport(Transport& inner, FaultInjector& injector)
    : Transport(inner.world_size()),
      inner_(inner),
      injector_(injector),
      send_seq_(static_cast<std::size_t>(inner.world_size()) *
                static_cast<std::size_t>(inner.world_size())) {
  CGX_CHECK_EQ(inner.world_size(), injector.world_size());
  policy_ = inner.policy();
  inner_.set_fault_injector(&injector_);
}

FaultyTransport::~FaultyTransport() { inner_.set_fault_injector(nullptr); }

void FaultyTransport::before_send(int src, int dst) {
  injector_.on_rank_op(src);
  const std::uint64_t op =
      send_seq_[static_cast<std::size_t>(src) *
                    static_cast<std::size_t>(world_size_) +
                static_cast<std::size_t>(dst)]
          .fetch_add(1, std::memory_order_relaxed);
  const auto delay = injector_.send_delay(src, dst, op);
  if (delay.count() > 0) std::this_thread::sleep_for(delay);
}

void FaultyTransport::send(int src, int dst, std::span<const std::byte> data,
                           int tag) {
  before_send(src, dst);
  inner_.send(src, dst, data, tag);
}

void FaultyTransport::recv(int dst, int src, std::span<std::byte> data,
                           int tag) {
  injector_.on_rank_op(dst);
  inner_.recv(dst, src, data, tag);
}

bool FaultyTransport::supports_recv_add() const {
  return inner_.supports_recv_add();
}

void FaultyTransport::recv_add(int dst, int src, std::span<float> data,
                               int tag) {
  injector_.on_rank_op(dst);
  inner_.recv_add(dst, src, data, tag);
}

bool FaultyTransport::supports_direct_exchange() const {
  return inner_.supports_direct_exchange();
}

bool FaultyTransport::supports_direct_exchange(int a, int b) const {
  return inner_.supports_direct_exchange(a, b);
}

void FaultyTransport::direct_post(int src, int dst,
                                  std::span<const float> data, int tag) {
  before_send(src, dst);
  inner_.direct_post(src, dst, data, tag);
}

void FaultyTransport::direct_pull(int dst, int src, std::span<float> data,
                                  bool add, int tag) {
  injector_.on_rank_op(dst);
  inner_.direct_pull(dst, src, data, add, tag);
}

void FaultyTransport::direct_wait(int src, int dst, int tag) {
  injector_.on_rank_op(src);
  inner_.direct_wait(src, dst, tag);
}

int FaultyTransport::select_source(int dst, std::span<const int> candidates,
                                   int tag) {
  injector_.on_rank_op(dst);
  return inner_.select_source(dst, candidates, tag);
}

const TransportProfile& FaultyTransport::profile() const {
  return inner_.profile();
}

void FaultyTransport::set_policy(const CommPolicy& policy) {
  policy_ = policy;  // keep the local accessor coherent
  inner_.set_policy(policy);
}

void FaultyTransport::set_fault_injector(FaultInjector* injector) {
  inner_.set_fault_injector(injector);
}

void FaultyTransport::reset_inbound(int rank) { inner_.reset_inbound(rank); }

void FaultyTransport::set_epoch(std::uint64_t epoch) {
  inner_.set_epoch(epoch);
}

std::uint64_t FaultyTransport::epoch() const { return inner_.epoch(); }

std::uint64_t FaultyTransport::stale_frames_discarded() const {
  return inner_.stale_frames_discarded();
}

}  // namespace cgx::comm
