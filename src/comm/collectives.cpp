#include "comm/collectives.h"

#include <vector>

#include "tensor/tensor_ops.h"

namespace cgx::comm {
namespace {

// Tag bases per collective phase; per-(pair, tag) FIFOs plus per-rank
// sequential execution make these sufficient to avoid cross-talk.
constexpr int kSraScatterTag = 110;
constexpr int kSraGatherTag = 111;
constexpr int kRingReduceTag = 120;
constexpr int kRingGatherTag = 121;
constexpr int kTreeReduceTag = 130;
constexpr int kTreeBcastTag = 131;
constexpr int kBcastTag = 140;
constexpr int kAllgatherTag = 150;
constexpr int kReduceScatterTag = 160;

}  // namespace

const char* reduction_scheme_name(ReductionScheme s) {
  switch (s) {
    case ReductionScheme::ScatterReduceAllgather:
      return "SRA";
    case ReductionScheme::Ring:
      return "Ring";
    case ReductionScheme::Tree:
      return "Tree";
  }
  return "?";
}

std::pair<std::size_t, std::size_t> chunk_range(std::size_t d, int n, int i) {
  CGX_CHECK_GT(n, 0);
  CGX_CHECK(i >= 0 && i < n);
  const std::size_t nn = static_cast<std::size_t>(n);
  const std::size_t ii = static_cast<std::size_t>(i);
  const std::size_t base = d / nn;
  const std::size_t rem = d % nn;
  const std::size_t first = ii * base + std::min(ii, rem);
  const std::size_t len = base + (ii < rem ? 1 : 0);
  return {first, first + len};
}

void allreduce(Comm& comm, std::span<float> data, ReductionScheme scheme) {
  std::vector<float> scratch(data.size());
  allreduce(comm, data, scheme, scratch);
}

void allreduce(Comm& comm, std::span<float> data, ReductionScheme scheme,
               std::span<float> scratch) {
  switch (scheme) {
    case ReductionScheme::ScatterReduceAllgather:
      allreduce_sra(comm, data, scratch);
      return;
    case ReductionScheme::Ring:
      allreduce_ring(comm, data, scratch);
      return;
    case ReductionScheme::Tree:
      allreduce_tree(comm, data, scratch);
      return;
  }
}

void allreduce_sra(Comm& comm, std::span<float> data) {
  std::vector<float> scratch(data.size());
  allreduce_sra(comm, data, scratch);
}

void allreduce_sra(Comm& comm, std::span<float> data,
                   std::span<float> scratch) {
  const int n = comm.size();
  const int r = comm.rank();
  if (n == 1 || data.empty()) return;

  // Round 1 (Scatter-Reduce): rank j collects everyone's chunk j.
  for (int p = 0; p < n; ++p) {
    if (p == r) continue;
    const auto [first, last] = chunk_range(data.size(), n, p);
    comm.send_floats(p, data.subspan(first, last - first), kSraScatterTag);
  }
  const auto [mine_first, mine_last] = chunk_range(data.size(), n, r);
  std::span<float> mine = data.subspan(mine_first, mine_last - mine_first);
  CGX_CHECK_GE(scratch.size(), mine.size());
  const std::span<float> incoming = scratch.first(mine.size());
  for (int p = 0; p < n; ++p) {
    if (p == r) continue;
    comm.recv_floats(p, incoming, kSraScatterTag);
    tensor::add_inplace(mine, incoming);
  }

  // Round 2 (Allgather): broadcast the reduced chunk to all peers.
  for (int p = 0; p < n; ++p) {
    if (p == r) continue;
    comm.send_floats(p, mine, kSraGatherTag);
  }
  for (int p = 0; p < n; ++p) {
    if (p == r) continue;
    const auto [first, last] = chunk_range(data.size(), n, p);
    comm.recv_floats(p, data.subspan(first, last - first), kSraGatherTag);
  }
}

void allreduce_ring(Comm& comm, std::span<float> data) {
  std::vector<float> scratch(data.size());
  allreduce_ring(comm, data, scratch);
}

void allreduce_ring(Comm& comm, std::span<float> data,
                    std::span<float> scratch) {
  const int n = comm.size();
  const int r = comm.rank();
  if (n == 1 || data.empty()) return;
  const int right = (r + 1) % n;
  const int left = (r - 1 + n) % n;

  // Phase 1: reduce-scatter around the ring. After step s, the chunk a rank
  // just received carries partial sums from s+1 ranks; after n-1 steps rank
  // r owns the fully reduced chunk (r+1) mod n.
  for (int s = 0; s < n - 1; ++s) {
    const int send_idx = (r - s + n) % n;
    const int recv_idx = (r - s - 1 + n) % n;
    const auto [sf, sl] = chunk_range(data.size(), n, send_idx);
    comm.send_floats(right, data.subspan(sf, sl - sf), kRingReduceTag);
    const auto [rf, rl] = chunk_range(data.size(), n, recv_idx);
    CGX_CHECK_GE(scratch.size(), rl - rf);
    const std::span<float> incoming = scratch.first(rl - rf);
    comm.recv_floats(left, incoming, kRingReduceTag);
    tensor::add_inplace(data.subspan(rf, rl - rf), incoming);
  }
  // Phase 2: allgather the reduced chunks around the ring.
  for (int s = 0; s < n - 1; ++s) {
    const int send_idx = (r + 1 - s + n) % n;
    const int recv_idx = (r - s + n) % n;
    const auto [sf, sl] = chunk_range(data.size(), n, send_idx);
    comm.send_floats(right, data.subspan(sf, sl - sf), kRingGatherTag);
    const auto [rf, rl] = chunk_range(data.size(), n, recv_idx);
    comm.recv_floats(left, data.subspan(rf, rl - rf), kRingGatherTag);
  }
}

void allreduce_tree(Comm& comm, std::span<float> data) {
  std::vector<float> scratch(data.size());
  allreduce_tree(comm, data, scratch);
}

void allreduce_tree(Comm& comm, std::span<float> data,
                    std::span<float> scratch) {
  const int n = comm.size();
  const int r = comm.rank();
  if (n == 1 || data.empty()) return;

  // Binomial-tree reduce to rank 0.
  int top_mask = 1;
  while (top_mask < n) top_mask <<= 1;
  top_mask >>= 1;

  CGX_CHECK_GE(scratch.size(), data.size());
  const std::span<float> incoming = scratch.first(data.size());
  for (int mask = top_mask; mask >= 1; mask >>= 1) {
    if (r >= mask && r < 2 * mask) {
      comm.send_floats(r - mask, data, kTreeReduceTag);
    } else if (r < mask && r + mask < n) {
      comm.recv_floats(r + mask, incoming, kTreeReduceTag);
      tensor::add_inplace(data, incoming);
    }
  }
  // Binomial broadcast of the result back down.
  for (int mask = 1; mask < n; mask <<= 1) {
    if (r < mask && r + mask < n) {
      comm.send_floats(r + mask, data, kTreeBcastTag);
    } else if (r >= mask && r < 2 * mask) {
      comm.recv_floats(r - mask, data, kTreeBcastTag);
    }
  }
}

void broadcast(Comm& comm, std::span<float> data, int root) {
  const int n = comm.size();
  if (n == 1 || data.empty()) return;
  CGX_CHECK(root >= 0 && root < n);
  // Rotate ranks so the tree is rooted at `root`.
  const int vr = (comm.rank() - root + n) % n;
  for (int mask = 1; mask < n; mask <<= 1) {
    if (vr < mask && vr + mask < n) {
      comm.send_floats((vr + mask + root) % n, data, kBcastTag);
    } else if (vr >= mask && vr < 2 * mask) {
      comm.recv_floats((vr - mask + root) % n, data, kBcastTag);
    }
  }
}

void allgather(Comm& comm, std::span<const float> in, std::span<float> out) {
  const int n = comm.size();
  const int r = comm.rank();
  CGX_CHECK_EQ(out.size(), in.size() * static_cast<std::size_t>(n));
  std::span<float> my_slot = out.subspan(in.size() * r, in.size());
  tensor::copy(in, my_slot);
  if (n == 1) return;
  for (int p = 0; p < n; ++p) {
    if (p == r) continue;
    comm.send_floats(p, in, kAllgatherTag);
  }
  for (int p = 0; p < n; ++p) {
    if (p == r) continue;
    comm.recv_floats(p, out.subspan(in.size() * p, in.size()),
                     kAllgatherTag);
  }
}

void reduce_scatter(Comm& comm, std::span<float> data) {
  const int n = comm.size();
  const int r = comm.rank();
  if (n == 1 || data.empty()) return;
  for (int p = 0; p < n; ++p) {
    if (p == r) continue;
    const auto [first, last] = chunk_range(data.size(), n, p);
    comm.send_floats(p, data.subspan(first, last - first),
                     kReduceScatterTag);
  }
  const auto [mf, ml] = chunk_range(data.size(), n, r);
  std::span<float> mine = data.subspan(mf, ml - mf);
  std::vector<float> incoming(mine.size());
  for (int p = 0; p < n; ++p) {
    if (p == r) continue;
    comm.recv_floats(p, incoming, kReduceScatterTag);
    tensor::add_inplace(mine, incoming);
  }
}

}  // namespace cgx::comm
