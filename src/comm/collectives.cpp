#include "comm/collectives.h"

#include <array>
#include <vector>

#include "tensor/tensor_ops.h"

namespace cgx::comm {
namespace {

// Tag bases per collective phase; per-(pair, tag) FIFOs plus per-rank
// sequential execution make these sufficient to avoid cross-talk.
constexpr int kSraScatterTag = 110;
constexpr int kSraGatherTag = 111;
constexpr int kRingReduceTag = 120;
constexpr int kRingGatherTag = 121;
constexpr int kTreeReduceTag = 130;
constexpr int kTreeBcastTag = 131;
constexpr int kBcastTag = 140;
constexpr int kAllgatherTag = 150;
constexpr int kReduceScatterTag = 160;

// Pipeline sub-chunk: 64Ki floats = 256 KiB — big enough to amortise
// per-message overhead, small enough that the copy-out of sub-chunk k and
// its add_inplace stay cache-resident while sub-chunk k+1 is in flight.
// Both sides derive identical sub-chunk boundaries from the chunk length,
// so framing always matches.
constexpr std::size_t kPipelineFloats = 64 * 1024;

// Sends `data` as ceil(size / kPipelineFloats) back-to-back messages.
void send_pipelined(Comm& comm, int to, std::span<const float> data,
                    int tag) {
  std::size_t off = 0;
  do {
    const std::size_t n = std::min(kPipelineFloats, data.size() - off);
    comm.send_floats(to, data.subspan(off, n), tag);
    off += n;
  } while (off < data.size());
}

// Receives the pipelined counterpart of send_pipelined straight into place.
void recv_pipelined(Comm& comm, int from, std::span<float> data, int tag) {
  std::size_t off = 0;
  do {
    const std::size_t n = std::min(kPipelineFloats, data.size() - off);
    comm.recv_floats(from, data.subspan(off, n), tag);
    off += n;
  } while (off < data.size());
}

// Receives sub-chunk k and folds it into dst while sub-chunk k+1 is still
// crossing the ring — the recv/reduce overlap of the chunk pipeline. On
// transports with fused receive+reduce the payload is added straight out of
// the channel slab (no scratch bounce — one less pass over memory per wire
// byte); otherwise it bounces through one pipeline sub-chunk of `scratch`.
// Both paths add element-wise in payload order, so the result is
// bit-identical either way.
void recv_add_pipelined(Comm& comm, int from, std::span<float> dst,
                        std::span<float> scratch, int tag) {
  const bool fused = comm.transport().supports_recv_add();
  std::size_t off = 0;
  do {
    const std::size_t n = std::min(kPipelineFloats, dst.size() - off);
    if (fused) {
      comm.recv_add_floats(from, dst.subspan(off, n), tag);
    } else {
      const std::span<float> incoming = scratch.first(n);
      comm.recv_floats(from, incoming, tag);
      tensor::add_inplace(dst.subspan(off, n), incoming);
    }
    off += n;
  } while (off < dst.size());
}

// Arrival-order iteration over the n-1 peers of this rank.
template <typename Fn>
void for_each_peer_by_arrival(Comm& comm, int tag, Fn&& fn) {
  const int n = comm.size();
  const int r = comm.rank();
  std::array<int, static_cast<std::size_t>(kMaxAnySourceWorld)> peers;
  if (n - 1 > kMaxAnySourceWorld) {
    for (int p = 0; p < n; ++p) {
      if (p != r) fn(p);
    }
    return;
  }
  int count = 0;
  for (int p = 0; p < n; ++p) {
    if (p != r) peers[static_cast<std::size_t>(count++)] = p;
  }
  for_each_by_arrival(comm, {peers.data(), static_cast<std::size_t>(count)},
                      tag, fn);
}

// Shared scatter-reduce phase: afterwards `data`'s own chunk holds the full
// sum. Used by allreduce_sra (round 1) and reduce_scatter.
//
// Adds always run in fixed rank order, keeping the float sum bit-identical
// run to run (a running sum in arrival order would not be). How the
// contributions arrive depends on the transport:
//
//   - With fused receive+reduce, peers are drained in fixed order and each
//     payload is added straight out of the channel — two passes over memory
//     per wire byte. Any-source staging would cost two more (stage write +
//     stage re-read), which is the wrong trade once there is no scratch
//     bounce left to overlap; contributions still sit buffered in their
//     per-pair rings while earlier peers are folded, so senders never stall.
//   - Otherwise, when scratch can stage every peer's contribution, receives
//     are any-source — whichever peer has bytes pending is drained into its
//     own slot, so the copy-out of early arrivals overlaps the transit of
//     slow peers — and the adds fold the slots afterwards.
void scatter_reduce_phase(Comm& comm, std::span<float> data,
                          std::span<float> scratch, int tag) {
  const int n = comm.size();
  const int r = comm.rank();
  if (comm.supports_direct_exchange()) {
    // Peer-direct: post every outgoing chunk (non-blocking), reduce each
    // peer's contribution straight out of its buffer in fixed rank order,
    // then wait for all peers to have consumed ours. Chunks other than
    // `mine` are read-only for the whole phase, so posting them all up
    // front is safe; `mine` is never posted here.
    for (int p = 0; p < n; ++p) {
      if (p == r) continue;
      const auto [first, last] = chunk_range(data.size(), n, p);
      comm.direct_post(p, data.subspan(first, last - first), tag);
    }
    const auto [mf, ml] = chunk_range(data.size(), n, r);
    std::span<float> mine_chunk = data.subspan(mf, ml - mf);
    // Fold peers two at a time: direct_pull2 preserves the fixed-order
    // per-element add sequence while reading and writing `mine` once per
    // pair instead of once per peer (the dst stream dominates this phase).
    if (n - 1 > kMaxAnySourceWorld) {
      for (int p = 0; p < n; ++p) {
        if (p == r) continue;
        comm.direct_pull(p, mine_chunk, /*add=*/true, tag);
      }
      for (int p = 0; p < n; ++p) {
        if (p == r) continue;
        comm.direct_wait(p, tag);
      }
      return;
    }
    std::array<int, static_cast<std::size_t>(kMaxAnySourceWorld)> order;
    int count = 0;
    for (int p = 0; p < n; ++p) {
      if (p != r) order[static_cast<std::size_t>(count++)] = p;
    }
    int k = 0;
    for (; k + 2 <= count; k += 2) {
      comm.direct_pull2(order[static_cast<std::size_t>(k)],
                        order[static_cast<std::size_t>(k + 1)], mine_chunk,
                        tag);
    }
    for (; k < count; ++k) {
      comm.direct_pull(order[static_cast<std::size_t>(k)], mine_chunk,
                       /*add=*/true, tag);
    }
    for (int p = 0; p < n; ++p) {
      if (p == r) continue;
      comm.direct_wait(p, tag);
    }
    return;
  }
  for (int p = 0; p < n; ++p) {
    if (p == r) continue;
    const auto [first, last] = chunk_range(data.size(), n, p);
    send_pipelined(comm, p, data.subspan(first, last - first), tag);
  }
  const auto [mine_first, mine_last] = chunk_range(data.size(), n, r);
  std::span<float> mine = data.subspan(mine_first, mine_last - mine_first);
  // Every peer's contribution to my chunk has exactly mine.size() floats.
  const std::size_t peers = static_cast<std::size_t>(n - 1);
  const auto slot_of = [r](int p) {
    return static_cast<std::size_t>(p < r ? p : p - 1);
  };
  if (comm.transport().supports_recv_add()) {
    for (int p = 0; p < n; ++p) {
      if (p == r) continue;
      recv_add_pipelined(comm, p, mine, scratch, tag);
    }
  } else if (peers * mine.size() <= scratch.size()) {
    for_each_peer_by_arrival(comm, tag, [&](int p) {
      recv_pipelined(comm, p,
                     scratch.subspan(slot_of(p) * mine.size(), mine.size()),
                     tag);
    });
    // Fold staged slots pairwise: same fixed-p add sequence, half the
    // passes over `mine`.
    const auto slot_span = [&](int peer) {
      return scratch.subspan(slot_of(peer) * mine.size(), mine.size());
    };
    int prev = -1;
    for (int q = 0; q < n; ++q) {
      if (q == r) continue;
      if (prev < 0) {
        prev = q;
        continue;
      }
      tensor::add_inplace2(mine, slot_span(prev), slot_span(q));
      prev = -1;
    }
    if (prev >= 0) tensor::add_inplace(mine, slot_span(prev));
  } else {
    // Scratch too small to stage all contributions (only possible for tiny
    // vectors where any-source buys nothing): fixed-order fold through one
    // pipeline sub-chunk — equally deterministic.
    CGX_CHECK_GE(scratch.size(), std::min(mine.size(), kPipelineFloats));
    for (int p = 0; p < n; ++p) {
      if (p == r) continue;
      recv_add_pipelined(comm, p, mine, scratch, tag);
    }
  }
}

}  // namespace

const char* reduction_scheme_name(ReductionScheme s) {
  switch (s) {
    case ReductionScheme::ScatterReduceAllgather:
      return "SRA";
    case ReductionScheme::Ring:
      return "Ring";
    case ReductionScheme::Tree:
      return "Tree";
  }
  return "?";
}

std::pair<std::size_t, std::size_t> chunk_range(std::size_t d, int n, int i) {
  CGX_CHECK_GT(n, 0);
  CGX_CHECK(i >= 0 && i < n);
  const std::size_t nn = static_cast<std::size_t>(n);
  const std::size_t ii = static_cast<std::size_t>(i);
  const std::size_t base = d / nn;
  const std::size_t rem = d % nn;
  const std::size_t first = ii * base + std::min(ii, rem);
  const std::size_t len = base + (ii < rem ? 1 : 0);
  return {first, first + len};
}

void allreduce(Comm& comm, std::span<float> data, ReductionScheme scheme) {
  std::vector<float> scratch(data.size());
  allreduce(comm, data, scheme, scratch);
}

void allreduce(Comm& comm, std::span<float> data, ReductionScheme scheme,
               std::span<float> scratch) {
  switch (scheme) {
    case ReductionScheme::ScatterReduceAllgather:
      allreduce_sra(comm, data, scratch);
      return;
    case ReductionScheme::Ring:
      allreduce_ring(comm, data, scratch);
      return;
    case ReductionScheme::Tree:
      allreduce_tree(comm, data, scratch);
      return;
  }
}

void allreduce_sra(Comm& comm, std::span<float> data) {
  std::vector<float> scratch(data.size());
  allreduce_sra(comm, data, scratch);
}

void allreduce_sra(Comm& comm, std::span<float> data,
                   std::span<float> scratch) {
  const int n = comm.size();
  const int r = comm.rank();
  if (n == 1 || data.empty()) return;

  // Round 1 (Scatter-Reduce): rank j collects everyone's chunk j,
  // pipelined and in arrival order.
  scatter_reduce_phase(comm, data, scratch, kSraScatterTag);

  // Round 2 (Allgather): broadcast the reduced chunk to all peers; receive
  // the other reduced chunks into their (disjoint) slots as they arrive —
  // placement is by sender identity, so arrival order is irrelevant to the
  // final bytes.
  const auto [mine_first, mine_last] = chunk_range(data.size(), n, r);
  const std::span<const float> mine =
      data.subspan(mine_first, mine_last - mine_first);
  if (comm.supports_direct_exchange()) {
    // The reduced chunk is final: post it once per peer and let each peer
    // copy it straight out; the round-1 waits above mean no peer can still
    // be reading the regions we now overwrite.
    for (int p = 0; p < n; ++p) {
      if (p == r) continue;
      comm.direct_post(p, mine, kSraGatherTag);
    }
    for (int p = 0; p < n; ++p) {
      if (p == r) continue;
      const auto [first, last] = chunk_range(data.size(), n, p);
      comm.direct_pull(p, data.subspan(first, last - first), /*add=*/false,
                       kSraGatherTag);
    }
    for (int p = 0; p < n; ++p) {
      if (p == r) continue;
      comm.direct_wait(p, kSraGatherTag);
    }
    return;
  }
  for (int p = 0; p < n; ++p) {
    if (p == r) continue;
    send_pipelined(comm, p, mine, kSraGatherTag);
  }
  for_each_peer_by_arrival(comm, kSraGatherTag, [&](int p) {
    const auto [first, last] = chunk_range(data.size(), n, p);
    recv_pipelined(comm, p, data.subspan(first, last - first),
                   kSraGatherTag);
  });
}

void allreduce_ring(Comm& comm, std::span<float> data) {
  std::vector<float> scratch(data.size());
  allreduce_ring(comm, data, scratch);
}

void allreduce_ring(Comm& comm, std::span<float> data,
                    std::span<float> scratch) {
  const int n = comm.size();
  const int r = comm.rank();
  if (n == 1 || data.empty()) return;
  const int right = (r + 1) % n;
  const int left = (r - 1 + n) % n;

  // Phase 1: reduce-scatter around the ring. After step s, the chunk a rank
  // just received carries partial sums from s+1 ranks; after n-1 steps rank
  // r owns the fully reduced chunk (r+1) mod n. Each step streams its chunk
  // in pipeline sub-chunks so the add of sub-chunk k overlaps the transit
  // of sub-chunk k+1.
  const bool direct = comm.supports_direct_exchange();
  for (int s = 0; s < n - 1; ++s) {
    const int send_idx = (r - s + n) % n;
    const int recv_idx = (r - s - 1 + n) % n;
    const auto [sf, sl] = chunk_range(data.size(), n, send_idx);
    const auto [rf, rl] = chunk_range(data.size(), n, recv_idx);
    if (direct) {
      // Post (non-blocking), reduce straight out of the left neighbour's
      // chunk, then wait for the right neighbour to finish reading ours —
      // the sent and received chunks are disjoint, and the ack keeps the
      // next step from mutating a chunk a neighbour is still reading.
      comm.direct_post(right, data.subspan(sf, sl - sf), kRingReduceTag);
      comm.direct_pull(left, data.subspan(rf, rl - rf), /*add=*/true,
                       kRingReduceTag);
      comm.direct_wait(right, kRingReduceTag);
      continue;
    }
    send_pipelined(comm, right, data.subspan(sf, sl - sf), kRingReduceTag);
    CGX_CHECK_GE(scratch.size(), std::min(rl - rf, kPipelineFloats));
    recv_add_pipelined(comm, left, data.subspan(rf, rl - rf), scratch,
                       kRingReduceTag);
  }
  // Phase 2: allgather the reduced chunks around the ring.
  for (int s = 0; s < n - 1; ++s) {
    const int send_idx = (r + 1 - s + n) % n;
    const int recv_idx = (r - s + n) % n;
    const auto [sf, sl] = chunk_range(data.size(), n, send_idx);
    const auto [rf, rl] = chunk_range(data.size(), n, recv_idx);
    if (direct) {
      comm.direct_post(right, data.subspan(sf, sl - sf), kRingGatherTag);
      comm.direct_pull(left, data.subspan(rf, rl - rf), /*add=*/false,
                       kRingGatherTag);
      comm.direct_wait(right, kRingGatherTag);
      continue;
    }
    send_pipelined(comm, right, data.subspan(sf, sl - sf), kRingGatherTag);
    recv_pipelined(comm, left, data.subspan(rf, rl - rf), kRingGatherTag);
  }
}

void allreduce_tree(Comm& comm, std::span<float> data) {
  std::vector<float> scratch(data.size());
  allreduce_tree(comm, data, scratch);
}

void allreduce_tree(Comm& comm, std::span<float> data,
                    std::span<float> scratch) {
  const int n = comm.size();
  const int r = comm.rank();
  if (n == 1 || data.empty()) return;

  // Binomial-tree reduce to rank 0.
  int top_mask = 1;
  while (top_mask < n) top_mask <<= 1;
  top_mask >>= 1;

  const bool direct = comm.supports_direct_exchange();
  CGX_CHECK_GE(scratch.size(), std::min(data.size(), kPipelineFloats));
  for (int mask = top_mask; mask >= 1; mask >>= 1) {
    if (r >= mask && r < 2 * mask) {
      if (direct) {
        // A sender's gradient is final for the rest of the reduce: post it
        // and wait for the parent's fused pull before moving on.
        comm.direct_post(r - mask, data, kTreeReduceTag);
        comm.direct_wait(r - mask, kTreeReduceTag);
      } else {
        send_pipelined(comm, r - mask, data, kTreeReduceTag);
      }
    } else if (r < mask && r + mask < n) {
      if (direct) {
        comm.direct_pull(r + mask, data, /*add=*/true, kTreeReduceTag);
      } else {
        recv_add_pipelined(comm, r + mask, data, scratch, kTreeReduceTag);
      }
    }
  }
  // Binomial broadcast of the result back down.
  for (int mask = 1; mask < n; mask <<= 1) {
    if (r < mask && r + mask < n) {
      if (direct) {
        comm.direct_post(r + mask, data, kTreeBcastTag);
        comm.direct_wait(r + mask, kTreeBcastTag);
      } else {
        send_pipelined(comm, r + mask, data, kTreeBcastTag);
      }
    } else if (r >= mask && r < 2 * mask) {
      if (direct) {
        comm.direct_pull(r - mask, data, /*add=*/false, kTreeBcastTag);
      } else {
        recv_pipelined(comm, r - mask, data, kTreeBcastTag);
      }
    }
  }
}

void broadcast(Comm& comm, std::span<float> data, int root) {
  const int n = comm.size();
  if (n == 1 || data.empty()) return;
  CGX_CHECK(root >= 0 && root < n);
  // Rotate ranks so the tree is rooted at `root`.
  const bool direct = comm.supports_direct_exchange();
  const int vr = (comm.rank() - root + n) % n;
  for (int mask = 1; mask < n; mask <<= 1) {
    if (vr < mask && vr + mask < n) {
      if (direct) {
        comm.direct_post((vr + mask + root) % n, data, kBcastTag);
        comm.direct_wait((vr + mask + root) % n, kBcastTag);
      } else {
        send_pipelined(comm, (vr + mask + root) % n, data, kBcastTag);
      }
    } else if (vr >= mask && vr < 2 * mask) {
      if (direct) {
        comm.direct_pull((vr - mask + root) % n, data, /*add=*/false,
                         kBcastTag);
      } else {
        recv_pipelined(comm, (vr - mask + root) % n, data, kBcastTag);
      }
    }
  }
}

void allgather(Comm& comm, std::span<const float> in, std::span<float> out) {
  const int n = comm.size();
  const int r = comm.rank();
  CGX_CHECK_EQ(out.size(), in.size() * static_cast<std::size_t>(n));
  std::span<float> my_slot = out.subspan(in.size() * r, in.size());
  tensor::copy(in, my_slot);
  if (n == 1) return;
  if (comm.supports_direct_exchange()) {
    for (int p = 0; p < n; ++p) {
      if (p == r) continue;
      comm.direct_post(p, in, kAllgatherTag);
    }
    for (int p = 0; p < n; ++p) {
      if (p == r) continue;
      comm.direct_pull(p, out.subspan(in.size() * p, in.size()),
                       /*add=*/false, kAllgatherTag);
    }
    for (int p = 0; p < n; ++p) {
      if (p == r) continue;
      comm.direct_wait(p, kAllgatherTag);
    }
    return;
  }
  for (int p = 0; p < n; ++p) {
    if (p == r) continue;
    send_pipelined(comm, p, in, kAllgatherTag);
  }
  for_each_peer_by_arrival(comm, kAllgatherTag, [&](int p) {
    recv_pipelined(comm, p, out.subspan(in.size() * p, in.size()),
                   kAllgatherTag);
  });
}

void reduce_scatter(Comm& comm, std::span<float> data) {
  std::vector<float> scratch(data.size());
  reduce_scatter(comm, data, scratch);
}

void reduce_scatter(Comm& comm, std::span<float> data,
                    std::span<float> scratch) {
  const int n = comm.size();
  if (n == 1 || data.empty()) return;
  scatter_reduce_phase(comm, data, scratch, kReduceScatterTag);
}

}  // namespace cgx::comm
