#include "comm/world.h"

#include <thread>
#include <vector>

#include "util/numa.h"

namespace cgx::comm {

void run_world(Transport& transport, const std::function<void(Comm&)>& fn) {
  const int n = transport.world_size();
  CGX_CHECK_GT(n, 0);
  util::Barrier barrier(static_cast<std::size_t>(n));
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(n));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    threads.emplace_back([r, &transport, &barrier, &fn, &errors] {
      try {
        // Home the device thread on its rank's NUMA node (no-op on
        // single-node machines or CGX_NUMA=off) so the buffers it
        // first-touches — and the collectives it runs — stay node-local.
        // The rank arena is NOT blanket-bound here: fn() may churn transient
        // tensors (nn layers rebuild activations every step), which must
        // stay on the heap; only the grow-only engine state binds arenas.
        util::numa::pin_current_thread_for_rank(r);
        Comm comm(r, transport, barrier);
        fn(comm);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
      }
    });
  }
  // Join everyone before rethrowing: a bounded CommPolicy guarantees the
  // surviving ranks' waits expire, so no join can hang on a dead peer.
  for (auto& t : threads) t.join();
  for (int r = 0; r < n; ++r) {
    std::exception_ptr err = errors[static_cast<std::size_t>(r)];
    if (!err) continue;
    std::string what = "unknown exception";
    try {
      std::rethrow_exception(err);
    } catch (const std::exception& e) {
      what = e.what();
    } catch (...) {
    }
    throw WorkerError(r, std::move(what), std::move(err));
  }
}

}  // namespace cgx::comm
