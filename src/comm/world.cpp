#include "comm/world.h"

#include <thread>
#include <vector>

namespace cgx::comm {

void run_world(Transport& transport, const std::function<void(Comm&)>& fn) {
  const int n = transport.world_size();
  CGX_CHECK_GT(n, 0);
  util::Barrier barrier(static_cast<std::size_t>(n));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    threads.emplace_back([r, &transport, &barrier, &fn] {
      Comm comm(r, transport, barrier);
      fn(comm);
    });
  }
  for (auto& t : threads) t.join();
}

}  // namespace cgx::comm
