#include "comm/world.h"

#include <mutex>
#include <thread>
#include <vector>

#include "comm/fault.h"
#include "comm/membership.h"
#include "util/numa.h"

namespace cgx::comm {

// ---------------------------------------------- Comm elastic translation

int Comm::dense_rank_() const {
  return membership_->view()->dense_rank(rank_);
}

int Comm::active_count_() const { return membership_->active_count(); }

int Comm::to_global_(int dense) const {
  return membership_->view()->global_rank(dense);
}

int Comm::select_source_elastic(std::span<const int> candidates, int tag) {
  // Translate dense candidates to transport (global) ranks on the stack —
  // this sits on the any-source hot path. Elastic worlds are capped at
  // Membership::kMaxElasticWorld, well under the buffer.
  constexpr std::size_t kMaxCandidates = 128;
  CGX_CHECK_LE(candidates.size(), kMaxCandidates);
  int global[kMaxCandidates];
  const WorldView* v = membership_->view();
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    global[i] = v->global_rank(candidates[i]);
  }
  const int picked = transport_.select_source(
      rank_, std::span<const int>(global, candidates.size()), tag);
  return v->dense_rank(picked);
}

void Comm::barrier() {
  const CommPolicy& pol = transport_.policy();
  if (!pol.bounded()) {
    if (membership_ != nullptr) {
      membership_->step_barrier(std::chrono::milliseconds{0});  // unbounded
      return;
    }
    barrier_.arrive_and_wait();
    return;
  }
  if (!try_barrier(pol.timeout)) {
    throw TimeoutError(-1, rank_, -1, pol.timeout, "world barrier");
  }
}

bool Comm::try_barrier(std::chrono::milliseconds timeout) {
  if (membership_ != nullptr) return membership_->step_barrier(timeout);
  return barrier_.arrive_and_wait_for(timeout);
}

// --------------------------------------------------------------- run_world

void run_world(Transport& transport, const std::function<void(Comm&)>& fn) {
  run_world(transport, fn, WorldOptions{});
}

void run_world(Transport& transport, const std::function<void(Comm&)>& fn,
               const WorldOptions& options) {
  const int n = transport.world_size();
  CGX_CHECK_GT(n, 0);
  Membership* membership = options.membership;
  util::Barrier barrier(static_cast<std::size_t>(n));
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(n));
  // Guarded by threads_mu: a dying elastic worker may append a successor
  // thread for its own rank while the main thread is already joining.
  std::mutex threads_mu;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(n) * 2);

  // Self-referential so a crashed rank with a scheduled rejoin can launch a
  // successor incarnation of itself running the same body.
  std::function<void(int)> worker = [&](int r) {
    try {
      // Home the device thread on its rank's NUMA node (no-op on
      // single-node machines or CGX_NUMA=off) so the buffers it
      // first-touches — and the collectives it runs — stay node-local.
      // The rank arena is NOT blanket-bound here: fn() may churn transient
      // tensors (nn layers rebuild activations every step), which must
      // stay on the heap; only the grow-only engine state binds arenas.
      util::numa::pin_current_thread_for_rank(r);
      Comm comm(r, transport, barrier, membership);
      fn(comm);
    } catch (const FaultInjectedError&) {
      if (membership != nullptr) {
        // A survivable crash: publish to the oracle BEFORE any successor
        // exists, so survivors classify the stall correctly, then (when a
        // rejoin is scheduled) hand the rank a fresh incarnation that will
        // wait for admission. No error is recorded — the world lives on.
        membership->mark_rank_failed(r, std::current_exception());
        if (membership->rejoin_scheduled(r)) {
          std::lock_guard<std::mutex> lock(threads_mu);
          threads.emplace_back([&worker, r] { worker(r); });
        }
        return;
      }
      errors[static_cast<std::size_t>(r)] = std::current_exception();
    } catch (...) {
      errors[static_cast<std::size_t>(r)] = std::current_exception();
    }
  };

  {
    std::lock_guard<std::mutex> lock(threads_mu);
    for (int r = 0; r < n; ++r) {
      threads.emplace_back([&worker, r] { worker(r); });
    }
  }
  // Join everyone before rethrowing: a bounded CommPolicy guarantees the
  // surviving ranks' waits expire, so no join can hang on a dead peer.
  // Joins go one-at-a-time under the lock's protection because the vector
  // may still grow (successor threads) while we drain it.
  std::size_t joined = 0;
  for (;;) {
    std::thread t;
    {
      std::lock_guard<std::mutex> lock(threads_mu);
      if (joined == threads.size()) break;
      t = std::move(threads[joined++]);
    }
    t.join();
  }
  for (int r = 0; r < n; ++r) {
    std::exception_ptr err = errors[static_cast<std::size_t>(r)];
    if (!err) continue;
    std::string what = "unknown exception";
    try {
      std::rethrow_exception(err);
    } catch (const std::exception& e) {
      what = e.what();
    } catch (...) {
    }
    throw WorkerError(r, std::move(what), std::move(err));
  }
}

}  // namespace cgx::comm
