// Point-to-point transport abstraction between simulated devices.
//
// The paper's CGX supports three communication backends (§3/§4): its own
// UNIX shared-memory backend (SHM), GPU-aware MPI, and NCCL. In this
// reproduction every "GPU" is a device thread inside one process, and each
// backend is a faithful in-process analogue:
//
//   ShmTransport  — pre-registered per-pair ring segments, copy-in/copy-out
//                   with condition-variable signalling (stands in for CUDA
//                   IPC events); single-node only, lowest per-message
//                   overhead.
//   MpiTransport  — central tagged mailbox; GPU-aware MPI must synchronise
//                   host and device (§4 "Backend Details") so the profile
//                   charges two staging copies per message; highest
//                   overhead.
//   NcclTransport — per-pair FIFO channels that split messages into fixed
//                   chunks (NCCL's pipelined protocol); medium overhead plus
//                   a per-chunk kernel-launch cost.
//
// Functional behaviour (byte movement, ordering) is real; *timing* is
// attributed later by simgpu::CostModel using each transport's
// TransportProfile. A TrafficRecorder counts actual bytes per link so tests
// can cross-check analytic communication-volume formulas against what the
// collectives really transmitted.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "comm/policy.h"

namespace cgx::comm {

class FaultInjector;  // wire/rank fault model; see comm/fault.h

// Timing-relevant constants of a backend, consumed by simgpu::CostModel.
// Values are calibrated so the backend ranking and gap match paper Fig. 11
// (SHM fastest, up to ~33% over NCCL; MPI slowest).
struct TransportProfile {
  std::string name;
  double per_message_overhead_us = 0.0;  // software path per p2p message
  double per_chunk_overhead_us = 0.0;    // kernel-launch-like cost per chunk
  std::size_t chunk_bytes = 0;           // 0 = no chunking
  int extra_copies = 0;                  // staging copies on top of the wire
  double staging_gbps = 10.0;            // rate of those copies (host path
                                         // ~10, device-side FIFO ~200)
  bool single_node_only = false;
  // GPU-aware MPI must synchronise host and device around each transfer
  // (§4 "Backend Details"), which stalls the compute stream: communication
  // cannot overlap the backward pass on this backend.
  bool requires_host_sync = false;
};

// Counts real traffic per directed link. A dense world×world array of
// per-link atomic counters: record() on the send hot path is two relaxed
// fetch_adds on the (src,dst) cell — no lock, no map node, no contention
// between different links.
//
// Optionally also counts bytes per TAG (enable_tag_accounting): a dense
// array of per-tag atomic byte counters, one extra relaxed fetch_add per
// message when enabled and a single branch when not. The bucketed engine's
// tests and benches use this to attribute wire volume to individual fusion
// buckets, whose collectives run on disjoint tag ranges (comm/tagspace.h).
class TrafficRecorder {
 public:
  explicit TrafficRecorder(int world_size);

  void record(int src, int dst, std::size_t bytes) {
    record(src, dst, bytes, /*tag=*/-1);
  }
  void record(int src, int dst, std::size_t bytes, int tag);
  void reset();

  std::size_t total_bytes() const;
  std::size_t total_messages() const;
  std::size_t bytes_between(int src, int dst) const;
  std::size_t bytes_sent_by(int src) const;

  // Allocates `tag_slots` per-tag byte counters (call before traffic flows;
  // not thread-safe against concurrent record()). Off by default.
  void enable_tag_accounting(int tag_slots);
  bool tag_accounting_enabled() const { return tag_slots_ > 0; }
  std::size_t bytes_for_tag(int tag) const;
  // Sum over the inclusive tag range [lo, hi].
  std::size_t bytes_for_tag_range(int lo, int hi) const;

 private:
  struct LinkStats {
    std::atomic<std::size_t> bytes{0};
    std::atomic<std::size_t> messages{0};
  };
  std::size_t index(int src, int dst) const;

  const int world_size_;
  std::vector<LinkStats> links_;  // world_size^2, row-major by src
  int tag_slots_ = 0;
  std::unique_ptr<std::atomic<std::size_t>[]> tag_bytes_;
};

class Transport {
 public:
  explicit Transport(int world_size)
      : world_size_(world_size), recorder_(world_size) {}
  virtual ~Transport() = default;

  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  int world_size() const { return world_size_; }

  // Blocking buffered send: enqueues a copy of `data` for (src -> dst, tag).
  // Never blocks on the receiver while the message fits the channel segment
  // (channels are buffered), so SPMD exchange patterns cannot deadlock;
  // over-segment messages stream and need the receiver to drain.
  virtual void send(int src, int dst, std::span<const std::byte> data,
                    int tag) = 0;

  // Blocking receive into `data`; the matching message must have exactly
  // data.size() bytes (sizes are always known to receivers in CGX's
  // protocols — compressed sizes are computable from the layer config).
  virtual void recv(int dst, int src, std::span<std::byte> data, int tag) = 0;

  // Fused receive+reduce: element-wise adds the matching message — which
  // must hold exactly data.size() floats — into `data`. Bit-identical to a
  // recv into scratch followed by an in-order add, but lets a backend reduce
  // straight out of its channel storage, skipping the scratch bounce (the
  // paper's SHM backend reduces directly from the peer's segment). Only
  // valid when supports_recv_add() is true; callers otherwise fall back to
  // recv + add.
  virtual bool supports_recv_add() const { return false; }
  virtual void recv_add(int dst, int src, std::span<float> data, int tag);

  // Peer-direct rendezvous exchange — the in-process analogue of CUDA IPC
  // P2P direct access, which the paper's SHM backend uses to let a GPU
  // reduce straight out of a peer's exported buffer (§4): instead of
  // copying the payload through a channel, the sender posts a descriptor of
  // its span and the receiver copies (or element-wise adds) directly from
  // the source memory — one pass, no intermediate bytes at all.
  //
  // Protocol contract (what makes this safe and deadlock-free):
  //   - direct_post is non-blocking: it publishes {pointer, length} for
  //     (src -> dst, tag) and returns. The posted span must stay unmodified
  //     until the matching direct_wait returns.
  //   - direct_pull blocks for the peer's post, copies/adds the peer's span
  //     into `data` directly, then acknowledges consumption.
  //   - direct_wait blocks until dst has pulled (and acked) this rank's
  //     post; only then may the posted span be written again.
  // Only valid when supports_direct_exchange() is true — single-node
  // shared-address-space backends; MPI and NCCL stay on the channel path.
  virtual bool supports_direct_exchange() const { return false; }
  // Per-link refinement: a topology-aware transport may offer peer-direct
  // only between ranks sharing a node (the simulated NIC cannot export
  // device memory across nodes). Both endpoints of an exchange must agree,
  // so callers pick the path with THIS query for the specific pair; the
  // global form above stays the "every pair" capability. Default: the
  // global answer, so flat transports are unchanged.
  virtual bool supports_direct_exchange(int a, int b) const {
    (void)a;
    (void)b;
    return supports_direct_exchange();
  }
  virtual void direct_post(int src, int dst, std::span<const float> data,
                           int tag);
  virtual void direct_pull(int dst, int src, std::span<float> data, bool add,
                           int tag);
  // Fused two-peer reduce: data += src1's post, then += src2's post —
  // element order identical to two sequential direct_pulls (bit-exactness
  // contract), but a shared-memory backend can fold both peers in one pass
  // over `data`. The default is exactly the two sequential pulls, so
  // fault-wrapping and channel transports keep their semantics untouched.
  virtual void direct_pull2(int dst, int src1, int src2,
                            std::span<float> data, int tag);
  virtual void direct_wait(int src, int dst, int tag);

  // Blocking: returns an element of `candidates` that has bytes pending for
  // (dst, tag), waiting until one does. Collectives use it to take
  // scatter-reduce contributions in arrival order so one slow peer does not
  // stall the reduction. The base implementation returns the first
  // candidate (fixed order) — always correct, never faster.
  virtual int select_source(int dst, std::span<const int> candidates,
                            int tag);

  virtual const TransportProfile& profile() const = 0;

  // Virtual so decorators (FaultyTransport) can expose the wrapped
  // backend's accounting instead of an empty shadow copy.
  virtual TrafficRecorder& recorder() { return recorder_; }
  virtual const TrafficRecorder& recorder() const { return recorder_; }

  // Installs the reliability policy governing every blocking wait of this
  // transport. The default (see CommPolicy) reproduces the seed semantics:
  // wait forever, no checksums. Not thread-safe against in-flight traffic;
  // set before run_world starts (or between quiesced steps).
  virtual void set_policy(const CommPolicy& policy) { policy_ = policy; }
  const CommPolicy& policy() const { return policy_; }

  // Attaches a wire-fault injector to the transport's receive paths (the
  // channel copy-out and the peer-direct pull). Null detaches. Backends
  // without a tappable wire ignore this.
  virtual void set_fault_injector(FaultInjector* injector) { (void)injector; }

  // Drops every buffered-but-unconsumed message destined for `rank` and
  // clears link poisoning on those channels. Only safe while the fabric is
  // quiesced (the engine's round retry calls it between agreement barriers).
  virtual void reset_inbound(int rank) { (void)rank; }

  // Elastic-membership world epoch (comm/membership.h). Frames pushed after
  // set_epoch are stamped with the new epoch's low bits; inbound frames
  // stamped with any other epoch are discarded at the ring layer
  // (stale_frames_discarded counts them). Only safe on a quiesced fabric —
  // the membership delta leader calls it between the recovery gates.
  // Backends without frame stamping ignore it (epoch fencing is defence in
  // depth on top of reset_inbound, not a correctness requirement for them).
  virtual void set_epoch(std::uint64_t epoch) { (void)epoch; }
  virtual std::uint64_t epoch() const { return 0; }
  virtual std::uint64_t stale_frames_discarded() const { return 0; }

  // Per-link failure/latency accounting, populated by the deadline and
  // checksum machinery; feeds the engine's StepReport.
  virtual HealthMonitor& health() { return health_; }
  virtual const HealthMonitor& health() const { return health_; }

 protected:
  const int world_size_;
  TrafficRecorder recorder_;
  CommPolicy policy_;
  HealthMonitor health_{world_size_};
};

}  // namespace cgx::comm
