// Point-to-point transport abstraction between simulated devices.
//
// The paper's CGX supports three communication backends (§3/§4): its own
// UNIX shared-memory backend (SHM), GPU-aware MPI, and NCCL. In this
// reproduction every "GPU" is a device thread inside one process, and each
// backend is a faithful in-process analogue:
//
//   ShmTransport  — pre-registered per-pair segments, copy-in/copy-out with
//                   condition-variable signalling (stands in for CUDA IPC
//                   events); single-node only, lowest per-message overhead.
//   MpiTransport  — central tagged mailbox with an extra host-staging copy
//                   per message (GPU-aware MPI must synchronise host and
//                   device, §4 "Backend Details"); highest overhead.
//   NcclTransport — per-pair FIFO channels that split messages into fixed
//                   chunks (NCCL's pipelined protocol); medium overhead plus
//                   a per-chunk kernel-launch cost.
//
// Functional behaviour (byte movement, ordering) is real; *timing* is
// attributed later by simgpu::CostModel using each transport's
// TransportProfile. A TrafficRecorder counts actual bytes per link so tests
// can cross-check analytic communication-volume formulas against what the
// collectives really transmitted.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <span>
#include <string>
#include <vector>

namespace cgx::comm {

// Timing-relevant constants of a backend, consumed by simgpu::CostModel.
// Values are calibrated so the backend ranking and gap match paper Fig. 11
// (SHM fastest, up to ~33% over NCCL; MPI slowest).
struct TransportProfile {
  std::string name;
  double per_message_overhead_us = 0.0;  // software path per p2p message
  double per_chunk_overhead_us = 0.0;    // kernel-launch-like cost per chunk
  std::size_t chunk_bytes = 0;           // 0 = no chunking
  int extra_copies = 0;                  // staging copies on top of the wire
  double staging_gbps = 10.0;            // rate of those copies (host path
                                         // ~10, device-side FIFO ~200)
  bool single_node_only = false;
  // GPU-aware MPI must synchronise host and device around each transfer
  // (§4 "Backend Details"), which stalls the compute stream: communication
  // cannot overlap the backward pass on this backend.
  bool requires_host_sync = false;
};

// Counts real traffic per directed link. Thread-safe.
class TrafficRecorder {
 public:
  void record(int src, int dst, std::size_t bytes);
  void reset();

  std::size_t total_bytes() const;
  std::size_t total_messages() const;
  std::size_t bytes_between(int src, int dst) const;
  std::size_t bytes_sent_by(int src) const;

 private:
  struct LinkStats {
    std::size_t bytes = 0;
    std::size_t messages = 0;
  };
  mutable std::mutex mutex_;
  std::map<std::pair<int, int>, LinkStats> links_;
};

class Transport {
 public:
  explicit Transport(int world_size) : world_size_(world_size) {}
  virtual ~Transport() = default;

  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  int world_size() const { return world_size_; }

  // Blocking buffered send: enqueues a copy of `data` for (src -> dst, tag).
  // Never blocks on the receiver (channels are buffered), so SPMD exchange
  // patterns cannot deadlock.
  virtual void send(int src, int dst, std::span<const std::byte> data,
                    int tag) = 0;

  // Blocking receive into `data`; the matching message must have exactly
  // data.size() bytes (sizes are always known to receivers in CGX's
  // protocols — compressed sizes are computable from the layer config).
  virtual void recv(int dst, int src, std::span<std::byte> data, int tag) = 0;

  virtual const TransportProfile& profile() const = 0;

  TrafficRecorder& recorder() { return recorder_; }
  const TrafficRecorder& recorder() const { return recorder_; }

 protected:
  const int world_size_;
  TrafficRecorder recorder_;
};

}  // namespace cgx::comm
