#include "comm/policy.h"

#include <sstream>

#include "util/check.h"

namespace cgx::comm {
namespace {

std::string link_name(int src, int dst, int tag) {
  std::ostringstream os;
  os << "link (src=" << src << " -> dst=" << dst << ", tag=" << tag << ")";
  return os.str();
}

std::string timeout_what(int src, int dst, int tag,
                         std::chrono::milliseconds waited, const char* where) {
  std::ostringstream os;
  os << "TimeoutError: " << where << " on " << link_name(src, dst, tag)
     << " gave up after " << waited.count() << " ms";
  return os.str();
}

std::string checksum_what(int src, int dst, int tag, int attempts) {
  std::ostringstream os;
  os << "ChecksumError: frame on " << link_name(src, dst, tag)
     << " failed CRC32 verification after " << attempts
     << " delivery attempts";
  return os.str();
}

}  // namespace

TimeoutError::TimeoutError(int src, int dst, int tag,
                           std::chrono::milliseconds waited, const char* where)
    : CommError(timeout_what(src, dst, tag, waited, where), src, dst, tag),
      waited(waited) {}

ChecksumError::ChecksumError(int src, int dst, int tag, int attempts)
    : CommError(checksum_what(src, dst, tag, attempts), src, dst, tag),
      attempts(attempts) {}

// -------------------------------------------------------------- health

HealthMonitor::HealthMonitor(int world_size)
    : world_size_(world_size),
      links_(static_cast<std::size_t>(world_size) *
             static_cast<std::size_t>(world_size)) {
  CGX_CHECK_GT(world_size, 0);
}

std::size_t HealthMonitor::index(int src, int dst) const {
  CGX_CHECK(src >= 0 && src < world_size_);
  CGX_CHECK(dst >= 0 && dst < world_size_);
  return static_cast<std::size_t>(src) *
             static_cast<std::size_t>(world_size_) +
         static_cast<std::size_t>(dst);
}

void HealthMonitor::record_success(int src, int dst, double wait_us) {
  Link& l = links_[index(src, dst)];
  l.consecutive_failures.store(0, std::memory_order_relaxed);
  double prev = l.latency_ewma_us.load(std::memory_order_relaxed);
  double next;
  do {
    next = prev == 0.0 ? wait_us : prev + (wait_us - prev) / 8.0;
  } while (!l.latency_ewma_us.compare_exchange_weak(
      prev, next, std::memory_order_relaxed));
}

void HealthMonitor::record_timeout(int src, int dst) {
  // An any-source timeout has no single culprit link; callers pass -1.
  if (src < 0 || dst < 0) return;
  Link& l = links_[index(src, dst)];
  l.consecutive_failures.fetch_add(1, std::memory_order_relaxed);
  l.timeouts.fetch_add(1, std::memory_order_relaxed);
}

void HealthMonitor::record_retransmit(int src, int dst) {
  Link& l = links_[index(src, dst)];
  l.consecutive_failures.fetch_add(1, std::memory_order_relaxed);
  l.retransmits.fetch_add(1, std::memory_order_relaxed);
}

void HealthMonitor::record_wire_drop(int src, int dst) {
  Link& l = links_[index(src, dst)];
  l.wire_drops.fetch_add(1, std::memory_order_relaxed);
}

void HealthMonitor::record_fallback(int src, int dst) {
  links_[index(src, dst)].fallbacks.fetch_add(1, std::memory_order_relaxed);
}

void HealthMonitor::reset() {
  for (Link& l : links_) {
    l.consecutive_failures.store(0, std::memory_order_relaxed);
    l.timeouts.store(0, std::memory_order_relaxed);
    l.retransmits.store(0, std::memory_order_relaxed);
    l.wire_drops.store(0, std::memory_order_relaxed);
    l.fallbacks.store(0, std::memory_order_relaxed);
    l.latency_ewma_us.store(0.0, std::memory_order_relaxed);
    l.quarantined.store(false, std::memory_order_relaxed);
  }
}

void HealthMonitor::quarantine_rank(int rank) {
  CGX_CHECK(rank >= 0 && rank < world_size_);
  for (int peer = 0; peer < world_size_; ++peer) {
    links_[index(rank, peer)].quarantined.store(true,
                                                std::memory_order_relaxed);
    links_[index(peer, rank)].quarantined.store(true,
                                                std::memory_order_relaxed);
  }
}

void HealthMonitor::clear_quarantine(int rank) {
  CGX_CHECK(rank >= 0 && rank < world_size_);
  for (int peer = 0; peer < world_size_; ++peer) {
    links_[index(rank, peer)].quarantined.store(false,
                                                std::memory_order_relaxed);
    links_[index(peer, rank)].quarantined.store(false,
                                                std::memory_order_relaxed);
  }
}

bool HealthMonitor::is_quarantined(int src, int dst) const {
  return links_[index(src, dst)].quarantined.load(std::memory_order_relaxed);
}

std::size_t HealthMonitor::quarantined_links() const {
  std::size_t total = 0;
  for (const Link& l : links_) {
    if (l.quarantined.load(std::memory_order_relaxed)) ++total;
  }
  return total;
}

std::uint64_t HealthMonitor::total_timeouts() const {
  std::uint64_t total = 0;
  for (const Link& l : links_) {
    total += l.timeouts.load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t HealthMonitor::total_retransmits() const {
  std::uint64_t total = 0;
  for (const Link& l : links_) {
    total += l.retransmits.load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t HealthMonitor::total_wire_drops() const {
  std::uint64_t total = 0;
  for (const Link& l : links_) {
    total += l.wire_drops.load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t HealthMonitor::total_fallbacks() const {
  std::uint64_t total = 0;
  for (const Link& l : links_) {
    total += l.fallbacks.load(std::memory_order_relaxed);
  }
  return total;
}

}  // namespace cgx::comm
