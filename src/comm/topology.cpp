#include "comm/topology.h"

#include <cstdlib>
#include <stdexcept>

namespace cgx::comm {
namespace {

int parse_int(const std::string& s, std::size_t begin, std::size_t end) {
  if (begin >= end) throw std::invalid_argument("CGX_TOPO: empty number");
  long v = 0;
  for (std::size_t i = begin; i < end; ++i) {
    char c = s[i];
    if (c < '0' || c > '9') {
      throw std::invalid_argument("CGX_TOPO: expected digit, got '" +
                                  std::string(1, c) + "' in \"" + s + "\"");
    }
    v = v * 10 + (c - '0');
    if (v > 1 << 24) throw std::invalid_argument("CGX_TOPO: number too large");
  }
  return static_cast<int>(v);
}

}  // namespace

Topology Topology::single_node(int world) {
  return Topology(std::vector<int>(static_cast<std::size_t>(world), 0));
}

Topology Topology::grouped(int world, int ranks_per_node) {
  if (ranks_per_node <= 0) {
    throw std::invalid_argument("Topology::grouped: ranks_per_node must be > 0");
  }
  std::vector<int> node_of(static_cast<std::size_t>(world));
  for (int r = 0; r < world; ++r) {
    node_of[static_cast<std::size_t>(r)] = r / ranks_per_node;
  }
  return Topology(std::move(node_of));
}

Topology Topology::parse(const std::string& spec, int world) {
  if (spec.empty()) return single_node(world);
  std::size_t x = spec.find('x');
  if (x == std::string::npos) x = spec.find('X');
  if (x != std::string::npos && spec.find(',') == std::string::npos) {
    int nodes = parse_int(spec, 0, x);
    int rpn = parse_int(spec, x + 1, spec.size());
    if (nodes <= 0 || rpn <= 0 || nodes * rpn != world) {
      throw std::invalid_argument("CGX_TOPO: \"" + spec + "\" does not cover world " +
                                  std::to_string(world));
    }
    return grouped(world, rpn);
  }
  std::vector<int> node_of;
  node_of.reserve(static_cast<std::size_t>(world));
  std::size_t begin = 0;
  for (std::size_t i = 0; i <= spec.size(); ++i) {
    if (i == spec.size() || spec[i] == ',') {
      node_of.push_back(parse_int(spec, begin, i));
      begin = i + 1;
    }
  }
  if (static_cast<int>(node_of.size()) != world) {
    throw std::invalid_argument(
        "CGX_TOPO lists " + std::to_string(node_of.size()) +
        " ranks but world is " + std::to_string(world));
  }
  return Topology(std::move(node_of));
}

Topology Topology::from_env(int world) {
  const char* env = std::getenv("CGX_TOPO");
  return parse(env ? std::string(env) : std::string(), world);
}

Topology Topology::restrict(std::span<const int> ranks) const {
  std::vector<int> node_of;
  node_of.reserve(ranks.size());
  for (int r : ranks) {
    if (r < 0 || r >= world_size()) {
      throw std::invalid_argument("Topology::restrict: rank " +
                                  std::to_string(r) + " outside world " +
                                  std::to_string(world_size()));
    }
    node_of.push_back(node_of_[static_cast<std::size_t>(r)]);
  }
  return Topology(std::move(node_of));
}

Topology::Topology(std::vector<int> node_of) : node_of_(std::move(node_of)) {
  const int world = static_cast<int>(node_of_.size());
  node_index_.assign(node_of_.size(), -1);
  leader_of_.assign(node_of_.size(), -1);
  // Dense indices in first-appearance order; the leader of a node is its
  // first-appearing (lowest) rank. O(world * nodes) scan — worlds here are
  // a few hundred at most, and this runs once per topology construction.
  for (int r = 0; r < world; ++r) {
    if (node_index_[static_cast<std::size_t>(r)] >= 0) continue;
    const int id = node_of_[static_cast<std::size_t>(r)];
    const int dense = num_nodes_++;
    leaders_.push_back(r);
    for (int s = r; s < world; ++s) {
      if (node_of_[static_cast<std::size_t>(s)] == id) {
        node_index_[static_cast<std::size_t>(s)] = dense;
        leader_of_[static_cast<std::size_t>(s)] = r;
      }
    }
  }
}

}  // namespace cgx::comm
