// Simulated multi-node fabric: α-β link costs with per-NIC contention.
//
// SimNetTransport decorates a real in-process backend (typically
// ShmTransport): every byte still moves for real through the inner
// transport, but each operation is *charged* to a util::VirtualClock using
// an α-β cost model chosen by the link type the topology assigns to the
// (src, dst) pair:
//
//   inter-node   cost = inter_alpha + bytes * 8 / inter_gbps
//                The serialization term also accumulates on the sender
//                node's NIC-tx floor and the receiver node's NIC-rx floor,
//                so CONCURRENT FLOWS THROUGH ONE NIC SHARE ITS BANDWIDTH:
//                the modelled epoch cannot be shorter than any NIC's total
//                busy time (VirtualClock::elapsed_ns takes the max).
//   intra-node   cost = intra_alpha + bytes * 8 / intra_gbps, and the
//                serialization term accumulates on the node's shared
//                memory-fabric floor (fabric_gbps aggregate per node).
//
// Accounting discipline (why results are deterministic): a send ADDS its
// serialization cost to the sender's causal clock and pushes an arrival
// stamp (sender-now + α) into a per-(src, dst, tag) FIFO; the receive that
// consumes the matching message pops the stamp and MAX-MERGES it into the
// receiver's clock. Adds and maxes commute, so thread scheduling and
// any-source arrival order cannot change the final numbers — benches over
// this fabric are bit-reproducible (see util/virtual_clock.h).
//
// Peer-direct exchange is only offered between ranks on the same node: a
// simulated NIC cannot export device memory across nodes. The per-link
// supports_direct_exchange(a, b) query is the routing point; the global
// form goes false as soon as the topology has two nodes.
//
// HierarchicalTransport is the same per-link gating WITHOUT the clock — a
// thin decorator for unit tests and deployments that want topology-aware
// routing over an un-simulated fabric.
//
// Env knobs (SimNetParams::from_env, used by benches and tests):
//   CGX_TOPO    rank→node map, see comm/topology.h
//   CGX_SIMNET  comma list of key=value overriding SimNetParams fields,
//               e.g. "inter_gbps=50,inter_alpha_us=12.5,fabric_gbps=512"
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "comm/topology.h"
#include "comm/transport.h"
#include "util/virtual_clock.h"

namespace cgx::comm {

struct SimNetParams {
  // 10 Gb/s-class datacenter Ethernet defaults; a 30 µs α covers the
  // kernel/NIC software path of an unoptimized stack.
  std::uint64_t inter_alpha_ns = 30'000;
  double inter_gbps = 10.0;
  // Intra-node SHM hop: PR 6 measured ~8.4 GB/s end-to-end allreduce, so a
  // single peer-direct link models at NVLink-ish 96 Gb/s with a small α.
  std::uint64_t intra_alpha_ns = 2'000;
  double intra_gbps = 96.0;
  // Aggregate per-node memory fabric shared by all intra-node flows.
  double fabric_gbps = 768.0;

  // Parse CGX_SIMNET ("key=value,..."; keys: inter_alpha_us, inter_gbps,
  // intra_alpha_us, intra_gbps, fabric_gbps) over these defaults.
  static SimNetParams from_env();
  static SimNetParams parse(const std::string& spec);
};

class SimNetTransport final : public Transport {
 public:
  // `inner` must outlive the decorator. If `clock` is null the transport
  // owns a private VirtualClock sized to the topology.
  SimNetTransport(Transport& inner, Topology topology, SimNetParams params,
                  util::VirtualClock* clock = nullptr);

  void send(int src, int dst, std::span<const std::byte> data,
            int tag) override;
  void recv(int dst, int src, std::span<std::byte> data, int tag) override;
  bool supports_recv_add() const override;
  void recv_add(int dst, int src, std::span<float> data, int tag) override;

  bool supports_direct_exchange() const override;
  bool supports_direct_exchange(int a, int b) const override;
  void direct_post(int src, int dst, std::span<const float> data,
                   int tag) override;
  void direct_pull(int dst, int src, std::span<float> data, bool add,
                   int tag) override;
  void direct_pull2(int dst, int src1, int src2, std::span<float> data,
                    int tag) override;
  void direct_wait(int src, int dst, int tag) override;

  int select_source(int dst, std::span<const int> candidates,
                    int tag) override;
  const TransportProfile& profile() const override { return profile_; }

  TrafficRecorder& recorder() override { return inner_.recorder(); }
  const TrafficRecorder& recorder() const override {
    return inner_.recorder();
  }
  HealthMonitor& health() override { return inner_.health(); }
  const HealthMonitor& health() const override { return inner_.health(); }

  void set_policy(const CommPolicy& policy) override;
  void set_fault_injector(FaultInjector* injector) override;
  void reset_inbound(int rank) override;
  void set_epoch(std::uint64_t epoch) override { inner_.set_epoch(epoch); }
  std::uint64_t epoch() const override { return inner_.epoch(); }
  std::uint64_t stale_frames_discarded() const override {
    return inner_.stale_frames_discarded();
  }

  util::VirtualClock& clock() { return *clock_; }
  const util::VirtualClock& clock() const { return *clock_; }
  const Topology& topology() const { return topo_; }
  const SimNetParams& params() const { return params_; }
  Transport& inner() { return inner_; }

  // Modelled wire time of one message, by link type (exposed for tests and
  // for analytic cross-checks in benches).
  std::uint64_t cost_ns(int src, int dst, std::size_t bytes) const;

 private:
  // Grow-only per-tag arrival-stamp FIFO: push on send, pop on the recv
  // that consumed the matching inner message. Ring storage doubles in
  // place when full and never shrinks, so steady state allocates nothing.
  struct TagFifo {
    int tag = -1;
    std::vector<std::uint64_t> ring;
    std::size_t head = 0;
    std::size_t count = 0;
  };
  struct PairState {
    std::mutex mu;
    std::vector<TagFifo> fifos;  // few live tags per pair: linear scan
  };

  PairState& pair(int src, int dst) {
    return pairs_[static_cast<std::size_t>(src) *
                      static_cast<std::size_t>(topo_.world_size()) +
                  static_cast<std::size_t>(dst)];
  }
  std::uint64_t serialization_ns(int src, int dst, std::size_t bytes) const;
  // Charges the sender's clock + the link's shared floors and enqueues the
  // arrival stamp. Must run BEFORE the inner operation so the matching
  // consume always finds its stamp.
  void charge_send(int src, int dst, std::size_t bytes, int tag);
  // Pops the stamp (if present) and max-merges it into dst's clock.
  void charge_consume(int dst, int src, int tag);

  Transport& inner_;
  Topology topo_;
  SimNetParams params_;
  std::uint64_t inter_ps_per_byte_;
  std::uint64_t intra_ps_per_byte_;
  std::uint64_t fabric_ps_per_byte_;
  std::unique_ptr<util::VirtualClock> owned_clock_;
  util::VirtualClock* clock_;
  std::vector<PairState> pairs_;  // world², row-major by src
  TransportProfile profile_;
};

// Topology-aware routing without timing: peer-direct stays available
// inside a node and is refused across nodes, everything else forwards.
// Compose as Hierarchical(SimNet(Shm)) for simulated benches or
// Hierarchical(Shm) for fast functional tests — the collectives only ask
// the per-link capability question, so both compose the same way.
class HierarchicalTransport final : public Transport {
 public:
  HierarchicalTransport(Transport& inner, Topology topology);

  void send(int src, int dst, std::span<const std::byte> data,
            int tag) override;
  void recv(int dst, int src, std::span<std::byte> data, int tag) override;
  bool supports_recv_add() const override;
  void recv_add(int dst, int src, std::span<float> data, int tag) override;

  bool supports_direct_exchange() const override;
  bool supports_direct_exchange(int a, int b) const override;
  void direct_post(int src, int dst, std::span<const float> data,
                   int tag) override;
  void direct_pull(int dst, int src, std::span<float> data, bool add,
                   int tag) override;
  void direct_pull2(int dst, int src1, int src2, std::span<float> data,
                    int tag) override;
  void direct_wait(int src, int dst, int tag) override;

  int select_source(int dst, std::span<const int> candidates,
                    int tag) override;
  const TransportProfile& profile() const override {
    return inner_.profile();
  }

  TrafficRecorder& recorder() override { return inner_.recorder(); }
  const TrafficRecorder& recorder() const override {
    return inner_.recorder();
  }
  HealthMonitor& health() override { return inner_.health(); }
  const HealthMonitor& health() const override { return inner_.health(); }

  void set_policy(const CommPolicy& policy) override;
  void set_fault_injector(FaultInjector* injector) override;
  void reset_inbound(int rank) override;
  void set_epoch(std::uint64_t epoch) override { inner_.set_epoch(epoch); }
  std::uint64_t epoch() const override { return inner_.epoch(); }
  std::uint64_t stale_frames_discarded() const override {
    return inner_.stale_frames_discarded();
  }

  const Topology& topology() const { return topo_; }
  Transport& inner() { return inner_; }

 private:
  Transport& inner_;
  Topology topo_;
};

}  // namespace cgx::comm
