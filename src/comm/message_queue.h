// Internal bounded-capacity message channel used by the transports.
//
// Each channel is a FIFO of byte payloads with optional capacity in bytes:
// a sender blocks when the channel holds more than `capacity_bytes` — this
// models the fixed-size shared-memory segments of the SHM backend (the
// paper registers one UNIX segment per GPU pair) and NCCL's bounded FIFO
// buffers. capacity 0 = unbounded.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <span>
#include <vector>

#include "util/check.h"

namespace cgx::comm {

class MessageQueue {
 public:
  explicit MessageQueue(std::size_t capacity_bytes = 0)
      : capacity_bytes_(capacity_bytes) {}

  void push(std::span<const std::byte> data) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (capacity_bytes_ > 0) {
      // A message larger than the whole segment is still allowed through on
      // an empty channel (real implementations stream it in pieces; the
      // timing difference is the cost model's business, not correctness's).
      space_cv_.wait(lock, [&] {
        return queued_bytes_ == 0 ||
               queued_bytes_ + data.size() <= capacity_bytes_;
      });
    }
    queue_.emplace_back(data.begin(), data.end());
    queued_bytes_ += data.size();
    data_cv_.notify_one();
  }

  // Blocks until a message is available; CHECKs that it has `out.size()`
  // bytes and copies it out.
  void pop_into(std::span<std::byte> out) {
    std::vector<std::byte> msg = pop();
    CGX_CHECK_EQ(msg.size(), out.size());
    std::copy(msg.begin(), msg.end(), out.begin());
  }

  std::vector<std::byte> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    data_cv_.wait(lock, [&] { return !queue_.empty(); });
    std::vector<std::byte> msg = std::move(queue_.front());
    queue_.pop_front();
    queued_bytes_ -= msg.size();
    space_cv_.notify_all();
    return msg;
  }

  std::size_t pending_messages() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
  }

 private:
  const std::size_t capacity_bytes_;
  mutable std::mutex mutex_;
  std::condition_variable data_cv_;
  std::condition_variable space_cv_;
  std::deque<std::vector<std::byte>> queue_;
  std::size_t queued_bytes_ = 0;
};

}  // namespace cgx::comm
