// Elastic membership: survivor agreement, epoch-fenced world re-shard, and
// rejoin (DESIGN.md §5h).
//
// One Membership instance is shared by every device thread of an elastic
// run_world. It owns three pieces of state:
//
//   * The failure ORACLE: `mark_rank_failed` is called from a dying worker
//     thread's unwind (run_world's FaultInjectedError handler), so by the
//     time any survivor's deadline-bounded wait expires the oracle already
//     knows whether the stall was a crash or a transient wire fault.
//   * The WORLD VIEW: an immutable, epoch-stamped WorldView (comm/world.h)
//     behind an atomic pointer. Views are retained forever (history_), so a
//     reader may hold a view pointer across a whole collective.
//   * Two GATES — reusable counting barriers with a shared expected count.
//     The step gate serves Comm::barrier/try_barrier (the engine's per-step
//     commit fence); the recovery gate serves everything recovery-shaped
//     (vote agreement, delta commit, admission, transient quiesce). Keeping
//     the two populations on separate gates means a rank parked at the step
//     fence can never be released by a recovery round, and vice versa.
//
// Protocol sketch for a crash (see Membership::recover):
//   1. A survivor's collective op throws TimeoutError; the engine calls
//      reshard_world -> recover. A short grace wait classifies the failure
//      against the oracle (no pending failure -> kTransient).
//   2. Survivors exchange 16-byte epoch-stamped Ballots over their live
//      links on kMembershipTag and union each other's dead sets; a round
//      that learns of a new death re-snapshots and re-votes.
//   3. All survivors collect on the recovery gate; the lowest surviving
//      rank applies the delta exactly once: statuses flip, the epoch bumps,
//      a new WorldView is published, the transport's frame epoch is bumped
//      (stale traffic is fenced at the ring layer), every rank's inbound
//      channels are reset, dead links are quarantined in HealthMonitor, and
//      the caller's reshard callback rebuilds collective plans.
//   4. A second gate pass releases the survivors into the retried step.
//
// Planned departures and rejoins ride `apply_scheduled` at step boundaries:
// the same two-gate dance, except the joining rank takes part in both gates
// (admitted via `await_rejoin`) and the caller broadcasts parameters from
// the lowest pre-join survivor afterwards.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "comm/world.h"

namespace cgx::comm {

class FaultInjector;

class Membership {
 public:
  static constexpr std::uint64_t kNoStep = ~std::uint64_t{0};
  // Ballots carry the dead set as a u64 bitmask; elastic worlds are capped
  // accordingly (launch worlds beyond this still run non-elastic).
  static constexpr int kMaxElasticWorld = 64;

  explicit Membership(int world_size);
  Membership(const Membership&) = delete;
  Membership& operator=(const Membership&) = delete;

  int world_size() const { return world_size_; }
  std::uint64_t epoch() const { return view()->epoch; }
  // The current view. Never null; immutable once published.
  const WorldView* view() const {
    return current_.load(std::memory_order_acquire);
  }
  int active_count() const { return view()->active_count(); }
  int lowest_active() const { return view()->active.front(); }
  std::uint64_t reshard_count() const {
    return reshards_.load(std::memory_order_acquire);
  }

  // ---- failure oracle (lock-free readers) ----
  // Called from a dying worker's unwind, before any successor spawns.
  void mark_rank_failed(int global_rank, std::exception_ptr error);
  bool is_failed(int global_rank) const {
    return failed_[static_cast<std::size_t>(global_rank)].load(
        std::memory_order_acquire);
  }
  // A failure is "pending" until a re-shard retires it from the view.
  bool has_pending_failures() const;

  // ---- schedules (set up before run_world; cleared as they apply) ----
  void schedule_departure(int global_rank, std::uint64_t step);
  void schedule_rejoin(int global_rank, std::uint64_t step);
  // Pulls planned departures out of a FaultInjector's schedule table.
  void import_departures(const FaultInjector& injector);
  bool rejoin_scheduled(int global_rank) const;
  // True for a successor thread that exists only to be readmitted: its rank
  // has a rejoin scheduled AND has already failed/departed. The original
  // (pre-crash) incarnation of the rank never matches.
  bool is_scheduled_joiner(int global_rank) const;

  // Rebuilds engine/collective plans for a freshly published view. Runs on
  // exactly one thread (the delta leader) while every other participant is
  // parked at the recovery gate — it may mutate shared engine state.
  using ReshardFn = std::function<void(const WorldView&)>;

  // ---- crash recovery ----
  enum class Recovery { kTransient, kReshard };
  // Entered by a survivor whose collective op failed. Classifies the
  // failure, runs survivor agreement, and (leader only) applies the
  // membership delta. Throws TimeoutError when agreement cannot be reached
  // before `timeout`; the engine's round retry re-enters. Requires a
  // bounded CommPolicy — votes to a dead peer must be able to expire.
  Recovery recover(Comm& comm, std::chrono::milliseconds timeout,
                   const ReshardFn& on_reshard);

  // ---- planned departures / rejoins (step boundaries) ----
  struct StepAction {
    bool changed = false;  // a membership delta applied at this step
    bool leave = false;    // this rank departed (it still took both gates)
    int joined = -1;       // first admitted global rank, -1 if none
    int join_root = -1;    // lowest pre-join survivor: parameter bcast root
  };
  // Called by every active rank at the top of each step. No scheduled event
  // at `step` is a cheap no-op returning a default StepAction.
  StepAction apply_scheduled(Comm& comm, std::uint64_t step,
                             const ReshardFn& on_reshard);

  struct Admission {
    std::uint64_t resume_step = kNoStep;
    int root = -1;  // global rank holding authoritative parameters
  };
  // Blocks a readmission candidate until the survivors open its admission
  // window, then takes part in the two-gate delta. On return the caller is
  // active in the new view and must receive parameters by broadcast from
  // `root` before resuming at `resume_step`.
  Admission await_rejoin(Comm& comm, std::chrono::milliseconds timeout);

  // ---- barriers over the current survivor set ----
  // Step fence: what Comm::barrier/try_barrier route to in elastic mode.
  bool step_barrier(std::chrono::milliseconds timeout);
  // Recovery-population barrier: the engine's transient-fault quiesce uses
  // this so it can never collide with ranks parked at the step fence.
  bool recovery_barrier(std::chrono::milliseconds timeout);

 private:
  // Reusable counting barrier. `expected_` is shared state (set_expected),
  // not an arrival argument: every participant re-derives it from current
  // membership right before arriving, so a waiter parked with a stale count
  // is released the moment a later arrival (with the corrected count)
  // completes the population. Timeout withdraws the arrival, mirroring
  // util::Barrier::arrive_and_wait_for.
  class Gate {
   public:
    void set_expected(std::size_t n);
    // timeout <= 0 waits forever.
    bool arrive(std::chrono::milliseconds timeout);

   private:
    void maybe_fire_locked();
    std::mutex mu_;
    std::condition_variable cv_;
    std::size_t expected_ = 0;
    std::size_t arrived_ = 0;
    std::uint64_t generation_ = 0;
  };

  enum class Status : std::uint8_t { kActive, kCrashed, kDeparted };

  // Requires mu_. Assigns the (pre-bumped) epoch_, retains the view in
  // history_, publishes it.
  const WorldView* publish_locked(std::vector<int> active);
  std::vector<int> snapshot_survivors() const;  // active && !failed, sorted
  std::uint64_t dead_mask() const;              // pending failures as bits
  // One all-to-all ballot round over `survivors`. Returns false when the
  // round learned of a new death (caller re-snapshots and re-votes).
  bool exchange_votes(Comm& comm, const std::vector<int>& survivors,
                      std::chrono::steady_clock::time_point deadline);
  // Leader-only: retire pending failures, bump the epoch, publish, fence,
  // flush, quarantine, rebuild. Idempotent via the e0 guard.
  void apply_crash_delta(std::uint64_t e0, Transport& transport,
                         const ReshardFn& on_reshard);

  const int world_size_;
  mutable std::mutex mu_;
  std::condition_variable join_cv_;
  std::vector<Status> status_;                   // guarded by mu_
  std::vector<std::atomic<bool>> failed_;        // oracle; lock-free
  std::vector<std::exception_ptr> errors_;       // guarded by mu_
  std::vector<std::uint64_t> departure_step_;    // guarded by mu_
  std::vector<std::uint64_t> rejoin_step_;       // guarded by mu_
  std::atomic<bool> has_schedules_{false};
  std::uint64_t epoch_ = 0;                      // guarded by mu_
  std::atomic<std::uint64_t> reshards_{0};
  std::vector<std::unique_ptr<WorldView>> history_;  // guarded by mu_
  std::atomic<const WorldView*> current_{nullptr};

  // Admission rendezvous (guarded by mu_).
  std::uint64_t admission_step_ = kNoStep;
  std::uint64_t resume_step_ = kNoStep;
  int join_root_ = -1;
  // Planned-event deltas rendezvous at step boundaries where rank skew is
  // just compute jitter; a generous fixed deadline keeps CHECK diagnostics
  // meaningful without a config knob.
  std::chrono::milliseconds admission_timeout_{10000};

  Gate step_gate_;
  Gate recovery_gate_;
};

}  // namespace cgx::comm
