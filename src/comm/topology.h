// Rank→node placement for the hierarchical (two-level) collectives.
//
// A Topology is an immutable map from global rank to node id, plus the
// derived structure the two-level schedule needs: dense node indices,
// per-node leaders (lowest rank on the node), and same-node queries.
// Node ids in the input may be arbitrary, non-contiguous integers; they
// are re-indexed densely in first-appearance order so downstream code
// can size per-node arrays by num_nodes().
//
// Construction sources, in the order production code tries them:
//   Topology::from_env(world)  — parse CGX_TOPO:
//       "NxM"          N nodes of M ranks each, block placement
//                      (rank r → node r / M); N*M must equal world.
//       "0,0,1,1,..."  explicit per-rank node ids, one per rank.
//       unset/empty    single node (flat world, hierarchy degenerates).
//   Topology::grouped(world, ranks_per_node)  — block placement.
//   Topology::single_node(world)              — everyone on node 0.
#pragma once

#include <span>
#include <string>
#include <vector>

namespace cgx::comm {

class Topology {
 public:
  // Everyone on one node: the hierarchy degenerates to the flat path.
  static Topology single_node(int world);
  // Block placement: rank r lives on node r / ranks_per_node. The last
  // node may be short when world is not divisible.
  static Topology grouped(int world, int ranks_per_node);
  // Parse CGX_TOPO (see file comment). Throws std::invalid_argument on
  // malformed specs or world-size mismatch.
  static Topology from_env(int world);
  static Topology parse(const std::string& spec, int world);

  explicit Topology(std::vector<int> node_of);

  // Elastic membership: the topology of the surviving world. `ranks` are
  // the surviving global ranks in ascending order; survivor i of the new
  // (dense) world keeps its old node id, so ranks sharing a node keep
  // sharing one and a dead node-leader's role falls to the lowest surviving
  // rank on that node (leaders are always the first-appearing rank).
  Topology restrict(std::span<const int> ranks) const;

  int world_size() const { return static_cast<int>(node_of_.size()); }
  int num_nodes() const { return num_nodes_; }
  bool is_single_node() const { return num_nodes_ <= 1; }

  // Raw node id as supplied by the caller (may be non-contiguous).
  int node_of(int rank) const {
    return node_of_[static_cast<std::size_t>(rank)];
  }
  // Dense node index in [0, num_nodes()), first-appearance order.
  int node_index(int rank) const {
    return node_index_[static_cast<std::size_t>(rank)];
  }
  bool same_node(int a, int b) const {
    return node_of_[static_cast<std::size_t>(a)] ==
           node_of_[static_cast<std::size_t>(b)];
  }

  // Lowest rank on `rank`'s node — the node leader.
  int leader(int rank) const {
    return leader_of_[static_cast<std::size_t>(rank)];
  }
  bool is_leader(int rank) const { return leader(rank) == rank; }

  // Leaders in ascending rank order, one per node (dense-index order
  // coincides because the leader is the first-appearing rank).
  const std::vector<int>& leaders() const { return leaders_; }
  const std::vector<int>& node_map() const { return node_of_; }

 private:
  std::vector<int> node_of_;      // rank -> raw node id
  std::vector<int> node_index_;   // rank -> dense node index
  std::vector<int> leader_of_;    // rank -> leader rank on its node
  std::vector<int> leaders_;      // dense node index -> leader rank
  int num_nodes_ = 0;
};

}  // namespace cgx::comm
