#include "comm/transports.h"

#include <algorithm>
#include <cstring>
#include <thread>

#include "comm/fault.h"
#include "comm/tagspace.h"
#include "tensor/tensor_ops.h"
#include "util/check.h"
#include "util/crc32.h"
#include "util/simd.h"

namespace cgx::comm {
namespace {

// Peer-direct descriptors and acks ride the ordinary rings, but on a tag
// shifted into its own band (tag + kDirectAckTagOffset, see comm/tagspace.h)
// so a pull's ack can never collide with a descriptor travelling the same
// (pair, tag) channel in the other role.

struct DirectDesc {
  const float* ptr;
  std::uint64_t size;
  // CRC32 of the posted payload when CommPolicy::checksums is on (0
  // otherwise): lets the puller verify its copy-out of the peer span.
  std::uint32_t crc;
  std::uint32_t pad;
};

std::chrono::milliseconds elapsed_ms(RingChannel::Clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
      RingChannel::Clock::now() - start);
}

}  // namespace

// ------------------------------------------------------------ ChannelTable

ChannelTable::ChannelTable(int world_size, std::size_t capacity_bytes,
                           int tag_slots)
    : world_(world_size),
      tag_slots_(tag_slots),
      capacity_bytes_(capacity_bytes),
      slots_(static_cast<std::size_t>(world_size) *
             static_cast<std::size_t>(world_size) *
             static_cast<std::size_t>(tag_slots)),
      doorbells_(static_cast<std::size_t>(world_size)) {
  CGX_CHECK_GT(world_size, 0);
  CGX_CHECK_GT(tag_slots, 0);
}

ChannelTable::~ChannelTable() {
  for (auto& slot : slots_) {
    delete slot.load(std::memory_order_acquire);
  }
}

std::size_t ChannelTable::index(int src, int dst, int tag) const {
  CGX_CHECK(src >= 0 && src < world_);
  CGX_CHECK(dst >= 0 && dst < world_);
  CGX_CHECK(tag >= 0 && tag < tag_slots_)
      << "tag " << tag << " outside the dense table's " << tag_slots_
      << " slots";
  return (static_cast<std::size_t>(src) * static_cast<std::size_t>(world_) +
          static_cast<std::size_t>(dst)) *
             static_cast<std::size_t>(tag_slots_) +
         static_cast<std::size_t>(tag);
}

RingChannel& ChannelTable::channel(int src, int dst, int tag) {
  std::atomic<RingChannel*>& slot = slots_[index(src, dst, tag)];
  RingChannel* ch = slot.load(std::memory_order_acquire);
  if (ch == nullptr) {
    auto fresh = std::make_unique<RingChannel>(
        capacity_bytes_, &doorbells_[static_cast<std::size_t>(dst)]);
    fresh->bind_link(&fabric_, src, dst, tag);
    if (slot.compare_exchange_strong(ch, fresh.get(),
                                     std::memory_order_acq_rel,
                                     std::memory_order_acquire)) {
      ch = fresh.release();
    }
    // CAS loser: `ch` was reloaded with the winner's pointer; `fresh` frees
    // the redundant candidate on scope exit.
  }
  return *ch;
}

void ChannelTable::bind_fabric(const CommPolicy* policy,
                               HealthMonitor* health) {
  fabric_.policy = policy;
  fabric_.health = health;
}

void ChannelTable::set_injector(FaultInjector* injector) {
  fabric_.injector = injector;
}

void ChannelTable::reset_inbound(int dst) {
  for (int src = 0; src < world_; ++src) {
    for (int tag = 0; tag < tag_slots_; ++tag) {
      RingChannel* ch = slots_[index(src, dst, tag)].load(
          std::memory_order_acquire);
      if (ch != nullptr) ch->reset();
    }
  }
}

const RingChannel* ChannelTable::peek(int src, int dst, int tag) const {
  return slots_[index(src, dst, tag)].load(std::memory_order_acquire);
}

int ChannelTable::wait_any(int dst, std::span<const int> srcs, int tag) {
  return wait_any_until(dst, srcs, tag, RingChannel::kNoDeadline);
}

int ChannelTable::wait_any_until(int dst, std::span<const int> srcs, int tag,
                                 RingChannel::Clock::time_point deadline) {
  CGX_CHECK(!srcs.empty());
  RecvDoorbell& db = doorbells_[static_cast<std::size_t>(dst)];
  for (;;) {
    const std::uint64_t seen = db.seq.load(std::memory_order_acquire);
    for (int s : srcs) {
      const RingChannel* ch = peek(s, dst, tag);
      if (ch != nullptr && ch->has_data()) return s;
    }
    // Park on the doorbell until any inbound ring of `dst` commits bytes.
    // A commit between the probe above and the wait bumps seq past `seen`,
    // so the predicate is immediately true — no lost wakeup.
    db.waiters.fetch_add(1, std::memory_order_acq_rel);
    bool woke = true;
    {
      std::unique_lock<std::mutex> lock(db.mutex);
      const auto pred = [&] {
        return db.seq.load(std::memory_order_acquire) != seen;
      };
      if (deadline == RingChannel::kNoDeadline) {
        db.cv.wait(lock, pred);
      } else {
        woke = db.cv.wait_until(lock, deadline, pred);
      }
    }
    db.waiters.fetch_sub(1, std::memory_order_acq_rel);
    if (!woke) return -1;
  }
}

std::size_t ChannelTable::slab_high_water_bytes() const {
  std::size_t total = 0;
  for (const auto& slot : slots_) {
    const RingChannel* ch = slot.load(std::memory_order_acquire);
    if (ch != nullptr) total += ch->slab_bytes();
  }
  return total;
}

int ChannelTransport::select_source(int dst, std::span<const int> candidates,
                                    int tag) {
  if (!policy_.bounded()) return channels_.wait_any(dst, candidates, tag);
  const auto start = Clock::now();
  const int s =
      channels_.wait_any_until(dst, candidates, tag, start + policy_.timeout);
  if (s >= 0) return s;
  // No single culprit link: every candidate stayed silent past the deadline.
  throw TimeoutError(-1, dst, tag, elapsed_ms(start),
                     "select_source (any-source wait)");
}

void ChannelTransport::recv_add(int dst, int src, std::span<float> data,
                                int tag) {
  pop_frame_add(channels_.channel(src, dst, tag), src, dst, tag, data);
}

void ChannelTransport::fail_link(ChannelStatus st, int src, int dst, int tag,
                                 Clock::time_point start, const char* where) {
  if (st == ChannelStatus::kCorrupt) {
    // Retransmits were already counted per attempt inside the channel.
    throw ChecksumError(src, dst, tag, policy_.max_retries + 1);
  }
  if (st == ChannelStatus::kPoisoned) {
    // An earlier timeout abandoned a partial frame on this link; fail fast
    // without re-waiting (waited = 0 flags the fail-stopped state).
    health_.record_timeout(src, dst);
    throw TimeoutError(src, dst, tag, std::chrono::milliseconds{0}, where);
  }
  health_.record_timeout(src, dst);
  throw TimeoutError(src, dst, tag,
                     policy_.bounded() ? elapsed_ms(start)
                                       : std::chrono::milliseconds{0},
                     where);
}

void ChannelTransport::push_frame(RingChannel& ch, int src, int dst, int tag,
                                  std::span<const std::byte> data) {
  const bool bounded = policy_.bounded();
  const auto start = bounded ? Clock::now() : Clock::time_point{};
  const auto deadline =
      bounded ? start + policy_.timeout : RingChannel::kNoDeadline;
  const ChannelStatus st = ch.push_until(data, deadline);
  if (st == ChannelStatus::kOk) return;
  fail_link(st, src, dst, tag, start, "send (backpressure wait)");
}

void ChannelTransport::pop_frame(RingChannel& ch, int src, int dst, int tag,
                                 std::span<std::byte> out) {
  const bool bounded = policy_.bounded();
  const auto start = bounded ? Clock::now() : Clock::time_point{};
  const auto deadline =
      bounded ? start + policy_.timeout : RingChannel::kNoDeadline;
  const ChannelStatus st = ch.pop_into_until(out, deadline);
  if (st == ChannelStatus::kOk) {
    if (bounded) {
      health_.record_success(
          src, dst,
          std::chrono::duration<double, std::micro>(Clock::now() - start)
              .count());
    }
    return;
  }
  fail_link(st, src, dst, tag, start, "recv");
}

void ChannelTransport::pop_frame_add(RingChannel& ch, int src, int dst,
                                     int tag, std::span<float> out) {
  const bool bounded = policy_.bounded();
  const auto start = bounded ? Clock::now() : Clock::time_point{};
  const auto deadline =
      bounded ? start + policy_.timeout : RingChannel::kNoDeadline;
  const ChannelStatus st = ch.pop_into_add_until(out, deadline);
  if (st == ChannelStatus::kOk) return;
  fail_link(st, src, dst, tag, start, "recv_add");
}

// ---------------------------------------------------------------- SHM

ShmTransport::ShmTransport(int world_size, std::size_t segment_bytes)
    : ChannelTransport(world_size, segment_bytes),
      direct_seq_(static_cast<std::size_t>(world_size) *
                  static_cast<std::size_t>(world_size)) {
  profile_ = TransportProfile{
      .name = "SHM",
      .per_message_overhead_us = 2.0,
      .per_chunk_overhead_us = 0.0,
      .chunk_bytes = 0,
      .extra_copies = 0,
      .single_node_only = true,
  };
}

void ShmTransport::send(int src, int dst, std::span<const std::byte> data,
                        int tag) {
  CGX_CHECK(src >= 0 && src < world_size_);
  CGX_CHECK(dst >= 0 && dst < world_size_);
  CGX_CHECK_NE(src, dst);
  push_frame(channels_.channel(src, dst, tag), src, dst, tag, data);
  recorder_.record(src, dst, data.size(), tag);
}

void ShmTransport::recv(int dst, int src, std::span<std::byte> data,
                        int tag) {
  pop_frame(channels_.channel(src, dst, tag), src, dst, tag, data);
}

void ShmTransport::direct_post(int src, int dst, std::span<const float> data,
                               int tag) {
  CGX_CHECK(src >= 0 && src < world_size_);
  CGX_CHECK(dst >= 0 && dst < world_size_);
  CGX_CHECK_NE(src, dst);
  CGX_CHECK_LT(tag + kDirectAckTagOffset, channels_.tag_slots());
  DirectDesc desc{data.data(), data.size(), 0, 0};
  if (policy_.checksums) desc.crc = util::crc32(std::as_bytes(data));
  push_frame(channels_.channel(src, dst, tag), src, dst, tag,
             std::as_bytes(std::span<const DirectDesc>(&desc, 1)));
  // The logical payload is what crosses the link; the descriptor and the
  // ack play the role of IPC event signals and are not traffic.
  recorder_.record(src, dst, data.size() * sizeof(float), tag);
}

void ShmTransport::direct_pull(int dst, int src, std::span<float> data,
                               bool add, int tag) {
  DirectDesc desc{};
  pop_frame(channels_.channel(src, dst, tag), src, dst, tag,
            std::as_writable_bytes(std::span<DirectDesc>(&desc, 1)));
  CGX_CHECK_EQ(desc.size, data.size());
  const std::span<const float> peer(desc.ptr, desc.size);
  if (policy_.checksums) {
    pull_verified(src, dst, tag, peer, desc.crc, data, add);
  } else if (add) {
    tensor::add_inplace(data, peer);
  } else {
    tensor::copy(peer, data);
  }
  const int ack_tag = tag + kDirectAckTagOffset;
  push_frame(channels_.channel(dst, src, ack_tag), dst, src, ack_tag, {});
}

void ShmTransport::direct_pull2(int dst, int src1, int src2,
                                std::span<float> data, int tag) {
  if (policy_.checksums) {
    // Fault-hardened mode keeps the per-peer verify/retry machinery; the
    // fused single-pass fold is a fast path for clean links only.
    Transport::direct_pull2(dst, src1, src2, data, tag);
    return;
  }
  DirectDesc d1{};
  DirectDesc d2{};
  pop_frame(channels_.channel(src1, dst, tag), src1, dst, tag,
            std::as_writable_bytes(std::span<DirectDesc>(&d1, 1)));
  pop_frame(channels_.channel(src2, dst, tag), src2, dst, tag,
            std::as_writable_bytes(std::span<DirectDesc>(&d2, 1)));
  CGX_CHECK_EQ(d1.size, data.size());
  CGX_CHECK_EQ(d2.size, data.size());
  util::simd::copy_add2(data, {d1.ptr, d1.size}, {d2.ptr, d2.size});
  const int ack_tag = tag + kDirectAckTagOffset;
  push_frame(channels_.channel(dst, src1, ack_tag), dst, src1, ack_tag, {});
  push_frame(channels_.channel(dst, src2, ack_tag), dst, src2, ack_tag, {});
}

void ShmTransport::pull_verified(int src, int dst, int tag,
                                 std::span<const float> peer,
                                 std::uint32_t want, std::span<float> data,
                                 bool add) {
  // Fault-hardened mode only: the staging copy below is what gives the wire
  // tap a surface to bite and the CRC something to catch. It allocates on
  // first use per thread, which is why the zero-steady-state-allocation
  // contract is scoped to checksums-off runs.
  thread_local std::vector<float> scratch;
  scratch.resize(peer.size());
  const auto scratch_bytes =
      std::as_writable_bytes(std::span<float>(scratch));
  const std::uint64_t seq =
      direct_seq_[static_cast<std::size_t>(src) *
                      static_cast<std::size_t>(world_size_) +
                  static_cast<std::size_t>(dst)]
          .fetch_add(1, std::memory_order_relaxed);
  bool verified = false;
  for (int attempt = 0; attempt <= policy_.max_retries; ++attempt) {
    util::simd::copy_bytes(scratch.data(), peer.data(),
                           peer.size() * sizeof(float));
    bool dropped = false;
    if (injector_ != nullptr) {
      const WireOutcome o =
          injector_->wire_outcome(src, dst, tag, seq, attempt);
      if (o == WireOutcome::kCorrupt) {
        injector_->corrupt_bytes(scratch_bytes, src, dst, tag, seq, attempt);
      }
      dropped = o == WireOutcome::kDrop;
    }
    if (!dropped && util::crc32(scratch_bytes) == want) {
      verified = true;
      break;
    }
    if (dropped) {
      health_.record_wire_drop(src, dst);
    } else {
      health_.record_retransmit(src, dst);
    }
    if (attempt < policy_.max_retries) {
      std::this_thread::sleep_for(policy_.backoff * (1 << std::min(attempt, 6)));
    }
  }
  if (verified) {
    const std::span<const float> good(scratch);
    if (add) {
      tensor::add_inplace(data, good);
    } else {
      tensor::copy(good, data);
    }
    return;
  }
  // Degradation ladder, last rung of the direct path: abandon the tapped
  // staging copy and read the peer's span directly — the underlying memory
  // is authoritative in-process, so correctness is preserved while the
  // fallback is surfaced to health accounting.
  health_.record_fallback(src, dst);
  if (add) {
    tensor::add_inplace(data, peer);
  } else {
    tensor::copy(peer, data);
  }
}

void ShmTransport::direct_wait(int src, int dst, int tag) {
  const int ack_tag = tag + kDirectAckTagOffset;
  pop_frame(channels_.channel(dst, src, ack_tag), dst, src, ack_tag, {});
}

// ---------------------------------------------------------------- MPI

MpiTransport::MpiTransport(int world_size)
    : ChannelTransport(world_size, /*capacity_bytes=*/0) {
  profile_ = TransportProfile{
      .name = "MPI",
      .per_message_overhead_us = 25.0,
      .per_chunk_overhead_us = 0.0,
      .chunk_bytes = 0,
      .extra_copies = 2,  // device -> host staging on both ends
      .single_node_only = false,
      .requires_host_sync = true,
  };
}

void MpiTransport::send(int src, int dst, std::span<const std::byte> data,
                        int tag) {
  CGX_CHECK(src >= 0 && src < world_size_);
  CGX_CHECK(dst >= 0 && dst < world_size_);
  CGX_CHECK_NE(src, dst);
  // Stage directly into the mailbox ring; the host-staging cost is
  // attributed solely through profile_.extra_copies.
  push_frame(channels_.channel(src, dst, tag), src, dst, tag, data);
  recorder_.record(src, dst, data.size(), tag);
}

void MpiTransport::recv(int dst, int src, std::span<std::byte> data,
                        int tag) {
  pop_frame(channels_.channel(src, dst, tag), src, dst, tag, data);
}

// ---------------------------------------------------------------- NCCL

NcclTransport::NcclTransport(int world_size, std::size_t chunk_bytes)
    : ChannelTransport(world_size, /*capacity_bytes=*/8ull << 20) {
  profile_ = TransportProfile{
      .name = "NCCL",
      .per_message_overhead_us = 5.0,
      .per_chunk_overhead_us = 1.5,
      .chunk_bytes = chunk_bytes,
      .extra_copies = 1,  // bounce through NCCL's internal FIFO buffers
      .staging_gbps = 200.0,  // device-side copies
      .single_node_only = false,
  };
}

void NcclTransport::send(int src, int dst, std::span<const std::byte> data,
                         int tag) {
  CGX_CHECK(src >= 0 && src < world_size_);
  CGX_CHECK(dst >= 0 && dst < world_size_);
  CGX_CHECK_NE(src, dst);
  RingChannel& q = channels_.channel(src, dst, tag);
  const std::size_t chunk = profile_.chunk_bytes;
  // Pipeline the message through the FIFO in protocol-sized chunks. The
  // receiver reassembles; chunk boundaries are deterministic on both sides.
  std::size_t offset = 0;
  do {
    const std::size_t n = std::min(chunk, data.size() - offset);
    push_frame(q, src, dst, tag, data.subspan(offset, n));
    offset += n;
  } while (offset < data.size());
  recorder_.record(src, dst, data.size(), tag);
}

void NcclTransport::recv(int dst, int src, std::span<std::byte> data,
                         int tag) {
  RingChannel& q = channels_.channel(src, dst, tag);
  const std::size_t chunk = profile_.chunk_bytes;
  std::size_t offset = 0;
  do {
    const std::size_t n = std::min(chunk, data.size() - offset);
    pop_frame(q, src, dst, tag, data.subspan(offset, n));
    offset += n;
  } while (offset < data.size());
}

void NcclTransport::recv_add(int dst, int src, std::span<float> data,
                             int tag) {
  // The sender split the message at chunk_bytes boundaries (a multiple of
  // sizeof(float)), so each FIFO message maps to a whole-float subspan.
  RingChannel& q = channels_.channel(src, dst, tag);
  const std::size_t chunk_floats = profile_.chunk_bytes / sizeof(float);
  std::size_t offset = 0;
  do {
    const std::size_t n = std::min(chunk_floats, data.size() - offset);
    pop_frame_add(q, src, dst, tag, data.subspan(offset, n));
    offset += n;
  } while (offset < data.size());
}

// ---------------------------------------------------------------- factory

const char* backend_name(Backend b) {
  switch (b) {
    case Backend::Shm:
      return "SHM";
    case Backend::Mpi:
      return "MPI";
    case Backend::Nccl:
      return "NCCL";
  }
  return "?";
}

std::unique_ptr<Transport> make_transport(Backend b, int world_size) {
  switch (b) {
    case Backend::Shm:
      return std::make_unique<ShmTransport>(world_size);
    case Backend::Mpi:
      return std::make_unique<MpiTransport>(world_size);
    case Backend::Nccl:
      return std::make_unique<NcclTransport>(world_size);
  }
  CGX_CHECK(false) << "unknown backend";
  return nullptr;
}

// ---------------------------------------------------------- base Transport

int Transport::select_source(int /*dst*/, std::span<const int> candidates,
                             int /*tag*/) {
  CGX_CHECK(!candidates.empty());
  return candidates.front();
}

void Transport::recv_add(int /*dst*/, int /*src*/, std::span<float> /*data*/,
                         int /*tag*/) {
  CGX_CHECK(false) << "recv_add called on a transport without fused "
                      "receive+reduce support (check supports_recv_add())";
}

void Transport::direct_post(int /*src*/, int /*dst*/,
                            std::span<const float> /*data*/, int /*tag*/) {
  CGX_CHECK(false) << "direct_post called on a transport without peer-direct "
                      "access (check supports_direct_exchange())";
}

void Transport::direct_pull(int /*dst*/, int /*src*/,
                            std::span<float> /*data*/, bool /*add*/,
                            int /*tag*/) {
  CGX_CHECK(false) << "direct_pull called on a transport without peer-direct "
                      "access (check supports_direct_exchange())";
}

void Transport::direct_pull2(int dst, int src1, int src2,
                             std::span<float> data, int tag) {
  // Reference semantics: two sequential fused pulls in the given order.
  // Overrides must preserve this per-element add sequence exactly.
  direct_pull(dst, src1, data, /*add=*/true, tag);
  direct_pull(dst, src2, data, /*add=*/true, tag);
}

void Transport::direct_wait(int /*src*/, int /*dst*/, int /*tag*/) {
  CGX_CHECK(false) << "direct_wait called on a transport without peer-direct "
                      "access (check supports_direct_exchange())";
}

// --------------------------------------------------------- TrafficRecorder

TrafficRecorder::TrafficRecorder(int world_size)
    : world_size_(world_size),
      links_(static_cast<std::size_t>(world_size) *
             static_cast<std::size_t>(world_size)) {
  CGX_CHECK_GT(world_size, 0);
}

std::size_t TrafficRecorder::index(int src, int dst) const {
  CGX_CHECK(src >= 0 && src < world_size_);
  CGX_CHECK(dst >= 0 && dst < world_size_);
  return static_cast<std::size_t>(src) *
             static_cast<std::size_t>(world_size_) +
         static_cast<std::size_t>(dst);
}

void TrafficRecorder::record(int src, int dst, std::size_t bytes, int tag) {
  LinkStats& s = links_[index(src, dst)];
  s.bytes.fetch_add(bytes, std::memory_order_relaxed);
  s.messages.fetch_add(1, std::memory_order_relaxed);
  if (tag_slots_ > 0 && tag >= 0 && tag < tag_slots_) {
    tag_bytes_[static_cast<std::size_t>(tag)].fetch_add(
        bytes, std::memory_order_relaxed);
  }
}

void TrafficRecorder::enable_tag_accounting(int tag_slots) {
  CGX_CHECK_GT(tag_slots, 0);
  if (tag_slots <= tag_slots_) return;
  tag_bytes_ = std::make_unique<std::atomic<std::size_t>[]>(
      static_cast<std::size_t>(tag_slots));
  tag_slots_ = tag_slots;
}

std::size_t TrafficRecorder::bytes_for_tag(int tag) const {
  if (tag < 0 || tag >= tag_slots_) return 0;
  return tag_bytes_[static_cast<std::size_t>(tag)].load(
      std::memory_order_relaxed);
}

std::size_t TrafficRecorder::bytes_for_tag_range(int lo, int hi) const {
  std::size_t total = 0;
  for (int t = lo; t <= hi; ++t) total += bytes_for_tag(t);
  return total;
}

void TrafficRecorder::reset() {
  for (auto& s : links_) {
    s.bytes.store(0, std::memory_order_relaxed);
    s.messages.store(0, std::memory_order_relaxed);
  }
  for (int t = 0; t < tag_slots_; ++t) {
    tag_bytes_[static_cast<std::size_t>(t)].store(0,
                                                  std::memory_order_relaxed);
  }
}

std::size_t TrafficRecorder::total_bytes() const {
  std::size_t total = 0;
  for (const auto& s : links_) {
    total += s.bytes.load(std::memory_order_relaxed);
  }
  return total;
}

std::size_t TrafficRecorder::total_messages() const {
  std::size_t total = 0;
  for (const auto& s : links_) {
    total += s.messages.load(std::memory_order_relaxed);
  }
  return total;
}

std::size_t TrafficRecorder::bytes_between(int src, int dst) const {
  return links_[index(src, dst)].bytes.load(std::memory_order_relaxed);
}

std::size_t TrafficRecorder::bytes_sent_by(int src) const {
  std::size_t total = 0;
  for (int dst = 0; dst < world_size_; ++dst) {
    total += links_[index(src, dst)].bytes.load(std::memory_order_relaxed);
  }
  return total;
}

}  // namespace cgx::comm
