#include "comm/transports.h"

#include <algorithm>
#include <cstring>

namespace cgx::comm {

MessageQueue& ChannelTable::channel(int src, int dst, int tag) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto key = std::make_tuple(src, dst, tag);
  auto it = channels_.find(key);
  if (it == channels_.end()) {
    it = channels_
             .emplace(key, std::make_unique<MessageQueue>(capacity_bytes_))
             .first;
  }
  return *it->second;
}

// ---------------------------------------------------------------- SHM

ShmTransport::ShmTransport(int world_size, std::size_t segment_bytes)
    : Transport(world_size), channels_(segment_bytes) {
  profile_ = TransportProfile{
      .name = "SHM",
      .per_message_overhead_us = 2.0,
      .per_chunk_overhead_us = 0.0,
      .chunk_bytes = 0,
      .extra_copies = 0,
      .single_node_only = true,
  };
}

void ShmTransport::send(int src, int dst, std::span<const std::byte> data,
                        int tag) {
  CGX_CHECK(src >= 0 && src < world_size_);
  CGX_CHECK(dst >= 0 && dst < world_size_);
  CGX_CHECK_NE(src, dst);
  channels_.channel(src, dst, tag).push(data);
  recorder_.record(src, dst, data.size());
}

void ShmTransport::recv(int dst, int src, std::span<std::byte> data,
                        int tag) {
  channels_.channel(src, dst, tag).pop_into(data);
}

// ---------------------------------------------------------------- MPI

MpiTransport::MpiTransport(int world_size)
    : Transport(world_size), channels_(/*capacity_bytes=*/0) {
  profile_ = TransportProfile{
      .name = "MPI",
      .per_message_overhead_us = 25.0,
      .per_chunk_overhead_us = 0.0,
      .chunk_bytes = 0,
      .extra_copies = 2,  // device -> host staging on both ends
      .single_node_only = false,
      .requires_host_sync = true,
  };
}

void MpiTransport::send(int src, int dst, std::span<const std::byte> data,
                        int tag) {
  CGX_CHECK(src >= 0 && src < world_size_);
  CGX_CHECK(dst >= 0 && dst < world_size_);
  CGX_CHECK_NE(src, dst);
  // Host staging copy, performed for real: the wire sees the staged buffer.
  std::vector<std::byte> staged(data.begin(), data.end());
  channels_.channel(src, dst, tag).push(staged);
  recorder_.record(src, dst, data.size());
}

void MpiTransport::recv(int dst, int src, std::span<std::byte> data,
                        int tag) {
  // Receive into a host staging buffer, then "copy to device".
  std::vector<std::byte> staged = channels_.channel(src, dst, tag).pop();
  CGX_CHECK_EQ(staged.size(), data.size());
  std::copy(staged.begin(), staged.end(), data.begin());
}

// ---------------------------------------------------------------- NCCL

NcclTransport::NcclTransport(int world_size, std::size_t chunk_bytes)
    : Transport(world_size), channels_(/*capacity_bytes=*/8ull << 20) {
  profile_ = TransportProfile{
      .name = "NCCL",
      .per_message_overhead_us = 5.0,
      .per_chunk_overhead_us = 1.5,
      .chunk_bytes = chunk_bytes,
      .extra_copies = 1,  // bounce through NCCL's internal FIFO buffers
      .staging_gbps = 200.0,  // device-side copies
      .single_node_only = false,
  };
}

void NcclTransport::send(int src, int dst, std::span<const std::byte> data,
                         int tag) {
  CGX_CHECK(src >= 0 && src < world_size_);
  CGX_CHECK(dst >= 0 && dst < world_size_);
  CGX_CHECK_NE(src, dst);
  MessageQueue& q = channels_.channel(src, dst, tag);
  const std::size_t chunk = profile_.chunk_bytes;
  // Pipeline the message through the FIFO in protocol-sized chunks. The
  // receiver reassembles; chunk boundaries are deterministic on both sides.
  std::size_t offset = 0;
  do {
    const std::size_t n = std::min(chunk, data.size() - offset);
    q.push(data.subspan(offset, n));
    offset += n;
  } while (offset < data.size());
  recorder_.record(src, dst, data.size());
}

void NcclTransport::recv(int dst, int src, std::span<std::byte> data,
                         int tag) {
  MessageQueue& q = channels_.channel(src, dst, tag);
  const std::size_t chunk = profile_.chunk_bytes;
  std::size_t offset = 0;
  do {
    const std::size_t n = std::min(chunk, data.size() - offset);
    q.pop_into(data.subspan(offset, n));
    offset += n;
  } while (offset < data.size());
}

// ---------------------------------------------------------------- factory

const char* backend_name(Backend b) {
  switch (b) {
    case Backend::Shm:
      return "SHM";
    case Backend::Mpi:
      return "MPI";
    case Backend::Nccl:
      return "NCCL";
  }
  return "?";
}

std::unique_ptr<Transport> make_transport(Backend b, int world_size) {
  switch (b) {
    case Backend::Shm:
      return std::make_unique<ShmTransport>(world_size);
    case Backend::Mpi:
      return std::make_unique<MpiTransport>(world_size);
    case Backend::Nccl:
      return std::make_unique<NcclTransport>(world_size);
  }
  CGX_CHECK(false) << "unknown backend";
  return nullptr;
}

void TrafficRecorder::record(int src, int dst, std::size_t bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  LinkStats& s = links_[{src, dst}];
  s.bytes += bytes;
  s.messages += 1;
}

void TrafficRecorder::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  links_.clear();
}

std::size_t TrafficRecorder::total_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t total = 0;
  for (const auto& [key, s] : links_) total += s.bytes;
  return total;
}

std::size_t TrafficRecorder::total_messages() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t total = 0;
  for (const auto& [key, s] : links_) total += s.messages;
  return total;
}

std::size_t TrafficRecorder::bytes_between(int src, int dst) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = links_.find({src, dst});
  return it == links_.end() ? 0 : it->second.bytes;
}

std::size_t TrafficRecorder::bytes_sent_by(int src) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t total = 0;
  for (const auto& [key, s] : links_) {
    if (key.first == src) total += s.bytes;
  }
  return total;
}

}  // namespace cgx::comm
