#include "comm/transports.h"

#include <algorithm>
#include <cstring>

#include "tensor/tensor_ops.h"
#include "util/check.h"

namespace cgx::comm {
namespace {

// Peer-direct descriptors and acks ride the ordinary rings, but on a tag
// shifted into its own band so a pull's ack can never collide with a
// descriptor travelling the same (pair, tag) channel in the other role.
constexpr int kDirectAckTagOffset = 200;

struct DirectDesc {
  const float* ptr;
  std::uint64_t size;
};

}  // namespace

// ------------------------------------------------------------ ChannelTable

ChannelTable::ChannelTable(int world_size, std::size_t capacity_bytes,
                           int tag_slots)
    : world_(world_size),
      tag_slots_(tag_slots),
      capacity_bytes_(capacity_bytes),
      slots_(static_cast<std::size_t>(world_size) *
             static_cast<std::size_t>(world_size) *
             static_cast<std::size_t>(tag_slots)),
      doorbells_(static_cast<std::size_t>(world_size)) {
  CGX_CHECK_GT(world_size, 0);
  CGX_CHECK_GT(tag_slots, 0);
}

ChannelTable::~ChannelTable() {
  for (auto& slot : slots_) {
    delete slot.load(std::memory_order_acquire);
  }
}

std::size_t ChannelTable::index(int src, int dst, int tag) const {
  CGX_CHECK(src >= 0 && src < world_);
  CGX_CHECK(dst >= 0 && dst < world_);
  CGX_CHECK(tag >= 0 && tag < tag_slots_)
      << "tag " << tag << " outside the dense table's " << tag_slots_
      << " slots";
  return (static_cast<std::size_t>(src) * static_cast<std::size_t>(world_) +
          static_cast<std::size_t>(dst)) *
             static_cast<std::size_t>(tag_slots_) +
         static_cast<std::size_t>(tag);
}

RingChannel& ChannelTable::channel(int src, int dst, int tag) {
  std::atomic<RingChannel*>& slot = slots_[index(src, dst, tag)];
  RingChannel* ch = slot.load(std::memory_order_acquire);
  if (ch == nullptr) {
    auto fresh = std::make_unique<RingChannel>(
        capacity_bytes_, &doorbells_[static_cast<std::size_t>(dst)]);
    if (slot.compare_exchange_strong(ch, fresh.get(),
                                     std::memory_order_acq_rel,
                                     std::memory_order_acquire)) {
      ch = fresh.release();
    }
    // CAS loser: `ch` was reloaded with the winner's pointer; `fresh` frees
    // the redundant candidate on scope exit.
  }
  return *ch;
}

const RingChannel* ChannelTable::peek(int src, int dst, int tag) const {
  return slots_[index(src, dst, tag)].load(std::memory_order_acquire);
}

int ChannelTable::wait_any(int dst, std::span<const int> srcs, int tag) {
  CGX_CHECK(!srcs.empty());
  RecvDoorbell& db = doorbells_[static_cast<std::size_t>(dst)];
  for (;;) {
    const std::uint64_t seen = db.seq.load(std::memory_order_acquire);
    for (int s : srcs) {
      const RingChannel* ch = peek(s, dst, tag);
      if (ch != nullptr && ch->has_data()) return s;
    }
    // Park on the doorbell until any inbound ring of `dst` commits bytes.
    // A commit between the probe above and the wait bumps seq past `seen`,
    // so the predicate is immediately true — no lost wakeup.
    db.waiters.fetch_add(1, std::memory_order_acq_rel);
    {
      std::unique_lock<std::mutex> lock(db.mutex);
      db.cv.wait(lock, [&] {
        return db.seq.load(std::memory_order_acquire) != seen;
      });
    }
    db.waiters.fetch_sub(1, std::memory_order_acq_rel);
  }
}

std::size_t ChannelTable::slab_high_water_bytes() const {
  std::size_t total = 0;
  for (const auto& slot : slots_) {
    const RingChannel* ch = slot.load(std::memory_order_acquire);
    if (ch != nullptr) total += ch->slab_bytes();
  }
  return total;
}

int ChannelTransport::select_source(int dst, std::span<const int> candidates,
                                    int tag) {
  return channels_.wait_any(dst, candidates, tag);
}

void ChannelTransport::recv_add(int dst, int src, std::span<float> data,
                                int tag) {
  channels_.channel(src, dst, tag).pop_into_add(data);
}

// ---------------------------------------------------------------- SHM

ShmTransport::ShmTransport(int world_size, std::size_t segment_bytes)
    : ChannelTransport(world_size, segment_bytes) {
  profile_ = TransportProfile{
      .name = "SHM",
      .per_message_overhead_us = 2.0,
      .per_chunk_overhead_us = 0.0,
      .chunk_bytes = 0,
      .extra_copies = 0,
      .single_node_only = true,
  };
}

void ShmTransport::send(int src, int dst, std::span<const std::byte> data,
                        int tag) {
  CGX_CHECK(src >= 0 && src < world_size_);
  CGX_CHECK(dst >= 0 && dst < world_size_);
  CGX_CHECK_NE(src, dst);
  channels_.channel(src, dst, tag).push(data);
  recorder_.record(src, dst, data.size());
}

void ShmTransport::recv(int dst, int src, std::span<std::byte> data,
                        int tag) {
  channels_.channel(src, dst, tag).pop_into(data);
}

void ShmTransport::direct_post(int src, int dst, std::span<const float> data,
                               int tag) {
  CGX_CHECK(src >= 0 && src < world_size_);
  CGX_CHECK(dst >= 0 && dst < world_size_);
  CGX_CHECK_NE(src, dst);
  CGX_CHECK_LT(tag + kDirectAckTagOffset, channels_.tag_slots());
  const DirectDesc desc{data.data(), data.size()};
  channels_.channel(src, dst, tag)
      .push(std::as_bytes(std::span<const DirectDesc>(&desc, 1)));
  // The logical payload is what crosses the link; the 16-byte descriptor and
  // the ack play the role of IPC event signals and are not traffic.
  recorder_.record(src, dst, data.size() * sizeof(float));
}

void ShmTransport::direct_pull(int dst, int src, std::span<float> data,
                               bool add, int tag) {
  DirectDesc desc{};
  channels_.channel(src, dst, tag)
      .pop_into(std::as_writable_bytes(std::span<DirectDesc>(&desc, 1)));
  CGX_CHECK_EQ(desc.size, data.size());
  const std::span<const float> peer(desc.ptr, desc.size);
  if (add) {
    tensor::add_inplace(data, peer);
  } else {
    tensor::copy(peer, data);
  }
  channels_.channel(dst, src, tag + kDirectAckTagOffset).push({});
}

void ShmTransport::direct_wait(int src, int dst, int tag) {
  channels_.channel(dst, src, tag + kDirectAckTagOffset).pop_into({});
}

// ---------------------------------------------------------------- MPI

MpiTransport::MpiTransport(int world_size)
    : ChannelTransport(world_size, /*capacity_bytes=*/0) {
  profile_ = TransportProfile{
      .name = "MPI",
      .per_message_overhead_us = 25.0,
      .per_chunk_overhead_us = 0.0,
      .chunk_bytes = 0,
      .extra_copies = 2,  // device -> host staging on both ends
      .single_node_only = false,
      .requires_host_sync = true,
  };
}

void MpiTransport::send(int src, int dst, std::span<const std::byte> data,
                        int tag) {
  CGX_CHECK(src >= 0 && src < world_size_);
  CGX_CHECK(dst >= 0 && dst < world_size_);
  CGX_CHECK_NE(src, dst);
  // Stage directly into the mailbox ring; the host-staging cost is
  // attributed solely through profile_.extra_copies.
  channels_.channel(src, dst, tag).push(data);
  recorder_.record(src, dst, data.size());
}

void MpiTransport::recv(int dst, int src, std::span<std::byte> data,
                        int tag) {
  channels_.channel(src, dst, tag).pop_into(data);
}

// ---------------------------------------------------------------- NCCL

NcclTransport::NcclTransport(int world_size, std::size_t chunk_bytes)
    : ChannelTransport(world_size, /*capacity_bytes=*/8ull << 20) {
  profile_ = TransportProfile{
      .name = "NCCL",
      .per_message_overhead_us = 5.0,
      .per_chunk_overhead_us = 1.5,
      .chunk_bytes = chunk_bytes,
      .extra_copies = 1,  // bounce through NCCL's internal FIFO buffers
      .staging_gbps = 200.0,  // device-side copies
      .single_node_only = false,
  };
}

void NcclTransport::send(int src, int dst, std::span<const std::byte> data,
                         int tag) {
  CGX_CHECK(src >= 0 && src < world_size_);
  CGX_CHECK(dst >= 0 && dst < world_size_);
  CGX_CHECK_NE(src, dst);
  RingChannel& q = channels_.channel(src, dst, tag);
  const std::size_t chunk = profile_.chunk_bytes;
  // Pipeline the message through the FIFO in protocol-sized chunks. The
  // receiver reassembles; chunk boundaries are deterministic on both sides.
  std::size_t offset = 0;
  do {
    const std::size_t n = std::min(chunk, data.size() - offset);
    q.push(data.subspan(offset, n));
    offset += n;
  } while (offset < data.size());
  recorder_.record(src, dst, data.size());
}

void NcclTransport::recv(int dst, int src, std::span<std::byte> data,
                         int tag) {
  RingChannel& q = channels_.channel(src, dst, tag);
  const std::size_t chunk = profile_.chunk_bytes;
  std::size_t offset = 0;
  do {
    const std::size_t n = std::min(chunk, data.size() - offset);
    q.pop_into(data.subspan(offset, n));
    offset += n;
  } while (offset < data.size());
}

void NcclTransport::recv_add(int dst, int src, std::span<float> data,
                             int tag) {
  // The sender split the message at chunk_bytes boundaries (a multiple of
  // sizeof(float)), so each FIFO message maps to a whole-float subspan.
  RingChannel& q = channels_.channel(src, dst, tag);
  const std::size_t chunk_floats = profile_.chunk_bytes / sizeof(float);
  std::size_t offset = 0;
  do {
    const std::size_t n = std::min(chunk_floats, data.size() - offset);
    q.pop_into_add(data.subspan(offset, n));
    offset += n;
  } while (offset < data.size());
}

// ---------------------------------------------------------------- factory

const char* backend_name(Backend b) {
  switch (b) {
    case Backend::Shm:
      return "SHM";
    case Backend::Mpi:
      return "MPI";
    case Backend::Nccl:
      return "NCCL";
  }
  return "?";
}

std::unique_ptr<Transport> make_transport(Backend b, int world_size) {
  switch (b) {
    case Backend::Shm:
      return std::make_unique<ShmTransport>(world_size);
    case Backend::Mpi:
      return std::make_unique<MpiTransport>(world_size);
    case Backend::Nccl:
      return std::make_unique<NcclTransport>(world_size);
  }
  CGX_CHECK(false) << "unknown backend";
  return nullptr;
}

// ---------------------------------------------------------- base Transport

int Transport::select_source(int /*dst*/, std::span<const int> candidates,
                             int /*tag*/) {
  CGX_CHECK(!candidates.empty());
  return candidates.front();
}

void Transport::recv_add(int /*dst*/, int /*src*/, std::span<float> /*data*/,
                         int /*tag*/) {
  CGX_CHECK(false) << "recv_add called on a transport without fused "
                      "receive+reduce support (check supports_recv_add())";
}

void Transport::direct_post(int /*src*/, int /*dst*/,
                            std::span<const float> /*data*/, int /*tag*/) {
  CGX_CHECK(false) << "direct_post called on a transport without peer-direct "
                      "access (check supports_direct_exchange())";
}

void Transport::direct_pull(int /*dst*/, int /*src*/,
                            std::span<float> /*data*/, bool /*add*/,
                            int /*tag*/) {
  CGX_CHECK(false) << "direct_pull called on a transport without peer-direct "
                      "access (check supports_direct_exchange())";
}

void Transport::direct_wait(int /*src*/, int /*dst*/, int /*tag*/) {
  CGX_CHECK(false) << "direct_wait called on a transport without peer-direct "
                      "access (check supports_direct_exchange())";
}

// --------------------------------------------------------- TrafficRecorder

TrafficRecorder::TrafficRecorder(int world_size)
    : world_size_(world_size),
      links_(static_cast<std::size_t>(world_size) *
             static_cast<std::size_t>(world_size)) {
  CGX_CHECK_GT(world_size, 0);
}

std::size_t TrafficRecorder::index(int src, int dst) const {
  CGX_CHECK(src >= 0 && src < world_size_);
  CGX_CHECK(dst >= 0 && dst < world_size_);
  return static_cast<std::size_t>(src) *
             static_cast<std::size_t>(world_size_) +
         static_cast<std::size_t>(dst);
}

void TrafficRecorder::record(int src, int dst, std::size_t bytes) {
  LinkStats& s = links_[index(src, dst)];
  s.bytes.fetch_add(bytes, std::memory_order_relaxed);
  s.messages.fetch_add(1, std::memory_order_relaxed);
}

void TrafficRecorder::reset() {
  for (auto& s : links_) {
    s.bytes.store(0, std::memory_order_relaxed);
    s.messages.store(0, std::memory_order_relaxed);
  }
}

std::size_t TrafficRecorder::total_bytes() const {
  std::size_t total = 0;
  for (const auto& s : links_) {
    total += s.bytes.load(std::memory_order_relaxed);
  }
  return total;
}

std::size_t TrafficRecorder::total_messages() const {
  std::size_t total = 0;
  for (const auto& s : links_) {
    total += s.messages.load(std::memory_order_relaxed);
  }
  return total;
}

std::size_t TrafficRecorder::bytes_between(int src, int dst) const {
  return links_[index(src, dst)].bytes.load(std::memory_order_relaxed);
}

std::size_t TrafficRecorder::bytes_sent_by(int src) const {
  std::size_t total = 0;
  for (int dst = 0; dst < world_size_; ++dst) {
    total += links_[index(src, dst)].bytes.load(std::memory_order_relaxed);
  }
  return total;
}

}  // namespace cgx::comm
