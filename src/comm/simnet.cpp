#include "comm/simnet.h"

#include <cstdlib>
#include <stdexcept>
#include <utility>

#include "util/check.h"

namespace cgx::comm {
namespace {

// Picoseconds one byte occupies a link running at `gbps`: 8000/G ps/byte.
// Integer rates keep every cost computation exact and machine-independent.
std::uint64_t ps_per_byte(double gbps) {
  CGX_CHECK_GT(gbps, 0.0);
  return static_cast<std::uint64_t>(8000.0 / gbps + 0.5);
}

std::uint64_t ser_ns(std::size_t bytes, std::uint64_t ps_byte) {
  return (static_cast<std::uint64_t>(bytes) * ps_byte + 500) / 1000;
}

}  // namespace

SimNetParams SimNetParams::parse(const std::string& spec) {
  SimNetParams p;
  std::size_t begin = 0;
  for (std::size_t i = 0; i <= spec.size(); ++i) {
    if (i != spec.size() && spec[i] != ',') continue;
    if (i > begin) {
      const std::string kv = spec.substr(begin, i - begin);
      const std::size_t eq = kv.find('=');
      if (eq == std::string::npos) {
        throw std::invalid_argument("CGX_SIMNET: expected key=value, got \"" +
                                    kv + "\"");
      }
      const std::string key = kv.substr(0, eq);
      const double v = std::stod(kv.substr(eq + 1));
      if (key == "inter_alpha_us") {
        p.inter_alpha_ns = static_cast<std::uint64_t>(v * 1000.0 + 0.5);
      } else if (key == "inter_alpha_ns") {
        p.inter_alpha_ns = static_cast<std::uint64_t>(v + 0.5);
      } else if (key == "inter_gbps") {
        p.inter_gbps = v;
      } else if (key == "intra_alpha_us") {
        p.intra_alpha_ns = static_cast<std::uint64_t>(v * 1000.0 + 0.5);
      } else if (key == "intra_alpha_ns") {
        p.intra_alpha_ns = static_cast<std::uint64_t>(v + 0.5);
      } else if (key == "intra_gbps") {
        p.intra_gbps = v;
      } else if (key == "fabric_gbps") {
        p.fabric_gbps = v;
      } else {
        throw std::invalid_argument("CGX_SIMNET: unknown key \"" + key + "\"");
      }
    }
    begin = i + 1;
  }
  return p;
}

SimNetParams SimNetParams::from_env() {
  const char* env = std::getenv("CGX_SIMNET");
  return env ? parse(env) : SimNetParams{};
}

// ---------------------------------------------------------- SimNetTransport

SimNetTransport::SimNetTransport(Transport& inner, Topology topology,
                                 SimNetParams params,
                                 util::VirtualClock* clock)
    : Transport(topology.world_size()),
      inner_(inner),
      topo_(std::move(topology)),
      params_(params),
      inter_ps_per_byte_(ps_per_byte(params.inter_gbps)),
      intra_ps_per_byte_(ps_per_byte(params.intra_gbps)),
      fabric_ps_per_byte_(ps_per_byte(params.fabric_gbps)),
      pairs_(static_cast<std::size_t>(topo_.world_size()) *
             static_cast<std::size_t>(topo_.world_size())) {
  CGX_CHECK_EQ(inner_.world_size(), topo_.world_size());
  if (clock != nullptr) {
    CGX_CHECK_GE(clock->ranks(), topo_.world_size());
    CGX_CHECK_GE(clock->nodes(), topo_.num_nodes());
    clock_ = clock;
  } else {
    owned_clock_ = std::make_unique<util::VirtualClock>(topo_.world_size(),
                                                        topo_.num_nodes());
    clock_ = owned_clock_.get();
  }
  profile_ = inner_.profile();
  profile_.name = "simnet+" + profile_.name;
  profile_.single_node_only = false;
}

std::uint64_t SimNetTransport::serialization_ns(int src, int dst,
                                                std::size_t bytes) const {
  const std::uint64_t rate =
      topo_.same_node(src, dst) ? intra_ps_per_byte_ : inter_ps_per_byte_;
  return ser_ns(bytes, rate);
}

std::uint64_t SimNetTransport::cost_ns(int src, int dst,
                                       std::size_t bytes) const {
  const std::uint64_t alpha = topo_.same_node(src, dst)
                                  ? params_.intra_alpha_ns
                                  : params_.inter_alpha_ns;
  return alpha + serialization_ns(src, dst, bytes);
}

void SimNetTransport::charge_send(int src, int dst, std::size_t bytes,
                                  int tag) {
  const bool cross = !topo_.same_node(src, dst);
  const std::uint64_t ser = serialization_ns(src, dst, bytes);
  // The sender's injection pipe is busy for the serialization time; α is
  // in-flight latency, so it delays the arrival stamp but not the sender.
  clock_->advance_rank(src, ser);
  const std::uint64_t alpha =
      cross ? params_.inter_alpha_ns : params_.intra_alpha_ns;
  const std::uint64_t stamp = clock_->rank_now_ns(src) + alpha;
  if (cross) {
    clock_->charge_nic_tx(topo_.node_index(src), ser);
    clock_->charge_nic_rx(topo_.node_index(dst), ser);
  } else {
    clock_->charge_fabric(topo_.node_index(src),
                          ser_ns(bytes, fabric_ps_per_byte_));
  }
  // Enqueue BEFORE the inner op so the consume that matches the message
  // always finds its stamp, whatever the receiver thread's timing.
  PairState& ps = pair(src, dst);
  std::lock_guard<std::mutex> lock(ps.mu);
  TagFifo* fifo = nullptr;
  for (auto& f : ps.fifos) {
    if (f.tag == tag) {
      fifo = &f;
      break;
    }
  }
  if (fifo == nullptr) {
    ps.fifos.push_back(TagFifo{});
    fifo = &ps.fifos.back();
    fifo->tag = tag;
  }
  if (fifo->count == fifo->ring.size()) {
    // Grow the ring in place: re-linearize so head lands on 0. Capacity
    // only ever doubles, so steady-state traffic stops allocating once the
    // deepest in-flight window has been seen.
    std::vector<std::uint64_t> grown;
    grown.reserve(fifo->ring.empty() ? 8 : fifo->ring.size() * 2);
    for (std::size_t i = 0; i < fifo->count; ++i) {
      grown.push_back(fifo->ring[(fifo->head + i) % fifo->ring.size()]);
    }
    grown.resize(grown.capacity());
    fifo->ring = std::move(grown);
    fifo->head = 0;
  }
  fifo->ring[(fifo->head + fifo->count) % fifo->ring.size()] = stamp;
  ++fifo->count;
}

void SimNetTransport::charge_consume(int dst, int src, int tag) {
  std::uint64_t stamp = 0;
  bool have = false;
  {
    PairState& ps = pair(src, dst);
    std::lock_guard<std::mutex> lock(ps.mu);
    for (auto& f : ps.fifos) {
      if (f.tag != tag) continue;
      if (f.count > 0) {
        stamp = f.ring[f.head];
        f.head = (f.head + 1) % f.ring.size();
        --f.count;
        have = true;
      }
      break;
    }
  }
  // A missing stamp can only mean reset_inbound raced a recovery drain;
  // skipping the merge is safe (it only ever raises the receiver's clock).
  if (have) clock_->merge_rank(dst, stamp);
}

void SimNetTransport::send(int src, int dst, std::span<const std::byte> data,
                           int tag) {
  charge_send(src, dst, data.size(), tag);
  inner_.send(src, dst, data, tag);
}

void SimNetTransport::recv(int dst, int src, std::span<std::byte> data,
                           int tag) {
  inner_.recv(dst, src, data, tag);
  charge_consume(dst, src, tag);
}

bool SimNetTransport::supports_recv_add() const {
  return inner_.supports_recv_add();
}

void SimNetTransport::recv_add(int dst, int src, std::span<float> data,
                               int tag) {
  inner_.recv_add(dst, src, data, tag);
  charge_consume(dst, src, tag);
}

bool SimNetTransport::supports_direct_exchange() const {
  return topo_.is_single_node() && inner_.supports_direct_exchange();
}

bool SimNetTransport::supports_direct_exchange(int a, int b) const {
  return topo_.same_node(a, b) && inner_.supports_direct_exchange(a, b);
}

void SimNetTransport::direct_post(int src, int dst,
                                  std::span<const float> data, int tag) {
  charge_send(src, dst, data.size() * sizeof(float), tag);
  inner_.direct_post(src, dst, data, tag);
}

void SimNetTransport::direct_pull(int dst, int src, std::span<float> data,
                                  bool add, int tag) {
  inner_.direct_pull(dst, src, data, add, tag);
  charge_consume(dst, src, tag);
}

void SimNetTransport::direct_pull2(int dst, int src1, int src2,
                                   std::span<float> data, int tag) {
  inner_.direct_pull2(dst, src1, src2, data, tag);
  charge_consume(dst, src1, tag);
  charge_consume(dst, src2, tag);
}

void SimNetTransport::direct_wait(int src, int dst, int tag) {
  inner_.direct_wait(src, dst, tag);
}

int SimNetTransport::select_source(int dst, std::span<const int> candidates,
                                   int tag) {
  return inner_.select_source(dst, candidates, tag);
}

void SimNetTransport::set_policy(const CommPolicy& policy) {
  Transport::set_policy(policy);
  inner_.set_policy(policy);
}

void SimNetTransport::set_fault_injector(FaultInjector* injector) {
  inner_.set_fault_injector(injector);
}

void SimNetTransport::reset_inbound(int rank) {
  inner_.reset_inbound(rank);
  // Drop the stamps of every dropped message so recovery restarts with
  // matched queues (dst = rank, any src, any tag).
  for (int src = 0; src < topo_.world_size(); ++src) {
    PairState& ps = pair(src, rank);
    std::lock_guard<std::mutex> lock(ps.mu);
    for (auto& f : ps.fifos) {
      f.head = 0;
      f.count = 0;
    }
  }
}

// ---------------------------------------------------- HierarchicalTransport

HierarchicalTransport::HierarchicalTransport(Transport& inner,
                                             Topology topology)
    : Transport(topology.world_size()),
      inner_(inner),
      topo_(std::move(topology)) {
  CGX_CHECK_EQ(inner_.world_size(), topo_.world_size());
}

void HierarchicalTransport::send(int src, int dst,
                                 std::span<const std::byte> data, int tag) {
  inner_.send(src, dst, data, tag);
}

void HierarchicalTransport::recv(int dst, int src, std::span<std::byte> data,
                                 int tag) {
  inner_.recv(dst, src, data, tag);
}

bool HierarchicalTransport::supports_recv_add() const {
  return inner_.supports_recv_add();
}

void HierarchicalTransport::recv_add(int dst, int src, std::span<float> data,
                                     int tag) {
  inner_.recv_add(dst, src, data, tag);
}

bool HierarchicalTransport::supports_direct_exchange() const {
  return topo_.is_single_node() && inner_.supports_direct_exchange();
}

bool HierarchicalTransport::supports_direct_exchange(int a, int b) const {
  return topo_.same_node(a, b) && inner_.supports_direct_exchange(a, b);
}

void HierarchicalTransport::direct_post(int src, int dst,
                                        std::span<const float> data,
                                        int tag) {
  inner_.direct_post(src, dst, data, tag);
}

void HierarchicalTransport::direct_pull(int dst, int src,
                                        std::span<float> data, bool add,
                                        int tag) {
  inner_.direct_pull(dst, src, data, add, tag);
}

void HierarchicalTransport::direct_pull2(int dst, int src1, int src2,
                                         std::span<float> data, int tag) {
  inner_.direct_pull2(dst, src1, src2, data, tag);
}

void HierarchicalTransport::direct_wait(int src, int dst, int tag) {
  inner_.direct_wait(src, dst, tag);
}

int HierarchicalTransport::select_source(int dst,
                                         std::span<const int> candidates,
                                         int tag) {
  return inner_.select_source(dst, candidates, tag);
}

void HierarchicalTransport::set_policy(const CommPolicy& policy) {
  Transport::set_policy(policy);
  inner_.set_policy(policy);
}

void HierarchicalTransport::set_fault_injector(FaultInjector* injector) {
  inner_.set_fault_injector(injector);
}

void HierarchicalTransport::reset_inbound(int rank) {
  inner_.reset_inbound(rank);
}

}  // namespace cgx::comm
