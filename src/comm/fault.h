// Deterministic fault-injection harness for the communication stack.
//
// The reliability machinery (deadlines, checksums, retransmission, health
// accounting, engine round retry) is only trustworthy if it can be exercised
// against real faults, reproducibly. This header provides two pieces:
//
//   FaultInjector   — the fault model itself: per-link wire faults (message
//                     drops, payload bit flips, send delays / stragglers)
//                     plus per-rank schedules (hang at the k-th comm op,
//                     crash at the k-th comm op) and synthetic whole-round
//                     failures for engine-retry tests. Every decision is a
//                     pure hash of (seed, link, frame/op sequence, attempt),
//                     so a run is bit-reproducible per seed regardless of
//                     thread scheduling — and two runs with the same seed
//                     inject byte-identical corruption.
//
//   FaultyTransport — a decorator wrapping any Transport: it threads every
//                     operation through the injector's rank schedules and
//                     send-delay model, and installs the injector into the
//                     inner transport's receive paths (the ring-channel
//                     copy-out and the SHM peer-direct pull), where drops
//                     and corruption are applied under CRC protection.
//
// Division of labour: *when and where* faults strike is decided here;
// *surviving them* lives in the channel/transport/engine layers. Drops and
// corruption require CommPolicy::checksums (they bite the verified copy-out
// path); delays, hangs and crashes work on any configuration.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "comm/transport.h"

namespace cgx::comm {

// What the modelled wire did to one delivery attempt of one frame.
enum class WireOutcome {
  kOk,       // delivered intact
  kCorrupt,  // delivered with flipped bits (caught by CRC, retransmitted)
  kDrop,     // lost in flight (receiver NAKs, sender's retained copy re-sent)
};

// Thrown on the faulted rank's own thread when a scheduled hang elapses or a
// scheduled crash fires: the injected analogue of a dead training process.
// run_world annotates it with the rank and rethrows on the joining thread.
class FaultInjectedError : public std::runtime_error {
 public:
  FaultInjectedError(int rank, const char* kind);
  int rank;
};

// Per-link wire-fault probabilities. All zero (the default) = a clean link.
struct FaultSpec {
  double drop_prob = 0.0;     // P(delivery attempt is lost)
  double corrupt_prob = 0.0;  // P(delivery attempt arrives bit-flipped)
  double delay_prob = 0.0;    // P(a send is stalled by `delay`)
  std::chrono::microseconds delay{0};

  bool active() const {
    return drop_prob > 0.0 || corrupt_prob > 0.0 || delay_prob > 0.0;
  }
};

class FaultInjector {
 public:
  FaultInjector(std::uint64_t seed, int world_size);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // ---- configuration (call before traffic flows) ----

  void set_link(int src, int dst, const FaultSpec& spec);
  void set_all_links(const FaultSpec& spec);

  // After its `op_index`-th communication operation, `rank` stalls for
  // `duration` and then dies with FaultInjectedError — a straggler that
  // turns into a casualty. Peers see silence: with a bounded CommPolicy
  // every survivor raises a TimeoutError naming the stalled link; without
  // one they would hang forever (which is the seed behaviour being fixed).
  void schedule_hang(int rank, std::uint64_t op_index,
                     std::chrono::milliseconds duration);

  // `rank` dies with FaultInjectedError at its `op_index`-th operation.
  void schedule_crash(int rank, std::uint64_t op_index);

  // Planned departure (elastic membership): `rank` leaves the world
  // gracefully at the top of training step `step` — it participates in the
  // membership delta instead of dying mid-operation like schedule_crash.
  // Consumed by Membership::import_departures; the injector itself never
  // throws for a departure.
  void schedule_departure(int rank, std::uint64_t step);
  static constexpr std::uint64_t kNoDeparture = ~0ull;
  std::uint64_t departure_step(int rank) const;

  // Ops `rank` has entered so far. Only counted while a hang/crash schedule
  // exists for the rank or enable_op_counting() was called — the crash-
  // sweep tests measure a clean run's op count with counting forced on,
  // then schedule crashes at every index of that range.
  std::uint64_t rank_ops(int rank) const;
  void enable_op_counting() { count_ops_ = true; }

  // Marks engine round `round` (0-based allreduce call index) as failing on
  // its first attempt: CgxEngine consults round_fails() and exercises its
  // catch/quiesce/reset/retry path deterministically.
  void schedule_round_failure(std::uint64_t round);
  bool round_fails(std::uint64_t round, int attempt) const;

  // ---- runtime hooks ----

  // Called by FaultyTransport as `rank` enters each communication op:
  // advances the rank's op counter and fires any hang/crash schedule.
  void on_rank_op(int rank);

  // Wire model for one delivery attempt of one frame, keyed purely by
  // (seed, link, frame sequence, attempt) — no hidden state. Retried
  // attempts re-roll, so a lossy link eventually delivers (or exhausts the
  // receiver's retry budget).
  WireOutcome wire_outcome(int src, int dst, int tag, std::uint64_t frame,
                           int attempt) const;

  // Deterministic bit flip applied to a corrupted delivery: position and
  // mask are hashed from the same key as the outcome.
  void corrupt_bytes(std::span<std::byte> payload, int src, int dst, int tag,
                     std::uint64_t frame, int attempt) const;

  // Straggler model: how long the `op`-th send on (src, dst) is stalled.
  std::chrono::microseconds send_delay(int src, int dst,
                                       std::uint64_t op) const;

  std::uint64_t seed() const { return seed_; }
  int world_size() const { return world_; }

 private:
  struct RankSchedule {
    std::uint64_t hang_at = kNever;
    std::chrono::milliseconds hang_for{0};
    std::uint64_t crash_at = kNever;
    std::uint64_t depart_at_step = kNoDeparture;
    std::atomic<std::uint64_t> ops{0};
  };
  static constexpr std::uint64_t kNever = ~0ull;
  bool count_ops_ = false;

  std::size_t link_index(int src, int dst) const;

  const std::uint64_t seed_;
  const int world_;
  std::vector<FaultSpec> specs_;       // world^2, row-major by src
  std::vector<RankSchedule> ranks_;    // one per rank
  std::vector<std::uint64_t> failing_rounds_;
};

// Transport decorator that applies a FaultInjector to any backend. The
// wrapped transport keeps doing the real byte movement; this layer only
// decides when a rank stalls/dies and when a send is delayed, and plants the
// injector into the inner receive paths for wire-level drops/corruption.
class FaultyTransport final : public Transport {
 public:
  // Both references must outlive the decorator. Installs `injector` into
  // `inner`'s receive paths; detaches it again on destruction.
  FaultyTransport(Transport& inner, FaultInjector& injector);
  ~FaultyTransport() override;

  void send(int src, int dst, std::span<const std::byte> data,
            int tag) override;
  void recv(int dst, int src, std::span<std::byte> data, int tag) override;
  bool supports_recv_add() const override;
  void recv_add(int dst, int src, std::span<float> data, int tag) override;
  bool supports_direct_exchange() const override;
  bool supports_direct_exchange(int a, int b) const override;
  void direct_post(int src, int dst, std::span<const float> data,
                   int tag) override;
  void direct_pull(int dst, int src, std::span<float> data, bool add,
                   int tag) override;
  void direct_wait(int src, int dst, int tag) override;
  int select_source(int dst, std::span<const int> candidates,
                    int tag) override;
  const TransportProfile& profile() const override;

  void set_policy(const CommPolicy& policy) override;
  void set_fault_injector(FaultInjector* injector) override;
  void reset_inbound(int rank) override;
  void set_epoch(std::uint64_t epoch) override;
  std::uint64_t epoch() const override;
  std::uint64_t stale_frames_discarded() const override;

  // Accounting lives in the wrapped backend; expose it, not the shadow.
  TrafficRecorder& recorder() override { return inner_.recorder(); }
  const TrafficRecorder& recorder() const override {
    return inner_.recorder();
  }
  HealthMonitor& health() override { return inner_.health(); }
  const HealthMonitor& health() const override { return inner_.health(); }

  Transport& inner() { return inner_; }
  FaultInjector& injector() { return injector_; }

 private:
  // Stalls the sender when the injector's straggler model fires for this
  // link's next send, then advances the rank-op schedule.
  void before_send(int src, int dst);

  Transport& inner_;
  FaultInjector& injector_;
  // Per-link send sequence numbers keying the delay model (sends on a link
  // are ordered by the sending device thread, so this is deterministic).
  std::vector<std::atomic<std::uint64_t>> send_seq_;
};

}  // namespace cgx::comm
