#include "comm/membership.h"

#include <algorithm>
#include <thread>

#include "comm/fault.h"
#include "comm/tagspace.h"
#include "util/check.h"

namespace cgx::comm {
namespace {

using Clock = std::chrono::steady_clock;

// The 16-byte epoch-stamped vote exchanged between survivors during a
// membership round. `dead_mask` bit r set means "I have evidence rank r is
// gone" — the union over all ballots is the agreed dead set.
struct Ballot {
  std::uint64_t epoch;
  std::uint64_t dead_mask;
};
static_assert(sizeof(Ballot) == 16);

std::chrono::milliseconds remaining_ms(Clock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - Clock::now());
  return std::max(left, std::chrono::milliseconds{1});
}

}  // namespace

// ------------------------------------------------------------------- Gate

void Membership::Gate::set_expected(std::size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  expected_ = n;
  maybe_fire_locked();
}

bool Membership::Gate::arrive(std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lock(mu_);
  const std::uint64_t gen = generation_;
  ++arrived_;
  maybe_fire_locked();
  const auto fired = [this, gen] { return generation_ != gen; };
  if (fired()) return true;
  if (timeout.count() <= 0) {
    cv_.wait(lock, fired);
    return true;
  }
  if (cv_.wait_for(lock, timeout, fired)) return true;
  // Withdraw the arrival so a later population starts from a clean count
  // (same contract as util::Barrier::arrive_and_wait_for).
  --arrived_;
  return false;
}

void Membership::Gate::maybe_fire_locked() {
  if (expected_ > 0 && arrived_ >= expected_) {
    arrived_ = 0;
    ++generation_;
    cv_.notify_all();
  }
}

// ------------------------------------------------------------- Membership

Membership::Membership(int world_size)
    : world_size_(world_size),
      status_(static_cast<std::size_t>(world_size), Status::kActive),
      failed_(static_cast<std::size_t>(world_size)),
      errors_(static_cast<std::size_t>(world_size)),
      departure_step_(static_cast<std::size_t>(world_size), kNoStep),
      rejoin_step_(static_cast<std::size_t>(world_size), kNoStep) {
  CGX_CHECK_GT(world_size, 0);
  CGX_CHECK_LE(world_size, kMaxElasticWorld)
      << "elastic membership ballots carry the dead set as a u64 bitmask";
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<int> active(static_cast<std::size_t>(world_size));
  for (int r = 0; r < world_size; ++r) active[static_cast<std::size_t>(r)] = r;
  publish_locked(std::move(active));  // epoch 0: everyone present
}

const WorldView* Membership::publish_locked(std::vector<int> active) {
  auto fresh = std::make_unique<WorldView>();
  fresh->epoch = epoch_;
  fresh->active = std::move(active);
  fresh->dense_of.assign(static_cast<std::size_t>(world_size_), -1);
  for (std::size_t i = 0; i < fresh->active.size(); ++i) {
    fresh->dense_of[static_cast<std::size_t>(fresh->active[i])] =
        static_cast<int>(i);
  }
  CGX_CHECK(!fresh->active.empty());
  const WorldView* published = fresh.get();
  history_.push_back(std::move(fresh));
  current_.store(published, std::memory_order_release);
  return published;
}

void Membership::mark_rank_failed(int global_rank, std::exception_ptr error) {
  failed_[static_cast<std::size_t>(global_rank)].store(
      true, std::memory_order_release);
  if (error) {
    std::lock_guard<std::mutex> lock(mu_);
    if (!errors_[static_cast<std::size_t>(global_rank)]) {
      errors_[static_cast<std::size_t>(global_rank)] = std::move(error);
    }
  }
}

bool Membership::has_pending_failures() const {
  const WorldView* v = view();
  for (int r : v->active) {
    if (is_failed(r)) return true;
  }
  return false;
}

std::vector<int> Membership::snapshot_survivors() const {
  const WorldView* v = view();
  std::vector<int> survivors;
  survivors.reserve(v->active.size());
  for (int r : v->active) {
    if (!is_failed(r)) survivors.push_back(r);
  }
  return survivors;
}

std::uint64_t Membership::dead_mask() const {
  const WorldView* v = view();
  std::uint64_t mask = 0;
  for (int r : v->active) {
    if (is_failed(r)) mask |= std::uint64_t{1} << r;
  }
  return mask;
}

void Membership::schedule_departure(int global_rank, std::uint64_t step) {
  std::lock_guard<std::mutex> lock(mu_);
  CGX_CHECK(global_rank >= 0 && global_rank < world_size_);
  departure_step_[static_cast<std::size_t>(global_rank)] = step;
  has_schedules_.store(true, std::memory_order_release);
}

void Membership::schedule_rejoin(int global_rank, std::uint64_t step) {
  std::lock_guard<std::mutex> lock(mu_);
  CGX_CHECK(global_rank >= 0 && global_rank < world_size_);
  rejoin_step_[static_cast<std::size_t>(global_rank)] = step;
  has_schedules_.store(true, std::memory_order_release);
}

void Membership::import_departures(const FaultInjector& injector) {
  for (int r = 0; r < world_size_; ++r) {
    const std::uint64_t step = injector.departure_step(r);
    if (step != FaultInjector::kNoDeparture) schedule_departure(r, step);
  }
}

bool Membership::rejoin_scheduled(int global_rank) const {
  std::lock_guard<std::mutex> lock(mu_);
  return rejoin_step_[static_cast<std::size_t>(global_rank)] != kNoStep;
}

bool Membership::is_scheduled_joiner(int global_rank) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (rejoin_step_[static_cast<std::size_t>(global_rank)] == kNoStep) {
    return false;
  }
  // Only an incarnation spawned AFTER the rank left the world is a joiner;
  // the original thread (crash still ahead of it) trains normally.
  return failed_[static_cast<std::size_t>(global_rank)].load(
             std::memory_order_acquire) ||
         status_[static_cast<std::size_t>(global_rank)] != Status::kActive;
}

// --------------------------------------------------------- crash recovery

bool Membership::exchange_votes(Comm& comm, const std::vector<int>& survivors,
                                Clock::time_point deadline) {
  Transport& transport = comm.transport();
  const int me = comm.global_rank();
  Ballot mine{epoch(), dead_mask()};
  const auto mine_bytes = std::as_bytes(std::span<const Ballot>(&mine, 1));
  for (int peer : survivors) {
    if (peer != me) transport.send(me, peer, mine_bytes, kMembershipTag);
  }
  for (int peer : survivors) {
    if (peer == me) continue;
    Ballot theirs{};
    const auto theirs_bytes =
        std::as_writable_bytes(std::span<Ballot>(&theirs, 1));
    for (;;) {
      if (is_failed(peer)) return false;  // died mid-round: re-snapshot
      try {
        transport.recv(me, peer, theirs_bytes, kMembershipTag);
        break;
      } catch (const TimeoutError&) {
        if (Clock::now() >= deadline) throw;
      }
    }
    CGX_CHECK_EQ(theirs.epoch, mine.epoch)
        << "membership ballot from a different epoch (stale frame leaked "
           "past the fence?)";
    // Union the peer's evidence into the oracle.
    for (int r = 0; r < world_size_; ++r) {
      if ((theirs.dead_mask >> r) & 1u) {
        if (!is_failed(r)) mark_rank_failed(r, nullptr);
      }
    }
  }
  // Agreement iff the round taught us nothing new.
  return dead_mask() == mine.dead_mask;
}

void Membership::apply_crash_delta(std::uint64_t e0, Transport& transport,
                                   const ReshardFn& on_reshard) {
  std::vector<int> dead;
  const WorldView* fresh = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (epoch_ != e0) return;  // a concurrent round already applied it
    std::vector<int> active;
    for (int r = 0; r < world_size_; ++r) {
      const std::size_t i = static_cast<std::size_t>(r);
      if (status_[i] == Status::kActive &&
          failed_[i].load(std::memory_order_acquire)) {
        status_[i] = Status::kCrashed;
        dead.push_back(r);
      }
      if (status_[i] == Status::kActive) active.push_back(r);
    }
    CGX_CHECK(!dead.empty());
    ++epoch_;
    fresh = publish_locked(std::move(active));
  }
  // Fence first, then flush: traffic stamped with the old epoch that lands
  // after the reset is discarded at the ring layer instead of poisoning the
  // new world's streams.
  transport.set_epoch(fresh->epoch);
  for (int r = 0; r < world_size_; ++r) transport.reset_inbound(r);
  for (int d : dead) transport.health().quarantine_rank(d);
  reshards_.fetch_add(1, std::memory_order_acq_rel);
  if (on_reshard) on_reshard(*fresh);
}

Membership::Recovery Membership::recover(Comm& comm,
                                         std::chrono::milliseconds timeout,
                                         const ReshardFn& on_reshard) {
  Transport& transport = comm.transport();
  const CommPolicy& pol = transport.policy();
  CGX_CHECK(pol.bounded())
      << "elastic recovery needs a bounded CommPolicy: votes addressed to a "
         "dead peer must be able to expire";
  const int me = comm.global_rank();
  const auto start = Clock::now();
  const auto deadline = start + timeout;

  // Classification grace. A real crash reaches the oracle from the dying
  // thread's unwind — microseconds after the fault, and always before a
  // survivor's policy-bounded wait expires — so a short grace suffices to
  // tell a crash from a transient wire fault.
  const auto grace = std::clamp(pol.timeout / 4, std::chrono::milliseconds{1},
                                std::chrono::milliseconds{25});
  const auto grace_deadline = start + grace;
  while (!has_pending_failures()) {
    if (Clock::now() >= grace_deadline) return Recovery::kTransient;
    std::this_thread::sleep_for(std::chrono::microseconds{200});
  }

  const std::uint64_t e0 = epoch();
  for (;;) {
    if (epoch() != e0) break;  // another participant's round completed
    if (Clock::now() >= deadline) {
      throw TimeoutError(-1, me, kMembershipTag, timeout,
                         "membership agreement");
    }
    std::vector<int> survivors = snapshot_survivors();
    CGX_CHECK(std::binary_search(survivors.begin(), survivors.end(), me))
        << "rank " << me << " entered recovery while marked dead";
    if (!exchange_votes(comm, survivors, deadline)) continue;

    // Gate 1: every survivor holds the same dead set. The expected count is
    // shared gate state, so a waiter parked by an earlier (smaller) round
    // is released when the corrected population completes.
    recovery_gate_.set_expected(survivors.size());
    if (!recovery_gate_.arrive(remaining_ms(deadline))) {
      if (snapshot_survivors() != survivors) continue;  // cascade: re-vote
      throw TimeoutError(-1, me, kMembershipTag, timeout,
                         "membership agreement gate");
    }
    if (me == survivors.front()) {
      apply_crash_delta(e0, transport, on_reshard);
    }
    // Gate 2: nobody resumes until the delta (fence, flush, rebuild) is
    // fully applied.
    recovery_gate_.set_expected(survivors.size());
    if (!recovery_gate_.arrive(remaining_ms(deadline))) {
      throw TimeoutError(-1, me, kMembershipTag, timeout,
                         "membership commit gate");
    }
    break;
  }
  return Recovery::kReshard;
}

// ---------------------------------------------- planned departures/rejoins

Membership::StepAction Membership::apply_scheduled(
    Comm& comm, std::uint64_t step, const ReshardFn& on_reshard) {
  StepAction act;
  if (!has_schedules_.load(std::memory_order_acquire)) return act;
  const int me = comm.global_rank();
  const WorldView* v0 = view();  // consistent leader choice across ranks
  std::vector<int> departing;
  std::vector<int> joining;
  std::size_t expected = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (int r : v0->active) {
      if (departure_step_[static_cast<std::size_t>(r)] == step) {
        departing.push_back(r);
      }
    }
    for (int r = 0; r < world_size_; ++r) {
      if (!v0->is_active(r) &&
          rejoin_step_[static_cast<std::size_t>(r)] == step) {
        joining.push_back(r);
      }
    }
    if (departing.empty() && joining.empty()) return act;
    admission_step_ = step;
    expected = v0->active.size() + joining.size();
    join_cv_.notify_all();
  }

  // Gate 1: all pre-delta actives AND the admitted joiners.
  recovery_gate_.set_expected(expected);
  CGX_CHECK(recovery_gate_.arrive(admission_timeout_))
      << "rank " << me << ": scheduled membership delta at step " << step
      << " never assembled";
  if (me == v0->active.front()) {
    const WorldView* fresh = nullptr;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (int d : departing) {
        status_[static_cast<std::size_t>(d)] = Status::kDeparted;
        departure_step_[static_cast<std::size_t>(d)] = kNoStep;
      }
      for (int j : joining) {
        status_[static_cast<std::size_t>(j)] = Status::kActive;
        failed_[static_cast<std::size_t>(j)].store(false,
                                                   std::memory_order_release);
        rejoin_step_[static_cast<std::size_t>(j)] = kNoStep;
        errors_[static_cast<std::size_t>(j)] = nullptr;
      }
      std::vector<int> active;
      for (int r = 0; r < world_size_; ++r) {
        if (status_[static_cast<std::size_t>(r)] == Status::kActive) {
          active.push_back(r);
        }
      }
      join_root_ = -1;
      for (int r : v0->active) {
        if (std::find(departing.begin(), departing.end(), r) ==
            departing.end()) {
          join_root_ = r;
          break;
        }
      }
      CGX_CHECK_GE(join_root_, 0) << "every survivor departed at once";
      resume_step_ = step;
      admission_step_ = kNoStep;
      ++epoch_;
      fresh = publish_locked(std::move(active));
    }
    Transport& transport = comm.transport();
    transport.set_epoch(fresh->epoch);
    for (int r = 0; r < world_size_; ++r) transport.reset_inbound(r);
    for (int d : departing) transport.health().quarantine_rank(d);
    for (int j : joining) transport.health().clear_quarantine(j);
    reshards_.fetch_add(1, std::memory_order_acq_rel);
    if (on_reshard) on_reshard(*fresh);
  }
  // Gate 2: same population; nobody (joiner included) proceeds until the
  // new view is fully installed.
  recovery_gate_.set_expected(expected);
  CGX_CHECK(recovery_gate_.arrive(admission_timeout_))
      << "rank " << me << ": scheduled membership delta at step " << step
      << " never committed";
  act.changed = true;
  act.leave =
      std::find(departing.begin(), departing.end(), me) != departing.end();
  act.joined = joining.empty() ? -1 : joining.front();
  if (!joining.empty()) {
    std::lock_guard<std::mutex> lock(mu_);
    act.join_root = join_root_;
  }
  return act;
}

Membership::Admission Membership::await_rejoin(
    Comm& comm, std::chrono::milliseconds timeout) {
  const int me = comm.global_rank();
  std::size_t expected = 0;
  {
    std::unique_lock<std::mutex> lock(mu_);
    const bool opened = join_cv_.wait_for(lock, timeout, [&] {
      return admission_step_ != kNoStep &&
             admission_step_ == rejoin_step_[static_cast<std::size_t>(me)];
    });
    CGX_CHECK(opened) << "rank " << me
                      << ": rejoin admission window never opened";
    const WorldView* v = current_.load(std::memory_order_acquire);
    std::size_t joiners = 0;
    for (int r = 0; r < world_size_; ++r) {
      if (!v->is_active(r) &&
          rejoin_step_[static_cast<std::size_t>(r)] == admission_step_) {
        ++joiners;
      }
    }
    expected = v->active.size() + joiners;
  }
  recovery_gate_.set_expected(expected);
  CGX_CHECK(recovery_gate_.arrive(admission_timeout_))
      << "rank " << me << ": admission gate 1 never assembled";
  // The delta leader (a survivor) installs the new view between the gates.
  recovery_gate_.set_expected(expected);
  CGX_CHECK(recovery_gate_.arrive(admission_timeout_))
      << "rank " << me << ": admission gate 2 never committed";
  Admission adm;
  {
    std::lock_guard<std::mutex> lock(mu_);
    adm.resume_step = resume_step_;
    adm.root = join_root_;
  }
  CGX_CHECK(view()->is_active(me))
      << "rank " << me << " not active after admission";
  return adm;
}

// ------------------------------------------------------------------ gates

bool Membership::step_barrier(std::chrono::milliseconds timeout) {
  step_gate_.set_expected(static_cast<std::size_t>(active_count()));
  return step_gate_.arrive(timeout);
}

bool Membership::recovery_barrier(std::chrono::milliseconds timeout) {
  recovery_gate_.set_expected(static_cast<std::size_t>(active_count()));
  return recovery_gate_.arrive(timeout);
}

}  // namespace cgx::comm
