// Concrete transports: SHM, MPI-like, NCCL-like. See transport.h for the
// mapping onto the paper's backends.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <span>

#include "comm/ring_channel.h"
#include "comm/transport.h"

namespace cgx::comm {

// Tag namespace of the dense channel table. Collective tag bases live in
// [100, 500); tests use small tags. One slot per tag keeps lookup a pure
// array index.
inline constexpr int kTagSlots = 512;

// Dense channel table: one slot per (src, dst, tag) triple, sized
// world² × kTagSlots at construction. Lookup is an array index plus one
// atomic load — the per-message global map + mutex of the old design is
// gone. Channels themselves are created on first touch with a
// compare-exchange (lock-free; the loser frees its candidate), mirroring
// how the paper's backend registers each per-pair segment once and reuses
// it for the whole run.
class ChannelTable {
 public:
  ChannelTable(int world_size, std::size_t capacity_bytes,
               int tag_slots = kTagSlots);
  ~ChannelTable();

  ChannelTable(const ChannelTable&) = delete;
  ChannelTable& operator=(const ChannelTable&) = delete;

  RingChannel& channel(int src, int dst, int tag);

  // Lock-free probe: nullptr if the channel was never touched.
  const RingChannel* peek(int src, int dst, int tag) const;

  // Installs the reliability fabric shared by every channel, existing and
  // future (channels hold a pointer, so updates propagate). `policy` and
  // `health` must outlive the table; call before traffic flows.
  void bind_fabric(const CommPolicy* policy, HealthMonitor* health);
  void set_injector(FaultInjector* injector);

  // Blocking arrival-order select over the dst rank's doorbell: returns an
  // element of `srcs` whose (src, dst, tag) channel has committed bytes.
  int wait_any(int dst, std::span<const int> srcs, int tag);

  // Deadline-bounded variant: -1 if the deadline expires first.
  int wait_any_until(int dst, std::span<const int> srcs, int tag,
                     RingChannel::Clock::time_point deadline);

  // Drops all buffered traffic and poisoning on every (*, dst, *) channel.
  // Only safe on a quiesced fabric (see Transport::reset_inbound).
  void reset_inbound(int dst);

  // Elastic world epoch shared by every channel (see ChannelFabric): frames
  // pushed after set_epoch carry the new stamp, readers discard mismatches.
  void set_epoch(std::uint64_t epoch) {
    fabric_.epoch.store(epoch, std::memory_order_release);
  }
  std::uint64_t epoch() const {
    return fabric_.epoch.load(std::memory_order_acquire);
  }
  std::uint64_t stale_frames_discarded() const {
    return fabric_.stale_frames.load(std::memory_order_acquire);
  }

  // Sum of all physical ring slabs, monotone non-decreasing: the
  // transport-level analogue of CollectiveWorkspace::high_water_bytes().
  std::size_t slab_high_water_bytes() const;

  int tag_slots() const { return tag_slots_; }

 private:
  std::size_t index(int src, int dst, int tag) const;

  const int world_;
  const int tag_slots_;
  const std::size_t capacity_bytes_;
  ChannelFabric fabric_;
  std::vector<std::atomic<RingChannel*>> slots_;
  std::vector<RecvDoorbell> doorbells_;  // one per destination rank
};

// Shared base of the three backends: owns the dense table and implements
// arrival-order select_source over it.
class ChannelTransport : public Transport {
 public:
  ChannelTransport(int world_size, std::size_t capacity_bytes)
      : Transport(world_size), channels_(world_size, capacity_bytes) {
    // Channels see policy updates through this pointer (set_policy assigns
    // the base member in place), so the fabric is bound exactly once.
    channels_.bind_fabric(&policy_, &health_);
  }

  int select_source(int dst, std::span<const int> candidates,
                    int tag) override;

  // All ring-channel backends can reduce straight out of the slab — unless
  // checksums are on: an accumulated block cannot be retracted after a CRC
  // mismatch, so fault-hardened runs take the staged recv + add path.
  bool supports_recv_add() const override { return !policy_.checksums; }
  void recv_add(int dst, int src, std::span<float> data, int tag) override;

  void set_fault_injector(FaultInjector* injector) override {
    injector_ = injector;
    channels_.set_injector(injector);
  }
  void reset_inbound(int rank) override { channels_.reset_inbound(rank); }

  void set_epoch(std::uint64_t epoch) override { channels_.set_epoch(epoch); }
  std::uint64_t epoch() const override { return channels_.epoch(); }
  std::uint64_t stale_frames_discarded() const override {
    return channels_.stale_frames_discarded();
  }

  // Zero-steady-state-allocation harness: total ring slab bytes ever
  // allocated. Stable across calls once traffic shapes have been seen.
  std::size_t slab_high_water_bytes() const {
    return channels_.slab_high_water_bytes();
  }

 protected:
  using Clock = RingChannel::Clock;

  // Deadline-bounded channel ops with status -> structured-error mapping and
  // health accounting. When the policy is unbounded and checksums are off,
  // these add no clock calls and no extra work over the seed path.
  void push_frame(RingChannel& ch, int src, int dst, int tag,
                  std::span<const std::byte> data);
  void pop_frame(RingChannel& ch, int src, int dst, int tag,
                 std::span<std::byte> out);
  void pop_frame_add(RingChannel& ch, int src, int dst, int tag,
                     std::span<float> out);
  [[noreturn]] void fail_link(ChannelStatus st, int src, int dst, int tag,
                              Clock::time_point start, const char* where);

  ChannelTable channels_;
  FaultInjector* injector_ = nullptr;
};

// CGX's own backend: per-pair pre-registered shared-memory ring segments
// with IPC-event-style signalling. Single-node only (paper §4). One wire
// copy per side, no staging, no chunking: the lowest-overhead path.
class ShmTransport final : public ChannelTransport {
 public:
  // `segment_bytes` models the size of each per-pair UNIX segment; the
  // default (64 MiB) matches what fits the largest per-layer chunks in the
  // evaluation workloads. Larger messages stream through in pieces.
  explicit ShmTransport(int world_size,
                        std::size_t segment_bytes = 64ull << 20);

  void send(int src, int dst, std::span<const std::byte> data,
            int tag) override;
  void recv(int dst, int src, std::span<std::byte> data, int tag) override;

  // IPC-style peer-direct access (see Transport): descriptors and acks ride
  // the per-pair rings; the payload itself never crosses a channel.
  bool supports_direct_exchange() const override { return true; }
  void direct_post(int src, int dst, std::span<const float> data,
                   int tag) override;
  void direct_pull(int dst, int src, std::span<float> data, bool add,
                   int tag) override;
  void direct_pull2(int dst, int src1, int src2, std::span<float> data,
                    int tag) override;
  void direct_wait(int src, int dst, int tag) override;

  const TransportProfile& profile() const override { return profile_; }

 private:
  // Verified peer-direct pull under checksums: copy the peer span through a
  // staging buffer (where the wire tap may bite), CRC-check, retry with
  // backoff, and after retry exhaustion fall back to a tap-free direct read
  // of the authoritative peer memory (recorded as a fallback).
  void pull_verified(int src, int dst, int tag, std::span<const float> peer,
                     std::uint32_t want, std::span<float> data, bool add);

  TransportProfile profile_;
  // Per-link pull sequence numbers: the deterministic fault keying for the
  // direct path (pulls on one (src, dst) link are ordered by the receiving
  // device thread, so the sequence is schedule-independent).
  std::vector<std::atomic<std::uint64_t>> direct_seq_;
};

// GPU-aware MPI: every message is staged through a host buffer (the library
// cannot control device-internal transfers, so host/device must
// synchronise; paper §4). The wire copy goes straight into the mailbox
// ring; the staging cost is attributed by the profile's extra_copies — the
// old implementation paid a real extra heap copy on top, which charged the
// analogue twice.
class MpiTransport final : public ChannelTransport {
 public:
  explicit MpiTransport(int world_size);

  void send(int src, int dst, std::span<const std::byte> data,
            int tag) override;
  void recv(int dst, int src, std::span<std::byte> data, int tag) override;
  const TransportProfile& profile() const override { return profile_; }

 private:
  TransportProfile profile_;
};

// NCCL-style transport: messages are split into fixed-size chunks and
// pipelined through bounded per-pair FIFOs; each chunk pays a kernel-launch
// cost in the profile. This is also the transport QNCCL builds on.
class NcclTransport final : public ChannelTransport {
 public:
  explicit NcclTransport(int world_size,
                         std::size_t chunk_bytes = 1ull << 19);

  void send(int src, int dst, std::span<const std::byte> data,
            int tag) override;
  void recv(int dst, int src, std::span<std::byte> data, int tag) override;
  void recv_add(int dst, int src, std::span<float> data, int tag) override;
  const TransportProfile& profile() const override { return profile_; }

 private:
  TransportProfile profile_;
};

enum class Backend { Shm, Mpi, Nccl };

const char* backend_name(Backend b);
std::unique_ptr<Transport> make_transport(Backend b, int world_size);

}  // namespace cgx::comm
