// Concrete transports: SHM, MPI-like, NCCL-like. See transport.h for the
// mapping onto the paper's backends.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <tuple>

#include "comm/message_queue.h"
#include "comm/transport.h"

namespace cgx::comm {

// Shared plumbing: channels keyed by (src, dst, tag), created lazily.
class ChannelTable {
 public:
  explicit ChannelTable(std::size_t capacity_bytes)
      : capacity_bytes_(capacity_bytes) {}

  MessageQueue& channel(int src, int dst, int tag);

 private:
  const std::size_t capacity_bytes_;
  std::mutex mutex_;
  std::map<std::tuple<int, int, int>, std::unique_ptr<MessageQueue>>
      channels_;
};

// CGX's own backend: per-pair pre-registered shared-memory segments with
// IPC-event-style signalling. Single-node only (paper §4). One wire copy,
// no staging, no chunking: the lowest-overhead path.
class ShmTransport final : public Transport {
 public:
  // `segment_bytes` models the size of each per-pair UNIX segment; the
  // default (64 MiB) matches what fits the largest per-layer chunks in the
  // evaluation workloads.
  explicit ShmTransport(int world_size,
                        std::size_t segment_bytes = 64ull << 20);

  void send(int src, int dst, std::span<const std::byte> data,
            int tag) override;
  void recv(int dst, int src, std::span<std::byte> data, int tag) override;
  const TransportProfile& profile() const override { return profile_; }

 private:
  ChannelTable channels_;
  TransportProfile profile_;
};

// GPU-aware MPI: every message is staged through a host buffer (the library
// cannot control device-internal transfers, so host/device must synchronise;
// paper §4). The extra copy is performed for real to keep the behavioural
// analogy honest, and the profile carries the high per-message overhead.
class MpiTransport final : public Transport {
 public:
  explicit MpiTransport(int world_size);

  void send(int src, int dst, std::span<const std::byte> data,
            int tag) override;
  void recv(int dst, int src, std::span<std::byte> data, int tag) override;
  const TransportProfile& profile() const override { return profile_; }

 private:
  ChannelTable channels_;
  TransportProfile profile_;
};

// NCCL-style transport: messages are split into fixed-size chunks and
// pipelined through bounded per-pair FIFOs; each chunk pays a kernel-launch
// cost in the profile. This is also the transport QNCCL builds on.
class NcclTransport final : public Transport {
 public:
  explicit NcclTransport(int world_size,
                         std::size_t chunk_bytes = 1ull << 19);

  void send(int src, int dst, std::span<const std::byte> data,
            int tag) override;
  void recv(int dst, int src, std::span<std::byte> data, int tag) override;
  const TransportProfile& profile() const override { return profile_; }

 private:
  ChannelTable channels_;
  TransportProfile profile_;
};

enum class Backend { Shm, Mpi, Nccl };

const char* backend_name(Backend b);
std::unique_ptr<Transport> make_transport(Backend b, int world_size);

}  // namespace cgx::comm
