// Uncompressed collective operations over a Transport.
//
// Implements the three reduction schemes analysed in the paper (§3,
// "Reduction Schemes"):
//
//   Scatter-Reduce-Allgather (SRA) — two rounds of direct exchanges;
//     bandwidth O(d(N-1)) per round total, latency 2α. CGX's default:
//     with compression it performs exactly two compress/decompress cycles.
//   Ring — bandwidth-optimal O(d(N-1)/N) per rank, latency 2α(N-1).
//   Tree — hierarchical parameter-server; O(2d log N), latency 2α log N.
//
// All collectives are SPMD: every rank of the world must call the same
// function with the same sizes. Reduction is summation in float, matching
// what the GPU kernels do. A world of size 1 is a no-op.
#pragma once

#include <cstddef>
#include <span>
#include <utility>

#include "comm/world.h"

namespace cgx::comm {

enum class ReductionScheme { ScatterReduceAllgather, Ring, Tree };

const char* reduction_scheme_name(ReductionScheme s);

// Element range [first, last) of chunk i when d elements are split across n
// ranks (balanced split, first chunks one element larger on remainder).
std::pair<std::size_t, std::size_t> chunk_range(std::size_t d, int n, int i);

// In-place sum-allreduce with the chosen scheme. The `scratch` overloads
// take a caller-owned accumulation buffer (scratch.size() >= data.size()
// always suffices; SRA/Ring need only one chunk) so steady-state callers —
// the engines' per-rank workspaces — make no heap allocation per call. The
// plain overloads allocate a transient buffer.
void allreduce(Comm& comm, std::span<float> data, ReductionScheme scheme);
void allreduce(Comm& comm, std::span<float> data, ReductionScheme scheme,
               std::span<float> scratch);

void allreduce_sra(Comm& comm, std::span<float> data);
void allreduce_sra(Comm& comm, std::span<float> data,
                   std::span<float> scratch);
void allreduce_ring(Comm& comm, std::span<float> data);
void allreduce_ring(Comm& comm, std::span<float> data,
                    std::span<float> scratch);
void allreduce_tree(Comm& comm, std::span<float> data);
void allreduce_tree(Comm& comm, std::span<float> data,
                    std::span<float> scratch);

// In-place broadcast from `root`.
void broadcast(Comm& comm, std::span<float> data, int root);

// Gathers each rank's `in` into `out` ordered by rank;
// out.size() == in.size() * world size.
void allgather(Comm& comm, std::span<const float> in, std::span<float> out);

// Direct reduce-scatter: afterwards each rank's own chunk (per chunk_range)
// holds the full sum; other positions are unspecified.
void reduce_scatter(Comm& comm, std::span<float> data);

}  // namespace cgx::comm
