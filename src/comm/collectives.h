// Uncompressed collective operations over a Transport.
//
// Implements the three reduction schemes analysed in the paper (§3,
// "Reduction Schemes"):
//
//   Scatter-Reduce-Allgather (SRA) — two rounds of direct exchanges;
//     bandwidth O(d(N-1)) per round total, latency 2α. CGX's default:
//     with compression it performs exactly two compress/decompress cycles.
//   Ring — bandwidth-optimal O(d(N-1)/N) per rank, latency 2α(N-1).
//   Tree — hierarchical parameter-server; O(2d log N), latency 2α log N.
//
// All collectives are SPMD: every rank of the world must call the same
// function with the same sizes. Reduction is summation in float, matching
// what the GPU kernels do. A world of size 1 is a no-op.
#pragma once

#include <array>
#include <cstddef>
#include <span>
#include <utility>

#include "comm/world.h"

namespace cgx::comm {

enum class ReductionScheme { ScatterReduceAllgather, Ring, Tree };

const char* reduction_scheme_name(ReductionScheme s);

// Worlds up to this size get any-source receives with stack-only
// bookkeeping; larger worlds fall back to fixed-order (correct, slower).
inline constexpr int kMaxAnySourceWorld = 128;

// Calls fn(p) exactly once for every rank in `peers`, servicing whichever
// peer has bytes pending for (this rank, tag) first. fn must consume the
// peer's entire contribution for this tag before returning, so the next
// selection sees fresh arrivals only.
template <typename Fn>
void for_each_by_arrival(Comm& comm, std::span<const int> peers, int tag,
                         Fn&& fn) {
  if (peers.size() > static_cast<std::size_t>(kMaxAnySourceWorld)) {
    for (int p : peers) fn(p);
    return;
  }
  std::array<int, static_cast<std::size_t>(kMaxAnySourceWorld)> remaining;
  int count = 0;
  for (int p : peers) remaining[static_cast<std::size_t>(count++)] = p;
  while (count > 0) {
    // A single remaining peer needs no any-source wait — and receiving on
    // the named link means a silent peer surfaces as a TimeoutError that
    // identifies exactly that link instead of an anonymous any-source wait.
    const int p = count == 1
                      ? remaining[0]
                      : comm.select_source(
                            {remaining.data(),
                             static_cast<std::size_t>(count)},
                            tag);
    fn(p);
    for (int i = 0; i < count; ++i) {
      if (remaining[static_cast<std::size_t>(i)] == p) {
        remaining[static_cast<std::size_t>(i)] =
            remaining[static_cast<std::size_t>(count - 1)];
        --count;
        break;
      }
    }
  }
}

// Element range [first, last) of chunk i when d elements are split across n
// ranks (balanced split, first chunks one element larger on remainder).
std::pair<std::size_t, std::size_t> chunk_range(std::size_t d, int n, int i);

// In-place sum-allreduce with the chosen scheme. The `scratch` overloads
// take a caller-owned accumulation buffer (scratch.size() >= data.size()
// always suffices; the chunk pipeline needs only one pipeline sub-chunk,
// 64Ki floats) so steady-state callers — the engines' per-rank workspaces —
// make no heap allocation per call. The plain overloads allocate a
// transient buffer.
//
// Large buffers move as pipelined sub-chunk messages: the fold of sub-chunk
// k overlaps the transit of sub-chunk k+1, and scatter-reduce contributions
// are RECEIVED in arrival order (any-source receive over the transport's
// dense channel table, staged into per-peer scratch slots) so one slow peer
// does not serialise the drain. The adds themselves always run in fixed
// rank order, so results stay bit-identical across ranks AND run to run —
// arrival order decides only scheduling, never the float association. Byte
// volume per link is unchanged by the pipelining; only message counts grow.
void allreduce(Comm& comm, std::span<float> data, ReductionScheme scheme);
void allreduce(Comm& comm, std::span<float> data, ReductionScheme scheme,
               std::span<float> scratch);

void allreduce_sra(Comm& comm, std::span<float> data);
void allreduce_sra(Comm& comm, std::span<float> data,
                   std::span<float> scratch);
void allreduce_ring(Comm& comm, std::span<float> data);
void allreduce_ring(Comm& comm, std::span<float> data,
                    std::span<float> scratch);
void allreduce_tree(Comm& comm, std::span<float> data);
void allreduce_tree(Comm& comm, std::span<float> data,
                    std::span<float> scratch);

// In-place broadcast from `root`.
void broadcast(Comm& comm, std::span<float> data, int root);

// Gathers each rank's `in` into `out` ordered by rank;
// out.size() == in.size() * world size.
void allgather(Comm& comm, std::span<const float> in, std::span<float> out);

// Direct reduce-scatter: afterwards each rank's own chunk (per chunk_range)
// holds the full sum; other positions are unspecified. The scratch overload
// follows the same zero-allocation contract as the allreduce family.
void reduce_scatter(Comm& comm, std::span<float> data);
void reduce_scatter(Comm& comm, std::span<float> data,
                    std::span<float> scratch);

}  // namespace cgx::comm
