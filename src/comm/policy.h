// Reliability policy, structured communication errors, and per-link health
// accounting — shared by the ring channels (below the transports) and the
// transport/collective layers (above them).
//
// The seed stack assumed every peer is prompt and every blocking wait
// eventually returns; a hung rank deadlocked the world forever. A CommPolicy
// bounds every blocking wait with a deadline and turns expiry into a
// structured TimeoutError naming the stalled link, so QSGD-style convergence
// guarantees degrade into *visible* failures instead of silent hangs, and
// L-GreCo-style adaptive policies get per-link health signals to react to.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace cgx::comm {

// Knobs governing every blocking communication wait of a transport.
// Defaults preserve the seed semantics exactly: wait forever, no checksums —
// and, with checksums off, zero bytes and zero branches are added to the
// wire format, keeping the zero-steady-state-allocation and overhead
// contracts intact.
struct CommPolicy {
  // Upper bound on any single blocking wait (receive, send backpressure,
  // any-source select, barrier, peer-direct rendezvous). 0 = wait forever.
  std::chrono::milliseconds timeout{0};
  // Checksummed frames: retransmission attempts before the link is declared
  // corrupt (ChecksumError). Also caps wire-drop retries per frame... the
  // retry loop re-copies the frame from the sender's retained ring slab.
  int max_retries = 4;
  // Base backoff between retransmission attempts; doubled per attempt and
  // capped at 64x so a flaky link cannot stretch a frame receive unboundedly.
  std::chrono::microseconds backoff{50};
  // Stamp a CRC32 into each ring frame header and verify it after the
  // receiver's copy-out (see ring_channel.h "Wire format"). Off by default:
  // the flag bit rides the existing 8-byte length word, so disabled
  // checksums cost nothing on the wire.
  bool checksums = false;

  bool bounded() const { return timeout.count() > 0; }
};

// Base of all structured communication failures. `src`/`dst` name the
// directed link (-1 = not attributable to one peer, e.g. an any-source
// select or a world barrier); `tag` the channel tag (-1 = none).
class CommError : public std::runtime_error {
 public:
  CommError(std::string what, int src, int dst, int tag)
      : std::runtime_error(std::move(what)), src(src), dst(dst), tag(tag) {}
  int src;
  int dst;
  int tag;
};

// A deadline-bounded wait expired: the peer is hung, crashed, or stalled
// past CommPolicy::timeout. `waited` is how long the caller actually blocked.
class TimeoutError : public CommError {
 public:
  TimeoutError(int src, int dst, int tag, std::chrono::milliseconds waited,
               const char* where);
  std::chrono::milliseconds waited;
};

// A checksummed frame failed verification on every retransmission attempt:
// the link delivers corrupt bytes faster than the retry budget can mask.
class ChecksumError : public CommError {
 public:
  ChecksumError(int src, int dst, int tag, int attempts);
  int attempts;
};

// Per-link health counters: consecutive-failure streaks and a latency EWMA,
// kept as a dense world x world array of atomics (TrafficRecorder-style —
// no lock, no map node, no contention between links). Feeds StepReport and
// future adaptive policy; all methods are safe from any device thread.
class HealthMonitor {
 public:
  struct Link {
    std::atomic<std::uint32_t> consecutive_failures{0};
    std::atomic<std::uint64_t> timeouts{0};
    std::atomic<std::uint64_t> retransmits{0};
    std::atomic<std::uint64_t> wire_drops{0};
    std::atomic<std::uint64_t> fallbacks{0};
    // Exponentially weighted moving average of successful receive waits, in
    // microseconds (alpha = 1/8). Updated with a CAS loop; read lock-free.
    std::atomic<double> latency_ewma_us{0.0};
    // Elastic membership: the peer on this link has been declared dead (or
    // departed) and the link must not be retried until the rank rejoins.
    std::atomic<bool> quarantined{false};
  };

  explicit HealthMonitor(int world_size);

  void record_success(int src, int dst, double wait_us);
  void record_timeout(int src, int dst);
  void record_retransmit(int src, int dst);
  void record_wire_drop(int src, int dst);
  void record_fallback(int src, int dst);
  void reset();

  // Elastic membership: flags every link touching `rank` (both directions)
  // so adaptive policy and diagnostics stop treating its silence as link
  // trouble. Cleared on rejoin. Safe from any device thread.
  void quarantine_rank(int rank);
  void clear_quarantine(int rank);
  bool is_quarantined(int src, int dst) const;
  std::size_t quarantined_links() const;

  const Link& link(int src, int dst) const { return links_[index(src, dst)]; }
  Link& link(int src, int dst) { return links_[index(src, dst)]; }

  std::uint64_t total_timeouts() const;
  std::uint64_t total_retransmits() const;
  std::uint64_t total_wire_drops() const;
  std::uint64_t total_fallbacks() const;

  int world_size() const { return world_size_; }

 private:
  std::size_t index(int src, int dst) const;

  const int world_size_;
  std::vector<Link> links_;  // world_size^2, row-major by src
};

}  // namespace cgx::comm
