// Basic layers: Linear, activations, LayerNorm, Embedding, Dropout,
// Flatten. Convolution/pooling live in conv.h; attention in attention.h.
#pragma once

#include <functional>

#include "nn/module.h"

namespace cgx::nn {

// y = x W + b with W [in x out] (row-major), treating x as
// [numel/in, in]. Output shape copies x's leading dims with the last one
// replaced by `out`.
class Linear final : public Module {
 public:
  Linear(std::size_t in, std::size_t out, util::Rng& rng, bool bias = true);

  const tensor::Tensor& forward(const tensor::Tensor& x, bool train) override;
  const tensor::Tensor& backward(const tensor::Tensor& grad_out) override;
  void collect_params(const std::string& prefix,
                      std::vector<Param*>& out) override;
  std::string kind() const override { return "linear"; }

  Param& weight() { return weight_; }

 private:
  std::size_t in_, out_;
  Param weight_;
  Param bias_;
  bool has_bias_;
  tensor::Tensor input_;  // cached for backward
  tensor::Tensor output_;
  tensor::Tensor grad_in_;
};

class ReLU final : public Module {
 public:
  const tensor::Tensor& forward(const tensor::Tensor& x, bool train) override;
  const tensor::Tensor& backward(const tensor::Tensor& grad_out) override;
  std::string kind() const override { return "relu"; }

 private:
  tensor::Tensor input_;
  tensor::Tensor output_;
  tensor::Tensor grad_in_;
};

// tanh-approximation GELU, as used by BERT/GPT.
class Gelu final : public Module {
 public:
  const tensor::Tensor& forward(const tensor::Tensor& x, bool train) override;
  const tensor::Tensor& backward(const tensor::Tensor& grad_out) override;
  std::string kind() const override { return "gelu"; }

 private:
  tensor::Tensor input_;
  tensor::Tensor output_;
  tensor::Tensor grad_in_;
};

class Tanh final : public Module {
 public:
  const tensor::Tensor& forward(const tensor::Tensor& x, bool train) override;
  const tensor::Tensor& backward(const tensor::Tensor& grad_out) override;
  std::string kind() const override { return "tanh"; }

 private:
  tensor::Tensor output_;
  tensor::Tensor grad_in_;
};

// Normalizes the last dimension; learnable gain/bias. The canonical
// "sensitive while small" layer the CGX filters keep in full precision.
class LayerNorm final : public Module {
 public:
  explicit LayerNorm(std::size_t dim, float eps = 1e-5f);

  const tensor::Tensor& forward(const tensor::Tensor& x, bool train) override;
  const tensor::Tensor& backward(const tensor::Tensor& grad_out) override;
  void collect_params(const std::string& prefix,
                      std::vector<Param*>& out) override;
  std::string kind() const override { return "ln"; }

 private:
  std::size_t dim_;
  float eps_;
  Param gain_;
  Param bias_;
  tensor::Tensor normalized_;  // x_hat, cached
  std::vector<float> inv_std_;
  std::vector<float> dxhat_;  // backward scratch, grow-only
  tensor::Tensor output_;
  tensor::Tensor grad_in_;
};

// Token embedding: input [B, T] of (float-encoded) token ids -> [B, T, D].
// Also usable as a learned positional embedding via position_mode(), where
// the row index is the position t rather than the input value.
class Embedding final : public Module {
 public:
  Embedding(std::size_t vocab, std::size_t dim, util::Rng& rng);

  const tensor::Tensor& forward(const tensor::Tensor& x, bool train) override;
  const tensor::Tensor& backward(const tensor::Tensor& grad_out) override;
  void collect_params(const std::string& prefix,
                      std::vector<Param*>& out) override;
  std::string kind() const override { return "embedding"; }

 private:
  std::size_t vocab_, dim_;
  Param table_;
  std::vector<std::size_t> last_ids_;
  tensor::Tensor output_;
  tensor::Tensor grad_in_;  // zeros; ids are not differentiable
};

// Inverted dropout; identity in eval mode.
class Dropout final : public Module {
 public:
  Dropout(double p, util::Rng& rng);

  const tensor::Tensor& forward(const tensor::Tensor& x, bool train) override;
  const tensor::Tensor& backward(const tensor::Tensor& grad_out) override;
  std::string kind() const override { return "dropout"; }

 private:
  double p_;
  util::Rng* rng_;
  std::vector<bool> mask_;
  bool train_mode_ = false;
  tensor::Tensor output_;
  tensor::Tensor grad_in_;
};

// Collapses all dims after the batch dim.
class Flatten final : public Module {
 public:
  const tensor::Tensor& forward(const tensor::Tensor& x, bool train) override;
  const tensor::Tensor& backward(const tensor::Tensor& grad_out) override;
  std::string kind() const override { return "flatten"; }

 private:
  tensor::Shape input_shape_;
  tensor::Tensor output_;
  tensor::Tensor grad_in_;
};

}  // namespace cgx::nn
