#include "nn/conv.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "tensor/tensor_ops.h"
#include "util/check.h"
#include "util/simd.h"

namespace cgx::nn {
namespace {

std::size_t conv_out_dim(std::size_t in, std::size_t k, std::size_t stride,
                         std::size_t pad) {
  CGX_CHECK_GE(in + 2 * pad + 1, k + 1);
  return (in + 2 * pad - k) / stride + 1;
}

}  // namespace

Conv2d::Conv2d(std::size_t in_channels, std::size_t out_channels,
               std::size_t kernel, std::size_t stride, std::size_t pad,
               util::Rng& rng, bool bias)
    : in_c_(in_channels),
      out_c_(out_channels),
      k_(kernel),
      stride_(stride),
      pad_(pad),
      weight_("weight",
              tensor::Shape{out_channels, in_channels, kernel, kernel}),
      bias_("bias", tensor::Shape{out_channels}),
      has_bias_(bias) {
  CGX_CHECK_GT(stride, 0u);
  const float fan_in = static_cast<float>(in_channels * kernel * kernel);
  const float bound = std::sqrt(3.0f / fan_in);
  weight_.value.fill_uniform(rng, -bound, bound);
  bias_.value.zero();
}

void Conv2d::im2col(std::span<const float> image, std::size_t h,
                    std::size_t w, std::size_t oh, std::size_t ow) {
  // col row (ic, ky, kx), column (oy, ox): the input pixel that kernel tap
  // (ky, kx) sees at output position (oy, ox); zero where the tap falls in
  // the padding.
  const std::size_t cols = oh * ow;
  float* col = col_.data();
  for (std::size_t ic = 0; ic < in_c_; ++ic) {
    const float* plane = image.data() + ic * h * w;
    for (std::size_t ky = 0; ky < k_; ++ky) {
      for (std::size_t kx = 0; kx < k_; ++kx) {
        float* row = col + ((ic * k_ + ky) * k_ + kx) * cols;
        for (std::size_t oy = 0; oy < oh; ++oy) {
          const std::ptrdiff_t iy =
              static_cast<std::ptrdiff_t>(oy * stride_ + ky) -
              static_cast<std::ptrdiff_t>(pad_);
          float* dst = row + oy * ow;
          if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(h)) {
            std::memset(dst, 0, ow * sizeof(float));
            continue;
          }
          const float* src = plane + static_cast<std::size_t>(iy) * w;
          if (stride_ == 1) {
            // Contiguous run; clip the [kx - pad, kx - pad + ow) window.
            const std::ptrdiff_t ix0 =
                static_cast<std::ptrdiff_t>(kx) -
                static_cast<std::ptrdiff_t>(pad_);
            std::ptrdiff_t lo = std::max<std::ptrdiff_t>(0, -ix0);
            std::ptrdiff_t hi = std::min<std::ptrdiff_t>(
                static_cast<std::ptrdiff_t>(ow),
                static_cast<std::ptrdiff_t>(w) - ix0);
            if (hi < lo) hi = lo;
            if (lo > 0) std::memset(dst, 0, lo * sizeof(float));
            if (hi > lo) {
              std::memcpy(dst + lo, src + ix0 + lo, (hi - lo) * sizeof(float));
            }
            if (hi < static_cast<std::ptrdiff_t>(ow)) {
              std::memset(dst + hi, 0, (ow - hi) * sizeof(float));
            }
          } else {
            for (std::size_t ox = 0; ox < ow; ++ox) {
              const std::ptrdiff_t ix =
                  static_cast<std::ptrdiff_t>(ox * stride_ + kx) -
                  static_cast<std::ptrdiff_t>(pad_);
              dst[ox] = (ix < 0 || ix >= static_cast<std::ptrdiff_t>(w))
                            ? 0.0f
                            : src[ix];
            }
          }
        }
      }
    }
  }
}

const tensor::Tensor& Conv2d::forward(const tensor::Tensor& x, bool train) {
  (void)train;
  CGX_CHECK_EQ(x.rank(), 4u);
  CGX_CHECK_EQ(x.dim(1), in_c_);
  const std::size_t b = x.dim(0), h = x.dim(2), w = x.dim(3);
  const std::size_t oh = conv_out_dim(h, k_, stride_, pad_);
  const std::size_t ow = conv_out_dim(w, k_, stride_, pad_);
  input_ = x.clone();
  output_ = tensor::Tensor(tensor::Shape{b, out_c_, oh, ow});
  const auto in = x.data();
  const auto wgt = weight_.value.data();
  const auto bs = bias_.value.data();
  auto out = output_.data();

  const std::size_t ck2 = in_c_ * k_ * k_;
  const std::size_t cols = oh * ow;
  col_.resize(ck2 * cols);
  // Per image: out[n] = W[out_c x ck2] * col[ck2 x cols]. Images run
  // serially; the tiled matmul parallelizes internally, so the result is
  // bit-identical at any thread count.
  for (std::size_t n = 0; n < b; ++n) {
    im2col(in.subspan(n * in_c_ * h * w, in_c_ * h * w), h, w, oh, ow);
    const std::span<float> out_n = out.subspan(n * out_c_ * cols,
                                               out_c_ * cols);
    tensor::matmul(wgt, col_, out_n, out_c_, ck2, cols);
    if (has_bias_) {
      for (std::size_t oc = 0; oc < out_c_; ++oc) {
        float* row = out_n.data() + oc * cols;
        const float beta = bs[oc];
        for (std::size_t j = 0; j < cols; ++j) row[j] += beta;
      }
    }
  }
  return output_;
}

const tensor::Tensor& Conv2d::backward(const tensor::Tensor& grad_out) {
  const std::size_t b = input_.dim(0), h = input_.dim(2), w = input_.dim(3);
  const std::size_t oh = output_.dim(2), ow = output_.dim(3);
  CGX_CHECK_EQ(grad_out.numel(), output_.numel());
  grad_in_ = tensor::Tensor(input_.shape());
  const auto in = input_.data();
  const auto wgt = weight_.value.data();
  const auto go = grad_out.data();
  auto wg = weight_.grad.data();
  auto bg = bias_.grad.data();
  auto gi = grad_in_.data();

  const std::size_t ck2 = in_c_ * k_ * k_;
  const std::size_t cols = oh * ow;
  col_.resize(ck2 * cols);
  dcol_.resize(ck2 * cols);
  dw_.resize(out_c_ * ck2);
  for (std::size_t n = 0; n < b; ++n) {
    const std::span<const float> go_n =
        go.subspan(n * out_c_ * cols, out_c_ * cols);
    if (has_bias_) {
      for (std::size_t oc = 0; oc < out_c_; ++oc) {
        bg[oc] += static_cast<float>(
            util::simd::reduce_sum(go_n.subspan(oc * cols, cols)));
      }
    }
    // dW += go_n[out_c x cols] * col^T; dcol = W^T * go_n; then col2im.
    im2col(in.subspan(n * in_c_ * h * w, in_c_ * h * w), h, w, oh, ow);
    tensor::matmul_a_bt(go_n, col_, dw_, out_c_, cols, ck2);
    util::simd::add(wg, dw_);
    tensor::matmul_at_b(wgt, go_n, dcol_, out_c_, ck2, cols);
    // col2im scatter-add (serial: output pixels overlap under stride < k).
    float* gimg = gi.data() + n * in_c_ * h * w;
    const float* dcol = dcol_.data();
    for (std::size_t ic = 0; ic < in_c_; ++ic) {
      float* plane = gimg + ic * h * w;
      for (std::size_t ky = 0; ky < k_; ++ky) {
        for (std::size_t kx = 0; kx < k_; ++kx) {
          const float* row = dcol + ((ic * k_ + ky) * k_ + kx) * cols;
          for (std::size_t oy = 0; oy < oh; ++oy) {
            const std::ptrdiff_t iy =
                static_cast<std::ptrdiff_t>(oy * stride_ + ky) -
                static_cast<std::ptrdiff_t>(pad_);
            if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(h)) continue;
            float* dst = plane + static_cast<std::size_t>(iy) * w;
            const float* src = row + oy * ow;
            for (std::size_t ox = 0; ox < ow; ++ox) {
              const std::ptrdiff_t ix =
                  static_cast<std::ptrdiff_t>(ox * stride_ + kx) -
                  static_cast<std::ptrdiff_t>(pad_);
              if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(w)) continue;
              dst[ix] += src[ox];
            }
          }
        }
      }
    }
  }
  return grad_in_;
}

void Conv2d::collect_params(const std::string& prefix,
                            std::vector<Param*>& out) {
  weight_.name = prefix + "weight";
  out.push_back(&weight_);
  if (has_bias_) {
    bias_.name = prefix + "bias";
    out.push_back(&bias_);
  }
}

// ----------------------------------------------------------------- MaxPool

MaxPool2d::MaxPool2d(std::size_t window) : window_(window) {
  CGX_CHECK_GT(window, 0u);
}

const tensor::Tensor& MaxPool2d::forward(const tensor::Tensor& x,
                                         bool train) {
  (void)train;
  CGX_CHECK_EQ(x.rank(), 4u);
  const std::size_t b = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  CGX_CHECK_EQ(h % window_, 0u);
  CGX_CHECK_EQ(w % window_, 0u);
  const std::size_t oh = h / window_, ow = w / window_;
  input_shape_ = x.shape();
  output_ = tensor::Tensor(tensor::Shape{b, c, oh, ow});
  argmax_.assign(output_.numel(), 0);
  const auto in = x.data();
  auto out = output_.data();
  for (std::size_t n = 0; n < b; ++n) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      for (std::size_t oy = 0; oy < oh; ++oy) {
        for (std::size_t ox = 0; ox < ow; ++ox) {
          float best = -std::numeric_limits<float>::infinity();
          std::size_t best_idx = 0;
          for (std::size_t ky = 0; ky < window_; ++ky) {
            for (std::size_t kx = 0; kx < window_; ++kx) {
              const std::size_t idx =
                  ((n * c + ch) * h + oy * window_ + ky) * w + ox * window_ +
                  kx;
              if (in[idx] > best) {
                best = in[idx];
                best_idx = idx;
              }
            }
          }
          const std::size_t out_idx = ((n * c + ch) * oh + oy) * ow + ox;
          out[out_idx] = best;
          argmax_[out_idx] = best_idx;
        }
      }
    }
  }
  return output_;
}

const tensor::Tensor& MaxPool2d::backward(const tensor::Tensor& grad_out) {
  CGX_CHECK_EQ(grad_out.numel(), argmax_.size());
  grad_in_ = tensor::Tensor(input_shape_);
  auto gi = grad_in_.data();
  const auto go = grad_out.data();
  for (std::size_t i = 0; i < argmax_.size(); ++i) gi[argmax_[i]] += go[i];
  return grad_in_;
}

// ----------------------------------------------------------------- BN

BatchNorm2d::BatchNorm2d(std::size_t channels, float eps, float momentum)
    : channels_(channels),
      eps_(eps),
      momentum_(momentum),
      gain_("weight", tensor::Shape{channels}),
      bias_("bias", tensor::Shape{channels}),
      running_mean_(tensor::Shape{channels}),
      running_var_(tensor::Shape{channels}, 1.0f) {
  CGX_CHECK_GT(channels, 0u);
  gain_.value.fill(1.0f);
  bias_.value.zero();
}

const tensor::Tensor& BatchNorm2d::forward(const tensor::Tensor& x,
                                           bool train) {
  CGX_CHECK_EQ(x.rank(), 4u);
  CGX_CHECK_EQ(x.dim(1), channels_);
  const std::size_t b = x.dim(0), hw = x.dim(2) * x.dim(3);
  const std::size_t per_channel = b * hw;
  train_mode_ = train;
  output_ = tensor::Tensor(x.shape());
  normalized_ = tensor::Tensor(x.shape());
  inv_std_.resize(channels_);
  const auto in = x.data();
  auto out = output_.data();
  auto xhat = normalized_.data();
  const auto g = gain_.value.data();
  const auto beta = bias_.value.data();
  auto rm = running_mean_.data();
  auto rv = running_var_.data();

  for (std::size_t c = 0; c < channels_; ++c) {
    double mean, var;
    if (train) {
      double sum = 0.0;
      for (std::size_t n = 0; n < b; ++n) {
        sum += util::simd::reduce_sum(in.subspan((n * channels_ + c) * hw, hw));
      }
      mean = sum / static_cast<double>(per_channel);
      double sq = 0.0;
      for (std::size_t n = 0; n < b; ++n) {
        sq += util::simd::reduce_sqdiff(
            in.subspan((n * channels_ + c) * hw, hw), mean);
      }
      var = sq / static_cast<double>(per_channel);
      rm[c] = (1.0f - momentum_) * rm[c] +
              momentum_ * static_cast<float>(mean);
      rv[c] =
          (1.0f - momentum_) * rv[c] + momentum_ * static_cast<float>(var);
    } else {
      mean = rm[c];
      var = rv[c];
    }
    const float inv = 1.0f / std::sqrt(static_cast<float>(var) + eps_);
    inv_std_[c] = inv;
    for (std::size_t n = 0; n < b; ++n) {
      for (std::size_t i = 0; i < hw; ++i) {
        const std::size_t idx = (n * channels_ + c) * hw + i;
        const float h = (in[idx] - static_cast<float>(mean)) * inv;
        xhat[idx] = h;
        out[idx] = h * g[c] + beta[c];
      }
    }
  }
  return output_;
}

const tensor::Tensor& BatchNorm2d::backward(const tensor::Tensor& grad_out) {
  CGX_CHECK_EQ(grad_out.numel(), normalized_.numel());
  const std::size_t b = normalized_.dim(0);
  const std::size_t hw = normalized_.dim(2) * normalized_.dim(3);
  const auto per_channel = static_cast<double>(b * hw);
  grad_in_ = tensor::Tensor(normalized_.shape());
  const auto go = grad_out.data();
  const auto xhat = normalized_.data();
  const auto g = gain_.value.data();
  auto gg = gain_.grad.data();
  auto bg = bias_.grad.data();
  auto gi = grad_in_.data();

  for (std::size_t c = 0; c < channels_; ++c) {
    // Per-(image, channel) rows reduce through the canonical simd kernels;
    // dxhat = go * gain[c] is a constant scale per channel, so its sums are
    // the gain-scaled go sums.
    double sum_go = 0.0, sum_go_xhat = 0.0;
    for (std::size_t n = 0; n < b; ++n) {
      const std::span<const float> go_row =
          go.subspan((n * channels_ + c) * hw, hw);
      const std::span<const float> xhat_row =
          xhat.subspan((n * channels_ + c) * hw, hw);
      sum_go += util::simd::reduce_sum(go_row);
      sum_go_xhat += util::simd::reduce_dot(go_row, xhat_row);
    }
    gg[c] += static_cast<float>(sum_go_xhat);
    bg[c] += static_cast<float>(sum_go);
    const double sum_dxhat = static_cast<double>(g[c]) * sum_go;
    const double sum_dxhat_xhat = static_cast<double>(g[c]) * sum_go_xhat;
    if (!train_mode_) {
      // Eval mode: statistics are constants; dx = dxhat * inv_std.
      for (std::size_t n = 0; n < b; ++n) {
        for (std::size_t i = 0; i < hw; ++i) {
          const std::size_t idx = (n * channels_ + c) * hw + i;
          gi[idx] = go[idx] * g[c] * inv_std_[c];
        }
      }
      continue;
    }
    const auto mean_dxhat = static_cast<float>(sum_dxhat / per_channel);
    const auto mean_dxhat_xhat =
        static_cast<float>(sum_dxhat_xhat / per_channel);
    for (std::size_t n = 0; n < b; ++n) {
      for (std::size_t i = 0; i < hw; ++i) {
        const std::size_t idx = (n * channels_ + c) * hw + i;
        const float dxhat = go[idx] * g[c];
        gi[idx] = inv_std_[c] *
                  (dxhat - mean_dxhat - xhat[idx] * mean_dxhat_xhat);
      }
    }
  }
  return grad_in_;
}

void BatchNorm2d::collect_params(const std::string& prefix,
                                 std::vector<Param*>& out) {
  gain_.name = prefix + "weight";
  bias_.name = prefix + "bias";
  out.push_back(&gain_);
  out.push_back(&bias_);
}

// ----------------------------------------------------------------- GAP

const tensor::Tensor& GlobalAvgPool::forward(const tensor::Tensor& x,
                                             bool train) {
  (void)train;
  CGX_CHECK_EQ(x.rank(), 4u);
  const std::size_t b = x.dim(0), c = x.dim(1), hw = x.dim(2) * x.dim(3);
  input_shape_ = x.shape();
  output_ = tensor::Tensor(tensor::Shape{b, c});
  const auto in = x.data();
  auto out = output_.data();
  for (std::size_t n = 0; n < b; ++n) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      const double acc =
          util::simd::reduce_sum(in.subspan((n * c + ch) * hw, hw));
      out[n * c + ch] = static_cast<float>(acc / static_cast<double>(hw));
    }
  }
  return output_;
}

const tensor::Tensor& GlobalAvgPool::backward(const tensor::Tensor& grad_out) {
  const std::size_t b = input_shape_[0], c = input_shape_[1];
  const std::size_t hw = input_shape_[2] * input_shape_[3];
  CGX_CHECK_EQ(grad_out.numel(), b * c);
  grad_in_ = tensor::Tensor(input_shape_);
  auto gi = grad_in_.data();
  const auto go = grad_out.data();
  const float inv = 1.0f / static_cast<float>(hw);
  for (std::size_t n = 0; n < b; ++n) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      const float g = go[n * c + ch] * inv;
      for (std::size_t i = 0; i < hw; ++i) gi[(n * c + ch) * hw + i] = g;
    }
  }
  return grad_in_;
}

}  // namespace cgx::nn
