#include "nn/graph.h"

#include "tensor/tensor_ops.h"
#include "util/check.h"

namespace cgx::nn {

Graph::NodeId Graph::add(std::unique_ptr<Module> module,
                         std::vector<NodeId> inputs) {
  CGX_CHECK(module != nullptr);
  CGX_CHECK(!inputs.empty()) << "a graph node must consume something";
  const NodeId id = nodes_.size();
  for (NodeId in : inputs) {
    CGX_CHECK(in == kInput || in < id)
        << "graph nodes must be added in topological order";
  }
  Node n;
  n.module = std::move(module);
  n.inputs = std::move(inputs);
  nodes_.push_back(std::move(n));
  // Consumer lists stay ascending because ids are assigned in add order; a
  // duplicate input contributes one consumer entry per occurrence, so its
  // gradient is counted with the right multiplicity.
  for (NodeId in : nodes_[id].inputs) {
    if (in != kInput) nodes_[in].consumers.push_back(id);
  }
  return id;
}

void Graph::ensure_finalized() {
  if (finalized_nodes_ == nodes_.size()) return;
  CGX_CHECK(!nodes_.empty());
  sink_ = kInput;
  for (NodeId i = 0; i < nodes_.size(); ++i) {
    if (!nodes_[i].consumers.empty()) continue;
    CGX_CHECK(sink_ == kInput)
        << "graph must have exactly one sink (node with no consumers); "
           "nodes "
        << sink_ << " and " << i << " both have none";
    sink_ = i;
  }
  CGX_CHECK(sink_ != kInput) << "graph has no sink";
  input_consumers_.clear();
  for (NodeId i = 0; i < nodes_.size(); ++i) {
    for (NodeId in : nodes_[i].inputs) {
      if (in == kInput) input_consumers_.push_back(i);
    }
  }
  CGX_CHECK(!input_consumers_.empty()) << "no node consumes the graph input";
  finalized_nodes_ = nodes_.size();
}

const tensor::Tensor& Graph::forward_input(Node& n) {
  const auto resolve = [&](NodeId id) -> const tensor::Tensor& {
    return id == kInput ? *x_ : *nodes_[id].out;
  };
  if (n.inputs.size() == 1) return resolve(n.inputs[0]);
  // Fan-in join: the node sees the SUM of its inputs, accumulated in
  // declaration order. The buffer reallocates only on a shape change, so
  // steady-state steps reuse it.
  const tensor::Tensor& first = resolve(n.inputs[0]);
  if (n.sum_in.shape() != first.shape()) {
    n.sum_in = tensor::Tensor(first.shape());
  }
  tensor::copy(first.data(), n.sum_in.data());
  for (std::size_t i = 1; i < n.inputs.size(); ++i) {
    const tensor::Tensor& t = resolve(n.inputs[i]);
    CGX_CHECK_EQ(t.numel(), n.sum_in.numel())
        << "fan-in inputs must agree in size";
    tensor::add_inplace(n.sum_in.data(), t.data());
  }
  return n.sum_in;
}

const tensor::Tensor& Graph::forward(const tensor::Tensor& x, bool train) {
  ensure_finalized();
  x_ = &x;
  for (NodeId i = 0; i < nodes_.size(); ++i) {
    Node& n = nodes_[i];
    n.out = &n.module->forward(forward_input(n), train);
  }
  return *nodes_[sink_].out;
}

const tensor::Tensor& Graph::consumer_grad(NodeId i) {
  Node& n = nodes_[i];
  if (n.consumers.size() == 1) return *nodes_[n.consumers[0]].d_in;
  // Fixed ascending-consumer-order accumulation: the determinism contract.
  // Every consumer's op is a dependency of this node's op, so all d_in
  // values are final here no matter how the pool interleaved them.
  const tensor::Tensor& first = *nodes_[n.consumers[0]].d_in;
  if (n.sum_grad.shape() != first.shape()) {
    n.sum_grad = tensor::Tensor(first.shape());
  }
  tensor::copy(first.data(), n.sum_grad.data());
  for (std::size_t c = 1; c < n.consumers.size(); ++c) {
    const tensor::Tensor& g = *nodes_[n.consumers[c]].d_in;
    CGX_CHECK_EQ(g.numel(), n.sum_grad.numel())
        << "consumer gradients must agree in size";
    tensor::add_inplace(n.sum_grad.data(), g.data());
  }
  return n.sum_grad;
}

void Graph::node_backward(NodeId i) {
  Node& n = nodes_[i];
  const tensor::Tensor& g = i == sink_ ? *grad_out_ : consumer_grad(i);
  n.d_in = &n.module->backward(g);
  // Parameter gradients are final for the step; let streaming consumers
  // (AsyncGradientEngine hooks) ship them while other branches still run.
  n.module->fire_grad_ready();
}

void Graph::input_grad_backward() {
  if (input_consumers_.size() == 1) {
    input_grad_ = nodes_[input_consumers_[0]].d_in;
    return;
  }
  const tensor::Tensor& first = *nodes_[input_consumers_[0]].d_in;
  if (input_grad_sum_.shape() != first.shape()) {
    input_grad_sum_ = tensor::Tensor(first.shape());
  }
  tensor::copy(first.data(), input_grad_sum_.data());
  for (std::size_t c = 1; c < input_consumers_.size(); ++c) {
    const tensor::Tensor& g = *nodes_[input_consumers_[c]].d_in;
    CGX_CHECK_EQ(g.numel(), input_grad_sum_.numel());
    tensor::add_inplace(input_grad_sum_.data(), g.data());
  }
  input_grad_ = &input_grad_sum_;
}

void Graph::record_backward() {
  // One op per node, reading the consumers' gradient variables and writing
  // the node's own — the RAW edges the DepEngine derives are exactly the
  // transposed forward DAG. Ops are pushed in reverse node order so every
  // read's writer already exists; op ids are therefore stable across
  // replays (determinism contract).
  dag_.clear();
  node_grad_var_.resize(nodes_.size());
  for (NodeId i = 0; i < nodes_.size(); ++i) {
    node_grad_var_[i] = dag_.new_var();
  }
  const core::DepEngine::VarId input_var = dag_.new_var();
  std::vector<core::DepEngine::VarId> reads;
  for (NodeId i = nodes_.size(); i-- > 0;) {
    reads.clear();
    for (NodeId c : nodes_[i].consumers) reads.push_back(node_grad_var_[c]);
    const core::DepEngine::VarId write = node_grad_var_[i];
    dag_.push([this, i] { node_backward(i); }, reads,
              std::span<const core::DepEngine::VarId>(&write, 1));
  }
  reads.clear();
  for (NodeId c : input_consumers_) reads.push_back(node_grad_var_[c]);
  dag_.push([this] { input_grad_backward(); }, reads,
            std::span<const core::DepEngine::VarId>(&input_var, 1));
  recorded_nodes_ = nodes_.size();
}

const tensor::Tensor& Graph::backward(const tensor::Tensor& grad_out) {
  ensure_finalized();
  grad_out_ = &grad_out;
  if (dag_.pool() == nullptr) {
    // Serial reference schedule: reverse insertion order is a topological
    // order of the gradient DAG (consumers have larger ids by
    // construction). Bit-identical to the executor path by the fixed-order
    // accumulation above.
    for (NodeId i = nodes_.size(); i-- > 0;) node_backward(i);
    input_grad_backward();
  } else {
    if (recorded_nodes_ != nodes_.size()) record_backward();
    dag_.run();
  }
  return *input_grad_;
}

void Graph::collect_params(const std::string& prefix,
                           std::vector<Param*>& out) {
  for (NodeId i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].module->frozen()) continue;
    nodes_[i].module->collect_params(
        prefix + std::to_string(i) + "." + nodes_[i].module->kind() + ".",
        out);
  }
}

void Graph::set_executor(util::ThreadPool* pool) { dag_.set_pool(pool); }

const tensor::Tensor& Graph::grad_input() const {
  CGX_CHECK(input_grad_ != nullptr) << "backward has not run";
  return *input_grad_;
}

}  // namespace cgx::nn
