// Sequential container and parameter/layout utilities.
#pragma once

#include <memory>

#include "core/dep_engine.h"
#include "nn/module.h"
#include "tensor/layer_layout.h"

namespace cgx::nn {

class Sequential final : public Module {
 public:
  Sequential() = default;

  // Takes ownership; returns *this for chaining.
  Sequential& add(std::unique_ptr<Module> module);

  template <typename M, typename... Args>
  Sequential& emplace(Args&&... args) {
    return add(std::make_unique<M>(std::forward<Args>(args)...));
  }

  const tensor::Tensor& forward(const tensor::Tensor& x, bool train) override;
  const tensor::Tensor& backward(const tensor::Tensor& grad_out) override;
  void collect_params(const std::string& prefix,
                      std::vector<Param*>& out) override;
  std::string kind() const override { return "sequential"; }

  std::size_t size() const { return modules_.size(); }
  Module& module(std::size_t i) { return *modules_.at(i); }

  // Routes backward through a core::DepEngine as a degenerate chain (each
  // op reads the previous op's gradient variable, so the schedule is the
  // exact reverse walk regardless of pool size — bit-identical to the
  // default path, test-enforced). Exists so Sequential and Graph models
  // share one executor story; nullptr restores the plain loop. Call
  // set_executor(nullptr) before destroying the pool.
  void set_executor(util::ThreadPool* pool);

 private:
  void chain_backward(std::size_t i);  // module i's backward + hook

  std::vector<std::unique_ptr<Module>> modules_;
  core::DepEngine dag_;
  std::size_t recorded_modules_ = 0;
  const tensor::Tensor* chain_cur_ = nullptr;  // flows through the chain
};

// All parameters of a model, in gradient-layout order (model order: the
// order collect_params visits them, which matches definition order).
std::vector<Param*> parameters(Module& model);

// LayerLayout over a parameter list — the registration step of the paper's
// Listing 1 (`register_model([(name, numel) ...])`).
tensor::LayerLayout build_layout(const std::vector<Param*>& params);

// Fused-gradient plumbing between Params and the engine's flat buffer.
void gather_grads(const std::vector<Param*>& params,
                  const tensor::LayerLayout& layout, std::span<float> fused);
void scatter_grads(std::span<const float> fused,
                   const tensor::LayerLayout& layout,
                   const std::vector<Param*>& params);

// Copies parameter VALUES between replicas so every worker starts
// identical (broadcast-from-rank-0 in real frameworks).
void copy_param_values(const std::vector<Param*>& src,
                       const std::vector<Param*>& dst);

}  // namespace cgx::nn
