#include "nn/optim.h"

#include <algorithm>
#include <cmath>

#include "tensor/tensor_ops.h"
#include "util/check.h"

namespace cgx::nn {

LrSchedule constant_lr(double lr) {
  return [lr](std::size_t) { return lr; };
}

LrSchedule cosine_lr(double peak, std::size_t warmup_steps,
                     std::size_t total_steps, double floor) {
  CGX_CHECK_GT(total_steps, warmup_steps);
  return [=](std::size_t step) {
    if (step < warmup_steps) {
      return peak * static_cast<double>(step + 1) /
             static_cast<double>(warmup_steps);
    }
    const double progress =
        static_cast<double>(step - warmup_steps) /
        static_cast<double>(total_steps - warmup_steps);
    const double clamped = std::min(progress, 1.0);
    return floor + (peak - floor) * 0.5 *
                       (1.0 + std::cos(3.14159265358979323846 * clamped));
  };
}

LrSchedule step_decay_lr(double lr, std::size_t every, double factor) {
  CGX_CHECK_GT(every, 0u);
  return [=](std::size_t step) {
    return lr * std::pow(factor, static_cast<double>(step / every));
  };
}

Sgd::Sgd(std::vector<Param*> params, LrSchedule lr, double momentum,
         double weight_decay)
    : params_(std::move(params)),
      lr_(std::move(lr)),
      momentum_(momentum),
      weight_decay_(weight_decay) {
  velocity_.resize(params_.size());
  for (std::size_t i = 0; i < params_.size(); ++i) {
    velocity_[i].assign(params_[i]->value.numel(), 0.0f);
  }
}

void Sgd::step() {
  const auto lr = static_cast<float>(lr_(steps_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    auto value = params_[i]->value.data();
    auto grad = params_[i]->grad.data();
    auto& vel = velocity_[i];
    for (std::size_t j = 0; j < value.size(); ++j) {
      float g = grad[j] + static_cast<float>(weight_decay_) * value[j];
      if (momentum_ != 0.0) {
        vel[j] = static_cast<float>(momentum_) * vel[j] + g;
        g = vel[j];
      }
      value[j] -= lr * g;
    }
    params_[i]->grad.zero();
  }
  ++steps_;
}

Adam::Adam(std::vector<Param*> params, LrSchedule lr, double beta1,
           double beta2, double eps, double weight_decay)
    : params_(std::move(params)),
      lr_(std::move(lr)),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  m_.resize(params_.size());
  v_.resize(params_.size());
  for (std::size_t i = 0; i < params_.size(); ++i) {
    m_[i].assign(params_[i]->value.numel(), 0.0f);
    v_[i].assign(params_[i]->value.numel(), 0.0f);
  }
}

void Adam::step() {
  const double t = static_cast<double>(steps_ + 1);
  const double bias1 = 1.0 - std::pow(beta1_, t);
  const double bias2 = 1.0 - std::pow(beta2_, t);
  const double lr = lr_(steps_);
  for (std::size_t i = 0; i < params_.size(); ++i) {
    auto value = params_[i]->value.data();
    auto grad = params_[i]->grad.data();
    auto& m = m_[i];
    auto& v = v_[i];
    for (std::size_t j = 0; j < value.size(); ++j) {
      const float g =
          grad[j] + static_cast<float>(weight_decay_) * value[j];
      m[j] = static_cast<float>(beta1_) * m[j] +
             static_cast<float>(1.0 - beta1_) * g;
      v[j] = static_cast<float>(beta2_) * v[j] +
             static_cast<float>(1.0 - beta2_) * g * g;
      const double mhat = m[j] / bias1;
      const double vhat = v[j] / bias2;
      value[j] -= static_cast<float>(lr * mhat / (std::sqrt(vhat) + eps_));
    }
    params_[i]->grad.zero();
  }
  ++steps_;
}

double clip_global_norm(const std::vector<Param*>& params, double max_norm) {
  CGX_CHECK_GT(max_norm, 0.0);
  double sq = 0.0;
  for (const Param* p : params) sq += tensor::squared_norm(p->grad.data());
  const double norm = std::sqrt(sq);
  if (norm > max_norm) {
    const auto scale = static_cast<float>(max_norm / (norm + 1e-12));
    for (Param* p : params) tensor::scale(p->grad.data(), scale);
  }
  return norm;
}

}  // namespace cgx::nn
