#include "nn/attention.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "tensor/tensor_ops.h"
#include "util/check.h"
#include "util/simd.h"

namespace cgx::nn {

MultiHeadAttention::MultiHeadAttention(std::size_t dim, std::size_t heads,
                                       bool causal, util::Rng& rng)
    : dim_(dim),
      heads_(heads),
      head_dim_(dim / heads),
      causal_(causal),
      qkv_(dim, 3 * dim, rng),
      proj_(dim, dim, rng) {
  CGX_CHECK_EQ(dim % heads, 0u);
}

const tensor::Tensor& MultiHeadAttention::forward(const tensor::Tensor& x,
                                                  bool train) {
  CGX_CHECK_EQ(x.rank(), 3u);
  CGX_CHECK_EQ(x.dim(2), dim_);
  batch_ = x.dim(0);
  seq_ = x.dim(1);
  const std::size_t b = batch_, t = seq_, h = heads_, dh = head_dim_;

  qkv_out_ = qkv_.forward(x, train).clone();  // [B, T, 3D]
  attn_ = tensor::Tensor(tensor::Shape{b, h, t, t});
  heads_out_ = tensor::Tensor(tensor::Shape{b, t, dim_});

  const auto qkv = qkv_out_.data();
  auto attn = attn_.data();
  auto out = heads_out_.data();
  const float scale = 1.0f / std::sqrt(static_cast<float>(dh));

  // Each head's Q/K/V live strided inside the fused [Q | K | V] qkv rows;
  // pack them into contiguous [T, dh] panels so every contraction is a
  // plain GEMM through tensor_ops (scores = Q K^T, O = A V).
  pack_q_.resize(t * dh);
  pack_k_.resize(t * dh);
  pack_v_.resize(t * dh);
  pack_o_.resize(t * dh);
  for (std::size_t n = 0; n < b; ++n) {
    for (std::size_t hh = 0; hh < h; ++hh) {
      for (std::size_t i = 0; i < t; ++i) {
        const float* row = &qkv[(n * t + i) * 3 * dim_ + hh * dh];
        std::memcpy(pack_q_.data() + i * dh, row, dh * sizeof(float));
        std::memcpy(pack_k_.data() + i * dh, row + dim_, dh * sizeof(float));
        std::memcpy(pack_v_.data() + i * dh, row + 2 * dim_,
                    dh * sizeof(float));
      }
      const std::span<float> scores = attn.subspan((n * h + hh) * t * t, t * t);
      tensor::matmul_a_bt(pack_q_, pack_k_, scores, t, dh, t);
      for (std::size_t i = 0; i < t; ++i) {
        const std::size_t limit = causal_ ? i + 1 : t;
        float* row = scores.data() + i * t;
        util::simd::scale({row, limit}, scale);
        const float max_score = util::simd::reduce_max({row, limit}, -1e30f);
        double denom = 0.0;
        for (std::size_t j = 0; j < limit; ++j) {
          row[j] = std::exp(row[j] - max_score);
          denom += row[j];
        }
        const float inv =
            denom > 0.0 ? static_cast<float>(1.0 / denom) : 0.0f;
        util::simd::scale({row, limit}, inv);
        std::fill(row + limit, row + t, 0.0f);
      }
      // O = A V; masked columns of A are exactly zero so they contribute
      // nothing.
      tensor::matmul(scores, pack_v_, pack_o_, t, t, dh);
      for (std::size_t i = 0; i < t; ++i) {
        std::memcpy(out.data() + (n * t + i) * dim_ + hh * dh,
                    pack_o_.data() + i * dh, dh * sizeof(float));
      }
    }
  }
  return proj_.forward(heads_out_, train);
}

const tensor::Tensor& MultiHeadAttention::backward(
    const tensor::Tensor& grad_out) {
  const std::size_t b = batch_, t = seq_, h = heads_, dh = head_dim_;
  const tensor::Tensor& d_heads = proj_.backward(grad_out);  // [B, T, D]

  tensor::Tensor d_qkv(tensor::Shape{b, t, 3 * dim_});
  const auto qkv = qkv_out_.data();
  const auto attn = attn_.data();
  const auto dho = d_heads.data();
  auto dq = d_qkv.data();
  const float scale = 1.0f / std::sqrt(static_cast<float>(dh));

  pack_q_.resize(t * dh);
  pack_k_.resize(t * dh);
  pack_v_.resize(t * dh);
  pack_o_.resize(t * dh);
  pack_dq_.resize(t * dh);
  pack_dk_.resize(t * dh);
  pack_dv_.resize(t * dh);
  da_.resize(t * t);
  ds_.resize(t * t);

  for (std::size_t n = 0; n < b; ++n) {
    for (std::size_t hh = 0; hh < h; ++hh) {
      for (std::size_t i = 0; i < t; ++i) {
        const float* row = &qkv[(n * t + i) * 3 * dim_ + hh * dh];
        std::memcpy(pack_q_.data() + i * dh, row, dh * sizeof(float));
        std::memcpy(pack_k_.data() + i * dh, row + dim_, dh * sizeof(float));
        std::memcpy(pack_v_.data() + i * dh, row + 2 * dim_,
                    dh * sizeof(float));
        std::memcpy(pack_o_.data() + i * dh,
                    dho.data() + (n * t + i) * dim_ + hh * dh,
                    dh * sizeof(float));
      }
      const std::span<const float> a_slice =
          attn.subspan((n * h + hh) * t * t, t * t);
      // dA = dO V^T; dV = A^T dO. Masked entries of A are exactly zero, so
      // the corresponding dV terms vanish just as in the masked loop nest.
      tensor::matmul_a_bt(pack_o_, pack_v_, da_, t, dh, t);
      tensor::matmul_at_b(a_slice, pack_o_, pack_dv_, t, t, dh);
      // Softmax backward: dS = (dA - <dA, A>) * A, then * scale.
      for (std::size_t i = 0; i < t; ++i) {
        const std::size_t limit = causal_ ? i + 1 : t;
        const float* arow = a_slice.data() + i * t;
        const float* darow = da_.data() + i * t;
        float* dsrow = ds_.data() + i * t;
        const double dot =
            util::simd::reduce_dot({darow, limit}, {arow, limit});
        for (std::size_t j = 0; j < limit; ++j) {
          dsrow[j] = (darow[j] - static_cast<float>(dot)) * arow[j] * scale;
        }
        std::fill(dsrow + limit, dsrow + t, 0.0f);
      }
      // dQ = dS K; dK = dS^T Q.
      tensor::matmul(ds_, pack_k_, pack_dq_, t, t, dh);
      tensor::matmul_at_b(ds_, pack_q_, pack_dk_, t, t, dh);
      for (std::size_t i = 0; i < t; ++i) {
        float* drow = &dq[(n * t + i) * 3 * dim_ + hh * dh];
        std::memcpy(drow, pack_dq_.data() + i * dh, dh * sizeof(float));
        std::memcpy(drow + dim_, pack_dk_.data() + i * dh,
                    dh * sizeof(float));
        std::memcpy(drow + 2 * dim_, pack_dv_.data() + i * dh,
                    dh * sizeof(float));
      }
    }
  }
  grad_in_ = qkv_.backward(d_qkv).clone();
  return grad_in_;
}

void MultiHeadAttention::collect_params(const std::string& prefix,
                                        std::vector<Param*>& out) {
  qkv_.collect_params(prefix + "qkv.", out);
  proj_.collect_params(prefix + "proj.", out);
}

// ---------------------------------------------------------------- block

TransformerBlock::TransformerBlock(std::size_t dim, std::size_t heads,
                                   std::size_t mlp_dim, bool causal,
                                   util::Rng& rng)
    : ln1_(dim),
      attn_(dim, heads, causal, rng),
      ln2_(dim),
      fc1_(dim, mlp_dim, rng),
      fc2_(mlp_dim, dim, rng) {}

const tensor::Tensor& TransformerBlock::forward(const tensor::Tensor& x,
                                                bool train) {
  const tensor::Tensor& a = attn_.forward(ln1_.forward(x, train), train);
  h_ = x.clone();
  tensor::add_inplace(h_.data(), a.data());
  const tensor::Tensor& m = fc2_.forward(
      gelu_.forward(fc1_.forward(ln2_.forward(h_, train), train), train),
      train);
  output_ = h_.clone();
  tensor::add_inplace(output_.data(), m.data());
  return output_;
}

const tensor::Tensor& TransformerBlock::backward(
    const tensor::Tensor& grad_out) {
  // y = h + mlp(ln2(h)): dh = dy + ln2^T(mlp^T(dy)).
  const tensor::Tensor& dm =
      ln2_.backward(fc1_.backward(gelu_.backward(fc2_.backward(grad_out))));
  tensor::Tensor dh = grad_out.clone();
  tensor::add_inplace(dh.data(), dm.data());
  // h = x + attn(ln1(x)): dx = dh + ln1^T(attn^T(dh)).
  const tensor::Tensor& da = ln1_.backward(attn_.backward(dh));
  grad_in_ = dh.clone();
  tensor::add_inplace(grad_in_.data(), da.data());
  return grad_in_;
}

void TransformerBlock::collect_params(const std::string& prefix,
                                      std::vector<Param*>& out) {
  ln1_.collect_params(prefix + "ln1.", out);
  attn_.collect_params(prefix + "attn.", out);
  ln2_.collect_params(prefix + "ln2.", out);
  fc1_.collect_params(prefix + "mlp.fc1.", out);
  fc2_.collect_params(prefix + "mlp.fc2.", out);
}

}  // namespace cgx::nn
