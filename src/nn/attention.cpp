#include "nn/attention.h"

#include <cmath>

#include "tensor/tensor_ops.h"
#include "util/check.h"

namespace cgx::nn {

MultiHeadAttention::MultiHeadAttention(std::size_t dim, std::size_t heads,
                                       bool causal, util::Rng& rng)
    : dim_(dim),
      heads_(heads),
      head_dim_(dim / heads),
      causal_(causal),
      qkv_(dim, 3 * dim, rng),
      proj_(dim, dim, rng) {
  CGX_CHECK_EQ(dim % heads, 0u);
}

const tensor::Tensor& MultiHeadAttention::forward(const tensor::Tensor& x,
                                                  bool train) {
  CGX_CHECK_EQ(x.rank(), 3u);
  CGX_CHECK_EQ(x.dim(2), dim_);
  batch_ = x.dim(0);
  seq_ = x.dim(1);
  const std::size_t b = batch_, t = seq_, h = heads_, dh = head_dim_;

  qkv_out_ = qkv_.forward(x, train).clone();  // [B, T, 3D]
  attn_ = tensor::Tensor(tensor::Shape{b, h, t, t});
  heads_out_ = tensor::Tensor(tensor::Shape{b, t, dim_});

  const auto qkv = qkv_out_.data();
  auto attn = attn_.data();
  auto out = heads_out_.data();
  const float scale = 1.0f / std::sqrt(static_cast<float>(dh));

  // Offsets inside the fused qkv row: [Q | K | V], each D wide; head hh
  // occupies columns [hh*dh, (hh+1)*dh).
  auto q_at = [&](std::size_t n, std::size_t i, std::size_t hh,
                  std::size_t d) {
    return qkv[(n * t + i) * 3 * dim_ + hh * dh + d];
  };
  auto k_at = [&](std::size_t n, std::size_t i, std::size_t hh,
                  std::size_t d) {
    return qkv[(n * t + i) * 3 * dim_ + dim_ + hh * dh + d];
  };
  auto v_at = [&](std::size_t n, std::size_t i, std::size_t hh,
                  std::size_t d) {
    return qkv[(n * t + i) * 3 * dim_ + 2 * dim_ + hh * dh + d];
  };

  for (std::size_t n = 0; n < b; ++n) {
    for (std::size_t hh = 0; hh < h; ++hh) {
      for (std::size_t i = 0; i < t; ++i) {
        // Scores + softmax for query position i.
        const std::size_t limit = causal_ ? i + 1 : t;
        float* row = &attn[((n * h + hh) * t + i) * t];
        float max_score = -1e30f;
        for (std::size_t j = 0; j < limit; ++j) {
          double s = 0.0;
          for (std::size_t d = 0; d < dh; ++d) {
            s += static_cast<double>(q_at(n, i, hh, d)) * k_at(n, j, hh, d);
          }
          row[j] = static_cast<float>(s) * scale;
          max_score = std::max(max_score, row[j]);
        }
        double denom = 0.0;
        for (std::size_t j = 0; j < limit; ++j) {
          row[j] = std::exp(row[j] - max_score);
          denom += row[j];
        }
        const float inv =
            denom > 0.0 ? static_cast<float>(1.0 / denom) : 0.0f;
        for (std::size_t j = 0; j < limit; ++j) row[j] *= inv;
        for (std::size_t j = limit; j < t; ++j) row[j] = 0.0f;
        // O[i] = sum_j A[i,j] V[j]
        for (std::size_t d = 0; d < dh; ++d) {
          double acc = 0.0;
          for (std::size_t j = 0; j < limit; ++j) {
            acc += static_cast<double>(row[j]) * v_at(n, j, hh, d);
          }
          out[(n * t + i) * dim_ + hh * dh + d] = static_cast<float>(acc);
        }
      }
    }
  }
  return proj_.forward(heads_out_, train);
}

const tensor::Tensor& MultiHeadAttention::backward(
    const tensor::Tensor& grad_out) {
  const std::size_t b = batch_, t = seq_, h = heads_, dh = head_dim_;
  const tensor::Tensor& d_heads = proj_.backward(grad_out);  // [B, T, D]

  tensor::Tensor d_qkv(tensor::Shape{b, t, 3 * dim_});
  const auto qkv = qkv_out_.data();
  const auto attn = attn_.data();
  const auto dho = d_heads.data();
  auto dq = d_qkv.data();
  const float scale = 1.0f / std::sqrt(static_cast<float>(dh));

  auto k_at = [&](std::size_t n, std::size_t i, std::size_t hh,
                  std::size_t d) {
    return qkv[(n * t + i) * 3 * dim_ + dim_ + hh * dh + d];
  };
  auto v_at = [&](std::size_t n, std::size_t i, std::size_t hh,
                  std::size_t d) {
    return qkv[(n * t + i) * 3 * dim_ + 2 * dim_ + hh * dh + d];
  };
  auto q_at = [&](std::size_t n, std::size_t i, std::size_t hh,
                  std::size_t d) {
    return qkv[(n * t + i) * 3 * dim_ + hh * dh + d];
  };
  auto dq_ref = [&](std::size_t n, std::size_t i, std::size_t hh,
                    std::size_t d) -> float& {
    return dq[(n * t + i) * 3 * dim_ + hh * dh + d];
  };
  auto dk_ref = [&](std::size_t n, std::size_t i, std::size_t hh,
                    std::size_t d) -> float& {
    return dq[(n * t + i) * 3 * dim_ + dim_ + hh * dh + d];
  };
  auto dv_ref = [&](std::size_t n, std::size_t i, std::size_t hh,
                    std::size_t d) -> float& {
    return dq[(n * t + i) * 3 * dim_ + 2 * dim_ + hh * dh + d];
  };

  std::vector<float> d_attn_row(t);
  for (std::size_t n = 0; n < b; ++n) {
    for (std::size_t hh = 0; hh < h; ++hh) {
      for (std::size_t i = 0; i < t; ++i) {
        const std::size_t limit = causal_ ? i + 1 : t;
        const float* arow = &attn[((n * h + hh) * t + i) * t];
        // dA[i,j] = <dO[i], V[j]>; dV[j] += A[i,j] dO[i]
        for (std::size_t j = 0; j < limit; ++j) {
          double da = 0.0;
          for (std::size_t d = 0; d < dh; ++d) {
            const float g = dho[(n * t + i) * dim_ + hh * dh + d];
            da += static_cast<double>(g) * v_at(n, j, hh, d);
            dv_ref(n, j, hh, d) += arow[j] * g;
          }
          d_attn_row[j] = static_cast<float>(da);
        }
        // Softmax backward: dS = (dA - <dA, A>) * A, then * scale.
        double dot = 0.0;
        for (std::size_t j = 0; j < limit; ++j) {
          dot += static_cast<double>(d_attn_row[j]) * arow[j];
        }
        for (std::size_t j = 0; j < limit; ++j) {
          const float ds =
              (d_attn_row[j] - static_cast<float>(dot)) * arow[j] * scale;
          if (ds == 0.0f) continue;
          // dQ[i] += dS K[j]; dK[j] += dS Q[i]
          for (std::size_t d = 0; d < dh; ++d) {
            dq_ref(n, i, hh, d) += ds * k_at(n, j, hh, d);
            dk_ref(n, j, hh, d) += ds * q_at(n, i, hh, d);
          }
        }
      }
    }
  }
  grad_in_ = qkv_.backward(d_qkv).clone();
  return grad_in_;
}

void MultiHeadAttention::collect_params(const std::string& prefix,
                                        std::vector<Param*>& out) {
  qkv_.collect_params(prefix + "qkv.", out);
  proj_.collect_params(prefix + "proj.", out);
}

// ---------------------------------------------------------------- block

TransformerBlock::TransformerBlock(std::size_t dim, std::size_t heads,
                                   std::size_t mlp_dim, bool causal,
                                   util::Rng& rng)
    : ln1_(dim),
      attn_(dim, heads, causal, rng),
      ln2_(dim),
      fc1_(dim, mlp_dim, rng),
      fc2_(mlp_dim, dim, rng) {}

const tensor::Tensor& TransformerBlock::forward(const tensor::Tensor& x,
                                                bool train) {
  const tensor::Tensor& a = attn_.forward(ln1_.forward(x, train), train);
  h_ = x.clone();
  tensor::add_inplace(h_.data(), a.data());
  const tensor::Tensor& m = fc2_.forward(
      gelu_.forward(fc1_.forward(ln2_.forward(h_, train), train), train),
      train);
  output_ = h_.clone();
  tensor::add_inplace(output_.data(), m.data());
  return output_;
}

const tensor::Tensor& TransformerBlock::backward(
    const tensor::Tensor& grad_out) {
  // y = h + mlp(ln2(h)): dh = dy + ln2^T(mlp^T(dy)).
  const tensor::Tensor& dm =
      ln2_.backward(fc1_.backward(gelu_.backward(fc2_.backward(grad_out))));
  tensor::Tensor dh = grad_out.clone();
  tensor::add_inplace(dh.data(), dm.data());
  // h = x + attn(ln1(x)): dx = dh + ln1^T(attn^T(dh)).
  const tensor::Tensor& da = ln1_.backward(attn_.backward(dh));
  grad_in_ = dh.clone();
  tensor::add_inplace(grad_in_.data(), da.data());
  return grad_in_;
}

void TransformerBlock::collect_params(const std::string& prefix,
                                      std::vector<Param*>& out) {
  ln1_.collect_params(prefix + "ln1.", out);
  attn_.collect_params(prefix + "attn.", out);
  ln2_.collect_params(prefix + "ln2.", out);
  fc1_.collect_params(prefix + "mlp.fc1.", out);
  fc2_.collect_params(prefix + "mlp.fc2.", out);
}

}  // namespace cgx::nn
